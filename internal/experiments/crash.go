package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// CrashRecovery is E-crash: the live cluster under crash-stop failures
// with durable recovery. For every protocol (plus OptP with transport
// chaos layered on) a workload runs, one process is crash-stopped
// mid-run while the survivors keep going, then restarted from its
// write-ahead log and caught up via anti-entropy; more load follows
// and the run must quiesce and pass the full audit — causal
// consistency, no lost acknowledged writes, exactly-once application,
// no protocol activity while down, and (for OptP) zero unnecessary
// delays across the restart. Reported are the recovery mechanics:
// journal entries replayed, updates caught up from peers, and
// wall-clock recovery time.
func CrashRecovery() (Result, error) {
	const (
		procs = 4
		vars  = 3
		ops   = 40
	)
	r := Result{
		Name: "E-crash",
		Desc: fmt.Sprintf("crash-stop + WAL restart + anti-entropy catch-up (%d procs × %d ops, p2 crashed mid-run)",
			procs, ops),
		Header: []string{"protocol", "replayed", "caughtup", "recovery", "delays", "unnecessary", "audit"},
	}
	type variant struct {
		kind  protocol.Kind
		chaos bool
	}
	variants := []variant{
		{protocol.OptP, false},
		{protocol.OptP, true},
		{protocol.ANBKH, false},
		{protocol.WSRecv, false},
		{protocol.WSSend, false},
		{protocol.OptPNoReadMerge, false},
		{protocol.OptPWS, false},
	}
	for _, v := range variants {
		name := v.kind.String()
		if v.chaos {
			name += "+chaos"
		}
		st, rec, unnecessary, err := crashRun(v.kind, v.chaos, procs, vars, ops)
		if err != nil {
			return r, fmt.Errorf("experiments: E-crash %s: %w", name, err)
		}
		r.Stats = append(r.Stats, st)
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprintf("%d", rec.Replayed),
			fmt.Sprintf("%d", rec.CaughtUp),
			rec.Duration.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", st.Delays),
			fmt.Sprintf("%d", unnecessary),
			"consistent ✓ no-loss ✓",
		})
	}
	return r, nil
}

func crashRun(kind protocol.Kind, chaos bool, procs, vars, ops int) (st trace.RunStats, rec core.RecoveryStats, unnecessary int, err error) {
	walDir, err := os.MkdirTemp("", "dsm-crash-*")
	if err != nil {
		return st, rec, 0, err
	}
	defer os.RemoveAll(walDir)

	cfg := core.Config{
		Processes: procs, Variables: vars, Protocol: kind,
		MaxDelay: 200 * time.Microsecond, Seed: 42,
		WALDir: walDir, SnapshotEvery: 32,
		TokenInterval:     200 * time.Microsecond,
		HeartbeatInterval: time.Millisecond,
	}
	if chaos {
		cfg.Chaos = transport.ChaosConfig{LossRate: 0.1, DupRate: 0.1, Seed: 42}
		cfg.RetransmitTimeout = 4 * time.Millisecond
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		return st, rec, 0, err
	}
	defer c.Close()

	const victim = 1
	phase := func(seed int64, live []int) {
		var wg sync.WaitGroup
		for _, p := range live {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(p)))
				for i := 1; i <= ops/3; i++ {
					if rng.Intn(5) < 3 {
						c.Node(p).Write(rng.Intn(vars), int64(p)*1_000_000+seed+int64(i))
					} else {
						c.Node(p).Read(rng.Intn(vars))
					}
				}
			}()
		}
		wg.Wait()
	}
	phase(100, []int{0, 1, 2, 3})
	if err = c.Crash(victim); err != nil {
		return st, rec, 0, err
	}
	phase(200, []int{0, 2, 3})
	if werr := c.Node(victim).Write(0, 1); !errors.Is(werr, core.ErrDown) {
		return st, rec, 0, fmt.Errorf("down process accepted a write: %v", werr)
	}
	rec, err = c.Restart(victim)
	if err != nil {
		return st, rec, 0, err
	}
	phase(300, []int{0, 1, 2, 3})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	err = c.Quiesce(ctx)
	cancel()
	if err != nil {
		return st, rec, 0, fmt.Errorf("quiesce: %w", err)
	}
	rep, err := c.Audit()
	if err != nil {
		return st, rec, 0, err
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.ExactlyOnce() || !rep.CrashConsistent() {
		return st, rec, 0, fmt.Errorf("audit failed: %v", rep)
	}
	// No lost acknowledged writes: every non-logical missing apply must
	// be a write its sender suppressed before ever propagating (WS-send).
	propagated := make(map[history.WriteID]bool)
	log := c.Log()
	for _, e := range log.Events {
		if e.Kind == trace.Send && e.Write.Seq > 0 {
			propagated[e.Write] = true
		}
	}
	for _, m := range rep.NotApplied {
		if m.Logical {
			continue
		}
		if propagated[m.Write] || m.Proc == m.Write.Proc {
			return st, rec, 0, fmt.Errorf("lost write: %v", m)
		}
	}
	if kind == protocol.OptP && !rep.WriteDelayOptimal() {
		return st, rec, 0, fmt.Errorf("%d unnecessary OptP delays", rep.UnnecessaryDelays)
	}
	return log.Stats(kind.String()), rec, rep.UnnecessaryDelays, nil
}
