// Package durability implements the crash-recovery storage of the live
// runtime: a per-replica write-ahead log with periodic full-state
// snapshots.
//
// A replica's directory holds numbered segment files seg-%08d.wal. Each
// segment begins with a magic header and a snapshot record — an opaque
// encoding of the replica's complete protocol state at rotation time —
// followed by one record per journaled operation (local write, state-
// mutating read, remote apply/discard, token visit). Recovery reads the
// newest intact segment: restore the snapshot, replay the entries. A
// torn tail (the record being written when the crash hit) is detected
// by length/CRC framing and discarded; a segment whose snapshot itself
// is torn is skipped in favor of its predecessor, which rotation keeps
// on disk until the successor is durable.
//
// Record framing: [4B LE length][4B LE CRC32-IEEE of payload][payload].
package durability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/protocol"
)

const (
	magic      = "DSMWAL1\n"
	segPattern = "seg-%08d.wal"
	// maxRecord bounds a record's declared length so a corrupt header
	// cannot trigger a giant allocation.
	maxRecord = 1 << 26
)

// ErrCorrupt reports an unrecoverable journal (bad magic, corrupt
// snapshot in every segment, or undecodable entry framing where a clean
// tail was required).
var ErrCorrupt = errors.New("durability: corrupt journal")

// EntryKind enumerates journaled operations.
type EntryKind uint8

// Journal entry kinds. The zero value is reserved: record payloads
// starting with 0 cannot be confused with entries (and the snapshot
// record is positional, never tagged).
const (
	// EntryLocalWrite journals a local write w(Var)=Val.
	EntryLocalWrite EntryKind = 1 + iota
	// EntryRead journals a state-mutating read of Var (OptP read-merge).
	EntryRead
	// EntryApply journals a remote update applied here.
	EntryApply
	// EntryDiscard journals a writing-semantics discard of Update.
	EntryDiscard
	// EntryToken journals a token visit consumed here (WS-send), so
	// replay re-drains the same pending batch.
	EntryToken
)

// String implements fmt.Stringer.
func (k EntryKind) String() string {
	switch k {
	case EntryLocalWrite:
		return "local-write"
	case EntryRead:
		return "read"
	case EntryApply:
		return "apply"
	case EntryDiscard:
		return "discard"
	case EntryToken:
		return "token"
	default:
		return fmt.Sprintf("EntryKind(%d)", int(k))
	}
}

// Entry is one journaled operation.
type Entry struct {
	Kind EntryKind
	// Var and Val carry the location and value for EntryLocalWrite;
	// EntryRead uses Var only.
	Var int
	Val int64
	// Visit is the token visit number for EntryToken.
	Visit int
	// Update is the full remote update for EntryApply / EntryDiscard.
	Update protocol.Update
}

// appendEntry appends e's payload encoding to dst.
func appendEntry(dst []byte, e Entry) []byte {
	dst = append(dst, byte(e.Kind))
	switch e.Kind {
	case EntryLocalWrite:
		dst = binary.AppendVarint(dst, int64(e.Var))
		dst = binary.AppendVarint(dst, e.Val)
	case EntryRead:
		dst = binary.AppendVarint(dst, int64(e.Var))
	case EntryApply, EntryDiscard:
		dst = e.Update.AppendBinary(dst)
	case EntryToken:
		dst = binary.AppendVarint(dst, int64(e.Visit))
	}
	return dst
}

// decodeEntry decodes one entry payload.
func decodeEntry(buf []byte) (Entry, error) {
	var e Entry
	if len(buf) == 0 {
		return e, fmt.Errorf("%w: empty entry", ErrCorrupt)
	}
	e.Kind = EntryKind(buf[0])
	rest := buf[1:]
	readV := func() (int64, error) {
		v, k := binary.Varint(rest)
		if k <= 0 {
			return 0, fmt.Errorf("%w: truncated %v entry", ErrCorrupt, e.Kind)
		}
		rest = rest[k:]
		return v, nil
	}
	switch e.Kind {
	case EntryLocalWrite:
		x, err := readV()
		if err != nil {
			return e, err
		}
		v, err := readV()
		if err != nil {
			return e, err
		}
		e.Var, e.Val = int(x), v
	case EntryRead:
		x, err := readV()
		if err != nil {
			return e, err
		}
		e.Var = int(x)
	case EntryApply, EntryDiscard:
		u, n, err := protocol.DecodeUpdate(rest)
		if err != nil {
			return e, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		e.Update, rest = u, rest[n:]
	case EntryToken:
		v, err := readV()
		if err != nil {
			return e, err
		}
		e.Visit = int(v)
	default:
		return e, fmt.Errorf("%w: unknown entry kind %d", ErrCorrupt, buf[0])
	}
	if len(rest) != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes in %v entry", ErrCorrupt, len(rest), e.Kind)
	}
	return e, nil
}

// WAL is an open, appendable journal for one replica. It is not safe
// for concurrent use; the owning node serializes access under its lock.
type WAL struct {
	dir     string
	sync    bool
	f       *os.File
	gen     uint64
	entries int
	scratch []byte

	// onSync, when set, observes the duration of every journal fsync —
	// the observability layer's WAL latency histogram. Called with the
	// WAL's lock discipline (the owning node's lock), so it must not
	// re-enter the WAL.
	onSync func(time.Duration)
}

// SetSyncObserver installs a callback timing every fsync (nil removes
// it).
func (w *WAL) SetSyncObserver(fn func(time.Duration)) { w.onSync = fn }

// timedSync fsyncs f, feeding the observer when installed.
func (w *WAL) timedSync(f *os.File) error {
	if w.onSync == nil {
		return f.Sync()
	}
	start := time.Now()
	err := f.Sync()
	w.onSync(time.Since(start))
	return err
}

// Create opens a fresh journal generation in dir (creating it if
// needed), whose first record is the given snapshot. Older segments are
// removed once the new one is durable, so Create both initializes a
// brand-new journal and supersedes a recovered one.
func Create(dir string, syncEvery bool, snapshot []byte) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}
	gens, err := listGens(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(0)
	if len(gens) > 0 {
		next = gens[len(gens)-1] + 1
	}
	w := &WAL{dir: dir, sync: syncEvery}
	if err := w.rotate(next, snapshot); err != nil {
		return nil, err
	}
	return w, nil
}

// rotate writes a new segment whose first record is snapshot, makes it
// durable, points the WAL at it, and removes older segments.
func (w *WAL) rotate(gen uint64, snapshot []byte) error {
	path := filepath.Join(w.dir, fmt.Sprintf(segPattern, gen))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	w.scratch = appendRecord(w.scratch[:0], snapshot)
	if _, err := f.Write(append([]byte(magic), w.scratch...)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durability: %w", err)
	}
	if err := w.timedSync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durability: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	syncDir(w.dir)
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f, w.gen, w.entries = nf, gen, 0
	// Older generations are superseded; drop them so recovery replay
	// stays bounded by one snapshot interval.
	gens, err := listGens(w.dir)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if g < gen {
			os.Remove(filepath.Join(w.dir, fmt.Sprintf(segPattern, g)))
		}
	}
	return nil
}

// Append journals one entry.
func (w *WAL) Append(e Entry) error {
	if w.f == nil {
		return fmt.Errorf("durability: append to closed WAL")
	}
	w.scratch = appendRecord(w.scratch[:0], appendEntry(nil, e))
	if _, err := w.f.Write(w.scratch); err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	if w.sync {
		if err := w.timedSync(w.f); err != nil {
			return fmt.Errorf("durability: %w", err)
		}
	}
	w.entries++
	return nil
}

// Snapshot rotates to a new segment headed by the given state, resetting
// the entry count. Callers snapshot when Entries grows past their
// interval, bounding recovery replay.
func (w *WAL) Snapshot(snapshot []byte) error {
	if w.f == nil {
		return fmt.Errorf("durability: snapshot of closed WAL")
	}
	return w.rotate(w.gen+1, snapshot)
}

// Entries returns the number of entries appended since the current
// snapshot.
func (w *WAL) Entries() int { return w.entries }

// Close syncs and closes the journal. The on-disk state remains
// recoverable.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.timedSync(w.f)
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if err != nil {
		return fmt.Errorf("durability: %w", err)
	}
	return nil
}

// Recover reads the newest intact segment in dir, returning its
// snapshot and the entries appended after it. A torn tail is silently
// dropped (those operations died with the crash); a segment whose
// snapshot record is unreadable is skipped in favor of an older one.
func Recover(dir string) (snapshot []byte, entries []Entry, err error) {
	gens, err := listGens(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(gens) == 0 {
		return nil, nil, fmt.Errorf("%w: no segments in %s", ErrCorrupt, dir)
	}
	for i := len(gens) - 1; i >= 0; i-- {
		path := filepath.Join(dir, fmt.Sprintf(segPattern, gens[i]))
		snap, ents, serr := readSegment(path)
		if serr == nil {
			return snap, ents, nil
		}
		err = serr
	}
	return nil, nil, fmt.Errorf("durability: no recoverable segment in %s: %w", dir, err)
}

// readSegment parses one segment file. The snapshot record must be
// intact; entry records are read until EOF or the first torn/corrupt
// record, which ends the (crashed) log.
func readSegment(path string) ([]byte, []Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("durability: %w", err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, nil, fmt.Errorf("%w: bad magic in %s", ErrCorrupt, path)
	}
	rest := data[len(magic):]
	snap, rest, err := readRecord(rest)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: snapshot record in %s: %v", ErrCorrupt, path, err)
	}
	var entries []Entry
	for len(rest) > 0 {
		payload, next, err := readRecord(rest)
		if err != nil {
			break // torn tail: the record being written at crash time
		}
		e, err := decodeEntry(payload)
		if err != nil {
			break
		}
		entries = append(entries, e)
		rest = next
	}
	return snap, entries, nil
}

// appendRecord frames payload onto dst.
func appendRecord(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readRecord unframes one record, returning its payload and the
// remaining buffer.
func readRecord(buf []byte) (payload, rest []byte, err error) {
	if len(buf) < 8 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(buf[0:])
	sum := binary.LittleEndian.Uint32(buf[4:])
	if n > maxRecord || uint64(len(buf)-8) < uint64(n) {
		return nil, nil, io.ErrUnexpectedEOF
	}
	payload = buf[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, fmt.Errorf("record CRC mismatch")
	}
	return payload, buf[8+n:], nil
}

// listGens returns the segment generations present in dir, ascending.
// A missing directory is an empty journal, not an error.
func listGens(dir string) ([]uint64, error) {
	des, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}
	var gens []uint64
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var g uint64
		if _, err := fmt.Sscanf(name, segPattern, &g); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// syncDir fsyncs a directory so a rename is durable; best-effort (some
// filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
