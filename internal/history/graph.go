package history

import (
	"fmt"
	"sort"
	"strings"
)

// WriteGraph is the write causality graph of Section 4.3: a DAG whose
// vertices are the writes of a history, with an edge w → w' iff
// w →co⁰ w' (w is an *immediate* predecessor of w': no write w” lies
// strictly between them wrt →co). It is the transitive reduction of →co
// restricted to writes.
type WriteGraph struct {
	// Vertices in flattened history order.
	Vertices []WriteID
	// Edges[v] lists the immediate successors of Vertices[v] as vertex
	// indices, sorted.
	Edges [][]int

	index map[WriteID]int
}

// WriteGraph computes the write causality graph from the vector
// representation in O(W·P²) instead of the all-pairs scan kept on
// DenseCausality. For each write b, the only candidate immediate
// predecessors are the per-process maxima of its strict write past —
// write (p, wvecStrict(b)[p]) for each p, at most one per process, as
// the paper observes. A candidate a is immediate iff no other candidate
// a' has a →co a' (any write strictly between a and b is dominated by
// the maximum of its own process, which is itself a candidate), which is
// again a single vector-component test per pair.
func (c *Causality) WriteGraph() *WriteGraph {
	writes := c.h.Writes() // global op indices of writes, flattened order
	g := &WriteGraph{index: make(map[WriteID]int, len(writes))}
	for v, gi := range writes {
		g.Vertices = append(g.Vertices, c.h.ops[gi].ID)
		g.index[c.h.ops[gi].ID] = v
	}
	g.Edges = make([][]int, len(writes))
	cand := make([]int, 0, c.np) // candidate global indices, reused per b
	for b, gb := range writes {
		id := c.h.ops[gb].ID
		row := c.wvec[gb*c.np : (gb+1)*c.np]
		cand = cand[:0]
		for p := 0; p < c.np; p++ {
			s := int(row[p])
			if p == id.Proc {
				s-- // exclude b itself from its strict past
			}
			if s >= 1 {
				cand = append(cand, c.writesBy[p][s-1])
			}
		}
		for _, ga := range cand {
			aid := c.h.ops[ga].ID
			immediate := true
			for _, gm := range cand {
				if gm != ga && c.wvec[gm*c.np+aid.Proc] >= uint64(aid.Seq) {
					immediate = false
					break
				}
			}
			if immediate {
				// Outer loop visits b in ascending vertex order, so each
				// successor list is built already sorted.
				g.Edges[g.index[aid]] = append(g.Edges[g.index[aid]], b)
			}
		}
	}
	return g
}

// VertexOf returns the vertex index of id, or -1.
func (g *WriteGraph) VertexOf(id WriteID) int {
	if v, ok := g.index[id]; ok {
		return v
	}
	return -1
}

// ImmediatePredecessors returns the IDs of the immediate →co⁰
// predecessors of id. Per the paper there are at most n of them, one per
// process.
func (g *WriteGraph) ImmediatePredecessors(id WriteID) []WriteID {
	v := g.VertexOf(id)
	if v < 0 {
		return nil
	}
	var preds []WriteID
	for a, succs := range g.Edges {
		for _, b := range succs {
			if b == v {
				preds = append(preds, g.Vertices[a])
			}
		}
	}
	return preds
}

// EdgeList returns the edges as "w1#1 -> w2#1" strings, sorted, a stable
// form for tests and the Figure 7 renderer.
func (g *WriteGraph) EdgeList() []string {
	var out []string
	for a, succs := range g.Edges {
		for _, b := range succs {
			out = append(out, fmt.Sprintf("%v -> %v", g.Vertices[a], g.Vertices[b]))
		}
	}
	sort.Strings(out)
	return out
}

// NumEdges returns the number of edges.
func (g *WriteGraph) NumEdges() int {
	n := 0
	for _, e := range g.Edges {
		n += len(e)
	}
	return n
}

// DOT renders the graph in Graphviz format with operations labelled in
// the paper's notation.
func (g *WriteGraph) DOT(h *History) string {
	var b strings.Builder
	b.WriteString("digraph writeco {\n  rankdir=TB;\n")
	for v, id := range g.Vertices {
		label := id.String()
		if gi := h.WriteIndex(id); gi >= 0 {
			label = h.Ops()[gi].String()
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for a, succs := range g.Edges {
		for _, bb := range succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", a, bb)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
