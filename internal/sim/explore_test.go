package sim

import (
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
)

// Engine-level schedule exploration: for a tiny await-free workload
// (all sends happen at t=0, so arrival times alone determine the
// schedule), enumerate arrival-rank assignments per (message,
// destination) and verify, through the FULL engine path (receipt,
// buffering, drain, trace accounting), that every schedule yields a
// live, safe, consistent run and that OptP never buffers unnecessarily.
//
// With w writes and r receivers there are (w!)^r arrival orders; the
// workload below keeps that at 6^2 = 36 schedules per protocol.
func TestExploreAllArrivalSchedules(t *testing.T) {
	// p0: two writes to x0 (process-order chain).
	// p1: one write to x1 (concurrent with p0's).
	// p2: silent observer.
	scripts := []Script{
		NewScript().Write(0, 1).Write(0, 2),
		NewScript().Write(1, 3),
		NewScript(),
	}
	writes := []history.WriteID{{Proc: 0, Seq: 1}, {Proc: 0, Seq: 2}, {Proc: 1, Seq: 1}}
	perms := [][]int{}
	permutations(len(writes), func(order []int) {
		cp := make([]int, len(order))
		copy(cp, order)
		perms = append(perms, cp)
	})

	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv, protocol.OptPWS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			schedules := 0
			for _, o1 := range perms { // arrival ranks at p1 (receives p0's two + nothing of its own)
				for _, o2 := range perms { // arrival ranks at p2
					lat := NewScriptedLatency(1000)
					for rank, wi := range o1 {
						lat.Set(writes[wi], 1, int64(10+rank*10))
					}
					for rank, wi := range o2 {
						lat.Set(writes[wi], 2, int64(10+rank*10))
					}
					// p0 receives p1's write at a fixed time.
					lat.Set(writes[2], 0, 10)

					res, err := Run(Config{Procs: 3, Vars: 2, Protocol: kind, Latency: lat}, scripts)
					if err != nil {
						t.Fatalf("schedule %v/%v: %v", o1, o2, err)
					}
					schedules++
					// Everything applied everywhere (logical applies
					// included for writing semantics).
					for p := 0; p < 3; p++ {
						if got := len(res.Log.LogicallyAppliedAt(p)); got != len(writes) {
							t.Fatalf("schedule %v/%v: p%d applied %d of %d",
								o1, o2, p+1, got, len(writes))
						}
					}
					// The engine's delays must match first-principles
					// expectations: only w1#2-before-w1#1 can block
					// (under OptP semantics; for WS kinds a skip
					// absorbs even that).
					delays := res.Log.DelayCount()
					w2BeforeW1At := 0
					for _, o := range [][]int{o1, o2} {
						if indexOf(o, 1) < indexOf(o, 0) {
							w2BeforeW1At++
						}
					}
					switch kind {
					case protocol.OptP, protocol.ANBKH:
						if delays != w2BeforeW1At {
							t.Fatalf("schedule %v/%v: delays = %d, want %d", o1, o2, delays, w2BeforeW1At)
						}
					case protocol.WSRecv, protocol.OptPWS:
						// The overtaking write skips its predecessor:
						// no buffering at all.
						if delays != 0 {
							t.Fatalf("schedule %v/%v: delays = %d, want 0 (skip)", o1, o2, delays)
						}
					}
				}
			}
			if schedules != 36 {
				t.Fatalf("explored %d schedules", schedules)
			}
		})
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// permutations mirrors the protocol package's test helper (kept local:
// test helpers are not exported across packages).
func permutations(k int, fn func(order []int)) {
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			fn(order)
			return
		}
		for j := i; j < k; j++ {
			order[i], order[j] = order[j], order[i]
			rec(i + 1)
			order[i], order[j] = order[j], order[i]
		}
	}
	rec(0)
}

// Single-writer-per-variable workloads converge: after quiescence all
// replicas hold identical values (no concurrent writes to one variable,
// so apply order per variable is fixed by →co).
func TestSingleWriterConvergence(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv} {
		for seed := uint64(1); seed <= 6; seed++ {
			rng := NewRNG(seed)
			n := 4
			scripts := make([]Script, n)
			for p := 0; p < n; p++ {
				s := NewScript()
				for i := 1; i <= 12; i++ {
					s = s.Sleep(int64(1 + rng.Intn(40)))
					if rng.Intn(3) == 0 {
						s = s.Read(rng.Intn(n))
					} else {
						s = s.Write(p, int64(p*1000+i)) // own variable only
					}
				}
				scripts[p] = s
			}
			res, err := Run(Config{
				Procs: n, Vars: n, Protocol: kind,
				Latency: NewUniformLatency(1, 300, seed*7),
			}, scripts)
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			for x := 0; x < n; x++ {
				base, baseID := res.Replicas[0].(protocol.Introspector).Value(x)
				for p := 1; p < n; p++ {
					v, id := res.Replicas[p].(protocol.Introspector).Value(x)
					if v != base || id != baseID {
						t.Fatalf("%v seed %d: x%d diverged: p1=%d(%v) p%d=%d(%v)",
							kind, seed, x+1, base, baseID, p+1, v, id)
					}
				}
			}
		}
	}
}

// Exploration sanity: the delay formula above is validated against a
// couple of hand-checked schedules.
func TestExploreHandChecked(t *testing.T) {
	scripts := []Script{
		NewScript().Write(0, 1).Write(0, 2),
		NewScript().Write(1, 3),
		NewScript(),
	}
	w1 := history.WriteID{Proc: 0, Seq: 1}
	w2 := history.WriteID{Proc: 0, Seq: 2}
	// w2 overtakes w1 at BOTH receivers.
	lat := NewScriptedLatency(50).
		Set(w2, 1, 10).Set(w1, 1, 20).
		Set(w2, 2, 10).Set(w1, 2, 20)
	res, err := Run(Config{Procs: 3, Vars: 2, Protocol: protocol.OptP, Latency: lat}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Log.DelayCount(); got != 2 {
		t.Fatalf("delays = %d, want 2", got)
	}
}
