package protocol

import (
	"bytes"
	"math/rand"
	"testing"
)

// miniEngine drives n replicas of one kind through a workload without
// the live runtime: per-replica inbox queues, a pending buffer drained
// to fixpoint, and token circulation for WSSend. It exists to put
// replicas into richly populated states (buffered updates, skips,
// suppressed writes, mid-round batches) for the codec tests.
type miniEngine struct {
	reps    []Replica
	inbox   [][]Update
	pending [][]Update
	visit   int
	all     []Update // every update ever broadcast (probe set)
}

func newMiniEngine(kind Kind, n, m int) *miniEngine {
	e := &miniEngine{
		inbox:   make([][]Update, n),
		pending: make([][]Update, n),
	}
	for p := 0; p < n; p++ {
		e.reps = append(e.reps, New(kind, p, n, m))
	}
	return e
}

func (e *miniEngine) broadcast(from int, u Update) {
	e.all = append(e.all, u)
	for p := range e.reps {
		if p != from {
			e.inbox[p] = append(e.inbox[p], u)
		}
	}
}

func (e *miniEngine) write(p, x int, v int64) {
	u, ok := e.reps[p].LocalWrite(x, v)
	if ok {
		e.broadcast(p, u)
	}
}

func (e *miniEngine) token() {
	tb, ok := e.reps[e.visit%len(e.reps)].(TokenBatcher)
	if !ok {
		return
	}
	holder := e.visit % len(e.reps)
	batch := tb.OnToken(e.visit)
	if len(batch) == 0 {
		batch = []Update{Marker(holder, e.visit)}
	}
	for _, u := range batch {
		e.broadcast(holder, u)
	}
	e.visit++
}

// deliver moves k inbox updates of process p into the protocol, leaving
// blocked ones in the pending buffer (so snapshots can catch them
// there).
func (e *miniEngine) deliver(p, k int) {
	for ; k > 0 && len(e.inbox[p]) > 0; k-- {
		u := e.inbox[p][0]
		e.inbox[p] = e.inbox[p][1:]
		e.pending[p] = append(e.pending[p], u)
	}
	for progressed := true; progressed; {
		progressed = false
		for i, u := range e.pending[p] {
			switch e.reps[p].Status(u) {
			case Deliverable:
				e.reps[p].Apply(u)
			case Discardable:
				e.reps[p].Discard(u)
			default:
				continue
			}
			e.pending[p] = append(e.pending[p][:i], e.pending[p][i+1:]...)
			progressed = true
			break
		}
	}
}

// checkEquivalent asserts that got behaves identically to want: same
// introspected state, same values, and the same verdicts on every
// update the run ever produced.
func checkEquivalent(t *testing.T, kind Kind, want, got Replica, probes []Update, m int) {
	t.Helper()
	wi, gi := want.(Introspector), got.(Introspector)
	if !wi.ControlClock().Equal(gi.ControlClock()) {
		t.Fatalf("%v: control clock %v != %v", kind, gi.ControlClock(), wi.ControlClock())
	}
	if !wi.ApplyClock().Equal(gi.ApplyClock()) {
		t.Fatalf("%v: apply clock %v != %v", kind, gi.ApplyClock(), wi.ApplyClock())
	}
	for x := 0; x < m; x++ {
		wv, wid := wi.Value(x)
		gv, gid := gi.Value(x)
		if wv != gv || wid != gid {
			t.Fatalf("%v: x%d = (%d,%v), want (%d,%v)", kind, x+1, gv, gid, wv, wid)
		}
	}
	wr, gr := want.(Resumer), got.(Resumer)
	for _, u := range probes {
		if ws, gs := want.Status(u), got.Status(u); ws != gs {
			t.Fatalf("%v: Status(%v) = %v, want %v", kind, u, gs, ws)
		}
		if wn, gn := wr.NeedsUpdate(u), gr.NeedsUpdate(u); wn != gn {
			t.Fatalf("%v: NeedsUpdate(%v) = %v, want %v", kind, u, gn, wn)
		}
	}
}

// TestStateRoundTripAllKinds drives every protocol through a seeded
// workload and, at several points per replica, exports the state,
// restores it into a fresh replica, and demands full behavioral
// equivalence plus deterministic re-encoding (restored state re-exports
// to the identical bytes).
func TestStateRoundTripAllKinds(t *testing.T) {
	const n, m, steps = 3, 3, 120
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			e := newMiniEngine(kind, n, m)
			check := func() {
				for p, r := range e.reps {
					data := ExportState(r)
					fresh := New(kind, p, n, m)
					consumed, err := fresh.(StateCodec).RestoreState(data)
					if err != nil {
						t.Fatalf("restore p%d: %v", p+1, err)
					}
					if consumed != len(data) {
						t.Fatalf("restore p%d consumed %d of %d bytes", p+1, consumed, len(data))
					}
					if again := ExportState(fresh); !bytes.Equal(again, data) {
						t.Fatalf("p%d re-export differs: %x != %x", p+1, again, data)
					}
					checkEquivalent(t, kind, r, fresh, e.all, m)
				}
			}
			for i := 0; i < steps; i++ {
				p := rng.Intn(n)
				switch rng.Intn(5) {
				case 0, 1:
					e.write(p, rng.Intn(m), int64(i+1))
				case 2:
					e.reps[p].Read(rng.Intn(m))
				case 3:
					e.deliver(p, 1+rng.Intn(2))
				case 4:
					e.token()
				}
				if i%17 == 0 {
					check()
				}
			}
			// Drain everything and check the converged states too.
			for r := 0; r < 4*n; r++ {
				e.token()
				for p := 0; p < n; p++ {
					e.deliver(p, len(e.inbox[p]))
				}
			}
			check()
		})
	}
}

// TestStateRestoreErrors: truncation, kind mismatch and shape mismatch
// must surface ErrStateCorrupt-style errors, never panics.
func TestStateRestoreErrors(t *testing.T) {
	for _, kind := range Kinds() {
		r := New(kind, 0, 3, 2)
		r.LocalWrite(0, 7)
		data := ExportState(r)

		for cut := 0; cut < len(data); cut++ {
			fresh := New(kind, 0, 3, 2)
			if _, err := fresh.(StateCodec).RestoreState(data[:cut]); err == nil {
				t.Fatalf("%v: truncation at %d accepted", kind, cut)
			}
		}
		// A different kind's encoding must be rejected by the tag.
		for _, other := range Kinds() {
			if other == kind {
				continue
			}
			fresh := New(other, 0, 3, 2)
			if _, err := fresh.(StateCodec).RestoreState(data); err == nil {
				t.Fatalf("%v state accepted by %v", kind, other)
			}
		}
		// A different cluster shape must be rejected.
		fresh := New(kind, 0, 4, 2)
		if _, err := fresh.(StateCodec).RestoreState(data); err == nil {
			t.Fatalf("%v: wrong process count accepted", kind)
		}
	}
}

// TestReadMutatesState pins down which kinds journal reads.
func TestReadMutatesState(t *testing.T) {
	want := map[Kind]bool{
		OptP: true, OptPWS: true, PartialRep: true,
		ANBKH: false, WSRecv: false, WSSend: false, OptPNoReadMerge: false,
	}
	for _, kind := range Kinds() {
		if got := kind.ReadMutatesState(); got != want[kind] {
			t.Errorf("%v.ReadMutatesState() = %v, want %v", kind, got, want[kind])
		}
	}
}

// TestNeedsUpdateFresh: a fresh replica needs every peer write and no
// marker from round 0 onward is refused before its time.
func TestNeedsUpdateFresh(t *testing.T) {
	for _, kind := range Kinds() {
		r := New(kind, 0, 3, 2).(Resumer)
		peer := New(kind, 1, 3, 2)
		u, ok := peer.LocalWrite(0, 5)
		if !ok {
			// WSSend defers; pull the write out with a token visit.
			batch := peer.(TokenBatcher).OnToken(0)
			if len(batch) != 1 {
				t.Fatalf("%v: token batch = %d updates", kind, len(batch))
			}
			u = batch[0]
		}
		if !r.NeedsUpdate(u) {
			t.Errorf("%v: fresh replica refuses %v", kind, u)
		}
	}
}
