package paperrepro

import (
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sequenceAt renders process p's event sequence from a run in the
// paper's "<_k" chain notation, e.g.
//
//	receipt3(w2(x2)b) <3 receipt3(w1(x1)a) <3 apply3(w1(x1)a) <3 ...
//
// Send and Token events are omitted; local writes (Issue) render as the
// process's own apply events, matching the paper's figures.
func sequenceAt(log *trace.Log, p int) string {
	var parts []string
	for _, e := range log.Events {
		if e.Proc != p {
			continue
		}
		switch e.Kind {
		case trace.Receipt:
			parts = append(parts, fmt.Sprintf("receipt%d(%s)", p+1, writeName(e.Write)))
		case trace.Apply, trace.Issue:
			parts = append(parts, fmt.Sprintf("apply%d(%s)", p+1, writeName(e.Write)))
		case trace.Return:
			parts = append(parts, fmt.Sprintf("return%d(x%d,%s)", p+1, e.Var+1, valName(e.Val)))
		case trace.Discard:
			parts = append(parts, fmt.Sprintf("discard%d(%s)", p+1, writeName(e.Write)))
		}
	}
	return strings.Join(parts, fmt.Sprintf(" <%d ", p+1))
}

// delaySummary renders the classified write delays of a run.
func delaySummary(rep *checker.Report) string {
	if len(rep.Delays) == 0 {
		return "write delays: none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "write delays: %d (%d necessary, %d unnecessary)",
		len(rep.Delays), rep.NecessaryDelays, rep.UnnecessaryDelays)
	for _, d := range rep.Delays {
		verdict := "UNNECESSARY"
		if d.Necessary {
			verdict = fmt.Sprintf("necessary (missing %s)", writeName(d.MissingWrite))
		}
		fmt.Fprintf(&b, "\n  %s buffered at p%d for %d ticks — %s",
			writeName(d.Write), d.Proc+1, d.Duration(), verdict)
	}
	return b.String()
}

// runAndAudit executes an Ĥ1 scenario and audits it.
func runAndAudit(kind protocol.Kind, lat sim.Latency, readDelay int64) (*sim.Result, *checker.Report, error) {
	res, err := RunH1(kind, lat, readDelay)
	if err != nil {
		return nil, nil, err
	}
	rep, err := checker.Audit(res.Log)
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}

// Fig1 regenerates Figure 1: two sequences that could occur at p3
// compliant with Ĥ1 — run (1) with no write delay, run (2) with one
// (necessary) delay caused by b overtaking a.
func Fig1() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 1. Two sequences that could occur at process p3 compliant with Ĥ1.\n\n")

	res1, rep1, err := runAndAudit(protocol.OptP, Fig1Run1Latency(), 0)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "(1) %s\n    %s\n\n", sequenceAt(res1.Log, 2), delaySummary(rep1))

	res2, rep2, err := runAndAudit(protocol.OptP, Fig36Latency(), 40)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "(2) %s\n    %s\n", sequenceAt(res2.Log, 2), delaySummary(rep2))
	return b.String(), nil
}

// Fig2 regenerates Figure 2 and the Section 3.5 analysis: a safe
// protocol P with X_P(apply3(w2(x2)b)) = {apply3(a), apply3(c)}
// (instantiated as the OptP read-merge ablation, which manufactures
// exactly that enabling set) delays b although everything in its causal
// past is applied; OptP executes no delay on the same arrival order.
func Fig2() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 2. A sequence that could occur at process p3 compliant with Ĥ1\n")
	b.WriteString("under a safe but NON-optimal P (X_P ⊃ X_co-safe).\n\n")

	resP, repP, err := runAndAudit(protocol.OptPNoReadMerge, Fig2Latency(), 0)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "P:    %s\n      %s\n\n", sequenceAt(resP.Log, 2), delaySummary(repP))

	resO, repO, err := runAndAudit(protocol.OptP, Fig2Latency(), 0)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "OptP: %s\n      %s\n", sequenceAt(resO.Log, 2), delaySummary(repO))
	return b.String(), nil
}

// Fig3 regenerates Figure 3: the ANBKH run of Ĥ1 in which
// apply3(w2(x2)b) is postponed past apply3(w1(x1)c) — false causality.
func Fig3() (string, error) {
	res, rep, err := runAndAudit(protocol.ANBKH, Fig36Latency(), 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 3. A run of ANBKH compliant with Ĥ1.\n\n")
	for p := 0; p < 3; p++ {
		fmt.Fprintf(&b, "p%d: %s\n", p+1, sequenceAt(res.Log, p))
	}
	fmt.Fprintf(&b, "\n%s\n", delaySummary(rep))
	fmt.Fprintf(&b, "\nmessage clocks: b carries VT = %v (absorbs the applied-but-unread c)\n",
		res.Updates[WB].Clock)
	return b.String(), nil
}

// Fig6 regenerates Figure 6: the OptP run of Ĥ1, including the
// Write_co evolution the figure annotates. p3 applies b as soon as a is
// in, even though c has not arrived.
func Fig6() (string, error) {
	res, rep, err := runAndAudit(protocol.OptP, Fig36Latency(), 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 6. A run of OptP compliant with Ĥ1.\n\n")
	for p := 0; p < 3; p++ {
		fmt.Fprintf(&b, "p%d: %s\n", p+1, sequenceAt(res.Log, p))
	}
	fmt.Fprintf(&b, "\n%s\n\nWrite_co evolution:\n", delaySummary(rep))
	for _, w := range writeOrder {
		fmt.Fprintf(&b, "  %s.Write_co = %v\n", writeName(w), res.Updates[w].Clock)
	}
	for p, r := range res.Replicas {
		in := r.(protocol.Introspector)
		fmt.Fprintf(&b, "  p%d final: Write_co = %v, Apply = %v\n",
			p+1, in.ControlClock(), in.ApplyClock())
	}
	b.WriteString("\nNote: w2(x2)b.Write_co = [1 1 0] does not track w1(x1)c even though c was\n")
	b.WriteString("applied at p2 before b was issued — p2 never read it (no →co edge).\n")
	return b.String(), nil
}

// Fig7 regenerates Figure 7: the write causality graph of Ĥ1, both as
// an edge list and in Graphviz DOT.
//
// Per the definitions (and Example 1's own concurrency facts,
// w1(x1)c ‖co w3(x2)d), the edge set is {a→c, a→b, b→d}; the paper's
// prose claim that c is an immediate predecessor of d contradicts its
// Example 1 and is recorded as a typo in EXPERIMENTS.md.
func Fig7() (string, error) {
	h, _ := history.H1()
	c, err := h.Causality()
	if err != nil {
		return "", err
	}
	g := c.WriteGraph()
	var b strings.Builder
	b.WriteString("Figure 7. Causality graph of Ĥ1.\n\n")
	for a, succs := range g.Edges {
		for _, to := range succs {
			fmt.Fprintf(&b, "  %s -> %s\n", writeName(g.Vertices[a]), writeName(g.Vertices[to]))
		}
	}
	b.WriteString("\nDOT:\n")
	b.WriteString(g.DOT(h))
	return b.String(), nil
}

// Artifacts maps artifact names to their renderers, in paper order.
func Artifacts() []struct {
	Name   string
	Render func() (string, error)
} {
	return []struct {
		Name   string
		Render func() (string, error)
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"fig1", Fig1},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig6", Fig6},
		{"fig7", Fig7},
	}
}

// All renders every artifact separated by rules.
func All() (string, error) {
	var b strings.Builder
	for _, a := range Artifacts() {
		s, err := a.Render()
		if err != nil {
			return "", fmt.Errorf("paperrepro: %s: %w", a.Name, err)
		}
		b.WriteString(s)
		b.WriteString("\n" + strings.Repeat("=", 78) + "\n\n")
	}
	return b.String(), nil
}
