package service

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/obs/reqtrace"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// The write pump: one per replica. Write requests funnel through it so
// the server can batch them — one goroutine issues the whole batch
// back-to-back into the cluster hot path and takes a single frontier
// snapshot to stamp every response token, instead of one lock
// round-trip per write — and coalesce them: adjacent batch entries
// writing the same variable from the same connection collapse to the
// last one, the sender-side analogue of WSSend's suppressed writes,
// safe because the collapsed writes were overwritten by their own
// session before anything could observe them. Entries from different
// connections never coalesce and never reorder, so cross-client
// interleavings reach the cluster exactly as they arrived.

// writeReq is one write waiting in a pump.
type writeReq struct {
	src   *srvConn // coalescing identity (one connection = one client)
	x     int
	v     int64
	token vclock.VC
	trace *reqtrace.Req
	reply chan protocol.Response
}

// pump batches writes for one replica.
type pump struct {
	s       *Server
	proc    int
	node    *core.Node
	ch      chan writeReq
	stopped chan struct{}
	done    chan struct{}
}

func newPump(s *Server, proc int) *pump {
	p := &pump{
		s:       s,
		proc:    proc,
		node:    s.cfg.Cluster.Node(proc),
		ch:      make(chan writeReq, s.cfg.MaxQueue),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go p.loop()
	return p
}

// stop terminates the pump after the current batch; queued and future
// submissions get StatusShutdown.
func (p *pump) stop() {
	close(p.stopped)
	<-p.done
}

// submit hands one write to the pump and waits for its response. src
// is the coalescing identity (nil never coalesces). The pump always
// replies, so the caller cannot leak. Admission is bounded: a full
// queue sheds the write with StatusOverloaded instead of blocking the
// connection's pipeline slot behind a backed-up replica.
func (p *pump) submit(src *srvConn, req protocol.Request, q *reqtrace.Req) protocol.Response {
	w := writeReq{
		src: src, x: req.Var, v: req.Val, token: req.Token, trace: q,
		reply: make(chan protocol.Response, 1),
	}
	select {
	case p.ch <- w:
		return <-w.reply
	case <-p.stopped:
		return protocol.Response{Status: protocol.StatusShutdown, Proc: p.proc, Err: "server draining"}
	default:
		p.s.met.shed.Inc()
		return protocol.Response{
			Status: protocol.StatusOverloaded, Proc: p.proc,
			Err: fmt.Sprintf("replica %d write queue full", p.proc),
		}
	}
}

// loop drains the queue in batches.
func (p *pump) loop() {
	defer close(p.done)
	for {
		var first writeReq
		select {
		case first = <-p.ch:
		case <-p.stopped:
			p.drainShutdown()
			return
		}
		batch := p.gather(first)
		p.issue(batch)
	}
}

// gather collects a batch: the first write plus whatever else is
// queued, lingering up to BatchWindow for more when configured.
func (p *pump) gather(first writeReq) []writeReq {
	batch := []writeReq{first}
	max := p.s.cfg.MaxBatch
	var window <-chan time.Time
	if p.s.cfg.BatchWindow > 0 && max > 1 {
		t := time.NewTimer(p.s.cfg.BatchWindow)
		defer t.Stop()
		window = t.C
	}
	for len(batch) < max {
		select {
		case w := <-p.ch:
			batch = append(batch, w)
			continue
		default:
		}
		if window == nil {
			break
		}
		select {
		case w := <-p.ch:
			batch = append(batch, w)
		case <-window:
			return batch
		case <-p.stopped:
			// Issue what we have; stop is observed on the next loop turn.
			return batch
		}
	}
	return batch
}

// entry is one coalesced write: the final (x, v) plus every request it
// answers.
type entry struct {
	x    int
	v    int64
	acks []writeReq
}

// coalesce collapses adjacent same-variable writes from the same
// connection, newest wins. Only immediately-adjacent surviving entries
// merge, so a write to the same variable from another connection in
// between keeps both sides — cross-client order is preserved exactly.
func coalesce(batch []writeReq) []entry {
	out := make([]entry, 0, len(batch))
	for _, w := range batch {
		if n := len(out); n > 0 && w.src != nil &&
			out[n-1].x == w.x && len(out[n-1].acks) > 0 &&
			out[n-1].acks[len(out[n-1].acks)-1].src == w.src {
			out[n-1].v = w.v
			out[n-1].acks = append(out[n-1].acks, w)
			continue
		}
		out = append(out, entry{x: w.x, v: w.v, acks: []writeReq{w}})
	}
	return out
}

// issue writes the coalesced batch into the replica, snapshots the
// frontier once, and answers every request.
func (p *pump) issue(batch []writeReq) {
	entries := coalesce(batch)
	p.s.met.batches.Inc()
	p.s.met.batchedWrites.Add(uint64(len(batch)))
	p.s.met.coalescedWrites.Add(uint64(len(batch) - len(entries)))
	p.s.met.batchSize.Observe(int64(len(batch)))
	// Everything between the handler's submit and this point was time
	// spent queued in the pump.
	for i := range batch {
		batch[i].trace.Mark(reqtrace.StageBatchQueue)
	}

	// Issue until the first failure; the rest of the batch fails too,
	// because answering later writes OK after dropping earlier ones
	// would invert the session's write order.
	issued := len(entries)
	var failed error
	for i := range entries {
		if err := p.node.Write(entries[i].x, entries[i].v); err != nil {
			issued, failed = i, err
			break
		}
	}
	var frontier vclock.VC
	if issued > 0 {
		frontier = p.node.Frontier()
	}
	// All writes at replica p serialize through this pump, so the batch
	// entries got consecutive sequence numbers ending at the snapshot's
	// own component: entry i is write (p.proc, seq0+i+1) where seq0 was
	// the frontier before the batch. That WriteID is the hinge between a
	// request trace and the cluster's propagation spans.
	var seq0 int
	if frontier != nil {
		seq0 = int(frontier[p.proc]) - issued
	}
	for i, e := range entries {
		for _, w := range e.acks {
			if i >= issued {
				w.trace.Mark(reqtrace.StageApply)
				w.reply <- errResponse(p.proc, failed)
				continue
			}
			tok := frontier
			if tok != nil {
				tok = frontier.Clone()
				if len(w.token) == len(tok) {
					tok.Merge(w.token)
				}
			}
			if w.trace != nil {
				w.trace.WriteProc, w.trace.WriteSeq = p.proc, seq0+i+1
				w.trace.Mark(reqtrace.StageApply)
			}
			w.reply <- protocol.Response{
				Status: protocol.StatusOK, Proc: p.proc, Val: w.v,
				From:  history.WriteID{Proc: p.proc, Seq: seq0 + i + 1},
				Token: tok,
			}
		}
	}
}

// drainShutdown answers everything still queued after stop.
func (p *pump) drainShutdown() {
	for {
		select {
		case w := <-p.ch:
			w.reply <- protocol.Response{
				Status: protocol.StatusShutdown, Proc: p.proc, Err: "server draining",
			}
		default:
			return
		}
	}
}
