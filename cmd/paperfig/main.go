// Command paperfig regenerates the paper's tables and figures from
// live protocol runs on the deterministic simulator.
//
// Usage:
//
//	paperfig                  # render every artifact
//	paperfig -artifact fig3   # render one (table1, table2, fig1, fig2,
//	                          # fig3, fig6, fig7)
//	paperfig -list            # list artifact names
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/paperrepro"
)

func main() {
	artifact := flag.String("artifact", "", "artifact to render (default: all)")
	list := flag.Bool("list", false, "list artifact names and exit")
	outDir := flag.String("o", "", "write each artifact to <dir>/<name>.txt instead of stdout")
	flag.Parse()

	if *list {
		for _, a := range paperrepro.Artifacts() {
			fmt.Println(a.Name)
		}
		return
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for _, a := range paperrepro.Artifacts() {
			if *artifact != "" && a.Name != *artifact {
				continue
			}
			out, err := a.Render()
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, a.Name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
		return
	}
	if *artifact == "" {
		out, err := paperrepro.All()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	for _, a := range paperrepro.Artifacts() {
		if a.Name == *artifact {
			out, err := a.Render()
			if err != nil {
				fatal(err)
			}
			fmt.Print(out)
			return
		}
	}
	fatal(fmt.Errorf("unknown artifact %q (try -list)", *artifact))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfig:", err)
	os.Exit(1)
}
