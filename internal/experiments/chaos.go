package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Chaos is E-chaos: the live OptP cluster under transport fault
// injection. For each loss rate (duplication fixed at 0.1) a seeded
// random workload runs over the chaos stack — lossy, duplicating links
// under the ack/retransmit/dedup reliability sublayer — then the run
// must quiesce and pass the full audit: exactly-once application
// everywhere and zero unnecessary delays (Theorem 4 survives chaos).
// Reported are the delay counts, the reliability sublayer's work, and
// the visibility-latency tax that loss imposes via retransmission.
func Chaos() (Result, error) {
	const (
		procs   = 4
		vars    = 4
		ops     = 60
		dupRate = 0.1
	)
	r := Result{
		Name: "E-chaos",
		Desc: fmt.Sprintf("OptP under transport faults (%d procs × %d ops, dup rate %.2f, ack/retransmit sublayer)",
			procs, ops, dupRate),
		Header: []string{"loss", "delays", "unnecessary", "netdrops", "retransmits", "dupdiscards", "vis-p95", "quiesce", "audit"},
	}
	for _, loss := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		st, visP95, quiesce, audit, err := chaosRun(procs, vars, ops, loss, dupRate)
		if err != nil {
			return r, err
		}
		r.Stats = append(r.Stats, st)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.2f", loss),
			fmt.Sprintf("%d", st.Delays),
			fmt.Sprintf("%d", audit.unnecessary),
			fmt.Sprintf("%d", st.NetDrops),
			fmt.Sprintf("%d", st.Retransmits),
			fmt.Sprintf("%d", st.DupDiscards),
			visP95.Round(time.Microsecond).String(),
			quiesce.Round(time.Microsecond).String(),
			audit.verdict,
		})
	}
	return r, nil
}

type chaosAudit struct {
	unnecessary int
	verdict     string
}

func chaosRun(procs, vars, ops int, loss, dup float64) (trace.RunStats, time.Duration, time.Duration, chaosAudit, error) {
	var zero trace.RunStats
	c, err := core.NewCluster(core.Config{
		Processes: procs, Variables: vars, Protocol: protocol.OptP,
		MaxDelay: 200 * time.Microsecond, Seed: 42,
		Chaos: transport.ChaosConfig{
			LossRate: loss, DupRate: dup, Seed: 42,
		},
		// Above the worst ack round trip under the bursty workload, so
		// the loss=0 row shows near-zero sublayer work (spurious
		// retransmissions are harmless — dedup absorbs them — but they
		// would muddy the table).
		RetransmitTimeout: 4 * time.Millisecond,
	})
	if err != nil {
		return zero, 0, 0, chaosAudit{}, err
	}
	defer c.Close()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(42 + p)))
			for i := 1; i <= ops; i++ {
				if rng.Intn(5) < 3 {
					c.Node(p).Write(rng.Intn(vars), int64(p)*1_000_000+int64(i))
				} else {
					c.Node(p).Read(rng.Intn(vars))
				}
			}
		}()
	}
	wg.Wait()

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	err = c.Quiesce(ctx)
	cancel()
	if err != nil {
		return zero, 0, 0, chaosAudit{}, fmt.Errorf("experiments: E-chaos loss=%.2f quiesce: %w", loss, err)
	}
	quiesce := time.Since(start)

	log := c.Log()
	rep, err := c.Audit()
	if err != nil {
		return zero, 0, 0, chaosAudit{}, err
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() || !rep.ExactlyOnce() {
		return zero, 0, 0, chaosAudit{},
			fmt.Errorf("experiments: E-chaos loss=%.2f audit failed: %v", loss, rep)
	}
	if !rep.WriteDelayOptimal() {
		return zero, 0, 0, chaosAudit{},
			fmt.Errorf("experiments: E-chaos loss=%.2f: %d unnecessary OptP delays", loss, rep.UnnecessaryDelays)
	}
	visP95 := time.Duration(trace.Summarize(log.VisibilityLatencies()).P95)
	return log.Stats("OptP"), visP95, quiesce, chaosAudit{
		unnecessary: rep.UnnecessaryDelays,
		verdict:     "exactly-once ✓ optimal ✓",
	}, nil
}
