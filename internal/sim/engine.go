package sim

import (
	"errors"
	"fmt"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// Config parameterizes a simulated run.
type Config struct {
	// Procs and Vars size the system (n processes, m variables).
	Procs, Vars int
	// Protocol selects the replica implementation.
	Protocol protocol.Kind
	// NewReplica optionally overrides replica construction (tests).
	NewReplica func(p, n, m int) protocol.Replica
	// Latency is the network model; nil defaults to ConstantLatency(10).
	Latency Latency
	// TokenInterval is the virtual time between token visits for
	// token-based protocols; 0 defaults to 50.
	TokenInterval int64
	// FIFO, when true, never reorders two messages on the same
	// (sender, receiver) link: a later send arrives strictly after an
	// earlier one (TCP-like channels). Cross-link reordering — the
	// source of false causality — is unaffected.
	FIFO bool
	// Meta engages the causality-metadata codec: every broadcast copy is
	// encoded through its link's UpdateEncoder and decoded back before
	// delivery, exactly like wire bytes, and Result.MetaBytes/WireBytes
	// account the traffic. Encode and decode happen back-to-back at send
	// time, so the codec is order-safe even without FIFO. MetaOff (zero
	// value) bypasses the codec entirely.
	Meta protocol.MetaMode
	// MaxEvents caps the run as a runaway guard; 0 defaults to 10M.
	MaxEvents int
	// ShareSets, for PartialRep only, assigns each variable its set of
	// replicating processes. Writes are multicast to the share-set and
	// reads of non-replicated variables are forwarded to a serving
	// replica. Nil means full replication.
	ShareSets [][]int
}

// Result is the outcome of a run.
type Result struct {
	// Log is the full event trace.
	Log *trace.Log
	// Updates maps every issued write to its update (protocol clocks
	// included), the input of X_P reconstruction.
	Updates map[history.WriteID]protocol.Update
	// Replicas exposes final replica state for introspection.
	Replicas []protocol.Replica
	// End is the virtual time of the last processed event.
	End int64
	// MetaBytes and WireBytes account the per-copy encoded traffic when
	// Config.Meta is enabled: MetaBytes is the clock-field share,
	// WireBytes the full encoded update size (both zero with MetaOff).
	MetaBytes, WireBytes uint64
	// UpdateCopies counts per-destination update transmissions (the
	// fan-out cost a real network pays): P−1 per write under full
	// replication, |shareSet|−1 (or |shareSet|) under partial.
	UpdateCopies uint64
}

// Errors returned by Run.
var (
	// ErrDeadlock reports a run that stopped with buffered updates or
	// unfinished scripts and no events left — some enabling event can
	// never occur.
	ErrDeadlock = errors.New("sim: deadlock")
	// ErrEventBudget reports a run that exceeded MaxEvents.
	ErrEventBudget = errors.New("sim: event budget exhausted")
)

type evKind int

const (
	evWake evKind = iota
	evArrival
	evToken
)

type event struct {
	time  int64
	seq   int
	kind  evKind
	proc  int // destination (arrival) or waking process (wake)
	u     protocol.Update
	visit int
}

// eventHeap is a binary min-heap on (time, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(l, small) {
			small = l
		}
		if r < last && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

type node struct {
	replica protocol.Replica
	intro   protocol.Introspector
	script  Script
	pc      int
	pending []protocol.Update
	// sleeping is true while a wake event for a SleepStep is scheduled;
	// the script must not advance from other triggers meanwhile.
	sleeping bool
	// awaitingRead is true while a forwarded read is in flight; the
	// script blocks on the current ReadStep until the reply lands.
	awaitingRead bool
}

func (n *node) done() bool { return n.pc >= len(n.script) }

// engine is the run state; it lives for one Run call.
type engine struct {
	cfg      Config
	nodes    []*node
	heap     eventHeap
	now      int64
	seq      int
	log      *trace.Log
	updates  map[history.WriteID]protocol.Update
	inflight int
	lat      Latency
	// lastArrival[from*n+to] enforces per-link FIFO when cfg.FIFO.
	lastArrival []int64
	// encs/decs[from*n+to] are the per-link codec state when cfg.Meta is
	// enabled; codecBuf is the shared encode scratch (the engine is
	// single-threaded).
	encs      []*protocol.UpdateEncoder
	decs      []*protocol.UpdateDecoder
	codecBuf  []byte
	metaBytes uint64
	wireBytes uint64
	// shares is the partial-replication assignment (zero = full): it
	// narrows write fan-out and routes forwarded reads.
	shares protocol.ShareSets
	copies uint64
}

// Run executes scripts (one per process) under cfg and returns the
// trace. len(scripts) must equal cfg.Procs.
func Run(cfg Config, scripts []Script) (*Result, error) {
	if len(scripts) != cfg.Procs {
		return nil, fmt.Errorf("sim: %d scripts for %d processes", len(scripts), cfg.Procs)
	}
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(10)
	}
	if cfg.TokenInterval == 0 {
		cfg.TokenInterval = 50
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 10_000_000
	}

	if !cfg.Meta.Valid() {
		return nil, fmt.Errorf("sim: invalid meta codec mode %v", cfg.Meta)
	}

	e := &engine{
		cfg:         cfg,
		log:         trace.NewLog(cfg.Procs, cfg.Vars),
		updates:     make(map[history.WriteID]protocol.Update),
		lat:         cfg.Latency,
		lastArrival: make([]int64, cfg.Procs*cfg.Procs),
	}
	if cfg.Meta.Enabled() {
		e.encs = make([]*protocol.UpdateEncoder, cfg.Procs*cfg.Procs)
		e.decs = make([]*protocol.UpdateDecoder, cfg.Procs*cfg.Procs)
		for i := range e.encs {
			e.encs[i] = protocol.NewUpdateEncoder(cfg.Meta)
			e.decs[i] = protocol.NewUpdateDecoder(cfg.Meta)
		}
	}
	if cfg.ShareSets != nil {
		if cfg.Protocol != protocol.PartialRep {
			return nil, fmt.Errorf("sim: share-sets require PartialRep, not %v", cfg.Protocol)
		}
		shares, err := protocol.NewShareSets(cfg.ShareSets, cfg.Procs)
		if err != nil {
			return nil, err
		}
		if shares.NumVars() != cfg.Vars {
			return nil, fmt.Errorf("sim: %d share-sets for %d variables", shares.NumVars(), cfg.Vars)
		}
		e.shares = shares
		e.log.ShareSets = shares.Raw()
	}
	newReplica := cfg.NewReplica
	if newReplica == nil {
		shares := e.shares
		switch {
		case cfg.Protocol == protocol.PartialRep:
			newReplica = func(p, n, m int) protocol.Replica { return protocol.NewPartialRep(p, n, m, shares) }
		default:
			newReplica = func(p, n, m int) protocol.Replica { return protocol.New(cfg.Protocol, p, n, m) }
		}
	}
	tokenized := false
	for p := 0; p < cfg.Procs; p++ {
		r := newReplica(p, cfg.Procs, cfg.Vars)
		intro, ok := r.(protocol.Introspector)
		if !ok {
			return nil, fmt.Errorf("sim: replica %d (%v) lacks Introspector", p, r.Kind())
		}
		if _, ok := r.(protocol.TokenBatcher); ok {
			tokenized = true
		}
		e.nodes = append(e.nodes, &node{replica: r, intro: intro, script: scripts[p]})
		e.schedule(event{time: 0, kind: evWake, proc: p})
	}
	if tokenized {
		e.schedule(event{time: cfg.TokenInterval, kind: evToken, visit: 0})
	}

	processed := 0
	for len(e.heap) > 0 {
		if processed++; processed > cfg.MaxEvents {
			return nil, fmt.Errorf("%w after %d events", ErrEventBudget, cfg.MaxEvents)
		}
		ev := e.heap.pop()
		e.now = ev.time
		switch ev.kind {
		case evWake:
			n := e.nodes[ev.proc]
			n.sleeping = false
			e.advance(ev.proc)
		case evArrival:
			e.inflight--
			e.handleArrival(ev.proc, ev.u)
		case evToken:
			if e.quiescedForToken() {
				continue // stop circulating; run is complete
			}
			e.handleToken(ev.visit)
		}
	}

	res := &Result{
		Log: e.log, Updates: e.updates, Replicas: e.replicas(), End: e.now,
		MetaBytes: e.metaBytes, WireBytes: e.wireBytes, UpdateCopies: e.copies,
	}
	if err := e.checkQuiescent(); err != nil {
		return res, err
	}
	return res, nil
}

func (e *engine) replicas() []protocol.Replica {
	out := make([]protocol.Replica, len(e.nodes))
	for i, n := range e.nodes {
		out[i] = n.replica
	}
	return out
}

func (e *engine) schedule(ev event) {
	ev.seq = e.seq
	e.seq++
	e.heap.push(ev)
}

// quiescedForToken reports whether token circulation can stop: all
// scripts done, nothing in flight, no buffered updates, no unsent
// writes.
func (e *engine) quiescedForToken() bool {
	if e.inflight > 0 {
		return false
	}
	for _, n := range e.nodes {
		if !n.done() || len(n.pending) > 0 {
			return false
		}
		if tb, ok := n.replica.(protocol.TokenBatcher); ok {
			if tb.PendingWrites() > 0 {
				return false
			}
		}
	}
	return true
}

// checkQuiescent validates that the run ended cleanly.
func (e *engine) checkQuiescent() error {
	for p, n := range e.nodes {
		if !n.done() {
			return fmt.Errorf("%w: p%d stuck at step %d (%v)", ErrDeadlock, p+1, n.pc, n.script[n.pc])
		}
		if len(n.pending) > 0 {
			return fmt.Errorf("%w: p%d holds %d undeliverable updates (first: %v)", ErrDeadlock, p+1, len(n.pending), n.pending[0])
		}
	}
	if e.inflight != 0 {
		return fmt.Errorf("%w: %d messages still in flight", ErrDeadlock, e.inflight)
	}
	return nil
}

// advance runs the script of process p until it blocks or finishes.
func (e *engine) advance(p int) {
	n := e.nodes[p]
	for !n.done() && !n.sleeping && !n.awaitingRead {
		switch s := n.script[n.pc].(type) {
		case WriteStep:
			n.pc++
			u, broadcast := n.replica.LocalWrite(s.Var, s.Val)
			e.updates[u.ID] = u
			e.log.Append(trace.Event{
				Kind: trace.Issue, Proc: p, Time: e.now,
				Write: u.ID, Var: s.Var, Val: s.Val,
			})
			if broadcast {
				e.broadcast(p, u)
			}
		case ReadStep:
			if rr, ok := n.replica.(protocol.RemoteReader); ok && !rr.LocalVar(s.Var) {
				// Forward the read; the script blocks here until the
				// reply completes it (handleArrival advances pc).
				req, server := rr.NewReadReq(s.Var)
				n.awaitingRead = true
				e.log.Append(trace.Event{
					Kind: trace.ReadFwd, Proc: p, Time: e.now,
					Write: req.ID, Var: s.Var,
				})
				e.send(p, server, req)
				return
			}
			n.pc++
			v, from := n.replica.Read(s.Var)
			e.log.Append(trace.Event{
				Kind: trace.Return, Proc: p, Time: e.now,
				Var: s.Var, Val: v, From: from,
			})
		case AwaitStep:
			if v, _ := n.intro.Value(s.Var); v != s.Val {
				return // re-checked after each apply at p
			}
			n.pc++
		case SleepStep:
			n.pc++
			n.sleeping = true
			e.schedule(event{time: e.now + s.D, kind: evWake, proc: p})
			return
		default:
			panic(fmt.Sprintf("sim: unknown step %T", n.script[n.pc]))
		}
	}
}

// broadcast ships u from p to its destinations — every other process,
// or only the share-set of u.Var under partial replication — with
// modeled latency.
func (e *engine) broadcast(p int, u protocol.Update) {
	e.log.Append(trace.Event{
		Kind: trace.Send, Proc: p, Time: e.now,
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
	if !u.Marker && !e.shares.IsZero() {
		for _, q := range e.shares.Replicas(u.Var) {
			if q != p {
				e.copies++
				e.send(p, q, u)
			}
		}
		return
	}
	for q := 0; q < e.cfg.Procs; q++ {
		if q != p {
			e.copies++
			e.send(p, q, u)
		}
	}
}

// send ships one copy of u from p to q with modeled latency, per-link
// FIFO and the metadata codec — the unicast leg shared by broadcast,
// read forwarding and read replies.
func (e *engine) send(p, q int, u protocol.Update) {
	d := e.lat.Delay(p, q, u)
	if d < 0 {
		panic(fmt.Sprintf("sim: negative latency %d for %v", d, u))
	}
	at := e.now + d
	if e.cfg.FIFO {
		link := p*e.cfg.Procs + q
		if at <= e.lastArrival[link] {
			at = e.lastArrival[link] + 1
		}
		e.lastArrival[link] = at
	}
	deliver := u
	if e.encs != nil {
		deliver = e.recode(p, q, u)
	}
	e.inflight++
	e.schedule(event{time: at, kind: evArrival, proc: q, u: deliver})
}

// recode runs u through the p→q link's codec pair and returns the
// decoded update — what the receiver would have reconstructed from wire
// bytes. The deterministic encode order (destination loop in broadcast)
// keeps traces bit-reproducible across runs and codec modes.
func (e *engine) recode(p, q int, u protocol.Update) protocol.Update {
	link := p*e.cfg.Procs + q
	buf, meta := e.encs[link].Append(e.codecBuf[:0], u)
	e.codecBuf = buf
	out, n, decMeta, err := e.decs[link].Decode(buf)
	if err != nil {
		panic(fmt.Sprintf("sim: codec %d->%d: %v", p, q, err))
	}
	if n != len(buf) || meta != decMeta {
		panic(fmt.Sprintf("sim: codec %d->%d: consumed %d of %d bytes (meta %d vs %d)",
			p, q, n, len(buf), meta, decMeta))
	}
	e.metaBytes += uint64(meta)
	e.wireBytes += uint64(len(buf))
	return out
}

// handleArrival processes the receipt of u at process p.
func (e *engine) handleArrival(p int, u protocol.Update) {
	n := e.nodes[p]
	if u.ReadReply {
		// A reply whose matrix covers writes addressed *here* that are
		// still in flight waits for them — the mirror of the server-side
		// request wait. Merging it early would stamp the reader's next
		// write ahead of those stragglers at remote replicas.
		if n.replica.Status(u) != protocol.Deliverable {
			n.pending = append(n.pending, u)
			return
		}
		e.completeRead(p, u, false)
		e.drain(p)
		e.advance(p)
		return
	}
	if u.ReadReq {
		// No Receipt event: a waiting request is a read delay, recorded
		// on the ReadServe event, never a write delay.
		if n.replica.Status(u) == protocol.Deliverable {
			e.serveRead(p, u, false)
		} else {
			n.pending = append(n.pending, u)
		}
		e.drain(p)
		e.advance(p)
		return
	}
	st := n.replica.Status(u)
	kind := trace.Receipt
	if u.Marker {
		// Markers carry no write: record them as Token events so they
		// never count as write delays.
		kind = trace.Token
	}
	e.log.Append(trace.Event{
		Kind: kind, Proc: p, Time: e.now,
		Write: u.ID, Var: u.Var, Val: u.Val,
		Buffered: st == protocol.Blocked,
	})
	switch st {
	case protocol.Blocked:
		n.pending = append(n.pending, u)
	case protocol.Deliverable:
		e.apply(p, u)
	case protocol.Discardable:
		e.discard(p, u)
	}
	e.drain(p)
	e.advance(p)
}

// apply installs u at p and records the event. Marker applies record as
// Token. When the delivery skips an overwritten write (writing
// semantics), its logical apply is recorded immediately before.
func (e *engine) apply(p int, u protocol.Update) {
	if sk, ok := e.nodes[p].replica.(protocol.Skipper); ok {
		if tgt := sk.SkipTarget(u); !tgt.IsBottom() {
			e.log.Append(trace.Event{
				Kind: trace.Discard, Proc: p, Time: e.now, Write: tgt,
			})
		}
	}
	e.nodes[p].replica.Apply(u)
	kind := trace.Apply
	if u.Marker {
		kind = trace.Token
	}
	e.log.Append(trace.Event{
		Kind: kind, Proc: p, Time: e.now,
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
}

// serveRead answers a deliverable forwarded-read request at serving
// replica p. buffered marks requests that had to wait for the
// requester's causal past — the read-delay count of E-partial.
func (e *engine) serveRead(p int, req protocol.Update, buffered bool) {
	reply := e.nodes[p].replica.(protocol.RemoteReader).ServeRead(req)
	e.log.Append(trace.Event{
		Kind: trace.ReadServe, Proc: p, Time: e.now,
		Write: req.ID, Var: req.Var, Val: reply.Val, From: reply.Prev,
		Buffered: buffered,
	})
	e.send(p, req.ID.Proc, reply)
}

// completeRead finishes the ReadStep requester p is parked on with a
// deliverable forwarded-read reply. buffered marks replies that had to
// wait for in-flight writes addressed to the requester — the
// requester-side read delay of E-partial.
func (e *engine) completeRead(p int, reply protocol.Update, buffered bool) {
	n := e.nodes[p]
	v, from := n.replica.(protocol.RemoteReader).CompleteRead(reply)
	e.log.Append(trace.Event{
		Kind: trace.Return, Proc: p, Time: e.now,
		Var: reply.Var, Val: v, From: from, Buffered: buffered,
	})
	n.awaitingRead = false
	n.pc++
}

// discard drops the late message of an already logically-applied write.
func (e *engine) discard(p int, u protocol.Update) {
	e.nodes[p].replica.Discard(u)
	e.log.Append(trace.Event{
		Kind: trace.Drop, Proc: p, Time: e.now,
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
}

// drain repeatedly applies or discards deliverable buffered updates at
// p until a fixpoint.
func (e *engine) drain(p int) {
	n := e.nodes[p]
	for {
		progressed := false
		for i := 0; i < len(n.pending); i++ {
			u := n.pending[i]
			switch n.replica.Status(u) {
			case protocol.Deliverable:
				n.pending = append(n.pending[:i], n.pending[i+1:]...)
				switch {
				case u.ReadReq:
					e.serveRead(p, u, true)
				case u.ReadReply:
					e.completeRead(p, u, true)
				default:
					e.apply(p, u)
				}
				progressed = true
			case protocol.Discardable:
				n.pending = append(n.pending[:i], n.pending[i+1:]...)
				e.discard(p, u)
				progressed = true
			}
			if progressed {
				break
			}
		}
		if !progressed {
			return
		}
	}
}

// handleToken runs token visit v at holder v mod n, broadcasts the
// batch (or a marker), and schedules the next visit.
func (e *engine) handleToken(visit int) {
	holder := visit % e.cfg.Procs
	n := e.nodes[holder]
	tb, ok := n.replica.(protocol.TokenBatcher)
	if !ok {
		panic(fmt.Sprintf("sim: token visit at non-token replica %v", n.replica.Kind()))
	}
	e.log.Append(trace.Event{Kind: trace.Token, Proc: holder, Time: e.now})
	batch := tb.OnToken(visit)
	if len(batch) == 0 {
		e.broadcast(holder, protocol.Marker(holder, visit))
	} else {
		for _, u := range batch {
			e.updates[u.ID] = u
			e.broadcast(holder, u)
		}
	}
	// The holder's own visit consumption may unblock buffered batches.
	e.drain(holder)
	e.advance(holder)
	e.schedule(event{time: e.now + e.cfg.TokenInterval, kind: evToken, visit: visit + 1})
}
