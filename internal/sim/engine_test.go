package sim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// h1Scripts builds the process scripts of the paper's history Ĥ1:
//
//	p1: w1(x1)a; w1(x1)c
//	p2: r2(x1)a; w2(x2)b   (issues b only after a is read AND c applied)
//	p3: r3(x2)b; w3(x2)d
func h1Scripts() []Script {
	return []Script{
		NewScript().Write(0, history.ValA).Write(0, history.ValC),
		NewScript().Await(0, history.ValA).Read(0).Await(0, history.ValC).Write(1, history.ValB),
		NewScript().Await(1, history.ValB).Read(1).Write(1, history.ValD),
	}
}

// fig36Latency pins the paper's arrival order at p3: b first, then a,
// then c (Figures 3 and 6).
func fig36Latency() *ScriptedLatency {
	wa := history.WriteID{Proc: 0, Seq: 1}
	wc := history.WriteID{Proc: 0, Seq: 2}
	wb := history.WriteID{Proc: 1, Seq: 1}
	return NewScriptedLatency(10).
		Set(wa, 1, 10).Set(wa, 2, 40).
		Set(wc, 1, 20).Set(wc, 2, 60).
		Set(wb, 0, 10).Set(wb, 2, 10) // b sent at t=20, reaches p3 at t=30
}

func runH1(t *testing.T, kind protocol.Kind) *Result {
	t.Helper()
	res, err := Run(Config{
		Procs: 3, Vars: 2, Protocol: kind, Latency: fig36Latency(),
	}, h1Scripts())
	if err != nil {
		t.Fatalf("%v run: %v", kind, err)
	}
	return res
}

// applyOrder extracts the apply/issue order of writes at proc p.
func applyOrder(res *Result, p int) []history.WriteID {
	return res.Log.AppliesAt(p)
}

// TestFigure6OptPRun drives the Figure 6 scenario end to end: at p3 the
// update for b is buffered until a arrives, then applied BEFORE c.
func TestFigure6OptPRun(t *testing.T) {
	res := runH1(t, protocol.OptP)
	wa := history.WriteID{Proc: 0, Seq: 1}
	wc := history.WriteID{Proc: 0, Seq: 2}
	wb := history.WriteID{Proc: 1, Seq: 1}
	wd := history.WriteID{Proc: 2, Seq: 1}
	want := []history.WriteID{wa, wb, wd, wc} // p3: a, b, d(own), c
	if got := applyOrder(res, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("p3 apply order = %v, want %v", got, want)
	}
	if got := res.Log.DelayCount(); got != 1 {
		t.Fatalf("OptP delays = %d, want exactly 1 (b before a at p3)", got)
	}
	// The one delay is b at p3.
	d := res.Log.Delays()
	if len(d) != 1 || d[0].Proc != 2 || d[0].Write != wb {
		t.Fatalf("delays = %v", d)
	}
	// b applied at t=40 (when a arrives), not t=60 (when c arrives).
	if d[0].AppliedAt != 40 {
		t.Fatalf("b applied at %d, want 40", d[0].AppliedAt)
	}
	// Update clocks match Figure 6.
	if got := res.Updates[wb].Clock.String(); got != "[1 1 0]" {
		t.Fatalf("b clock = %s", got)
	}
	if got := res.Updates[wd].Clock.String(); got != "[1 1 1]" {
		t.Fatalf("d clock = %s", got)
	}
}

// TestFigure3ANBKHRun drives the same scenario under ANBKH: b stays
// buffered past a's arrival and applies only after c — false causality.
func TestFigure3ANBKHRun(t *testing.T) {
	res := runH1(t, protocol.ANBKH)
	wa := history.WriteID{Proc: 0, Seq: 1}
	wc := history.WriteID{Proc: 0, Seq: 2}
	wb := history.WriteID{Proc: 1, Seq: 1}
	wd := history.WriteID{Proc: 2, Seq: 1}
	want := []history.WriteID{wa, wc, wb, wd} // p3 applies c BEFORE b
	if got := applyOrder(res, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("p3 apply order = %v, want %v", got, want)
	}
	d := res.Log.Delays()
	if len(d) != 1 || d[0].Write != wb {
		t.Fatalf("delays = %v", d)
	}
	if d[0].AppliedAt != 60 {
		t.Fatalf("b applied at %d, want 60 (after c)", d[0].AppliedAt)
	}
	if got := res.Updates[wb].Clock.String(); got != "[2 1 0]" {
		t.Fatalf("b clock = %s (must absorb c)", got)
	}
}

// falseCausalityLatency reorders only c: at p3, a arrives (15), then b
// (30), then c (60). OptP applies b instantly; ANBKH buffers it.
func falseCausalityLatency() *ScriptedLatency {
	wa := history.WriteID{Proc: 0, Seq: 1}
	wc := history.WriteID{Proc: 0, Seq: 2}
	wb := history.WriteID{Proc: 1, Seq: 1}
	return NewScriptedLatency(10).
		Set(wa, 1, 10).Set(wa, 2, 15).
		Set(wc, 1, 20).Set(wc, 2, 60).
		Set(wb, 0, 10).Set(wb, 2, 10)
}

func TestFalseCausalityDelayGap(t *testing.T) {
	for _, tc := range []struct {
		kind  protocol.Kind
		wantD int
	}{
		{protocol.OptP, 0},
		{protocol.ANBKH, 1},
		{protocol.OptPNoReadMerge, 1},
	} {
		res, err := Run(Config{Procs: 3, Vars: 2, Protocol: tc.kind, Latency: falseCausalityLatency()}, h1Scripts())
		if err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		if got := res.Log.DelayCount(); got != tc.wantD {
			t.Errorf("%v delays = %d, want %d", tc.kind, got, tc.wantD)
		}
	}
}

// The reconstructed history of every H1 run must be exactly Ĥ1 and
// causally consistent.
func TestH1RunHistory(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv} {
		res := runH1(t, kind)
		h, err := res.Log.History()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		want, _ := history.H1()
		if h.String() != want.String() {
			t.Fatalf("%v history:\n%swant:\n%s", kind, h.String(), want.String())
		}
		c, err := h.Causality()
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsCausallyConsistent() {
			t.Fatalf("%v produced inconsistent history", kind)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{
			Procs: 3, Vars: 2, Protocol: protocol.OptP,
			Latency: NewUniformLatency(5, 50, 42),
		}, h1Scripts())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Log.Events, b.Log.Events) {
		t.Fatal("same seed produced different logs")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// p1 awaits a value nobody writes.
	scripts := []Script{
		NewScript().Await(0, 99),
		NewScript().Write(0, 1),
	}
	_, err := Run(Config{Procs: 2, Vars: 1, Protocol: protocol.OptP}, scripts)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestScriptCountMismatch(t *testing.T) {
	_, err := Run(Config{Procs: 3, Vars: 1, Protocol: protocol.OptP}, []Script{nil})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestSleepOrdersOperations(t *testing.T) {
	// p1 writes at t=0 and t=100; p2 sleeps 50 then reads: sees only
	// the first write (constant latency 10).
	scripts := []Script{
		NewScript().Write(0, 1).Sleep(100).Write(0, 2),
		NewScript().Sleep(50).Read(0),
	}
	res, err := Run(Config{Procs: 2, Vars: 1, Protocol: protocol.OptP, Latency: ConstantLatency(10)}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	var ret *trace.Event
	for i := range res.Log.Events {
		if res.Log.Events[i].Kind == trace.Return {
			ret = &res.Log.Events[i]
		}
	}
	if ret == nil || ret.Val != 1 || ret.Time != 50 {
		t.Fatalf("return = %+v", ret)
	}
}

// WS-send end-to-end: a full run where suppression happens and all
// survivors reach every process in token order.
func TestWSSendEndToEnd(t *testing.T) {
	scripts := []Script{
		NewScript().Write(0, 1).Write(0, 2), // first write suppressed
		NewScript().Sleep(500).Read(0),
		NewScript().Sleep(500).Read(0),
	}
	res, err := Run(Config{
		Procs: 3, Vars: 1, Protocol: protocol.WSSend,
		Latency: ConstantLatency(5), TokenInterval: 40,
	}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	// Both readers see value 2; value 1 was never propagated.
	returns := 0
	for _, e := range res.Log.Events {
		if e.Kind == trace.Return {
			returns++
			if e.Val != 2 {
				t.Fatalf("read %d, want 2: %v", e.Val, e)
			}
		}
	}
	if returns != 2 {
		t.Fatalf("returns = %d", returns)
	}
	// The suppressed write is applied nowhere but its issuer.
	w1 := history.WriteID{Proc: 0, Seq: 1}
	for p := 1; p < 3; p++ {
		for _, id := range res.Log.AppliesAt(p) {
			if id == w1 {
				t.Fatalf("suppressed write applied at p%d", p+1)
			}
		}
	}
}

// Liveness property (Theorem 5): under randomized latency every issued
// write is eventually applied at every process, for all protocols in 𝒫.
func TestLivenessAllApplied(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.OptPNoReadMerge} {
		for seed := uint64(1); seed <= 5; seed++ {
			rng := NewRNG(seed)
			n, m := 4, 3
			scripts := make([]Script, n)
			for p := 0; p < n; p++ {
				s := NewScript()
				for op := 0; op < 10; op++ {
					s = s.Sleep(int64(1 + rng.Intn(30)))
					if rng.Intn(2) == 0 {
						s = s.Write(rng.Intn(m), int64(p*1000+op+1))
					} else {
						s = s.Read(rng.Intn(m))
					}
				}
				scripts[p] = s
			}
			res, err := Run(Config{
				Procs: n, Vars: m, Protocol: kind,
				Latency: NewUniformLatency(1, 200, seed),
			}, scripts)
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			issued := res.Log.WritesIssued()
			for p := 0; p < n; p++ {
				if got := len(res.Log.AppliesAt(p)); got != issued {
					t.Fatalf("%v seed %d: p%d applied %d of %d writes", kind, seed, p+1, got, issued)
				}
			}
		}
	}
}

func TestEventBudget(t *testing.T) {
	scripts := []Script{
		NewScript().Write(0, 1),
		NewScript(),
	}
	_, err := Run(Config{Procs: 2, Vars: 1, Protocol: protocol.OptP, MaxEvents: 2}, scripts)
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	if f := NewRNG(3).Float64(); f < 0 || f >= 1 {
		t.Fatalf("Float64 = %f", f)
	}
	if e := NewRNG(3).Exp(10); e < 0 {
		t.Fatalf("Exp = %f", e)
	}
	fork := NewRNG(5).Fork()
	if fork == nil {
		t.Fatal("Fork returned nil")
	}
}

func TestLatencyModels(t *testing.T) {
	u := protocol.Update{}
	if d := ConstantLatency(7).Delay(0, 1, u); d != 7 {
		t.Fatalf("constant = %d", d)
	}
	ul := NewUniformLatency(5, 10, 1)
	for i := 0; i < 100; i++ {
		if d := ul.Delay(0, 1, u); d < 5 || d > 10 {
			t.Fatalf("uniform out of range: %d", d)
		}
	}
	if d := NewUniformLatency(5, 5, 1).Delay(0, 1, u); d != 5 {
		t.Fatalf("degenerate uniform = %d", d)
	}
	el := NewExpLatency(3, 10, 2)
	for i := 0; i < 100; i++ {
		if d := el.Delay(0, 1, u); d < 3 {
			t.Fatalf("exp below base: %d", d)
		}
	}
	ml := NewMatrixLatency([][]int64{{0, 100}, {100, 0}}, 0, 3)
	if d := ml.Delay(0, 1, u); d != 100 {
		t.Fatalf("matrix = %d", d)
	}
	mlj := NewMatrixLatency([][]int64{{0, 100}, {100, 0}}, 10, 3)
	if d := mlj.Delay(0, 1, u); d < 100 || d > 110 {
		t.Fatalf("matrix+jitter = %d", d)
	}
}

func TestLatencyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"uniform-empty": func() { NewUniformLatency(10, 5, 1) },
		"exp-negative":  func() { NewExpLatency(-1, 1, 1) },
		"matrix-ragged": func() { NewMatrixLatency([][]int64{{0}, {0, 0}}, 0, 1) },
		"intn-zero":     func() { NewRNG(1).Intn(0) },
		"int63n-zero":   func() { NewRNG(1).Int63n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestScriptBuilders(t *testing.T) {
	s := NewScript().Write(0, 1).Read(1).Await(2, 3).Sleep(4)
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	wants := []string{"write(x1, 1)", "read(x2)", "await(x3 == 3)", "sleep(4)"}
	for i, w := range wants {
		if s[i].String() != w {
			t.Errorf("step %d = %q, want %q", i, s[i].String(), w)
		}
	}
}
