package checker

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// requireReportsEqual compares every externally observable field of the
// two reports: violations, delay classifications, counts, and ordering.
// The Causality engines differ by construction and are excluded.
func requireReportsEqual(t *testing.T, label string, fast, ref *Report) {
	t.Helper()
	check := func(field string, a, b any) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: %s differs:\nfast: %+v\nref:  %+v", label, field, a, b)
		}
	}
	check("SafetyViolations", fast.SafetyViolations, ref.SafetyViolations)
	check("PartialReplication", fast.PartialReplication, ref.PartialReplication)
	check("StrayApplies", fast.StrayApplies, ref.StrayApplies)
	check("LegalityViolations", fast.LegalityViolations, ref.LegalityViolations)
	check("NotApplied", fast.NotApplied, ref.NotApplied)
	check("DuplicateApplies", fast.DuplicateApplies, ref.DuplicateApplies)
	check("Delays", fast.Delays, ref.Delays)
	check("NecessaryDelays", fast.NecessaryDelays, ref.NecessaryDelays)
	check("UnnecessaryDelays", fast.UnnecessaryDelays, ref.UnnecessaryDelays)
	check("Discards", fast.Discards, ref.Discards)
	check("Crashes", fast.Crashes, ref.Crashes)
	check("Recoveries", fast.Recoveries, ref.Recoveries)
	check("CrashViolations", fast.CrashViolations, ref.CrashViolations)
	if fast.String() != ref.String() {
		t.Fatalf("%s: summaries differ:\nfast: %s\nref:  %s", label, fast, ref)
	}
}

// TestPropertyAuditEquivalence is the tentpole's contract: on random
// workloads across all six protocol kinds, the parallel vector-frontier
// Audit and the serial dense-bitset AuditReference produce identical
// Reports — same violations, same delay classifications and witnesses,
// same counts, same ordering. Run with -race this also exercises the
// per-process fan-out for data races.
func TestPropertyAuditEquivalence(t *testing.T) {
	kinds := []protocol.Kind{
		protocol.OptP, protocol.ANBKH, protocol.WSRecv,
		protocol.WSSend, protocol.OptPNoReadMerge, protocol.OptPWS,
		protocol.PartialRep, // full share-sets: behaves as broadcast
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 6; seed++ {
				cfg := workload.Config{
					Procs: 4, Vars: 3, OpsPerProc: 20, WriteRatio: 0.7,
					ThinkMin: 1, ThinkMax: 25, Hot: 0.5, Seed: seed,
				}
				scripts, err := workload.Scripts(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Procs: cfg.Procs, Vars: cfg.Vars, Protocol: kind,
					Latency: sim.NewUniformLatency(1, 150, seed*7+1),
				}, scripts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				fast, err := Audit(res.Log)
				if err != nil {
					t.Fatalf("seed %d: Audit: %v", seed, err)
				}
				ref, err := AuditReference(res.Log)
				if err != nil {
					t.Fatalf("seed %d: AuditReference: %v", seed, err)
				}
				requireReportsEqual(t, fmt.Sprintf("%v seed %d", kind, seed), fast, ref)
			}
		})
	}
}

// TestAuditEquivalenceOnSyntheticTraces extends the equivalence check
// to the benchmark generator's logs, whose head-of-line-blocking
// episodes produce both delay classes.
func TestAuditEquivalenceOnSyntheticTraces(t *testing.T) {
	for _, ops := range []int{200, 2_000} {
		log, err := workload.AuditTrace(workload.AuditTraceConfig{
			Procs: 4, Vars: 8, Ops: ops, WriteRatio: 0.5, DelayEvery: 7, Seed: uint64(ops),
		})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Audit(log)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := AuditReference(log)
		if err != nil {
			t.Fatal(err)
		}
		requireReportsEqual(t, fmt.Sprintf("AuditTrace ops=%d", ops), fast, ref)
	}
}

// violatingLog builds a run where p3 applies w1#2 before w1#1 despite
// w1#1 →co w1#2 (process order), with all writes applied everywhere.
func violatingLog() *trace.Log {
	w1 := history.WriteID{Proc: 0, Seq: 1}
	w2 := history.WriteID{Proc: 0, Seq: 2}
	l := trace.NewLog(3, 1)
	l.Append(trace.Event{Kind: trace.Issue, Proc: 0, Time: 0, Write: w1, Var: 0, Val: 1})
	l.Append(trace.Event{Kind: trace.Issue, Proc: 0, Time: 1, Write: w2, Var: 0, Val: 2})
	for _, q := range []int{1, 2} {
		first, second := w1, w2
		if q == 2 {
			first, second = w2, w1 // the inversion
		}
		l.Append(trace.Event{Kind: trace.Receipt, Proc: q, Time: 2, Write: first, Var: 0})
		l.Append(trace.Event{Kind: trace.Apply, Proc: q, Time: 2, Write: first, Var: 0})
		l.Append(trace.Event{Kind: trace.Receipt, Proc: q, Time: 3, Write: second, Var: 0})
		l.Append(trace.Event{Kind: trace.Apply, Proc: q, Time: 3, Write: second, Var: 0})
	}
	return l
}

// TestAuditViolationWitnessSubset pins the documented contract for
// violating runs: both audits must flag the same processes as unsafe,
// and every fast-path witness pair must appear in the reference's
// exhaustive enumeration.
func TestAuditViolationWitnessSubset(t *testing.T) {
	fast, err := Audit(violatingLog())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := AuditReference(violatingLog())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Safe() || ref.Safe() {
		t.Fatalf("both audits must catch the inversion: fast=%v ref=%v",
			fast.SafetyViolations, ref.SafetyViolations)
	}
	refSet := map[SafetyViolation]bool{}
	for _, v := range ref.SafetyViolations {
		refSet[v] = true
	}
	for _, v := range fast.SafetyViolations {
		if !refSet[v] {
			t.Fatalf("fast witness %+v not among reference violations %v", v, ref.SafetyViolations)
		}
	}
}

// TestAuditGappedSafetyFallback covers the frontier fallback: with the
// middle write of a →co chain never applied at the observing process,
// the covering-edge argument alone would miss the a→b inversion, so
// the prefix-maximum pass must catch it.
func TestAuditGappedSafetyFallback(t *testing.T) {
	a := history.WriteID{Proc: 0, Seq: 1}
	m := history.WriteID{Proc: 0, Seq: 2}
	b := history.WriteID{Proc: 0, Seq: 3}
	l := trace.NewLog(2, 1)
	for i, w := range []history.WriteID{a, m, b} {
		l.Append(trace.Event{Kind: trace.Issue, Proc: 0, Time: int64(i), Write: w, Var: 0, Val: int64(i + 1)})
	}
	// p2 applies b then a, and never applies m: a →co m →co b has no
	// applied covering edge linking a and b.
	l.Append(trace.Event{Kind: trace.Receipt, Proc: 1, Time: 5, Write: b, Var: 0})
	l.Append(trace.Event{Kind: trace.Apply, Proc: 1, Time: 5, Write: b, Var: 0})
	l.Append(trace.Event{Kind: trace.Receipt, Proc: 1, Time: 6, Write: a, Var: 0})
	l.Append(trace.Event{Kind: trace.Apply, Proc: 1, Time: 6, Write: a, Var: 0})

	fast, err := Audit(l)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Safe() {
		t.Fatal("gapped inversion not detected")
	}
	found := false
	for _, v := range fast.SafetyViolations {
		if v.Proc == 1 && v.First == a && v.Second == b {
			found = true
		}
	}
	if !found {
		t.Fatalf("want violation {p2, %v, %v}, got %v", a, b, fast.SafetyViolations)
	}
}
