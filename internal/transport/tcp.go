package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// TCPNet is a Transport over real loopback TCP sockets: every process
// listens on 127.0.0.1 and keeps one outbound connection per peer.
// Frames are length-prefixed (uvarint) encoded updates plus a one-byte
// sender id, so the receiving end reconstructs the Message exactly.
//
// Per-link ordering is whatever TCP provides — FIFO — so this transport
// models the common deployment; cross-link reordering (the source of
// write delays) still happens freely.
type TCPNet struct {
	procs    int
	mode     protocol.MetaMode
	handlers []atomic.Pointer[Handler]

	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	conns [][]net.Conn                // conns[from][to], lazily dialed
	encs  [][]*protocol.UpdateEncoder // encs[from][to], created with the conn

	frames       atomic.Uint64
	metaBytes    atomic.Uint64
	payloadBytes atomic.Uint64

	inflight sync.WaitGroup
	accept   sync.WaitGroup
	closed   atomic.Bool
}

// NewTCP starts a TCP mesh for n processes on loopback, shipping the
// legacy (uncompressed) frame format.
func NewTCP(n int) (*TCPNet, error) { return NewTCPMeta(n, protocol.MetaOff) }

// NewTCPMeta starts a TCP mesh with the causality-metadata codec in the
// given mode. Codec state is per connection: each outbound link holds
// one UpdateEncoder created alongside its conn, and each inbound
// readLoop holds the matching UpdateDecoder — both born at zero with
// the connection, so a future reconnect is a deterministic resync by
// construction (fresh socket ⇒ fresh base on both ends).
func NewTCPMeta(n int, mode protocol.MetaMode) (*TCPNet, error) {
	if n < 1 || n > 255 {
		return nil, fmt.Errorf("transport: tcp procs = %d (want 1..255, sender id is one frame byte)", n)
	}
	if !mode.Valid() {
		return nil, fmt.Errorf("transport: invalid meta codec mode %v", mode)
	}
	t := &TCPNet{
		procs:    n,
		mode:     mode,
		handlers: make([]atomic.Pointer[Handler], n),
		conns:    make([][]net.Conn, n),
		encs:     make([][]*protocol.UpdateEncoder, n),
	}
	for i := range t.conns {
		t.conns[i] = make([]net.Conn, n)
		t.encs[i] = make([]*protocol.UpdateEncoder, n)
	}
	for p := 0; p < n; p++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen for p%d: %w", p+1, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		t.accept.Add(1)
		go t.acceptLoop(p, ln)
	}
	return t, nil
}

// Addr returns the listen address of process p (for diagnostics).
func (t *TCPNet) Addr(p int) string { return t.addrs[p] }

// Register implements Transport.
func (t *TCPNet) Register(id int, h Handler) {
	if id < 0 || id >= t.procs {
		panic(fmt.Sprintf("transport: Register(%d) out of range", id))
	}
	t.handlers[id].Store(&h)
}

// Send implements Transport: it frames and writes the message on the
// (lazily dialed) from→to connection. Writes to one link are serialized
// by a per-link mutex embedded in conn access; TCP preserves their
// order.
func (t *TCPNet) Send(m Message) {
	if t.closed.Load() {
		return
	}
	if m.To < 0 || m.To >= t.procs || m.From < 0 || m.From >= t.procs || m.To == m.From {
		panic(fmt.Sprintf("transport: bad route %d -> %d", m.From, m.To))
	}
	t.inflight.Add(1)
	// Synchronous framing keeps per-link FIFO without extra goroutines;
	// loopback writes are fast and the kernel buffers them.
	defer t.inflight.Done()

	conn, err := t.conn(m.From, m.To)
	if err != nil {
		if t.closed.Load() {
			return
		}
		panic(fmt.Sprintf("transport: dial %d->%d: %v", m.From, m.To, err))
	}
	// Encoding happens under the same lock as the write: the per-link
	// encoder is stateful (delta bases), so encode order must equal
	// socket order exactly.
	t.mu.Lock()
	enc := t.encs[m.From][m.To]
	payload, meta := enc.Append([]byte{byte(m.From)}, m.Update)
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	_, err = conn.Write(frame)
	t.mu.Unlock()
	t.frames.Add(1)
	t.metaBytes.Add(uint64(meta))
	t.payloadBytes.Add(uint64(len(frame) - meta))
	if err != nil && !t.closed.Load() {
		panic(fmt.Sprintf("transport: write %d->%d: %v", m.From, m.To, err))
	}
}

// Stats snapshots the frame/byte accounting of frames sent so far.
func (t *TCPNet) Stats() CodecStats {
	return CodecStats{
		Frames:       t.frames.Load(),
		MetaBytes:    t.metaBytes.Load(),
		PayloadBytes: t.payloadBytes.Load(),
	}
}

// RegisterMetrics publishes the byte split on reg as scrape-time
// counters (dsm_net_meta_bytes_total, dsm_net_payload_bytes_total,
// dsm_net_frames_total), mirroring Codec.RegisterMetrics for runs over
// real sockets.
func (t *TCPNet) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	labels = append(labels, obs.L("codec", t.mode.String()))
	reg.CounterFunc("dsm_net_meta_bytes_total",
		"bytes of causality metadata (encoded clock fields) shipped on inter-replica links",
		func() uint64 { return t.metaBytes.Load() }, labels...)
	reg.CounterFunc("dsm_net_payload_bytes_total",
		"bytes of non-clock update payload shipped on inter-replica links",
		func() uint64 { return t.payloadBytes.Load() }, labels...)
	reg.CounterFunc("dsm_net_frames_total",
		"protocol frames written to inter-replica sockets",
		func() uint64 { return t.frames.Load() }, labels...)
}

// conn returns (dialing if needed) the from→to connection.
func (t *TCPNet) conn(from, to int) (net.Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.conns[from][to]; c != nil {
		return c, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, err
	}
	t.conns[from][to] = c
	// The link's encoder is born with its connection: fresh conn, fresh
	// (zero) delta base, matching the decoder the receiving acceptLoop
	// creates for the same socket.
	t.encs[from][to] = protocol.NewUpdateEncoder(t.mode)
	return c, nil
}

// acceptLoop serves inbound connections for process p.
func (t *TCPNet) acceptLoop(p int, ln net.Listener) {
	defer t.accept.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.accept.Add(1)
		go func() {
			defer t.accept.Done()
			t.readLoop(p, conn)
		}()
	}
}

// readLoop decodes frames from one inbound connection and dispatches
// them to p's handler.
func (t *TCPNet) readLoop(p int, conn net.Conn) {
	defer conn.Close()
	r := newByteReader(conn)
	// One decoder per inbound connection: a connection carries exactly
	// one (sender, receiver) link, and its frames arrive in socket
	// order, so the decoder's delta base tracks the sender's encoder in
	// lockstep for the life of the socket.
	dec := protocol.NewUpdateDecoder(t.mode)
	for {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		if len(buf) < 1 {
			return
		}
		from := int(buf[0])
		u, _, _, err := dec.Decode(buf[1:])
		if err != nil {
			if !t.closed.Load() {
				panic(fmt.Sprintf("transport: decode frame for p%d: %v", p+1, err))
			}
			return
		}
		hp := t.handlers[p].Load()
		if hp == nil {
			panic(fmt.Sprintf("transport: no handler registered for process %d", p))
		}
		(*hp)(Message{From: from, To: p, Update: u})
	}
}

// Flush implements Transport. TCP sends are synchronous on the sender
// side; Flush waits for sends in progress. Delivery on the receiver
// side is confirmed by the callers' own accounting (core.Quiesce), as
// with any real network.
func (t *TCPNet) Flush() {
	t.inflight.Wait()
}

// Close implements Transport.
func (t *TCPNet) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	t.inflight.Wait()
	t.mu.Lock()
	for _, row := range t.conns {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	t.mu.Unlock()
	for _, ln := range t.listeners {
		ln.Close()
	}
	t.accept.Wait()
	return nil
}

// byteReader adapts a net.Conn to io.ByteReader for ReadUvarint while
// keeping buffered semantics minimal (one byte at a time is fine for
// the tiny frame headers; payloads use ReadFull on the same reader).
type byteReader struct {
	r   io.Reader
	buf [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

// ReadByte implements io.ByteReader.
func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}

// Read implements io.Reader.
func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
