package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugMux builds the debug HTTP mux: Prometheus text metrics at
// /metrics, expvar at /debug/vars, and the full net/http/pprof suite
// at /debug/pprof/ — profiling a live run under load is half the point
// of the observability layer. The registry is also published under the
// expvar name "dsm".
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	reg.PublishExpvar("dsm")
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "dsm debug endpoints: /metrics /debug/vars /debug/pprof/\n")
	})
	return mux
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	lis net.Listener
	srv *http.Server
}

// StartDebugServer binds addr (e.g. "localhost:6060", ":0" for an
// ephemeral port) and serves DebugMux(reg) in the background. The
// bind happens synchronously so flag validation can reject a bad or
// busy address before the run starts.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(lis)
	return &DebugServer{lis: lis, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
