package trace

import (
	"strings"
	"testing"

	"repro/internal/history"
)

var (
	w11 = history.WriteID{Proc: 0, Seq: 1}
	w12 = history.WriteID{Proc: 0, Seq: 2}
	w21 = history.WriteID{Proc: 1, Seq: 1}
)

// sampleLog builds a small two-process run: p1 writes twice, p2 buffers
// the second write until the first arrives, then reads.
func sampleLog() *Log {
	l := NewLog(2, 1)
	l.Append(Event{Kind: Issue, Proc: 0, Time: 0, Write: w11, Var: 0, Val: 1})
	l.Append(Event{Kind: Send, Proc: 0, Time: 0, Write: w11, Var: 0, Val: 1})
	l.Append(Event{Kind: Issue, Proc: 0, Time: 5, Write: w12, Var: 0, Val: 2})
	l.Append(Event{Kind: Send, Proc: 0, Time: 5, Write: w12, Var: 0, Val: 2})
	l.Append(Event{Kind: Receipt, Proc: 1, Time: 10, Write: w12, Var: 0, Val: 2, Buffered: true})
	l.Append(Event{Kind: Receipt, Proc: 1, Time: 20, Write: w11, Var: 0, Val: 1})
	l.Append(Event{Kind: Apply, Proc: 1, Time: 20, Write: w11, Var: 0, Val: 1})
	l.Append(Event{Kind: Apply, Proc: 1, Time: 20, Write: w12, Var: 0, Val: 2})
	l.Append(Event{Kind: Return, Proc: 1, Time: 30, Var: 0, Val: 2, From: w12})
	return l
}

func TestAppendAssignsSeq(t *testing.T) {
	l := sampleLog()
	for i, e := range l.Events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
}

func TestPerProc(t *testing.T) {
	per := sampleLog().PerProc()
	if len(per) != 2 {
		t.Fatalf("len = %d", len(per))
	}
	if len(per[0]) != 4 || len(per[1]) != 5 {
		t.Fatalf("split = %d, %d", len(per[0]), len(per[1]))
	}
	for p, evs := range per {
		for _, e := range evs {
			if e.Proc != p {
				t.Fatalf("event %v under proc %d", e, p)
			}
		}
	}
}

func TestHistoryReconstruction(t *testing.T) {
	h, err := sampleLog().History()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumOps() != 3 {
		t.Fatalf("ops = %d", h.NumOps())
	}
	ops := h.Ops()
	if !ops[0].IsWrite() || ops[0].ID != w11 {
		t.Fatalf("op0 = %v", ops[0])
	}
	if !ops[2].IsRead() || ops[2].From != w12 {
		t.Fatalf("op2 = %v", ops[2])
	}
}

func TestDelayExtraction(t *testing.T) {
	l := sampleLog()
	if got := l.DelayCount(); got != 1 {
		t.Fatalf("DelayCount = %d", got)
	}
	ds := l.Delays()
	if len(ds) != 1 {
		t.Fatalf("Delays = %v", ds)
	}
	d := ds[0]
	if d.Proc != 1 || d.Write != w12 || d.ReceiptAt != 10 || d.AppliedAt != 20 || d.Discarded {
		t.Fatalf("delay = %+v", d)
	}
	if d.Duration() != 10 {
		t.Fatalf("Duration = %d", d.Duration())
	}
	per := l.DelayCountPerProc()
	if per[0] != 0 || per[1] != 1 {
		t.Fatalf("per-proc = %v", per)
	}
}

func TestDelayResolvedByDiscard(t *testing.T) {
	l := NewLog(2, 1)
	l.Append(Event{Kind: Receipt, Proc: 1, Time: 10, Write: w11, Buffered: true})
	l.Append(Event{Kind: Discard, Proc: 1, Time: 25, Write: w11})
	ds := l.Delays()
	if len(ds) != 1 || !ds[0].Discarded || ds[0].Duration() != 15 {
		t.Fatalf("delays = %+v", ds)
	}
}

func TestCounts(t *testing.T) {
	l := sampleLog()
	if l.ReceiptCount() != 2 {
		t.Fatalf("receipts = %d", l.ReceiptCount())
	}
	if l.WritesIssued() != 2 {
		t.Fatalf("writes = %d", l.WritesIssued())
	}
	if l.ReadsReturned() != 1 {
		t.Fatalf("reads = %d", l.ReadsReturned())
	}
	if l.DiscardCount() != 0 {
		t.Fatalf("discards = %d", l.DiscardCount())
	}
}

func TestAppliesAt(t *testing.T) {
	l := sampleLog()
	at0 := l.AppliesAt(0)
	if len(at0) != 2 || at0[0] != w11 || at0[1] != w12 {
		t.Fatalf("AppliesAt(0) = %v", at0)
	}
	at1 := l.AppliesAt(1)
	if len(at1) != 2 || at1[0] != w11 || at1[1] != w12 {
		t.Fatalf("AppliesAt(1) = %v", at1)
	}
}

func TestLogicallyAppliedIncludesDiscards(t *testing.T) {
	l := NewLog(2, 1)
	l.Append(Event{Kind: Discard, Proc: 1, Time: 5, Write: w11})
	l.Append(Event{Kind: Apply, Proc: 1, Time: 5, Write: w21})
	got := l.LogicallyAppliedAt(1)
	if len(got) != 2 || got[0] != w11 || got[1] != w21 {
		t.Fatalf("logical applies = %v", got)
	}
	if len(l.AppliesAt(1)) != 1 {
		t.Fatal("strict applies should exclude discards")
	}
}

func TestBufferOccupancy(t *testing.T) {
	l := NewLog(2, 1)
	l.Append(Event{Kind: Receipt, Proc: 1, Time: 0, Write: w11, Buffered: true})
	l.Append(Event{Kind: Receipt, Proc: 1, Time: 10, Write: w12, Buffered: true})
	l.Append(Event{Kind: Apply, Proc: 1, Time: 20, Write: w11})
	l.Append(Event{Kind: Apply, Proc: 1, Time: 20, Write: w12})
	l.Append(Event{Kind: Return, Proc: 1, Time: 40, Var: 0, Val: 0})
	occ := l.BufferOccupancy()
	if occ.Max != 2 || occ.MaxPerProc[1] != 2 || occ.MaxPerProc[0] != 0 {
		t.Fatalf("occupancy = %+v", occ)
	}
	// Time-weighted mean: 1 for t∈[0,10), 2 for [10,20), 0 for [20,40):
	// (10 + 20 + 0) / 40 = 0.75.
	if occ.MeanTimeWeighted != 0.75 {
		t.Fatalf("mean = %f", occ.MeanTimeWeighted)
	}
}

func TestEventString(t *testing.T) {
	l := sampleLog()
	for _, e := range l.Events {
		if e.String() == "" {
			t.Fatal("empty event string")
		}
	}
	buffered := Event{Kind: Receipt, Proc: 1, Write: w11, Buffered: true}
	if !strings.Contains(buffered.String(), "BUFFERED") {
		t.Fatalf("buffered receipt string: %q", buffered.String())
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

// TestEventKindStringExhaustive walks every kind up to the sentinel: a
// newly added kind without a name entry fails here instead of printing
// as a bare integer in traces.
func TestEventKindStringExhaustive(t *testing.T) {
	want := map[EventKind]string{
		Issue: "issue", Send: "send", Receipt: "receipt", Apply: "apply",
		Discard: "discard", Drop: "drop", Return: "return", Token: "token",
		NetDrop: "net-drop", Retransmit: "retransmit", DupDiscard: "dup-discard",
		Crash: "crash", Recover: "recover", Suspect: "suspect", Alive: "alive",
		ReadFwd: "read-fwd", ReadServe: "read-serve",
	}
	if len(want) != int(numEventKinds) {
		t.Fatalf("test table has %d kinds, sentinel says %d", len(want), int(numEventKinds))
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		got := k.String()
		if got != want[k] {
			t.Errorf("kind %d = %q, want %q", int(k), got, want[k])
		}
		if strings.Contains(got, "EventKind(") {
			t.Errorf("kind %d has no name entry", int(k))
		}
		// Every kind must render a full Event line mentioning its name
		// and process (no case of Event.String may drop the kind).
		e := Event{Seq: 3, Kind: k, Proc: 1, Time: 9, Write: w11, Var: 0, Val: 7}
		if s := e.String(); !strings.Contains(s, got) || !strings.Contains(s, "p2") {
			t.Errorf("event string for %v: %q", k, s)
		}
	}
	// The crash-recovery kinds carry extra payload in their renderings.
	rec := Event{Kind: Recover, Proc: 0, Val: 12}
	if !strings.Contains(rec.String(), "replayed 12") {
		t.Errorf("recover string: %q", rec.String())
	}
	sus := Event{Kind: Suspect, Proc: 0, Val: 2}
	if !strings.Contains(sus.String(), "p3") {
		t.Errorf("suspect string: %q", sus.String())
	}
}

func TestStats(t *testing.T) {
	st := sampleLog().Stats("OptP")
	if st.Protocol != "OptP" || st.Writes != 2 || st.Reads != 1 || st.Receipts != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Delays != 1 || st.DelayRate != 0.5 {
		t.Fatalf("delays = %d rate = %f", st.Delays, st.DelayRate)
	}
	if st.DelayDurations.Count != 1 || st.DelayDurations.Max != 10 {
		t.Fatalf("durations = %+v", st.DelayDurations)
	}
	if st.BufferMax != 1 {
		t.Fatalf("bufmax = %d", st.BufferMax)
	}
	if !strings.Contains(st.String(), "OptP") {
		t.Fatalf("stats string: %q", st.String())
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.String() != "n=0" {
		t.Fatalf("empty summary = %+v", s)
	}
	xs := []int64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 || s.Total != 15 {
		t.Fatalf("summary = %+v", s)
	}
	if xs[0] != 5 {
		t.Fatal("Summarize mutated input")
	}
	if s.StdDev < 1.41 || s.StdDev > 1.42 {
		t.Fatalf("stddev = %f", s.StdDev)
	}
	one := Summarize([]int64{7})
	if one.P50 != 7 || one.P95 != 7 || one.P99 != 7 {
		t.Fatalf("singleton quantiles = %+v", one)
	}
	if one.String() == "" {
		t.Fatal("empty string")
	}
	big := make([]int64, 100)
	for i := range big {
		big[i] = int64(i + 1)
	}
	bs := Summarize(big)
	if bs.P50 != 50 || bs.P95 != 95 || bs.P99 != 99 {
		t.Fatalf("quantiles = %+v", bs)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleLog().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+9 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seq,kind,proc,time") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, "receipt") || !strings.Contains(out, "true") {
		t.Fatalf("csv body missing fields:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := sampleLog().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{`"num_procs": 2`, `"kind": "issue"`, `"buffered": true`} {
		if !strings.Contains(out, frag) {
			t.Fatalf("json missing %q:\n%s", frag, out)
		}
	}
}

func TestVisibilityLatencies(t *testing.T) {
	l := sampleLog()
	lats := l.VisibilityLatencies()
	// w11 issued at 0, applied at p2 at 20 → 20; w12 issued at 5,
	// applied at 20 → 15.
	if len(lats) != 2 {
		t.Fatalf("latencies = %v", lats)
	}
	want := map[int64]bool{20: true, 15: true}
	for _, d := range lats {
		if !want[d] {
			t.Fatalf("unexpected latency %d in %v", d, lats)
		}
	}
}

func TestLogicallyAppliedPerProc(t *testing.T) {
	l := sampleLog()
	l.Append(Event{Kind: Discard, Proc: 0, Time: 40, Write: w21})
	all := l.LogicallyAppliedPerProc()
	if len(all) != l.NumProcs {
		t.Fatalf("got %d procs, want %d", len(all), l.NumProcs)
	}
	for p := 0; p < l.NumProcs; p++ {
		want := l.LogicallyAppliedAt(p)
		if len(all[p]) != len(want) {
			t.Fatalf("proc %d: got %v, want %v", p, all[p], want)
		}
		for i := range want {
			if all[p][i] != want[i] {
				t.Fatalf("proc %d: got %v, want %v", p, all[p], want)
			}
		}
	}
}
