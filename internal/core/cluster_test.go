package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func quiesce(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
}

// nopTransport stands in for a custom transport in Validate tests.
type nopTransport struct{}

func (nopTransport) Register(int, transport.Handler) {}
func (nopTransport) Send(transport.Message)          {}
func (nopTransport) Flush()                          {}
func (nopTransport) Close() error                    { return nil }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Processes: 0, Variables: 1},
		{Processes: 1, Variables: 0},
		{Processes: 1, Variables: 1, MinDelay: 5, MaxDelay: 1},
		{Processes: 1, Variables: 1, TokenInterval: -1},
		{Processes: 1, Variables: 1, SnapshotEvery: -1},
		{Processes: 1, Variables: 1, HeartbeatInterval: -1},
		{Processes: 1, Variables: 1, SuspectAfter: -1},
		{Processes: 2, Variables: 1, Crashes: []CrashWindow{{Proc: 2, Start: time.Millisecond}}},
		{Processes: 2, Variables: 1, Crashes: []CrashWindow{{Proc: 0, Start: -1}}},
		{Processes: 2, Variables: 1, WALDir: "x", Crashes: []CrashWindow{{Proc: 0, Start: 2 * time.Millisecond, End: time.Millisecond}}},
		// A restart window without a journal to restart from.
		{Processes: 2, Variables: 1, Crashes: []CrashWindow{{Proc: 0, Start: time.Millisecond, End: 2 * time.Millisecond}}},
		// Crash-recovery features require the built-in transport.
		{Processes: 2, Variables: 1, Transport: nopTransport{}, WALDir: "x"},
		{Processes: 2, Variables: 1, Transport: nopTransport{}, HeartbeatInterval: time.Millisecond},
	}
	for i, cfg := range bad {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBasicReadYourWrites(t *testing.T) {
	c, err := NewCluster(Config{Processes: 3, Variables: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Node(0).Write(0, 42); err != nil {
		t.Fatal(err)
	}
	v, err := c.Node(0).Read(0)
	if err != nil || v != 42 {
		t.Fatalf("read = %d, %v", v, err)
	}
	quiesce(t, c)
	for p := 0; p < 3; p++ {
		v, id, err := c.Node(p).ReadMeta(0)
		if err != nil || v != 42 {
			t.Fatalf("p%d read = %d, %v", p+1, v, err)
		}
		if id != (history.WriteID{Proc: 0, Seq: 1}) {
			t.Fatalf("p%d writer = %v", p+1, id)
		}
	}
}

func TestErrors(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Node(0).Write(5, 1); !errors.Is(err, ErrBadVariable) {
		t.Fatalf("bad var write = %v", err)
	}
	if _, err := c.Node(0).Read(-1); !errors.Is(err, ErrBadVariable) {
		t.Fatalf("bad var read = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(0).Write(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v", err)
	}
	if _, err := c.Node(0).Read(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close = %v", err)
	}
	// Close is idempotent: the second call is a no-op success.
	if err := c.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
	// Quiesce on a closed cluster must fail fast, not hang.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("quiesce after close = %v", err)
	}
	if err := c.Crash(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("crash after close = %v", err)
	}
	if _, err := c.Restart(0); err == nil {
		t.Fatal("restart after close succeeded")
	}
}

func TestQuiesceContextCancel(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Force a non-quiesced state by racing a write; even if quiesced,
	// the canceled context must surface once waiting would begin. Write
	// then immediately quiesce with canceled ctx.
	c.Node(0).Write(0, 1)
	err = c.Quiesce(ctx)
	// Either the cluster already quiesced (nil) or the cancellation
	// surfaced; both are acceptable, but a hang is not (test timeout).
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestAccessors(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 3, Protocol: protocol.ANBKH})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Processes() != 2 || c.Variables() != 3 || c.Protocol() != protocol.ANBKH {
		t.Fatal("accessors wrong")
	}
	if c.Node(1).ID() != 1 {
		t.Fatal("node ID wrong")
	}
	if got := c.Node(0).Clock(); len(got) != 2 {
		t.Fatalf("clock = %v", got)
	}
	if c.Node(0).PendingUpdates() != 0 {
		t.Fatal("pending nonzero")
	}
}

func TestClusterShorthand(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteAt(0, 0, 9); err != nil {
		t.Fatal(err)
	}
	quiesce(t, c)
	if v, err := c.ReadAt(1, 0); err != nil || v != 9 {
		t.Fatalf("ReadAt = %d, %v", v, err)
	}
	if _, id, err := c.ReadMetaAt(1, 0); err != nil || id.Proc != 0 {
		t.Fatalf("ReadMetaAt = %v, %v", id, err)
	}
}

// Causality across nodes: p2 reads p1's write and writes; p3 must never
// observe p2's value while p1's is missing. We check post-hoc via audit.
func TestCausalChainUnderJitter(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
		c, err := NewCluster(Config{
			Processes: 3, Variables: 2, Protocol: kind,
			MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Node(0).Write(0, 1)
		// p2 polls until it sees the write, then chains.
		for {
			v, _ := c.Node(1).Read(0)
			if v == 1 {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		c.Node(1).Write(1, 2)
		quiesce(t, c)
		rep, err := checker.Audit(c.Log())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() {
			t.Fatalf("%v: audit failed: safety=%v legal=%v notapplied=%v",
				kind, rep.SafetyViolations, rep.LegalityViolations, rep.NotApplied)
		}
		c.Close()
	}
}

// Hammer test: concurrent writers/readers under reordering jitter; the
// audit must pass and OptP must show zero unnecessary delays.
func TestConcurrentWorkloadAudit(t *testing.T) {
	kinds := []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv, protocol.OptPNoReadMerge, protocol.OptPWS}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c, err := NewCluster(Config{
				Processes: 4, Variables: 3, Protocol: kind,
				MinDelay: 0, MaxDelay: time.Millisecond, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for p := 0; p < 4; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(p)))
					for i := 1; i <= 25; i++ {
						if rng.Intn(2) == 0 {
							if err := c.Node(p).Write(rng.Intn(3), int64(p*1000+i)); err != nil {
								t.Error(err)
								return
							}
						} else {
							if _, err := c.Node(p).Read(rng.Intn(3)); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			quiesce(t, c)
			rep, err := checker.Audit(c.Log())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Safe() {
				t.Fatalf("safety: %v", rep.SafetyViolations)
			}
			if !rep.CausallyConsistent() {
				t.Fatalf("legality: %v", rep.LegalityViolations)
			}
			if kind == protocol.OptP && !rep.WriteDelayOptimal() {
				t.Fatalf("OptP unnecessary delays: %+v", rep.Delays)
			}
			if kind != protocol.WSRecv && kind != protocol.OptPWS && !rep.InP() {
				t.Fatalf("not in 𝒫: %v", rep.NotApplied)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			// Stats render after close.
			if s := c.Stats(); s.Writes == 0 {
				t.Fatalf("stats = %+v", s)
			}
		})
	}
}

// WS-send on the live runtime: suppressed writes never propagate; the
// survivors reach everyone; Quiesce accounts for suppression.
func TestWSSendLiveCluster(t *testing.T) {
	c, err := NewCluster(Config{
		Processes: 3, Variables: 2, Protocol: protocol.WSSend,
		TokenInterval: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Node(0).Write(0, 1) // will be suppressed
	c.Node(0).Write(0, 2)
	c.Node(1).Write(1, 3)
	quiesce(t, c)
	for p := 0; p < 3; p++ {
		if v, _ := c.Node(p).Read(0); v != 2 {
			t.Fatalf("p%d x1 = %d", p+1, v)
		}
		if v, _ := c.Node(p).Read(1); v != 3 {
			t.Fatalf("p%d x2 = %d", p+1, v)
		}
	}
	log := c.Log()
	w1 := history.WriteID{Proc: 0, Seq: 1}
	for p := 1; p < 3; p++ {
		for _, id := range log.AppliesAt(p) {
			if id == w1 {
				t.Fatalf("suppressed write applied at p%d", p+1)
			}
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// A second Quiesce after more writes must work (Quiesce is reusable).
func TestQuiesceRepeatable(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1, MaxDelay: 500 * time.Microsecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 3; round++ {
		c.Node(round%2).Write(0, int64(round+1))
		quiesce(t, c)
		for p := 0; p < 2; p++ {
			if v, _ := c.Node(p).Read(0); v != int64(round+1) {
				t.Fatalf("round %d p%d = %d", round, p+1, v)
			}
		}
	}
}
