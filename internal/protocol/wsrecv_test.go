package protocol

import (
	"testing"

	"repro/internal/history"
)

// The signature writing-semantics scenario: p1 writes x twice; p2
// receives the second write before the first. WS-recv skips the first
// (its value is overwritten anyway), applies the second, and discards
// the first when it finally arrives.
func TestWSRecvSkipAndDiscard(t *testing.T) {
	p1 := NewWSRecv(0, 2, 1).(*wsrecv)
	p2 := NewWSRecv(1, 2, 1).(*wsrecv)

	u1, _ := p1.LocalWrite(0, 1)
	u2, _ := p1.LocalWrite(0, 2)
	if u2.Prev != u1.ID {
		t.Fatalf("u2.Prev = %v, want %v", u2.Prev, u1.ID)
	}

	// u2 first: ANBKH would block; WS-recv may skip u1.
	if got := p2.Status(u2); got != Deliverable {
		t.Fatalf("Status(u2) = %v, want Deliverable via skip", got)
	}
	p2.Apply(u2)
	if v, id := p2.Read(0); v != 2 || id != u2.ID {
		t.Fatalf("read = %d from %v", v, id)
	}
	if p2.Skips() != 1 {
		t.Fatalf("Skips = %d", p2.Skips())
	}
	// u1 arrives late: discard, never installing value 1.
	if got := p2.Status(u1); got != Discardable {
		t.Fatalf("Status(u1) = %v, want Discardable", got)
	}
	p2.Discard(u1)
	if v, _ := p2.Read(0); v != 2 {
		t.Fatalf("value after discard = %d", v)
	}
	// Control state saw both writes.
	if got := p2.ApplyClock().Get(0); got != 2 {
		t.Fatalf("ApplyClock[0] = %d", got)
	}
}

// The side condition: if a write on ANOTHER variable sits between the
// overwritten write and the overwriting one, the skip is forbidden and
// WS-recv blocks like ANBKH.
func TestWSRecvNoSkipAcrossOtherVariable(t *testing.T) {
	p1 := NewWSRecv(0, 3, 2).(*wsrecv)
	p2 := NewWSRecv(1, 3, 2).(*wsrecv)
	p3 := NewWSRecv(2, 3, 2).(*wsrecv)

	u1, _ := p1.LocalWrite(0, 1) // w1(x1)1
	// p2 applies u1 and writes x2 — w'' on another variable.
	p2.Apply(u1)
	p2.Read(0)
	u2, _ := p2.LocalWrite(1, 2) // w2(x2)2, depends on u1
	// p1 overwrites x1 after applying u2 (so u1 →co u2 →co u3 via clocks).
	p1.Apply(u2)
	p1.Read(1)
	u3, _ := p1.LocalWrite(0, 3) // w1(x1)3, Prev = u1
	if u3.Prev != u1.ID {
		t.Fatalf("u3.Prev = %v", u3.Prev)
	}

	// p3 receives u3 first. Missing deps: u1 (same var, skippable alone)
	// AND u2 (different variable) — so the skip must be refused.
	if got := p3.Status(u3); got != Blocked {
		t.Fatalf("Status(u3) = %v, want Blocked (w'' on another variable)", got)
	}
	// After u1 and u2 arrive, u3 is plainly deliverable.
	p3.Apply(u1)
	p3.Apply(u2)
	if got := p3.Status(u3); got != Deliverable {
		t.Fatalf("Status(u3) after deps = %v", got)
	}
	p3.Apply(u3)
}

// Skip of a predecessor from a DIFFERENT process: p1 writes x, p2
// overwrites x (after applying, without an intervening foreign write);
// p3 gets p2's write first.
func TestWSRecvSkipCrossProcess(t *testing.T) {
	p1 := NewWSRecv(0, 3, 1).(*wsrecv)
	p2 := NewWSRecv(1, 3, 1).(*wsrecv)
	p3 := NewWSRecv(2, 3, 1).(*wsrecv)

	u1, _ := p1.LocalWrite(0, 1)
	p2.Apply(u1)
	u2, _ := p2.LocalWrite(0, 2)
	if u2.Prev != u1.ID {
		t.Fatalf("Prev = %v", u2.Prev)
	}
	if got := p3.Status(u2); got != Deliverable {
		t.Fatalf("Status(u2) = %v, want skip-deliverable", got)
	}
	p3.Apply(u2)
	if v, _ := p3.Read(0); v != 2 {
		t.Fatalf("read = %d", v)
	}
	if got := p3.Status(u1); got != Discardable {
		t.Fatalf("late u1: %v", got)
	}
	p3.Discard(u1)
}

// Multi-step gaps are NOT skippable (single-step heuristic): three
// writes to the same variable, the last arriving first, stays blocked.
func TestWSRecvNoMultiSkip(t *testing.T) {
	p1 := NewWSRecv(0, 2, 1).(*wsrecv)
	p2 := NewWSRecv(1, 2, 1).(*wsrecv)
	p1.LocalWrite(0, 1)
	p1.LocalWrite(0, 2)
	u3, _ := p1.LocalWrite(0, 3)
	if got := p2.Status(u3); got != Blocked {
		t.Fatalf("Status(u3) = %v, want Blocked (two missing writes)", got)
	}
}

// A skipped write's Prev pointer must not be skippable through an
// already-skipped write.
func TestWSRecvNoSkipThroughSkipped(t *testing.T) {
	p1 := NewWSRecv(0, 2, 1).(*wsrecv)
	p2 := NewWSRecv(1, 2, 1).(*wsrecv)
	u1, _ := p1.LocalWrite(0, 1)
	u2, _ := p1.LocalWrite(0, 2)
	u3, _ := p1.LocalWrite(0, 3)
	// u2 arrives: skips u1, applies. u3 arrives: plain deliverable.
	p2.Apply(u2)
	if got := p2.Status(u3); got != Deliverable {
		t.Fatalf("Status(u3) = %v", got)
	}
	p2.Apply(u3)
	// u1 is discardable exactly once.
	if got := p2.Status(u1); got != Discardable {
		t.Fatalf("Status(u1) = %v", got)
	}
	p2.Discard(u1)
	if got := p2.Status(u1); got == Discardable {
		t.Fatal("u1 discardable twice")
	}
}

func TestWSRecvDiscardPanicsWhenNotSkipped(t *testing.T) {
	p1 := NewWSRecv(0, 2, 1).(*wsrecv)
	u1, _ := p1.LocalWrite(0, 1)
	p2 := NewWSRecv(1, 2, 1).(*wsrecv)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p2.Discard(u1)
}

func TestWSRecvApplyPanicsWhenBlocked(t *testing.T) {
	p1 := NewWSRecv(0, 2, 1).(*wsrecv)
	p2 := NewWSRecv(1, 2, 1).(*wsrecv)
	p1.LocalWrite(0, 1)
	p1.LocalWrite(0, 2)
	u3, _ := p1.LocalWrite(0, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p2.Apply(u3)
}

func TestWSRecvKind(t *testing.T) {
	p := NewWSRecv(0, 2, 1)
	if p.Kind() != WSRecv || p.ProcID() != 0 {
		t.Fatalf("Kind=%v ProcID=%d", p.Kind(), p.ProcID())
	}
}

func TestWSRecvValueIntrospection(t *testing.T) {
	p := NewWSRecv(0, 2, 2).(*wsrecv)
	u, _ := p.LocalWrite(1, 9)
	if v, id := p.Value(1); v != 9 || id != u.ID {
		t.Fatalf("Value = %d %v", v, id)
	}
	if _, id := p.Value(0); id != history.Bottom {
		t.Fatal("untouched var should be ⊥")
	}
}
