package checker

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// benchTrace generates the deterministic synthetic log used by every
// audit benchmark: 4 processes, 8 variables, half writes, buffered
// episodes every 7th receipt.
func benchTrace(tb testing.TB, ops int) *trace.Log {
	tb.Helper()
	log, err := workload.AuditTrace(workload.AuditTraceConfig{
		Procs: 4, Vars: 8, Ops: ops, WriteRatio: 0.5, DelayEvery: 7, Seed: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return log
}

// BenchmarkAudit measures the vector-frontier audit across the size
// ladder of the tentpole: 1k, 10k, 100k and 1M operations. The 1M rung
// is the scale target — single-digit seconds on commodity hardware,
// where the dense reference cannot run at all.
func BenchmarkAudit(b *testing.B) {
	for _, ops := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			log := benchTrace(b, ops)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := Audit(log)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() {
					b.Fatalf("synthetic trace audits dirty: %v", rep)
				}
			}
		})
	}
}

// BenchmarkAuditReference measures the dense-bitset reference on the
// sizes it can still handle. The 100k rung allocates the full O(ops²)
// closure (tens of gigabytes) and runs the pairwise safety loop for
// minutes, so it only runs when AUDIT_REF_OPS raises the ceiling, e.g.
//
//	AUDIT_REF_OPS=100000 go test -bench AuditReference -benchtime 1x
//
// which is how the before column of BENCH_checker.json was measured.
// There is no 1M rung: the closure alone would need ~250 GB.
func BenchmarkAuditReference(b *testing.B) {
	ceiling := 10_000
	if s := os.Getenv("AUDIT_REF_OPS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("AUDIT_REF_OPS=%q: %v", s, err)
		}
		ceiling = v
	}
	for _, ops := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			if ops > ceiling {
				b.Skipf("ops=%d above AUDIT_REF_OPS ceiling %d", ops, ceiling)
			}
			log := benchTrace(b, ops)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := AuditReference(log)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() {
					b.Fatalf("synthetic trace audits dirty: %v", rep)
				}
			}
		})
	}
}
