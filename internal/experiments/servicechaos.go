package experiments

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netchaos"
	"repro/internal/protocol"
	"repro/internal/service"
)

// ServiceChaosName identifies the fault-injected serving-tier
// scorecard experiment in dsmbench/v1 documents; the gate against
// BENCH_chaos.json matches baseline and current results by it.
const ServiceChaosName = "E-service-chaos"

// ServiceChaos is the Service closed loop run under connection chaos:
// the server's listener injects seeded faults (1% kill, 2% stall, 0.5%
// truncation per socket operation) and the fault-tolerant client is
// expected to absorb all of it — reconnect, replay, dedup — without a
// single failed call. The table reports throughput and p99 call
// latency with the chaos tax included, plus the injected fault counts
// so a run where chaos silently didn't fire is visible.
func ServiceChaos(sessionsPerConn, opsPerSession int) (Result, error) {
	r := Result{
		Name: ServiceChaosName,
		Desc: fmt.Sprintf("dsmd serving tier under connection chaos (1%%kill/2%%stall/0.5%%trunc; %d sessions/conn × %d ops, 3:1 write:read, exactly-once retries)",
			sessionsPerConn, opsPerSession),
		Header: []string{"conns", "sessions", "ops", "faults", "elapsed", "ops/s", "p99(ms)"},
	}
	for _, conns := range []int{1, 4, 8} {
		row, err := serviceChaosRun(conns, sessionsPerConn, opsPerSession)
		if err != nil {
			return r, fmt.Errorf("experiments: %s %d conns: %w", ServiceChaosName, conns, err)
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

func serviceChaosRun(conns, sessionsPerConn, opsPerSession int) ([]string, error) {
	const procs, vars = 3, 16
	cl, err := core.NewCluster(core.Config{
		Processes: procs, Variables: vars, Protocol: protocol.OptP, FIFO: true,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	var chaosLn *netchaos.Listener
	srv, err := service.New(service.Config{
		Cluster: cl,
		WrapListener: func(ln net.Listener) net.Listener {
			wrapped := netchaos.Wrap(ln, netchaos.Config{
				Seed:      int64(conns), // deterministic per row
				KillProb:  0.01,
				StallProb: 0.02,
				StallMax:  2 * time.Millisecond,
				TruncProb: 0.005,
			})
			chaosLn = wrapped.(*netchaos.Listener)
			return wrapped
		},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	clients := make([]*client.Client, conns)
	for i := range clients {
		if clients[i], err = client.Dial(srv.Addr()); err != nil {
			return nil, err
		}
		defer clients[i].Close()
	}

	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conns*sessionsPerConn)
	latCh := make(chan []time.Duration, conns*sessionsPerConn)
	for ci, c := range clients {
		for si := 0; si < sessionsPerConn; si++ {
			wg.Add(1)
			go func(ci, si int, c *client.Client) {
				defer wg.Done()
				s := c.Session()
				x := (ci*sessionsPerConn + si) % vars
				base := int64(ci*1_000_000 + si*10_000)
				lats := make([]time.Duration, 0, opsPerSession)
				for i := 1; i <= opsPerSession; i++ {
					var err error
					opStart := time.Now()
					if i%4 == 0 {
						_, err = s.Read(ctx, x)
					} else {
						err = s.Write(ctx, x, base+int64(i))
					}
					lats = append(lats, time.Since(opStart))
					if err != nil {
						errs <- fmt.Errorf("session (%d,%d) op %d: %w", ci, si, i, err)
						return
					}
				}
				latCh <- lats
			}(ci, si, c)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		// Under chaos every call still owes the caller an answer; any
		// error here is a fault-tolerance bug, not an acceptable loss.
		return nil, err
	default:
	}
	close(latCh)
	var all []time.Duration
	for lats := range latCh {
		all = append(all, lats...)
	}
	sctx, cancel := context.WithTimeout(ctx, time.Minute)
	err = srv.Shutdown(sctx)
	cancel()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	qctx, cancel := context.WithTimeout(ctx, time.Minute)
	err = cl.Quiesce(qctx)
	cancel()
	if err != nil {
		return nil, err
	}
	st := chaosLn.Stats()
	faults := st.Kills + st.AcceptKills + st.Stalls + st.Truncs
	total := conns * sessionsPerConn * opsPerSession
	return []string{
		fmt.Sprint(conns),
		fmt.Sprint(conns * sessionsPerConn),
		fmt.Sprint(total),
		fmt.Sprint(faults),
		elapsed.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
		fmt.Sprintf("%.3f", float64(p99(all).Nanoseconds())/1e6),
	}, nil
}

// p99 returns the 99th-percentile sample.
func p99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := len(lats) * 99 / 100
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

// CheckServiceChaosRegression gates the chaos scorecard: ops/s under
// chaos may not drop more than tolerance (0.2 = 20%) below the
// baseline, matching the plain serving-tier gate. p99 latency under
// chaos is inherently noisy (it sits on top of seeded stalls and
// reconnect backoff), so it gets a catastrophe bound instead of a
// noise-sensitive one: it fails only past 2× baseline. Rows present in
// only one document are ignored; improvements never fail.
func CheckServiceChaosRegression(current []Result, baseline Scorecard, tolerance float64) error {
	baseOps, baseP99, err := serviceChaosColumns(baseline.Experiments)
	if err != nil {
		return fmt.Errorf("experiments: baseline scorecard: %w", err)
	}
	if len(baseOps) == 0 {
		return fmt.Errorf("experiments: baseline scorecard has no %s rows", ServiceChaosName)
	}
	curOps, curP99, err := serviceChaosColumns(current)
	if err != nil {
		return err
	}
	if len(curOps) == 0 {
		return fmt.Errorf("experiments: current results have no %s rows", ServiceChaosName)
	}
	for conns, want := range baseOps {
		got, ok := curOps[conns]
		if !ok {
			continue
		}
		if floor := want * (1 - tolerance); got < floor {
			return fmt.Errorf("experiments: chaos serving-tier regression at %s conns: %.0f ops/s < %.0f (baseline %.0f - %.0f%% tolerance)",
				conns, got, floor, want, tolerance*100)
		}
	}
	for conns, want := range baseP99 {
		got, ok := curP99[conns]
		if !ok || want <= 0 {
			continue
		}
		if ceil := want * 2; got > ceil {
			return fmt.Errorf("experiments: chaos p99 blow-up at %s conns: %.3fms > %.3fms (2× baseline %.3fms)",
				conns, got, ceil, want)
		}
	}
	return nil
}

// serviceChaosColumns extracts conns → ops/s and conns → p99(ms) from
// an E-service-chaos result set.
func serviceChaosColumns(results []Result) (map[string]float64, map[string]float64, error) {
	ops := map[string]float64{}
	p99s := map[string]float64{}
	for _, r := range results {
		if r.Name != ServiceChaosName {
			continue
		}
		connsCol, opsCol, p99Col := -1, -1, -1
		for i, h := range r.Header {
			switch h {
			case "conns":
				connsCol = i
			case "ops/s":
				opsCol = i
			case "p99(ms)":
				p99Col = i
			}
		}
		if connsCol < 0 || opsCol < 0 || p99Col < 0 {
			return nil, nil, fmt.Errorf("experiments: %s table lacks conns/ops-per-sec/p99 columns (header %v)", r.Name, r.Header)
		}
		for _, row := range r.Rows {
			if len(row) <= connsCol || len(row) <= opsCol || len(row) <= p99Col {
				continue
			}
			v, err := strconv.ParseFloat(row[opsCol], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: %s ops/s cell %q: %w", r.Name, row[opsCol], err)
			}
			ops[row[connsCol]] = v
			p, err := strconv.ParseFloat(row[p99Col], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: %s p99 cell %q: %w", r.Name, row[p99Col], err)
			}
			p99s[row[connsCol]] = p
		}
	}
	return ops, p99s, nil
}
