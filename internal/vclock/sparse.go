package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// Sparse is a compressed clock: the nonzero components of a
// fixed-dimension vector, stored as parallel sorted slices of indices
// and values. It mirrors CausalMesh's compressed representation — a
// clock whose population is far below its dimension costs O(nnz)
// memory instead of O(dim) — and supports the same comparison lattice
// as VC against dense operands.
//
// Sparse is a building block; most callers want Adaptive, which flips
// between Sparse and dense VC on density thresholds.
type Sparse struct {
	dim int
	ix  []int32
	vx  []uint64
}

// NewSparse returns an empty (all-zero) sparse clock of dimension n.
func NewSparse(n int) *Sparse {
	return &Sparse{dim: n}
}

// SparseFrom builds a sparse clock holding v's nonzero components.
func SparseFrom(v VC) *Sparse {
	s := NewSparse(len(v))
	s.CopyFrom(v)
	return s
}

// Dim returns the clock's dimension.
func (s *Sparse) Dim() int { return s.dim }

// NNZ returns the number of stored (nonzero) components.
func (s *Sparse) NNZ() int { return len(s.ix) }

// CopyFrom overwrites s with v's contents, reusing the backing slices.
// Unlike VC.CopyFrom it accepts any dimension: the sparse form exists
// precisely so link state can follow whatever clock the wire carries.
func (s *Sparse) CopyFrom(v VC) {
	s.dim = len(v)
	s.ix = s.ix[:0]
	s.vx = s.vx[:0]
	for i, x := range v {
		if x != 0 {
			s.ix = append(s.ix, int32(i))
			s.vx = append(s.vx, x)
		}
	}
}

// find returns the position of index i in s.ix and whether it is present.
func (s *Sparse) find(i int) (int, bool) {
	j := sort.Search(len(s.ix), func(k int) bool { return int(s.ix[k]) >= i })
	return j, j < len(s.ix) && int(s.ix[j]) == i
}

// Get returns component i, treating absent components as zero.
func (s *Sparse) Get(i int) uint64 {
	if j, ok := s.find(i); ok {
		return s.vx[j]
	}
	return 0
}

// Set assigns component i, inserting or removing the stored pair as
// needed. It panics if i is out of range, matching VC.Set.
func (s *Sparse) Set(i int, x uint64) {
	if i < 0 || i >= s.dim {
		panic(fmt.Sprintf("vclock: sparse Set(%d) out of range [0,%d)", i, s.dim))
	}
	j, ok := s.find(i)
	switch {
	case ok && x != 0:
		s.vx[j] = x
	case ok: // x == 0: remove
		s.ix = append(s.ix[:j], s.ix[j+1:]...)
		s.vx = append(s.vx[:j], s.vx[j+1:]...)
	case x != 0: // insert at j
		s.ix = append(s.ix, 0)
		copy(s.ix[j+1:], s.ix[j:])
		s.ix[j] = int32(i)
		s.vx = append(s.vx, 0)
		copy(s.vx[j+1:], s.vx[j:])
		s.vx[j] = x
	}
}

// Merge sets s to the component-wise maximum of s and the dense o, the
// sparse counterpart of VC.Merge. Dimensions must agree.
func (s *Sparse) Merge(o VC) {
	if len(o) != s.dim {
		panic(fmt.Sprintf("vclock: merge dimension mismatch %d != %d", s.dim, len(o)))
	}
	// Walk o once with a cursor into the sorted pairs; build the merged
	// pair set in place when nothing new appears, or into fresh slices
	// when o introduces components s lacks.
	var ix []int32
	var vx []uint64
	j := 0
	for i, x := range o {
		for j < len(s.ix) && int(s.ix[j]) < i {
			ix = append(ix, s.ix[j])
			vx = append(vx, s.vx[j])
			j++
		}
		cur := uint64(0)
		present := j < len(s.ix) && int(s.ix[j]) == i
		if present {
			cur = s.vx[j]
			j++
		}
		if x > cur {
			cur = x
		}
		if cur != 0 {
			ix = append(ix, int32(i))
			vx = append(vx, cur)
		}
	}
	s.ix, s.vx = ix, vx
}

// Dominates reports o ≤ s component-wise — the sparse counterpart of
// VC.Dominates. Dimensions must agree.
func (s *Sparse) Dominates(o VC) bool {
	if len(o) != s.dim {
		panic(fmt.Sprintf("vclock: compare dimension mismatch %d != %d", s.dim, len(o)))
	}
	j := 0
	for i, x := range o {
		for j < len(s.ix) && int(s.ix[j]) < i {
			j++
		}
		cur := uint64(0)
		if j < len(s.ix) && int(s.ix[j]) == i {
			cur = s.vx[j]
		}
		if cur < x {
			return false
		}
	}
	return true
}

// Equal reports whether s and the dense o agree on every component.
func (s *Sparse) Equal(o VC) bool {
	if len(o) != s.dim {
		return false
	}
	j := 0
	for i, x := range o {
		cur := uint64(0)
		if j < len(s.ix) && int(s.ix[j]) == i {
			cur = s.vx[j]
			j++
		}
		if cur != x {
			return false
		}
	}
	return j == len(s.ix)
}

// DenseInto writes s's components into dst (which must have dimension
// Dim) and returns dst — the allocation-free materialization.
func (s *Sparse) DenseInto(dst VC) VC {
	if len(dst) != s.dim {
		panic(fmt.Sprintf("vclock: dense dimension mismatch %d != %d", len(dst), s.dim))
	}
	for i := range dst {
		dst[i] = 0
	}
	for j, i := range s.ix {
		dst[i] = s.vx[j]
	}
	return dst
}

// Dense returns a fresh dense copy of s.
func (s *Sparse) Dense() VC {
	return s.DenseInto(New(s.dim))
}

// Sum returns the sum of all components (matching VC.Sum).
func (s *Sparse) Sum() uint64 {
	var t uint64
	for _, x := range s.vx {
		t += x
	}
	return t
}

// String renders the clock as "{dim i:v ...}".
func (s *Sparse) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "{%d", s.dim)
	for j, i := range s.ix {
		fmt.Fprintf(&b, " %d:%d", i, s.vx[j])
	}
	b.WriteByte('}')
	return b.String()
}
