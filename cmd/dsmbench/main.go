// Command dsmbench runs the quantitative experiment sweeps E1–E8 of
// DESIGN.md and prints their tables.
//
// Usage:
//
//	dsmbench                    # run every experiment
//	dsmbench -exp jitter        # one of: jitter, nprocs, mix,
//	                            # falsecausality, buffer, throughput,
//	                            # ws, ablation, metadata, twosite,
//	                            # visibility, chaos, crash
//	dsmbench -procs 4 -ops 500  # sizing for -exp throughput
//	dsmbench -exp chaos         # live OptP over lossy/duplicating links
//	dsmbench -exp crash         # crash-stop + WAL restart, all protocols
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	procs := flag.Int("procs", 4, "processes for the throughput experiment")
	ops := flag.Int("ops", 1000, "ops per process for the throughput experiment")
	flag.Parse()

	sims := map[string]func() (experiments.Result, error){
		"jitter":         experiments.Jitter,
		"nprocs":         experiments.ProcCount,
		"mix":            experiments.Mix,
		"falsecausality": experiments.FalseCausalityRate,
		"buffer":         experiments.BufferOccupancy,
		"ws":             experiments.WritingSemantics,
		"ablation":       experiments.Ablation,
		"metadata":       experiments.MetadataOverhead,
		"twosite":        experiments.TwoSiteTopology,
		"visibility":     experiments.VisibilityLatency,
		"chaos":          experiments.Chaos,
		"crash":          experiments.CrashRecovery,
	}

	if flag.NArg() > 0 {
		usage("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	if *procs < 1 {
		usage("-procs must be at least 1, got %d", *procs)
	}
	if *ops < 1 {
		usage("-ops must be at least 1, got %d", *ops)
	}

	switch *exp {
	case "":
		rs, err := experiments.All()
		if err != nil {
			fatal(err)
		}
		for _, r := range rs {
			fmt.Println(r)
		}
		tr, err := experiments.Throughput(*procs, *ops)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr)
	case "throughput":
		r, err := experiments.Throughput(*procs, *ops)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	default:
		fn, ok := sims[*exp]
		if !ok {
			names := make([]string, 0, len(sims)+1)
			for name := range sims {
				names = append(names, name)
			}
			names = append(names, "throughput")
			sort.Strings(names)
			usage("unknown experiment %q (have: %s)", *exp, strings.Join(names, ", "))
		}
		r, err := fn()
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
}

// usage reports a flag error and exits with the conventional usage
// status, instead of surfacing it later as a panic deep in a sweep.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsmbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmbench:", err)
	os.Exit(1)
}
