package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/history"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// exportLog is sampleLog plus one of every event kind the sample lacks,
// so round-trip tests cover the full kind vocabulary (chaos, crash
// recovery, failure detection, writing semantics, tokens).
func exportLog() *Log {
	l := sampleLog()
	w := history.WriteID{Proc: 0, Seq: 3}
	l.Append(Event{Kind: Discard, Proc: 1, Time: 31, Write: w, Var: 0, Val: 7})
	l.Append(Event{Kind: Drop, Proc: 1, Time: 32, Write: w})
	l.Append(Event{Kind: Token, Proc: 0, Time: 33, Val: 2})
	l.Append(Event{Kind: NetDrop, Proc: 1, Time: 34, Write: w})
	l.Append(Event{Kind: Retransmit, Proc: 0, Time: 35, Write: w})
	l.Append(Event{Kind: DupDiscard, Proc: 1, Time: 36, Write: w})
	l.Append(Event{Kind: Crash, Proc: 1, Time: 37})
	l.Append(Event{Kind: Recover, Proc: 1, Time: 38, Val: 4})
	l.Append(Event{Kind: Suspect, Proc: 0, Time: 39, Val: 1})
	l.Append(Event{Kind: Alive, Proc: 0, Time: 40, Val: 1})
	return l
}

func TestParseEventKind(t *testing.T) {
	for k := EventKind(0); int(k) < NumKinds; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseEventKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseEventKind("bogus"); err == nil {
		t.Error("ParseEventKind accepted an unknown name")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := exportLog()
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(l.Events) {
		t.Fatalf("round-tripped %d events, want %d", len(got.Events), len(l.Events))
	}
	for i := range l.Events {
		if got.Events[i] != l.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], l.Events[i])
		}
	}
	// The CSV format carries no topology; bounds are reconstructed.
	if got.NumProcs != 2 || got.NumVars != 1 {
		t.Errorf("reconstructed topology %d procs, %d vars", got.NumProcs, got.NumVars)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":       "",
		"short row":   "seq,kind\n0,Issue\n",
		"bad int":     "h\nx,Issue,0,0,0,0,0,0,0,0,false\n",
		"bad kind":    "h\n0,Bogus,0,0,0,0,0,0,0,0,false\n",
		"bad bool":    "h\n0,Issue,0,0,0,0,0,0,0,0,maybe\n",
		"ragged rows": "a,b\n1,2,3\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCSV accepted %q", name, in)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := exportLog()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProcs != l.NumProcs || got.NumVars != l.NumVars {
		t.Errorf("topology = (%d, %d), want (%d, %d)", got.NumProcs, got.NumVars, l.NumProcs, l.NumVars)
	}
	if len(got.Events) != len(l.Events) {
		t.Fatalf("round-tripped %d events, want %d", len(got.Events), len(l.Events))
	}
	for i := range l.Events {
		if got.Events[i] != l.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], l.Events[i])
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	for name, in := range map[string]string{
		"not json": "{",
		"bad kind": `{"num_procs":1,"num_vars":1,"events":[{"kind":"Bogus"}]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSON accepted %q", name, in)
		}
	}
}

func TestJSONEventRoundTrip(t *testing.T) {
	e := Event{
		Seq: 7, Kind: Receipt, Proc: 1, Time: 99,
		Write: history.WriteID{Proc: 0, Seq: 4}, Var: 2, Val: -5,
		From: history.WriteID{Proc: 1, Seq: 2}, Buffered: true,
	}
	got, err := ToJSONEvent(e).Event()
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round-trip = %+v, want %+v", got, e)
	}
}

// TestDiagramGolden pins the space-time diagram rendering byte-for-byte
// against testdata/diagram.golden. Refresh with `go test -run
// TestDiagramGolden -update ./internal/trace/` after a deliberate
// format change and review the diff.
func TestDiagramGolden(t *testing.T) {
	out := Diagram{}.Render(exportLog())
	path := filepath.Join("testdata", "diagram.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if out != string(want) {
		t.Errorf("diagram drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}
