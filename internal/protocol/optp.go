package protocol

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/vclock"
)

// optp is the paper's OptP protocol (Section 4), a transliteration of
// Figures 4 and 5.
//
// Per-process state (Section 4.1):
//
//	Apply[1..n]       — Apply[j] = number of writes issued by p_j and
//	                    applied here.
//	Write_co[1..n]    — the process's current knowledge of →co;
//	                    Write_co[j] = k means the k-th write of p_j is in
//	                    the causal past of the *next* write this process
//	                    issues.
//	LastWriteOn[1..m] — LastWriteOn[h] is the Write_co vector of the last
//	                    write applied to x_h here.
//
// The crucial asymmetry against ANBKH: Write_co grows only through the
// process's own writes (line 1 of WRITE) and through *reads* (line 1 of
// READ merges LastWriteOn[h]); merely applying a remote update does NOT
// advance Write_co. Updates therefore carry exactly the →co past of the
// write — no false causality.
type optp struct {
	id int
	n  int

	apply   vclock.VC
	writeCo vclock.VC
	lastOn  []vclock.VC // per variable

	vals    []int64
	writers []history.WriteID

	// readMerge is false for the ablated variant: Write_co then absorbs
	// every applied update, degenerating to ANBKH's behaviour.
	readMerge bool
}

// NewOptP returns an OptP replica for process p of n over m variables.
func NewOptP(p, n, m int) Replica {
	return newOptP(p, n, m, true)
}

// NewOptPAblated returns the read-merge ablation: identical code paths,
// but Write_co is merged on every Apply instead of on Read. It remains
// safe but loses write-delay optimality (experiment E8).
func NewOptPAblated(p, n, m int) Replica {
	return newOptP(p, n, m, false)
}

func newOptP(p, n, m int, readMerge bool) *optp {
	r := &optp{
		id:        p,
		n:         n,
		apply:     vclock.New(n),
		writeCo:   vclock.New(n),
		lastOn:    make([]vclock.VC, m),
		vals:      make([]int64, m),
		writers:   make([]history.WriteID, m),
		readMerge: readMerge,
	}
	for i := range r.lastOn {
		r.lastOn[i] = vclock.New(n)
	}
	return r
}

func (r *optp) ProcID() int { return r.id }

func (r *optp) Kind() Kind {
	if r.readMerge {
		return OptP
	}
	return OptPNoReadMerge
}

// LocalWrite is the WRITE(x_h, v) procedure of Figure 4:
//
//	1  Write_co[i] := Write_co[i] + 1        (tracks →po_i)
//	2  send [m(x_h, v, Write_co)] to Π − p_i (send event)
//	3  apply(v, x_h)                          (apply event)
//	4  Apply[i] := Apply[i] + 1
//	5  LastWriteOn[h] := Write_co
func (r *optp) LocalWrite(x int, v int64) (Update, bool) {
	r.writeCo.Tick(r.id)
	u := Update{
		ID:    history.WriteID{Proc: r.id, Seq: int(r.writeCo.Get(r.id))},
		Var:   x,
		Val:   v,
		Clock: r.writeCo.Clone(),
		Prev:  r.writers[x],
	}
	r.vals[x] = v
	r.writers[x] = u.ID
	r.apply.Tick(r.id)
	r.lastOn[x].CopyFrom(r.writeCo)
	return u, true
}

// Read is the READ(x_h) procedure of Figure 5:
//
//	1  Write_co := max(Write_co, LastWriteOn[h])
//	2  return x_h
func (r *optp) Read(x int) (int64, history.WriteID) {
	if r.readMerge {
		r.writeCo.Merge(r.lastOn[x])
	}
	return r.vals[x], r.writers[x]
}

// Status evaluates the wait condition of the synchronization thread
// (line 2 of Figure 5): the update m(x_h, v, W_co) from p_u is
// deliverable iff
//
//	∀t ≠ u: W_co[t] ≤ Apply[t]   ∧   Apply[u] = W_co[u] − 1
//
// i.e. the only causal information in the message unknown here is the
// write itself.
func (r *optp) Status(u Update) Deliverability {
	from := u.From()
	for t := 0; t < r.n; t++ {
		if t == from {
			continue
		}
		if u.Clock.Get(t) > r.apply.Get(t) {
			return Blocked
		}
	}
	if r.apply.Get(from) != u.Clock.Get(from)-1 {
		return Blocked
	}
	return Deliverable
}

// Apply is the body of the synchronization thread once the wait
// condition holds (lines 3–5 of Figure 5):
//
//	3  apply(v, x_h)
//	4  Apply[u] := Apply[u] + 1
//	5  LastWriteOn[h] := W_co
//
// The ablated variant additionally merges the update clock into
// Write_co, manufacturing the false-causality dependencies that ANBKH
// suffers.
func (r *optp) Apply(u Update) {
	if s := r.Status(u); s != Deliverable {
		panic(fmt.Sprintf("optp: Apply of %v while %v (apply=%v)", u, s, r.apply))
	}
	r.vals[u.Var] = u.Val
	r.writers[u.Var] = u.ID
	r.apply.Tick(u.From())
	// In-place copy: lastOn's backing array is reused for the life of
	// the replica (nothing aliases it — every accessor clones).
	r.lastOn[u.Var].CopyFrom(u.Clock)
	if !r.readMerge {
		r.writeCo.Merge(u.Clock)
	}
}

// Discard is never legal for OptP: every write is applied everywhere
// (OptP ∈ 𝒫).
func (r *optp) Discard(u Update) {
	panic(fmt.Sprintf("optp: Discard(%v) on a protocol in 𝒫", u))
}

// ControlClock implements Introspector.
func (r *optp) ControlClock() vclock.VC { return r.writeCo.Clone() }

// ApplyClock implements Introspector.
func (r *optp) ApplyClock() vclock.VC { return r.apply.Clone() }

// Value implements Introspector.
func (r *optp) Value(x int) (int64, history.WriteID) { return r.vals[x], r.writers[x] }

// LastWriteOn returns a copy of the per-variable vector, exposed for
// the Figure 6 renderer.
func (r *optp) LastWriteOn(x int) vclock.VC { return r.lastOn[x].Clone() }
