package transport

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestChaosConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ChaosConfig
		ok   bool
	}{
		{"zero is valid", ChaosConfig{}, true},
		{"moderate faults", ChaosConfig{LossRate: 0.2, DupRate: 0.1, ReorderRate: 0.05}, true},
		{"loss 1 forbidden", ChaosConfig{LossRate: 1}, false},
		{"negative loss", ChaosConfig{LossRate: -0.1}, false},
		{"dup over 1", ChaosConfig{DupRate: 1.5}, false},
		{"negative reorder delay", ChaosConfig{ReorderDelay: -time.Millisecond}, false},
		{"inverted partition", ChaosConfig{Partitions: []Partition{{Start: time.Second, End: 0}}}, false},
	} {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestChaosLossDropsFrames(t *testing.T) {
	inner, err := New(Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var obs collectObs
	ch, err := NewChaos(inner, ChaosConfig{LossRate: 0.5, Seed: 42}, obs.obs)
	if err != nil {
		t.Fatal(err)
	}
	var delivered int64
	ch.Register(0, func(Message) {})
	ch.Register(1, func(Message) { atomic.AddInt64(&delivered, 1) })
	const msgs = 400
	for i := 1; i <= msgs; i++ {
		ch.Send(Message{From: 0, To: 1, Update: upd(0, i)})
	}
	ch.Flush()
	got := atomic.LoadInt64(&delivered)
	drops := obs.count(EvDrop)
	if got+int64(drops) != msgs {
		t.Fatalf("delivered %d + dropped %d != sent %d", got, drops, msgs)
	}
	// With loss 0.5 over 400 frames, both outcomes must actually occur.
	if drops == 0 || got == 0 {
		t.Fatalf("degenerate loss sampling: delivered=%d dropped=%d", got, drops)
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChaosDuplicatesFrames(t *testing.T) {
	inner, err := New(Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var obs collectObs
	ch, err := NewChaos(inner, ChaosConfig{DupRate: 0.5, Seed: 7}, obs.obs)
	if err != nil {
		t.Fatal(err)
	}
	var delivered int64
	ch.Register(0, func(Message) {})
	ch.Register(1, func(Message) { atomic.AddInt64(&delivered, 1) })
	const msgs = 200
	for i := 1; i <= msgs; i++ {
		ch.Send(Message{From: 0, To: 1, Update: upd(0, i)})
	}
	ch.Flush()
	dups := obs.count(EvDuplicate)
	if dups == 0 {
		t.Fatal("no duplicates sampled at rate 0.5")
	}
	if got := atomic.LoadInt64(&delivered); got != int64(msgs+dups) {
		t.Fatalf("delivered %d, want %d + %d duplicates", got, msgs, dups)
	}
	ch.Close()
}

func TestChaosPartitionWindow(t *testing.T) {
	inner, err := New(Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var obs collectObs
	ch, err := NewChaos(inner, ChaosConfig{
		Partitions: []Partition{{Start: 0, End: 40 * time.Millisecond, A: []int{0, 1}, B: []int{2, 3}}},
	}, obs.obs)
	if err != nil {
		t.Fatal(err)
	}
	var crossCut, sameSide int64
	for p := 0; p < 4; p++ {
		p := p
		ch.Register(p, func(m Message) {
			if (m.From < 2) != (p < 2) {
				atomic.AddInt64(&crossCut, 1)
			} else {
				atomic.AddInt64(&sameSide, 1)
			}
		})
	}
	// During the window: cross-cut traffic dies, same-side passes.
	ch.Send(Message{From: 0, To: 2, Update: upd(0, 1)})
	ch.Send(Message{From: 3, To: 1, Update: upd(3, 1)})
	ch.Send(Message{From: 0, To: 1, Update: upd(0, 2)})
	ch.Flush()
	if got := atomic.LoadInt64(&crossCut); got != 0 {
		t.Fatalf("%d frames crossed an active partition", got)
	}
	if got := atomic.LoadInt64(&sameSide); got != 1 {
		t.Fatalf("same-side delivery = %d, want 1", got)
	}
	if got := obs.count(EvDrop); got != 2 {
		t.Fatalf("partition drops = %d, want 2", got)
	}
	// After the window heals, the cut link works again.
	time.Sleep(45 * time.Millisecond)
	ch.Send(Message{From: 0, To: 2, Update: upd(0, 3)})
	ch.Flush()
	if got := atomic.LoadInt64(&crossCut); got != 1 {
		t.Fatalf("healed link delivered %d, want 1", got)
	}
	ch.Close()
}

// TestFaultyStackExactlyOnce is the end-to-end transport property: the
// full Net→Chaos→Reliable stack under heavy loss, duplication and
// reordering still delivers every message exactly once.
func TestFaultyStackExactlyOnce(t *testing.T) {
	var obs collectObs
	r, err := NewFaulty(
		Config{Procs: 3, MaxDelay: 200 * time.Microsecond, Seed: 3},
		ChaosConfig{LossRate: 0.2, DupRate: 0.1, ReorderRate: 0.1, ReorderDelay: time.Millisecond, Seed: 9},
		ReliableConfig{RetransmitTimeout: 500 * time.Microsecond, Seed: 5},
		obs.obs,
	)
	if err != nil {
		t.Fatal(err)
	}
	var counts [3]atomic.Int64
	for p := 0; p < 3; p++ {
		p := p
		r.Register(p, func(Message) { counts[p].Add(1) })
	}
	const msgs = 150
	for i := 1; i <= msgs; i++ {
		Broadcast(r, 3, i%3, upd(i%3, i))
	}
	r.Flush()
	total := counts[0].Load() + counts[1].Load() + counts[2].Load()
	if total != 2*msgs {
		t.Fatalf("delivered %d messages, want exactly %d (loss or dup leaked)", total, 2*msgs)
	}
	if got := r.Unacked(); got != 0 {
		t.Fatalf("%d unacked frames after Flush", got)
	}
	if obs.count(EvDrop) == 0 || obs.count(EvDupDiscard) == 0 {
		t.Fatalf("chaos injected nothing: drops=%d dupdiscards=%d",
			obs.count(EvDrop), obs.count(EvDupDiscard))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
