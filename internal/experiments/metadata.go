package experiments

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// MetadataOverhead is E9: the wire cost of the piggybacked clocks as
// the system grows. Both OptP and ANBKH ship an n-component vector per
// update; because Write_co is non-decreasing at each sender
// (Observation 1), consecutive updates from one sender can be
// delta-encoded on FIFO links, which is where OptP's sparser growth
// (only own writes and read dependencies) pays off in bytes.
func MetadataOverhead() (Result, error) {
	r := Result{
		Name:   "E9-metadata",
		Desc:   "mean clock bytes per update: full encoding vs per-sender delta (FIFO links)",
		Header: []string{"procs", "protocol", "full-B/upd", "delta-B/upd"},
	}
	for _, n := range []int{4, 8, 16, 32} {
		n := n
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
			var full, delta, count float64
			for _, seed := range seeds {
				scripts, err := workload.Scripts(workload.Config{
					Procs: n, Vars: n, OpsPerProc: 20, WriteRatio: 0.6,
					ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
				})
				if err != nil {
					return r, err
				}
				res, err := sim.Run(sim.Config{
					Procs: n, Vars: n, Protocol: kind,
					Latency: sim.NewUniformLatency(1, 150, seed*13+7),
					FIFO:    true,
				}, scripts)
				if err != nil {
					return r, fmt.Errorf("experiments: E9 %v n=%d: %w", kind, n, err)
				}
				f, d, c := clockBytes(res.Updates, n)
				full += f
				delta += d
				count += c
			}
			if count == 0 {
				continue
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(n), kind.String(),
				fmt.Sprintf("%.1f", full/count),
				fmt.Sprintf("%.1f", delta/count),
			})
		}
	}
	return r, nil
}

// clockBytes sums, over every sender's update sequence, the full wire
// size of each clock and the delta size against the sender's previous
// update (the first update of a sender deltas against the zero clock).
func clockBytes(updates map[history.WriteID]protocol.Update, n int) (full, delta, count float64) {
	// Group by sender, in sequence order.
	bySender := make(map[int][]protocol.Update)
	maxSeq := make(map[int]int)
	for id, u := range updates {
		bySender[id.Proc] = append(bySender[id.Proc], u)
		if id.Seq > maxSeq[id.Proc] {
			maxSeq[id.Proc] = id.Seq
		}
	}
	for p, us := range bySender {
		ordered := make([]protocol.Update, maxSeq[p]+1)
		for _, u := range us {
			ordered[u.ID.Seq] = u
		}
		prev := vclock.New(n)
		for seq := 1; seq <= maxSeq[p]; seq++ {
			u := ordered[seq]
			if u.ID.Seq == 0 {
				continue // gap (suppressed write); keep prev
			}
			full += float64(u.Clock.EncodedSize())
			delta += float64(len(u.Clock.AppendDelta(nil, prev)))
			prev = u.Clock
			count++
		}
	}
	return full, delta, count
}
