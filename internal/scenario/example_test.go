package scenario_test

import (
	"fmt"
	"log"

	"repro/internal/scenario"
)

// Analyzing the paper's Example 1 from its textual notation.
func Example() {
	a, err := scenario.AnalyzeString(`
p1: w(x1)a ; w(x1)c
p2: r(x1)a ; w(x2)b
p3: r(x2)b ; w(x2)d
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistent:", a.Consistent)
	for _, f := range a.CoFacts() {
		fmt.Println(f)
	}
	// Output:
	// consistent: true
	// w1(x1)a →co w1(x1)c
	// w1(x1)a →co w2(x2)b
	// w1(x1)a →co w3(x2)d
	// w1(x1)c ‖co w2(x2)b
	// w1(x1)c ‖co w3(x2)d
	// w2(x2)b →co w3(x2)d
}

// The analyzer flags stale reads with the exact reason.
func ExampleAnalyze_inconsistent() {
	a, err := scenario.AnalyzeString(`
p1: w(x)old ; w(x)new
p2: r(x)new ; r(x)old
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistent:", a.Consistent)
	fmt.Println("violations:", len(a.Violations))
	// Output:
	// consistent: false
	// violations: 1
}
