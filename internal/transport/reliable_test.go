package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedNet is a deterministic in-process Transport for exercising
// the reliability sublayer in isolation: it delivers synchronously and
// drops or duplicates exactly the frames the script says to.
type scriptedNet struct {
	procs    int
	handlers []Handler

	mu     sync.Mutex
	counts map[scriptKey]int
	// drop reports whether the nth transmission (1-based) of this frame
	// should be lost. nil means lossless.
	drop func(m Message, nth int) bool
	// dupData delivers every data frame twice.
	dupData bool
}

type scriptKey struct {
	from, to, seq int
	ack           bool
}

func newScriptedNet(procs int) *scriptedNet {
	return &scriptedNet{
		procs:    procs,
		handlers: make([]Handler, procs),
		counts:   make(map[scriptKey]int),
	}
}

func (s *scriptedNet) Register(id int, h Handler) { s.handlers[id] = h }

func (s *scriptedNet) Send(m Message) {
	s.mu.Lock()
	k := scriptKey{m.From, m.To, m.Seq, m.Ack}
	s.counts[k]++
	nth := s.counts[k]
	drop := s.drop != nil && s.drop(m, nth)
	h := s.handlers[m.To]
	s.mu.Unlock()
	if drop {
		return
	}
	h(m)
	if s.dupData && !m.Ack {
		h(m)
	}
}

func (s *scriptedNet) Flush()       {}
func (s *scriptedNet) Close() error { return nil }

// transmissions returns how many times the frame was handed to the net.
func (s *scriptedNet) transmissions(m Message) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[scriptKey{m.From, m.To, m.Seq, m.Ack}]
}

// collectObs is a race-safe NetEvent recorder.
type collectObs struct {
	mu     sync.Mutex
	events []NetEvent
}

func (c *collectObs) obs(e NetEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectObs) count(k NetEventKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestNextBackoff(t *testing.T) {
	for _, tc := range []struct {
		name     string
		cur, max time.Duration
		want     time.Duration
	}{
		{"doubles", time.Millisecond, 20 * time.Millisecond, 2 * time.Millisecond},
		{"doubles again", 4 * time.Millisecond, 20 * time.Millisecond, 8 * time.Millisecond},
		{"caps at max", 16 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond},
		{"stays at cap", 20 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond},
	} {
		if got := nextBackoff(tc.cur, tc.max); got != tc.want {
			t.Errorf("%s: nextBackoff(%v, %v) = %v, want %v", tc.name, tc.cur, tc.max, got, tc.want)
		}
	}
}

func TestDedup(t *testing.T) {
	for _, tc := range []struct {
		name     string
		add      []int
		seen     []int
		notSeen  []int
		wantSize int
	}{
		{"empty", nil, nil, []int{1, 2}, 0},
		{"gapless prefix compacts", []int{1, 2, 3}, []int{1, 2, 3}, []int{4}, 0},
		{"out of order compacts on gap fill", []int{3, 1, 2}, []int{1, 2, 3}, []int{4}, 0},
		{"gap keeps sparse tail", []int{1, 3, 5}, []int{1, 3, 5}, []int{2, 4}, 2},
		{"replay is idempotent", []int{1, 1, 2, 2, 2}, []int{1, 2}, []int{3}, 0},
	} {
		var d dedup
		for _, s := range tc.add {
			d.add(s)
		}
		for _, s := range tc.seen {
			if !d.seen(s) {
				t.Errorf("%s: seq %d not seen", tc.name, s)
			}
		}
		for _, s := range tc.notSeen {
			if d.seen(s) {
				t.Errorf("%s: seq %d wrongly seen", tc.name, s)
			}
		}
		if d.size() != tc.wantSize {
			t.Errorf("%s: size = %d, want %d", tc.name, d.size(), tc.wantSize)
		}
	}
}

// relStack builds a Reliable over a scriptedNet with a fast timeout.
func relStack(t *testing.T, net *scriptedNet, obs Observer) *Reliable {
	t.Helper()
	r, err := NewReliable(net, ReliableConfig{
		Procs:             net.procs,
		RetransmitTimeout: 500 * time.Microsecond,
		Seed:              1,
	}, obs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReliableRetransmitFiresAfterTimeout(t *testing.T) {
	net := newScriptedNet(2)
	// Lose the first transmission of every data frame; retransmissions
	// get through.
	net.drop = func(m Message, nth int) bool { return !m.Ack && nth == 1 }
	var obs collectObs
	r := relStack(t, net, obs.obs)
	var delivered int64
	r.Register(0, func(Message) {})
	r.Register(1, func(Message) { atomic.AddInt64(&delivered, 1) })

	m := Message{From: 0, To: 1, Update: upd(0, 1)}
	r.Send(m)
	r.Flush()
	if atomic.LoadInt64(&delivered) != 1 {
		t.Fatalf("delivered %d times, want exactly 1", delivered)
	}
	if obs.count(EvRetransmit) == 0 {
		t.Fatal("no retransmit recorded despite first transmission lost")
	}
	if got := r.Unacked(); got != 0 {
		t.Fatalf("resend buffer holds %d frames after Flush, want 0", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReliableDedupDropsReplayedSeqnos(t *testing.T) {
	net := newScriptedNet(2)
	net.dupData = true // every data frame arrives twice
	var obs collectObs
	// The exact dup-discard count below assumes no retransmissions: a
	// retransmitted frame is itself duplicated and discarded twice
	// more. A frozen fake clock makes that structural, not timing luck:
	// deadlines never pass, so no scheduler stall under a loaded test
	// run can fire a spurious retransmit.
	r, err := NewReliable(net, ReliableConfig{
		Procs: net.procs,
		Seed:  1,
		Clock: newFakeClock(),
	}, obs.obs)
	if err != nil {
		t.Fatal(err)
	}
	var delivered int64
	r.Register(0, func(Message) {})
	r.Register(1, func(Message) { atomic.AddInt64(&delivered, 1) })

	const msgs = 50
	for i := 1; i <= msgs; i++ {
		r.Send(Message{From: 0, To: 1, Update: upd(0, i)})
	}
	r.Flush()
	if atomic.LoadInt64(&delivered) != msgs {
		t.Fatalf("delivered %d, want exactly %d", delivered, msgs)
	}
	if got := obs.count(EvDupDiscard); got != msgs {
		t.Fatalf("dup discards = %d, want %d", got, msgs)
	}
	if got := r.DedupWindow(); got != 0 {
		t.Fatalf("dedup window = %d after gapless delivery, want 0", got)
	}
	r.Close()
}

func TestReliableLostAckTriggersRetransmitAndReack(t *testing.T) {
	net := newScriptedNet(2)
	// The data frame arrives, but its first ack is lost: the sender
	// must retransmit, the receiver dedup-discard and re-ack.
	net.drop = func(m Message, nth int) bool { return m.Ack && nth == 1 }
	var obs collectObs
	r := relStack(t, net, obs.obs)
	var delivered int64
	r.Register(0, func(Message) {})
	r.Register(1, func(Message) { atomic.AddInt64(&delivered, 1) })

	r.Send(Message{From: 0, To: 1, Update: upd(0, 1)})
	r.Flush()
	if atomic.LoadInt64(&delivered) != 1 {
		t.Fatalf("delivered %d times, want exactly 1", delivered)
	}
	if obs.count(EvRetransmit) == 0 || obs.count(EvDupDiscard) == 0 {
		t.Fatalf("want retransmit + dup-discard on lost ack, got %d/%d",
			obs.count(EvRetransmit), obs.count(EvDupDiscard))
	}
	if got := r.Unacked(); got != 0 {
		t.Fatalf("resend buffer holds %d frames after Flush, want 0", got)
	}
	r.Close()
}

func TestReliableBufferPrunedByAcks(t *testing.T) {
	// Bidirectional bursts over a lossless net: the resend buffers must
	// return to exactly 0 after Flush — acks prune every frame.
	net := newScriptedNet(3)
	r := relStack(t, net, nil)
	var delivered int64
	for p := 0; p < 3; p++ {
		r.Register(p, func(Message) { atomic.AddInt64(&delivered, 1) })
	}
	const rounds = 3
	for round := 0; round < rounds; round++ {
		for i := 1; i <= 40; i++ {
			Broadcast(r, 3, (round+i)%3, upd((round+i)%3, round*40+i))
		}
		r.Flush()
		if got := r.Unacked(); got != 0 {
			t.Fatalf("round %d: %d unacked frames after Flush, want 0 (unbounded growth)", round, got)
		}
	}
	if atomic.LoadInt64(&delivered) != rounds*40*2 {
		t.Fatalf("delivered %d, want %d", delivered, rounds*40*2)
	}
	r.Close()
}

func TestReliableBackoffGrowsAndCaps(t *testing.T) {
	net := newScriptedNet(2)
	// Black-hole the data frame entirely: every retransmission fails,
	// so the frame's recorded backoff must walk up to the cap.
	net.drop = func(m Message, nth int) bool { return !m.Ack }
	r, err := NewReliable(net, ReliableConfig{
		Procs:             2,
		RetransmitTimeout: 200 * time.Microsecond,
		BackoffMax:        800 * time.Microsecond,
		Seed:              1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Register(0, func(Message) {})
	r.Register(1, func(Message) {})
	r.Send(Message{From: 0, To: 1, Update: upd(0, 1)})

	deadline := time.Now().Add(2 * time.Second)
	for {
		l := r.links[0][1]
		l.mu.Lock()
		f := l.unacked[1]
		backoff := time.Duration(0)
		attempts := 0
		if f != nil {
			backoff, attempts = f.backoff, f.attempts
		}
		l.mu.Unlock()
		if f == nil {
			t.Fatal("frame vanished from resend buffer without an ack")
		}
		if backoff == 800*time.Microsecond && attempts >= 3 {
			break // doubled 200→400→800 and capped
		}
		if time.Now().After(deadline) {
			t.Fatalf("backoff never reached cap: backoff=%v attempts=%d", backoff, attempts)
		}
		time.Sleep(100 * time.Microsecond)
	}
	r.Close()
}

func TestReliableConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ReliableConfig
		ok   bool
	}{
		{"zero procs", ReliableConfig{Procs: 0}, false},
		{"negative timeout", ReliableConfig{Procs: 2, RetransmitTimeout: -1}, false},
		{"negative cap", ReliableConfig{Procs: 2, BackoffMax: -1}, false},
		{"defaults ok", ReliableConfig{Procs: 2}, true},
	} {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// fakeClock is a hand-cranked Clock: Now is whatever the test set it
// to, and advance moves time forward and fires exactly one retransmit
// scan — deterministic deadline control with no real sleeping.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	tick chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(0, 0), tick: make(chan time.Time)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Ticker(time.Duration) (<-chan time.Time, func()) {
	return c.tick, func() {}
}

// advance moves the clock and blocks until the retransmit loop has
// accepted the scan trigger.
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	c.mu.Unlock()
	c.tick <- now
}

// The Clock seam the dedup test's determinism rests on, exercised the
// other way: a dropped frame is retransmitted exactly when the fake
// clock steps past its deadline — no real time passes at all.
func TestReliableRetransmitFiresOnFakeClockAdvance(t *testing.T) {
	net := newScriptedNet(2)
	net.drop = func(m Message, nth int) bool { return !m.Ack && nth == 1 }
	clk := newFakeClock()
	var obs collectObs
	r, err := NewReliable(net, ReliableConfig{
		Procs:             net.procs,
		RetransmitTimeout: time.Millisecond,
		Seed:              1,
		Clock:             clk,
	}, obs.obs)
	if err != nil {
		t.Fatal(err)
	}
	var delivered int64
	r.Register(0, func(Message) {})
	r.Register(1, func(Message) { atomic.AddInt64(&delivered, 1) })

	r.Send(Message{From: 0, To: 1, Update: upd(0, 1)})
	// The first transmission was dropped. A scan short of the deadline
	// must not resend; one past it must.
	clk.advance(time.Microsecond)
	if got := obs.count(EvRetransmit); got != 0 {
		t.Fatalf("retransmits before the deadline = %d, want 0", got)
	}
	clk.advance(10 * time.Millisecond) // past deadline+jitter (≤1.25ms)
	r.Flush()
	if atomic.LoadInt64(&delivered) != 1 {
		t.Fatalf("delivered %d times, want exactly 1", delivered)
	}
	if got := obs.count(EvRetransmit); got == 0 {
		t.Fatal("no retransmit after the clock stepped past the deadline")
	}
	r.Close()
}
