package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ReliableConfig parameterizes the reliability sublayer.
type ReliableConfig struct {
	// Procs is the number of processes (must match the inner transport).
	Procs int
	// RetransmitTimeout is the initial ack deadline per frame; 0
	// defaults to 1ms. Subsequent retransmissions back off
	// exponentially (doubling, plus jitter) up to BackoffMax.
	RetransmitTimeout time.Duration
	// BackoffMax caps the retransmission backoff; 0 defaults to
	// 20× RetransmitTimeout.
	BackoffMax time.Duration
	// Seed drives backoff jitter.
	Seed int64
	// Clock abstracts time for the retransmission machinery. nil uses
	// the real clock; tests inject a fake to drive deadlines
	// deterministically (freeze it and no retransmit can ever fire;
	// advance it and one fires exactly on cue).
	Clock Clock
}

// Clock is the time source of the reliability sublayer.
type Clock interface {
	// Now returns the current time; retransmit deadlines are computed
	// from and compared against it.
	Now() time.Time
	// Ticker returns the retransmit-scan channel and a stop function.
	Ticker(d time.Duration) (<-chan time.Time, func())
}

// realClock is the default Clock: time.Now and time.Ticker.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Ticker(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// Validate reports configuration errors.
func (c ReliableConfig) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("transport: ReliableConfig.Procs = %d", c.Procs)
	}
	if c.RetransmitTimeout < 0 || c.BackoffMax < 0 {
		return fmt.Errorf("transport: negative retransmit timing (%v, %v)",
			c.RetransmitTimeout, c.BackoffMax)
	}
	return nil
}

// frame is one unacked transmission awaiting acknowledgment.
type frame struct {
	msg      Message
	deadline time.Time
	backoff  time.Duration
	attempts int
}

// dedup tracks the set of delivered sequence numbers on one directed
// link in O(out-of-order window) space: floor is the highest seq below
// which everything was delivered; above holds the sparse tail.
type dedup struct {
	floor int
	above map[int]bool
}

// seen reports whether seq was already delivered.
func (d *dedup) seen(seq int) bool {
	return seq <= d.floor || d.above[seq]
}

// add records seq as delivered and compacts the sparse tail.
func (d *dedup) add(seq int) {
	if d.seen(seq) {
		return
	}
	if d.above == nil {
		d.above = make(map[int]bool)
	}
	d.above[seq] = true
	for d.above[d.floor+1] {
		d.floor++
		delete(d.above, d.floor)
	}
}

// size returns the sparse-tail population (0 once delivery is gapless).
func (d *dedup) size() int { return len(d.above) }

// nextBackoff doubles cur, capped at max.
func nextBackoff(cur, max time.Duration) time.Duration {
	nb := 2 * cur
	if nb > max {
		nb = max
	}
	return nb
}

// relLink is the reliability state of one directed link: the sender's
// resend buffer and the receiver's dedup set.
type relLink struct {
	mu      sync.Mutex
	nextSeq int
	unacked map[int]*frame
	recv    dedup
}

// Reliable restores the exactly-once reliable-channel contract over a
// faulty inner transport (typically a Chaos-wrapped Net): every frame
// carries a per-link sequence number, receivers acknowledge and
// deduplicate, and a background loop retransmits unacked frames with
// exponential backoff and jitter. Protocol replicas run over it
// unchanged — the only property the paper's proofs use (every message
// delivered exactly once after finite delay) is preserved under loss,
// duplication, reordering, and healed partitions.
//
// Reliability is per-link and order-agnostic: FIFO ordering is neither
// required nor restored (the protocols buffer out-of-order updates
// themselves).
type Reliable struct {
	cfg   ReliableConfig
	inner Transport
	obs   Observer

	links [][]*relLink // links[from][to]

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	outstanding counter // accepted frames not yet acked

	closeMu sync.RWMutex
	closed  bool

	ackq chan Message
	stop chan struct{}
	done sync.WaitGroup // retransmit loop + ack drainer
}

// NewReliable wraps inner with the reliability sublayer. obs may be
// nil. The caller must perform all Register calls through the returned
// Reliable, not the inner transport.
func NewReliable(inner Transport, cfg ReliableConfig, obs Observer) (*Reliable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RetransmitTimeout == 0 {
		cfg.RetransmitTimeout = time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 20 * cfg.RetransmitTimeout
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	r := &Reliable{
		cfg:   cfg,
		inner: inner,
		obs:   obs,
		links: make([][]*relLink, cfg.Procs),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		ackq:  make(chan Message, 4096),
		stop:  make(chan struct{}),
	}
	for i := range r.links {
		r.links[i] = make([]*relLink, cfg.Procs)
		for j := range r.links[i] {
			if i != j {
				r.links[i][j] = &relLink{unacked: make(map[int]*frame)}
			}
		}
	}
	r.done.Add(2)
	go r.retransmitLoop()
	go r.ackLoop()
	return r, nil
}

// NewFaulty assembles the full chaos stack — Net under Chaos under
// Reliable — returning a Transport that injects the configured faults
// yet still honors the exactly-once contract.
func NewFaulty(net Config, chaos ChaosConfig, rel ReliableConfig, obs Observer) (*Reliable, error) {
	n, err := New(net)
	if err != nil {
		return nil, err
	}
	ch, err := NewChaos(n, chaos, obs)
	if err != nil {
		n.Close()
		return nil, err
	}
	rel.Procs = net.Procs
	r, err := NewReliable(ch, rel, obs)
	if err != nil {
		ch.Close()
		return nil, err
	}
	return r, nil
}

// Register implements Transport, interposing the ack/dedup handler.
func (r *Reliable) Register(id int, h Handler) {
	r.inner.Register(id, func(m Message) { r.receive(id, h, m) })
}

// Send implements Transport: it assigns the frame its link sequence
// number, buffers it for retransmission, and transmits.
func (r *Reliable) Send(m Message) {
	if m.Ack {
		panic("transport: Reliable.Send of an ack frame")
	}
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	if r.closed {
		return
	}
	if m.Heartbeat {
		// Heartbeats bypass the sublayer: a lost probe IS the failure
		// signal, and seq/ack machinery would dedup-discard every probe
		// (Seq 0 sits below the dedup floor) and retransmit the rest.
		r.inner.Send(m)
		return
	}
	l := r.links[m.From][m.To]
	l.mu.Lock()
	l.nextSeq++
	m.Seq = l.nextSeq
	l.unacked[m.Seq] = &frame{
		msg:      m,
		deadline: r.cfg.Clock.Now().Add(r.jittered(r.cfg.RetransmitTimeout)),
		backoff:  r.cfg.RetransmitTimeout,
	}
	l.mu.Unlock()
	r.outstanding.add(1)
	r.inner.Send(m)
}

// receive handles every frame arriving at process id.
func (r *Reliable) receive(id int, h Handler, m Message) {
	if m.Heartbeat {
		h(m) // bypasses seq/ack/dedup; see Send
		return
	}
	if m.Ack {
		// The ack for link from→to travels to→from.
		l := r.links[m.To][m.From]
		l.mu.Lock()
		_, live := l.unacked[m.Seq]
		delete(l.unacked, m.Seq)
		l.mu.Unlock()
		if live {
			r.outstanding.add(-1)
		}
		return
	}
	l := r.links[m.From][m.To]
	l.mu.Lock()
	dup := l.recv.seen(m.Seq)
	if !dup {
		l.recv.add(m.Seq)
	}
	l.mu.Unlock()
	if dup {
		r.emit(NetEvent{Kind: EvDupDiscard, From: m.From, To: m.To, Msg: m})
	} else {
		h(m)
	}
	// Ack even duplicates: the first ack may have been lost, and the
	// sender keeps retransmitting until one lands.
	r.sendAck(Message{From: m.To, To: m.From, Seq: m.Seq, Ack: true})
}

// sendAck enqueues an ack without ever blocking a delivery goroutine
// (two handlers blocked acking each other over full FIFO links would
// deadlock). A full queue drops the ack; retransmission re-triggers it.
func (r *Reliable) sendAck(m Message) {
	select {
	case r.ackq <- m:
	default:
	}
}

// ackLoop drains queued acks onto the inner transport.
func (r *Reliable) ackLoop() {
	defer r.done.Done()
	for {
		select {
		case m := <-r.ackq:
			r.inner.Send(m)
		case <-r.stop:
			return
		}
	}
}

// retransmitLoop periodically re-sends frames past their ack deadline,
// growing each frame's backoff exponentially up to the cap.
func (r *Reliable) retransmitLoop() {
	defer r.done.Done()
	tick := r.cfg.RetransmitTimeout / 4
	if tick < 50*time.Microsecond {
		tick = 50 * time.Microsecond
	}
	tickC, stopTick := r.cfg.Clock.Ticker(tick)
	defer stopTick()
	for {
		select {
		case <-r.stop:
			return
		case <-tickC:
		}
		now := r.cfg.Clock.Now()
		var resend []Message
		var attempts []int
		for _, row := range r.links {
			for _, l := range row {
				if l == nil {
					continue
				}
				l.mu.Lock()
				for _, f := range l.unacked {
					if now.After(f.deadline) {
						f.attempts++
						f.backoff = nextBackoff(f.backoff, r.cfg.BackoffMax)
						f.deadline = now.Add(r.jittered(f.backoff))
						resend = append(resend, f.msg)
						attempts = append(attempts, f.attempts)
					}
				}
				l.mu.Unlock()
			}
		}
		// Transmit outside the link locks: a blocked inner Send must
		// not stall Send/receive on the same link.
		for i, m := range resend {
			r.emit(NetEvent{Kind: EvRetransmit, From: m.From, To: m.To, Msg: m, Attempts: attempts[i]})
			r.inner.Send(m)
		}
	}
}

// jittered spreads d by up to +25% to desynchronize retransmissions.
func (r *Reliable) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/4 + 1))
	r.mu.Unlock()
	return d + j
}

// Flush implements Transport: it blocks until every accepted frame has
// been delivered AND acknowledged — after Flush the resend buffers are
// empty (no unbounded growth across rounds).
func (r *Reliable) Flush() {
	r.outstanding.wait()
	r.inner.Flush()
}

// Unacked returns the total number of frames awaiting acknowledgment
// across all links (0 after a successful Flush).
func (r *Reliable) Unacked() int {
	total := 0
	for _, row := range r.links {
		for _, l := range row {
			if l == nil {
				continue
			}
			l.mu.Lock()
			total += len(l.unacked)
			l.mu.Unlock()
		}
	}
	return total
}

// DedupWindow returns the total out-of-order dedup population across
// all links (0 once every link has seen a gapless prefix).
func (r *Reliable) DedupWindow() int {
	total := 0
	for _, row := range r.links {
		for _, l := range row {
			if l == nil {
				continue
			}
			l.mu.Lock()
			total += l.recv.size()
			l.mu.Unlock()
		}
	}
	return total
}

// Close implements Transport: it stops retransmission and ack traffic,
// then closes the inner transport. Frames still unacked at Close are
// abandoned — callers wanting full delivery must Flush first.
func (r *Reliable) Close() error {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return ErrClosed
	}
	r.closed = true
	r.closeMu.Unlock()
	close(r.stop)
	r.done.Wait()
	return r.inner.Close()
}

func (r *Reliable) emit(e NetEvent) {
	if r.obs != nil {
		r.obs(e)
	}
}
