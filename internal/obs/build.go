package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RegisterBuildInfo publishes the identity of the running binary on
// reg, the two series every deployed daemon should carry:
//
//	dsm_build_info{component="...",go_version="...",revision="..."} 1
//	dsm_uptime_seconds{component="..."} <seconds since registration>
//
// The info-metric convention (constant 1, identity in the labels) lets
// a scrape join any other series to the exact build that produced it;
// uptime turns "did it restart?" into a query. component names the
// binary ("dsmd", "dsmrun"). Revision comes from the VCS stamp the Go
// toolchain embeds, "unknown" for builds outside a checkout (go test,
// stripped builds).
func RegisterBuildInfo(reg *Registry, component string) {
	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
				if len(revision) > 12 {
					revision = revision[:12]
				}
			}
		}
	}
	reg.Gauge("dsm_build_info", "build identity: constant 1, identity in the labels",
		L("component", component), L("go_version", runtime.Version()), L("revision", revision)).Set(1)
	start := time.Now()
	reg.GaugeFunc("dsm_uptime_seconds", "seconds since this process registered its metrics",
		func() int64 { return int64(time.Since(start).Seconds()) },
		L("component", component))
}
