package protocol

import (
	"fmt"

	"repro/internal/history"
)

// optpws is OptP with receiver-side writing semantics — the combination
// the paper's footnote 8 points out is possible ("writing semantics
// could be applied also to the protocol presented in the next
// section"). It keeps OptP's Write_co machinery (so enabling sets never
// exceed X_co-safe) and additionally skips an overwritten same-variable
// predecessor exactly as WSRecv does, discarding its late message.
//
// The skip rule mirrors wsrecv's, reinterpreted over Write_co: an
// update u(x) from p_j whose OptP wait condition fails only on the
// single component of u.Prev — i.e. the one missing causal predecessor
// is precisely the write u directly overwrites — may be applied at
// once, with Prev logically applied immediately before. Because
// Write_co components count only →co-past writes (Theorem 1), a
// one-component gap that equals Prev's sequence number can hide no
// intermediate write on another variable: such a w”(y) would occupy a
// second missing component (y's writer) or a deeper gap on the same
// one.
//
// Like the other writing-semantics protocols it is outside 𝒫: skipped
// values are never installed.
type optpws struct {
	*optp
	skipped map[history.WriteID]bool
	skips   int
}

// NewOptPWS returns an OptP replica extended with receiver-side
// writing semantics.
func NewOptPWS(p, n, m int) Replica {
	return &optpws{
		optp:    newOptP(p, n, m, true),
		skipped: make(map[history.WriteID]bool),
	}
}

func (r *optpws) Kind() Kind { return OptPWS }

// Status extends OptP's wait condition with the skip and discard
// outcomes.
func (r *optpws) Status(u Update) Deliverability {
	if r.skipped[u.ID] {
		return Discardable
	}
	if r.optp.Status(u) == Deliverable {
		return Deliverable
	}
	if r.skipDeliverable(u) {
		return Deliverable
	}
	return Blocked
}

// skipDeliverable reports whether u's only missing causal predecessor
// is exactly u.Prev (same variable by construction of Prev).
func (r *optpws) skipDeliverable(u Update) bool {
	if u.Prev.IsBottom() || r.skipped[u.Prev] {
		return false
	}
	from := u.From()
	q := u.Prev.Proc
	if q == from {
		// Sender overwrote its own write: the gap on the sender
		// component must be exactly Prev.
		if u.Prev.Seq != u.ID.Seq-1 {
			return false
		}
		if r.apply.Get(from) != u.Clock.Get(from)-2 {
			return false
		}
	} else {
		if r.apply.Get(from) != u.Clock.Get(from)-1 {
			return false
		}
		// The q component must demand exactly Prev and nothing later.
		if uint64(u.Prev.Seq) != u.Clock.Get(q) || r.apply.Get(q) != u.Clock.Get(q)-1 {
			return false
		}
	}
	for k := 0; k < r.n; k++ {
		if k == from || k == q {
			continue
		}
		if u.Clock.Get(k) > r.apply.Get(k) {
			return false
		}
	}
	return true
}

// Apply installs u, logically applying Prev first on a skip delivery.
func (r *optpws) Apply(u Update) {
	if r.optp.Status(u) == Deliverable {
		r.optp.Apply(u)
		return
	}
	if !r.skipDeliverable(u) {
		panic(fmt.Sprintf("optpws: Apply of %v while blocked (apply=%v)", u, r.apply))
	}
	// Logical apply of Prev: advance the apply counter only — its value
	// is never installed and its LastWriteOn is superseded by u's.
	r.skipped[u.Prev] = true
	r.skips++
	r.apply.Tick(u.Prev.Proc)
	r.optp.Apply(u)
}

// SkipTarget implements Skipper.
func (r *optpws) SkipTarget(u Update) history.WriteID {
	if r.optp.Status(u) != Deliverable && r.skipDeliverable(u) {
		return u.Prev
	}
	return history.Bottom
}

// Discard drops the late message of a skipped write.
func (r *optpws) Discard(u Update) {
	if !r.skipped[u.ID] {
		panic(fmt.Sprintf("optpws: Discard of %v that was never skipped", u))
	}
	delete(r.skipped, u.ID)
}

// Skips returns the number of logical applies performed.
func (r *optpws) Skips() int { return r.skips }
