package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	"repro/internal/protocol"
	"repro/internal/service"
)

// TraceOverheadName identifies the tracing-overhead scorecard in
// dsmbench/v1 documents. CheckTraceOverhead gates its ops/s against
// the committed *E-service* baseline: the experiment is the E-service
// workload with the full tracing stack switched on, so the gap between
// the two is exactly what always-on tracing costs.
const TraceOverheadName = "E-trace"

// traceStages are the server stages whose p99 the scorecard decomposes.
var traceStages = []reqtrace.Stage{
	reqtrace.StageAdmission, reqtrace.StageDedup, reqtrace.StageFrontierWait,
	reqtrace.StageBatchQueue, reqtrace.StageApply, reqtrace.StageRespond,
}

// TraceOverhead runs the serving-tier closed loop with request tracing
// fully enabled — registered per-stage histograms on both ends, 5% of
// calls carrying wire trace context, tail sampler live — and reports
// ops/s plus the stage-decomposed server-side p99. CI gates the ops/s
// column against BENCH_service.json at 5%: the always-on tracing path
// must cost less than a twentieth of the serving tier's throughput.
func TraceOverhead(sessionsPerConn, opsPerSession int) (Result, error) {
	return traceOverhead(sessionsPerConn, opsPerSession, nil)
}

// TraceOverheadRecords is TraceOverhead plus a JSONL dump of every
// tail-sampled request record (server then clients) to w — the input
// of cmd/dsmtrace, uploaded as a CI artifact.
func TraceOverheadRecords(sessionsPerConn, opsPerSession int, w io.Writer) (Result, error) {
	return traceOverhead(sessionsPerConn, opsPerSession, w)
}

func traceOverhead(sessionsPerConn, opsPerSession int, w io.Writer) (Result, error) {
	r := Result{
		Name: TraceOverheadName,
		Desc: fmt.Sprintf("E-service workload with tracing on (%d sessions/conn × %d ops, stage histograms, 5%% wire sampling); ops/s gated at 5%% vs the E-service baseline",
			sessionsPerConn, opsPerSession),
		Header: []string{"conns", "sessions", "ops", "elapsed", "ops/s", "p99(req)"},
	}
	for _, s := range traceStages {
		r.Header = append(r.Header, "p99("+s.String()+")")
	}
	for _, conns := range []int{1, 4, 8} {
		row, err := traceRun(conns, sessionsPerConn, opsPerSession, w)
		if err != nil {
			return r, fmt.Errorf("experiments: %s %d conns: %w", TraceOverheadName, conns, err)
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// traceRun is serviceRun with the tracing stack on. The workload is
// kept identical so the ops/s column is comparable to E-service.
func traceRun(conns, sessionsPerConn, opsPerSession int, w io.Writer) ([]string, error) {
	const procs, vars = 3, 16
	cl, err := core.NewCluster(core.Config{
		Processes: procs, Variables: vars, Protocol: protocol.OptP, FIFO: true,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	reg := obs.NewRegistry()
	srv, err := service.New(service.Config{Cluster: cl, Metrics: reg})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	clients := make([]*client.Client, conns)
	for i := range clients {
		clients[i], err = client.DialConfig(client.Config{
			Addr: srv.Addr(), Metrics: reg, TraceSample: 0.05,
		})
		if err != nil {
			return nil, err
		}
		defer clients[i].Close()
	}

	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conns*sessionsPerConn)
	for ci, c := range clients {
		for si := 0; si < sessionsPerConn; si++ {
			wg.Add(1)
			go func(ci, si int, c *client.Client) {
				defer wg.Done()
				s := c.Session()
				x := (ci*sessionsPerConn + si) % vars
				base := int64(ci*1_000_000 + si*10_000)
				for i := 1; i <= opsPerSession; i++ {
					var err error
					if i%4 == 0 {
						_, err = s.Read(ctx, x)
					} else {
						err = s.Write(ctx, x, base+int64(i))
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}(ci, si, c)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if w != nil {
		if err := srv.Trace().WriteRecords(w); err != nil {
			return nil, err
		}
		for _, c := range clients {
			if err := c.Trace().WriteRecords(w); err != nil {
				return nil, err
			}
		}
	}
	trace := srv.Trace()
	sctx, cancel := context.WithTimeout(ctx, time.Minute)
	err = srv.Shutdown(sctx)
	cancel()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	qctx, cancel := context.WithTimeout(ctx, time.Minute)
	err = cl.Quiesce(qctx)
	cancel()
	if err != nil {
		return nil, err
	}
	total := conns * sessionsPerConn * opsPerSession
	row := []string{
		fmt.Sprint(conns),
		fmt.Sprint(conns * sessionsPerConn),
		fmt.Sprint(total),
		elapsed.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
		fmtP99(trace.TotalHistogram().Quantile(0.99)),
	}
	for _, s := range traceStages {
		row = append(row, fmtP99(trace.StageHistogram(s).Quantile(0.99)))
	}
	return row, nil
}

// fmtP99 renders a nanosecond quantile; "-" when the stage never ran.
func fmtP99(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// CheckTraceOverhead gates the E-trace ops/s column against the
// committed E-service baseline: tracing-on throughput must stay within
// tolerance (0.05 = 5%) of the tracing-off envelope at every
// connection count both documents share.
func CheckTraceOverhead(current []Result, baseline Scorecard, tolerance float64) error {
	base, err := opsPerSecByName(baseline.Experiments, ServiceName)
	if err != nil {
		return fmt.Errorf("experiments: baseline scorecard: %w", err)
	}
	if len(base) == 0 {
		return fmt.Errorf("experiments: baseline scorecard has no %s rows", ServiceName)
	}
	cur, err := opsPerSecByName(current, TraceOverheadName)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("experiments: current results have no %s rows", TraceOverheadName)
	}
	for conns, want := range base {
		got, ok := cur[conns]
		if !ok {
			continue
		}
		if floor := want * (1 - tolerance); got < floor {
			return fmt.Errorf("experiments: tracing overhead at %s conns: %.0f ops/s < %.0f (service baseline %.0f - %.0f%% budget)",
				conns, got, floor, want, tolerance*100)
		}
	}
	return nil
}
