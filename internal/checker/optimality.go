package checker

import (
	"sort"

	"repro/internal/history"
	"repro/internal/protocol"
)

// This file reconstructs the enabling-event sets X_P of Section 3.3
// from the protocol clocks piggybacked on updates, and compares them to
// X_co-safe (Definition 4). It is what regenerates Tables 1 and 2.
//
// The reconstruction uses the single-component rule that holds for both
// clock systems we ship:
//
//   - OptP (Corollary 1):  w' →co w  ⇔  w'.Write_co[i'] ≤ w.Write_co[i']
//   - ANBKH (Fidge–Mattern): send(w') → send(w) ⇔ w'.VT[i'] ≤ w.VT[i']
//
// where i' is the issuer of w'. For OptP the resulting set IS
// X_co-safe; for ANBKH it is the (generally larger) happened-before
// set, and the difference is exactly the protocol's unnecessary
// enabling events.

// DependencySet returns the writes whose apply events are enabling
// events of apply(w) under the protocol that produced the updates'
// clocks: every w' ≠ w with clock(w')[issuer(w')] ≤ clock(w)[issuer(w')].
// The result is sorted by (Proc, Seq).
func DependencySet(updates map[history.WriteID]protocol.Update, w history.WriteID) []history.WriteID {
	uw, ok := updates[w]
	if !ok {
		return nil
	}
	var deps []history.WriteID
	for id, u := range updates {
		if id == w {
			continue
		}
		if u.Clock.Get(id.Proc) <= uw.Clock.Get(id.Proc) && u.Clock.Get(id.Proc) > 0 {
			deps = append(deps, id)
		}
	}
	sortIDs(deps)
	return deps
}

// XcoSafe returns X_co-safe(apply(w)) per Definition 4: the writes in
// ↓(w, →co), sorted by (Proc, Seq). It is the same set at every
// process.
func (r *Report) XcoSafe(w history.WriteID) []history.WriteID {
	idx := r.History.WriteIndex(w)
	if idx < 0 {
		return nil
	}
	ids := r.Causality.WritesBefore(idx)
	sortIDs(ids)
	return ids
}

// ExcessDependency is an enabling event a protocol imposes beyond
// X_co-safe — the cause of unnecessary write delays.
type ExcessDependency struct {
	Write history.WriteID // the delayed write
	Extra history.WriteID // the spurious dependency
}

// ExcessDependencies compares the protocol's reconstructed enabling
// sets with X_co-safe for every write of the run. An empty result over
// all runs is the observable signature of Definition 5 optimality; for
// ANBKH the Figure 3 run yields exactly {(b, c)}.
func (r *Report) ExcessDependencies(updates map[history.WriteID]protocol.Update) []ExcessDependency {
	var out []ExcessDependency
	var writes []history.WriteID
	for id := range updates {
		if id.Seq > 0 { // skip token markers
			writes = append(writes, id)
		}
	}
	sortIDs(writes)
	for _, w := range writes {
		safe := make(map[history.WriteID]bool)
		for _, s := range r.XcoSafe(w) {
			safe[s] = true
		}
		for _, dep := range DependencySet(updates, w) {
			if !safe[dep] {
				out = append(out, ExcessDependency{Write: w, Extra: dep})
			}
		}
	}
	return out
}

// MissingDependencies performs the converse check — a protocol whose
// enabling sets MISS a member of X_co-safe is unsafe. It must be empty
// for every protocol in 𝒫 (X_co-safe ⊆ X_P, Section 3.4).
func (r *Report) MissingDependencies(updates map[history.WriteID]protocol.Update) []ExcessDependency {
	var out []ExcessDependency
	var writes []history.WriteID
	for id := range updates {
		if id.Seq > 0 {
			writes = append(writes, id)
		}
	}
	sortIDs(writes)
	for _, w := range writes {
		have := make(map[history.WriteID]bool)
		for _, d := range DependencySet(updates, w) {
			have[d] = true
		}
		for _, s := range r.XcoSafe(w) {
			if !have[s] {
				out = append(out, ExcessDependency{Write: w, Extra: s})
			}
		}
	}
	return out
}

func sortIDs(ids []history.WriteID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Proc != ids[j].Proc {
			return ids[i].Proc < ids[j].Proc
		}
		return ids[i].Seq < ids[j].Seq
	})
}
