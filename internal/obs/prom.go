package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), families in registration
// order, series in registration order, histogram buckets cumulative
// with the conventional `le` label and +Inf terminator.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.fams[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, k := range f.order {
			m := f.series[k]
			switch {
			case m.counter != nil:
				if err := writeSeries(w, f.name, m.labels, "", float64(m.counter.Value())); err != nil {
					return err
				}
			case m.gauge != nil:
				if err := writeSeries(w, f.name, m.labels, "", float64(m.gauge.Value())); err != nil {
					return err
				}
			case m.fn != nil:
				if err := writeSeries(w, f.name, m.labels, "", float64(m.fn())); err != nil {
					return err
				}
			case m.hist != nil:
				cum := m.hist.Snapshot()
				bounds := m.hist.Bounds()
				for i, b := range bounds {
					le := L("le", fmt.Sprint(b))
					if err := writeSeries(w, f.name+"_bucket", joinLabels(m.labels, le), "", float64(cum[i])); err != nil {
						return err
					}
				}
				if err := writeSeries(w, f.name+"_bucket", joinLabels(m.labels, L("le", "+Inf")), "", float64(cum[len(cum)-1])); err != nil {
					return err
				}
				if err := writeSeries(w, f.name+"_sum", m.labels, "", float64(m.hist.Sum())); err != nil {
					return err
				}
				if err := writeSeries(w, f.name+"_count", m.labels, "", float64(m.hist.Count())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// joinLabels merges a canonical label string with one extra label,
// keeping the canonical sort order.
func joinLabels(canonical string, extra Label) string {
	add := fmt.Sprintf("%s=%q", extra.Name, extra.Value)
	if canonical == "" {
		return add
	}
	parts := append(strings.Split(canonical, ","), add)
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func writeSeries(w io.Writer, name, labels, suffix string, v float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s%s %g\n", name, suffix, v)
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s{%s} %g\n", name, suffix, labels, v)
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// expvarSnapshot renders the registry as a flat name{labels} -> value
// map for expvar consumers.
func (r *Registry) expvarSnapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any)
	key := func(name, labels string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	for _, name := range r.order {
		f := r.fams[name]
		for _, k := range f.order {
			m := f.series[k]
			switch {
			case m.counter != nil:
				out[key(f.name, m.labels)] = m.counter.Value()
			case m.gauge != nil:
				out[key(f.name, m.labels)] = m.gauge.Value()
			case m.fn != nil:
				out[key(f.name, m.labels)] = m.fn()
			case m.hist != nil:
				out[key(f.name+"_count", m.labels)] = m.hist.Count()
				out[key(f.name+"_sum", m.labels)] = m.hist.Sum()
			}
		}
	}
	return out
}

var expvarMu sync.Mutex

// PublishExpvar exposes the registry under the given expvar name
// (shown at /debug/vars). Re-publishing under a name that is already
// taken replaces nothing and is a no-op rather than the panic
// expvar.Publish would raise — CLIs may build several registries over
// one process lifetime (e.g. dsmbench sweeps).
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.expvarSnapshot() }))
}
