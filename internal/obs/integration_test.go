package obs_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// scrape GETs path from the debug server and returns the body.
func scrape(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// parseProm parses a Prometheus text exposition into series -> value.
func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valS, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(valS, 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}

// sumFamily sums every series of one metric family.
func sumFamily(series map[string]float64, family string) float64 {
	total := 0.0
	for name, v := range series {
		if name == family || strings.HasPrefix(name, family+"{") {
			total += v
		}
	}
	return total
}

// runWorkload drives the dsmrun-style seeded random workload.
func runWorkload(t *testing.T, c *core.Cluster, procs, vars, ops int, seed int64) {
	t.Helper()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(p)))
			for i := 1; i <= ops; i++ {
				if rng.Float64() < 0.6 {
					if err := c.Node(p).Write(rng.Intn(vars), int64(p)*1_000_000+int64(i)); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := c.Node(p).Read(rng.Intn(vars)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLiveMetricsMatchPostHocStats is the acceptance test of the
// observability layer: a live seeded run is scraped over HTTP, and the
// scraped totals must equal — exactly, not approximately — what the
// post-hoc trace.Log computes for the same run, because both views
// derive from the same serialized event stream.
func TestLiveMetricsMatchPostHocStats(t *testing.T) {
	const (
		procs = 3
		vars  = 4
		ops   = 60
		seed  = 7
	)
	observer := obs.NewObserver(obs.Options{Procs: procs, Protocol: "OptP"})
	var streamed bytes.Buffer
	sink := obs.NewJSONLSink(&streamed, 1<<15)
	srv, err := obs.StartDebugServer("127.0.0.1:0", observer.Registry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := core.NewCluster(core.Config{
		Processes: procs, Variables: vars, Protocol: protocol.OptP,
		MaxDelay: 500 * time.Microsecond, FIFO: true, Seed: seed,
		Obs: observer, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Scrape mid-run: the point of the layer is that /metrics answers
	// while the cluster is under load, not only after quiesce.
	stopProbe := make(chan struct{})
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-stopProbe:
				return
			default:
			}
			if code, _ := scrape(t, srv.Addr(), "/metrics"); code != http.StatusOK {
				t.Errorf("mid-run /metrics status %d", code)
				return
			}
		}
	}()
	runWorkload(t, c, procs, vars, ops, seed)
	close(stopProbe)
	<-probeDone

	code, body := scrape(t, srv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	series := parseProm(t, body)
	log := c.Log()

	if got, want := sumFamily(series, "dsm_writes_total"), float64(log.WritesIssued()); got != want {
		t.Errorf("dsm_writes_total = %v, post-hoc WritesIssued = %v", got, want)
	}
	if got, want := sumFamily(series, "dsm_receipts_total"), float64(log.ReceiptCount()); got != want {
		t.Errorf("dsm_receipts_total = %v, post-hoc ReceiptCount = %v", got, want)
	}
	if got, want := sumFamily(series, "dsm_delays_total"), float64(log.DelayCount()); got != want {
		t.Errorf("dsm_delays_total = %v, post-hoc DelayCount = %v", got, want)
	}
	if got, want := sumFamily(series, "dsm_reads_total"), float64(log.ReadsReturned()); got != want {
		t.Errorf("dsm_reads_total = %v, post-hoc ReadsReturned = %v", got, want)
	}

	vis := log.VisibilityLatencies()
	var visSum int64
	for _, v := range vis {
		visSum += v
	}
	if got, want := sumFamily(series, "dsm_propagation_ns_count"), float64(len(vis)); got != want {
		t.Errorf("dsm_propagation_ns_count = %v, post-hoc len(VisibilityLatencies) = %v", got, want)
	}
	if got, want := sumFamily(series, "dsm_propagation_ns_sum"), float64(visSum); got != want {
		t.Errorf("dsm_propagation_ns_sum = %v, post-hoc sum(VisibilityLatencies) = %v", got, want)
	}
	if got, want := observer.SpanTotal(), uint64(len(vis)); got != want {
		t.Errorf("SpanTotal = %d, want %d", got, want)
	}

	// The streaming sink saw the identical event stream.
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if n := sink.Dropped(); n != 0 {
		t.Fatalf("sink dropped %d events", n)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(streamed.Bytes()))
	for sc.Scan() {
		var je trace.JSONEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			t.Fatalf("stream line %d: %v", lines, err)
		}
		lines++
	}
	if lines != len(log.Events) {
		t.Errorf("streamed %d events, log has %d", lines, len(log.Events))
	}

	// Debug endpoints answer.
	if code, body := scrape(t, srv.Addr(), "/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars status %d", code)
	} else {
		var vars map[string]json.RawMessage
		if err := json.Unmarshal([]byte(body), &vars); err != nil {
			t.Errorf("/debug/vars not JSON: %v", err)
		} else if _, ok := vars["dsm"]; !ok {
			t.Errorf("/debug/vars missing the dsm registry")
		}
	}
	if code, body := scrape(t, srv.Addr(), "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

// TestChaosGaugesScrape covers the scrape-time gauges the transport
// stack registers (un-acked frames, dedup window, suspected pairs):
// a chaos + heartbeat run must expose them, and concurrent scraping
// during the run must be race-free (this test matters under -race).
func TestChaosGaugesScrape(t *testing.T) {
	const (
		procs = 3
		vars  = 2
		ops   = 30
		seed  = 11
	)
	observer := obs.NewObserver(obs.Options{Procs: procs, Protocol: "OptP"})
	srv, err := obs.StartDebugServer("127.0.0.1:0", observer.Registry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := core.NewCluster(core.Config{
		Processes: procs, Variables: vars, Protocol: protocol.OptP,
		MaxDelay: 200 * time.Microsecond, Seed: seed, Obs: observer,
		Chaos:             transport.ChaosConfig{LossRate: 0.1, DupRate: 0.1, Seed: seed},
		HeartbeatInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runWorkload(t, c, procs, vars, ops, seed)

	_, body := scrape(t, srv.Addr(), "/metrics")
	series := parseProm(t, body)
	for _, family := range []string{"dsm_unacked_frames", "dsm_dedup_window", "dsm_suspected_pairs"} {
		found := false
		for name := range series {
			if strings.HasPrefix(name, family) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("scrape missing %s:\n%s", family, body)
		}
	}
	log := c.Log()
	if got, want := sumFamily(series, "dsm_net_drops_total"), float64(log.NetDropCount()); got != want {
		t.Errorf("dsm_net_drops_total = %v, post-hoc NetDropCount = %v", got, want)
	}
	if got, want := sumFamily(series, "dsm_retransmits_total"), float64(log.RetransmitCount()); got != want {
		t.Errorf("dsm_retransmits_total = %v, post-hoc RetransmitCount = %v", got, want)
	}
}

// TestWALFsyncHistogram checks the durability hook end to end: a
// WAL-sync run must land fsync samples in dsm_wal_fsync_ns.
func TestWALFsyncHistogram(t *testing.T) {
	observer := obs.NewObserver(obs.Options{Procs: 2, Protocol: "OptP"})
	c, err := core.NewCluster(core.Config{
		Processes: 2, Variables: 2, Protocol: protocol.OptP,
		WALDir: t.TempDir(), WALSync: true, Obs: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runWorkload(t, c, 2, 2, 10, 3)

	var buf bytes.Buffer
	if err := observer.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series := parseProm(t, buf.String())
	if got := sumFamily(series, "dsm_wal_fsync_ns_count"); got == 0 {
		t.Errorf("no WAL fsync samples recorded:\n%s", buf.String())
	}
}

// BenchmarkOptPWritePath measures the live OptP write→apply pipeline
// with the observability layer off and on — the acceptance bar is
// that obs adds <10%. Compare with:
//
//	go test -bench OptPWritePath -count 5 ./internal/obs/
func BenchmarkOptPWritePath(b *testing.B) {
	for _, mode := range []struct {
		name    string
		withObs bool
	}{{"obs-off", false}, {"obs-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			const vars = 4
			cfg := core.Config{Processes: 2, Variables: vars, Protocol: protocol.OptP, FIFO: true}
			if mode.withObs {
				cfg.Obs = obs.NewObserver(obs.Options{Procs: 2, Protocol: "OptP"})
			}
			c, err := core.NewCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Node(0).Write(i%vars, int64(i)); err != nil {
					b.Fatal(err)
				}
				if i%256 == 255 {
					if err := c.Quiesce(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := c.Quiesce(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
		})
	}
}

// BenchmarkObserve pins the per-event cost of the observer itself: a
// full issue→receipt→apply span cycle across the replicas.
func BenchmarkObserve(b *testing.B) {
	const procs = 4
	o := obs.NewObserver(obs.Options{Procs: procs, Protocol: "OptP"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := trace.Event{Kind: trace.Issue, Proc: 0, Time: int64(i)}
		e.Write.Proc, e.Write.Seq = 0, i
		o.Observe(e)
		for p := 1; p < procs; p++ {
			e.Kind, e.Proc = trace.Receipt, p
			o.Observe(e)
			e.Kind = trace.Apply
			o.Observe(e)
		}
	}
}
