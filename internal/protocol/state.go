package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/vclock"
)

// Crash-recovery state codec. Every replica in this package can export
// its complete control and data state as a self-delimiting byte string
// and restore it into a freshly constructed replica of the same kind
// and shape. The format follows the update codec's varint idiom:
//
//	kind               — uvarint, must match the restoring replica
//	n                  — uvarint process count (shape check)
//	<kind-specific>    — vectors via the vclock codec, memory as
//	                     (val, writer) pairs, sets sorted for a
//	                     deterministic encoding
//
// Determinism matters: the durability layer compares re-encoded
// snapshots in tests, and sorted set encodings make export → restore →
// export a byte-identical round trip.

// ErrStateCorrupt reports a state encoding that is truncated, of the
// wrong kind, or shaped for a different cluster.
var ErrStateCorrupt = errors.New("protocol: corrupt replica state")

// StateCodec is implemented by every replica in this package: full
// protocol-state export/import for crash recovery.
type StateCodec interface {
	// AppendState appends the replica's complete state encoding to dst.
	AppendState(dst []byte) []byte
	// RestoreState overwrites the replica's state with a previously
	// exported encoding of the same kind and shape, returning the number
	// of bytes consumed.
	RestoreState(data []byte) (int, error)
}

// Resumer is implemented by every replica in this package: it drives
// anti-entropy catch-up after a restart. NeedsUpdate reports whether
// the replica still needs u delivered — i.e. u has been neither applied
// nor logically applied here and is not a stale duplicate. Feeding a
// replica every update for which NeedsUpdate is true (plus ordinary
// drain) converges it with the rest of the cluster.
type Resumer interface {
	NeedsUpdate(u Update) bool
}

// ReadMutatesState reports whether Read changes control state for this
// kind — OptP's read-merge folds LastWriteOn into Write_co, and
// PartialRep's folds LastOn (or a forwarded reply) into its edge
// matrix — and hence whether reads must be journaled for crash
// recovery to reconstruct the exact →co knowledge.
func (k Kind) ReadMutatesState() bool { return k == OptP || k == OptPWS || k == PartialRep }

// ExportState is a convenience wrapper asserting the StateCodec
// interface on r.
func ExportState(r Replica) []byte {
	return r.(StateCodec).AppendState(nil)
}

// ---------------------------------------------------------------------
// encode helpers

func appendWriteID(dst []byte, id history.WriteID) []byte {
	dst = binary.AppendVarint(dst, int64(id.Proc))
	return binary.AppendVarint(dst, int64(id.Seq))
}

// appendMem encodes the variable store as a length-prefixed sequence of
// (value, writer) pairs.
func appendMem(dst []byte, vals []int64, writers []history.WriteID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for i := range vals {
		dst = binary.AppendVarint(dst, vals[i])
		dst = appendWriteID(dst, writers[i])
	}
	return dst
}

// appendIDSet encodes a WriteID set sorted by (Proc, Seq).
func appendIDSet(dst []byte, set map[history.WriteID]bool) []byte {
	ids := make([]history.WriteID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Proc != ids[j].Proc {
			return ids[i].Proc < ids[j].Proc
		}
		return ids[i].Seq < ids[j].Seq
	})
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = appendWriteID(dst, id)
	}
	return dst
}

// ---------------------------------------------------------------------
// decode helper

// stateReader decodes state fields sequentially, latching the first
// error so call sites stay linear.
type stateReader struct {
	buf []byte
	off int
	err error
}

func (r *stateReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *stateReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Varint(r.buf[r.off:])
	if k <= 0 {
		r.fail(ErrStateCorrupt)
		return 0
	}
	r.off += k
	return v
}

func (r *stateReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Uvarint(r.buf[r.off:])
	if k <= 0 {
		r.fail(ErrStateCorrupt)
		return 0
	}
	r.off += k
	return v
}

func (r *stateReader) vc(n int) vclock.VC {
	if r.err != nil {
		return nil
	}
	v, k, err := vclock.DecodeVC(r.buf[r.off:])
	if err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrStateCorrupt, err))
		return nil
	}
	if v.Len() != n {
		r.fail(fmt.Errorf("%w: clock dimension %d, want %d", ErrStateCorrupt, v.Len(), n))
		return nil
	}
	r.off += k
	return v
}

func (r *stateReader) writeID() history.WriteID {
	p := r.varint()
	s := r.varint()
	return history.WriteID{Proc: int(p), Seq: int(s)}
}

func (r *stateReader) update() Update {
	if r.err != nil {
		return Update{}
	}
	u, k, err := DecodeUpdate(r.buf[r.off:])
	if err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrStateCorrupt, err))
		return Update{}
	}
	r.off += k
	return u
}

// mem decodes a store encoded by appendMem into vals/writers in place.
func (r *stateReader) mem(vals []int64, writers []history.WriteID) {
	m := r.uvarint()
	if r.err != nil {
		return
	}
	if m != uint64(len(vals)) {
		r.fail(fmt.Errorf("%w: %d variables, want %d", ErrStateCorrupt, m, len(vals)))
		return
	}
	for i := range vals {
		vals[i] = r.varint()
		writers[i] = r.writeID()
	}
}

// idSet decodes a set encoded by appendIDSet.
func (r *stateReader) idSet() map[history.WriteID]bool {
	k := r.uvarint()
	set := make(map[history.WriteID]bool, k)
	for i := uint64(0); i < k && r.err == nil; i++ {
		set[r.writeID()] = true
	}
	return set
}

// header checks the leading kind tag and process count against the
// restoring replica.
func (r *stateReader) header(kind Kind, n int) {
	if k := r.uvarint(); r.err == nil && Kind(k) != kind {
		r.fail(fmt.Errorf("%w: state of kind %v restored into %v", ErrStateCorrupt, Kind(k), kind))
	}
	if g := r.uvarint(); r.err == nil && g != uint64(n) {
		r.fail(fmt.Errorf("%w: %d processes, want %d", ErrStateCorrupt, g, n))
	}
}

// ---------------------------------------------------------------------
// OptP (and its read-merge ablation)

func (r *optp) appendBody(dst []byte) []byte {
	dst = r.apply.AppendBinary(dst)
	dst = r.writeCo.AppendBinary(dst)
	dst = binary.AppendUvarint(dst, uint64(len(r.lastOn)))
	for _, vc := range r.lastOn {
		dst = vc.AppendBinary(dst)
	}
	return appendMem(dst, r.vals, r.writers)
}

func (r *optp) restoreBody(sr *stateReader) {
	apply := sr.vc(r.n)
	writeCo := sr.vc(r.n)
	nv := sr.uvarint()
	if sr.err == nil && nv != uint64(len(r.lastOn)) {
		sr.fail(fmt.Errorf("%w: %d LastWriteOn vectors, want %d", ErrStateCorrupt, nv, len(r.lastOn)))
	}
	lastOn := make([]vclock.VC, len(r.lastOn))
	for i := range lastOn {
		lastOn[i] = sr.vc(r.n)
	}
	vals := make([]int64, len(r.vals))
	writers := make([]history.WriteID, len(r.writers))
	sr.mem(vals, writers)
	if sr.err != nil {
		return
	}
	r.apply, r.writeCo, r.lastOn = apply, writeCo, lastOn
	r.vals, r.writers = vals, writers
}

// AppendState implements StateCodec.
func (r *optp) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(r.Kind()))
	dst = binary.AppendUvarint(dst, uint64(r.n))
	return r.appendBody(dst)
}

// RestoreState implements StateCodec.
func (r *optp) RestoreState(data []byte) (int, error) {
	sr := &stateReader{buf: data}
	sr.header(r.Kind(), r.n)
	r.restoreBody(sr)
	return sr.off, sr.err
}

// NeedsUpdate implements Resumer: the update is needed iff its sequence
// number exceeds the writes of its issuer applied here.
func (r *optp) NeedsUpdate(u Update) bool {
	return !u.Marker && uint64(u.ID.Seq) > r.apply.Get(u.From())
}

// ---------------------------------------------------------------------
// ANBKH

// AppendState implements StateCodec.
func (r *anbkh) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(ANBKH))
	dst = binary.AppendUvarint(dst, uint64(r.n))
	dst = r.vt.AppendBinary(dst)
	return appendMem(dst, r.vals, r.writers)
}

// RestoreState implements StateCodec.
func (r *anbkh) RestoreState(data []byte) (int, error) {
	sr := &stateReader{buf: data}
	sr.header(ANBKH, r.n)
	vt := sr.vc(r.n)
	vals := make([]int64, len(r.vals))
	writers := make([]history.WriteID, len(r.writers))
	sr.mem(vals, writers)
	if sr.err != nil {
		return sr.off, sr.err
	}
	r.vt, r.vals, r.writers = vt, vals, writers
	return sr.off, nil
}

// NeedsUpdate implements Resumer.
func (r *anbkh) NeedsUpdate(u Update) bool {
	return !u.Marker && uint64(u.ID.Seq) > r.vt.Get(u.From())
}

// ---------------------------------------------------------------------
// WSRecv

// AppendState implements StateCodec.
func (r *wsrecv) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(WSRecv))
	dst = binary.AppendUvarint(dst, uint64(r.n))
	dst = r.vt.AppendBinary(dst)
	dst = binary.AppendUvarint(dst, uint64(r.skips))
	dst = appendIDSet(dst, r.skipped)
	return appendMem(dst, r.vals, r.writers)
}

// RestoreState implements StateCodec.
func (r *wsrecv) RestoreState(data []byte) (int, error) {
	sr := &stateReader{buf: data}
	sr.header(WSRecv, r.n)
	vt := sr.vc(r.n)
	skips := sr.uvarint()
	skipped := sr.idSet()
	vals := make([]int64, len(r.vals))
	writers := make([]history.WriteID, len(r.writers))
	sr.mem(vals, writers)
	if sr.err != nil {
		return sr.off, sr.err
	}
	r.vt, r.skips, r.skipped = vt, int(skips), skipped
	r.vals, r.writers = vals, writers
	return sr.off, nil
}

// NeedsUpdate implements Resumer. A skipped-but-undiscarded write is
// NOT needed: it was logically applied (vt covers it) and its late
// message is bookkeeping, not state the replica is missing.
func (r *wsrecv) NeedsUpdate(u Update) bool {
	return !u.Marker && uint64(u.ID.Seq) > r.vt.Get(u.From())
}

// ---------------------------------------------------------------------
// WSSend

// AppendState implements StateCodec.
func (r *wssend) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(WSSend))
	dst = binary.AppendUvarint(dst, uint64(r.n))
	dst = r.applied.AppendBinary(dst)
	dst = binary.AppendUvarint(dst, uint64(r.issued))
	dst = binary.AppendUvarint(dst, uint64(r.suppressed))
	dst = binary.AppendUvarint(dst, uint64(r.expectedVisit))
	dst = binary.AppendUvarint(dst, uint64(r.nextSlot))
	visits := make([]int, 0, len(r.selfVisits))
	for v := range r.selfVisits {
		visits = append(visits, v)
	}
	sort.Ints(visits)
	dst = binary.AppendUvarint(dst, uint64(len(visits)))
	for _, v := range visits {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	queued := make([]Update, 0, len(r.pending))
	for _, u := range r.pending {
		queued = append(queued, u)
	}
	sort.Slice(queued, func(i, j int) bool { return queued[i].ID.Seq < queued[j].ID.Seq })
	dst = binary.AppendUvarint(dst, uint64(len(queued)))
	for _, u := range queued {
		dst = u.AppendBinary(dst)
	}
	return appendMem(dst, r.vals, r.writers)
}

// RestoreState implements StateCodec.
func (r *wssend) RestoreState(data []byte) (int, error) {
	sr := &stateReader{buf: data}
	sr.header(WSSend, r.n)
	applied := sr.vc(r.n)
	issued := sr.uvarint()
	suppressed := sr.uvarint()
	expectedVisit := sr.uvarint()
	nextSlot := sr.uvarint()
	nv := sr.uvarint()
	selfVisits := make(map[int]bool, nv)
	for i := uint64(0); i < nv && sr.err == nil; i++ {
		selfVisits[int(sr.uvarint())] = true
	}
	nq := sr.uvarint()
	pending := make(map[int]Update, nq)
	for i := uint64(0); i < nq && sr.err == nil; i++ {
		u := sr.update()
		pending[u.Var] = u
	}
	vals := make([]int64, len(r.vals))
	writers := make([]history.WriteID, len(r.writers))
	sr.mem(vals, writers)
	if sr.err != nil {
		return sr.off, sr.err
	}
	r.applied = applied
	r.issued, r.suppressed = int(issued), int(suppressed)
	r.expectedVisit, r.nextSlot = int(expectedVisit), int(nextSlot)
	r.selfVisits, r.pending = selfVisits, pending
	r.vals, r.writers = vals, writers
	return sr.off, nil
}

// NeedsUpdate implements Resumer. Apply counts cannot drive the filter
// here — sender-side suppression leaves permanent gaps in issue
// sequences — so the token total order does: a batch update is needed
// iff its (round, slot) has not yet been consumed, and a marker iff its
// round is still awaited. Own-origin updates are never needed (the
// replica consumed its own visits at OnToken time).
func (r *wssend) NeedsUpdate(u Update) bool {
	if u.From() == r.id {
		return false
	}
	if u.Marker {
		return u.Round >= r.expectedVisit
	}
	if u.Round != r.expectedVisit {
		return u.Round > r.expectedVisit
	}
	return u.Slot >= r.nextSlot
}

// ---------------------------------------------------------------------
// OptP-WS

// AppendState implements StateCodec, shadowing the embedded optp's so
// the skip bookkeeping rides along.
func (r *optpws) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(OptPWS))
	dst = binary.AppendUvarint(dst, uint64(r.n))
	dst = r.optp.appendBody(dst)
	dst = binary.AppendUvarint(dst, uint64(r.skips))
	return appendIDSet(dst, r.skipped)
}

// RestoreState implements StateCodec.
func (r *optpws) RestoreState(data []byte) (int, error) {
	sr := &stateReader{buf: data}
	sr.header(OptPWS, r.n)
	r.optp.restoreBody(sr)
	skips := sr.uvarint()
	skipped := sr.idSet()
	if sr.err != nil {
		return sr.off, sr.err
	}
	r.skips, r.skipped = int(skips), skipped
	return sr.off, nil
}

// ---------------------------------------------------------------------
// PartialRep

// AppendState implements StateCodec. The share-set assignment itself is
// configuration, not state — the restoring replica must be constructed
// under the same assignment, which the local-slot count check enforces.
func (r *partialrep) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(PartialRep))
	dst = binary.AppendUvarint(dst, uint64(r.n))
	dst = r.mat.AppendBinary(dst)
	dst = r.applied.AppendBinary(dst)
	dst = binary.AppendUvarint(dst, uint64(r.issued))
	dst = binary.AppendUvarint(dst, uint64(r.readTok))
	dst = appendMem(dst, r.vals, r.writers)
	dst = binary.AppendUvarint(dst, uint64(len(r.lastOn)))
	for _, vc := range r.lastOn {
		dst = vc.AppendBinary(dst)
	}
	return dst
}

// RestoreState implements StateCodec.
func (r *partialrep) RestoreState(data []byte) (int, error) {
	sr := &stateReader{buf: data}
	sr.header(PartialRep, r.n)
	mat := sr.vc(r.n * r.n)
	applied := sr.vc(r.n)
	issued := sr.uvarint()
	readTok := sr.uvarint()
	vals := make([]int64, len(r.vals))
	writers := make([]history.WriteID, len(r.writers))
	sr.mem(vals, writers)
	nl := sr.uvarint()
	if sr.err == nil && nl != uint64(len(r.lastOn)) {
		sr.fail(fmt.Errorf("%w: %d LastOn matrices, want %d", ErrStateCorrupt, nl, len(r.lastOn)))
	}
	lastOn := make([]vclock.VC, len(r.lastOn))
	for i := range lastOn {
		lastOn[i] = sr.vc(r.n * r.n)
	}
	if sr.err != nil {
		return sr.off, sr.err
	}
	r.mat, r.applied = mat, applied
	r.issued, r.readTok = int(issued), int(readTok)
	r.vals, r.writers, r.lastOn = vals, writers, lastOn
	return sr.off, nil
}

// NeedsUpdate implements Resumer: a write is needed iff this process
// replicates its variable and its position on the (writer, here) edge
// is beyond what has been applied. Read-forwarding messages are
// transient — never replayed into a restarted replica.
func (r *partialrep) NeedsUpdate(u Update) bool {
	if u.Marker || u.ReadReq || u.ReadReply {
		return false
	}
	if !r.shares.Replicates(r.id, u.Var) {
		return false
	}
	return u.Clock.Get(u.From()*r.n+r.id) > r.applied.Get(u.From())
}
