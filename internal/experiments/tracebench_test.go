package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs/reqtrace"
)

// A miniature tracing-on serving run: the full conns ladder, a valid
// ops/s cell, and the stage-decomposed p99 columns the scorecard adds.
func TestTraceOverheadShape(t *testing.T) {
	var sb strings.Builder
	r, err := TraceOverheadRecords(2, 40, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != TraceOverheadName {
		t.Fatalf("name = %q", r.Name)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (conns ladder 1/4/8)", len(r.Rows))
	}
	if want := 6 + len(traceStages); len(r.Header) != want {
		t.Fatalf("header %v: %d columns, want %d", r.Header, len(r.Header), want)
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(r.Header))
		}
		if _, err := strconv.ParseFloat(row[4], 64); err != nil {
			t.Fatalf("ops/s cell %q: %v", row[4], err)
		}
	}
	// The record dump is parseable dsmtrace input. With 5% sampling on
	// a tiny run it may legitimately be empty, but never malformed.
	recs, err := reqtrace.ReadRecords(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadRecords on dump: %v", err)
	}
	t.Logf("dump carried %d records", len(recs))
}

func TestCheckTraceOverhead(t *testing.T) {
	mkBase := func(ops string) Scorecard {
		return Scorecard{Schema: ScorecardSchema, Experiments: []Result{{
			Name:   ServiceName,
			Header: []string{"conns", "sessions", "ops", "elapsed", "ops/s"},
			Rows:   [][]string{{"4", "16", "16000", "1s", ops}},
		}}}
	}
	mkCur := func(ops string) []Result {
		return []Result{{
			Name:   TraceOverheadName,
			Header: []string{"conns", "sessions", "ops", "elapsed", "ops/s", "p99(req)"},
			Rows:   [][]string{{"4", "16", "16000", "1s", ops, "1ms"}},
		}}
	}
	baseline := mkBase("10000")
	if err := CheckTraceOverhead(mkCur("9600"), baseline, 0.05); err != nil {
		t.Fatalf("4%% overhead within the 5%% budget: %v", err)
	}
	if err := CheckTraceOverhead(mkCur("12000"), baseline, 0.05); err != nil {
		t.Fatalf("improvement must pass: %v", err)
	}
	if err := CheckTraceOverhead(mkCur("9000"), baseline, 0.05); err == nil {
		t.Fatal("10% overhead must bust the 5% budget")
	}
	if err := CheckTraceOverhead(nil, baseline, 0.05); err == nil {
		t.Fatal("empty current must fail")
	}
	if err := CheckTraceOverhead(mkCur("9600"), Scorecard{Schema: ScorecardSchema}, 0.05); err == nil {
		t.Fatal("baseline without E-service rows must fail")
	}
}
