// Package reqtrace is the end-to-end request tracing layer of the
// serving tier: one trace covers a client call from the moment the
// session issues it, through the server's admission, dedup lookup,
// frontier wait, batch queue, core issue and response write, and —
// via the write's (proc, seq) identity — links into the cluster's
// causal-propagation spans (obs.Span), so a p99 outlier decomposes
// into named stages instead of staying one opaque number.
//
// The layer has two modes running at once:
//
//   - Always-on: every request feeds per-stage latency histograms
//     (dsm_svc_stage_ns{stage=...} / dsm_cli_stage_ns{stage=...}) —
//     lock-free atomic adds on pre-registered handles, no allocation
//     on the request path (trace handles are pooled). Tail buckets
//     carry exemplar trace IDs, so a histogram spike points at a
//     concrete retained trace.
//
//   - Tail-sampled: a request whose total latency reaches the
//     recorder's threshold, ends in a non-OK status, or carries the
//     wire's force-sample flag retains its full stage timeline as a
//     Record in a bounded ring and (optionally) a bounded JSONL sink —
//     the forensics input of cmd/dsmtrace.
//
// Trace identity travels on the wire (protocol.Request.TraceID and the
// Sampled flag; responses echo the ID plus the server's stage timings
// when sampled), so the client-side record of a call and the
// server-side record of its handling share one ID and cmd/dsmtrace can
// join them.
package reqtrace

import (
	"crypto/rand"
	"encoding/binary"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one leg of a request's lifecycle. Server stages cover
// the dsmd request path in order; client stages cover the caller's
// side of the same call. The two sets share one enum so a joined
// timeline (cmd/dsmtrace) renders from a single namespace.
type Stage uint8

const (
	// StageAdmission is decode-to-admission on the server: the drain
	// gate, the load-shedding watermark and request validation.
	StageAdmission Stage = iota
	// StageDedup is the exactly-once window lookup, including any wait
	// for an in-flight first attempt of the same (SID, OpSeq).
	StageDedup
	// StageFrontierWait is token admission: how long the request waited
	// for the replica's applied frontier to dominate its session token.
	StageFrontierWait
	// StageBatchQueue is the time a write spent queued in the replica's
	// batch pump before its batch was issued.
	StageBatchQueue
	// StageApply is the core issue: node.Write (writes) or
	// node.ReadMeta (reads) plus the frontier snapshot for the
	// response token.
	StageApply
	// StageRespond is response encoding and the socket write.
	StageRespond

	// StageBackoff is client-side: accumulated retry backoff sleeps.
	StageBackoff
	// StageSend is client-side: framing and writing request frames.
	StageSend
	// StageAwait is client-side: waiting for the response frame —
	// network, server time, and any reconnect/replay the call survived.
	StageAwait

	// NumStages sizes per-stage arrays.
	NumStages

	// NumServerStages bounds the stage indexes a response may echo on
	// the wire: exactly the server-side prefix of the enum.
	NumServerStages = StageRespond + 1
)

var stageNames = [NumStages]string{
	StageAdmission:    "admission",
	StageDedup:        "dedup",
	StageFrontierWait: "frontier_wait",
	StageBatchQueue:   "batch_queue",
	StageApply:        "apply",
	StageRespond:      "respond",
	StageBackoff:      "backoff",
	StageSend:         "send",
	StageAwait:        "await",
}

// String names the stage as it appears in metric labels and Records.
func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return "stage(?)"
}

// ParseStage maps a stage name back to its enum value; ok is false for
// unknown names (a Record written by a newer binary).
func ParseStage(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// NewTraceID draws a random nonzero trace ID; zero on the wire means
// "no trace context".
func NewTraceID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degraded fallback, unique enough for exemplars and sampling.
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// SampleRate is a client-side coin for the wire's force-sample flag.
type SampleRate float64

// Hit draws one decision. Rates outside (0,1] never / always hit.
func (r SampleRate) Hit() bool {
	if r <= 0 {
		return false
	}
	if r >= 1 {
		return true
	}
	return mrand.Float64() < float64(r)
}

// StageNs is one stage's share of a Record's timeline.
type StageNs struct {
	// Stage is the stage name (Stage.String()).
	Stage string `json:"stage"`
	// Ns is the nanoseconds the request spent in the stage.
	Ns int64 `json:"ns"`
}

// Record is one tail-sampled request timeline — the JSONL document
// cmd/dsmtrace analyzes. Server records and client records of the same
// call share TraceID.
type Record struct {
	// TraceID joins the client and server records of one call; 0 on a
	// server record means the request carried no trace context.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Origin is the recorder's vantage point: "server" or "client".
	Origin string `json:"origin"`
	// Kind is the request kind: "ping", "read" or "write".
	Kind string `json:"kind"`
	// Status is the outcome (protocol.StatusString, or the client's
	// error class).
	Status string `json:"status"`
	// Proc is the serving replica (-1 when none was reached).
	Proc int `json:"proc"`
	// Var is the variable operated on (-1 for pings).
	Var int `json:"var"`
	// StartUnixNs is the wall-clock start (UnixNano) for ordering
	// records across processes.
	StartUnixNs int64 `json:"start_unix_ns"`
	// TotalNs is the end-to-end latency the recorder observed.
	TotalNs int64 `json:"total_ns"`
	// Stages is the per-stage decomposition, enum order, nonzero only.
	Stages []StageNs `json:"stages,omitempty"`
	// WriteProc and WriteSeq link a write (or the read's source write)
	// to the cluster's causal-propagation spans: obs.Span records the
	// same (proc, seq) for issue→apply at every remote replica.
	// WriteSeq 0 means no linkage.
	WriteProc int `json:"write_proc,omitempty"`
	WriteSeq  int `json:"write_seq,omitempty"`
	// Attempts counts wire attempts on a client record (1 = no retry).
	Attempts int `json:"attempts,omitempty"`
	// ServerStages, on a client record, is the server's echoed stage
	// timeline for the final attempt (from the response trace field).
	ServerStages []StageNs `json:"server_stages,omitempty"`
	// Err carries the response error detail, when any.
	Err string `json:"err,omitempty"`
}

// StageSum returns the sum of the record's own stage nanoseconds.
func (r Record) StageSum() int64 {
	var n int64
	for _, s := range r.Stages {
		n += s.Ns
	}
	return n
}

// ServerStageSum returns the sum of the echoed server stages.
func (r Record) ServerStageSum() int64 {
	var n int64
	for _, s := range r.ServerStages {
		n += s.Ns
	}
	return n
}

// Req is one in-flight request's trace state: identity, the stage
// clock, and the metadata End folds into histograms and Records. Reqs
// are pooled by the Recorder; callers must not retain one past End.
type Req struct {
	// TraceID and Sampled mirror the wire trace context.
	TraceID uint64
	Sampled bool
	// WriteProc and WriteSeq are the span-linkage identity (see
	// Record); set by the server when the write is issued.
	WriteProc int
	WriteSeq  int
	// Attempts counts wire attempts (client side).
	Attempts int

	start     time.Time
	startUnix int64
	last      time.Time
	ns        [NumStages]int64

	mu sync.Mutex // guards last+ns: client marks race with the read loop
}

// reset rearms a pooled Req.
func (q *Req) reset() {
	*q = Req{start: time.Now()}
	q.startUnix = q.start.UnixNano()
	q.last = q.start
}

// Mark attributes the time since the previous mark (or Begin) to
// stage. Safe for use from the goroutine currently driving the
// request; handoffs (e.g. into the batch pump) must happen-before the
// next Mark, which channel sends/receives already guarantee.
func (q *Req) Mark(stage Stage) {
	if q == nil {
		return
	}
	now := time.Now()
	q.mu.Lock()
	q.ns[stage] += now.Sub(q.last).Nanoseconds()
	q.last = now
	q.mu.Unlock()
}

// Skip advances the clock without attributing the elapsed time to any
// stage — for gaps that are scheduler noise rather than a lifecycle
// stage (e.g. the handoff between the pump's reply and the connection
// goroutine resuming).
func (q *Req) Skip() {
	if q == nil {
		return
	}
	now := time.Now()
	q.mu.Lock()
	q.last = now
	q.mu.Unlock()
}

// Add attributes d to stage directly, without moving the clock —
// for spans measured elsewhere (the client's backoff sleeps).
func (q *Req) Add(stage Stage, d time.Duration) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.ns[stage] += d.Nanoseconds()
	q.mu.Unlock()
}

// StageDur returns the nanoseconds attributed to stage so far.
func (q *Req) StageDur(stage Stage) int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ns[stage]
}

// Stages renders the nonzero stages in enum order, appending to dst.
func (q *Req) Stages(dst []StageNs) []StageNs {
	q.mu.Lock()
	defer q.mu.Unlock()
	for s := Stage(0); s < NumStages; s++ {
		if q.ns[s] > 0 {
			dst = append(dst, StageNs{Stage: s.String(), Ns: q.ns[s]})
		}
	}
	return dst
}

// ServerStages renders the nonzero server-side stages as the wire's
// (stage, ns) pairs for the response trace field.
func (q *Req) ServerStages(dst [][2]uint64) [][2]uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	for s := Stage(0); s < NumServerStages; s++ {
		if q.ns[s] > 0 {
			dst = append(dst, [2]uint64{uint64(s), uint64(q.ns[s])})
		}
	}
	return dst
}

// exemplar is one tail-bucket trace ID, updated with a plain atomic
// store: last writer wins, which is exactly the "a recent slow trace"
// semantics exemplars promise.
type exemplar struct {
	id atomic.Uint64
}
