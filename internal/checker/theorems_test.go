package checker

import (
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// This file property-checks the paper's Section 4.3 theorems against
// randomized OptP executions: the →co relation is recomputed from the
// OBSERVED history (never from clocks) and compared with the Write_co
// vectors the run actually shipped.

// optpRun executes a seeded random workload under OptP and returns the
// audit report and the shipped updates.
func optpRun(t *testing.T, seed uint64) (*Report, map[history.WriteID]protocol.Update) {
	t.Helper()
	cfg := workload.Config{
		Procs: 4, Vars: 3, OpsPerProc: 20, WriteRatio: 0.5,
		ThinkMin: 1, ThinkMax: 40, Hot: 0.3, Seed: seed,
	}
	scripts, err := workload.Scripts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Procs: cfg.Procs, Vars: cfg.Vars, Protocol: protocol.OptP,
		Latency: sim.NewUniformLatency(1, 120, seed*3+1),
	}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(res.Log)
	if err != nil {
		t.Fatal(err)
	}
	return rep, res.Updates
}

// allWrites returns the run's writes sorted deterministically.
func allWrites(updates map[history.WriteID]protocol.Update) []history.WriteID {
	var ids []history.WriteID
	for id := range updates {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// Theorem 1: w →co w' ⇔ w.Write_co < w'.Write_co.
func TestTheorem1ClockCharacterizesCo(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		rep, updates := optpRun(t, seed)
		ids := allWrites(updates)
		for _, w := range ids {
			for _, w2 := range ids {
				if w == w2 {
					continue
				}
				co := rep.Causality.WriteBefore(w, w2)
				lt := updates[w].Clock.Less(updates[w2].Clock)
				if co != lt {
					t.Fatalf("seed %d: %v →co %v = %v but %v < %v = %v",
						seed, w, w2, co, updates[w].Clock, updates[w2].Clock, lt)
				}
			}
		}
	}
}

// Theorem 2: w ‖co w' ⇔ Write_co vectors incomparable.
func TestTheorem2ConcurrencyCharacterized(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		rep, updates := optpRun(t, seed)
		ids := allWrites(updates)
		for i, w := range ids {
			for _, w2 := range ids[i+1:] {
				conc := rep.Causality.WriteConcurrent(w, w2)
				clocksConc := updates[w].Clock.Compare(updates[w2].Clock) == vclock.Concurrent
				if conc != clocksConc {
					t.Fatalf("seed %d: ‖co(%v,%v) = %v but clocks %v vs %v",
						seed, w, w2, conc, updates[w].Clock, updates[w2].Clock)
				}
			}
		}
	}
}

// Corollary 1: w →co w' ⇔ w.Write_co[i] ≤ w'.Write_co[i], i = issuer(w).
func TestCorollary1ComponentRule(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		rep, updates := optpRun(t, seed)
		ids := allWrites(updates)
		for _, w := range ids {
			for _, w2 := range ids {
				if w == w2 {
					continue
				}
				co := rep.Causality.WriteBefore(w, w2)
				comp := updates[w].Clock.Get(w.Proc) <= updates[w2].Clock.Get(w.Proc)
				// For same-issuer pairs the component rule needs the
				// sequence direction: earlier seq ⇒ smaller component.
				if w.Proc == w2.Proc {
					comp = w.Seq < w2.Seq
				}
				if co != comp {
					t.Fatalf("seed %d: →co(%v,%v) = %v but component rule gives %v (clocks %v, %v)",
						seed, w, w2, co, comp, updates[w].Clock, updates[w2].Clock)
				}
			}
		}
	}
}

// Corollary 2: w ‖co w' ⇔ w'.Write_co[i] < w.Write_co[i] ∧
// w.Write_co[j] < w'.Write_co[j], with i = issuer(w), j = issuer(w').
func TestCorollary2ComponentRule(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		rep, updates := optpRun(t, seed)
		ids := allWrites(updates)
		for i, w := range ids {
			for _, w2 := range ids[i+1:] {
				if w.Proc == w2.Proc {
					continue // same process: never concurrent (→po ⊂ →co)
				}
				conc := rep.Causality.WriteConcurrent(w, w2)
				rule := updates[w2].Clock.Get(w.Proc) < updates[w].Clock.Get(w.Proc) &&
					updates[w].Clock.Get(w2.Proc) < updates[w2].Clock.Get(w2.Proc)
				if conc != rule {
					t.Fatalf("seed %d: ‖co(%v,%v) = %v but Corollary 2 gives %v (clocks %v, %v)",
						seed, w, w2, conc, rule, updates[w].Clock, updates[w2].Clock)
				}
			}
		}
	}
}

// Observation 2: w is the k-th write of p_i ⇔ w.Write_co[i] = k.
func TestObservation2(t *testing.T) {
	_, updates := optpRun(t, 3)
	for id, u := range updates {
		if got := u.Clock.Get(id.Proc); got != uint64(id.Seq) {
			t.Fatalf("%v has Write_co[i] = %d", id, got)
		}
	}
}
