package protocol

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/vclock"
)

// The wire decoders face the network: every byte string must either
// decode cleanly or fail with a typed error — never panic, never
// over-read, and whatever decodes must re-encode to something that
// decodes back equal (the decoder accepts only canonical-equivalent
// values). The committed corpus under testdata/fuzz replays on every
// plain `go test` run, so past crashers are permanent regressions.

func FuzzWireRequest(f *testing.F) {
	for _, r := range wireRequests() {
		f.Add(r.AppendBinary(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRequest(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		buf := r.AppendBinary(nil)
		r2, n2, err := DecodeRequest(buf)
		if err != nil || n2 != len(buf) {
			t.Fatalf("re-decode of %+v: %v (consumed %d of %d)", r, err, n2, len(buf))
		}
		if r2.Tag != r.Tag || r2.Kind != r.Kind || r2.Proc != r.Proc ||
			r2.Var != r.Var || r2.Val != r.Val || r2.NoWait != r.NoWait ||
			r2.SID != r.SID || r2.OpSeq != r.OpSeq ||
			r2.TraceID != r.TraceID || r2.TraceSampled != r.TraceSampled ||
			!r2.Token.Equal(r.Token) {
			t.Fatalf("re-decode mismatch: %+v != %+v", r2, r)
		}
	})
}

func FuzzWireResponse(f *testing.F) {
	for _, tc := range wireResponses() {
		f.Add(tc.r.AppendBinary(nil, tc.base), tc.base.AppendBinary(nil))
	}
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, data, baseRaw []byte) {
		// The base clock is itself attacker-adjacent state (it came off a
		// prior frame), so fuzz it too.
		base, _, berr := vclock.DecodeVC(baseRaw)
		if berr != nil {
			base = nil
		}
		r, n, err := DecodeResponse(data, base)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		buf := r.AppendBinary(nil, base)
		r2, n2, err := DecodeResponse(buf, base)
		if err != nil || n2 != len(buf) {
			t.Fatalf("re-decode of %+v: %v (consumed %d of %d)", r, err, n2, len(buf))
		}
		if r2.Tag != r.Tag || r2.Status != r.Status || r2.Proc != r.Proc ||
			r2.Val != r.Val || r2.From != r.From || r2.Err != r.Err ||
			r2.TraceID != r.TraceID || !traceStagesEqual(r2.TraceStages, r.TraceStages) ||
			!r2.Token.Equal(r.Token) {
			t.Fatalf("re-decode mismatch: %+v != %+v", r2, r)
		}
	})
}

func FuzzWireToken(f *testing.F) {
	zero4 := vclock.New(4)
	for _, tok := range []vclock.VC{nil, {0}, {1, 2, 3}, {1 << 40, 0, 7, 9}} {
		f.Add(AppendToken(nil, tok, nil), []byte{})
		f.Add(AppendToken(nil, tok, zero4[:min(len(zero4), len(tok))]), zero4.AppendBinary(nil))
	}
	f.Fuzz(func(t *testing.T, data, baseRaw []byte) {
		base, _, berr := vclock.DecodeVC(baseRaw)
		if berr != nil {
			base = nil
		}
		tok, n, err := DecodeToken(data, base)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Re-encode sparsely and against the base; both must round-trip.
		for _, b := range []vclock.VC{nil, base} {
			if len(b) == len(tok) && len(tok) > 0 && !tok.Dominates(b) {
				continue // AppendToken's documented panic precondition
			}
			buf := AppendToken(nil, tok, b)
			tok2, n2, err := DecodeToken(buf, b)
			if err != nil || n2 != len(buf) {
				t.Fatalf("re-decode of %v vs %v: %v (consumed %d of %d)", tok, b, err, n2, len(buf))
			}
			if !tok2.Equal(tok) && !(tok == nil && len(tok2) == 0) {
				t.Fatalf("re-decode mismatch: %v != %v (base %v)", tok2, tok, b)
			}
		}
	})
}

// Sanity for the corpus files themselves: every committed seed must be
// a well-formed "go test fuzz v1" entry, which the testing package
// verifies by replaying them during plain `go test` runs. This test
// just pins that the corpus directories exist and are non-empty so a
// deleted corpus fails loudly rather than silently weakening the fuzz
// smoke.
func TestFuzzCorpusCommitted(t *testing.T) {
	for _, target := range []string{"FuzzWireRequest", "FuzzWireResponse", "FuzzWireToken"} {
		ents := corpusEntries(t, target)
		if len(ents) == 0 {
			t.Fatalf("no committed corpus for %s under testdata/fuzz", target)
		}
		for _, e := range ents {
			if !bytes.HasPrefix(e, []byte("go test fuzz v1")) {
				t.Fatalf("%s corpus entry is not a v1 corpus file", target)
			}
		}
	}
}

// corpusEntries reads the committed seed corpus for one fuzz target.
func corpusEntries(t *testing.T, target string) [][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	var out [][]byte
	for _, de := range des {
		b, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatalf("reading corpus entry: %v", err)
		}
		out = append(out, b)
	}
	return out
}

// TestGenerateSeedCorpus (re)writes the committed seed corpus. It is a
// generator, not a test: set WIRE_CORPUS_GEN=1 to run it after
// changing the wire format, then commit the testdata/fuzz diff.
func TestGenerateSeedCorpus(t *testing.T) {
	if os.Getenv("WIRE_CORPUS_GEN") == "" {
		t.Skip("set WIRE_CORPUS_GEN=1 to regenerate the seed corpus")
	}
	junk := [][]byte{
		{},
		{0x00},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0x80}, 24), // unterminated varint
	}
	base4 := vclock.VC{1, 2, 3, 4}
	baseRaw := base4.AppendBinary(nil)

	var reqs [][]byte
	for _, r := range wireRequests() {
		reqs = append(reqs, r.AppendBinary(nil))
	}
	reqs = append(reqs, junk...)
	writeCorpus(t, "FuzzWireRequest", reqs, nil)

	var resps, bases [][]byte
	for _, tc := range wireResponses() {
		resps = append(resps, tc.r.AppendBinary(nil, tc.base))
		bases = append(bases, tc.base.AppendBinary(nil))
	}
	for _, j := range junk {
		resps = append(resps, j)
		bases = append(bases, baseRaw)
	}
	writeCorpus(t, "FuzzWireResponse", resps, bases)

	var toks, tokBases [][]byte
	for _, tok := range []vclock.VC{nil, {0}, {1, 2, 3}, {1 << 40, 0, 7, 9}, base4} {
		toks = append(toks, AppendToken(nil, tok, nil))
		tokBases = append(tokBases, []byte{})
		if len(tok) == len(base4) {
			toks = append(toks, AppendToken(nil, vclock.Max(tok, base4), base4))
			tokBases = append(tokBases, baseRaw)
		}
	}
	for _, j := range junk {
		toks = append(toks, j)
		tokBases = append(tokBases, baseRaw)
	}
	writeCorpus(t, "FuzzWireToken", toks, tokBases)
}

// writeCorpus writes v1 corpus files; second is nil for one-parameter
// targets, else parallel to first.
func writeCorpus(t *testing.T, target string, first, second [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, data := range first {
		entry := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if second != nil {
			entry += "[]byte(" + strconv.Quote(string(second[i])) + ")\n"
		}
		name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(name, []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
