package experiments

import (
	"strconv"
	"testing"
)

// A miniature serving-tier run: one connection count would do for
// shape, but the full conns ladder is what the scorecard schema
// records, so run it tiny.
func TestServiceShape(t *testing.T) {
	r, err := Service(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != ServiceName {
		t.Fatalf("name = %q", r.Name)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (conns ladder 1/4/8)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(r.Header))
		}
		if _, err := strconv.ParseFloat(row[4], 64); err != nil {
			t.Fatalf("ops/s cell %q: %v", row[4], err)
		}
	}
	if r.Rows[0][0] != "1" || r.Rows[2][0] != "8" {
		t.Fatalf("conns column off: %v", r.Rows)
	}
}

func TestCheckServiceRegression(t *testing.T) {
	mk := func(ops string) []Result {
		return []Result{{
			Name:   ServiceName,
			Header: []string{"conns", "sessions", "ops", "elapsed", "ops/s"},
			Rows:   [][]string{{"4", "16", "16000", "1s", ops}},
		}}
	}
	baseline := Scorecard{Schema: ScorecardSchema, Experiments: mk("10000")}

	if err := CheckServiceRegression(mk("9000"), baseline, 0.2); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	if err := CheckServiceRegression(mk("15000"), baseline, 0.2); err != nil {
		t.Fatalf("improvement must pass: %v", err)
	}
	if err := CheckServiceRegression(mk("7000"), baseline, 0.2); err == nil {
		t.Fatal("30% regression must fail")
	}
	// Rows only in one document are ignored; empty docs are errors.
	other := mk("5000")
	other[0].Rows[0][0] = "16"
	if err := CheckServiceRegression(other, baseline, 0.2); err != nil {
		t.Fatalf("disjoint rows must pass: %v", err)
	}
	if err := CheckServiceRegression(nil, baseline, 0.2); err == nil {
		t.Fatal("empty current must fail")
	}
	if err := CheckServiceRegression(mk("9000"), Scorecard{Schema: ScorecardSchema}, 0.2); err == nil {
		t.Fatal("empty baseline must fail")
	}
}
