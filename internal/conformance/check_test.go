package conformance

import (
	"errors"
	"testing"
)

func seqd(ops []Op) []Op {
	for i := range ops {
		ops[i].Seq = i
	}
	return ops
}

func TestCheckCleanTrace(t *testing.T) {
	ops := seqd([]Op{
		{Session: "a", Kind: OpWrite, Var: 0, Val: 1},
		{Session: "a", Kind: OpRead, Var: 0, Val: 1},
		{Session: "b", Kind: OpRead, Var: 0, Val: 0}, // b never observed x0: fine
		{Session: "a", Kind: OpWrite, Var: 0, Val: 2},
		{Session: "b", Kind: OpRead, Var: 0, Val: 2},
		{Session: "b", Kind: OpRead, Var: 0, Val: 2},
	})
	if vs := Check(ops); len(vs) != 0 {
		t.Fatalf("clean trace flagged: %v", vs)
	}
}

func TestCheckReadYourWritesViolation(t *testing.T) {
	ops := seqd([]Op{
		{Session: "a", Kind: OpWrite, Var: 3, Val: 5},
		{Session: "a", Kind: OpRead, Var: 3, Val: 4}, // older than own write
	})
	vs := Check(ops)
	if len(vs) != 1 || vs[0].Guarantee != "read-your-writes" {
		t.Fatalf("Check = %v, want one read-your-writes violation", vs)
	}
	if vs[0].Got != 4 || vs[0].Floor != 5 || vs[0].Var != 3 {
		t.Fatalf("violation detail %+v", vs[0])
	}
}

func TestCheckMonotonicReadsViolation(t *testing.T) {
	ops := seqd([]Op{
		{Session: "r", Kind: OpRead, Var: 1, Val: 9},
		{Session: "r", Kind: OpRead, Var: 1, Val: 7}, // went backwards
	})
	vs := Check(ops)
	if len(vs) != 1 || vs[0].Guarantee != "monotonic-reads" {
		t.Fatalf("Check = %v, want one monotonic-reads violation", vs)
	}
}

func TestCheckScopesPerSessionAndVar(t *testing.T) {
	ops := seqd([]Op{
		{Session: "a", Kind: OpWrite, Var: 0, Val: 9},
		{Session: "b", Kind: OpRead, Var: 0, Val: 0}, // other session: no RYW claim
		{Session: "a", Kind: OpRead, Var: 1, Val: 0}, // other variable: no claim
	})
	if vs := Check(ops); len(vs) != 0 {
		t.Fatalf("cross-session/cross-var reads flagged: %v", vs)
	}
}

func TestCheckIgnoresFailedOps(t *testing.T) {
	ops := seqd([]Op{
		{Session: "a", Kind: OpWrite, Var: 0, Val: 5},
		{Session: "a", Kind: OpRead, Var: 0, Val: 0, Err: errors.New("unavailable")},
		{Session: "a", Kind: OpRead, Var: 0, Val: 5},
	})
	if vs := Check(ops); len(vs) != 0 {
		t.Fatalf("failed read counted against the guarantees: %v", vs)
	}
}

func TestCheckOrdersBySeq(t *testing.T) {
	// Records can arrive interleaved from concurrent sessions; Seq is
	// the authority, not slice order.
	ops := []Op{
		{Session: "a", Kind: OpWrite, Var: 0, Val: 5, Seq: 2},
		{Session: "a", Kind: OpRead, Var: 0, Val: 0, Seq: 0},
	}
	// In Seq order the read precedes the write, so the trace is clean;
	// judging slice order instead would flag a bogus RYW violation.
	if vs := Check(ops); len(vs) != 0 {
		t.Fatalf("out-of-order records misjudged: %v", vs)
	}
}
