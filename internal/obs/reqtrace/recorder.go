package reqtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// stageBuckets spans the serving tier's useful range: 100ns (an
// uncontended admission check) to 10s (a frontier wait running out a
// generous WaitTimeout).
var stageBuckets = []int64{
	100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000, 1_000_000_000, 10_000_000_000,
}

// exemplarBucketFloor is the bound (ns) at and above which a stage
// sample stamps its trace ID as the stage's tail exemplar: the top
// buckets of stageBuckets, where "why is this slow" starts.
const exemplarBucketFloor = 5_000_000

// Config parameterizes a Recorder.
type Config struct {
	// Registry receives the stage histograms and sampler counters; nil
	// keeps them unregistered (the recorder still works — tests, and
	// servers running without a debug mux).
	Registry *obs.Registry
	// Origin labels records and metric families: "server" (dsm_svc_*)
	// or "client" (dsm_cli_*). Empty defaults to "server".
	Origin string
	// Labels are appended to every registered series (protocol, ...).
	Labels []obs.Label
	// Threshold is the tail-sampling latency bound: a request whose
	// total latency reaches it retains its full timeline. 0 defaults
	// to 20ms; Threshold <= -1ns disables latency-based sampling
	// (non-OK statuses and force-sampled requests still retain).
	Threshold time.Duration
	// Capacity bounds the retained-record ring; 0 defaults to 1024.
	Capacity int
	// Sink, when set, receives every retained Record (under the
	// recorder lock — keep it non-blocking; SinkWriter qualifies).
	Sink func(Record)
}

// Recorder is one vantage point's tracing state: always-on per-stage
// histograms plus the tail sampler. Begin/End are the request path;
// everything else is scrape/export plumbing.
type Recorder struct {
	origin    string
	threshold int64 // ns; <0 disables latency sampling
	hists     [NumStages]*obs.Histogram
	total     *obs.Histogram
	sampledC  *obs.Counter
	exemplars [NumStages]exemplar

	pool sync.Pool

	mu      sync.Mutex
	ring    []Record
	ringCap int
	next    int
	wrapped bool
	sampled uint64
	sink    func(Record)
}

// NewRecorder builds a recorder; see Config.
func NewRecorder(cfg Config) *Recorder {
	origin := cfg.Origin
	if origin == "" {
		origin = "server"
	}
	thr := cfg.Threshold
	if thr == 0 {
		thr = 20 * time.Millisecond
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1024
	}
	r := &Recorder{
		origin:    origin,
		threshold: thr.Nanoseconds(),
		ringCap:   capacity,
		sink:      cfg.Sink,
	}
	if thr < 0 {
		r.threshold = -1
	}
	prefix := "dsm_svc"
	if origin == "client" {
		prefix = "dsm_cli"
	}
	if reg := cfg.Registry; reg != nil {
		for s := Stage(0); s < NumStages; s++ {
			labels := append([]obs.Label{obs.L("stage", s.String())}, cfg.Labels...)
			r.hists[s] = reg.Histogram(prefix+"_stage_ns",
				"per-stage request latency decomposition (reqtrace)", stageBuckets, labels...)
		}
		r.total = reg.Histogram(prefix+"_request_ns",
			"end-to-end request latency at this vantage point", stageBuckets, cfg.Labels...)
		r.sampledC = reg.Counter(prefix+"_trace_sampled_total",
			"requests whose full stage timeline was tail-sampled", cfg.Labels...)
	} else {
		for s := Stage(0); s < NumStages; s++ {
			r.hists[s] = obs.NewHistogram(stageBuckets)
		}
		r.total = obs.NewHistogram(stageBuckets)
		r.sampledC = &obs.Counter{}
	}
	r.pool.New = func() any { return &Req{} }
	return r
}

// Origin returns the recorder's vantage-point label.
func (r *Recorder) Origin() string { return r.origin }

// Threshold returns the tail-sampling latency bound in nanoseconds
// (negative: latency sampling disabled).
func (r *Recorder) Threshold() int64 { return r.threshold }

// Begin checks a pooled Req out and starts its clock. The caller must
// End it exactly once.
func (r *Recorder) Begin() *Req {
	q := r.pool.Get().(*Req)
	q.reset()
	return q
}

// Meta is the request metadata End needs to file a Record.
type Meta struct {
	// Kind is "ping", "read" or "write"; Status the outcome label.
	Kind, Status string
	// OK marks a successful outcome; non-OK requests always sample.
	OK bool
	// Proc is the serving replica; Var the variable (-1 when n/a).
	Proc, Var int
	// Err is the response's error detail (non-OK only).
	Err string
	// ServerStages, on a client-side End, is the server's echoed stage
	// timeline, folded into the retained record.
	ServerStages []StageNs
}

// End closes the request: total latency measured from Begin, every
// stage folded into its histogram, tail exemplars stamped, and — when
// the request qualifies — the full timeline retained as a Record. It
// returns the total nanoseconds and whether the request was sampled,
// then recycles q: the caller must not touch q afterwards.
func (r *Recorder) End(q *Req, m Meta) (total int64, retained bool) {
	total = time.Since(q.start).Nanoseconds()
	r.total.Observe(total)
	for s := Stage(0); s < NumStages; s++ {
		// ns is quiescent by End: every Mark has happened-before the
		// caller's End (channel handoffs), so reading without q.mu is
		// safe — but take it anyway; it is uncontended and free of doubt.
		d := q.StageDur(s)
		if d == 0 {
			continue
		}
		r.hists[s].Observe(d)
		if d >= exemplarBucketFloor && q.TraceID != 0 {
			r.exemplars[s].id.Store(q.TraceID)
		}
	}
	retained = q.Sampled || !m.OK || (r.threshold >= 0 && total >= r.threshold)
	if retained {
		rec := Record{
			TraceID:     q.TraceID,
			Origin:      r.origin,
			Kind:        m.Kind,
			Status:      m.Status,
			Proc:        m.Proc,
			Var:         m.Var,
			StartUnixNs: q.startUnix,
			TotalNs:     total,
			Stages:      q.Stages(nil),
			WriteProc:    q.WriteProc,
			WriteSeq:     q.WriteSeq,
			Attempts:     q.Attempts,
			ServerStages: m.ServerStages,
			Err:          m.Err,
		}
		r.retain(rec)
		r.sampledC.Inc()
	}
	r.pool.Put(q)
	return total, retained
}

// Retain files an externally-built Record (the client folds the
// server's echoed stages in before retaining).
func (r *Recorder) Retain(rec Record) {
	r.retain(rec)
	r.sampledC.Inc()
}

func (r *Recorder) retain(rec Record) {
	r.mu.Lock()
	if len(r.ring) < r.ringCap {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
		r.next = (r.next + 1) % r.ringCap
		r.wrapped = true
	}
	r.sampled++
	if r.sink != nil {
		r.sink(rec)
	}
	r.mu.Unlock()
}

// Records returns a copy of the retained records, oldest first. When
// more than Capacity records were retained only the newest survive;
// Sampled reports how many ever qualified.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Record(nil), r.ring...)
	}
	out := make([]Record, 0, r.ringCap)
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Sampled returns how many requests ever qualified for tail sampling.
func (r *Recorder) Sampled() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sampled
}

// StageHistogram returns the live histogram of one stage.
func (r *Recorder) StageHistogram(s Stage) *obs.Histogram { return r.hists[s] }

// TotalHistogram returns the live end-to-end latency histogram.
func (r *Recorder) TotalHistogram() *obs.Histogram { return r.total }

// Exemplar returns the trace ID of the most recent sample of stage
// that landed in the tail buckets (>= 5ms), 0 when none did — the
// pointer from a histogram spike to a retained trace.
func (r *Recorder) Exemplar(s Stage) uint64 { return r.exemplars[s].id.Load() }

// WriteRecords dumps the retained records as JSON Lines, oldest first.
func (r *Recorder) WriteRecords(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Records() {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("reqtrace: record encode: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("reqtrace: record flush: %w", err)
	}
	return nil
}

// SinkWriter streams retained records as JSONL with the obs layer's
// never-block contract: records queue in a bounded ring drained by a
// background goroutine, and overflow is dropped and counted. Its
// Record method is what Config.Sink expects.
type SinkWriter struct {
	ch      chan Record
	dropped atomicCounter

	mu   sync.Mutex
	bw   *bufio.Writer
	enc  *json.Encoder
	werr error

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// atomicCounter is a tiny local alias to keep the import set honest.
type atomicCounter = obs.Counter

// NewSinkWriter starts a sink writing to w. capacity bounds the ring
// (0 defaults to 4096). The sink does not close w.
func NewSinkWriter(w io.Writer, capacity int) *SinkWriter {
	if capacity <= 0 {
		capacity = 4096
	}
	s := &SinkWriter{
		ch:   make(chan Record, capacity),
		bw:   bufio.NewWriter(w),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.enc = json.NewEncoder(s.bw)
	go s.drain()
	return s
}

// Record enqueues without blocking; overflow is dropped and counted.
func (s *SinkWriter) Record(rec Record) {
	select {
	case s.ch <- rec:
	default:
		s.dropped.Inc()
	}
}

// Dropped returns the number of records lost to ring overflow.
func (s *SinkWriter) Dropped() uint64 { return s.dropped.Value() }

// Err returns the first write error, if any.
func (s *SinkWriter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}

func (s *SinkWriter) encode(rec Record) {
	s.mu.Lock()
	if s.werr == nil {
		s.werr = s.enc.Encode(rec)
	}
	s.mu.Unlock()
}

func (s *SinkWriter) drain() {
	defer close(s.done)
	for {
		select {
		case rec := <-s.ch:
			s.encode(rec)
		case <-s.stop:
			for {
				select {
				case rec := <-s.ch:
					s.encode(rec)
				default:
					s.mu.Lock()
					if err := s.bw.Flush(); s.werr == nil {
						s.werr = err
					}
					s.mu.Unlock()
					return
				}
			}
		}
	}
}

// Close drains, flushes and stops. Idempotent; Record stays safe after
// Close.
func (s *SinkWriter) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
	return s.Err()
}

// ReadRecords decodes a JSONL record stream (the analyzer's input).
// Unknown fields are ignored; a malformed line aborts with its index.
func ReadRecords(rd io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(rd)
	for i := 0; ; i++ {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("reqtrace: record %d: %w", i, err)
		}
		out = append(out, rec)
	}
}
