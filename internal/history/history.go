package history

import (
	"errors"
	"fmt"
)

// History is a global history: one local history (ordered slice of
// operations) per process, plus the derived read-from relation. Build
// one with a Builder or FromOps; then call Causality to obtain the →co
// closure.
type History struct {
	// Locals[p] is the local history h_p in process order.
	Locals [][]Op
	// NumVars is the number of memory locations (max Var + 1).
	NumVars int

	// ops is the flattened operation list; flat[i] corresponds to
	// refs[i]. Flattening assigns each operation a dense global index
	// used by the causality engine.
	ops  []Op
	refs []OpRef
	// writeIdx maps a WriteID to its global index.
	writeIdx map[WriteID]int
}

// Errors reported while assembling or validating histories.
var (
	ErrUnknownWrite   = errors.New("history: read-from names an unknown write")
	ErrKindMismatch   = errors.New("history: read-from source is not a write")
	ErrVarMismatch    = errors.New("history: read returns a value written to a different variable")
	ErrValMismatch    = errors.New("history: read returns a value different from its source write")
	ErrDuplicateWrite = errors.New("history: duplicate WriteID")
	ErrBadSeq         = errors.New("history: write Seq does not match process order")
	ErrSelfRead       = errors.New("history: read-from points at a write that follows the read in process order")
)

// FromOps assembles a History from per-process operation slices. It
// validates the structural rules of the read-from relation of Section 2:
// every read's From either is ⊥ or names an existing write on the same
// variable with the same value, and each process's writes carry
// consecutive Seq numbers 1,2,3,…
func FromOps(locals [][]Op) (*History, error) {
	h := &History{
		Locals:   locals,
		writeIdx: make(map[WriteID]int),
	}
	for p, local := range locals {
		seq := 0
		for i, o := range local {
			if o.Proc != p {
				return nil, fmt.Errorf("history: op %v at p%d[%d] has Proc %d", o, p+1, i, o.Proc+1)
			}
			if o.Var+1 > h.NumVars {
				h.NumVars = o.Var + 1
			}
			idx := len(h.ops)
			h.ops = append(h.ops, o)
			h.refs = append(h.refs, OpRef{Proc: p, Index: i})
			if o.IsWrite() {
				seq++
				if o.ID.Proc != p || o.ID.Seq != seq {
					return nil, fmt.Errorf("%w: %v has ID %v, want w%d#%d", ErrBadSeq, o, o.ID, p+1, seq)
				}
				if _, dup := h.writeIdx[o.ID]; dup {
					return nil, fmt.Errorf("%w: %v", ErrDuplicateWrite, o.ID)
				}
				h.writeIdx[o.ID] = idx
			}
		}
	}
	for _, o := range h.ops {
		if !o.IsRead() || o.From.IsBottom() {
			continue
		}
		widx, ok := h.writeIdx[o.From]
		if !ok {
			return nil, fmt.Errorf("%w: %v from %v", ErrUnknownWrite, o, o.From)
		}
		w := h.ops[widx]
		if w.Var != o.Var {
			return nil, fmt.Errorf("%w: %v from %v", ErrVarMismatch, o, w)
		}
		if w.Val != o.Val {
			return nil, fmt.Errorf("%w: %v from %v", ErrValMismatch, o, w)
		}
	}
	return h, nil
}

// NumProcs returns the number of processes.
func (h *History) NumProcs() int { return len(h.Locals) }

// NumOps returns the total number of operations.
func (h *History) NumOps() int { return len(h.ops) }

// Ops returns the flattened operation list. Index i in this slice is the
// operation's global index, the currency of the Causality engine. The
// returned slice must not be modified.
func (h *History) Ops() []Op { return h.ops }

// Ref returns the (process, position) location of global operation i.
func (h *History) Ref(i int) OpRef { return h.refs[i] }

// GlobalIndex returns the dense index of the operation at ref.
func (h *History) GlobalIndex(ref OpRef) int {
	// Locals are flattened process by process in order.
	idx := 0
	for p := 0; p < ref.Proc; p++ {
		idx += len(h.Locals[p])
	}
	return idx + ref.Index
}

// WriteIndex returns the global index of the write named id, or -1 if
// the history contains no such write (including Bottom).
func (h *History) WriteIndex(id WriteID) int {
	if idx, ok := h.writeIdx[id]; ok {
		return idx
	}
	return -1
}

// Writes returns the global indices of all write operations, in
// flattened order.
func (h *History) Writes() []int {
	var ws []int
	for i, o := range h.ops {
		if o.IsWrite() {
			ws = append(ws, i)
		}
	}
	return ws
}

// Builder assembles a History incrementally, assigning WriteIDs and,
// when values are globally unique per variable, inferring the read-from
// relation (the convention of the paper's hand-written histories, where
// r(x)v reads from the unique w(x)v).
type Builder struct {
	locals   [][]Op
	writeSeq []int
	// lastWriter[var][val] is the ID of the write that wrote val to var.
	valWriter map[int]map[int64]WriteID
	err       error
}

// NewBuilder returns a Builder for n processes.
func NewBuilder(n int) *Builder {
	return &Builder{
		locals:    make([][]Op, n),
		writeSeq:  make([]int, n),
		valWriter: make(map[int]map[int64]WriteID),
	}
}

// Write appends w_{p}(x)v to p's local history and returns its ID.
func (b *Builder) Write(p, x int, v int64) WriteID {
	if b.err != nil {
		return Bottom
	}
	b.writeSeq[p]++
	id := WriteID{Proc: p, Seq: b.writeSeq[p]}
	b.locals[p] = append(b.locals[p], Op{Kind: Write, Proc: p, Var: x, Val: v, ID: id})
	m := b.valWriter[x]
	if m == nil {
		m = make(map[int64]WriteID)
		b.valWriter[x] = m
	}
	if _, dup := m[v]; dup {
		b.err = fmt.Errorf("history: value %d written twice to x%d; read-from inference needs unique values (use ReadFrom)", v, x+1)
		return id
	}
	m[v] = id
	return id
}

// Read appends r_{p}(x)v, inferring the source write from the value. A
// read of a never-written value is recorded as reading ⊥ only when v is
// 0; any other unmatched value is an error surfaced by Finish.
func (b *Builder) Read(p, x int, v int64) {
	if b.err != nil {
		return
	}
	from, ok := b.valWriter[x][v]
	if !ok {
		if v != 0 {
			b.err = fmt.Errorf("history: r%d(x%d)%d reads a value never written", p+1, x+1, v)
			return
		}
		from = Bottom
	}
	b.ReadFrom(p, x, v, from)
}

// ReadFrom appends r_{p}(x)v with an explicit source write.
func (b *Builder) ReadFrom(p, x int, v int64, from WriteID) {
	if b.err != nil {
		return
	}
	b.locals[p] = append(b.locals[p], Op{Kind: Read, Proc: p, Var: x, Val: v, From: from})
}

// Finish validates and returns the assembled History.
func (b *Builder) Finish() (*History, error) {
	if b.err != nil {
		return nil, b.err
	}
	return FromOps(b.locals)
}

// MustFinish is Finish for tests and fixtures with known-good input.
func (b *Builder) MustFinish() *History {
	h, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return h
}

// String renders the history one local history per line, in the paper's
// "h1: w1(x1)1; w1(x1)3" style.
func (h *History) String() string {
	s := ""
	for p, local := range h.Locals {
		s += fmt.Sprintf("h%d:", p+1)
		for _, o := range local {
			s += " " + o.String() + ";"
		}
		s += "\n"
	}
	return s
}
