package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// startDaemon runs the dsmd entrypoint in-process and returns its
// bound address and completion channel.
func startDaemon(t *testing.T, args ...string) (string, chan error) {
	t.Helper()
	args = append([]string{"-addr", "127.0.0.1:0"}, args...)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(args, func(a string) { addrCh <- a })
	}()
	select {
	case addr := <-addrCh:
		return addr, done
	case err := <-done:
		t.Fatalf("dsmd exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("dsmd never became ready")
	}
	return "", nil
}

// The full daemon lifecycle: serve real sessions, then drain cleanly
// on SIGTERM — the exact path a supervisor exercises.
func TestDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	addr, done := startDaemon(t, "-procs", "2", "-vars", "4", "-wal-dir", t.TempDir())
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	s := c.Session()
	if err := s.Write(ctx, 1, 11); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if v, err := s.Use(1).Read(ctx, 1); err != nil || v != 11 {
		t.Fatalf("Read = %d, %v; want 11", v, err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("dsmd did not exit after SIGTERM")
	}
	// The listener is gone.
	if _, err := client.Dial(addr); err == nil {
		t.Fatal("Dial succeeded after shutdown")
	}
}

// A request in a frontier wait when SIGTERM arrives is drained, not
// dropped: its (Unavailable, after the wait times out) response is
// flushed before the daemon exits, so the client sees a verdict rather
// than a dead socket.
func TestDaemonDrainFlushesInFlight(t *testing.T) {
	addr, done := startDaemon(t, "-procs", "2", "-vars", "1", "-wait-timeout", "1s")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	got := make(chan error, 1)
	go func() {
		// A token no frontier can reach: the wait runs out wait-timeout.
		_, err := c.Do(context.Background(), protocol.Request{
			Kind: protocol.ReqRead, Proc: 0, Var: 0, Token: vclock.VC{1 << 20, 0},
		})
		got <- err
	}()
	time.Sleep(100 * time.Millisecond) // the read is server-side, waiting
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, client.ErrUnavailable) {
			t.Fatalf("in-flight read = %v, want ErrUnavailable: the drain must flush the verdict", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never completed across the drain")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("dsmd did not exit after the drain")
	}
}

// The daemon's debug mux carries the build-info pair: who is running
// (dsm_build_info) and for how long (dsm_uptime_seconds).
func TestDaemonDebugMuxServesBuildInfo(t *testing.T) {
	// Reserve an ephemeral port for -debug-addr; the tiny window between
	// closing the probe listener and dsmd rebinding is benign in CI.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	debugAddr := probe.Addr().String()
	probe.Close()

	_, done := startDaemon(t, "-procs", "2", "-vars", "2", "-debug-addr", debugAddr)
	defer func() {
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
		<-done
	}()

	var body []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + debugAddr + "/metrics")
		if err == nil {
			body, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrape never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	text := string(body)
	for _, want := range []string{
		`dsm_build_info{component="dsmd"`,
		"dsm_uptime_seconds",
		"dsm_svc_stage_ns",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("debug scrape missing %q", want)
		}
	}
}

// With -meta-codec the daemon compresses inter-replica clocks and its
// debug registry exposes the byte split, so operators can see the
// metadata share of replica traffic shrink.
func TestDaemonMetaCodecMetrics(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	debugAddr := probe.Addr().String()
	probe.Close()

	addr, done := startDaemon(t, "-procs", "3", "-vars", "4",
		"-meta-codec", "auto", "-debug-addr", debugAddr)
	defer func() {
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
		<-done
	}()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	s := c.Session()
	for i := int64(1); i <= 10; i++ {
		if err := s.Write(ctx, int(i%4), i); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if v, err := s.Read(ctx, 1); err != nil || v == 0 {
		t.Fatalf("Read = %d, %v", v, err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + debugAddr + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				text := string(body)
				if strings.Contains(text, `dsm_net_meta_bytes_total{codec="auto",protocol="OptP"}`) &&
					strings.Contains(text, "dsm_net_payload_bytes_total") {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("scrape never exposed the codec byte counters")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDaemonRejectsBadConfig(t *testing.T) {
	cases := [][]string{
		{"-protocol", "nonsense"},
		{"-protocol", "WS-send"}, // not servable: frontiers never converge
		{"-procs", "1"},
		{"-vars", "0"},
		{"-meta-codec", "nonsense"},
		{"-replication-factor", "2"}, // partial: every replica must serve every variable
		{"-replication-factor", "-1"},
		{"extra-arg"},
	}
	for _, args := range cases {
		if err := run(append([]string{"-addr", "127.0.0.1:0"}, args...), nil); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
