package protocol

import (
	"testing"

	"repro/internal/history"
	"repro/internal/vclock"
)

// TestOptPFigure6Run replays the OptP run of Figure 6 by hand and
// checks every Write_co / Apply value the figure shows:
//
//	p1: w1(x1)a (Write_co [1,0,0]); w1(x1)c ([2,0,0])
//	p2: applies a; reads x1→a (merge); w2(x2)b (Write_co [1,1,0])
//	p3: receives w2(x2)b BEFORE w1(x1)a — blocked (necessary delay);
//	    applies a, then b (even though c never arrived!);
//	    reads x2→b; w3(x2)d (Write_co [1,1,1]).
func TestOptPFigure6Run(t *testing.T) {
	p1 := NewOptP(0, 3, 2).(*optp)
	p2 := NewOptP(1, 3, 2).(*optp)
	p3 := NewOptP(2, 3, 2).(*optp)

	ua, bc := p1.LocalWrite(0, 1) // w1(x1)a
	if !bc {
		t.Fatal("OptP must broadcast")
	}
	if !ua.Clock.Equal(vclock.VC{1, 0, 0}) {
		t.Fatalf("w1(x1)a clock = %v", ua.Clock)
	}
	uc, _ := p1.LocalWrite(0, 3) // w1(x1)c
	if !uc.Clock.Equal(vclock.VC{2, 0, 0}) {
		t.Fatalf("w1(x1)c clock = %v", uc.Clock)
	}

	// p2 applies a, reads it, writes b.
	if p2.Status(ua) != Deliverable {
		t.Fatalf("p2 Status(a) = %v", p2.Status(ua))
	}
	p2.Apply(ua)
	if v, id := p2.Read(0); v != 1 || id != ua.ID {
		t.Fatalf("p2 read = %d from %v", v, id)
	}
	if !p2.ControlClock().Equal(vclock.VC{1, 0, 0}) {
		t.Fatalf("p2 Write_co after read = %v", p2.ControlClock())
	}
	ub, _ := p2.LocalWrite(1, 2) // w2(x2)b
	if !ub.Clock.Equal(vclock.VC{1, 1, 0}) {
		t.Fatalf("w2(x2)b clock = %v, want [1 1 0] (must NOT track w1(x1)c)", ub.Clock)
	}

	// Even if p2 has ALSO applied c before writing b, Write_co must not
	// pick it up without a read — the heart of the paper's Figure 6.
	p2bis := NewOptP(1, 3, 2).(*optp)
	p2bis.Apply(ua)
	p2bis.Read(0)
	p2bis.Apply(uc) // applied but never read
	ubbis, _ := p2bis.LocalWrite(1, 2)
	if !ubbis.Clock.Equal(vclock.VC{1, 1, 0}) {
		t.Fatalf("w2(x2)b clock with c applied-but-unread = %v, want [1 1 0]", ubbis.Clock)
	}

	// p3: b arrives first — blocked on the true dependency a.
	if p3.Status(ub) != Blocked {
		t.Fatalf("p3 Status(b) = %v, want Blocked", p3.Status(ub))
	}
	p3.Apply(ua)
	if p3.Status(ub) != Deliverable {
		t.Fatalf("p3 Status(b) after a = %v, want Deliverable (c must not be required)", p3.Status(ub))
	}
	p3.Apply(ub)
	if v, id := p3.Read(1); v != 2 || id != ub.ID {
		t.Fatalf("p3 read x2 = %d from %v", v, id)
	}
	ud, _ := p3.LocalWrite(1, 4) // w3(x2)d
	if !ud.Clock.Equal(vclock.VC{1, 1, 1}) {
		t.Fatalf("w3(x2)d clock = %v, want [1 1 1]", ud.Clock)
	}
	// c arrives last and is immediately deliverable.
	if p3.Status(uc) != Deliverable {
		t.Fatalf("p3 Status(c) = %v", p3.Status(uc))
	}
	p3.Apply(uc)
	if !p3.ApplyClock().Equal(vclock.VC{2, 1, 1}) {
		t.Fatalf("p3 Apply = %v", p3.ApplyClock())
	}
}

// OptP must wait for the sender's own previous writes: receiving w1#2
// before w1#1 blocks (process order ⊂ →co).
func TestOptPSenderGap(t *testing.T) {
	p1 := NewOptP(0, 2, 1).(*optp)
	p2 := NewOptP(1, 2, 1).(*optp)
	u1, _ := p1.LocalWrite(0, 1)
	u2, _ := p1.LocalWrite(0, 2)
	if p2.Status(u2) != Blocked {
		t.Fatal("second write deliverable before first")
	}
	p2.Apply(u1)
	if p2.Status(u2) != Deliverable {
		t.Fatal("second write blocked after first")
	}
	p2.Apply(u2)
	if v, _ := p2.Read(0); v != 2 {
		t.Fatalf("read = %d", v)
	}
}

// Read-through dependencies: p2 reads p1's write then writes; p3 must
// be forced to apply p1's write first.
func TestOptPReadFromDependency(t *testing.T) {
	p1 := NewOptP(0, 3, 2).(*optp)
	p2 := NewOptP(1, 3, 2).(*optp)
	p3 := NewOptP(2, 3, 2).(*optp)
	u1, _ := p1.LocalWrite(0, 1)
	p2.Apply(u1)
	p2.Read(0)
	u2, _ := p2.LocalWrite(1, 2)
	if p3.Status(u2) != Blocked {
		t.Fatal("dependent write deliverable before its read-from source")
	}
	p3.Apply(u1)
	p3.Apply(u2)
}

// Without the read, the same writes are concurrent and p3 need not wait.
func TestOptPNoReadNoDependency(t *testing.T) {
	p1 := NewOptP(0, 3, 2).(*optp)
	p2 := NewOptP(1, 3, 2).(*optp)
	p3 := NewOptP(2, 3, 2).(*optp)
	_, _ = p1.LocalWrite(0, 1)
	u2, _ := p2.LocalWrite(1, 2)
	if p3.Status(u2) != Deliverable {
		t.Fatal("concurrent write blocked")
	}
	_ = p3
}

// The ablation merges applied clocks into Write_co, so an applied-but-
// unread write becomes a (false) dependency — ANBKH behaviour.
func TestOptPAblationManufacturesFalseCausality(t *testing.T) {
	p1 := NewOptPAblated(0, 3, 2).(*optp)
	p2 := NewOptPAblated(1, 3, 2).(*optp)
	p3 := NewOptPAblated(2, 3, 2).(*optp)
	if p1.Kind() != OptPNoReadMerge {
		t.Fatalf("Kind = %v", p1.Kind())
	}
	ua, _ := p1.LocalWrite(0, 1)
	uc, _ := p1.LocalWrite(0, 3)
	p2.Apply(ua)
	p2.Apply(uc) // applied, never read
	ub, _ := p2.LocalWrite(1, 2)
	if !ub.Clock.Equal(vclock.VC{2, 1, 0}) {
		t.Fatalf("ablated clock = %v, want [2 1 0]", ub.Clock)
	}
	p3.Apply(ua)
	if p3.Status(ub) != Blocked {
		t.Fatal("ablation should block on the unread write like ANBKH")
	}
}

func TestOptPApplyPanicsWhenBlocked(t *testing.T) {
	p1 := NewOptP(0, 2, 1).(*optp)
	p2 := NewOptP(1, 2, 1).(*optp)
	p1.LocalWrite(0, 1)
	u2, _ := p1.LocalWrite(0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p2.Apply(u2)
}

func TestOptPDiscardPanics(t *testing.T) {
	p := NewOptP(0, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Discard(Update{})
}

func TestOptPIntrospection(t *testing.T) {
	p := NewOptP(0, 2, 2).(*optp)
	u, _ := p.LocalWrite(1, 7)
	if v, id := p.Value(1); v != 7 || id != u.ID {
		t.Fatalf("Value = %d, %v", v, id)
	}
	if v, id := p.Value(0); v != 0 || !id.IsBottom() {
		t.Fatalf("untouched Value = %d, %v", v, id)
	}
	if !p.LastWriteOn(1).Equal(vclock.VC{1, 0}) {
		t.Fatalf("LastWriteOn = %v", p.LastWriteOn(1))
	}
	// Returned clocks are copies.
	cc := p.ControlClock()
	cc.Tick(0)
	if !p.ControlClock().Equal(vclock.VC{1, 0}) {
		t.Fatal("ControlClock aliases internal state")
	}
}

func TestOptPWriteIDSequencing(t *testing.T) {
	p := NewOptP(0, 2, 1).(*optp)
	for i := 1; i <= 5; i++ {
		u, _ := p.LocalWrite(0, int64(i))
		if u.ID != (history.WriteID{Proc: 0, Seq: i}) {
			t.Fatalf("write %d has ID %v", i, u.ID)
		}
		if u.ID.Seq >= 2 && u.Prev != (history.WriteID{Proc: 0, Seq: i - 1}) {
			t.Fatalf("write %d has Prev %v", i, u.Prev)
		}
	}
}
