package protocol

import (
	"testing"
)

// Happy path: p0 writes twice to the same variable before its token
// turn; only the LAST write is broadcast (the first is suppressed —
// never applied anywhere else, which is why WS-send is outside 𝒫).
func TestWSSendSuppressesOverwrittenWrites(t *testing.T) {
	p0 := NewWSSend(0, 2, 2).(*wssend)
	p1 := NewWSSend(1, 2, 2).(*wssend)

	if _, bc := p0.LocalWrite(0, 1); bc {
		t.Fatal("WS-send must defer broadcast")
	}
	p0.LocalWrite(0, 2)
	p0.LocalWrite(1, 3)
	if p0.PendingWrites() != 2 {
		t.Fatalf("PendingWrites = %d", p0.PendingWrites())
	}
	if p0.Suppressed() != 1 {
		t.Fatalf("Suppressed = %d", p0.Suppressed())
	}

	batch := p0.OnToken(0) // visit 0
	if len(batch) != 2 {
		t.Fatalf("batch = %v", batch)
	}
	// Variables in sorted order; only the last write of x0 survives.
	if batch[0].Var != 0 || batch[0].Val != 2 || batch[0].Slot != 0 || batch[0].BatchSize != 2 {
		t.Fatalf("batch[0] = %+v", batch[0])
	}
	if batch[1].Var != 1 || batch[1].Val != 3 || batch[1].Slot != 1 {
		t.Fatalf("batch[1] = %+v", batch[1])
	}
	if p0.PendingWrites() != 0 {
		t.Fatal("pending not drained")
	}

	// p1 applies in slot order.
	if p1.Status(batch[1]) != Blocked {
		t.Fatal("slot 1 deliverable before slot 0")
	}
	p1.Apply(batch[0])
	p1.Apply(batch[1])
	if v, _ := p1.Read(0); v != 2 {
		t.Fatalf("x0 = %d", v)
	}
	if v, _ := p1.Read(1); v != 3 {
		t.Fatalf("x1 = %d", v)
	}
}

// Batches must apply in visit order even when the network reorders them.
func TestWSSendVisitOrdering(t *testing.T) {
	p0 := NewWSSend(0, 3, 1).(*wssend)
	p1 := NewWSSend(1, 3, 1).(*wssend)
	p2 := NewWSSend(2, 3, 1).(*wssend)

	p0.LocalWrite(0, 1)
	b0 := p0.OnToken(0)
	// p1 applies p0's batch, then overwrites on its own turn.
	p1.Apply(b0[0])
	p1.LocalWrite(0, 2)
	b1 := p1.OnToken(1)

	// p2 receives visit-1 batch first: blocked until visit 0 arrives.
	if p2.Status(b1[0]) != Blocked {
		t.Fatal("visit 1 deliverable before visit 0")
	}
	p2.Apply(b0[0])
	if p2.Status(b1[0]) != Deliverable {
		t.Fatalf("visit 1 blocked after visit 0: %v", p2.Status(b1[0]))
	}
	p2.Apply(b1[0])
	if v, _ := p2.Read(0); v != 2 {
		t.Fatalf("x0 = %d", v)
	}
}

// Empty token turns broadcast markers that advance receivers past the
// visit.
func TestWSSendMarkers(t *testing.T) {
	p0 := NewWSSend(0, 2, 1).(*wssend)
	p1 := NewWSSend(1, 2, 1).(*wssend)

	if batch := p0.OnToken(0); len(batch) != 0 {
		t.Fatalf("batch = %v", batch)
	}
	m := Marker(0, 0)
	if !m.Marker || m.Round != 0 {
		t.Fatalf("marker = %+v", m)
	}
	// p1 writes on its turn (visit 1); p0's marker must be consumed
	// first at any third party — here check p1 consumes it.
	if p1.Status(m) != Deliverable {
		t.Fatalf("marker status = %v", p1.Status(m))
	}
	p1.Apply(m)
	p1.LocalWrite(0, 9)
	b1 := p1.OnToken(1)
	// p0 receives p1's batch; it already consumed its own visit 0.
	if p0.Status(b1[0]) != Deliverable {
		t.Fatalf("p0 status = %v", p0.Status(b1[0]))
	}
	p0.Apply(b1[0])
	if v, _ := p0.Read(0); v != 9 {
		t.Fatalf("x0 at p0 = %d", v)
	}
}

// A holder that has not yet received earlier batches must not leap
// ahead when consuming its own visit.
func TestWSSendOwnVisitDoesNotSkipEarlier(t *testing.T) {
	p0 := NewWSSend(0, 2, 1).(*wssend)
	p1 := NewWSSend(1, 2, 1).(*wssend)

	p0.LocalWrite(0, 1)
	b0 := p0.OnToken(0)

	// Token reaches p1 BEFORE b0's message does.
	p1.LocalWrite(0, 2)
	_ = p1.OnToken(1)
	// p1 still awaits visit 0.
	if p1.Status(b0[0]) != Deliverable {
		t.Fatalf("visit-0 batch at p1: %v", p1.Status(b0[0]))
	}
	p1.Apply(b0[0])
	// After applying visit 0, the self-consumed visit 1 unwinds and the
	// cursor is at visit 2.
	if got := p1.ControlClock().Get(0); got != 2 {
		t.Fatalf("expectedVisit = %d, want 2", got)
	}
	// Note: p1's own write (value 2) happened before applying b0, so b0
	// overwrote it locally — last-applied-wins at a single replica.
	if v, _ := p1.Read(0); v != 1 {
		t.Fatalf("x0 = %d", v)
	}
	_ = p0
}

func TestWSSendApplyPanicsOutOfOrder(t *testing.T) {
	p0 := NewWSSend(0, 2, 1).(*wssend)
	p1 := NewWSSend(1, 2, 1).(*wssend)
	p0.LocalWrite(0, 1)
	b := p0.OnToken(3) // future visit
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p1.Apply(b[0])
}

func TestWSSendDiscardPanics(t *testing.T) {
	p := NewWSSend(0, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Discard(Update{})
}

func TestWSSendKindAndClocks(t *testing.T) {
	p := NewWSSend(0, 3, 1).(*wssend)
	if p.Kind() != WSSend || p.ProcID() != 0 {
		t.Fatalf("Kind=%v", p.Kind())
	}
	p.LocalWrite(0, 1)
	if got := p.ApplyClock().Get(0); got != 1 {
		t.Fatalf("ApplyClock[0] = %d", got)
	}
	if v, id := p.Value(0); v != 1 || id.Seq != 1 {
		t.Fatalf("Value = %d %v", v, id)
	}
}
