package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// TestPartialConfigValidation pins the ShareSets composition rules.
func TestPartialConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Processes: 4, Variables: 4, Protocol: protocol.PartialRep,
			ShareSets: protocol.Modulo(4, 4, 2).Raw(),
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid partial config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"wrong protocol":   func(c *Config) { c.Protocol = protocol.OptP },
		"wrong var count":  func(c *Config) { c.ShareSets = c.ShareSets[:3] },
		"empty share-set":  func(c *Config) { c.ShareSets[2] = nil },
		"out of range":     func(c *Config) { c.ShareSets[0] = []int{0, 7} },
		"with WAL":         func(c *Config) { c.WALDir = t.TempDir() },
		"with crash sched": func(c *Config) { c.Crashes = []CrashWindow{{Proc: 0, Start: time.Millisecond}} },
	} {
		cfg := base()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

// TestPartialClusterEndToEnd runs a live partially replicated cluster:
// every process writes its own variable (replicated at a 2-process
// share-set) and then reads every variable — half of those reads
// forwarded — and the trace must audit clean with the expected
// share-set metadata and message scoping.
func TestPartialClusterEndToEnd(t *testing.T) {
	const procs, vars = 4, 4
	shares := protocol.Modulo(vars, procs, 2)
	c, err := NewCluster(Config{
		Processes: procs, Variables: vars, Protocol: protocol.PartialRep,
		ShareSets: shares.Raw(),
		MinDelay:  50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.PartiallyReplicated() {
		t.Fatal("PartiallyReplicated() = false for r=2 of 4")
	}

	for p := 0; p < procs; p++ {
		if err := c.Node(p).Write(p, int64(100+p)); err != nil {
			t.Fatal(err)
		}
	}
	// Read-your-writes across forwarding: each process reads every
	// variable, remote ones via the serving replica, and must see the
	// (only) written value.
	for p := 0; p < procs; p++ {
		for x := 0; x < vars; x++ {
			v, err := c.Node(p).Read(x)
			if err != nil {
				t.Fatal(err)
			}
			if v != int64(100+x) {
				t.Fatalf("p%d read x%d = %d, want %d", p+1, x+1, v, 100+x)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}

	log := c.Log()
	if log.ShareSets == nil {
		t.Fatal("trace snapshot lost the share-set assignment")
	}
	// Each process replicates 2 of 4 variables, so half its 4 reads
	// forwarded (its own variable is always local under Modulo).
	if fwds := log.ReadFwdCount(); fwds == 0 {
		t.Fatal("no reads were forwarded")
	}
	rep, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PartialReplication {
		t.Fatal("audit did not pick up the share-set assignment")
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() || !rep.ExactlyOnce() || !rep.ShareRespected() {
		t.Fatalf("audit: %v\nnotApplied=%v stray=%v", rep, rep.NotApplied, rep.StrayApplies)
	}
	// Fan-out scoping: each write is applied at exactly its share-set
	// (2 processes, one of them the writer via Issue), so Apply events
	// per write = 1, versus procs-1 = 3 under full replication.
	applies := 0
	for p := 0; p < procs; p++ {
		applies += len(log.AppliesAt(p))
	}
	wantApplies := procs * 2 // per write: 1 Issue at writer + 1 Apply at the peer
	if applies != wantApplies {
		t.Fatalf("share-set fan-out: %d applies+issues, want %d", applies, wantApplies)
	}
}

// TestPartialReadAbortsOnClose parks a forwarded read behind a server
// that can never satisfy it and closes the cluster; the reader must
// return ErrClosed instead of hanging.
func TestPartialReadAbortsOnClose(t *testing.T) {
	// x0 lives only at p0; p1 forwards reads of x0 there. A huge
	// MinDelay keeps p1's request in flight while we close.
	c, err := NewCluster(Config{
		Processes: 2, Variables: 1, Protocol: protocol.PartialRep,
		ShareSets: [][]int{{0}},
		MinDelay:  200 * time.Millisecond, MaxDelay: 300 * time.Millisecond,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Node(1).Read(0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the read park
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("parked read returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("forwarded read did not abort on Close")
	}
}

// TestPartialChaosProperty is the seeded chaos property for the partial
// protocol: random concurrent workloads over a lossy + duplicating
// transport with share-set multicast must quiesce and audit completely
// clean — including no stray applies and no unnecessary write delay.
// The 6-process shape is the regression pin for reply-side causality:
// with r=2 a forwarded-read reply routinely covers writes addressed to
// the requester still in flight under loss, and delivering it without
// the requester-side wait stamps the next write ahead of them.
func TestPartialChaosProperty(t *testing.T) {
	shapes := []struct {
		procs, vars, ops, r int
		maxDelay, rto       time.Duration
	}{
		{procs: 4, vars: 4, ops: 25, r: 2,
			maxDelay: 200 * time.Microsecond, rto: 300 * time.Microsecond},
		// The wide-jitter shape keeps replies racing the writes they
		// cover: a 2ms delay spread against a 3ms retransmit timeout
		// leaves lost writes in flight long enough for a forwarded
		// read's reply to overtake them.
		{procs: 6, vars: 6, ops: 60, r: 2,
			maxDelay: 2 * time.Millisecond, rto: 3 * time.Millisecond},
	}
	for _, sh := range shapes {
		for _, seed := range []int64{11, 23, 37} {
			c, err := NewCluster(Config{
				Processes: sh.procs, Variables: sh.vars, Protocol: protocol.PartialRep,
				ShareSets: protocol.Modulo(sh.vars, sh.procs, sh.r).Raw(),
				MaxDelay:  sh.maxDelay, Seed: seed,
				Chaos: transport.ChaosConfig{
					LossRate: 0.2, DupRate: 0.1, Seed: seed * 31,
				},
				RetransmitTimeout: sh.rto,
			})
			if err != nil {
				t.Fatal(err)
			}
			runChaosWorkload(t, c, seed, sh.procs, sh.vars, sh.ops)
			rep, err := c.Audit()
			if err != nil {
				t.Fatalf("n=%d seed %d: %v", sh.procs, seed, err)
			}
			if !rep.PartialReplication {
				t.Fatalf("n=%d seed %d: audit missed the share-sets", sh.procs, seed)
			}
			if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() || !rep.ExactlyOnce() || !rep.ShareRespected() {
				t.Fatalf("n=%d seed %d: audit: %v\nsafety=%v legality=%v notApplied=%v stray=%v",
					sh.procs, seed, rep, rep.SafetyViolations, rep.LegalityViolations, rep.NotApplied, rep.StrayApplies)
			}
			if !rep.WriteDelayOptimal() {
				t.Fatalf("n=%d seed %d: %d unnecessary delays under chaos", sh.procs, seed, rep.UnnecessaryDelays)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
