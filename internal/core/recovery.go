package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/durability"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// This file implements the cluster-level crash-recovery orchestration:
// crash-stopping a process (goroutine paths halted, in-memory state
// zeroed, in-flight messages dropped), restarting it from its journal,
// and converging the recovered replica with the live ones through
// anti-entropy over the per-node update archives.

// RecoveryStats describes one Restart.
type RecoveryStats struct {
	// Replayed is the number of journal entries replayed on top of the
	// recovered snapshot.
	Replayed int
	// CaughtUp is the number of updates the recovered replica accepted
	// from live peers' archives during anti-entropy catch-up.
	CaughtUp int
	// Duration is the wall-clock time of the whole Restart: journal
	// read, replay, re-journaling, and catch-up.
	Duration time.Duration
}

// String implements fmt.Stringer.
func (s RecoveryStats) String() string {
	return fmt.Sprintf("replayed=%d caughtup=%d recovery=%v", s.Replayed, s.CaughtUp, s.Duration)
}

// Crash crash-stops process p: its journal is closed, its in-memory
// replica state is zeroed, and from now on its operations return
// ErrDown and messages delivered to it are dropped on the floor. The
// rest of the cluster keeps running — Quiesce excludes p, and token
// circulation routes around it. Crash of an already-down process
// returns ErrDown; after Close it returns ErrClosed.
func (c *Cluster) Crash(p int) error {
	if p < 0 || p >= len(c.nodes) {
		return fmt.Errorf("core: crash of process %d of %d", p, len(c.nodes))
	}
	n := c.nodes[p]
	n.mu.Lock()
	defer n.mu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	c.mu.Lock()
	if c.down[p] {
		c.mu.Unlock()
		return fmt.Errorf("core: crash of p%d: %w", p+1, ErrDown)
	}
	c.down[p] = true
	c.mu.Unlock()
	n.down.Store(true)
	// p's liveness changed under the Quiesce accounting: it is exempt
	// from now on, so a poll blocked on p's lag must re-evaluate.
	c.acct.bump()
	if n.wal != nil {
		n.wal.Close()
		n.wal = nil
	}
	n.walErr = nil
	// Zero the volatile state: everything p knows must come back from
	// disk and its peers, exactly like a real process death.
	n.replica = nil
	n.pending = nil
	n.archive = nil
	if c.det != nil {
		c.det.SetDown(p, true)
	}
	c.appendEvent(trace.Event{Kind: trace.Crash, Proc: p, Time: c.now()})
	// Admission waiters parked on p must observe the crash and fail
	// over (or fail fast) instead of running out their deadline.
	n.fw.wakeAll()
	return nil
}

// Restart brings a crash-stopped process back: it recovers the newest
// intact journal segment, restores the snapshot, replays the entries,
// opens a fresh journal generation, rejoins the failure detector, and
// finally catches up with the live processes via anti-entropy (pulling
// their archives, then pushing its own, so even multi-crash runs
// converge). Requires Config.WALDir.
func (c *Cluster) Restart(p int) (RecoveryStats, error) {
	var st RecoveryStats
	if p < 0 || p >= len(c.nodes) {
		return st, fmt.Errorf("core: restart of process %d of %d", p, len(c.nodes))
	}
	if c.cfg.WALDir == "" {
		return st, fmt.Errorf("core: restart of p%d: no WALDir configured", p+1)
	}
	begin := time.Now()
	n := c.nodes[p]
	n.mu.Lock()
	if c.closed.Load() {
		n.mu.Unlock()
		return st, ErrClosed
	}
	c.mu.Lock()
	if !c.down[p] {
		c.mu.Unlock()
		n.mu.Unlock()
		return st, fmt.Errorf("core: restart of p%d: not down", p+1)
	}
	c.mu.Unlock()

	snapshot, entries, err := durability.Recover(c.walPath(p))
	if err != nil {
		n.mu.Unlock()
		return st, fmt.Errorf("core: restart of p%d: %w", p+1, err)
	}
	n.replica = protocol.New(c.cfg.Protocol, p, c.cfg.Processes, c.cfg.Variables)
	n.pending = newPendingSet(c.cfg.Processes)
	n.archive = make([][]protocol.Update, c.cfg.Processes)
	if err := n.restoreSnapshotLocked(snapshot); err != nil {
		n.replica, n.archive = nil, nil
		n.mu.Unlock()
		return st, fmt.Errorf("core: restart of p%d: snapshot: %w", p+1, err)
	}
	for i, e := range entries {
		if err := n.replayLocked(e); err != nil {
			n.replica, n.pending, n.archive = nil, nil, nil
			n.mu.Unlock()
			return st, fmt.Errorf("core: restart of p%d: entry %d: %w", p+1, i, err)
		}
	}
	st.Replayed = len(entries)
	wal, err := durability.Create(c.walPath(p), c.cfg.WALSync, n.snapshotLocked())
	if err != nil {
		n.replica, n.pending, n.archive = nil, nil, nil
		n.mu.Unlock()
		return st, fmt.Errorf("core: restart of p%d: %w", p+1, err)
	}
	n.wal, n.walErr = wal, nil
	c.observeWAL(n)
	n.down.Store(false)
	c.mu.Lock()
	c.down[p] = false
	c.mu.Unlock()
	c.acct.bump() // p rejoins the Quiesce accounting
	if c.det != nil {
		c.det.SetDown(p, false)
	}
	c.appendEvent(trace.Event{
		Kind: trace.Recover, Proc: p, Time: c.now(), Val: int64(st.Replayed),
	})
	n.mu.Unlock()
	// The recovered frontier is live again; re-evaluate parked waits.
	n.fw.wakeAll()

	st.CaughtUp = c.catchUp(p)
	st.Duration = time.Since(begin)
	return st, nil
}

// Down reports whether process p is currently crash-stopped.
func (c *Cluster) Down(p int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[p]
}

// replayLocked re-executes one journal entry against the recovering
// replica, silently (no trace events, no broadcasts — the cluster
// already accounted for these operations the first time around). The
// journal records operations in their original execution order, so
// replay is deterministic; a status mismatch means the journal and
// snapshot disagree, which recovery surfaces instead of diverging.
// Caller holds n.mu.
func (n *Node) replayLocked(e durability.Entry) error {
	switch e.Kind {
	case durability.EntryLocalWrite:
		u, broadcast := n.replica.LocalWrite(e.Var, e.Val)
		if broadcast {
			n.archiveLocked(u)
		}
	case durability.EntryRead:
		n.replica.Read(e.Var)
	case durability.EntryApply:
		if got := n.replica.Status(e.Update); got != protocol.Deliverable {
			return fmt.Errorf("replaying apply of %v: status %v", e.Update.ID, got)
		}
		n.replica.Apply(e.Update)
		n.archiveLocked(e.Update)
	case durability.EntryDiscard:
		if got := n.replica.Status(e.Update); got != protocol.Discardable {
			return fmt.Errorf("replaying discard of %v: status %v", e.Update.ID, got)
		}
		n.replica.Discard(e.Update)
		n.archiveLocked(e.Update)
	case durability.EntryToken:
		tb, ok := n.replica.(protocol.TokenBatcher)
		if !ok {
			return fmt.Errorf("token entry for non-token protocol")
		}
		batch := tb.OnToken(e.Visit)
		if len(batch) == 0 {
			batch = []protocol.Update{protocol.Marker(n.id, e.Visit)}
		}
		for _, u := range batch {
			n.archiveLocked(u)
		}
	default:
		return fmt.Errorf("unknown journal entry kind %d", e.Kind)
	}
	return nil
}

// catchUp converges a freshly restarted p with the cluster: pull every
// live peer's archive into p, then push p's (recovered) archive to
// every live peer — the push direction matters when several processes
// crashed and p holds the sole surviving copy of some update. Returns
// the number of updates p accepted.
func (c *Cluster) catchUp(p int) int {
	n := c.nodes[p]
	fed := 0
	for q, m := range c.nodes {
		if q == p || c.Down(q) {
			continue
		}
		m.mu.Lock()
		pulled := flattenArchive(m.archive)
		m.mu.Unlock()
		fed += c.feedBatch(n, pulled)
	}
	n.mu.Lock()
	own := flattenArchive(n.archive)
	n.mu.Unlock()
	for q, m := range c.nodes {
		if q == p || c.Down(q) {
			continue
		}
		c.feedBatch(m, own)
	}
	return fed
}

// flattenArchive copies a per-origin archive into one slice, origin by
// origin so each origin's updates stay in their causal (issue) order.
func flattenArchive(archive [][]protocol.Update) []protocol.Update {
	var out []protocol.Update
	for _, arc := range archive {
		out = append(out, arc...)
	}
	return out
}

// feedBatch offers updates to n through the normal receipt state
// machine, skipping everything the replica already has. Returns the
// number accepted.
func (c *Cluster) feedBatch(n *Node, us []protocol.Update) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down.Load() {
		return 0
	}
	fed := 0
	for _, u := range us {
		if n.feedLocked(u) {
			fed++
		}
	}
	n.drainLocked()
	return fed
}

// crashLoop executes the configured crash/restart schedule, mirroring
// the chaos layer's partition windows: deterministic given the config,
// measured from cluster start. Errors are best-effort ignored (a window
// may name a process the test already crashed by hand).
func (c *Cluster) crashLoop() {
	defer close(c.crashDone)
	type action struct {
		at      time.Duration
		proc    int
		restart bool
	}
	var acts []action
	for _, w := range c.cfg.Crashes {
		acts = append(acts, action{at: w.Start, proc: w.Proc})
		if w.End > 0 {
			acts = append(acts, action{at: w.End, proc: w.Proc, restart: true})
		}
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i].at < acts[j].at })
	for _, a := range acts {
		if d := a.at - time.Since(c.start); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-c.crashStop:
				t.Stop()
				return
			case <-t.C:
			}
		} else {
			select {
			case <-c.crashStop:
				return
			default:
			}
		}
		if a.restart {
			c.Restart(a.proc)
		} else {
			c.Crash(a.proc)
		}
	}
}

// ---------------------------------------------------------------------
// snapshot payload

// snapshotLocked encodes the node's complete volatile state — protocol
// replica, pending buffer, anti-entropy archive — as one WAL snapshot
// payload. Caller holds n.mu (or has exclusive access during startup).
func (n *Node) snapshotLocked() []byte {
	dst := protocol.ExportState(n.replica)
	pending := n.pending.flatten() // deterministic: origin, then key order
	dst = binary.AppendUvarint(dst, uint64(len(pending)))
	for _, u := range pending {
		dst = u.AppendBinary(dst)
	}
	for _, arc := range n.archive {
		dst = binary.AppendUvarint(dst, uint64(len(arc)))
		for _, u := range arc {
			dst = u.AppendBinary(dst)
		}
	}
	return dst
}

// restoreSnapshotLocked decodes a snapshotLocked payload into the
// (freshly constructed) replica, pending buffer and archive. Caller
// holds n.mu.
func (n *Node) restoreSnapshotLocked(data []byte) error {
	sc, ok := n.replica.(protocol.StateCodec)
	if !ok {
		return fmt.Errorf("protocol %v does not support state recovery", n.c.cfg.Protocol)
	}
	off, err := sc.RestoreState(data)
	if err != nil {
		return err
	}
	rest := data[off:]
	readUpdates := func() ([]protocol.Update, error) {
		cnt, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("%w: truncated snapshot count", protocol.ErrStateCorrupt)
		}
		rest = rest[k:]
		var us []protocol.Update
		for i := uint64(0); i < cnt; i++ {
			u, un, err := protocol.DecodeUpdate(rest)
			if err != nil {
				return nil, err
			}
			us = append(us, u)
			rest = rest[un:]
		}
		return us, nil
	}
	pending, err := readUpdates()
	if err != nil {
		return err
	}
	for _, u := range pending {
		n.pending.add(u)
	}
	for p := range n.archive {
		if n.archive[p], err = readUpdates(); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing snapshot bytes", protocol.ErrStateCorrupt, len(rest))
	}
	return nil
}
