package core

import (
	"testing"

	"repro/internal/protocol"
)

// TestReceiveDedupUnderRecovery pins the duplicate-suppression
// behaviour of the receipt state machine when crash recovery is
// enabled: a duplicate of a buffered update must not be double-buffered
// (and must record no events), and a stale duplicate of an
// already-applied update — a retransmission landing after catch-up
// recovered the write — must be dropped silently. This behaviour is
// what the write-ID index of the pending set implements in O(1).
func TestReceiveDedupUnderRecovery(t *testing.T) {
	c, err := NewCluster(Config{
		Processes: 3, Variables: 1, Protocol: protocol.OptP,
		FIFO: true, WALDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Craft the origin's updates off-cluster so delivery order is ours:
	// u2 causally follows u1 (same origin, consecutive seqs).
	origin := protocol.New(protocol.OptP, 0, 3, 1)
	u1, _ := origin.LocalWrite(0, 10)
	u2, _ := origin.LocalWrite(0, 20)

	n := c.Node(2)
	n.mu.Lock()
	defer n.mu.Unlock()

	n.receiveLocked(u2) // arrives first: blocked on u1, buffered
	if got := n.pending.size(); got != 1 {
		t.Fatalf("pending after first u2: %d, want 1", got)
	}
	events := c.journal.Len()
	n.receiveLocked(u2) // duplicate of a buffered update
	if got := n.pending.size(); got != 1 {
		t.Fatalf("pending after duplicate u2: %d, want 1 (no double-buffer)", got)
	}
	if got := c.journal.Len(); got != events {
		t.Fatalf("duplicate of buffered update recorded %d events", got-events)
	}
	if n.feedLocked(u2) { // catch-up offering the same buffered update
		t.Fatal("feedLocked accepted an update already buffered")
	}

	n.receiveLocked(u1) // enabler arrives: applies, unblocks u2
	n.drainLocked()
	if got := n.pending.size(); got != 0 {
		t.Fatalf("pending after drain: %d, want 0", got)
	}
	v, _ := n.replica.Read(0)
	if v != 20 {
		t.Fatalf("replica value %d, want 20", v)
	}

	// Stale duplicates of applied updates: dropped with no trace.
	events = c.journal.Len()
	n.receiveLocked(u1)
	n.receiveLocked(u2)
	if got := c.journal.Len(); got != events {
		t.Fatalf("stale duplicates recorded %d events", got-events)
	}
	if n.feedLocked(u1) {
		t.Fatal("feedLocked accepted an update the replica already applied")
	}
}
