package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/checker"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PartialName identifies the partial-replication scorecard experiment
// in dsmbench/v1 documents; CheckPartialRegression matches baseline
// and current results by it.
const PartialName = "E-partial"

// PartialReplication is the partial-replication experiment: for each
// system size it sweeps the replication factor r — every variable
// stored at r processes under the Modulo assignment — and measures
// what the share-set multicast buys: update copies per write (the
// fan-out), variables stored per process, metadata bytes per shipped
// update (through the MetaAuto codec on the real per-link streams,
// which differ per destination under partial replication), and the
// read-forwarding traffic that pays for it. Every run is audited; a
// single safety, liveness or share-set violation fails the sweep.
func PartialReplication() (Result, error) {
	return partialSweep([]int{8, 16}, []uint64{11, 23, 37})
}

// partialFactors is the r sweep for one system size: full replication
// (the baseline), P/2, P/4, and the minimum redundant factor 2,
// deduplicated and clamped to ≥ 1.
func partialFactors(procs int) []int {
	var out []int
	seen := map[int]bool{}
	for _, r := range []int{procs, procs / 2, procs / 4, 2} {
		if r < 1 {
			r = 1
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// partialSweep is the parameterized body of PartialReplication, kept
// separate so tests can run a tiny sweep fast.
func partialSweep(ps []int, seeds []uint64) (Result, error) {
	res := Result{
		Name:   PartialName,
		Desc:   "partial replication (Modulo share-sets, vars = procs): fan-out, storage and metadata vs replication factor r",
		Header: []string{"procs", "r", "msgs/write", "stored-vars/proc", "clock-B/op", "read-fwds", "read-delays"},
	}
	for _, n := range ps {
		for _, factor := range partialFactors(n) {
			shares := protocol.Modulo(n, n, factor)
			var copies, writes uint64
			var fwds, delays int
			var streams [][]protocol.Update
			for _, seed := range seeds {
				scripts, err := workload.Scripts(workload.Config{
					Procs: n, Vars: n, OpsPerProc: 40, WriteRatio: 0.5,
					ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
				})
				if err != nil {
					return res, err
				}
				run, err := sim.Run(sim.Config{
					Procs: n, Vars: n, Protocol: protocol.PartialRep,
					ShareSets: shares.Raw(),
					Latency:   sim.NewUniformLatency(1, 150, seed*13+7),
					FIFO:      true,
				}, scripts)
				if err != nil {
					return res, fmt.Errorf("experiments: %s n=%d r=%d seed %d: %w", PartialName, n, factor, seed, err)
				}
				rep, err := checker.Audit(run.Log)
				if err != nil {
					return res, fmt.Errorf("experiments: %s audit n=%d r=%d seed %d: %w", PartialName, n, factor, seed, err)
				}
				if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() || !rep.ExactlyOnce() || !rep.ShareRespected() {
					return res, fmt.Errorf("experiments: %s n=%d r=%d seed %d: audit violations: %s", PartialName, n, factor, seed, rep)
				}
				copies += run.UpdateCopies
				writes += uint64(run.Log.WritesIssued())
				fwds += run.Log.ReadFwdCount()
				delays += run.Log.ReadDelayCount()
				streams = append(streams, partialLinkStreams(run.Updates, shares, n)...)
			}
			if writes == 0 {
				return res, fmt.Errorf("experiments: %s n=%d r=%d: no writes issued", PartialName, n, factor)
			}
			clockB, _, _, err := codecCost(streams, protocol.MetaAuto)
			if err != nil {
				return res, fmt.Errorf("experiments: %s n=%d r=%d codec: %w", PartialName, n, factor, err)
			}
			nruns := float64(len(seeds))
			res.Rows = append(res.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(factor),
				fmt.Sprintf("%.1f", float64(copies)/float64(writes)),
				fmt.Sprintf("%.1f", storedVarsPerProc(shares)),
				fmt.Sprintf("%.1f", clockB),
				fmt.Sprintf("%.1f", float64(fwds)/nruns),
				fmt.Sprintf("%.1f", float64(delays)/nruns),
			})
		}
	}
	return res, nil
}

// storedVarsPerProc is the mean number of variables a process
// replicates under the assignment — its share of the memory.
func storedVarsPerProc(shares protocol.ShareSets) float64 {
	total := 0
	for p := 0; p < shares.NumProcs(); p++ {
		total += len(shares.LocalVars(p))
	}
	return float64(total) / float64(shares.NumProcs())
}

// partialLinkStreams groups updates into the exact per-link byte
// streams of a partially replicated run: sender p's link to q carries,
// in sequence order, only the updates whose variable q replicates.
// Unlike the broadcast case (senderStreams), a sender's outgoing links
// are NOT identical here, so every pair is enumerated.
func partialLinkStreams(updates map[history.WriteID]protocol.Update, shares protocol.ShareSets, n int) [][]protocol.Update {
	maxSeq := make([]int, n)
	for id := range updates {
		if id.Seq > maxSeq[id.Proc] {
			maxSeq[id.Proc] = id.Seq
		}
	}
	var out [][]protocol.Update
	for p := 0; p < n; p++ {
		if maxSeq[p] == 0 {
			continue
		}
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			var link []protocol.Update
			for seq := 1; seq <= maxSeq[p]; seq++ {
				u, ok := updates[history.WriteID{Proc: p, Seq: seq}]
				if !ok || !shares.Replicates(q, u.Var) {
					continue
				}
				link = append(link, u)
			}
			if len(link) > 0 {
				out = append(out, link)
			}
		}
	}
	return out
}

// CheckPartialRegression gates the partial-replication scorecard
// against the committed baseline: matching (procs, r) rows may not
// regress by more than tolerance (0.2 = 20%) on msgs/write or
// clock-B/op, and the headline fan-out and storage claims must hold in
// the CURRENT results — at 16 processes with r = 4, a write ships at
// most 4 update copies (vs 15 under full replication) and a process
// stores at most 2/7 of the full-replication footprint (a ≥3.5×
// reduction). Rows present in only one document are ignored, so
// extending the sweep doesn't break the gate. Improvements never fail.
func CheckPartialRegression(current []Result, baseline Scorecard, tolerance float64) error {
	base, err := partialCells(baseline.Experiments)
	if err != nil {
		return fmt.Errorf("experiments: baseline scorecard: %w", err)
	}
	if len(base) == 0 {
		return fmt.Errorf("experiments: baseline scorecard has no %s rows", PartialName)
	}
	cur, err := partialCells(current)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("experiments: current results have no %s rows", PartialName)
	}
	for key, want := range base {
		got, ok := cur[key]
		if !ok {
			continue
		}
		if ceiling := want.msgsPerWrite * (1 + tolerance); got.msgsPerWrite > ceiling {
			return fmt.Errorf("experiments: partial-replication regression at %s: %.1f msgs/write > %.1f (baseline %.1f + %.0f%% tolerance)",
				key, got.msgsPerWrite, ceiling, want.msgsPerWrite, tolerance*100)
		}
		if ceiling := want.clockB * (1 + tolerance); got.clockB > ceiling {
			return fmt.Errorf("experiments: partial-replication regression at %s: %.1f clock-B/op > %.1f (baseline %.1f + %.0f%% tolerance)",
				key, got.clockB, ceiling, want.clockB, tolerance*100)
		}
	}
	headline, ok := cur["16/4"]
	if !ok {
		return nil // sweep without the headline size; nothing more to assert
	}
	if headline.msgsPerWrite > 4.0 {
		return fmt.Errorf("experiments: partial replication at 16/4 ships %.1f msgs/write, more than the claimed ceiling of 4.0",
			headline.msgsPerWrite)
	}
	if full, ok := cur["16/16"]; ok && headline.storedVars*3.5 > full.storedVars {
		return fmt.Errorf("experiments: partial replication at 16/4 stores %.1f vars/proc vs %.1f under full replication — less than the claimed 3.5x reduction",
			headline.storedVars, full.storedVars)
	}
	return nil
}

// partialCell is one parsed (procs, r) row of the partial table.
type partialCell struct {
	msgsPerWrite, storedVars, clockB float64
}

// partialCells extracts "procs/r" → cell from a partial result.
func partialCells(results []Result) (map[string]partialCell, error) {
	out := map[string]partialCell{}
	for _, r := range results {
		if r.Name != PartialName {
			continue
		}
		procsCol, rCol, msgCol, storeCol, clockCol := -1, -1, -1, -1, -1
		for i, h := range r.Header {
			switch h {
			case "procs":
				procsCol = i
			case "r":
				rCol = i
			case "msgs/write":
				msgCol = i
			case "stored-vars/proc":
				storeCol = i
			case "clock-B/op":
				clockCol = i
			}
		}
		if procsCol < 0 || rCol < 0 || msgCol < 0 || storeCol < 0 || clockCol < 0 {
			return nil, fmt.Errorf("experiments: %s table lacks procs/r/msgs/write/stored-vars/proc/clock-B/op columns (header %v)", r.Name, r.Header)
		}
		for _, row := range r.Rows {
			if len(row) <= procsCol || len(row) <= rCol || len(row) <= msgCol || len(row) <= storeCol || len(row) <= clockCol {
				continue
			}
			var cell partialCell
			var err error
			if cell.msgsPerWrite, err = strconv.ParseFloat(row[msgCol], 64); err != nil {
				return nil, fmt.Errorf("experiments: %s msgs/write cell %q: %w", r.Name, row[msgCol], err)
			}
			if cell.storedVars, err = strconv.ParseFloat(row[storeCol], 64); err != nil {
				return nil, fmt.Errorf("experiments: %s stored-vars/proc cell %q: %w", r.Name, row[storeCol], err)
			}
			if cell.clockB, err = strconv.ParseFloat(row[clockCol], 64); err != nil {
				return nil, fmt.Errorf("experiments: %s clock-B/op cell %q: %w", r.Name, row[clockCol], err)
			}
			out[row[procsCol]+"/"+row[rCol]] = cell
		}
	}
	return out, nil
}
