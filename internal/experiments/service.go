package experiments

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
)

// ServiceName identifies the serving-tier scorecard experiment in
// dsmbench/v1 documents; CheckServiceRegression matches baseline and
// current results by it.
const ServiceName = "E-service"

// Service is the serving-tier load generator: a closed-loop
// multi-connection benchmark against a real dsmd-style server (TCP
// loopback, tagged pipelined wire protocol, per-replica write
// batching). Each connection multiplexes several sessions; every
// session runs a closed loop of token-carrying operations with a 3:1
// write:read mix, so each op pays the full round trip — encode, frame,
// socket, frontier admission, batch pump, response token — end to end.
// The ops/s column is what CI gates against BENCH_service.json.
func Service(sessionsPerConn, opsPerSession int) (Result, error) {
	r := Result{
		Name: ServiceName,
		Desc: fmt.Sprintf("dsmd serving tier, closed loop over TCP loopback (%d sessions/conn × %d ops, 3:1 write:read, session tokens)",
			sessionsPerConn, opsPerSession),
		Header: []string{"conns", "sessions", "ops", "elapsed", "ops/s"},
	}
	for _, conns := range []int{1, 4, 8} {
		row, err := serviceRun(conns, sessionsPerConn, opsPerSession)
		if err != nil {
			return r, fmt.Errorf("experiments: %s %d conns: %w", ServiceName, conns, err)
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

func serviceRun(conns, sessionsPerConn, opsPerSession int) ([]string, error) {
	const procs, vars = 3, 16
	cl, err := core.NewCluster(core.Config{
		Processes: procs, Variables: vars, Protocol: protocol.OptP, FIFO: true,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	srv, err := service.New(service.Config{Cluster: cl})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	clients := make([]*client.Client, conns)
	for i := range clients {
		if clients[i], err = client.Dial(srv.Addr()); err != nil {
			return nil, err
		}
		defer clients[i].Close()
	}

	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conns*sessionsPerConn)
	for ci, c := range clients {
		for si := 0; si < sessionsPerConn; si++ {
			wg.Add(1)
			go func(ci, si int, c *client.Client) {
				defer wg.Done()
				s := c.Session()
				// One writer per (conn, session) slot: distinct variables
				// where possible, distinct values always.
				x := (ci*sessionsPerConn + si) % vars
				base := int64(ci*1_000_000 + si*10_000)
				for i := 1; i <= opsPerSession; i++ {
					var err error
					if i%4 == 0 {
						_, err = s.Read(ctx, x)
					} else {
						err = s.Write(ctx, x, base+int64(i))
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}(ci, si, c)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	// The drain is part of the served work: every response flushed.
	sctx, cancel := context.WithTimeout(ctx, time.Minute)
	err = srv.Shutdown(sctx)
	cancel()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	qctx, cancel := context.WithTimeout(ctx, time.Minute)
	err = cl.Quiesce(qctx)
	cancel()
	if err != nil {
		return nil, err
	}
	total := conns * sessionsPerConn * opsPerSession
	return []string{
		fmt.Sprint(conns),
		fmt.Sprint(conns * sessionsPerConn),
		fmt.Sprint(total),
		elapsed.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
	}, nil
}

// CheckServiceRegression compares the ops/s column of the E-service
// experiment in current against the committed baseline scorecard and
// reports an error if any connection count regressed by more than
// tolerance (0.2 = 20%). Rows present in only one of the two documents
// are ignored; improvements never fail.
func CheckServiceRegression(current []Result, baseline Scorecard, tolerance float64) error {
	base, err := opsPerSecByName(baseline.Experiments, ServiceName)
	if err != nil {
		return fmt.Errorf("experiments: baseline scorecard: %w", err)
	}
	if len(base) == 0 {
		return fmt.Errorf("experiments: baseline scorecard has no %s rows", ServiceName)
	}
	cur, err := opsPerSecByName(current, ServiceName)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("experiments: current results have no %s rows", ServiceName)
	}
	for conns, want := range base {
		got, ok := cur[conns]
		if !ok {
			continue
		}
		if floor := want * (1 - tolerance); got < floor {
			return fmt.Errorf("experiments: serving-tier regression at %s conns: %.0f ops/s < %.0f (baseline %.0f - %.0f%% tolerance)",
				conns, got, floor, want, tolerance*100)
		}
	}
	return nil
}

// opsPerSecByName extracts conns → ops/s from the named experiment's
// rows (E-service and E-trace share the column convention).
func opsPerSecByName(results []Result, name string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, r := range results {
		if r.Name != name {
			continue
		}
		connsCol, opsCol := -1, -1
		for i, h := range r.Header {
			switch h {
			case "conns":
				connsCol = i
			case "ops/s":
				opsCol = i
			}
		}
		if connsCol < 0 || opsCol < 0 {
			return nil, fmt.Errorf("experiments: %s table lacks conns/ops-per-sec columns (header %v)", r.Name, r.Header)
		}
		for _, row := range r.Rows {
			if len(row) <= connsCol || len(row) <= opsCol {
				continue
			}
			v, err := strconv.ParseFloat(row[opsCol], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s ops/s cell %q: %w", r.Name, row[opsCol], err)
			}
			out[row[connsCol]] = v
		}
	}
	return out, nil
}
