package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	c.Add(5)
	if got := c.Value(); got != 8005 {
		t.Errorf("counter after Add(5) = %d, want 8005", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Errorf("gauge after Set(-3) = %d, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5622 {
		t.Errorf("sum = %d, want 5622", got)
	}
	// Bounds are inclusive: 10 lands in the first bucket, 11 in the
	// second; 5000 overflows into +Inf. Snapshot is cumulative.
	want := []uint64{2, 4, 5, 6}
	got := h.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 300})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(int64(i*3 + 1)) // 1..298, uniform-ish over first three buckets
	}
	p50 := h.Quantile(0.50)
	if p50 < 100 || p50 > 200 {
		t.Errorf("p50 = %d, want within (100, 200]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 200 || p99 > 300 {
		t.Errorf("p99 = %d, want within (200, 300]", p99)
	}
	// Overflow samples clamp to the last bound.
	h2 := NewHistogram([]int64{10})
	h2.Observe(1_000_000)
	if got := h2.Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %d, want clamp to 10", got)
	}
}

func TestLabelKeyCanonical(t *testing.T) {
	a := labelKey([]Label{L("proc", "0"), L("protocol", "optp")})
	b := labelKey([]Label{L("protocol", "optp"), L("proc", "0")})
	if a != b {
		t.Errorf("label order changed the key: %q vs %q", a, b)
	}
	if labelKey(nil) != "" {
		t.Errorf("empty labels should render empty")
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help", L("p", "1"))
	c2 := r.Counter("x_total", "other help ignored", L("p", "1"))
	if c1 != c2 {
		t.Errorf("re-registering the same series returned a different counter")
	}
	c3 := r.Counter("x_total", "help", L("p", "2"))
	if c1 == c3 {
		t.Errorf("different labels returned the same counter")
	}
	h1 := r.Histogram("h_ns", "help", []int64{1, 2})
	h2 := r.Histogram("h_ns", "help", []int64{1, 2})
	if h1 != h2 {
		t.Errorf("re-registering the same histogram returned a different instance")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter", L("proc", "0")).Add(7)
	r.Gauge("b_now", "a gauge").Set(-2)
	r.GaugeFunc("c_now", "a callback gauge", func() int64 { return 42 })
	h := r.Histogram("d_ns", "a histogram", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total a counter",
		"# TYPE a_total counter",
		`a_total{proc="0"} 7`,
		"b_now -2",
		"c_now 42",
		`d_ns_bucket{le="10"} 1`,
		`d_ns_bucket{le="100"} 2`,
		`d_ns_bucket{le="+Inf"} 3`,
		"d_ns_sum 5055",
		"d_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJoinLabelsSorted(t *testing.T) {
	got := joinLabels(`proc="0",protocol="optp"`, L("le", "10"))
	want := `le="10",proc="0",protocol="optp"`
	if got != want {
		t.Errorf("joinLabels = %q, want %q", got, want)
	}
	if got := joinLabels("", L("le", "+Inf")); got != `le="+Inf"` {
		t.Errorf("joinLabels on empty = %q", got)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pe_total", "x").Inc()
	// A second publish under the same name must be a silent no-op, not
	// the panic expvar.Publish raises on duplicates.
	r.PublishExpvar("dsm_test_pe")
	NewRegistry().PublishExpvar("dsm_test_pe")
}
