package history

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPropertyFastDenseEquivalence pins every query of the vector-
// frontier engine to the dense-bitset reference on random histories:
// Before/Concurrent over all pairs, causal pasts and their sizes,
// WritesBefore, the WriteGraph edge set, and per-read legality verdicts
// including the exact witness and reason strings.
func TestPropertyFastDenseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		nProcs := 2 + rng.Intn(4)
		h := randomHistory(rng, nProcs, 1+rng.Intn(4), 10+rng.Intn(60))
		fast, err := h.Causality()
		if err != nil {
			t.Fatalf("trial %d: Causality: %v", trial, err)
		}
		dense, err := h.DenseCausality()
		if err != nil {
			t.Fatalf("trial %d: DenseCausality: %v", trial, err)
		}
		n := h.NumOps()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if fb, db := fast.Before(i, j), dense.Before(i, j); fb != db {
					t.Fatalf("trial %d: Before(%d,%d): fast=%v dense=%v\n%v", trial, i, j, fb, db, h)
				}
				if fc, dc := fast.Concurrent(i, j), dense.Concurrent(i, j); fc != dc {
					t.Fatalf("trial %d: Concurrent(%d,%d): fast=%v dense=%v", trial, i, j, fc, dc)
				}
			}
			if fp, dp := fast.CausalPast(i), dense.CausalPast(i); !reflect.DeepEqual(fp, dp) {
				t.Fatalf("trial %d: CausalPast(%d): fast=%v dense=%v", trial, i, fp, dp)
			}
			if fs, ds := fast.CausalPastSize(i), dense.CausalPastSize(i); fs != ds {
				t.Fatalf("trial %d: CausalPastSize(%d): fast=%d dense=%d", trial, i, fs, ds)
			}
			if fw, dw := fast.WritesBefore(i), dense.WritesBefore(i); !reflect.DeepEqual(fw, dw) {
				t.Fatalf("trial %d: WritesBefore(%d): fast=%v dense=%v", trial, i, fw, dw)
			}
		}
		if fe, de := fast.WriteGraph().EdgeList(), dense.WriteGraph().EdgeList(); !reflect.DeepEqual(fe, de) {
			t.Fatalf("trial %d: WriteGraph edges differ:\nfast=%v\ndense=%v\n%v", trial, fe, de, h)
		}
		for i, o := range h.Ops() {
			if !o.IsRead() {
				continue
			}
			fok, fv := fast.LegalRead(i)
			dok, dv := dense.LegalRead(i)
			if fok != dok || fv != dv {
				t.Fatalf("trial %d: LegalRead(%d): fast=(%v,%+v) dense=(%v,%+v)\n%v", trial, i, fok, fv, dok, dv, h)
			}
		}
		if fv, dv := fast.CheckCausallyConsistent(), dense.CheckCausallyConsistent(); !reflect.DeepEqual(fv, dv) {
			t.Fatalf("trial %d: CheckCausallyConsistent: fast=%v dense=%v", trial, fv, dv)
		}
	}
}

// TestPropertyIllegalReadEquivalence biases the generator toward stale
// reads (reading old writes on hot variables) so the equivalence check
// above also covers the violating branches of LegalRead.
func TestPropertyIllegalReadEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sawViolation := false
	for trial := 0; trial < 40; trial++ {
		b := NewBuilder(3)
		val := int64(0)
		type past struct {
			x  int
			v  int64
			id WriteID
		}
		var written []past
		for i := 0; i < 30; i++ {
			p := rng.Intn(3)
			if rng.Intn(3) == 0 || len(written) == 0 {
				val++
				x := rng.Intn(2) // hot: two variables, many overwrites
				written = append(written, past{x, val, b.Write(p, x, val)})
			} else {
				w := written[rng.Intn(len(written))] // any past write, often stale
				b.ReadFrom(p, w.x, w.v, w.id)
			}
		}
		h := b.MustFinish()
		fast, err := h.Causality()
		if err != nil {
			t.Fatal(err)
		}
		dense, err := h.DenseCausality()
		if err != nil {
			t.Fatal(err)
		}
		fv, dv := fast.CheckCausallyConsistent(), dense.CheckCausallyConsistent()
		if !reflect.DeepEqual(fv, dv) {
			t.Fatalf("trial %d: violations differ:\nfast=%v\ndense=%v\n%v", trial, fv, dv, h)
		}
		if len(fv) > 0 {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Fatal("generator never produced an illegal read; test is vacuous")
	}
}

// TestDenseCausalityCyclic pins both engines to the same ErrCyclic
// verdict on a history whose read-from edge points forward in process
// order, closing a cycle with process order.
func TestDenseCausalityCyclic(t *testing.T) {
	// p1: r(x)5 ; w1#1(x)5 — the read reads from its own later write.
	locals := [][]Op{{
		{Kind: Read, Proc: 0, Var: 0, Val: 5, From: WriteID{Proc: 0, Seq: 1}},
		{Kind: Write, Proc: 0, Var: 0, Val: 5, ID: WriteID{Proc: 0, Seq: 1}},
	}}
	h, err := FromOps(locals)
	if err != nil {
		t.Fatalf("FromOps: %v", err)
	}
	if _, err := h.Causality(); err == nil {
		t.Fatal("Causality: want ErrCyclic, got nil")
	}
	if _, err := h.DenseCausality(); err == nil {
		t.Fatal("DenseCausality: want ErrCyclic, got nil")
	}
}
