// Package paperrepro reproduces every table and figure of the paper
// mechanically: it scripts the worked history Ĥ1 (Example 1), pins the
// message arrival orders of Figures 1–3 and 6, runs them through the
// deterministic simulator under the relevant protocol, and renders the
// paper's artifacts from the recorded traces.
//
// Artifact index (see DESIGN.md §2):
//
//	Table 1  — X_co-safe(e) for every apply event of Ĥ1
//	Table 2  — X_ANBKH(e) for the Figure 3 run
//	Figure 1 — two receipt/apply sequences at p3 compliant with Ĥ1
//	Figure 2 — a safe-but-not-optimal run: one unnecessary delay
//	Figure 3 — the ANBKH run (false causality at p3)
//	Figure 6 — the OptP run (b applies before c; Write_co evolution)
//	Figure 7 — the write causality graph of Ĥ1
package paperrepro

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// The four writes of Ĥ1.
var (
	// WA is w1(x1)a.
	WA = history.WriteID{Proc: 0, Seq: 1}
	// WC is w1(x1)c.
	WC = history.WriteID{Proc: 0, Seq: 2}
	// WB is w2(x2)b.
	WB = history.WriteID{Proc: 1, Seq: 1}
	// WD is w3(x2)d.
	WD = history.WriteID{Proc: 2, Seq: 1}
)

// H1Scripts returns the process scripts realizing Ĥ1:
//
//	p1: w1(x1)a; w1(x1)c
//	p2: r2(x1)a; w2(x2)b   — b is issued only after c is applied at p2,
//	                         matching Figures 3 and 6 (send(c) → send(b))
//	p3: r3(x2)b; w3(x2)d
//
// readDelay inserts think time at p3 between observing b and reading
// it, which selects between the two Figure 1 sequences.
func H1Scripts(readDelay int64) []sim.Script {
	p3 := sim.NewScript().Await(1, history.ValB)
	if readDelay > 0 {
		p3 = p3.Sleep(readDelay)
	}
	p3 = p3.Read(1).Write(1, history.ValD)
	return []sim.Script{
		sim.NewScript().Write(0, history.ValA).Write(0, history.ValC),
		sim.NewScript().Await(0, history.ValA).Read(0).Await(0, history.ValC).Write(1, history.ValB),
		p3,
	}
}

// Fig36Latency pins the arrival order of Figures 3 and 6 at p3:
// b (t=30), then a (t=40), then c (t=60).
func Fig36Latency() *sim.ScriptedLatency {
	return sim.NewScriptedLatency(10).
		Set(WA, 1, 10).Set(WA, 2, 40).
		Set(WC, 1, 20).Set(WC, 2, 60).
		Set(WB, 0, 10).Set(WB, 2, 10) // b is sent at t=20
}

// Fig1Run1Latency delivers in causal-friendly order at p3:
// a (t=10), b (t=30), c (t=50) — run (1) of Figure 1, no delays.
func Fig1Run1Latency() *sim.ScriptedLatency {
	return sim.NewScriptedLatency(10).
		Set(WA, 1, 10).Set(WA, 2, 10).
		Set(WC, 1, 20).Set(WC, 2, 50).
		Set(WB, 0, 10).Set(WB, 2, 10)
}

// Fig2Latency delivers a (t=15) before b (t=30) before c (t=60) at p3:
// under a safe-but-not-optimal protocol (enabling set includes c), b is
// delayed although every write in its causal past is already applied —
// the unnecessary delay of Section 3.5. Under OptP the same run has no
// delay at all.
func Fig2Latency() *sim.ScriptedLatency {
	return sim.NewScriptedLatency(10).
		Set(WA, 1, 10).Set(WA, 2, 15).
		Set(WC, 1, 20).Set(WC, 2, 60).
		Set(WB, 0, 10).Set(WB, 2, 10)
}

// RunH1 executes the Ĥ1 scenario under the given protocol, latency and
// p3 read delay.
func RunH1(kind protocol.Kind, lat sim.Latency, readDelay int64) (*sim.Result, error) {
	res, err := sim.Run(sim.Config{
		Procs: 3, Vars: 2, Protocol: kind, Latency: lat,
	}, H1Scripts(readDelay))
	if err != nil {
		return nil, fmt.Errorf("paperrepro: H1 run (%v): %w", kind, err)
	}
	return res, nil
}

// valName renders Ĥ1 values as the paper's letters.
func valName(v int64) string {
	if s, ok := history.ValueName(v); ok {
		return s
	}
	return fmt.Sprintf("%d", v)
}

// writeName renders a write of Ĥ1 in paper notation, e.g. "w1(x1)a".
func writeName(id history.WriteID) string {
	switch id {
	case WA:
		return "w1(x1)a"
	case WC:
		return "w1(x1)c"
	case WB:
		return "w2(x2)b"
	case WD:
		return "w3(x2)d"
	default:
		return id.String()
	}
}

// setName renders a set of writes as "{apply_k(w...), ...}".
func setName(k int, ids []history.WriteID) string {
	if len(ids) == 0 {
		return "∅"
	}
	s := "{"
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("apply%d(%s)", k+1, writeName(id))
	}
	return s + "}"
}
