package history

import (
	"errors"
	"strings"
	"testing"
)

func TestH1Shape(t *testing.T) {
	h, ids := H1()
	if h.NumProcs() != 3 {
		t.Fatalf("NumProcs = %d", h.NumProcs())
	}
	if h.NumVars != 2 {
		t.Fatalf("NumVars = %d", h.NumVars)
	}
	if h.NumOps() != 6 {
		t.Fatalf("NumOps = %d", h.NumOps())
	}
	want := [4]WriteID{{0, 1}, {0, 2}, {1, 1}, {2, 1}}
	if ids != want {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	s := h.String()
	for _, frag := range []string{"w1(x1)1", "w1(x1)3", "r2(x1)1", "w2(x2)2", "r3(x2)2", "w3(x2)4"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestBuilderInfersReadFrom(t *testing.T) {
	h, ids := H1()
	ops := h.Ops()
	// r2(x1)a is op index 2 (p1's first op after p0's two).
	r2 := ops[2]
	if !r2.IsRead() || r2.From != ids[0] {
		t.Fatalf("r2 = %+v, want From=%v", r2, ids[0])
	}
	r3 := ops[4]
	if r3.From != ids[2] {
		t.Fatalf("r3 From = %v, want %v", r3.From, ids[2])
	}
}

func TestBuilderDuplicateValue(t *testing.T) {
	b := NewBuilder(2)
	b.Write(0, 0, 5)
	b.Write(1, 0, 5)
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected duplicate-value error")
	}
}

func TestBuilderUnknownReadValue(t *testing.T) {
	b := NewBuilder(1)
	b.Read(0, 0, 99)
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected unknown-value error")
	}
}

func TestBuilderBottomRead(t *testing.T) {
	b := NewBuilder(1)
	b.Read(0, 0, 0)
	h, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if op := h.Ops()[0]; !op.From.IsBottom() {
		t.Fatalf("From = %v, want ⊥", op.From)
	}
}

func TestFromOpsValidation(t *testing.T) {
	w := Op{Kind: Write, Proc: 0, Var: 0, Val: 1, ID: WriteID{0, 1}}
	t.Run("wrong proc", func(t *testing.T) {
		_, err := FromOps([][]Op{{{Kind: Write, Proc: 1, Var: 0, Val: 1, ID: WriteID{1, 1}}}})
		if err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("bad seq", func(t *testing.T) {
		_, err := FromOps([][]Op{{{Kind: Write, Proc: 0, Var: 0, Val: 1, ID: WriteID{0, 7}}}})
		if !errors.Is(err, ErrBadSeq) {
			t.Fatalf("err = %v, want ErrBadSeq", err)
		}
	})
	t.Run("unknown read-from", func(t *testing.T) {
		_, err := FromOps([][]Op{{w, {Kind: Read, Proc: 0, Var: 0, Val: 1, From: WriteID{2, 9}}}})
		if !errors.Is(err, ErrUnknownWrite) {
			t.Fatalf("err = %v, want ErrUnknownWrite", err)
		}
	})
	t.Run("var mismatch", func(t *testing.T) {
		_, err := FromOps([][]Op{{w, {Kind: Read, Proc: 0, Var: 1, Val: 1, From: w.ID}}})
		if !errors.Is(err, ErrVarMismatch) {
			t.Fatalf("err = %v, want ErrVarMismatch", err)
		}
	})
	t.Run("val mismatch", func(t *testing.T) {
		_, err := FromOps([][]Op{{w, {Kind: Read, Proc: 0, Var: 0, Val: 2, From: w.ID}}})
		if !errors.Is(err, ErrValMismatch) {
			t.Fatalf("err = %v, want ErrValMismatch", err)
		}
	})
}

func TestGlobalIndexRoundTrip(t *testing.T) {
	h, _ := H1()
	for i := 0; i < h.NumOps(); i++ {
		ref := h.Ref(i)
		if gi := h.GlobalIndex(ref); gi != i {
			t.Fatalf("GlobalIndex(Ref(%d)) = %d", i, gi)
		}
	}
}

func TestWritesList(t *testing.T) {
	h, _ := H1()
	ws := h.Writes()
	if len(ws) != 4 {
		t.Fatalf("Writes = %v", ws)
	}
	for _, i := range ws {
		if !h.Ops()[i].IsWrite() {
			t.Fatalf("non-write at %d", i)
		}
	}
}

func TestWriteIndexUnknown(t *testing.T) {
	h, _ := H1()
	if h.WriteIndex(WriteID{9, 9}) != -1 {
		t.Fatal("unknown WriteID should map to -1")
	}
	if h.WriteIndex(Bottom) != -1 {
		t.Fatal("Bottom should map to -1")
	}
}

func TestOpString(t *testing.T) {
	w := Op{Kind: Write, Proc: 0, Var: 1, Val: 7, ID: WriteID{0, 1}}
	if w.String() != "w1(x2)7" {
		t.Fatalf("String = %q", w.String())
	}
	r := Op{Kind: Read, Proc: 2, Var: 0, Val: 7}
	if r.String() != "r3(x1)7" {
		t.Fatalf("String = %q", r.String())
	}
	if Bottom.String() != "⊥" {
		t.Fatalf("Bottom String = %q", Bottom.String())
	}
	if (WriteID{1, 2}).String() != "w2#2" {
		t.Fatalf("WriteID String = %q", WriteID{1, 2}.String())
	}
	if Write.String() != "write" || Read.String() != "read" {
		t.Fatal("Kind strings wrong")
	}
}
