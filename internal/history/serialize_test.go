package history

import (
	"math/rand"
	"testing"
)

func TestH1Serializable(t *testing.T) {
	h, _ := H1()
	c, err := h.Causality()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Serializable(32)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Ĥ1 must be serializable")
	}
	for p := 0; p < 3; p++ {
		order, ok, err := c.CausalSerialization(p, 32)
		if err != nil || !ok {
			t.Fatalf("p%d: %v %v", p+1, ok, err)
		}
		if err := c.VerifySerialization(p, order); err != nil {
			t.Fatalf("p%d: %v", p+1, err)
		}
	}
}

// Concurrent writes read in opposite orders by different processes are
// serializable — each process picks its own write order.
func TestOppositeOrdersSerializable(t *testing.T) {
	b := NewBuilder(4)
	wa := b.Write(0, 0, 1)
	wb := b.Write(1, 0, 2)
	b.ReadFrom(2, 0, 1, wa)
	b.ReadFrom(2, 0, 2, wb)
	b.ReadFrom(3, 0, 2, wb)
	b.ReadFrom(3, 0, 1, wa)
	h := b.MustFinish()
	c, _ := h.Causality()
	ok, err := c.Serializable(32)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("opposite read orders must be serializable")
	}
}

// The definitional gap: oscillating reads of two CONCURRENT writes are
// legal per Definition 1 (neither write is in the causal past of the
// other, so nothing is "overwritten") but admit no serialization — the
// Ahamad et al. definition is strictly stronger. Protocol executions
// never produce this pattern (replicas overwrite monotonically).
func TestOscillatingReadsLegalButNotSerializable(t *testing.T) {
	b := NewBuilder(3)
	wa := b.Write(0, 0, 1)
	wb := b.Write(1, 0, 2)
	b.ReadFrom(2, 0, 1, wa)
	b.ReadFrom(2, 0, 2, wb)
	b.ReadFrom(2, 0, 1, wa) // back to a — no single order can do this
	h := b.MustFinish()
	c, err := h.Causality()
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsCausallyConsistent() {
		t.Fatal("oscillating reads are legal per Definition 1 (the writes are concurrent)")
	}
	ok, err := c.Serializable(32)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("oscillating reads must not be serializable")
	}
}

// A stale read (illegal per Definition 1) is also non-serializable:
// serializability ⇒ legality.
func TestStaleReadNotSerializable(t *testing.T) {
	b := NewBuilder(2)
	w1 := b.Write(0, 0, 1)
	b.Write(0, 0, 2)
	b.Read(1, 0, 2)
	b.ReadFrom(1, 0, 1, w1)
	h := b.MustFinish()
	c, _ := h.Causality()
	ok, err := c.Serializable(32)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("stale read serialized")
	}
}

// Property: serializable ⇒ every read legal (the implication direction
// that does hold), on random small histories.
func TestSerializableImpliesLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		h := randomHistory(rng, 2+rng.Intn(2), 2, 8+rng.Intn(6))
		c, err := h.Causality()
		if err != nil {
			t.Fatal(err)
		}
		ok, err := c.Serializable(24)
		if err != nil {
			continue // view too large; skip
		}
		checked++
		if ok && !c.IsCausallyConsistent() {
			t.Fatalf("trial %d: serializable but illegal reads:\n%s", trial, h)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d trials checked", checked)
	}
}

func TestVerifySerializationRejects(t *testing.T) {
	h, _ := H1()
	c, _ := h.Causality()
	order, ok, err := c.CausalSerialization(0, 32)
	if err != nil || !ok {
		t.Fatal("no serialization for p1")
	}
	// Wrong length.
	if err := c.VerifySerialization(0, order[:len(order)-1]); err == nil {
		t.Error("short order accepted")
	}
	// Duplicated op.
	dup := append(append([]int{}, order[:len(order)-1]...), order[0])
	if err := c.VerifySerialization(0, dup); err == nil {
		t.Error("duplicate accepted")
	}
	// Reversed order breaks →co.
	rev := make([]int, len(order))
	for i, v := range order {
		rev[len(order)-1-i] = v
	}
	if err := c.VerifySerialization(0, rev); err == nil {
		t.Error("reversed order accepted")
	}
	// An op outside the view.
	foreign := append(append([]int{}, order[:len(order)-1]...), h.GlobalIndex(OpRef{Proc: 1, Index: 0}))
	if err := c.VerifySerialization(0, foreign); err == nil {
		t.Error("foreign op accepted")
	}
}

func TestSerializationViewTooLarge(t *testing.T) {
	h, _ := H1()
	c, _ := h.Causality()
	if _, _, err := c.CausalSerialization(0, 2); err == nil {
		t.Fatal("expected limit error")
	}
}
