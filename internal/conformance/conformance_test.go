package conformance

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/vclock"
)

// laggy builds the standard adversarial cluster: every inter-replica
// message takes a fixed 40ms, so a replica switch without a token is
// all but guaranteed to land ahead of propagation.
func laggy(t *testing.T, procs int) *Harness {
	return New(t,
		core.Config{
			Processes: procs, Variables: 4,
			MinDelay: 40 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Seed: 11,
		},
		service.Config{WaitTimeout: 15 * time.Second})
}

// Read-your-writes across a migration to a lagging replica: the
// session writes at p0 and immediately reads at p1/p2, which cannot
// have applied the write yet — the token must make the read block
// until they have.
func TestReadYourWritesAcrossLaggingReplicas(t *testing.T) {
	h := laggy(t, 3)
	c := h.Dial()
	ctx := context.Background()
	s := h.Track("rw", c.Session())
	for round := int64(1); round <= 3; round++ {
		if err := s.Use(0).Write(ctx, 0, round); err != nil {
			t.Fatalf("write: %v", err)
		}
		for p := 1; p < 3; p++ {
			v, err := s.Use(p).Read(ctx, 0)
			if err != nil {
				t.Fatalf("read at %d: %v", p, err)
			}
			if v != round {
				t.Fatalf("read at %d = %d, want %d", p, v, round)
			}
		}
	}
	h.MustCheck()
}

// The deliberately-broken mode: a session that carries no token gets
// no guarantees on the same lagging cluster, and the suite must say
// so. If this test ever finds a clean trace the conformance checker
// has lost its teeth.
func TestNoTokenModeIsCaught(t *testing.T) {
	h := laggy(t, 2)
	c := h.Dial()
	ctx := context.Background()
	s := h.Track("broken", c.NoTokenSession())
	for round := int64(1); round <= 5; round++ {
		if err := s.Use(0).Write(ctx, 0, round); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Immediate read at p1: the write is still ~40ms from applying.
		if _, err := s.Use(1).Read(ctx, 0); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	vs := Check(h.Ops())
	if len(vs) == 0 {
		t.Fatal("no-token session produced a clean trace on a 40ms-lag cluster; the suite failed to catch the broken mode")
	}
	for _, v := range vs {
		if v.Guarantee != "read-your-writes" && v.Guarantee != "monotonic-reads" {
			t.Fatalf("unexpected violation class %q", v.Guarantee)
		}
	}
}

// Monotonic reads while hopping replicas: once the session has seen
// round r at one replica, no later read anywhere may show < r.
func TestMonotonicReadsAcrossMigration(t *testing.T) {
	h := laggy(t, 3)
	c := h.Dial()
	ctx := context.Background()
	w := h.Track("writer", c.Session())
	r := h.Track("reader", c.Session())
	for round := int64(1); round <= 4; round++ {
		if err := w.Use(0).Write(ctx, 1, round); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Reader observes the round at p0 (fresh), then must see it again
		// at the lagging replicas.
		for _, p := range []int{0, 1, 2, 1} {
			v, err := r.Use(p).Read(ctx, 1)
			if err != nil {
				t.Fatalf("read at %d: %v", p, err)
			}
			if v < round && p == 0 {
				// p0 served the write itself; anything older is a bug the
				// checker will also flag.
				t.Fatalf("read at writer replica = %d, want ≥ %d", v, round)
			}
		}
	}
	h.MustCheck()
}

// Causal ordering across replica switches, end to end: a round-robin
// session workload over all replicas must leave a cluster history the
// offline checker audits as causally consistent, and a clean session
// trace.
func TestReplicaSwitchAuditsCausal(t *testing.T) {
	h := New(t,
		core.Config{
			Processes: 3, Variables: 4,
			MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 23,
		},
		service.Config{BatchWindow: 200 * time.Microsecond})
	c := h.Dial()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := h.Track([]string{"s0", "s1", "s2"}[i], c.Session())
			for round := int64(1); round <= 8; round++ {
				p := (int(round) + i) % 3
				if err := s.Use(p).Write(ctx, i, int64(i)*100+round); err != nil {
					t.Errorf("session %d write: %v", i, err)
					return
				}
				if _, err := s.Use((p+1)%3).Read(ctx, (i+1)%3); err != nil {
					t.Errorf("session %d read: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	h.MustCheck()

	qctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := h.Cluster.Quiesce(qctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	rep, err := h.Cluster.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() {
		t.Fatalf("cluster audit: safe=%v consistent=%v\n%s", rep.Safe(), rep.CausallyConsistent(), rep)
	}
}

// Tokens are portable causal pasts: a second client on a second
// connection resumes the first session's token and must see its
// writes, even pinned to a lagging replica.
func TestTokenHandoffBetweenClients(t *testing.T) {
	h := laggy(t, 2)
	ctx := context.Background()
	a := h.Dial().Session()
	if err := a.Use(0).Write(ctx, 2, 77); err != nil {
		t.Fatalf("write: %v", err)
	}
	tok := a.Token()

	b := h.Dial().Session()
	b.Resume(tok)
	v, err := b.Use(1).Read(ctx, 2)
	if err != nil {
		t.Fatalf("read with resumed token: %v", err)
	}
	if v != 77 {
		t.Fatalf("read with resumed token = %d, want 77: the handed-off token did not carry the write", v)
	}
}

// Concurrent sessions multiplexed on one connection must each keep
// their own guarantees while pipelining freely.
func TestConcurrentSessionsOneConnection(t *testing.T) {
	h := New(t,
		core.Config{
			Processes: 3, Variables: 8,
			MinDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 5,
		},
		service.Config{BatchWindow: 200 * time.Microsecond})
	c := h.Dial()
	ctx := context.Background()
	names := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			s := h.Track(name, c.Session())
			x := i // single writer per variable
			for round := int64(1); round <= 10; round++ {
				if err := s.Write(ctx, x, round); err != nil {
					t.Errorf("%s write: %v", name, err)
					return
				}
				v, err := s.Read(ctx, x)
				if err != nil {
					t.Errorf("%s read: %v", name, err)
					return
				}
				if v != round {
					t.Errorf("%s read own write: %d, want %d", name, v, round)
					return
				}
			}
		}(i, name)
	}
	wg.Wait()
	h.MustCheck()
}

// Token replay and forgery: replaying an old token is harmless (the
// frontier already dominates it), a token claiming writes that never
// happened is refused, and the server stays healthy through both.
func TestTokenReplayAndForgery(t *testing.T) {
	h := New(t,
		core.Config{Processes: 2, Variables: 2},
		service.Config{})
	c := h.Dial()
	ctx := context.Background()
	s := c.Session()
	if err := s.Write(ctx, 0, 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	old := s.Token()
	if err := s.Write(ctx, 0, 2); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Replay: an older token is a weaker demand; it must be served.
	resp, err := c.Do(ctx, protocol.Request{
		Kind: protocol.ReqRead, Proc: -1, Var: 0, Token: old,
	})
	if err != nil {
		t.Fatalf("replayed token read: %v", err)
	}
	if resp.Val != 2 {
		t.Fatalf("replayed token read = %d, want 2", resp.Val)
	}

	// Forgery: a token counting writes that never happened can never be
	// satisfied; NoWait surfaces that as Unavailable immediately.
	forged := vclock.VC{1 << 30, 1 << 30}
	_, err = c.Do(ctx, protocol.Request{
		Kind: protocol.ReqRead, Proc: -1, Var: 0, Token: forged, NoWait: true,
	})
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("forged token read = %v, want ErrUnavailable", err)
	}

	// The server shrugs it off.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after forgery: %v", err)
	}
	if v, err := s.Read(ctx, 0); err != nil || v != 2 {
		t.Fatalf("session read after forgery = %d, %v; want 2", v, err)
	}
}
