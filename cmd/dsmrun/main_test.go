package main

import (
	"reflect"
	"testing"
)

func TestParseShareSets(t *testing.T) {
	got, err := parseShareSets("0,1/1,2/2,0", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {1, 2}, {2, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseShareSets = %v, want %v", got, want)
	}
	// A single-process group is the r=1 extreme, still valid.
	if _, err := parseShareSets("0/1", 2, 2); err != nil {
		t.Fatalf("singleton groups rejected: %v", err)
	}
}

func TestParseShareSetsErrors(t *testing.T) {
	for name, c := range map[string]struct {
		s           string
		procs, vars int
	}{
		"group count != vars":  {"0,1/1,2", 3, 3},
		"process out of range": {"0,1/1,3/2,0", 3, 3},
		"negative process":     {"0,-1/1,2/2,0", 3, 3},
		"not a number":         {"0,x/1,2/2,0", 3, 3},
		"empty group":          {"0,1//2,0", 3, 3},
	} {
		if _, err := parseShareSets(c.s, c.procs, c.vars); err == nil {
			t.Errorf("%s: parseShareSets(%q, %d, %d) accepted", name, c.s, c.procs, c.vars)
		}
	}
}
