package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// byProtocol indexes rows of a sweep table by (sweep value, protocol).
func byProtocol(r Result) map[[2]string][]string {
	out := make(map[[2]string][]string)
	for _, row := range r.Rows {
		out[[2]string{row[0], row[1]}] = row
	}
	return out
}

func TestJitterShape(t *testing.T) {
	r, err := Jitter()
	if err != nil {
		t.Fatal(err)
	}
	idx := byProtocol(r)
	for _, j := range []string{"10", "50", "100", "200", "400"} {
		opt := idx[[2]string{j, "OptP"}]
		an := idx[[2]string{j, "ANBKH"}]
		if opt == nil || an == nil {
			t.Fatalf("missing rows for jitter %s:\n%s", j, r)
		}
		// Headline claim: OptP never delays more than ANBKH, and its
		// unnecessary count is exactly 0.
		if cell(t, opt[2]) > cell(t, an[2]) {
			t.Errorf("jitter %s: OptP delays %s > ANBKH %s", j, opt[2], an[2])
		}
		if cell(t, opt[3]) != 0 {
			t.Errorf("jitter %s: OptP unnecessary = %s", j, opt[3])
		}
	}
	// The gap must be visible at high jitter.
	hi := idx[[2]string{"400", "ANBKH"}]
	lo := idx[[2]string{"400", "OptP"}]
	if cell(t, hi[2]) <= cell(t, lo[2]) {
		t.Errorf("no gap at jitter 400: ANBKH %s vs OptP %s\n%s", hi[2], lo[2], r)
	}
	if !strings.Contains(r.String(), "E1-jitter") {
		t.Error("render missing name")
	}
}

func TestProcCountShape(t *testing.T) {
	if testing.Short() {
		t.Skip("24-process sweep dominates the short race job")
	}
	r, err := ProcCount()
	if err != nil {
		t.Fatal(err)
	}
	idx := byProtocol(r)
	for _, n := range []string{"2", "4", "8", "16", "24"} {
		opt, an := idx[[2]string{n, "OptP"}], idx[[2]string{n, "ANBKH"}]
		if cell(t, opt[2]) > cell(t, an[2]) {
			t.Errorf("n=%s: OptP %s > ANBKH %s", n, opt[2], an[2])
		}
		if cell(t, opt[3]) != 0 {
			t.Errorf("n=%s: OptP unnecessary = %s", n, opt[3])
		}
	}
}

func TestMixShape(t *testing.T) {
	r, err := Mix()
	if err != nil {
		t.Fatal(err)
	}
	idx := byProtocol(r)
	for _, ratio := range []string{"0.1", "0.3", "0.5", "0.7", "0.9"} {
		opt, an := idx[[2]string{ratio, "OptP"}], idx[[2]string{ratio, "ANBKH"}]
		if cell(t, opt[2]) > cell(t, an[2]) {
			t.Errorf("ratio %s: OptP %s > ANBKH %s", ratio, opt[2], an[2])
		}
	}
}

func TestFalseCausalityShape(t *testing.T) {
	r, err := FalseCausalityRate()
	if err != nil {
		t.Fatal(err)
	}
	idx := byProtocol(r)
	anyGap := false
	for _, n := range []string{"3", "5", "8"} {
		opt, an := idx[[2]string{n, "OptP"}], idx[[2]string{n, "ANBKH"}]
		if cell(t, opt[3]) != 0 {
			t.Errorf("n=%s: OptP unnecessary = %s", n, opt[3])
		}
		if cell(t, an[2]) > cell(t, opt[2]) {
			anyGap = true
		}
	}
	if !anyGap {
		t.Errorf("adversarial workload showed no ANBKH excess:\n%s", r)
	}
}

func TestBufferShape(t *testing.T) {
	r, err := BufferOccupancy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3*4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestWritingSemanticsShape(t *testing.T) {
	r, err := WritingSemantics()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range r.Rows {
		rows[row[0]] = row
	}
	// OptP and ANBKH stay in 𝒫 with zero discards.
	for _, k := range []string{"OptP", "ANBKH"} {
		if rows[k][3] != "true" || cell(t, rows[k][2]) != 0 {
			t.Errorf("%s row = %v", k, rows[k])
		}
	}
	// WS-recv discards on this workload and leaves 𝒫.
	if cell(t, rows["WS-recv"][2]) == 0 {
		t.Errorf("WS-recv never discarded: %v", rows["WS-recv"])
	}
	if rows["WS-recv"][3] != "false" {
		t.Errorf("WS-recv flagged in 𝒫: %v", rows["WS-recv"])
	}
	// WS-send suppresses (outside 𝒫) on an overwrite-heavy workload.
	if rows["WS-send"][3] != "false" {
		t.Errorf("WS-send flagged in 𝒫: %v", rows["WS-send"])
	}
}

func TestAblationShape(t *testing.T) {
	r, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	idx := byProtocol(r)
	for _, j := range []string{"100", "300", "600"} {
		opt := idx[[2]string{j, "OptP"}]
		abl := idx[[2]string{j, "OptP-noreadmerge"}]
		if cell(t, opt[2]) > cell(t, abl[2]) {
			t.Errorf("jitter %s: OptP %s > ablation %s", j, opt[2], abl[2])
		}
		if cell(t, opt[3]) != 0 {
			t.Errorf("jitter %s: OptP unnecessary = %s", j, opt[3])
		}
	}
}

func TestThroughputRuns(t *testing.T) {
	r, err := Throughput(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if cell(t, row[1]) <= 0 || cell(t, row[2]) <= 0 {
			t.Fatalf("non-positive throughput: %v", row)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	rs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 10 {
		t.Fatalf("experiments = %d", len(rs))
	}
	for _, r := range rs {
		if len(r.Rows) == 0 || r.String() == "" {
			t.Fatalf("empty result %s", r.Name)
		}
	}
}

func TestTwoSiteTopologyShape(t *testing.T) {
	r, err := TwoSiteTopology()
	if err != nil {
		t.Fatal(err)
	}
	idx := byProtocol(r)
	for _, per := range []string{"2", "4"} {
		opt, an := idx[[2]string{per, "OptP"}], idx[[2]string{per, "ANBKH"}]
		if opt == nil || an == nil {
			t.Fatalf("missing rows:\n%s", r)
		}
		if cell(t, opt[2]) > cell(t, an[2]) {
			t.Errorf("per-site %s: OptP delays %s > ANBKH %s", per, opt[2], an[2])
		}
		if cell(t, opt[3]) != 0 {
			t.Errorf("per-site %s: OptP unnecessary = %s", per, opt[3])
		}
	}
}

func TestVisibilityLatencyShape(t *testing.T) {
	r, err := VisibilityLatency()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range r.Rows {
		rows[row[0]] = row
	}
	for _, k := range []string{"OptP", "ANBKH", "WS-recv", "WS-send"} {
		if rows[k] == nil {
			t.Fatalf("missing %s:\n%s", k, r)
		}
		if cell(t, rows[k][2]) <= 0 {
			t.Fatalf("non-positive mean for %s", k)
		}
	}
	// OptP's mean visibility is never worse than ANBKH's (it applies
	// everything at least as early), and WS-send's is the worst (token
	// round trip).
	if cell(t, rows["OptP"][2]) > cell(t, rows["ANBKH"][2]) {
		t.Errorf("OptP mean %s > ANBKH %s", rows["OptP"][2], rows["ANBKH"][2])
	}
	if cell(t, rows["WS-send"][2]) <= cell(t, rows["OptP"][2]) {
		t.Errorf("WS-send mean %s not worse than OptP %s", rows["WS-send"][2], rows["OptP"][2])
	}
}
