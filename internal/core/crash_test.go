package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// crashWorkload runs a deterministic write/read mix on the given
// processes. Every operation on a live process must succeed.
func crashWorkload(t *testing.T, c *Cluster, procs []int, ops int, seed int64) {
	t.Helper()
	var wg sync.WaitGroup
	for _, p := range procs {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(p)))
			for i := 1; i <= ops; i++ {
				x := rng.Intn(c.Variables())
				if rng.Intn(3) == 0 {
					if _, err := c.Node(p).Read(x); err != nil {
						t.Errorf("p%d read: %v", p+1, err)
						return
					}
				} else {
					if err := c.Node(p).Write(x, int64(p*10000+i)); err != nil {
						t.Errorf("p%d write: %v", p+1, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCrashRestartAllProtocols is the crash/restart property test: for
// every protocol kind (with chaos layered on for OptP), run a workload,
// crash-stop one process mid-run, keep the survivors working, restart
// the crashed process from its journal, run more load, quiesce, and
// demand the full audit: causal consistency, no lost acknowledged
// writes, exactly-once application, crash-model consistency — and for
// OptP, zero unnecessary delays even across the restart.
func TestCrashRestartAllProtocols(t *testing.T) {
	kinds := []protocol.Kind{
		protocol.OptP, protocol.ANBKH, protocol.WSRecv,
		protocol.WSSend, protocol.OptPNoReadMerge, protocol.OptPWS,
	}
	for _, kind := range kinds {
		for _, chaos := range []bool{false, true} {
			if chaos && kind != protocol.OptP {
				continue
			}
			name := kind.String()
			if chaos {
				name += "-chaos"
			}
			kind := kind
			chaos := chaos
			t.Run(name, func(t *testing.T) {
				cfg := Config{
					Processes: 4, Variables: 3, Protocol: kind,
					MaxDelay: 500 * time.Microsecond, Seed: 23,
					WALDir: t.TempDir(), SnapshotEvery: 16,
					TokenInterval: 200 * time.Microsecond,
				}
				if chaos {
					cfg.Chaos = transport.ChaosConfig{
						Seed: 23, LossRate: 0.10, DupRate: 0.05,
					}
				}
				c, err := NewCluster(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				const victim = 1
				crashWorkload(t, c, []int{0, 1, 2, 3}, 15, 100)
				if err := c.Crash(victim); err != nil {
					t.Fatalf("crash: %v", err)
				}
				if !c.Down(victim) {
					t.Fatal("victim not down")
				}
				// Survivors keep going; the victim refuses service.
				crashWorkload(t, c, []int{0, 2, 3}, 15, 200)
				if err := c.Node(victim).Write(0, 1); !errors.Is(err, ErrDown) {
					t.Fatalf("write while down = %v", err)
				}
				if _, err := c.Node(victim).Read(0); !errors.Is(err, ErrDown) {
					t.Fatalf("read while down = %v", err)
				}
				st, err := c.Restart(victim)
				if err != nil {
					t.Fatalf("restart: %v", err)
				}
				t.Logf("%s: %v", name, st)
				crashWorkload(t, c, []int{0, 1, 2, 3}, 15, 300)

				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				if err := c.Quiesce(ctx); err != nil {
					t.Fatalf("quiesce: %v", err)
				}
				rep, err := c.Audit()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Safe() {
					t.Fatalf("safety: %v", rep.SafetyViolations)
				}
				if !rep.CausallyConsistent() {
					t.Fatalf("legality: %v", rep.LegalityViolations)
				}
				if !rep.ExactlyOnce() {
					t.Fatalf("duplicate applies: %v", rep.DuplicateApplies)
				}
				if !rep.CrashConsistent() {
					t.Fatalf("crash violations: %v", rep.CrashViolations)
				}
				if rep.Crashes != 1 || rep.Recoveries != 1 {
					t.Fatalf("crashes=%d recoveries=%d", rep.Crashes, rep.Recoveries)
				}
				// No acknowledged write may be lost: every propagated write
				// must be at least logically applied at every process,
				// including the restarted one. Writing-semantics kinds
				// legitimately skip installing overwritten values (Logical
				// entries), and WS-send never propagates writes suppressed at
				// their sender (fine at peers, as long as the origin itself
				// kept them); everything else must be fully in 𝒫.
				switch kind {
				case protocol.WSRecv, protocol.WSSend, protocol.OptPWS:
					propagated := make(map[history.WriteID]bool)
					for _, e := range c.Log().Events {
						if e.Kind == trace.Send && e.Write.Seq > 0 {
							propagated[e.Write] = true
						}
					}
					for _, m := range rep.NotApplied {
						if m.Logical {
							continue
						}
						if propagated[m.Write] || m.Proc == m.Write.Proc {
							t.Fatalf("lost write: %v", m)
						}
					}
				default:
					if !rep.InP() {
						t.Fatalf("lost writes: %v", rep.NotApplied)
					}
				}
				if kind == protocol.OptP && !rep.WriteDelayOptimal() {
					for _, d := range rep.Delays {
						if !d.Necessary {
							t.Errorf("unnecessary delay: %+v", d)
						}
					}
					t.FailNow()
				}
			})
		}
	}
}

// TestCrashSchedule drives crashes through Config.Crashes: the
// background orchestrator crash-stops p2 and restarts it while a
// workload runs, with the heartbeat detector watching.
func TestCrashSchedule(t *testing.T) {
	c, err := NewCluster(Config{
		Processes: 3, Variables: 2,
		MaxDelay: 200 * time.Microsecond, Seed: 5,
		WALDir:            t.TempDir(),
		HeartbeatInterval: 2 * time.Millisecond,
		Crashes: []CrashWindow{
			{Proc: 2, Start: 5 * time.Millisecond, End: 40 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for p := 0; p < 2; p++ {
			c.Node(p).Write(p%2, time.Now().UnixNano())
		}
		log := c.Log()
		if log.RecoverCount() >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	rep, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes < 1 || rep.Recoveries < 1 {
		t.Fatalf("schedule did not run: crashes=%d recoveries=%d", rep.Crashes, rep.Recoveries)
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.CrashConsistent() {
		t.Fatalf("audit: %v", rep)
	}
}

// TestRestartRequiresWAL: without a journal there is nothing to restart
// from.
func TestRestartRequiresWAL(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(0); err == nil {
		t.Fatal("restart without WALDir succeeded")
	}
	// Crashing an already-down process reports ErrDown.
	if err := c.Crash(0); !errors.Is(err, ErrDown) {
		t.Fatalf("double crash = %v", err)
	}
	// Restarting a live process fails.
	if _, err := c.Restart(1); err == nil {
		t.Fatal("restart of live process succeeded")
	}
	// Out-of-range indices fail.
	if err := c.Crash(7); err == nil {
		t.Fatal("crash of p8 succeeded")
	}
	if _, err := c.Restart(-1); err == nil {
		t.Fatal("restart of p0 succeeded")
	}
}

// TestQuiesceSkipsDown: a crash-stopped process must not block Quiesce;
// after its restart the missed writes converge and Quiesce covers it
// again.
func TestQuiesceSkipsDown(t *testing.T) {
	c, err := NewCluster(Config{
		Processes: 3, Variables: 1, WALDir: t.TempDir(),
		MaxDelay: 200 * time.Microsecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := c.Node(0).Write(0, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce with p3 down: %v", err)
	}
	if _, err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce after restart: %v", err)
	}
	if v, err := c.Node(2).Read(0); err != nil || v != 5 {
		t.Fatalf("recovered read = %d, %v", v, err)
	}
}

// TestHeartbeatSuspectAlive: silence from a crashed process raises
// suspicions at every live observer; its restart clears them.
func TestHeartbeatSuspectAlive(t *testing.T) {
	c, err := NewCluster(Config{
		Processes: 3, Variables: 1, WALDir: t.TempDir(),
		HeartbeatInterval: time.Millisecond,
		SuspectAfter:      4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Detector() == nil {
		t.Fatal("no detector")
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	waitFor := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor("suspicion of p2", func() bool {
		return !c.Detector().Up(1) && c.Log().SuspectCount() > 0
	})
	if _, err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	waitFor("p2 trusted again", func() bool { return c.Detector().Up(1) })
	waitFor("alive events", func() bool { return c.Log().AliveCount() > 0 })
	if s := c.Stats(); s.Crashes != 1 || s.Recoveries != 1 || s.Suspects == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestWSSendTokenSkipsDown: with the token holder crashed, circulation
// must route around it so the survivors' deferred writes still
// propagate and Quiesce terminates.
func TestWSSendTokenSkipsDown(t *testing.T) {
	c, err := NewCluster(Config{
		Processes: 3, Variables: 2, Protocol: protocol.WSSend,
		TokenInterval: 200 * time.Microsecond, WALDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(1).Write(0, 11); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(2).Write(1, 22); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce with holder down: %v", err)
	}
	for p := 1; p < 3; p++ {
		if v, _ := c.Node(p).Read(0); v != 11 {
			t.Fatalf("p%d x1 = %d", p+1, v)
		}
		if v, _ := c.Node(p).Read(1); v != 22 {
			t.Fatalf("p%d x2 = %d", p+1, v)
		}
	}
	// Bring p1 back: it recovers the missed batches via catch-up.
	if _, err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce after restart: %v", err)
	}
	if v, _ := c.Node(0).Read(0); v != 11 {
		t.Fatalf("recovered x1 = %d", v)
	}
	// Crash/Recover counts surface in the trace.
	log := c.Log()
	if log.CrashCount() != 1 || log.RecoverCount() != 1 {
		t.Fatalf("crash=%d recover=%d", log.CrashCount(), log.RecoverCount())
	}
}
