package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Errors returned by cluster operations.
var (
	// ErrClosed reports an operation on a closed cluster.
	ErrClosed = errors.New("core: cluster closed")
	// ErrBadVariable reports an out-of-range variable index.
	ErrBadVariable = errors.New("core: variable index out of range")
)

// Cluster hosts the processes of a live DSM system.
type Cluster struct {
	cfg    Config
	tr     transport.Transport
	nodes  []*Node
	start  time.Time
	hasTok bool

	// mu guards everything below plus the trace log; cond is signaled
	// on every state change that can affect Quiesce. Lock order is
	// always Node.mu before Cluster.mu.
	mu           sync.Mutex
	cond         *sync.Cond
	log          *trace.Log
	issuedBy     []int // writes issued per process
	propagatedBy []int // non-marker updates actually broadcast per process
	counted      []int // writes (logically) applied per process
	unsentBy     []int // deferred writes awaiting the token per process
	closed       bool

	tokenStop chan struct{}
	tokenDone chan struct{}
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:          cfg,
		start:        time.Now(),
		log:          trace.NewLog(cfg.Processes, cfg.Variables),
		issuedBy:     make([]int, cfg.Processes),
		propagatedBy: make([]int, cfg.Processes),
		counted:      make([]int, cfg.Processes),
		unsentBy:     make([]int, cfg.Processes),
	}
	c.cond = sync.NewCond(&c.mu)
	tr := cfg.Transport
	if tr == nil {
		netCfg := transport.Config{
			Procs:    cfg.Processes,
			MinDelay: cfg.MinDelay,
			MaxDelay: cfg.MaxDelay,
			FIFO:     cfg.FIFO,
			Seed:     cfg.Seed,
		}
		// An RTO below the data+ack round trip floods the links with
		// spurious retransmissions (dedup absorbs them, but they waste
		// bandwidth and pollute the stats), so default above the worst
		// jittered round trip.
		rto := cfg.RetransmitTimeout
		if rto == 0 {
			rto = 2*cfg.MaxDelay + time.Millisecond
		}
		var err error
		if cfg.Chaos.Enabled() {
			tr, err = transport.NewFaulty(netCfg, cfg.Chaos, transport.ReliableConfig{
				RetransmitTimeout: rto,
				BackoffMax:        cfg.BackoffMax,
				Seed:              cfg.Seed,
			}, c.noteNetEvent)
		} else {
			tr, err = transport.New(netCfg)
		}
		if err != nil {
			return nil, err
		}
	}
	c.tr = tr
	for p := 0; p < cfg.Processes; p++ {
		r := protocol.New(cfg.Protocol, p, cfg.Processes, cfg.Variables)
		n := &Node{c: c, id: p, replica: r}
		if _, ok := r.(protocol.TokenBatcher); ok {
			c.hasTok = true
		}
		c.nodes = append(c.nodes, n)
		tr.Register(p, n.handle)
	}
	if c.hasTok {
		interval := cfg.TokenInterval
		if interval == 0 {
			interval = time.Millisecond
		}
		c.tokenStop = make(chan struct{})
		c.tokenDone = make(chan struct{})
		go c.tokenLoop(interval)
	}
	return c, nil
}

// Node returns the i-th process handle.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Processes returns the number of processes.
func (c *Cluster) Processes() int { return c.cfg.Processes }

// Variables returns the number of shared variables.
func (c *Cluster) Variables() int { return c.cfg.Variables }

// Protocol returns the running protocol kind.
func (c *Cluster) Protocol() protocol.Kind { return c.cfg.Protocol }

// now returns the trace timestamp (nanoseconds since cluster start).
func (c *Cluster) now() int64 { return time.Since(c.start).Nanoseconds() }

// appendEvent records e under the cluster lock, updating the Quiesce
// accounting, and wakes waiters.
func (c *Cluster) appendEvent(e trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log.Append(e)
	switch e.Kind {
	case trace.Issue:
		c.issuedBy[e.Proc]++
		c.counted[e.Proc]++
	case trace.Send:
		if e.Write.Seq > 0 {
			c.propagatedBy[e.Proc]++
		}
	case trace.Apply, trace.Discard:
		if e.Write.Seq > 0 {
			c.counted[e.Proc]++
		}
	}
	c.cond.Broadcast()
}

// noteNetEvent records chaos-stack occurrences in the trace. Frame
// fates never feed Quiesce accounting — the reliability sublayer
// guarantees the protocol-level events come out exactly as on a
// fault-free transport.
func (c *Cluster) noteNetEvent(e transport.NetEvent) {
	var kind trace.EventKind
	proc := e.From
	val := e.Msg.Update.Val
	switch e.Kind {
	case transport.EvDrop:
		kind = trace.NetDrop
	case transport.EvRetransmit:
		kind = trace.Retransmit
		val = int64(e.Attempts)
	case transport.EvDupDiscard:
		kind, proc = trace.DupDiscard, e.To
	default:
		return // sender-side duplicates surface as receiver DupDiscards
	}
	c.appendEvent(trace.Event{
		Kind: kind, Proc: proc, Time: c.now(),
		Write: e.Msg.Update.ID, Var: e.Msg.Update.Var, Val: val,
	})
}

// quiescedLocked reports whether every propagated write has been
// (logically) applied everywhere and nothing more is coming. Caller
// holds c.mu.
func (c *Cluster) quiescedLocked() bool {
	totalProp := 0
	for _, p := range c.propagatedBy {
		totalProp += p
	}
	for p := range c.nodes {
		// A process must have applied its own issues plus everything
		// the others propagated; deferred writes must all be released.
		expected := c.issuedBy[p] + totalProp - c.propagatedBy[p]
		if c.counted[p] != expected || c.unsentBy[p] != 0 {
			return false
		}
	}
	return true
}

// Quiesce blocks until every write issued so far has reached every
// replica (discards under writing semantics count as logical applies,
// and writes suppressed at the sender under WS-send count as released
// once their token turn passes), or ctx is done.
func (c *Cluster) Quiesce(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			// Take the lock so the broadcast cannot slip between the
			// waiter's ctx check and its cond.Wait.
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()

	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.quiescedLocked() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: quiesce: %w", err)
		}
		c.cond.Wait()
	}
	return nil
}

// Log returns a snapshot copy of the event trace.
func (c *Cluster) Log() *trace.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := trace.NewLog(c.log.NumProcs, c.log.NumVars)
	cp.Events = append(cp.Events, c.log.Events...)
	return cp
}

// Stats returns the run scorecard so far.
func (c *Cluster) Stats() trace.RunStats {
	return c.Log().Stats(c.cfg.Protocol.String())
}

// Audit runs the full correctness audit (safety, causal consistency,
// liveness, delay classification) on the trace recorded so far. Call
// after Quiesce for a complete picture; mid-run audits see a prefix.
func (c *Cluster) Audit() (*checker.Report, error) {
	return checker.Audit(c.Log())
}

// Close stops the token loop (if any), drains the transport, and marks
// the cluster closed. Operations after Close return ErrClosed.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	c.mu.Unlock()

	if c.hasTok {
		close(c.tokenStop)
		<-c.tokenDone
	}
	return c.tr.Close()
}

// tokenLoop circulates the token for WS-send-style protocols until
// Close.
func (c *Cluster) tokenLoop(interval time.Duration) {
	defer close(c.tokenDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	visit := 0
	for {
		select {
		case <-c.tokenStop:
			return
		case <-ticker.C:
		}
		holder := visit % c.cfg.Processes
		n := c.nodes[holder]
		n.mu.Lock()
		tb := n.replica.(protocol.TokenBatcher)
		batch := tb.OnToken(visit)
		c.mu.Lock()
		c.unsentBy[holder] = 0 // every deferred write was drained (or suppressed)
		c.mu.Unlock()
		c.appendEvent(trace.Event{Kind: trace.Token, Proc: holder, Time: c.now()})
		if len(batch) == 0 {
			batch = []protocol.Update{protocol.Marker(holder, visit)}
		}
		for _, u := range batch {
			c.appendEvent(trace.Event{
				Kind: trace.Send, Proc: holder, Time: c.now(),
				Write: u.ID, Var: u.Var, Val: u.Val,
			})
		}
		n.drainLocked()
		n.mu.Unlock()
		// Send outside the node lock (see Node.Write).
		for _, u := range batch {
			transport.Broadcast(c.tr, c.cfg.Processes, holder, u)
		}
		visit++
	}
}

// noteDeferred records a write buffered at its sender awaiting the
// token.
func (c *Cluster) noteDeferred(p int) {
	c.mu.Lock()
	c.unsentBy[p]++
	c.cond.Broadcast()
	c.mu.Unlock()
}

// WriteAt is shorthand for c.Node(p).Write(x, v).
func (c *Cluster) WriteAt(p, x int, v int64) error { return c.nodes[p].Write(x, v) }

// ReadAt is shorthand for c.Node(p).Read(x).
func (c *Cluster) ReadAt(p, x int) (int64, error) { return c.nodes[p].Read(x) }

// ReadMetaAt is shorthand for c.Node(p).ReadMeta(x).
func (c *Cluster) ReadMetaAt(p, x int) (int64, history.WriteID, error) {
	return c.nodes[p].ReadMeta(x)
}
