package history

import (
	"fmt"
	"sort"
)

// DenseCausality is the original bitset materialization of →co, kept as
// the small-trace reference implementation behind the vector-frontier
// Causality engine. It stores the full transitive closure — pred[i] and
// succ[i] bitsets over all n operations — so memory and time grow as
// O(n²/64); fine up to a few tens of thousands of operations, infeasible
// at a million. The checker's equivalence property tests pin the fast
// engine's answers to this one.
type DenseCausality struct {
	h *History
	n int

	// pred[i] holds every j with ops[j] →co ops[i].
	pred []bitset
	// succ[i] holds every j with ops[i] →co ops[j].
	succ []bitset
	// topo is a topological order of the direct-edge DAG.
	topo []int
}

// DenseCausality computes the →co closure as explicit bitsets. It
// returns ErrCyclic if the history's generator edges contain a cycle.
func (h *History) DenseCausality() (*DenseCausality, error) {
	n := len(h.ops)
	c := &DenseCausality{h: h, n: n}

	// Adjacency and in-degrees of the generator DAG.
	adj := make([][]int, n)
	indeg := make([]int, n)
	h.directEdges(func(from, to int) {
		adj[from] = append(adj[from], to)
		indeg[to]++
	})

	// Kahn topological sort.
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	c.topo = make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		c.topo = append(c.topo, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(c.topo) != n {
		return nil, fmt.Errorf("%w: %d of %d operations unreachable in topological sort", ErrCyclic, n-len(c.topo), n)
	}

	// Predecessor closure in topological order:
	// pred[w] = ⋃_{v→w} (pred[v] ∪ {v}).
	c.pred = make([]bitset, n)
	for i := range c.pred {
		c.pred[i] = newBitset(n)
	}
	for _, v := range c.topo {
		for _, w := range adj[v] {
			c.pred[w].or(c.pred[v])
			c.pred[w].set(v)
		}
	}

	// Successor closure in reverse topological order.
	c.succ = make([]bitset, n)
	for i := range c.succ {
		c.succ[i] = newBitset(n)
	}
	for i := n - 1; i >= 0; i-- {
		v := c.topo[i]
		for _, w := range adj[v] {
			c.succ[v].or(c.succ[w])
			c.succ[v].set(w)
		}
	}
	return c, nil
}

// History returns the underlying history.
func (c *DenseCausality) History() *History { return c.h }

// Before reports ops[i] →co ops[j].
func (c *DenseCausality) Before(i, j int) bool { return c.pred[j].has(i) }

// Concurrent reports ops[i] ‖co ops[j] (distinct, neither before the other).
func (c *DenseCausality) Concurrent(i, j int) bool {
	return i != j && !c.Before(i, j) && !c.Before(j, i)
}

// CausalPast returns ↓(ops[i], →co): the global indices of all
// operations strictly before ops[i], in increasing index order.
func (c *DenseCausality) CausalPast(i int) []int {
	return c.pred[i].members(nil)
}

// CausalPastSize returns |↓(ops[i], →co)| without materializing it.
func (c *DenseCausality) CausalPastSize(i int) int { return c.pred[i].count() }

// WritesBefore returns the write operations in ↓(ops[i], →co) as
// WriteIDs in increasing global-index order.
func (c *DenseCausality) WritesBefore(i int) []WriteID {
	var ids []WriteID
	for _, j := range c.pred[i].members(nil) {
		if o := c.h.ops[j]; o.IsWrite() {
			ids = append(ids, o.ID)
		}
	}
	return ids
}

// WriteBefore reports w →co w' for two writes given by ID. It panics if
// either ID is unknown; Bottom is before every operation by convention
// and after none.
func (c *DenseCausality) WriteBefore(w, w2 WriteID) bool {
	if w.IsBottom() {
		return !w2.IsBottom()
	}
	if w2.IsBottom() {
		return false
	}
	i, j := c.mustWrite(w), c.mustWrite(w2)
	return c.Before(i, j)
}

// WriteConcurrent reports w ‖co w' for two distinct writes.
func (c *DenseCausality) WriteConcurrent(w, w2 WriteID) bool {
	if w.IsBottom() || w2.IsBottom() {
		return false
	}
	return c.Concurrent(c.mustWrite(w), c.mustWrite(w2))
}

func (c *DenseCausality) mustWrite(id WriteID) int {
	idx := c.h.WriteIndex(id)
	if idx < 0 {
		panic(fmt.Sprintf("history: unknown write %v", id))
	}
	return idx
}

// Topo returns a topological order of the operations consistent with →co.
func (c *DenseCausality) Topo() []int {
	t := make([]int, len(c.topo))
	copy(t, c.topo)
	return t
}

// WriteGraph computes the write causality graph by the original
// all-pairs scan: for each ordered write pair, membership of any write
// in succ(a) ∩ pred(b) decides immediacy. O(W³) worst case.
func (c *DenseCausality) WriteGraph() *WriteGraph {
	writes := c.h.Writes() // global op indices of writes, flattened order
	g := &WriteGraph{index: make(map[WriteID]int, len(writes))}
	for v, gi := range writes {
		g.Vertices = append(g.Vertices, c.h.ops[gi].ID)
		g.index[c.h.ops[gi].ID] = v
	}
	g.Edges = make([][]int, len(writes))
	for a, ga := range writes {
		for b, gb := range writes {
			if a == b || !c.Before(ga, gb) {
				continue
			}
			// Immediate iff no write w'' with ga →co w'' →co gb, i.e.
			// succ(ga) ∩ pred(gb) contains no write.
			immediate := true
			for _, gm := range writes {
				if gm != ga && gm != gb && c.succ[ga].has(gm) && c.pred[gb].has(gm) {
					immediate = false
					break
				}
			}
			if immediate {
				g.Edges[a] = append(g.Edges[a], b)
			}
		}
	}
	for _, e := range g.Edges {
		sort.Ints(e)
	}
	return g
}

// LegalRead checks Definition 1 for the read at global index i by
// scanning the materialized causal past, the original quadratic
// formulation (see Causality.LegalRead for the indexed fast path).
func (c *DenseCausality) LegalRead(i int) (bool, Violation) {
	o := c.h.ops[i]
	if !o.IsRead() {
		panic(fmt.Sprintf("history: LegalRead on non-read %v", o))
	}
	if o.From.IsBottom() {
		// Must be no write to o.Var in ↓(r, →co).
		for _, j := range c.pred[i].members(nil) {
			if w := c.h.ops[j]; w.IsWrite() && w.Var == o.Var {
				return false, Violation{
					Read: i, Op: o, Stale: w.ID,
					Reason: fmt.Sprintf("reads ⊥ but %v is in its causal past", w),
				}
			}
		}
		return true, Violation{}
	}
	widx := c.h.WriteIndex(o.From)
	if widx < 0 {
		return false, Violation{Read: i, Op: o, Reason: fmt.Sprintf("reads from unknown write %v", o.From)}
	}
	if !c.Before(widx, i) {
		// Read-from edges are →co generators, so this indicates a
		// malformed history rather than a stale value.
		return false, Violation{Read: i, Op: o, Reason: fmt.Sprintf("source write %v not in causal past", o.From)}
	}
	// No intervening write on the same variable: w →co w' →co r.
	for _, j := range c.pred[i].members(nil) {
		w2 := c.h.ops[j]
		if !w2.IsWrite() || w2.Var != o.Var || j == widx {
			continue
		}
		if c.Before(widx, j) {
			return false, Violation{
				Read: i, Op: o, Stale: w2.ID,
				Reason: fmt.Sprintf("value from %v was overwritten by %v before the read", o.From, w2),
			}
		}
	}
	return true, Violation{}
}

// CheckCausallyConsistent checks Definition 2: every read in the history
// is legal. It returns all violations found (nil means the history is
// causally consistent).
func (c *DenseCausality) CheckCausallyConsistent() []Violation {
	var vs []Violation
	for i, o := range c.h.ops {
		if !o.IsRead() {
			continue
		}
		if ok, v := c.LegalRead(i); !ok {
			vs = append(vs, v)
		}
	}
	return vs
}

// IsCausallyConsistent reports Definition 2 as a single boolean.
func (c *DenseCausality) IsCausallyConsistent() bool {
	return len(c.CheckCausallyConsistent()) == 0
}
