package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// WriteSpans dumps the retained completed spans as JSON Lines, oldest
// first — the post-hoc counterpart of a live SpanStreamer.
func (o *Observer) WriteSpans(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range o.Spans() {
		if err := enc.Encode(sp); err != nil {
			return fmt.Errorf("obs: span encode: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: span flush: %w", err)
	}
	return nil
}

// SpanStreamer writes completed spans as JSONL while the run executes,
// with the same never-block contract as JSONLSink: spans queue in a
// bounded ring and overflow is dropped and counted. Its Record method
// is what Options.SpanSink expects.
type SpanStreamer struct {
	ch      chan Span
	dropped atomic.Uint64

	mu   sync.Mutex
	bw   *bufio.Writer
	enc  *json.Encoder
	werr error

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewSpanStreamer starts a streamer writing to w. capacity bounds the
// ring (0 defaults to 8192). The streamer does not close w.
func NewSpanStreamer(w io.Writer, capacity int) *SpanStreamer {
	if capacity <= 0 {
		capacity = 8192
	}
	s := &SpanStreamer{
		ch:   make(chan Span, capacity),
		bw:   bufio.NewWriter(w),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.enc = json.NewEncoder(s.bw)
	go s.drain()
	return s
}

// Record enqueues a span without blocking; overflow is dropped and
// counted.
func (s *SpanStreamer) Record(sp Span) {
	select {
	case s.ch <- sp:
	default:
		s.dropped.Add(1)
	}
}

// Dropped returns the number of spans lost to ring overflow.
func (s *SpanStreamer) Dropped() uint64 { return s.dropped.Load() }

// Err returns the first write error, if any.
func (s *SpanStreamer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}

func (s *SpanStreamer) encode(sp Span) {
	s.mu.Lock()
	if s.werr == nil {
		s.werr = s.enc.Encode(sp)
	}
	s.mu.Unlock()
}

func (s *SpanStreamer) drain() {
	defer close(s.done)
	for {
		select {
		case sp := <-s.ch:
			s.encode(sp)
		case <-s.stop:
			for {
				select {
				case sp := <-s.ch:
					s.encode(sp)
				default:
					s.mu.Lock()
					if err := s.bw.Flush(); s.werr == nil {
						s.werr = err
					}
					s.mu.Unlock()
					return
				}
			}
		}
	}
}

// Close drains, flushes and stops. Idempotent; Record stays safe after
// Close.
func (s *SpanStreamer) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
	})
	<-s.done
	return s.Err()
}
