package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/history"
	"repro/internal/vclock"
)

func wireRequests() []Request {
	return []Request{
		{},
		{Tag: 1, Kind: ReqPing, Proc: -1},
		{Tag: 7, Kind: ReqRead, Proc: 2, Var: 5, Token: vclock.VC{3, 0, 9}},
		{Tag: 1 << 40, Kind: ReqWrite, Proc: -1, Var: 0, Val: -12345,
			Token: vclock.VC{0, 0, 0, 0}, NoWait: true},
		{Tag: 42, Kind: ReqWrite, Proc: 0, Var: 9, Val: 1 << 50},
		{Tag: 3, Kind: ReqRead, Proc: 1, Var: 2, Token: vclock.VC{1 << 33, 7}, NoWait: true},
		{Tag: 8, Kind: ReqWrite, Proc: -1, Var: 3, Val: 11, SID: 0xdeadbeef, OpSeq: 1},
		{Tag: 9, Kind: ReqWrite, Proc: 2, Var: 0, Val: -7,
			Token: vclock.VC{2, 0, 5}, SID: 1 << 60, OpSeq: 1 << 20},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range wireRequests() {
		buf := want.AppendBinary(nil)
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", want, err)
		}
		if n != len(buf) {
			t.Fatalf("DecodeRequest(%+v) consumed %d of %d bytes", want, n, len(buf))
		}
		if got.Tag != want.Tag || got.Kind != want.Kind || got.Proc != want.Proc ||
			got.Var != want.Var || got.Val != want.Val || got.NoWait != want.NoWait ||
			got.SID != want.SID || got.OpSeq != want.OpSeq {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if want.Token == nil && got.Token != nil || want.Token != nil && !got.Token.Equal(want.Token) {
			t.Fatalf("round trip token: got %v want %v", got.Token, want.Token)
		}
		tag, err := PeekTag(buf)
		if err != nil || tag != want.Tag {
			t.Fatalf("PeekTag = %d, %v; want %d", tag, err, want.Tag)
		}
	}
}

func wireResponses() []struct {
	r    Response
	base vclock.VC
} {
	return []struct {
		r    Response
		base vclock.VC
	}{
		{Response{}, nil},
		{Response{Tag: 9, Status: StatusOK, Proc: 1, Val: 77,
			From:  history.WriteID{Proc: 2, Seq: 31},
			Token: vclock.VC{4, 8, 15}}, vclock.VC{4, 2, 15}},
		{Response{Tag: 2, Status: StatusUnavailable, Proc: 0,
			Err: "frontier behind session token"}, vclock.VC{1, 1}},
		{Response{Tag: 1 << 55, Status: StatusShutdown, Proc: -1,
			Err: "server draining"}, nil},
		{Response{Tag: 5, Status: StatusOK, Proc: 3, Val: -9,
			From:  history.WriteID{Proc: 0, Seq: 1},
			Token: vclock.VC{10, 20}}, nil}, // dim mismatch with base → sparse
		{Response{Tag: 6, Status: StatusBadRequest, Proc: -1,
			Err: "variable 99 of 8"}, vclock.VC{0, 0, 0}},
		{Response{Tag: 11, Status: StatusRetry, Proc: 2,
			Err: "no replica can serve the session token yet"}, vclock.VC{3, 3}},
		{Response{Tag: 12, Status: StatusOverloaded, Proc: -1,
			Err: "in-flight watermark reached"}, nil},
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, tc := range wireResponses() {
		buf := tc.r.AppendBinary(nil, tc.base)
		got, n, err := DecodeResponse(buf, tc.base)
		if err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", tc.r, err)
		}
		if n != len(buf) {
			t.Fatalf("DecodeResponse(%+v) consumed %d of %d bytes", tc.r, n, len(buf))
		}
		if got.Tag != tc.r.Tag || got.Status != tc.r.Status || got.Proc != tc.r.Proc ||
			got.Val != tc.r.Val || got.From != tc.r.From || got.Err != tc.r.Err {
			t.Fatalf("round trip: got %+v want %+v", got, tc.r)
		}
		if tc.r.Token == nil && got.Token != nil || tc.r.Token != nil && !got.Token.Equal(tc.r.Token) {
			t.Fatalf("round trip token: got %v want %v", got.Token, tc.r.Token)
		}
	}
}

// A settled session's token delta should be tiny: one advanced
// component costs a few bytes, not the full frontier.
func TestResponseTokenDeltaCompact(t *testing.T) {
	base := make(vclock.VC, 64)
	for i := range base {
		base[i] = 1 << 30
	}
	tok := base.Clone()
	tok[7]++
	full := Response{Tag: 1, Token: tok}.AppendBinary(nil, nil)
	delta := Response{Tag: 1, Token: tok}.AppendBinary(nil, base)
	if len(delta) >= len(full)/4 {
		t.Fatalf("delta encoding %d bytes, sparse %d bytes: delta should be far smaller", len(delta), len(full))
	}
}

// Every strict prefix of a valid encoding must fail to decode: the
// framing layer delivers whole frames, so a short decode marks
// corruption, never a "partial message".
func TestRequestDecodeTruncated(t *testing.T) {
	for _, r := range wireRequests() {
		buf := r.AppendBinary(nil)
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := DecodeRequest(buf[:cut]); err == nil {
				t.Fatalf("DecodeRequest(%+v prefix %d/%d) succeeded", r, cut, len(buf))
			}
		}
	}
}

func TestResponseDecodeTruncated(t *testing.T) {
	for _, tc := range wireResponses() {
		buf := tc.r.AppendBinary(nil, tc.base)
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := DecodeResponse(buf[:cut], tc.base); err == nil {
				t.Fatalf("DecodeResponse(%+v prefix %d/%d) succeeded", tc.r, cut, len(buf))
			}
		}
	}
}

func TestDecodeTokenAbsurdDimension(t *testing.T) {
	buf := binary.AppendUvarint(nil, MaxTokenDim+1)
	buf = append(buf, bytes.Repeat([]byte{0}, 64)...)
	if _, _, err := DecodeToken(buf, nil); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeToken(dim=%d) = %v, want ErrWireCorrupt", MaxTokenDim+1, err)
	}
	// The same bound must hold inside a full message.
	req := Request{Tag: 1, Kind: ReqRead}.AppendBinary(nil)
	req = req[:len(req)-4] // strip token(dim 0) + flags + sid + opSeq
	req = binary.AppendUvarint(req, MaxTokenDim+1)
	req = append(req, bytes.Repeat([]byte{1}, 32)...)
	if _, _, err := DecodeRequest(req); err == nil {
		t.Fatal("DecodeRequest with absurd token dimension succeeded")
	}
}

func TestDecodeRequestBadKind(t *testing.T) {
	r := Request{Tag: 3, Kind: ReqWrite, Var: 1}
	buf := r.AppendBinary(nil)
	// Kind is the second field; re-encode with an out-of-range kind.
	bad := binary.AppendUvarint(nil, r.Tag)
	bad = binary.AppendUvarint(bad, uint64(reqKinds))
	bad = append(bad, buf[2:]...)
	if _, _, err := DecodeRequest(bad); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeRequest(kind=%d) = %v, want ErrWireCorrupt", reqKinds, err)
	}
}

func TestDecodeResponseBadStatus(t *testing.T) {
	buf := binary.AppendUvarint(nil, 1)                  // tag
	buf = binary.AppendUvarint(buf, uint64(statusCount)) // status
	buf = binary.AppendVarint(buf, 0)                    // proc
	buf = binary.AppendVarint(buf, 0)                    // val
	buf = binary.AppendVarint(buf, 0)                    // fromProc
	buf = binary.AppendVarint(buf, 0)                    // fromSeq
	buf = binary.AppendUvarint(buf, 0)                   // token dim
	buf = binary.AppendUvarint(buf, 0)                   // errlen
	if _, _, err := DecodeResponse(buf, nil); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeResponse(bad status) = %v, want ErrWireCorrupt", err)
	}
}

func TestResponseErrTruncatedOnEncode(t *testing.T) {
	long := string(bytes.Repeat([]byte{'x'}, maxWireErr+500))
	buf := Response{Tag: 1, Status: StatusUnavailable, Err: long}.AppendBinary(nil, nil)
	got, _, err := DecodeResponse(buf, nil)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if len(got.Err) != maxWireErr {
		t.Fatalf("error detail %d bytes on the wire, want cap %d", len(got.Err), maxWireErr)
	}
}

func TestDecodeResponseErrTooLong(t *testing.T) {
	buf := binary.AppendUvarint(nil, 1) // tag
	buf = binary.AppendUvarint(buf, 0)  // status
	buf = binary.AppendVarint(buf, 0)   // proc
	buf = binary.AppendVarint(buf, 0)   // val
	buf = binary.AppendVarint(buf, 0)   // fromProc
	buf = binary.AppendVarint(buf, 0)   // fromSeq
	buf = binary.AppendUvarint(buf, 0)  // token dim
	buf = binary.AppendUvarint(buf, maxWireErr+1)
	buf = append(buf, bytes.Repeat([]byte{'x'}, maxWireErr+1)...)
	if _, _, err := DecodeResponse(buf, nil); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeResponse(errlen=%d) = %v, want ErrWireCorrupt", maxWireErr+1, err)
	}
}

func TestAppendTokenBaseMismatchFallsBackToSparse(t *testing.T) {
	tok := vclock.VC{5, 6, 7}
	// Base of the wrong dimension must not panic — it encodes sparsely.
	buf := AppendToken(nil, tok, vclock.VC{1, 2})
	got, n, err := DecodeToken(buf, nil)
	if err != nil || n != len(buf) {
		t.Fatalf("DecodeToken: %v (consumed %d of %d)", err, n, len(buf))
	}
	if !got.Equal(tok) {
		t.Fatalf("token = %v, want %v", got, tok)
	}
	// Decoding against a mismatched base likewise ignores the base.
	got, _, err = DecodeToken(buf, vclock.VC{9})
	if err != nil || !got.Equal(tok) {
		t.Fatalf("DecodeToken(mismatched base) = %v, %v; want %v", got, err, tok)
	}
}

func TestDecodeRequestTrailingBytesReported(t *testing.T) {
	buf := Request{Tag: 2, Kind: ReqPing}.AppendBinary(nil)
	buf = append(buf, 0xAB, 0xCD)
	_, n, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if n != len(buf)-2 {
		t.Fatalf("consumed %d bytes, want %d; callers reject frames with trailing garbage", n, len(buf)-2)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[uint8]string{
		StatusOK: "ok", StatusBadRequest: "bad-request",
		StatusUnavailable: "unavailable", StatusShutdown: "shutdown",
		200: "status(200)",
	} {
		if got := StatusString(s); got != want {
			t.Fatalf("StatusString(%d) = %q, want %q", s, got, want)
		}
	}
}
