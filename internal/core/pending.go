package core

import (
	"sort"

	"repro/internal/history"
	"repro/internal/protocol"
)

// pendingSet is the node's buffer of blocked (write-delayed) updates,
// replacing the old flat slice whose duplicate checks and drain loop
// rescanned every entry per message. Updates are held per origin,
// sorted by their delivery key, with a write-ID index on the side:
//
//   - duplicate detection (receiveLocked, feedLocked) is one map probe;
//   - drain examines only each origin's queue head (plus one slot for
//     the writing-semantics skip case) instead of the whole buffer,
//     because every protocol consumes an origin's updates in key order.
//
// The delivery key is (Round, Slot, ID.Seq): WSSend orders its token
// batches by (round, slot) — both zero for every other protocol — and
// the broadcast protocols deliver each origin's writes in issue (seq)
// order. Updates from the same origin never tie: seqs are unique per
// origin and marker rounds are unique per visit.
type pendingSet struct {
	byOrigin [][]protocol.Update
	index    map[history.WriteID]struct{}
}

func newPendingSet(procs int) *pendingSet {
	return &pendingSet{
		byOrigin: make([][]protocol.Update, procs),
		index:    make(map[history.WriteID]struct{}),
	}
}

// updateLess orders two same-origin updates by delivery key.
func updateLess(a, b protocol.Update) bool {
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	if a.Slot != b.Slot {
		return a.Slot < b.Slot
	}
	return a.ID.Seq < b.ID.Seq
}

// add inserts u into its origin queue at the key-ordered position.
// Arrivals are FIFO per origin in the common case, so the insert point
// is almost always the end.
func (ps *pendingSet) add(u protocol.Update) {
	origin := u.From()
	q := ps.byOrigin[origin]
	i := sort.Search(len(q), func(k int) bool { return updateLess(u, q[k]) })
	q = append(q, protocol.Update{})
	copy(q[i+1:], q[i:])
	q[i] = u
	ps.byOrigin[origin] = q
	ps.index[u.ID] = struct{}{}
}

// has reports whether the write is already buffered.
func (ps *pendingSet) has(id history.WriteID) bool {
	if ps == nil {
		return false
	}
	_, ok := ps.index[id]
	return ok
}

// size returns the number of buffered updates.
func (ps *pendingSet) size() int {
	if ps == nil {
		return 0
	}
	return len(ps.index)
}

// removeAt deletes position i of origin's queue, preserving order.
func (ps *pendingSet) removeAt(origin, i int) {
	q := ps.byOrigin[origin]
	delete(ps.index, q[i].ID)
	copy(q[i:], q[i+1:])
	ps.byOrigin[origin] = q[:len(q)-1]
}

// flatten returns every buffered update in deterministic order (origin
// ascending, then delivery-key order) — the order snapshots encode, so
// an export→restore→export round trip is byte-identical.
func (ps *pendingSet) flatten() []protocol.Update {
	if ps == nil {
		return nil
	}
	out := make([]protocol.Update, 0, len(ps.index))
	for _, q := range ps.byOrigin {
		out = append(out, q...)
	}
	return out
}
