package sim

import "fmt"

// Step is one action of a process script. Scripts model the paper's
// sequential processes: each process executes its steps in order,
// instantaneously in virtual time except where a step blocks (Await) or
// sleeps (Sleep).
type Step interface {
	isStep()
	fmt.Stringer
}

// WriteStep performs w_p(x)v.
type WriteStep struct {
	Var int
	Val int64
}

func (WriteStep) isStep() {}

// String implements fmt.Stringer.
func (s WriteStep) String() string { return fmt.Sprintf("write(x%d, %d)", s.Var+1, s.Val) }

// ReadStep performs r_p(x); the returned value is whatever the local
// replica holds.
type ReadStep struct {
	Var int
}

func (ReadStep) isStep() {}

// String implements fmt.Stringer.
func (s ReadStep) String() string { return fmt.Sprintf("read(x%d)", s.Var+1) }

// AwaitStep blocks the script until the local copy of Var holds Val.
// It is a scripting device (meta-level synchronization used to pin
// read-from edges in paper scenarios), not a memory operation: it
// produces no history event and does not touch protocol control state.
type AwaitStep struct {
	Var int
	Val int64
}

func (AwaitStep) isStep() {}

// String implements fmt.Stringer.
func (s AwaitStep) String() string { return fmt.Sprintf("await(x%d == %d)", s.Var+1, s.Val) }

// SleepStep advances the process's local time by D virtual nanoseconds
// (think time between operations).
type SleepStep struct {
	D int64
}

func (SleepStep) isStep() {}

// String implements fmt.Stringer.
func (s SleepStep) String() string { return fmt.Sprintf("sleep(%d)", s.D) }

// Script is the ordered step list of one process.
type Script []Step

// NewScript builds a Script from steps, a readability helper for
// fixtures.
func NewScript(steps ...Step) Script { return steps }

// Write appends a WriteStep and returns the extended script.
func (s Script) Write(x int, v int64) Script { return append(s, WriteStep{x, v}) }

// Read appends a ReadStep.
func (s Script) Read(x int) Script { return append(s, ReadStep{x}) }

// Await appends an AwaitStep.
func (s Script) Await(x int, v int64) Script { return append(s, AwaitStep{x, v}) }

// Sleep appends a SleepStep.
func (s Script) Sleep(d int64) Script { return append(s, SleepStep{d}) }
