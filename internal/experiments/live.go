package experiments

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
)

// Throughput is E6: operation throughput on the live goroutine runtime.
// Each process issues ops writes (hot mix) as fast as it can; reported
// are aggregate write throughput, read throughput, and the time to
// quiesce afterwards.
func Throughput(procs, opsPerProc int) (Result, error) {
	r := Result{
		Name:   "E6-throughput",
		Desc:   fmt.Sprintf("live-cluster throughput (%d procs × %d ops, immediate transport)", procs, opsPerProc),
		Header: []string{"protocol", "writes/s", "reads/s", "quiesce"},
	}
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv} {
		c, err := core.NewCluster(core.Config{
			Processes: procs, Variables: 8, Protocol: kind, FIFO: true,
		})
		if err != nil {
			return r, err
		}

		start := time.Now()
		errs := make(chan error, procs)
		for p := 0; p < procs; p++ {
			p := p
			go func() {
				for i := 1; i <= opsPerProc; i++ {
					if err := c.Node(p).Write(i%8, int64(p*1_000_000+i)); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()
		}
		for p := 0; p < procs; p++ {
			if err := <-errs; err != nil {
				c.Close()
				return r, err
			}
		}
		writeDur := time.Since(start)

		start = time.Now()
		for p := 0; p < procs; p++ {
			for i := 0; i < opsPerProc; i++ {
				if _, err := c.Node(p).Read(i % 8); err != nil {
					c.Close()
					return r, err
				}
			}
		}
		readDur := time.Since(start)

		start = time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = c.Quiesce(ctx)
		cancel()
		quiesceDur := time.Since(start)
		if err != nil {
			c.Close()
			return r, fmt.Errorf("experiments: E6 %v quiesce: %w", kind, err)
		}
		if err := c.Close(); err != nil {
			return r, err
		}

		total := float64(procs * opsPerProc)
		r.Rows = append(r.Rows, []string{
			kind.String(),
			fmt.Sprintf("%.0f", total/writeDur.Seconds()),
			fmt.Sprintf("%.0f", total/readDur.Seconds()),
			quiesceDur.Round(time.Microsecond).String(),
		})
	}
	return r, nil
}

// ThroughputSmokeName identifies the hot-path scorecard experiment in
// dsmbench/v1 documents; CheckThroughputRegression matches baseline
// and current results by it.
const ThroughputSmokeName = "E6b-throughput-smoke"

// ThroughputSmoke is the CI hot-path scorecard, mirroring the root
// BenchmarkClusterThroughput: one goroutine per process hammering a
// live OptP cluster over the immediate FIFO transport with a 3:1
// write:read mix, and the final Quiesce inside the timed region so
// every propagated update's receipt and apply is paid for. The ops/s
// column is what CI gates against BENCH_throughput.json.
func ThroughputSmoke(opsPerProc int) (Result, error) {
	r := Result{
		Name:   ThroughputSmokeName,
		Desc:   fmt.Sprintf("live OptP hot-path throughput, quiesce included (%d ops/proc, 3:1 write:read)", opsPerProc),
		Header: []string{"procs", "ops", "elapsed", "ops/s"},
	}
	for _, procs := range []int{2, 4, 8} {
		c, err := core.NewCluster(core.Config{
			Processes: procs, Variables: 16, Protocol: protocol.OptP, FIFO: true,
		})
		if err != nil {
			return r, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, procs)
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				n := c.Node(p)
				for i := 1; i <= opsPerProc; i++ {
					var err error
					if i%4 == 0 {
						_, err = n.Read(i % 16)
					} else {
						err = n.Write(i%16, int64(p*1_000_000+i))
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}(p)
		}
		wg.Wait()
		select {
		case err := <-errs:
			c.Close()
			return r, fmt.Errorf("experiments: %s %d procs: %w", ThroughputSmokeName, procs, err)
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err = c.Quiesce(ctx)
		cancel()
		if err != nil {
			c.Close()
			return r, fmt.Errorf("experiments: %s %d procs quiesce: %w", ThroughputSmokeName, procs, err)
		}
		elapsed := time.Since(start)
		if err := c.Close(); err != nil {
			return r, err
		}
		total := procs * opsPerProc
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(procs),
			fmt.Sprint(total),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
		})
	}
	return r, nil
}

// CheckThroughputRegression compares the ops/s column of the
// throughput-smoke experiment in current against the committed
// baseline scorecard and reports an error if any proc count regressed
// by more than tolerance (0.2 = 20%). Rows present in only one of the
// two documents are ignored, so resizing the sweep doesn't break the
// gate. Improvements never fail.
func CheckThroughputRegression(current []Result, baseline Scorecard, tolerance float64) error {
	base, err := opsPerSec(baseline.Experiments)
	if err != nil {
		return fmt.Errorf("experiments: baseline scorecard: %w", err)
	}
	if len(base) == 0 {
		return fmt.Errorf("experiments: baseline scorecard has no %s rows", ThroughputSmokeName)
	}
	cur, err := opsPerSec(current)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("experiments: current results have no %s rows", ThroughputSmokeName)
	}
	for procs, want := range base {
		got, ok := cur[procs]
		if !ok {
			continue
		}
		if floor := want * (1 - tolerance); got < floor {
			return fmt.Errorf("experiments: throughput regression at %s procs: %.0f ops/s < %.0f (baseline %.0f - %.0f%% tolerance)",
				procs, got, floor, want, tolerance*100)
		}
	}
	return nil
}

// opsPerSec extracts procs → ops/s from a throughput-smoke result.
func opsPerSec(results []Result) (map[string]float64, error) {
	out := map[string]float64{}
	for _, r := range results {
		if r.Name != ThroughputSmokeName {
			continue
		}
		procsCol, opsCol := -1, -1
		for i, h := range r.Header {
			switch h {
			case "procs":
				procsCol = i
			case "ops/s":
				opsCol = i
			}
		}
		if procsCol < 0 || opsCol < 0 {
			return nil, fmt.Errorf("experiments: %s table lacks procs/ops-per-sec columns (header %v)", r.Name, r.Header)
		}
		for _, row := range r.Rows {
			if len(row) <= procsCol || len(row) <= opsCol {
				continue
			}
			v, err := strconv.ParseFloat(row[opsCol], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s ops/s cell %q: %w", r.Name, row[opsCol], err)
			}
			out[row[procsCol]] = v
		}
	}
	return out, nil
}
