package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// ObsOverhead is E-obs: the cost of the live observability layer on
// the OptP apply path. Each mode benchmarks a live 2-process cluster
// pushing writes end to end (issue → broadcast → receipt → apply,
// i.e. the path every obs hook sits on) and quiescing, with the
// observer plus a streaming span histogram either disabled or fully
// wired. The acceptance bar for the layer is <10% overhead; the
// overhead column records where a run actually landed so regressions
// show up in scorecard diffs.
func ObsOverhead() (Result, error) {
	r := Result{
		Name:   "E-obs",
		Desc:   "observability-layer overhead on the live OptP write→apply path (2 procs, immediate transport)",
		Header: []string{"mode", "ns/op", "ops", "overhead"},
	}
	const (
		vars = 4
		// Quiescing every window keeps the async broadcast queues
		// bounded, so the benchmark measures the steady-state pipeline
		// instead of scheduler-dependent backlog drains.
		window = 256
	)
	var runErr error
	bench := func(withObs bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			cfg := core.Config{Processes: 2, Variables: vars, Protocol: protocol.OptP, FIFO: true}
			if withObs {
				cfg.Obs = obs.NewObserver(obs.Options{Procs: 2, Protocol: protocol.OptP.String()})
			}
			c, err := core.NewCluster(cfg)
			if err != nil {
				runErr = err
				b.SkipNow()
				return
			}
			defer c.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			quiesce := func() {
				if err := c.Quiesce(ctx); err != nil && runErr == nil {
					runErr = fmt.Errorf("quiesce: %w", err)
					b.FailNow()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Node(0).Write(i%vars, int64(i)); err != nil {
					runErr = err
					b.FailNow()
				}
				if i%window == window-1 {
					quiesce()
				}
			}
			quiesce()
			b.StopTimer()
		})
	}
	// Interleave repetitions and keep each mode's best run: scheduler
	// noise only ever inflates a pipeline benchmark, so min-of-N is the
	// honest estimate of the pipeline's actual cost.
	const reps = 5
	best := func(old testing.BenchmarkResult, cur testing.BenchmarkResult) testing.BenchmarkResult {
		if old.N == 0 || cur.NsPerOp() < old.NsPerOp() {
			return cur
		}
		return old
	}
	bench(false) // warm up the runtime so mode order cannot skew the comparison
	if runErr != nil {
		return r, fmt.Errorf("experiments: E-obs warmup: %w", runErr)
	}
	var off, on testing.BenchmarkResult
	for i := 0; i < reps; i++ {
		off = best(off, bench(false))
		if runErr != nil {
			return r, fmt.Errorf("experiments: E-obs baseline: %w", runErr)
		}
		on = best(on, bench(true))
		if runErr != nil {
			return r, fmt.Errorf("experiments: E-obs instrumented: %w", runErr)
		}
	}
	overhead := 0.0
	if off.NsPerOp() > 0 {
		overhead = float64(on.NsPerOp()-off.NsPerOp()) / float64(off.NsPerOp())
	}
	r.Rows = append(r.Rows,
		[]string{"obs off", fmt.Sprint(off.NsPerOp()), fmt.Sprint(off.N), "—"},
		[]string{"obs on", fmt.Sprint(on.NsPerOp()), fmt.Sprint(on.N), fmt.Sprintf("%+.1f%%", 100*overhead)},
	)
	return r, nil
}
