package checker

import (
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// h1Scripts and the two latency schedules mirror the paper's runs (the
// canonical copies live in internal/paperrepro; these are deliberately
// inlined so the checker is tested without depending on the renderer).
func h1Scripts() []sim.Script {
	return []sim.Script{
		sim.NewScript().Write(0, history.ValA).Write(0, history.ValC),
		sim.NewScript().Await(0, history.ValA).Read(0).Await(0, history.ValC).Write(1, history.ValB),
		sim.NewScript().Await(1, history.ValB).Read(1).Write(1, history.ValD),
	}
}

var (
	wa = history.WriteID{Proc: 0, Seq: 1}
	wc = history.WriteID{Proc: 0, Seq: 2}
	wb = history.WriteID{Proc: 1, Seq: 1}
	wd = history.WriteID{Proc: 2, Seq: 1}
)

func fig36Latency() *sim.ScriptedLatency {
	return sim.NewScriptedLatency(10).
		Set(wa, 1, 10).Set(wa, 2, 40).
		Set(wc, 1, 20).Set(wc, 2, 60).
		Set(wb, 0, 10).Set(wb, 2, 10)
}

func falseCausalityLatency() *sim.ScriptedLatency {
	return sim.NewScriptedLatency(10).
		Set(wa, 1, 10).Set(wa, 2, 15).
		Set(wc, 1, 20).Set(wc, 2, 60).
		Set(wb, 0, 10).Set(wb, 2, 10)
}

func runH1(t *testing.T, kind protocol.Kind, lat sim.Latency) (*sim.Result, *Report) {
	t.Helper()
	res, err := sim.Run(sim.Config{Procs: 3, Vars: 2, Protocol: kind, Latency: lat}, h1Scripts())
	if err != nil {
		t.Fatalf("%v run: %v", kind, err)
	}
	rep, err := Audit(res.Log)
	if err != nil {
		t.Fatalf("%v audit: %v", kind, err)
	}
	return res, rep
}

func TestOptPFig6Audit(t *testing.T) {
	res, rep := runH1(t, protocol.OptP, fig36Latency())
	if !rep.Safe() {
		t.Fatalf("safety violations: %v", rep.SafetyViolations)
	}
	if !rep.CausallyConsistent() {
		t.Fatalf("legality violations: %v", rep.LegalityViolations)
	}
	if !rep.InP() {
		t.Fatalf("not in 𝒫: %v", rep.NotApplied)
	}
	if !rep.WriteDelayOptimal() {
		t.Fatalf("unnecessary delays: %+v", rep.Delays)
	}
	// The single delay (b before a at p3) is necessary, witness a.
	if rep.NecessaryDelays != 1 || len(rep.Delays) != 1 {
		t.Fatalf("delays = %+v", rep.Delays)
	}
	if rep.Delays[0].MissingWrite != wa {
		t.Fatalf("witness = %v, want %v", rep.Delays[0].MissingWrite, wa)
	}
	// No excess and no missing dependencies: X_OptP ≡ X_co-safe.
	if ex := rep.ExcessDependencies(res.Updates); len(ex) != 0 {
		t.Fatalf("excess deps: %v", ex)
	}
	if miss := rep.MissingDependencies(res.Updates); len(miss) != 0 {
		t.Fatalf("missing deps: %v", miss)
	}
}

func TestANBKHFig3Audit(t *testing.T) {
	res, rep := runH1(t, protocol.ANBKH, fig36Latency())
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() {
		t.Fatal("ANBKH must be safe, consistent, and in 𝒫")
	}
	// Table 2 vs Table 1: X_ANBKH(b) = {a,c} ⊃ {a} = X_co-safe(b) and
	// X_ANBKH(d) = {a,c,b} ⊃ {a,b} = X_co-safe(d): two excess entries,
	// both caused by the spurious dependency on c.
	ex := rep.ExcessDependencies(res.Updates)
	if len(ex) != 2 || ex[0].Write != wb || ex[0].Extra != wc || ex[1].Write != wd || ex[1].Extra != wc {
		t.Fatalf("excess deps = %v, want [(b extra c), (d extra c)]", ex)
	}
	if miss := rep.MissingDependencies(res.Updates); len(miss) != 0 {
		t.Fatalf("missing deps: %v (ANBKH would be unsafe)", miss)
	}
}

// The delay-count contrast: with arrival order a, b, c at p3, OptP has
// zero delays while ANBKH buffers b unnecessarily.
func TestUnnecessaryDelayClassification(t *testing.T) {
	_, repOpt := runH1(t, protocol.OptP, falseCausalityLatency())
	if len(repOpt.Delays) != 0 {
		t.Fatalf("OptP delays = %+v", repOpt.Delays)
	}
	_, repAn := runH1(t, protocol.ANBKH, falseCausalityLatency())
	if repAn.UnnecessaryDelays != 1 || repAn.NecessaryDelays != 0 {
		t.Fatalf("ANBKH classification: necessary=%d unnecessary=%d",
			repAn.NecessaryDelays, repAn.UnnecessaryDelays)
	}
	if repAn.WriteDelayOptimal() {
		t.Fatal("ANBKH flagged optimal")
	}
	// The unnecessary delay is b at p3.
	d := repAn.Delays[0]
	if d.Write != wb || d.Proc != 2 || d.Necessary {
		t.Fatalf("delay = %+v", d)
	}
}

// Table 1: X_co-safe per write of Ĥ1.
func TestXcoSafeTable1(t *testing.T) {
	_, rep := runH1(t, protocol.OptP, fig36Latency())
	want := map[history.WriteID][]history.WriteID{
		wa: {},
		wc: {wa},
		wb: {wa},
		wd: {wa, wb},
	}
	for w, exp := range want {
		got := rep.XcoSafe(w)
		if len(got) != len(exp) {
			t.Fatalf("XcoSafe(%v) = %v, want %v", w, got, exp)
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("XcoSafe(%v) = %v, want %v", w, got, exp)
			}
		}
	}
	if rep.XcoSafe(history.WriteID{Proc: 9, Seq: 9}) != nil {
		t.Fatal("unknown write should have nil XcoSafe")
	}
}

// Table 2: the ANBKH dependency sets reconstructed from FM clocks.
func TestDependencySetTable2(t *testing.T) {
	res, _ := runH1(t, protocol.ANBKH, fig36Latency())
	want := map[history.WriteID][]history.WriteID{
		wa: {},
		wc: {wa},
		wb: {wa, wc},
		wd: {wa, wc, wb},
	}
	for w, exp := range want {
		got := DependencySet(res.Updates, w)
		if len(got) != len(exp) {
			t.Fatalf("X_ANBKH(%v) = %v, want %v", w, got, exp)
		}
		seen := map[history.WriteID]bool{}
		for _, g := range got {
			seen[g] = true
		}
		for _, e := range exp {
			if !seen[e] {
				t.Fatalf("X_ANBKH(%v) = %v, missing %v", w, got, e)
			}
		}
	}
	if DependencySet(res.Updates, history.WriteID{Proc: 9, Seq: 9}) != nil {
		t.Fatal("unknown write should have nil deps")
	}
}

// WS-recv on the Figure-3 arrival order: discards happen, the run
// leaves 𝒫, but stays causally consistent.
func TestWSRecvOutsideP(t *testing.T) {
	// Workload engineered for a skip: p1 writes x twice; deliveries to
	// p2 reversed.
	w1 := history.WriteID{Proc: 0, Seq: 1}
	w2 := history.WriteID{Proc: 0, Seq: 2}
	lat := sim.NewScriptedLatency(10).Set(w1, 1, 50).Set(w2, 1, 10)
	scripts := []sim.Script{
		sim.NewScript().Write(0, 1).Write(0, 2),
		sim.NewScript().Sleep(100).Read(0),
	}
	res, err := sim.Run(sim.Config{Procs: 2, Vars: 1, Protocol: protocol.WSRecv, Latency: lat}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(res.Log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Discards != 1 {
		t.Fatalf("discards = %d", rep.Discards)
	}
	if rep.InP() {
		t.Fatal("WS-recv run with a discard flagged as in 𝒫")
	}
	// But logically safe and consistent.
	if !rep.Safe() {
		t.Fatalf("safety violations: %v", rep.SafetyViolations)
	}
	if !rep.CausallyConsistent() {
		t.Fatalf("legality: %v", rep.LegalityViolations)
	}
	// Exactly one NotApplied entry, logical, for w1 at p2.
	if len(rep.NotApplied) != 1 || !rep.NotApplied[0].Logical || rep.NotApplied[0].Write != w1 {
		t.Fatalf("NotApplied = %v", rep.NotApplied)
	}
}

// Property sweep: across random workloads and seeds, OptP is safe,
// consistent, in 𝒫, and never incurs an unnecessary delay (Theorem 4);
// ANBKH is safe and consistent but non-optimal on at least one seed;
// OptP's delay count never exceeds ANBKH's on the same workload.
func TestPropertyOptPOptimalEverywhere(t *testing.T) {
	anbkhUnnecessary := 0
	for seed := uint64(1); seed <= 12; seed++ {
		cfg := workload.Config{
			Procs: 4, Vars: 3, OpsPerProc: 15, WriteRatio: 0.6,
			ThinkMin: 1, ThinkMax: 40, Seed: seed,
		}
		scripts, err := workload.Scripts(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := func(kind protocol.Kind) (*sim.Result, *Report) {
			res, err := sim.Run(sim.Config{
				Procs: cfg.Procs, Vars: cfg.Vars, Protocol: kind,
				Latency: sim.NewUniformLatency(1, 150, seed*7),
			}, scripts)
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			rep, err := Audit(res.Log)
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			return res, rep
		}
		resO, repO := run(protocol.OptP)
		if !repO.Safe() || !repO.CausallyConsistent() || !repO.InP() {
			t.Fatalf("seed %d: OptP failed base audit", seed)
		}
		if !repO.WriteDelayOptimal() {
			t.Fatalf("seed %d: OptP had %d unnecessary delays: %+v",
				seed, repO.UnnecessaryDelays, repO.Delays)
		}
		if ex := repO.ExcessDependencies(resO.Updates); len(ex) != 0 {
			t.Fatalf("seed %d: OptP excess deps %v", seed, ex)
		}
		if miss := repO.MissingDependencies(resO.Updates); len(miss) != 0 {
			t.Fatalf("seed %d: OptP missing deps %v", seed, miss)
		}

		resA, repA := run(protocol.ANBKH)
		if !repA.Safe() || !repA.CausallyConsistent() || !repA.InP() {
			t.Fatalf("seed %d: ANBKH failed base audit", seed)
		}
		if miss := repA.MissingDependencies(resA.Updates); len(miss) != 0 {
			t.Fatalf("seed %d: ANBKH missing deps %v", seed, miss)
		}
		anbkhUnnecessary += repA.UnnecessaryDelays
		if repO.NecessaryDelays > len(repA.Delays) {
			t.Fatalf("seed %d: OptP necessary delays (%d) exceed ANBKH total (%d)",
				seed, repO.NecessaryDelays, len(repA.Delays))
		}
	}
	if anbkhUnnecessary == 0 {
		t.Fatal("ANBKH showed no unnecessary delay on any seed — sweep too tame to distinguish the protocols")
	}
}

// A hand-built inconsistent log must be flagged: two →co-ordered writes
// applied in reverse at a third process.
func TestSafetyViolationDetected(t *testing.T) {
	log := trace.NewLog(3, 1)
	w1 := history.WriteID{Proc: 0, Seq: 1}
	w2 := history.WriteID{Proc: 1, Seq: 1}
	// p1 writes 1; p2 reads it then writes 2 (so w1 →co w2);
	// p3 applies w2 before w1.
	log.Append(trace.Event{Kind: trace.Issue, Proc: 0, Write: w1, Var: 0, Val: 1})
	log.Append(trace.Event{Kind: trace.Apply, Proc: 1, Write: w1, Var: 0, Val: 1})
	log.Append(trace.Event{Kind: trace.Return, Proc: 1, Var: 0, Val: 1, From: w1})
	log.Append(trace.Event{Kind: trace.Issue, Proc: 1, Write: w2, Var: 0, Val: 2})
	log.Append(trace.Event{Kind: trace.Apply, Proc: 2, Write: w2, Var: 0, Val: 2})
	log.Append(trace.Event{Kind: trace.Apply, Proc: 2, Write: w1, Var: 0, Val: 1})
	rep, err := Audit(log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe() {
		t.Fatal("out-of-order applies not detected")
	}
	found := false
	for _, v := range rep.SafetyViolations {
		if v.Proc == 2 && v.First == w1 && v.Second == w2 {
			found = true
			if v.String() == "" {
				t.Fatal("empty violation string")
			}
		}
	}
	if !found {
		t.Fatalf("violations = %v", rep.SafetyViolations)
	}
}

// A write never applied at some process must be flagged as a liveness
// hole.
func TestMissingApplyDetected(t *testing.T) {
	log := trace.NewLog(2, 1)
	w1 := history.WriteID{Proc: 0, Seq: 1}
	log.Append(trace.Event{Kind: trace.Issue, Proc: 0, Write: w1, Var: 0, Val: 1})
	rep, err := Audit(log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InP() {
		t.Fatal("missing apply not detected")
	}
	if len(rep.NotApplied) != 1 || rep.NotApplied[0].Proc != 1 || rep.NotApplied[0].Logical {
		t.Fatalf("NotApplied = %v", rep.NotApplied)
	}
	if rep.NotApplied[0].String() == "" {
		t.Fatal("empty MissingApply string")
	}
}

func TestAuditRejectsMalformedLog(t *testing.T) {
	log := trace.NewLog(1, 1)
	// A read-from pointing at a write that does not exist.
	log.Append(trace.Event{Kind: trace.Return, Proc: 0, Var: 0, Val: 5, From: history.WriteID{Proc: 0, Seq: 3}})
	if _, err := Audit(log); err == nil {
		t.Fatal("expected error for malformed log")
	}
}
