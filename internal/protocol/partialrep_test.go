package protocol

import (
	"testing"

	"repro/internal/history"
)

func TestShareSetsValidation(t *testing.T) {
	if _, err := NewShareSets([][]int{{}}, 2); err == nil {
		t.Error("empty share-set accepted")
	}
	if _, err := NewShareSets([][]int{{2}}, 2); err == nil {
		t.Error("out-of-range process accepted")
	}
	if _, err := NewShareSets([][]int{{0, 0}}, 2); err == nil {
		t.Error("duplicate process accepted")
	}
	if _, err := NewShareSets(nil, 0); err == nil {
		t.Error("zero process count accepted")
	}
	s, err := NewShareSets([][]int{{1, 0}, {1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Replicas(0); got[0] != 0 || got[1] != 1 {
		t.Errorf("Replicas(0) = %v, want sorted [0 1]", got)
	}
	if s.IsFull() {
		t.Error("partial assignment reported full")
	}
	if !s.Replicates(1, 1) || s.Replicates(0, 1) {
		t.Error("membership wrong")
	}
}

func TestShareSetsModulo(t *testing.T) {
	s := Modulo(4, 4, 2)
	for x := 0; x < 4; x++ {
		reps := s.Replicas(x)
		if len(reps) != 2 {
			t.Fatalf("x%d has %d replicas", x+1, len(reps))
		}
		if !s.Replicates(x%4, x) || !s.Replicates((x+1)%4, x) {
			t.Errorf("x%d not at modulo owners: %v", x+1, reps)
		}
	}
	for p := 0; p < 4; p++ {
		if got := len(s.LocalVars(p)); got != 2 {
			t.Errorf("p%d stores %d vars, want 2", p+1, got)
		}
	}
	if !Full(3, 5).IsFull() {
		t.Error("Full not full")
	}
	var zero ShareSets
	if !zero.IsZero() || !zero.Replicates(3, 9) || !zero.IsFull() {
		t.Error("zero value should act as full replication")
	}
	// Server choice is deterministic and inside the share-set.
	if srv := s.Server(3, 0); srv != s.Replicas(0)[3%2] {
		t.Errorf("Server = %d", srv)
	}
}

// TestPartialRepForwardedReadYourWrites: a writer outside the share-set
// still reads its own write back through forwarding — the server blocks
// the request until the write is applied there.
func TestPartialRepForwardedReadYourWrites(t *testing.T) {
	shares := Modulo(3, 3, 2) // x0→{0,1}, x1→{1,2}, x2→{0,2}
	mk := func(p int) Replica { return NewPartialRep(p, 3, 3, shares) }
	p0, p2 := mk(0), mk(2)

	u, bc := p2.LocalWrite(0, 42) // p2 does not replicate x0
	if !bc {
		t.Fatal("write not propagated")
	}
	if _, id := p2.(Introspector).Value(0); id != history.Bottom {
		t.Fatalf("non-replicated variable holds %v", id)
	}

	rr := p2.(RemoteReader)
	req, server := rr.NewReadReq(0)
	if server != 0 { // shareSet(x0) = [0 1], requester 2 → index 0
		t.Fatalf("server = %d, want 0", server)
	}
	if req.ID.Seq >= 0 {
		t.Fatalf("read token %d not negative", req.ID.Seq)
	}
	if got := p0.Status(req); got != Blocked {
		t.Fatalf("request deliverable before the write: %v", got)
	}
	if got := p0.Status(u); got != Deliverable {
		t.Fatalf("update not deliverable at replica: %v", got)
	}
	p0.Apply(u)
	if got := p0.Status(req); got != Deliverable {
		t.Fatalf("request still %v after the write applied", got)
	}
	reply := p0.(RemoteReader).ServeRead(req)
	if !reply.ReadReply || reply.ID.Seq != req.ID.Seq {
		t.Fatalf("bad reply %v", reply)
	}
	v, w := rr.CompleteRead(reply)
	if v != 42 || w != u.ID {
		t.Fatalf("forwarded read = (%d, %v), want (42, %v)", v, w, u.ID)
	}
}

// TestPartialRepCausalOrderPerDestination: two causally ordered writes
// addressed to the same replica must apply in order there, while a
// causal predecessor addressed elsewhere never blocks delivery.
func TestPartialRepCausalOrderPerDestination(t *testing.T) {
	shares := Modulo(3, 3, 2) // x0→{0,1}, x1→{1,2}, x2→{0,2}
	p0 := NewPartialRep(0, 3, 3, shares)
	p2 := NewPartialRep(2, 3, 3, shares)

	p1 := NewPartialRep(1, 3, 3, shares)
	uA, _ := p1.LocalWrite(0, 5) // x0 → {0,1}: installs locally at p1
	uB, _ := p1.LocalWrite(2, 6) // x2 → {0,2}: p1 not a replica

	// Both writes are addressed to p0, so the (p1→p0) edge forces
	// in-order delivery: uB blocks until uA is applied.
	if got := p0.Status(uB); got != Blocked {
		t.Fatalf("uB at p0 before uA: %v, want blocked", got)
	}
	p0.Apply(uA)
	if got := p0.Status(uB); got != Deliverable {
		t.Fatalf("uB at p0 after uA: %v, want deliverable", got)
	}
	p0.Apply(uB)

	// At p2, uA (addressed {0,1}) is not part of the wait condition —
	// uB applies without ever seeing it.
	if got := p2.Status(uB); got != Deliverable {
		t.Fatalf("uB at p2: %v, want deliverable", got)
	}
	p2.Apply(uB)
	if v, _ := p2.Read(2); v != 6 {
		t.Fatalf("p2 read x3 = %d, want 6", v)
	}
}

func TestPartialRepPanics(t *testing.T) {
	shares := Modulo(3, 3, 1) // every var at exactly one proc
	p1 := NewPartialRep(1, 3, 3, shares)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("direct read of non-local", func() { p1.Read(0) })
	mustPanic("forwarding a local read", func() { p1.(RemoteReader).NewReadReq(1) })
	mustPanic("serving a non-local read", func() {
		p1.(RemoteReader).ServeRead(Update{Var: 0, ReadReq: true})
	})
	other := NewPartialRep(0, 3, 3, shares)
	u, _ := other.LocalWrite(0, 1)
	mustPanic("apply outside share-set", func() { p1.Apply(u) })
	mustPanic("discard", func() { p1.Discard(u) })
	mustPanic("mis-shaped share-sets", func() { NewPartialRep(0, 2, 2, shares) })
}

// TestPartialRepStorage: per-process storage is |LocalVars|, not V.
func TestPartialRepStorage(t *testing.T) {
	shares := Modulo(16, 16, 4)
	r := NewPartialRep(3, 16, 16, shares).(*partialrep)
	if len(r.vals) != 4 || len(r.lastOn) != 4 || len(r.writers) != 4 {
		t.Fatalf("p4 stores %d/%d/%d slots, want 4", len(r.vals), len(r.lastOn), len(r.writers))
	}
}

func TestReadReqReplyCodecRoundTrip(t *testing.T) {
	for _, u := range []Update{
		{ID: history.WriteID{Proc: 2, Seq: -3}, Var: 1, ReadReq: true},
		{ID: history.WriteID{Proc: 0, Seq: -3}, Var: 1, Val: 7, Prev: history.WriteID{Proc: 1, Seq: 4}, ReadReply: true},
	} {
		data, err := u.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Update
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if got.ReadReq != u.ReadReq || got.ReadReply != u.ReadReply || got.ID != u.ID {
			t.Fatalf("round trip %+v != %+v", got, u)
		}
	}
}
