package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/history"
)

// ParseEventKind maps a kind name (as produced by EventKind.String) to
// its EventKind.
func ParseEventKind(s string) (EventKind, error) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if eventKindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// WriteCSV streams the log as CSV with a header row, one event per
// line. Columns: seq, kind, proc, time, write_proc, write_seq, var,
// val, from_proc, from_seq, buffered.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"seq", "kind", "proc", "time",
		"write_proc", "write_seq", "var", "val",
		"from_proc", "from_seq", "buffered",
	}); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	for _, e := range l.Events {
		rec := []string{
			strconv.Itoa(e.Seq),
			e.Kind.String(),
			strconv.Itoa(e.Proc),
			strconv.FormatInt(e.Time, 10),
			strconv.Itoa(e.Write.Proc),
			strconv.Itoa(e.Write.Seq),
			strconv.Itoa(e.Var),
			strconv.FormatInt(e.Val, 10),
			strconv.Itoa(e.From.Proc),
			strconv.Itoa(e.From.Seq),
			strconv.FormatBool(e.Buffered),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: csv row %d: %w", e.Seq, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a WriteCSV stream back into a Log. NumProcs and
// NumVars are reconstructed as upper bounds from the events (the CSV
// format does not carry them); pass the result through a checker that
// knows the real topology when it matters.
func ReadCSV(r io.Reader) (*Log, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv read: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: csv: missing header")
	}
	l := &Log{}
	for i, rec := range recs[1:] {
		e, err := parseCSVEvent(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i, err)
		}
		l.Events = append(l.Events, e)
		if e.Proc >= l.NumProcs {
			l.NumProcs = e.Proc + 1
		}
		if e.Var >= l.NumVars {
			l.NumVars = e.Var + 1
		}
	}
	return l, nil
}

// parseCSVEvent parses one WriteCSV data row.
func parseCSVEvent(rec []string) (Event, error) {
	var e Event
	if len(rec) != 11 {
		return e, fmt.Errorf("%d columns, want 11", len(rec))
	}
	var err error
	ints := func(s string) int {
		n, perr := strconv.Atoi(s)
		if perr != nil && err == nil {
			err = perr
		}
		return n
	}
	int64s := func(s string) int64 {
		n, perr := strconv.ParseInt(s, 10, 64)
		if perr != nil && err == nil {
			err = perr
		}
		return n
	}
	e.Seq = ints(rec[0])
	e.Proc = ints(rec[2])
	e.Time = int64s(rec[3])
	e.Write = history.WriteID{Proc: ints(rec[4]), Seq: ints(rec[5])}
	e.Var = ints(rec[6])
	e.Val = int64s(rec[7])
	e.From = history.WriteID{Proc: ints(rec[8]), Seq: ints(rec[9])}
	if err != nil {
		return e, err
	}
	if e.Kind, err = ParseEventKind(rec[1]); err != nil {
		return e, err
	}
	e.Buffered, err = strconv.ParseBool(rec[10])
	return e, err
}

// JSONLog is the stable JSON schema of a log.
type JSONLog struct {
	NumProcs  int         `json:"num_procs"`
	NumVars   int         `json:"num_vars"`
	ShareSets [][]int     `json:"share_sets,omitempty"`
	Events    []JSONEvent `json:"events"`
}

// JSONEvent is the stable JSON schema of one event — shared by the
// whole-log WriteJSON document and the obs layer's streaming JSONL
// sink, so live and post-hoc exports parse identically.
type JSONEvent struct {
	Seq      int    `json:"seq"`
	Kind     string `json:"kind"`
	Proc     int    `json:"proc"`
	Time     int64  `json:"time"`
	Write    [2]int `json:"write"`
	Var      int    `json:"var"`
	Val      int64  `json:"val"`
	From     [2]int `json:"from"`
	Buffered bool   `json:"buffered,omitempty"`
}

// ToJSONEvent converts an Event to its wire schema.
func ToJSONEvent(e Event) JSONEvent {
	return JSONEvent{
		Seq: e.Seq, Kind: e.Kind.String(), Proc: e.Proc, Time: e.Time,
		Write: [2]int{e.Write.Proc, e.Write.Seq},
		Var:   e.Var, Val: e.Val,
		From:     [2]int{e.From.Proc, e.From.Seq},
		Buffered: e.Buffered,
	}
}

// Event converts the wire schema back, validating the kind name.
func (je JSONEvent) Event() (Event, error) {
	k, err := ParseEventKind(je.Kind)
	if err != nil {
		return Event{}, err
	}
	return Event{
		Seq: je.Seq, Kind: k, Proc: je.Proc, Time: je.Time,
		Write: history.WriteID{Proc: je.Write[0], Seq: je.Write[1]},
		Var:   je.Var, Val: je.Val,
		From:     history.WriteID{Proc: je.From[0], Seq: je.From[1]},
		Buffered: je.Buffered,
	}, nil
}

// WriteJSON streams the log as a single JSON document.
func (l *Log) WriteJSON(w io.Writer) error {
	jl := JSONLog{NumProcs: l.NumProcs, NumVars: l.NumVars, ShareSets: l.ShareSets, Events: make([]JSONEvent, 0, len(l.Events))}
	for _, e := range l.Events {
		jl.Events = append(jl.Events, ToJSONEvent(e))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jl); err != nil {
		return fmt.Errorf("trace: json encode: %w", err)
	}
	return nil
}

// ReadJSON parses a WriteJSON document back into a Log.
func ReadJSON(r io.Reader) (*Log, error) {
	var jl JSONLog
	if err := json.NewDecoder(r).Decode(&jl); err != nil {
		return nil, fmt.Errorf("trace: json decode: %w", err)
	}
	l := NewLog(jl.NumProcs, jl.NumVars)
	l.ShareSets = jl.ShareSets
	for i, je := range jl.Events {
		e, err := je.Event()
		if err != nil {
			return nil, fmt.Errorf("trace: json event %d: %w", i, err)
		}
		l.Events = append(l.Events, e)
	}
	return l, nil
}
