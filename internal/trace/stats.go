package trace

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a sample of int64 measurements (delay durations,
// latencies) into the statistics the experiment tables report.
type Summary struct {
	Count         int
	Min, Max      int64
	Mean          float64
	P50, P95, P99 int64
	StdDev        float64
	Total         int64
}

// Summarize computes a Summary. The input slice is not modified.
func Summarize(xs []int64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]int64, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Welford's online algorithm: the textbook sumSq/n - mean² form
	// cancels catastrophically when samples are large relative to their
	// spread (wall-clock nanoseconds are exactly that), producing
	// garbage or negative variances. Welford accumulates the centered
	// second moment directly and stays accurate at any magnitude.
	var mean, m2, sum float64
	for i, x := range s {
		v := float64(x)
		sum += v
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	n := float64(len(s))
	variance := m2 / n
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		P50:    quantile(s, 0.50),
		P95:    quantile(s, 0.95),
		P99:    quantile(s, 0.99),
		StdDev: math.Sqrt(variance),
		Total:  int64(sum),
	}
}

// quantile returns the q-th quantile of a sorted sample using the
// nearest-rank method.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the summary in one line.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%d p50=%d mean=%.1f p95=%d p99=%d max=%d",
		s.Count, s.Min, s.P50, s.Mean, s.P95, s.P99, s.Max)
}

// RunStats is the per-run scorecard that experiment sweeps aggregate.
type RunStats struct {
	Protocol string
	Procs    int
	Vars     int

	Writes   int
	Reads    int
	Receipts int

	// Delays is the number of write delays (buffered receipts,
	// Definition 3); DelayRate = Delays/Receipts.
	Delays    int
	DelayRate float64
	// DelayDurations summarizes how long buffered updates waited.
	DelayDurations Summary

	// Discards counts writing-semantics discards (0 for protocols in 𝒫).
	Discards int

	// BufferMax and BufferMean describe pending-queue occupancy.
	BufferMax  int
	BufferMean float64

	// NetDrops, Retransmits and DupDiscards describe the chaos stack's
	// work (all 0 on a fault-free transport): frames lost to injection,
	// reliability re-sends, and duplicates suppressed at receivers.
	NetDrops    int
	Retransmits int
	DupDiscards int

	// Crashes, Recoveries and Suspects describe the crash-recovery
	// subsystem's activity (all 0 without crash injection): crash-stops,
	// restarts from the WAL, and failure-detector suspicions.
	Crashes    int
	Recoveries int
	Suspects   int
}

// Stats computes the scorecard for a log.
func (l *Log) Stats(protocol string) RunStats {
	delays := l.Delays()
	durs := make([]int64, 0, len(delays))
	for _, d := range delays {
		durs = append(durs, d.Duration())
	}
	occ := l.BufferOccupancy()
	receipts := l.ReceiptCount()
	st := RunStats{
		Protocol:       protocol,
		Procs:          l.NumProcs,
		Vars:           l.NumVars,
		Writes:         l.WritesIssued(),
		Reads:          l.ReadsReturned(),
		Receipts:       receipts,
		Delays:         l.DelayCount(),
		Discards:       l.DiscardCount(),
		DelayDurations: Summarize(durs),
		BufferMax:      occ.Max,
		BufferMean:     occ.MeanTimeWeighted,
		NetDrops:       l.NetDropCount(),
		Retransmits:    l.RetransmitCount(),
		DupDiscards:    l.DupDiscardCount(),
		Crashes:        l.CrashCount(),
		Recoveries:     l.RecoverCount(),
		Suspects:       l.SuspectCount(),
	}
	if receipts > 0 {
		st.DelayRate = float64(st.Delays) / float64(receipts)
	}
	return st
}

// String renders the scorecard in one line, the row format of the
// dsmbench tables.
func (s RunStats) String() string {
	out := fmt.Sprintf("%-18s n=%d writes=%d reads=%d receipts=%d delays=%d (%.2f%%) discards=%d bufmax=%d bufmean=%.2f",
		s.Protocol, s.Procs, s.Writes, s.Reads, s.Receipts, s.Delays, 100*s.DelayRate, s.Discards, s.BufferMax, s.BufferMean)
	if s.NetDrops > 0 || s.Retransmits > 0 || s.DupDiscards > 0 {
		out += fmt.Sprintf(" netdrops=%d retransmits=%d dupdiscards=%d", s.NetDrops, s.Retransmits, s.DupDiscards)
	}
	if s.Crashes > 0 || s.Recoveries > 0 || s.Suspects > 0 {
		out += fmt.Sprintf(" crashes=%d recoveries=%d suspects=%d", s.Crashes, s.Recoveries, s.Suspects)
	}
	return out
}
