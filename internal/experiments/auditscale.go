package experiments

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/checker"
	"repro/internal/trace"
	"repro/internal/workload"
)

// AuditScaleName identifies the audit-scale scorecard experiment in
// dsmbench/v1 documents; CheckAuditRegression matches baseline and
// current results by it.
const AuditScaleName = "E-audit-scale"

// auditRefEnv, when set to an op count, raises the size ceiling up to
// which AuditScale also times the dense reference audit. The default
// ceiling is 1k — the reference takes seconds at 10k and the better
// part of an hour at 100k, so the big before numbers are measured once
// (for BENCH_checker.json) rather than on every CI run.
const auditRefEnv = "DSMBENCH_AUDIT_REF"

// AuditScale is the offline-checker scaling experiment: for each trace
// size it generates the deterministic synthetic log of BenchmarkAudit
// (4 procs, 8 vars, half writes, buffered episodes every 7th receipt),
// times the vector-frontier checker.Audit (best of three), and — up to
// the reference ceiling — the dense checker.AuditReference, reporting
// the speedup. extraOps > 100k appends one more rung to the 1k/10k/100k
// ladder, which is how the committed baseline gets its 1M row.
func AuditScale(extraOps int) (Result, error) {
	sizes := []int{1_000, 10_000, 100_000}
	if extraOps > sizes[len(sizes)-1] {
		sizes = append(sizes, extraOps)
	}
	refCeiling := 1_000
	if s := os.Getenv(auditRefEnv); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: %s=%q: %w", auditRefEnv, s, err)
		}
		refCeiling = v
	}
	return auditScale(sizes, refCeiling)
}

func auditScale(sizes []int, refCeiling int) (Result, error) {
	r := Result{
		Name:   AuditScaleName,
		Desc:   fmt.Sprintf("offline audit scaling, vector-frontier vs dense reference (4 procs, reference ≤ %d ops)", refCeiling),
		Header: []string{"ops", "events", "writes", "delays", "audit-ms", "ref-ms", "speedup"},
	}
	for _, ops := range sizes {
		log, err := workload.AuditTrace(workload.AuditTraceConfig{
			Procs: 4, Vars: 8, Ops: ops, WriteRatio: 0.5, DelayEvery: 7, Seed: 1,
		})
		if err != nil {
			return r, err
		}
		var rep *checker.Report
		fast, err := bestOf(3, func() (*checker.Report, error) { return checker.Audit(log) }, &rep)
		if err != nil {
			return r, fmt.Errorf("experiments: %s at %d ops: %w", AuditScaleName, ops, err)
		}
		if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() {
			return r, fmt.Errorf("experiments: %s at %d ops: synthetic trace audits dirty: %v", AuditScaleName, ops, rep)
		}
		refMS, speedup := "-", "-"
		if ops <= refCeiling {
			ref, err := bestOf(1, func() (*checker.Report, error) { return checker.AuditReference(log) }, nil)
			if err != nil {
				return r, fmt.Errorf("experiments: %s reference at %d ops: %w", AuditScaleName, ops, err)
			}
			refMS = fmt.Sprintf("%.3f", float64(ref)/1e6)
			speedup = fmt.Sprintf("%.1fx", float64(ref)/float64(fast))
		}
		writes := 0
		for _, e := range log.Events {
			if e.Kind == trace.Issue {
				writes++
			}
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(ops),
			fmt.Sprint(len(log.Events)),
			fmt.Sprint(writes),
			fmt.Sprint(len(rep.Delays)),
			fmt.Sprintf("%.3f", float64(fast)/1e6),
			refMS,
			speedup,
		})
	}
	return r, nil
}

// bestOf runs fn reps times and returns the fastest wall-clock nanos,
// keeping the last report in *out when out is non-nil.
func bestOf(reps int, fn func() (*checker.Report, error), out **checker.Report) (int64, error) {
	best := int64(-1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		rep, err := fn()
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return 0, err
		}
		if best < 0 || elapsed < best {
			best = elapsed
		}
		if out != nil {
			*out = rep
		}
	}
	return best, nil
}

// CheckAuditRegression compares the audit-ms column of the audit-scale
// experiment in current against the committed baseline scorecard and
// reports an error if any trace size regressed (got slower) by more
// than tolerance (0.2 = 20%). Rows present in only one of the two
// documents are ignored, so extending the ladder doesn't break the
// gate. Improvements never fail.
func CheckAuditRegression(current []Result, baseline Scorecard, tolerance float64) error {
	base, err := auditMillis(baseline.Experiments)
	if err != nil {
		return fmt.Errorf("experiments: baseline scorecard: %w", err)
	}
	if len(base) == 0 {
		return fmt.Errorf("experiments: baseline scorecard has no %s rows", AuditScaleName)
	}
	cur, err := auditMillis(current)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("experiments: current results have no %s rows", AuditScaleName)
	}
	for ops, want := range base {
		got, ok := cur[ops]
		if !ok {
			continue
		}
		if ceiling := want * (1 + tolerance); got > ceiling {
			return fmt.Errorf("experiments: audit regression at %s ops: %.3f ms > %.3f (baseline %.3f + %.0f%% tolerance)",
				ops, got, ceiling, want, tolerance*100)
		}
	}
	return nil
}

// auditMillis extracts ops → audit-ms from an audit-scale result.
func auditMillis(results []Result) (map[string]float64, error) {
	out := map[string]float64{}
	for _, r := range results {
		if r.Name != AuditScaleName {
			continue
		}
		opsCol, msCol := -1, -1
		for i, h := range r.Header {
			switch h {
			case "ops":
				opsCol = i
			case "audit-ms":
				msCol = i
			}
		}
		if opsCol < 0 || msCol < 0 {
			return nil, fmt.Errorf("experiments: %s table lacks ops/audit-ms columns (header %v)", r.Name, r.Header)
		}
		for _, row := range r.Rows {
			if len(row) <= opsCol || len(row) <= msCol {
				continue
			}
			v, err := strconv.ParseFloat(row[msCol], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s audit-ms cell %q: %w", r.Name, row[msCol], err)
			}
			out[row[opsCol]] = v
		}
	}
	return out, nil
}
