package netchaos

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// newSeededRNG mirrors Wrap's source construction for determinism
// tests.
func newSeededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// pair builds a chaos-wrapped server side of a real TCP connection and
// the raw client side, plus the wrapped listener for stats.
func pair(t *testing.T, cfg Config) (server net.Conn, client net.Conn, l *Listener) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ln := Wrap(inner, cfg)
	wl, ok := ln.(*Listener)
	if !ok {
		t.Fatalf("Wrap returned %T, want *Listener for an enabled config", ln)
	}
	t.Cleanup(func() { ln.Close() })

	var wg sync.WaitGroup
	wg.Add(1)
	var aerr error
	go func() {
		defer wg.Done()
		server, aerr = ln.Accept()
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	wg.Wait()
	if aerr != nil {
		t.Fatalf("Accept: %v", aerr)
	}
	t.Cleanup(func() {
		server.Close()
		client.Close()
	})
	return server, client, wl
}

func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"full mix", Config{KillProb: 0.01, StallProb: 0.05, TruncProb: 0.01, AcceptProb: 0.02, StallMax: time.Millisecond}, true},
		{"prob one", Config{KillProb: 1}, true},
		{"negative prob", Config{KillProb: -0.1}, false},
		{"prob above one", Config{StallProb: 1.1}, false},
		{"negative stall", Config{StallMax: -1}, false},
	} {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDisabledConfigIsPassthrough(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer inner.Close()
	if got := Wrap(inner, Config{Seed: 7}); got != inner {
		t.Fatalf("Wrap with no faults = %T, want the inner listener unchanged", got)
	}
}

// KillProb 1: the very first server read resets the connection, the
// socket is really closed (the peer sees EOF/reset), and the error is
// marked non-temporary.
func TestKillResetsBothEnds(t *testing.T) {
	server, client, l := pair(t, Config{Seed: 1, KillProb: 1})
	_, err := server.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("chaos read succeeded, want injected reset")
	}
	var reset errReset
	if !errors.As(err, &reset) {
		t.Fatalf("chaos read error = %v (%T), want errReset", err, err)
	}
	if ne, ok := err.(net.Error); !ok || ne.Temporary() || ne.Timeout() {
		t.Fatalf("injected reset should be a permanent net.Error, got %v", err)
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after injected reset")
	}
	if s := l.Stats(); s.Kills != 1 {
		t.Fatalf("stats.Kills = %d, want 1", s.Kills)
	}
}

// TruncProb 1: the peer receives a strict prefix of the write, then
// the stream ends.
func TestTruncationTearsTheFrame(t *testing.T) {
	server, client, l := pair(t, Config{Seed: 1, TruncProb: 1})
	payload := []byte("0123456789abcdef")
	if _, err := server.Write(payload); err == nil {
		t.Fatal("truncated write reported success, want reset error")
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(client)
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("peer received %d bytes of %d, want a strict non-empty prefix", len(got), len(payload))
	}
	if s := l.Stats(); s.Truncs != 1 {
		t.Fatalf("stats.Truncs = %d, want 1", s.Truncs)
	}
}

// StallProb 1: I/O still succeeds, just late, and the stall respects
// StallMax.
func TestStallDelaysButDelivers(t *testing.T) {
	server, client, l := pair(t, Config{Seed: 1, StallProb: 1, StallMax: 5 * time.Millisecond})
	go client.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := server.Read(buf); err != nil {
		t.Fatalf("stalled read failed: %v", err)
	}
	if buf[0] != 'x' {
		t.Fatalf("stalled read delivered %q", buf)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stall took %v, want bounded by ~StallMax", d)
	}
	if s := l.Stats(); s.Stalls == 0 {
		t.Fatal("no stall recorded")
	}
}

// AcceptProb 1: every accepted connection dies immediately — the
// wrapped Accept never surfaces it, and the client sees the break on
// first use.
func TestAcceptKill(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ln := Wrap(inner, Config{Seed: 1, AcceptProb: 1})
	defer ln.Close()
	accepted := make(chan struct{})
	go func() {
		defer close(accepted)
		if c, err := ln.Accept(); err == nil {
			c.Close()
			// Accept only returns once the listener closes under
			// AcceptProb 1; surfacing a live conn is the bug.
			panic("accept-kill listener surfaced a connection")
		}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on an accept-killed connection succeeded")
	}
	ln.Close()
	<-accepted
	if s := ln.(*Listener).Stats(); s.AcceptKills == 0 {
		t.Fatal("no accept kill recorded")
	}
}

// The fault schedule is a deterministic function of the seed: two
// listeners with the same seed draw identical decision sequences.
func TestSeededDeterminism(t *testing.T) {
	draw := func(seed int64) []float64 {
		l := &Listener{cfg: Config{}.withDefaults(), rng: newSeededRNG(seed)}
		out := make([]float64, 32)
		for i := range out {
			out[i] = l.roll()
		}
		return out
	}
	a, b, c := draw(42), draw(42), draw(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v != %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical schedules")
	}
}
