package experiments

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// VisibilityLatency is E11: how long a write takes to become visible at
// remote replicas — the end-user latency behind the paper's "causal
// memory is a low latency abstraction" motivation. Buffered updates add
// their queueing time on top of the network; WS-send adds the token
// round trip; OptP's queueing component is provably minimal.
func VisibilityLatency() (Result, error) {
	r := Result{
		Name:   "E11-visibility",
		Desc:   "write visibility latency at remote replicas (uniform 1..200 network, virtual ticks)",
		Header: []string{"protocol", "p50", "mean", "p95", "max"},
	}
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv, protocol.WSSend} {
		var all []int64
		for _, seed := range seeds {
			scripts, err := workload.Scripts(workload.Config{
				Procs: 4, Vars: 4, OpsPerProc: 30, WriteRatio: 0.6,
				ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
			})
			if err != nil {
				return r, err
			}
			res, err := sim.Run(sim.Config{
				Procs: 4, Vars: 4, Protocol: kind,
				Latency: sim.NewUniformLatency(1, 200, seed*13+7),
				FIFO:    true, TokenInterval: 100,
			}, scripts)
			if err != nil {
				return r, fmt.Errorf("experiments: E11 %v: %w", kind, err)
			}
			all = append(all, res.Log.VisibilityLatencies()...)
		}
		s := trace.Summarize(all)
		r.Rows = append(r.Rows, []string{
			kind.String(),
			fmt.Sprint(s.P50), fmt.Sprintf("%.0f", s.Mean), fmt.Sprint(s.P95), fmt.Sprint(s.Max),
		})
	}
	return r, nil
}
