package checker

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/trace"
)

// Partial replication changes what the audit may demand of a process:
// under a share-set assignment only the processes replicating a
// variable ever apply its writes, so liveness (Theorem 5) is scoped to
// the share-set, and an apply observed anywhere else is its own
// violation class. Safety and delay necessity are likewise judged
// against the addressed subset: a write not addressed to p can never
// constrain p's apply order nor justify buffering there.

// StrayApply reports a write applied (or logically applied) at a
// process outside its variable's share-set — under partial replication
// the update should never have been delivered there, let alone applied.
type StrayApply struct {
	Proc  int
	Write history.WriteID
	Var   int
}

// String implements fmt.Stringer.
func (s StrayApply) String() string {
	return fmt.Sprintf("%v applied at p%d, outside x%d's share-set",
		s.Write, s.Proc+1, s.Var)
}

// ShareRespected reports that no write was applied outside its
// variable's share-set. Trivially true for fully replicated runs.
func (r *Report) ShareRespected() bool { return len(r.StrayApplies) == 0 }

// historyWriteVars returns the history's writes as parallel ID and
// variable tables, in flattened history order (aligned with
// History.Writes).
func historyWriteVars(h *history.History) ([]history.WriteID, []int) {
	writes := h.Writes()
	ids := make([]history.WriteID, len(writes))
	vars := make([]int, len(writes))
	for i, gi := range writes {
		op := h.Ops()[gi]
		ids[i] = op.ID
		vars[i] = op.Var
	}
	return ids, vars
}

// auditShareSets scans for stray applies. Shared verbatim by Audit and
// AuditReference: the check is a single log pass with no causality
// dependence, so there is nothing to fan out or approximate. Apply
// events carry their variable; Discards (logical applies) don't, so
// those resolve through the issuing events.
func (r *Report) auditShareSets(log *trace.Log) {
	if log.ShareSets == nil {
		return
	}
	r.PartialReplication = true
	varOf := make(map[history.WriteID]int)
	for _, e := range log.Events {
		if e.Kind == trace.Issue {
			varOf[e.Write] = e.Var
		}
	}
	for _, e := range log.Events {
		x := e.Var
		switch e.Kind {
		case trace.Apply:
		case trace.Discard:
			var ok bool
			if x, ok = varOf[e.Write]; !ok {
				continue
			}
		default:
			continue
		}
		if !log.Replicated(e.Proc, x) {
			r.StrayApplies = append(r.StrayApplies, StrayApply{Proc: e.Proc, Write: e.Write, Var: x})
		}
	}
}
