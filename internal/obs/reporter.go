package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter prints a one-line live snapshot of an observer's stats
// every interval — the terminal's answer to /metrics for runs watched
// from a shell instead of a scrape pipeline.
type Reporter struct {
	o        *Observer
	w        io.Writer
	interval time.Duration

	start     time.Time
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewReporter builds a reporter writing to w every interval. Call
// Start to begin.
func NewReporter(o *Observer, w io.Writer, interval time.Duration) *Reporter {
	return &Reporter{
		o: o, w: w, interval: interval, start: time.Now(),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// Start launches the reporting loop.
func (r *Reporter) Start() { go r.loop() }

func (r *Reporter) loop() {
	defer close(r.done)
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.line(time.Since(r.start))
		}
	}
}

func (r *Reporter) line(elapsed time.Duration) {
	fmt.Fprintf(r.w, "[obs %v] %v\n", elapsed.Round(time.Second), r.o.Stats())
}

// Close stops the loop, printing one final line so short runs still
// get a report. Idempotent.
func (r *Reporter) Close() error {
	r.closeOnce.Do(func() {
		close(r.stop)
		<-r.done
		r.line(time.Since(r.start))
	})
	return nil
}
