package protocol

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/history"
	"repro/internal/vclock"
)

// randomStream builds a plausible per-link update stream: clocks mostly
// grow (the OptP shape) but occasionally regress component-wise (the
// WS-send shape), with markers, nil clocks and a mid-stream dimension
// change mixed in.
func randomStream(rng *rand.Rand, length int) []Update {
	n := 2 + rng.Intn(10)
	clock := vclock.New(n)
	var out []Update
	for i := 0; i < length; i++ {
		switch rng.Intn(20) {
		case 0: // marker — empty clock
			out = append(out, Marker(rng.Intn(n), i))
			continue
		case 1: // nil-clock update
			out = append(out, Update{ID: history.WriteID{Proc: rng.Intn(n), Seq: i + 1}, Var: 0, Val: int64(i)})
			continue
		case 2: // dimension change mid-stream
			n = 2 + rng.Intn(10)
			clock = vclock.New(n)
		}
		// Mutate a few components, mostly upward.
		for k := 0; k < 1+rng.Intn(3); k++ {
			j := rng.Intn(n)
			if rng.Intn(8) == 0 && clock[j] > 0 {
				clock[j] -= 1 + uint64(rng.Intn(int(clock[j])))
			} else {
				clock[j] += 1 + uint64(rng.Intn(5))
			}
		}
		out = append(out, Update{
			ID:    history.WriteID{Proc: rng.Intn(n), Seq: i + 1},
			Var:   rng.Intn(4),
			Val:   int64(rng.Intn(1000) - 500),
			Clock: clock.Clone(),
		})
	}
	return out
}

func updatesEqual(a, b Update) bool {
	if a.ID != b.ID || a.Var != b.Var || a.Val != b.Val || a.Prev != b.Prev ||
		a.Round != b.Round || a.Slot != b.Slot || a.BatchSize != b.BatchSize ||
		a.Marker != b.Marker {
		return false
	}
	return a.Clock.Len() == b.Clock.Len() && (a.Clock.Len() == 0 || a.Clock.Equal(b.Clock))
}

func TestMetaCodecStreamRoundTrip(t *testing.T) {
	// Every mode must reproduce every update of a random stream exactly,
	// dimension changes, markers and clock regressions included.
	for _, mode := range []MetaMode{MetaOff, MetaDelta, MetaStab, MetaAuto} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			stream := randomStream(rng, 30)
			enc := NewUpdateEncoder(mode)
			dec := NewUpdateDecoder(mode)
			for _, u := range stream {
				buf, meta := enc.Append(nil, u)
				got, n, decMeta, err := dec.Decode(buf)
				if err != nil || n != len(buf) || meta != decMeta {
					return false
				}
				if meta < 0 || meta > len(buf) {
					return false
				}
				if !updatesEqual(got, u) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestMetaOffByteIdentical(t *testing.T) {
	// MetaOff must produce exactly the legacy wire format, so codec-off
	// senders interoperate with pre-codec receivers (and WAL replay).
	rng := rand.New(rand.NewSource(7))
	enc := NewUpdateEncoder(MetaOff)
	for _, u := range randomStream(rng, 20) {
		got, meta := enc.Append(nil, u)
		want := u.AppendBinary(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("MetaOff encoding differs for %+v", u)
		}
		if meta != u.Clock.EncodedSize() {
			t.Fatalf("MetaOff meta = %d, want %d", meta, u.Clock.EncodedSize())
		}
	}
}

func TestMetaDeltaChainSurvivesMarkers(t *testing.T) {
	// Markers carry no clock; they must not reset the link base, so the
	// update after a marker still delta-encodes.
	enc := NewUpdateEncoder(MetaDelta)
	dec := NewUpdateDecoder(MetaDelta)
	send := func(u Update) Update {
		t.Helper()
		buf, _ := enc.Append(nil, u)
		got, n, _, err := dec.Decode(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		return got
	}
	u1 := Update{ID: history.WriteID{Proc: 0, Seq: 1}, Clock: vclock.VC{1, 0, 0}}
	send(u1)
	send(Marker(1, 5))
	u2 := Update{ID: history.WriteID{Proc: 0, Seq: 2}, Clock: vclock.VC{2, 0, 0}}
	buf, meta := enc.Append(nil, u2)
	// Delta of one incremented component: tag(1) + checksum(1) +
	// count(1) + index(1) + zigzag delta(1) = 5 bytes, far below the
	// dense 4-component encoding.
	if meta != 5 {
		t.Fatalf("post-marker clock field = %d bytes, want 5 (delta)", meta)
	}
	got, _, _, err := dec.Decode(buf)
	if err != nil || !got.Clock.Equal(u2.Clock) {
		t.Fatalf("post-marker decode: %v %v", got.Clock, err)
	}
}

func TestMetaCodecResync(t *testing.T) {
	// After both halves Reset (the reconnect path), the stream decodes
	// again: the first post-resync message self-describes as dense.
	enc := NewUpdateEncoder(MetaDelta)
	dec := NewUpdateDecoder(MetaDelta)
	u := Update{ID: history.WriteID{Proc: 0, Seq: 1}, Clock: vclock.VC{3, 1, 4}}
	buf, _ := enc.Append(nil, u)
	if _, _, _, err := dec.Decode(buf); err != nil {
		t.Fatal(err)
	}
	enc.Reset()
	dec.Reset()
	u2 := Update{ID: history.WriteID{Proc: 0, Seq: 2}, Clock: vclock.VC{3, 2, 4}}
	buf, _ = enc.Append(nil, u2)
	got, n, _, err := dec.Decode(buf)
	if err != nil || n != len(buf) || !got.Clock.Equal(u2.Clock) {
		t.Fatalf("post-resync decode: %v %v", got.Clock, err)
	}
}

func TestMetaCodecDesyncFailsLoudly(t *testing.T) {
	// A delta frame hitting a decoder with the wrong base (or none) must
	// fail as ErrClockResync, not silently reconstruct a wrong clock.
	enc := NewUpdateEncoder(MetaDelta)
	u1 := Update{ID: history.WriteID{Proc: 0, Seq: 1}, Clock: vclock.VC{1, 2, 3}}
	u2 := Update{ID: history.WriteID{Proc: 0, Seq: 2}, Clock: vclock.VC{1, 2, 4}}
	buf1, _ := enc.Append(nil, u1)
	buf2, _ := enc.Append(nil, u2) // delta against u1's clock

	fresh := NewUpdateDecoder(MetaDelta)
	if _, _, _, err := fresh.Decode(buf2); !errors.Is(err, ErrClockResync) {
		t.Fatalf("no-base decode: %v, want ErrClockResync", err)
	}
	// A decoder with a different base (checksum mismatch).
	stale := NewUpdateDecoder(MetaDelta)
	if _, _, _, err := stale.Decode(buf1); err != nil {
		t.Fatal(err)
	}
	// Skip ahead: encode a third update, feed it past u2.
	u3 := Update{ID: history.WriteID{Proc: 0, Seq: 3}, Clock: vclock.VC{9, 2, 4}}
	buf3, _ := enc.Append(nil, u3) // delta against u2's clock
	if _, _, _, err := stale.Decode(buf3); !errors.Is(err, ErrClockResync) {
		t.Fatalf("stale-base decode: %v, want ErrClockResync", err)
	}
}

func TestMetaAutoPicksSmallest(t *testing.T) {
	// Auto must never emit a clock field larger than the best of the
	// three encodings it chooses among.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := randomStream(rng, 30)
		auto := NewUpdateEncoder(MetaAuto)
		off := NewUpdateEncoder(MetaOff)
		stab := NewUpdateEncoder(MetaStab)
		delta := NewUpdateEncoder(MetaDelta)
		dec := NewUpdateDecoder(MetaAuto)
		for _, u := range stream {
			buf, meta := auto.Append(nil, u)
			_, offMeta := off.Append(nil, u)
			_, stabMeta := stab.Append(nil, u)
			_, deltaMeta := delta.Append(nil, u)
			// The tagged dense/stab encodings cost one tag byte over the
			// raw sizes the single-mode encoders report.
			if u.Clock.Len() > 0 {
				best := offMeta + 1
				if stabMeta < best {
					best = stabMeta
				}
				if deltaMeta < best {
					best = deltaMeta
				}
				if meta > best {
					return false
				}
			}
			got, n, _, err := dec.Decode(buf)
			if err != nil || n != len(buf) || !updatesEqual(got, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaDeltaSteadyStateShrinks(t *testing.T) {
	// The headline property: on a steady-state OptP-shaped stream (one
	// component bumps per message), delta clock fields are a small
	// constant regardless of dimension.
	const dim = 64
	clock := vclock.New(dim)
	enc := NewUpdateEncoder(MetaDelta)
	dec := NewUpdateDecoder(MetaDelta)
	total := 0
	const msgs = 100
	for i := 0; i < msgs; i++ {
		clock[i%dim]++
		u := Update{ID: history.WriteID{Proc: i % dim, Seq: i + 1}, Clock: clock.Clone()}
		buf, meta := enc.Append(nil, u)
		if i > 0 {
			total += meta
		}
		got, n, _, err := dec.Decode(buf)
		if err != nil || n != len(buf) || !got.Clock.Equal(clock) {
			t.Fatalf("msg %d: %v", i, err)
		}
	}
	avg := float64(total) / float64(msgs-1)
	if avg > 6 {
		t.Fatalf("steady-state delta clock field averages %.1f bytes at dim %d, want ≤ 6", avg, dim)
	}
}

func BenchmarkMetaCodec(b *testing.B) {
	// One steady-state OptP-shaped message per iteration, per mode.
	const dim = 64
	for _, mode := range []MetaMode{MetaOff, MetaDelta, MetaStab, MetaAuto} {
		b.Run(mode.String(), func(b *testing.B) {
			clock := vclock.New(dim)
			for i := range clock {
				clock[i] = uint64(1000 + i)
			}
			u := Update{ID: history.WriteID{Proc: 3, Seq: 17}, Var: 1, Val: 42, Clock: clock}
			enc := NewUpdateEncoder(mode)
			dec := NewUpdateDecoder(mode)
			buf := make([]byte, 0, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock[i%dim]++
				var meta int
				buf, meta = enc.Append(buf[:0], u)
				_, _, _, err := dec.Decode(buf)
				if err != nil {
					b.Fatal(err)
				}
				_ = meta
			}
		})
	}
}
