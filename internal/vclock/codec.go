package vclock

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format: uvarint dimension, then each component as uvarint.
// Delta format: uvarint count of non-zero-delta components, then
// (uvarint index, uvarint delta) pairs relative to a base clock.
//
// The codec exists so the live transport can ship Write_co vectors and
// the trace exporter can serialize runs; it uses no reflection and
// allocates only the destination slice.

var (
	// ErrTruncated reports a buffer that ends inside an encoded clock.
	ErrTruncated = errors.New("vclock: truncated encoding")
	// ErrDimension reports a decoded dimension that disagrees with the caller's.
	ErrDimension = errors.New("vclock: dimension mismatch")
)

// MaxDecodeDim is the hard ceiling on the dimension any clock decoder
// accepts. The per-component buffer-length heuristic below bounds the
// allocation a *truncated* frame can force, but a hostile frame can be
// long: a few KB of input could otherwise declare a multi-thousand-
// component clock and make every decode allocate it. No configuration
// in this system approaches 64Ki processes, so the cap costs nothing
// legitimate.
const MaxDecodeDim = 1 << 16

// AppendBinary appends the wire encoding of v to dst and returns the
// extended slice.
func (v VC) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = binary.AppendUvarint(dst, x)
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler. The destination
// is sized from the actual uvarint widths (EncodedSize), so the append
// never regrows — exactly one allocation regardless of component
// magnitude. (The old 1+2*len(v) hint under-allocated as soon as
// components crossed two varint bytes.)
func (v VC) MarshalBinary() ([]byte, error) {
	return v.AppendBinary(make([]byte, 0, v.EncodedSize())), nil
}

// DecodeVC decodes one clock from the front of buf, returning the clock
// and the number of bytes consumed.
func DecodeVC(buf []byte) (VC, int, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, ErrTruncated
	}
	off := k
	if n > MaxDecodeDim {
		return nil, 0, fmt.Errorf("%w: dimension %d exceeds cap %d", ErrDimension, n, MaxDecodeDim)
	}
	if n > uint64(len(buf)) { // cheap sanity bound: ≥1 byte per component
		return nil, 0, fmt.Errorf("%w: dimension %d exceeds buffer", ErrTruncated, n)
	}
	v := make(VC, n)
	for i := range v {
		x, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, ErrTruncated
		}
		v[i] = x
		off += k
	}
	return v, off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (v *VC) UnmarshalBinary(data []byte) error {
	d, n, err := DecodeVC(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("vclock: %d trailing bytes", len(data)-n)
	}
	*v = d
	return nil
}

// AppendDelta appends a delta encoding of v relative to base. Both
// clocks must have the same dimension and base must be ≤ v component-wise
// (the common case on a FIFO link where clocks only grow); AppendDelta
// panics otherwise, because emitting a wrong delta would silently corrupt
// the receiver's clock.
func (v VC) AppendDelta(dst []byte, base VC) []byte {
	if len(v) != len(base) {
		panic(fmt.Sprintf("vclock: delta dimension mismatch %d != %d", len(v), len(base)))
	}
	nz := 0
	for i, x := range v {
		if x < base[i] {
			panic(fmt.Sprintf("vclock: delta base component %d exceeds value (%d > %d)", i, base[i], x))
		}
		if x != base[i] {
			nz++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(nz))
	for i, x := range v {
		if d := x - base[i]; d != 0 {
			dst = binary.AppendUvarint(dst, uint64(i))
			dst = binary.AppendUvarint(dst, d)
		}
	}
	return dst
}

// DecodeDelta decodes a delta produced by AppendDelta, applying it on
// top of base and returning the reconstructed clock plus bytes consumed.
func DecodeDelta(buf []byte, base VC) (VC, int, error) {
	nz, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, ErrTruncated
	}
	off := k
	v := base.Clone()
	for j := uint64(0); j < nz; j++ {
		idx, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, ErrTruncated
		}
		off += k
		d, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, ErrTruncated
		}
		off += k
		if idx >= uint64(len(v)) {
			return nil, 0, fmt.Errorf("%w: delta index %d ≥ dimension %d", ErrDimension, idx, len(v))
		}
		v[idx] += d
	}
	return v, off, nil
}

// AppendStab appends the stabilization encoding of v: uvarint
// dimension, a scalar floor (the minimum component — the clock's own
// stable frontier, in the sense of Okapi's stabilization scalar), then
// only the components strictly above the floor as (uvarint index,
// uvarint value−floor) residual pairs. The encoding is stateless and
// lossless — the floor stands in for every fully-stable component, and
// the residuals reconstruct the rest exactly — so unlike a true
// pruned-prefix scheme it needs no cluster-wide stability agreement to
// be safe. It wins when most components sit at a common frontier with
// a few leaders, the steady-state shape of a Write_co vector under
// all-to-all traffic.
func AppendStab(dst []byte, v VC) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	if len(v) == 0 {
		return dst
	}
	floor := v[0]
	for _, x := range v[1:] {
		if x < floor {
			floor = x
		}
	}
	nz := 0
	for _, x := range v {
		if x > floor {
			nz++
		}
	}
	dst = binary.AppendUvarint(dst, floor)
	dst = binary.AppendUvarint(dst, uint64(nz))
	for i, x := range v {
		if x > floor {
			dst = binary.AppendUvarint(dst, uint64(i))
			dst = binary.AppendUvarint(dst, x-floor)
		}
	}
	return dst
}

// StabSize returns the exact byte size AppendStab would emit for v.
func StabSize(v VC) int {
	n := uvarintLen(uint64(len(v)))
	if len(v) == 0 {
		return n
	}
	floor := v[0]
	for _, x := range v[1:] {
		if x < floor {
			floor = x
		}
	}
	nz := 0
	for i, x := range v {
		if x > floor {
			nz++
			n += uvarintLen(uint64(i)) + uvarintLen(x-floor)
		}
	}
	return n + uvarintLen(floor) + uvarintLen(uint64(nz))
}

// DecodeStab decodes one stabilization-encoded clock from the front of
// buf, returning the clock and bytes consumed.
func DecodeStab(buf []byte) (VC, int, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, ErrTruncated
	}
	off := k
	if n > MaxDecodeDim {
		return nil, 0, fmt.Errorf("%w: dimension %d exceeds cap %d", ErrDimension, n, MaxDecodeDim)
	}
	if n == 0 {
		return VC{}, off, nil
	}
	floor, k := binary.Uvarint(buf[off:])
	if k <= 0 {
		return nil, 0, ErrTruncated
	}
	off += k
	nz, k := binary.Uvarint(buf[off:])
	if k <= 0 {
		return nil, 0, ErrTruncated
	}
	off += k
	if nz > n {
		return nil, 0, fmt.Errorf("%w: %d residuals for dimension %d", ErrDimension, nz, n)
	}
	v := make(VC, n)
	for i := range v {
		v[i] = floor
	}
	for j := uint64(0); j < nz; j++ {
		idx, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, ErrTruncated
		}
		off += k
		r, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, ErrTruncated
		}
		off += k
		if idx >= n {
			return nil, 0, fmt.Errorf("%w: residual index %d ≥ dimension %d", ErrDimension, idx, n)
		}
		v[idx] = floor + r
	}
	return v, off, nil
}

// EncodedSize returns the exact wire size of v without allocating.
func (v VC) EncodedSize() int {
	n := uvarintLen(uint64(len(v)))
	for _, x := range v {
		n += uvarintLen(x)
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
