package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/protocol"
	"repro/internal/vclock"
)

// Frontier-admission waiting. The serving tier parks token-admission
// waits here instead of polling: each waiter registers the token it
// needs dominated, and the replica's apply path — which already holds
// n.mu and knows the frontier moved — wakes exactly the waiters whose
// predicate now holds. That shape matters under load: a broadcast wake
// would stampede every parked waiter through a dominance re-check (and
// the replica lock) on every write, while the predicate check costs the
// apply path one O(dim) comparison per parked waiter and wakes nobody
// spuriously. Liveness events (crash, restart, cluster close) do wake
// everyone: the waiters' next dominance check is against a different
// world and they must re-evaluate — or fail — on their own.
//
// The armed flag keeps the common case (no waiters) at a single atomic
// load on the apply hot path. fw.mu is a leaf lock, always taken inside
// n.mu on the wake path and without n.mu on the subscribe path.

// fwaiter is one parked admission wait.
type fwaiter struct {
	tok vclock.VC
	ch  chan struct{}
}

// frontierWaiters is a node's parked-waiter set.
type frontierWaiters struct {
	armed atomic.Bool
	mu    sync.Mutex
	set   map[*fwaiter]struct{}
}

// FrontierWait registers a waiter woken (channel closed) when this
// node's applied frontier first dominates tok, or on any liveness
// change (crash, restart, cluster close) — a wake-up is a hint to
// re-check, not a guarantee of admission. The returned cancel must be
// called when the caller stops waiting, or abandoned waiters accrete.
func (n *Node) FrontierWait(tok vclock.VC) (<-chan struct{}, func()) {
	w := &fwaiter{tok: tok, ch: make(chan struct{})}
	fw := &n.fw
	fw.mu.Lock()
	if fw.set == nil {
		fw.set = map[*fwaiter]struct{}{}
	}
	fw.set[w] = struct{}{}
	fw.armed.Store(true)
	fw.mu.Unlock()
	cancel := func() {
		fw.mu.Lock()
		delete(fw.set, w)
		if len(fw.set) == 0 {
			fw.armed.Store(false)
		}
		fw.mu.Unlock()
	}
	return w.ch, cancel
}

// wakeFrontierLocked wakes the waiters whose token the frontier now
// dominates. Caller holds n.mu; no-op (one atomic load) when nobody is
// parked.
func (n *Node) wakeFrontierLocked() {
	if !n.fw.armed.Load() {
		return
	}
	n.fw.mu.Lock()
	for w := range n.fw.set {
		if n.frontierDominatesLocked(w.tok) {
			close(w.ch)
			delete(n.fw.set, w)
		}
	}
	if len(n.fw.set) == 0 {
		n.fw.armed.Store(false)
	}
	n.fw.mu.Unlock()
}

// wakeAll wakes every parked waiter (liveness changed); they re-check
// and re-park on their own. Safe with or without n.mu held.
func (w *frontierWaiters) wakeAll() {
	if !w.armed.Load() {
		return
	}
	w.mu.Lock()
	for wt := range w.set {
		close(wt.ch)
		delete(w.set, wt)
	}
	w.armed.Store(false)
	w.mu.Unlock()
}

// frontierDominatesLocked is FrontierDominates for callers already
// holding n.mu.
func (n *Node) frontierDominatesLocked(t vclock.VC) bool {
	if len(t) == 0 {
		return true
	}
	if n.down.Load() || n.replica == nil {
		return false
	}
	if fd, ok := n.replica.(protocol.FrontierDominator); ok {
		return fd.FrontierDominates(t)
	}
	return n.replica.(protocol.Introspector).ApplyClock().Dominates(t)
}
