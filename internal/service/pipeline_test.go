package service_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
)

// A read blocked on a lagging frontier must not stall requests queued
// behind it on the same connection: the ping sent after the blocked
// read completes first — out-of-order completion over one socket.
func TestPipelineOutOfOrderCompletion(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 2, Variables: 1,
			MinDelay: 80 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 3},
		service.Config{WaitTimeout: 10 * time.Second})
	c := dial(t, srv)
	ctx := context.Background()
	s := c.Session().Use(0)
	if err := s.Write(ctx, 0, 5); err != nil {
		t.Fatalf("Write: %v", err)
	}

	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Pinned to p1, which lags the write by ~80ms.
		if v, err := s.Use(1).Read(ctx, 0); err != nil || v != 5 {
			t.Errorf("blocked read = %d, %v; want 5", v, err)
		}
		order <- "read"
	}()
	time.Sleep(10 * time.Millisecond) // the read is on the wire and waiting
	go func() {
		defer wg.Done()
		if err := c.Ping(ctx); err != nil {
			t.Errorf("Ping: %v", err)
		}
		order <- "ping"
	}()
	wg.Wait()
	first, second := <-order, <-order
	if first != "ping" || second != "read" {
		t.Fatalf("completion order %s, %s; want ping before the frontier-blocked read", first, second)
	}
}

// Many concurrent sessions on one connection: every write lands, every
// token-carrying read sees its own session's writes, and tags demux
// correctly under full pipelining.
func TestPipelineManyConcurrent(t *testing.T) {
	const vars, sessions, rounds = 8, 8, 20
	srv, _ := startServer(t,
		core.Config{Processes: 3, Variables: vars,
			MinDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond, Seed: 7},
		service.Config{BatchWindow: 200 * time.Microsecond})
	c := dial(t, srv)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := c.Session()
			x := i % vars // one writer per variable: values are per-session
			for r := 1; r <= rounds; r++ {
				want := int64(i*1000 + r)
				if err := s.Write(ctx, x, want); err != nil {
					errs <- fmt.Errorf("session %d write: %w", i, err)
					return
				}
				got, err := s.Read(ctx, x)
				if err != nil {
					errs <- fmt.Errorf("session %d read: %w", i, err)
					return
				}
				// Read-your-writes: never older than our own write. (vars ==
				// sessions here, so each variable has exactly one writer and
				// equality must hold.)
				if got != want {
					errs <- fmt.Errorf("session %d read %d, want %d", i, got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Pipelining is bounded: MaxPipeline in-flight requests per connection,
// with excess frames parked in the socket, not dropped. A tiny cap plus
// a burst bigger than it must still answer everything.
func TestPipelineCapQueuesExcess(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 2, Variables: 2},
		service.Config{MaxPipeline: 2})
	c := dial(t, srv)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Ping(ctx); err != nil {
				t.Errorf("Ping: %v", err)
			}
		}()
	}
	wg.Wait()
}

// Raw protocol-level check that two requests issued back-to-back with
// distinct tags come back with those tags (whatever the order).
func TestPipelineTagsEchoed(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 2, Variables: 2},
		service.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Do(ctx, protocol.Request{Kind: protocol.ReqWrite, Proc: -1, Var: i % 2, Val: int64(i)})
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			if resp.Val != int64(i) {
				t.Errorf("write %d echoed %d: tag demux broke", i, resp.Val)
			}
		}(i)
	}
	wg.Wait()
}
