package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// ScorecardSchema names the JSON document version WriteScorecard
// emits. Bump it only on breaking changes to the Result or
// trace.RunStats wire shape; additive fields keep the version.
const ScorecardSchema = "dsmbench/v1"

// Scorecard is the machine-readable form of a dsmbench run: every
// experiment table verbatim, plus whatever per-run statistics the
// experiments attached. CI stores these as artifacts so regressions
// show up as a diff against BENCH_baseline.json rather than a memory.
type Scorecard struct {
	Schema      string   `json:"schema"`
	Experiments []Result `json:"experiments"`
}

// NewScorecard wraps results in the current schema envelope.
func NewScorecard(results []Result) Scorecard {
	return Scorecard{Schema: ScorecardSchema, Experiments: results}
}

// WriteScorecard serializes the results as an indented, stable JSON
// document.
func WriteScorecard(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(NewScorecard(results)); err != nil {
		return fmt.Errorf("experiments: scorecard encode: %w", err)
	}
	return nil
}

// ReadScorecard parses a WriteScorecard document, rejecting unknown
// schema versions.
func ReadScorecard(r io.Reader) (Scorecard, error) {
	var sc Scorecard
	if err := json.NewDecoder(r).Decode(&sc); err != nil {
		return sc, fmt.Errorf("experiments: scorecard decode: %w", err)
	}
	if sc.Schema != ScorecardSchema {
		return sc, fmt.Errorf("experiments: scorecard schema %q, want %q", sc.Schema, ScorecardSchema)
	}
	return sc, nil
}
