// Package sim is the deterministic virtual-time simulator that drives
// protocol replicas: an event-heap engine with pluggable latency
// models, scripted processes, and full trace recording. Runs are
// bit-reproducible from their seed, so every experiment table can be
// regenerated exactly.
package sim

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is deliberately tiny
// and allocation-free; all simulator randomness flows through explicit
// instances seeded by the caller.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1-u) * mean
}

// Fork derives an independent generator, so sub-components can consume
// randomness without perturbing the parent stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
