package protocol

import (
	"testing"
	"testing/quick"

	"repro/internal/history"
	"repro/internal/vclock"
)

func TestUpdateRoundTrip(t *testing.T) {
	cases := []Update{
		{},
		{
			ID:  history.WriteID{Proc: 2, Seq: 17},
			Var: 3, Val: -42,
			Clock: vclock.VC{1, 0, 9},
			Prev:  history.WriteID{Proc: 1, Seq: 3},
		},
		Marker(4, 7), // negative Seq, Var -1, Marker flag
		{
			ID:  history.WriteID{Proc: 0, Seq: 1},
			Var: 0, Val: 1 << 40,
			Clock: vclock.New(8),
			Round: 12, Slot: 3, BatchSize: 5,
		},
	}
	for _, u := range cases {
		data, err := u.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", u, err)
		}
		var got Update
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", u, err)
		}
		if got.ID != u.ID || got.Var != u.Var || got.Val != u.Val ||
			got.Prev != u.Prev || got.Round != u.Round || got.Slot != u.Slot ||
			got.BatchSize != u.BatchSize || got.Marker != u.Marker {
			t.Fatalf("round trip: got %+v, want %+v", got, u)
		}
		if (u.Clock == nil) != (got.Clock == nil) && u.Clock.Len() > 0 {
			t.Fatalf("clock presence changed: %v vs %v", u.Clock, got.Clock)
		}
		if u.Clock.Len() > 0 && !got.Clock.Equal(u.Clock) {
			t.Fatalf("clock round trip: %v vs %v", got.Clock, u.Clock)
		}
	}
}

func TestUpdateDecodeTruncated(t *testing.T) {
	u := Update{
		ID: history.WriteID{Proc: 1, Seq: 300}, Var: 2, Val: 99,
		Clock: vclock.VC{5, 6, 700},
	}
	full := u.AppendBinary(nil)
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeUpdate(full[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded", i)
		}
	}
}

func TestUpdateUnmarshalTrailing(t *testing.T) {
	data := (Update{}).AppendBinary(nil)
	data = append(data, 0)
	var u Update
	if err := u.UnmarshalBinary(data); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUpdateDecodeConsumed(t *testing.T) {
	a := Update{ID: history.WriteID{Proc: 0, Seq: 1}, Val: 7, Clock: vclock.VC{1, 0}}
	b := Update{ID: history.WriteID{Proc: 1, Seq: 1}, Val: 8, Clock: vclock.VC{0, 1}}
	buf := b.AppendBinary(a.AppendBinary(nil))
	g1, n1, err := DecodeUpdate(buf)
	if err != nil || g1.Val != 7 {
		t.Fatalf("first: %v %v", g1, err)
	}
	g2, n2, err := DecodeUpdate(buf[n1:])
	if err != nil || g2.Val != 8 {
		t.Fatalf("second: %v %v", g2, err)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d of %d", n1+n2, len(buf))
	}
}

func TestQuickUpdateRoundTrip(t *testing.T) {
	f := func(proc, seq uint8, vr uint8, val int64, c0, c1, c2 uint16, marker bool) bool {
		u := Update{
			ID:     history.WriteID{Proc: int(proc), Seq: int(seq)},
			Var:    int(vr),
			Val:    val,
			Clock:  vclock.VC{uint64(c0), uint64(c1), uint64(c2)},
			Marker: marker,
		}
		data := u.AppendBinary(nil)
		got, n, err := DecodeUpdate(data)
		return err == nil && n == len(data) &&
			got.ID == u.ID && got.Var == u.Var && got.Val == u.Val &&
			got.Marker == u.Marker && got.Clock.Equal(u.Clock)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
