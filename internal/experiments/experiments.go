// Package experiments implements the quantitative sweeps E1–E8 of
// DESIGN.md — the measurable consequences of the paper's optimality
// theorem. Each experiment returns a structured table that cmd/dsmbench
// prints, the root benchmarks exercise, and EXPERIMENTS.md records.
//
// All experiments are deterministic: sweeps average over a fixed set of
// seeds and the simulator is bit-reproducible.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Result is one experiment's output table. The JSON tags are the
// stable dsmbench scorecard schema (see Scorecard): tables serialize
// exactly as printed, plus the optional per-run statistics some
// experiments attach for machine consumers.
type Result struct {
	Name   string     `json:"name"`
	Desc   string     `json:"desc"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Stats carries the full per-run scorecards behind the table rows,
	// for experiments built on single live runs (chaos, crash) where
	// the table is a lossy projection.
	Stats []trace.RunStats `json:"stats,omitempty"`
}

// String renders the table with aligned columns.
func (r Result) String() string {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", r.Name, r.Desc)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	total := len(r.Header)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range r.Rows {
		line(row)
	}
	return b.String()
}

// sweepKinds are the protocols compared by the delay sweeps.
var sweepKinds = []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv, protocol.OptPNoReadMerge}

// seeds used for averaging.
var seeds = []uint64{11, 23, 37, 51, 67}

// runMetrics aggregates one protocol's numbers over the seed set.
type runMetrics struct {
	delays      float64 // mean write delays per run
	unnecessary float64 // mean unnecessary delays per run
	delayRate   float64 // delays / receipts
	meanDur     float64 // mean buffering duration (virtual ns)
	discards    float64
	bufMax      float64
	receipts    float64
}

// measure runs the given scripts under kind for each seed and averages.
func measure(kind protocol.Kind, procs, vars int, mkScripts func(seed uint64) ([]sim.Script, error), jitter int64, fifo bool) (runMetrics, error) {
	var m runMetrics
	for _, seed := range seeds {
		scripts, err := mkScripts(seed)
		if err != nil {
			return m, err
		}
		res, err := sim.Run(sim.Config{
			Procs: procs, Vars: vars, Protocol: kind,
			Latency: sim.NewUniformLatency(1, jitter, seed*13+7),
			FIFO:    fifo,
		}, scripts)
		if err != nil {
			return m, fmt.Errorf("experiments: %v seed %d: %w", kind, seed, err)
		}
		rep, err := checker.Audit(res.Log)
		if err != nil {
			return m, fmt.Errorf("experiments: audit %v seed %d: %w", kind, seed, err)
		}
		st := res.Log.Stats(kind.String())
		m.delays += float64(st.Delays)
		m.unnecessary += float64(rep.UnnecessaryDelays)
		m.delayRate += st.DelayRate
		m.meanDur += st.DelayDurations.Mean
		m.discards += float64(st.Discards)
		m.bufMax += float64(st.BufferMax)
		m.receipts += float64(st.Receipts)
	}
	n := float64(len(seeds))
	m.delays /= n
	m.unnecessary /= n
	m.delayRate /= n
	m.meanDur /= n
	m.discards /= n
	m.bufMax /= n
	m.receipts /= n
	return m, nil
}

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Jitter is E1: write delays vs network jitter, FIFO links, mixed
// workload. Expected shape: OptP ≤ ANBKH everywhere, gap grows with
// jitter; OptP's unnecessary count is 0.
func Jitter() (Result, error) {
	r := Result{
		Name:   "E1-jitter",
		Desc:   "mean write delays per run vs network jitter (FIFO links, 4 procs, mixed workload)",
		Header: []string{"jitter", "protocol", "delays", "unnecessary", "delay-rate", "mean-buffer-ticks"},
	}
	mk := func(seed uint64) ([]sim.Script, error) {
		return workload.Scripts(workload.Config{
			Procs: 4, Vars: 4, OpsPerProc: 40, WriteRatio: 0.6,
			ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
		})
	}
	for _, jitter := range []int64{10, 50, 100, 200, 400} {
		for _, kind := range sweepKinds {
			m, err := measure(kind, 4, 4, mk, jitter, true)
			if err != nil {
				return r, err
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(jitter), kind.String(), f1(m.delays), f1(m.unnecessary), pct(m.delayRate), f1(m.meanDur),
			})
		}
	}
	return r, nil
}

// ProcCount is E2: write delays vs number of processes at fixed jitter.
func ProcCount() (Result, error) {
	r := Result{
		Name:   "E2-nprocs",
		Desc:   "mean write delays per run vs process count (FIFO links, jitter 150)",
		Header: []string{"procs", "protocol", "delays", "unnecessary", "delay-rate"},
	}
	for _, n := range []int{2, 4, 8, 16, 24} {
		n := n
		mk := func(seed uint64) ([]sim.Script, error) {
			return workload.Scripts(workload.Config{
				Procs: n, Vars: n, OpsPerProc: 20, WriteRatio: 0.6,
				ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
			})
		}
		for _, kind := range sweepKinds {
			m, err := measure(kind, n, n, mk, 150, true)
			if err != nil {
				return r, err
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(n), kind.String(), f1(m.delays), f1(m.unnecessary), pct(m.delayRate),
			})
		}
	}
	return r, nil
}

// Mix is E3: write delays vs read/write mix.
func Mix() (Result, error) {
	r := Result{
		Name:   "E3-mix",
		Desc:   "mean write delays per run vs write ratio (FIFO links, 4 procs, jitter 150)",
		Header: []string{"write-ratio", "protocol", "delays", "unnecessary", "delay-rate"},
	}
	for _, ratio := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		ratio := ratio
		mk := func(seed uint64) ([]sim.Script, error) {
			return workload.Scripts(workload.Config{
				Procs: 4, Vars: 4, OpsPerProc: 40, WriteRatio: ratio,
				ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
			})
		}
		for _, kind := range sweepKinds {
			m, err := measure(kind, 4, 4, mk, 150, true)
			if err != nil {
				return r, err
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%.1f", ratio), kind.String(), f1(m.delays), f1(m.unnecessary), pct(m.delayRate),
			})
		}
	}
	return r, nil
}

// FalseCausalityRate is E4: the adversarial Figure-3-at-scale workload;
// the fraction of ANBKH's delays that are unnecessary (OptP: always 0).
func FalseCausalityRate() (Result, error) {
	r := Result{
		Name:   "E4-falsecausality",
		Desc:   "unnecessary delays on the adversarial private-variable workload (FIFO links)",
		Header: []string{"procs", "protocol", "delays", "unnecessary", "unnecessary-share"},
	}
	for _, n := range []int{3, 5, 8} {
		n := n
		mk := func(seed uint64) ([]sim.Script, error) {
			return workload.NewFalseCausality(n, seed).Scripts()
		}
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
			m, err := measure(kind, n, n, mk, 300, true)
			if err != nil {
				return r, err
			}
			share := "0.0%"
			if m.delays > 0 {
				share = pct(m.unnecessary / m.delays)
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(n), kind.String(), f1(m.delays), f1(m.unnecessary), share,
			})
		}
	}
	return r, nil
}

// BufferOccupancy is E5: pending-queue population vs jitter.
func BufferOccupancy() (Result, error) {
	r := Result{
		Name:   "E5-buffer",
		Desc:   "max buffered updates (any process) vs jitter (non-FIFO links, 4 procs)",
		Header: []string{"jitter", "protocol", "buf-max", "delays"},
	}
	mk := func(seed uint64) ([]sim.Script, error) {
		return workload.Scripts(workload.Config{
			Procs: 4, Vars: 4, OpsPerProc: 40, WriteRatio: 0.6,
			ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
		})
	}
	for _, jitter := range []int64{50, 200, 800} {
		for _, kind := range sweepKinds {
			m, err := measure(kind, 4, 4, mk, jitter, false)
			if err != nil {
				return r, err
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(jitter), kind.String(), f1(m.bufMax), f1(m.delays),
			})
		}
	}
	return r, nil
}

// WritingSemantics is E7: how the WS comparators trade 𝒫 membership
// for fewer installs — discards (WS-recv) and suppressed writes
// (WS-send) on an overwrite-heavy workload.
func WritingSemantics() (Result, error) {
	r := Result{
		Name:   "E7-ws",
		Desc:   "writing-semantics effects on an overwrite-heavy workload (hot variable)",
		Header: []string{"protocol", "delays", "discards", "in-P"},
	}
	mk := func(seed uint64) ([]sim.Script, error) {
		return workload.Scripts(workload.Config{
			Procs: 4, Vars: 2, OpsPerProc: 30, WriteRatio: 0.9,
			ThinkMin: 1, ThinkMax: 20, Hot: 0.8, Seed: seed,
		})
	}
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv, protocol.OptPWS, protocol.WSSend} {
		var delays, discards float64
		inP := true
		for _, seed := range seeds {
			scripts, err := mk(seed)
			if err != nil {
				return r, err
			}
			res, err := sim.Run(sim.Config{
				Procs: 4, Vars: 2, Protocol: kind,
				Latency: sim.NewUniformLatency(1, 200, seed*13+7),
			}, scripts)
			if err != nil {
				return r, fmt.Errorf("experiments: E7 %v: %w", kind, err)
			}
			rep, err := checker.Audit(res.Log)
			if err != nil {
				return r, err
			}
			delays += float64(res.Log.DelayCount())
			discards += float64(res.Log.DiscardCount())
			if !rep.InP() {
				inP = false
			}
		}
		n := float64(len(seeds))
		r.Rows = append(r.Rows, []string{
			kind.String(), f1(delays / n), f1(discards / n), fmt.Sprint(inP),
		})
	}
	return r, nil
}

// Ablation is E8: OptP vs its read-merge ablation — disabling the
// read-time-only merge recreates ANBKH's false causality inside OptP's
// own data structures.
func Ablation() (Result, error) {
	r := Result{
		Name:   "E8-ablation",
		Desc:   "OptP vs read-merge ablation on the adversarial workload (FIFO links, 5 procs)",
		Header: []string{"jitter", "protocol", "delays", "unnecessary"},
	}
	mk := func(seed uint64) ([]sim.Script, error) {
		return workload.NewFalseCausality(5, seed).Scripts()
	}
	for _, jitter := range []int64{100, 300, 600} {
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.OptPNoReadMerge, protocol.ANBKH} {
			m, err := measure(kind, 5, 5, mk, jitter, true)
			if err != nil {
				return r, err
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(jitter), kind.String(), f1(m.delays), f1(m.unnecessary),
			})
		}
	}
	return r, nil
}

// All runs every simulator-based experiment (E6-throughput lives in
// live.go because it needs the goroutine runtime).
func All() ([]Result, error) {
	var out []Result
	for _, fn := range []func() (Result, error){
		Jitter, ProcCount, Mix, FalseCausalityRate, BufferOccupancy, WritingSemantics, Ablation, MetadataCompression, TwoSiteTopology, VisibilityLatency,
	} {
		r, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
