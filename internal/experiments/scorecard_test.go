package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestScorecardRoundTrip(t *testing.T) {
	in := []Result{
		{
			Name:   "E-test",
			Desc:   "a table",
			Header: []string{"a", "b"},
			Rows:   [][]string{{"1", "2"}, {"3", "4"}},
			Stats: []trace.RunStats{
				{Protocol: "OptP", Procs: 2, Writes: 10, Delays: 1, DelayRate: 0.5},
			},
		},
		{Name: "E-empty", Desc: "no rows", Header: []string{"x"}},
	}
	var buf bytes.Buffer
	if err := WriteScorecard(&buf, in); err != nil {
		t.Fatal(err)
	}
	sc, err := ReadScorecard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Schema != ScorecardSchema {
		t.Errorf("schema = %q", sc.Schema)
	}
	if len(sc.Experiments) != 2 {
		t.Fatalf("experiments = %d, want 2", len(sc.Experiments))
	}
	got := sc.Experiments[0]
	if got.Name != "E-test" || len(got.Rows) != 2 || got.Rows[1][1] != "4" {
		t.Errorf("table round-trip = %+v", got)
	}
	if len(got.Stats) != 1 || got.Stats[0].Protocol != "OptP" || got.Stats[0].DelayRate != 0.5 {
		t.Errorf("stats round-trip = %+v", got.Stats)
	}
}

func TestCheckThroughputRegression(t *testing.T) {
	smoke := func(opsPerSec map[string]string) Result {
		r := Result{
			Name:   ThroughputSmokeName,
			Header: []string{"procs", "ops", "elapsed", "ops/s"},
		}
		for _, procs := range []string{"2", "4", "8"} {
			if v, ok := opsPerSec[procs]; ok {
				r.Rows = append(r.Rows, []string{procs, "1000", "1ms", v})
			}
		}
		return r
	}
	base := NewScorecard([]Result{smoke(map[string]string{"2": "1000000", "4": "500000", "8": "250000"})})

	// Within tolerance (and improvements) pass.
	ok := []Result{smoke(map[string]string{"2": "850000", "4": "2000000", "8": "250000"})}
	if err := CheckThroughputRegression(ok, base, 0.2); err != nil {
		t.Errorf("in-tolerance run failed the gate: %v", err)
	}
	// A >20% drop on any row fails.
	bad := []Result{smoke(map[string]string{"2": "1000000", "4": "399000", "8": "250000"})}
	if err := CheckThroughputRegression(bad, base, 0.2); err == nil {
		t.Error("21% regression passed the gate")
	}
	// Rows only one side has are ignored; a baseline with none errors.
	partial := []Result{smoke(map[string]string{"2": "1000000"})}
	if err := CheckThroughputRegression(partial, base, 0.2); err != nil {
		t.Errorf("partial current rows failed the gate: %v", err)
	}
	if err := CheckThroughputRegression(ok, NewScorecard(nil), 0.2); err == nil {
		t.Error("empty baseline accepted")
	}
	// Unparsable ops/s cells are an error, not a silent pass.
	garbled := base
	garbled.Experiments[0].Rows[0][3] = "fast"
	if err := CheckThroughputRegression(ok, garbled, 0.2); err == nil {
		t.Error("garbled baseline cell accepted")
	}
}

func TestScorecardRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadScorecard(strings.NewReader(`{"schema":"dsmbench/v99","experiments":[]}`)); err == nil {
		t.Error("accepted an unknown schema version")
	}
	if _, err := ReadScorecard(strings.NewReader("{")); err == nil {
		t.Error("accepted truncated JSON")
	}
}
