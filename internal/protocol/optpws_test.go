package protocol

import (
	"testing"

	"repro/internal/history"
	"repro/internal/vclock"
)

// The footnote-8 combination keeps OptP's exact dependency tracking…
func TestOptPWSNoFalseCausality(t *testing.T) {
	p1 := NewOptPWS(0, 3, 2).(*optpws)
	p2 := NewOptPWS(1, 3, 2).(*optpws)
	p3 := NewOptPWS(2, 3, 2).(*optpws)
	if p1.Kind() != OptPWS {
		t.Fatalf("Kind = %v", p1.Kind())
	}
	ua, _ := p1.LocalWrite(0, 1)
	uc, _ := p1.LocalWrite(0, 3)
	p2.Apply(ua)
	p2.Read(0)
	p2.Apply(uc) // applied but never read
	ub, _ := p2.LocalWrite(1, 2)
	if !ub.Clock.Equal(vclock.VC{1, 1, 0}) {
		t.Fatalf("b clock = %v, want [1 1 0]", ub.Clock)
	}
	p3.Apply(ua)
	if p3.Status(ub) != Deliverable {
		t.Fatal("OptP-WS must not block on the unread write")
	}
}

// …and adds the overwrite skip: the second write to a variable can be
// applied before the first, whose message is then discarded.
func TestOptPWSSkipAndDiscard(t *testing.T) {
	p1 := NewOptPWS(0, 2, 1).(*optpws)
	p2 := NewOptPWS(1, 2, 1).(*optpws)
	u1, _ := p1.LocalWrite(0, 1)
	u2, _ := p1.LocalWrite(0, 2)
	if got := p2.Status(u2); got != Deliverable {
		t.Fatalf("Status(u2) = %v, want skip-deliverable", got)
	}
	if tgt := p2.SkipTarget(u2); tgt != u1.ID {
		t.Fatalf("SkipTarget = %v", tgt)
	}
	p2.Apply(u2)
	if v, id := p2.Read(0); v != 2 || id != u2.ID {
		t.Fatalf("read = %d from %v", v, id)
	}
	if p2.Skips() != 1 {
		t.Fatalf("Skips = %d", p2.Skips())
	}
	if got := p2.Status(u1); got != Discardable {
		t.Fatalf("late u1 = %v", got)
	}
	p2.Discard(u1)
	if v, _ := p2.Read(0); v != 2 {
		t.Fatalf("value reverted to %d", v)
	}
}

// Skip across processes with an OptP-visible dependency chain.
func TestOptPWSSkipCrossProcess(t *testing.T) {
	p1 := NewOptPWS(0, 3, 1).(*optpws)
	p2 := NewOptPWS(1, 3, 1).(*optpws)
	p3 := NewOptPWS(2, 3, 1).(*optpws)
	u1, _ := p1.LocalWrite(0, 1)
	p2.Apply(u1)
	p2.Read(0) // read creates the →co edge, so u2 depends on u1
	u2, _ := p2.LocalWrite(0, 2)
	if u2.Prev != u1.ID {
		t.Fatalf("Prev = %v", u2.Prev)
	}
	if got := p3.Status(u2); got != Deliverable {
		t.Fatalf("Status(u2) = %v, want skip-deliverable", got)
	}
	p3.Apply(u2)
	if got := p3.Status(u1); got != Discardable {
		t.Fatalf("late u1 = %v", got)
	}
	p3.Discard(u1)
	if got := p3.ApplyClock(); !got.Equal(vclock.VC{1, 1, 0}) {
		t.Fatalf("apply clock = %v", got)
	}
}

// The side condition: an intervening write on another variable forbids
// the skip (it would be lost).
func TestOptPWSNoSkipAcrossOtherVariable(t *testing.T) {
	p1 := NewOptPWS(0, 3, 2).(*optpws)
	p2 := NewOptPWS(1, 3, 2).(*optpws)
	p3 := NewOptPWS(2, 3, 2).(*optpws)
	u1, _ := p1.LocalWrite(0, 1)
	p2.Apply(u1)
	p2.Read(0)
	u2, _ := p2.LocalWrite(1, 2) // w'' on another variable
	p1.Apply(u2)
	p1.Read(1)
	u3, _ := p1.LocalWrite(0, 3) // overwrites u1 with u2 in between
	if got := p3.Status(u3); got != Blocked {
		t.Fatalf("Status(u3) = %v, want Blocked", got)
	}
	p3.Apply(u1)
	p3.Apply(u2)
	p3.Apply(u3)
}

// No multi-step skips.
func TestOptPWSNoMultiSkip(t *testing.T) {
	p1 := NewOptPWS(0, 2, 1).(*optpws)
	p2 := NewOptPWS(1, 2, 1).(*optpws)
	p1.LocalWrite(0, 1)
	p1.LocalWrite(0, 2)
	u3, _ := p1.LocalWrite(0, 3)
	if got := p2.Status(u3); got != Blocked {
		t.Fatalf("Status(u3) = %v", got)
	}
}

// A write the sender never read is concurrent — OptP-WS applies the
// overwriter WITHOUT a skip (no dependency to skip).
func TestOptPWSConcurrentOverwriteNeedsNoSkip(t *testing.T) {
	p1 := NewOptPWS(0, 3, 1).(*optpws)
	p2 := NewOptPWS(1, 3, 1).(*optpws)
	p3 := NewOptPWS(2, 3, 1).(*optpws)
	u1, _ := p1.LocalWrite(0, 1)
	p2.Apply(u1) // applied, never read: u1 ‖co u2
	u2, _ := p2.LocalWrite(0, 2)
	if got := p3.Status(u2); got != Deliverable {
		t.Fatalf("Status(u2) = %v", got)
	}
	if tgt := p3.SkipTarget(u2); !tgt.IsBottom() {
		t.Fatalf("SkipTarget = %v, want Bottom (plain delivery)", tgt)
	}
	p3.Apply(u2)
	// u1 arrives later and applies normally (concurrent writes:
	// last-applied wins locally).
	if got := p3.Status(u1); got != Deliverable {
		t.Fatalf("late u1 = %v", got)
	}
	p3.Apply(u1)
}

func TestOptPWSPanics(t *testing.T) {
	t.Run("apply blocked", func(t *testing.T) {
		p1 := NewOptPWS(0, 2, 1).(*optpws)
		p2 := NewOptPWS(1, 2, 1).(*optpws)
		p1.LocalWrite(0, 1)
		p1.LocalWrite(0, 2)
		u3, _ := p1.LocalWrite(0, 3)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		p2.Apply(u3)
	})
	t.Run("discard unskipped", func(t *testing.T) {
		p1 := NewOptPWS(0, 2, 1).(*optpws)
		u1, _ := p1.LocalWrite(0, 1)
		p2 := NewOptPWS(1, 2, 1).(*optpws)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		p2.Discard(u1)
	})
}

func TestOptPWSIntrospection(t *testing.T) {
	p := NewOptPWS(0, 2, 2).(*optpws)
	u, _ := p.LocalWrite(1, 7)
	if v, id := p.Value(1); v != 7 || id != u.ID {
		t.Fatalf("Value = %d %v", v, id)
	}
	if _, id := p.Value(0); id != history.Bottom {
		t.Fatal("untouched var should be ⊥")
	}
	if !p.ControlClock().Equal(vclock.VC{1, 0}) {
		t.Fatalf("ControlClock = %v", p.ControlClock())
	}
}
