package history

import (
	"fmt"
	"sort"
)

// Violation describes one illegal read found while checking Definition 2.
type Violation struct {
	// Read is the global index of the illegal read.
	Read int
	// Op is the read operation itself.
	Op Op
	// Stale, when non-bottom, names a write w' on the same variable with
	// readFrom →co w' →co read: the read returned an overwritten value.
	Stale WriteID
	// Reason is a human-readable explanation.
	Reason string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%v at %v: %s", v.Op, v.Read, v.Reason)
}

// LegalRead checks Definition 1 for the read at global index i:
// r(x)v is legal iff ∃ w(x)v →co r and no w(x)v' with
// w(x)v →co w(x)v' →co r. A read of ⊥ is legal iff no write to x lies
// in its causal past.
//
// Instead of scanning the materialized causal past (the DenseCausality
// formulation), this walks processes in ascending order and consults the
// per-variable write index: process p's writes in ↓(r) are exactly seqs
// 1..wvec[r][p], and "w →co (p,s)" is monotone in s, so one binary
// search per process finds the least seq that could intervene. Because
// flattening is process-major and seqs follow local order, the first hit
// in this (proc, seq)-ascending sweep is the same minimal-global-index
// witness the dense scan reports.
//
// The second return is the zero Violation when the read is legal.
func (c *Causality) LegalRead(i int) (bool, Violation) {
	o := c.h.ops[i]
	if !o.IsRead() {
		panic(fmt.Sprintf("history: LegalRead on non-read %v", o))
	}
	row := c.wvec[i*c.np : (i+1)*c.np]
	if o.From.IsBottom() {
		// Must be no write to o.Var in ↓(r, →co): the first write on
		// o.Var by the lowest process with one in range is the witness.
		for p := 0; p < c.np; p++ {
			upper := int(row[p])
			if upper == 0 {
				continue
			}
			if sw := c.varWrites[p][o.Var]; len(sw) > 0 && sw[0] <= upper {
				w := c.h.ops[c.writesBy[p][sw[0]-1]]
				return false, Violation{
					Read: i, Op: o, Stale: w.ID,
					Reason: fmt.Sprintf("reads ⊥ but %v is in its causal past", w),
				}
			}
		}
		return true, Violation{}
	}
	widx := c.h.WriteIndex(o.From)
	if widx < 0 {
		return false, Violation{Read: i, Op: o, Reason: fmt.Sprintf("reads from unknown write %v", o.From)}
	}
	if !c.Before(widx, i) {
		// Read-from edges are →co generators, so this indicates a
		// malformed history rather than a stale value.
		return false, Violation{Read: i, Op: o, Reason: fmt.Sprintf("source write %v not in causal past", o.From)}
	}
	// No intervening write on the same variable: w →co w' →co r. For each
	// process p, candidates are seqs in [sMin, wvec[r][p]] where sMin is
	// the least s with w →co (p,s) — found by binary search on w's
	// local-index threshold in the candidates' opvec rows (trivially
	// Seq+1 on w's own process).
	wref := c.h.refs[widx]
	thresh := uint64(wref.Index) + 1
	for p := 0; p < c.np; p++ {
		upper := int(row[p])
		if upper == 0 {
			continue
		}
		var sMin int
		if p == o.From.Proc {
			sMin = o.From.Seq + 1
		} else {
			sMin = 1 + sort.Search(upper, func(k int) bool {
				return c.opvec[c.writesBy[p][k]*c.np+wref.Proc] >= thresh
			})
		}
		if sMin > upper {
			continue
		}
		sw := c.varWrites[p][o.Var]
		if k := sort.SearchInts(sw, sMin); k < len(sw) && sw[k] <= upper {
			w2 := c.h.ops[c.writesBy[p][sw[k]-1]]
			return false, Violation{
				Read: i, Op: o, Stale: w2.ID,
				Reason: fmt.Sprintf("value from %v was overwritten by %v before the read", o.From, w2),
			}
		}
	}
	return true, Violation{}
}

// CheckCausallyConsistent checks Definition 2: every read in the history
// is legal. It returns all violations found (nil means the history is
// causally consistent).
func (c *Causality) CheckCausallyConsistent() []Violation {
	var vs []Violation
	for i, o := range c.h.ops {
		if !o.IsRead() {
			continue
		}
		if ok, v := c.LegalRead(i); !ok {
			vs = append(vs, v)
		}
	}
	return vs
}

// IsCausallyConsistent reports Definition 2 as a single boolean.
func (c *Causality) IsCausallyConsistent() bool {
	return len(c.CheckCausallyConsistent()) == 0
}
