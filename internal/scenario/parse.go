// Package scenario parses histories written in the paper's notation
// and analyzes them: →co facts, the write causality graph, X_co-safe
// sets, and causal-consistency checking. It is the front end of
// cmd/cocheck and lets any history of the paper (or a user's own) be
// machine-checked from plain text.
//
// Grammar (one process per line, '#' comments, ';' separates ops):
//
//	p1: w(x1)a ; w(x1)c
//	p2: r(x1)a ; w(x2)b
//	p3: r(x2)b ; w(x2)d
//
// Operation forms:
//
//	w(x)v      — write value v to variable x
//	w1(x)v     — same, with an explicit process subscript that must
//	             match the line's process
//	r(x)v      — read returning value v; the source write is inferred
//	             from v (values must be write-unique, as in the paper)
//	r(x)_      — read returning the initial value ⊥ (also: r(x)⊥)
//
// Variables and values are identifiers or integers; each distinct
// value token denotes one write.
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/history"
)

// Scenario is a parsed history plus the naming needed to render
// results back in the source's vocabulary.
type Scenario struct {
	History *history.History
	// VarNames maps variable index → source name.
	VarNames []string
	// ValNames maps encoded value → source token.
	ValNames map[int64]string
}

// ParseError reports a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("scenario: line %d: %s", e.Line, e.Msg)
}

type parser struct {
	vars   map[string]int
	vals   map[string]int64
	nextV  int64
	orderV []string
}

// Parse reads a scenario from r.
func Parse(r io.Reader) (*Scenario, error) {
	p := &parser{vars: make(map[string]int), vals: make(map[string]int64)}

	type rawOp struct {
		line int
		kind history.Kind
		sub  int // explicit process subscript, -1 if absent
		vr   string
		val  string
	}
	type procLine struct {
		proc int
		ops  []rawOp
	}
	var lines []procLine
	procSeen := map[int]bool{}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, &ParseError{lineNo, "expected 'pN: ops'"}
		}
		procTok := strings.TrimSpace(line[:colon])
		var proc int
		if _, err := fmt.Sscanf(procTok, "p%d", &proc); err != nil || proc < 1 {
			return nil, &ParseError{lineNo, fmt.Sprintf("bad process name %q (want p1, p2, ...)", procTok)}
		}
		proc-- // 0-based
		if procSeen[proc] {
			return nil, &ParseError{lineNo, fmt.Sprintf("duplicate process p%d", proc+1)}
		}
		procSeen[proc] = true

		pl := procLine{proc: proc}
		for _, opTok := range strings.Split(line[colon+1:], ";") {
			opTok = strings.TrimSpace(opTok)
			if opTok == "" {
				continue
			}
			op, err := p.parseOp(lineNo, opTok)
			if err != nil {
				return nil, err
			}
			if op.sub >= 0 && op.sub != proc {
				return nil, &ParseError{lineNo, fmt.Sprintf("op %q subscript p%d on line of p%d", opTok, op.sub+1, proc+1)}
			}
			pl.ops = append(pl.ops, rawOp{line: lineNo, kind: op.kind, sub: op.sub, vr: op.vr, val: op.val})
		}
		lines = append(lines, pl)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: read: %w", err)
	}
	if len(lines) == 0 {
		return nil, &ParseError{lineNo, "empty scenario"}
	}

	// Processes must be p1..pn contiguous.
	n := 0
	for proc := range procSeen {
		if proc+1 > n {
			n = proc + 1
		}
	}
	for q := 0; q < n; q++ {
		if !procSeen[q] {
			return nil, &ParseError{0, fmt.Sprintf("missing process p%d (processes must be contiguous)", q+1)}
		}
	}

	b := history.NewBuilder(n)
	for _, pl := range lines {
		for _, op := range pl.ops {
			x := p.varIndex(op.vr)
			switch op.kind {
			case history.Write:
				v, fresh := p.valFor(op.val)
				if !fresh {
					return nil, &ParseError{op.line, fmt.Sprintf("value %q written twice; values must be write-unique", op.val)}
				}
				b.Write(pl.proc, x, v)
			case history.Read:
				if op.val == "_" || op.val == "⊥" {
					b.ReadFrom(pl.proc, x, 0, history.Bottom)
					continue
				}
				v, ok := p.vals[op.val]
				if !ok {
					return nil, &ParseError{op.line, fmt.Sprintf("read of value %q that no write produces", op.val)}
				}
				b.Read(pl.proc, x, v)
			}
		}
	}
	h, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	s := &Scenario{History: h, ValNames: make(map[int64]string)}
	s.VarNames = make([]string, len(p.orderV))
	copy(s.VarNames, p.orderV)
	for tok, v := range p.vals {
		s.ValNames[v] = tok
	}
	return s, nil
}

// ParseString parses a scenario from a string.
func ParseString(src string) (*Scenario, error) {
	return Parse(strings.NewReader(src))
}

type parsedOp struct {
	kind history.Kind
	sub  int
	vr   string
	val  string
}

// parseOp parses one "w(x)v" / "w2(x)v" / "r(x)v" token.
func (p *parser) parseOp(line int, tok string) (parsedOp, error) {
	op := parsedOp{sub: -1}
	rest := tok
	switch {
	case strings.HasPrefix(rest, "w"):
		op.kind = history.Write
		rest = rest[1:]
	case strings.HasPrefix(rest, "r"):
		op.kind = history.Read
		rest = rest[1:]
	default:
		return op, &ParseError{line, fmt.Sprintf("op %q must start with w or r", tok)}
	}
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return op, &ParseError{line, fmt.Sprintf("op %q missing '('", tok)}
	}
	if open > 0 {
		var sub int
		if _, err := fmt.Sscanf(rest[:open], "%d", &sub); err != nil || sub < 1 {
			return op, &ParseError{line, fmt.Sprintf("bad process subscript in %q", tok)}
		}
		op.sub = sub - 1
	}
	closeIdx := strings.IndexByte(rest, ')')
	if closeIdx < open {
		return op, &ParseError{line, fmt.Sprintf("op %q missing ')'", tok)}
	}
	op.vr = strings.TrimSpace(rest[open+1 : closeIdx])
	if op.vr == "" {
		return op, &ParseError{line, fmt.Sprintf("op %q has empty variable", tok)}
	}
	op.val = strings.TrimSpace(rest[closeIdx+1:])
	if op.val == "" {
		return op, &ParseError{line, fmt.Sprintf("op %q has no value", tok)}
	}
	return op, nil
}

func (p *parser) varIndex(name string) int {
	if i, ok := p.vars[name]; ok {
		return i
	}
	i := len(p.orderV)
	p.vars[name] = i
	p.orderV = append(p.orderV, name)
	return i
}

// valFor returns the encoded value for a token and whether it is fresh
// (first write of that token).
func (p *parser) valFor(tok string) (int64, bool) {
	if v, ok := p.vals[tok]; ok {
		return v, false
	}
	p.nextV++
	p.vals[tok] = p.nextV
	return p.nextV, true
}

// OpName renders an operation in the scenario's own vocabulary.
func (s *Scenario) OpName(o history.Op) string {
	vr := fmt.Sprintf("x%d", o.Var+1)
	if o.Var < len(s.VarNames) {
		vr = s.VarNames[o.Var]
	}
	val := fmt.Sprintf("%d", o.Val)
	if n, ok := s.ValNames[o.Val]; ok {
		val = n
	} else if o.Val == 0 {
		val = "⊥"
	}
	k := "w"
	if o.IsRead() {
		k = "r"
	}
	return fmt.Sprintf("%s%d(%s)%s", k, o.Proc+1, vr, val)
}

// WriteName renders a write by ID.
func (s *Scenario) WriteName(id history.WriteID) string {
	idx := s.History.WriteIndex(id)
	if idx < 0 {
		return id.String()
	}
	return s.OpName(s.History.Ops()[idx])
}

// SortedWriteIDs returns the scenario's writes sorted by (Proc, Seq).
func (s *Scenario) SortedWriteIDs() []history.WriteID {
	var ids []history.WriteID
	for _, gi := range s.History.Writes() {
		ids = append(ids, s.History.Ops()[gi].ID)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Proc != ids[j].Proc {
			return ids[i].Proc < ids[j].Proc
		}
		return ids[i].Seq < ids[j].Seq
	})
	return ids
}
