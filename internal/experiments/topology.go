package experiments

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TwoSiteTopology is E10: a geo-distributed layout — two sites with
// fast intra-site links and a slow, jittery inter-site link (built on
// the MatrixLatency model). False causality hurts most here: a write
// that merely APPLIED a remote-site write before being issued drags the
// whole remote site's past into ANBKH's enabling sets, so local-site
// deliveries stall behind the WAN.
func TwoSiteTopology() (Result, error) {
	r := Result{
		Name:   "E10-twosite",
		Desc:   "two sites (intra 5±5, inter 200±200): mean write delays and buffering time",
		Header: []string{"procs/site", "protocol", "delays", "unnecessary", "mean-buffer-ticks"},
	}
	for _, perSite := range []int{2, 4} {
		n := 2 * perSite
		base := make([][]int64, n)
		for i := range base {
			base[i] = make([]int64, n)
			for j := range base[i] {
				if i == j {
					continue
				}
				if (i < perSite) == (j < perSite) {
					base[i][j] = 5 // intra-site
				} else {
					base[i][j] = 200 // inter-site
				}
			}
		}
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv} {
			var m runMetrics
			for _, seed := range seeds {
				scripts, err := workload.Scripts(workload.Config{
					Procs: n, Vars: n, OpsPerProc: 25, WriteRatio: 0.6,
					ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
				})
				if err != nil {
					return r, err
				}
				jitter := func(scale int64) sim.Latency {
					return sim.NewMatrixLatency(base, scale, seed*17+3)
				}
				res, err := sim.Run(sim.Config{
					Procs: n, Vars: n, Protocol: kind,
					Latency: jitter(200), FIFO: true,
				}, scripts)
				if err != nil {
					return r, fmt.Errorf("experiments: E10 %v: %w", kind, err)
				}
				st := res.Log.Stats(kind.String())
				m.delays += float64(st.Delays)
				m.meanDur += st.DelayDurations.Mean
				un, err := unnecessaryOf(res)
				if err != nil {
					return r, err
				}
				m.unnecessary += float64(un)
			}
			k := float64(len(seeds))
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(perSite), kind.String(),
				f1(m.delays / k), f1(m.unnecessary / k), f1(m.meanDur / k),
			})
		}
	}
	return r, nil
}

// unnecessaryOf audits a run and returns its unnecessary-delay count.
func unnecessaryOf(res *sim.Result) (int, error) {
	rep, err := checker.Audit(res.Log)
	if err != nil {
		return 0, err
	}
	return rep.UnnecessaryDelays, nil
}
