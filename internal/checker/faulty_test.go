package checker

import (
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// eager is a deliberately BROKEN protocol: it applies every update the
// moment it arrives, ignoring causality. It exists to prove the audits
// have teeth — a checker that never fires on a broken protocol verifies
// nothing.
type eager struct {
	id      int
	n       int
	seq     int
	applied vclock.VC
	vals    []int64
	writers []history.WriteID
}

func newEager(p, n, m int) protocol.Replica {
	return &eager{
		id: p, n: n,
		applied: vclock.New(n),
		vals:    make([]int64, m),
		writers: make([]history.WriteID, m),
	}
}

func (r *eager) ProcID() int         { return r.id }
func (r *eager) Kind() protocol.Kind { return protocol.Kind(97) }

func (r *eager) LocalWrite(x int, v int64) (protocol.Update, bool) {
	r.seq++
	u := protocol.Update{
		ID:  history.WriteID{Proc: r.id, Seq: r.seq},
		Var: x, Val: v,
		Clock: r.applied.Clone(),
	}
	r.vals[x] = v
	r.writers[x] = u.ID
	r.applied.Tick(r.id)
	return u, true
}

func (r *eager) Read(x int) (int64, history.WriteID) { return r.vals[x], r.writers[x] }

// Status is the bug: everything is deliverable immediately.
func (r *eager) Status(protocol.Update) protocol.Deliverability { return protocol.Deliverable }

func (r *eager) Apply(u protocol.Update) {
	r.vals[u.Var] = u.Val
	r.writers[u.Var] = u.ID
	r.applied.Tick(u.From())
}

func (r *eager) Discard(protocol.Update) { panic("eager: discard") }

func (r *eager) ControlClock() vclock.VC { return r.applied.Clone() }
func (r *eager) ApplyClock() vclock.VC   { return r.applied.Clone() }
func (r *eager) Value(x int) (int64, history.WriteID) {
	return r.vals[x], r.writers[x]
}

// The H1 scenario with Figure-3 arrivals under the eager protocol: p3
// applies b before a (safety violation), and a p3 read of x1 after
// observing b returns ⊥ although w1(x1)a is in its causal past
// (legality violation). Both must be flagged.
func TestCheckerCatchesBrokenProtocol(t *testing.T) {
	wa := history.WriteID{Proc: 0, Seq: 1}
	wb := history.WriteID{Proc: 1, Seq: 1}
	lat := sim.NewScriptedLatency(10).
		Set(wa, 1, 10).Set(wa, 2, 40).
		Set(history.WriteID{Proc: 0, Seq: 2}, 1, 20).Set(history.WriteID{Proc: 0, Seq: 2}, 2, 60).
		Set(wb, 0, 10).Set(wb, 2, 10)
	scripts := []sim.Script{
		sim.NewScript().Write(0, history.ValA).Write(0, history.ValC),
		sim.NewScript().Await(0, history.ValA).Read(0).Await(0, history.ValC).Write(1, history.ValB),
		// p3 reads x2=b, then x1 — which is still ⊥ under eager apply.
		sim.NewScript().Await(1, history.ValB).Read(1).Read(0).Write(1, history.ValD),
	}
	res, err := sim.Run(sim.Config{
		Procs: 3, Vars: 2,
		NewReplica: newEager,
		Latency:    lat,
	}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(res.Log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe() {
		t.Fatal("safety audit missed out-of-order applies")
	}
	found := false
	for _, v := range rep.SafetyViolations {
		if v.Proc == 2 && v.First == wa && v.Second == wb {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected (a before b at p3) violation, got %v", rep.SafetyViolations)
	}
	if rep.CausallyConsistent() {
		t.Fatal("legality audit missed the stale ⊥ read")
	}
	v := rep.LegalityViolations[0]
	if !v.Op.IsRead() || v.Op.Proc != 2 || v.Op.Var != 0 {
		t.Fatalf("wrong violation: %+v", v)
	}
	// Liveness still holds (everything applied), so the ONLY failures
	// are the two above — the audits discriminate.
	if !rep.InP() {
		t.Fatalf("liveness should hold for eager: %v", rep.NotApplied)
	}
}

// Under benign arrival orders even the broken protocol produces
// consistent runs — the audit must not fire spuriously.
func TestCheckerNoFalsePositiveOnBenignRun(t *testing.T) {
	scripts := []sim.Script{
		sim.NewScript().Write(0, 1),
		sim.NewScript().Await(0, 1).Read(0).Write(1, 2),
		sim.NewScript().Await(1, 2).Read(1),
	}
	res, err := sim.Run(sim.Config{
		Procs: 3, Vars: 2,
		NewReplica: newEager,
		Latency:    sim.ConstantLatency(10),
	}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(res.Log)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() {
		t.Fatalf("spurious violations: %v %v %v",
			rep.SafetyViolations, rep.LegalityViolations, rep.NotApplied)
	}
}
