// Bulletinboard: a causal message board, the workload that motivates
// causal memory in the paper's introduction (data-centric exchange
// among decoupled processes).
//
// Users post to per-user slots of a shared board. A reply is written
// only after its author READ the post it answers, so post →co reply.
// Causal consistency then guarantees no observer anywhere ever sees a
// reply without the post it answers — even over a transport that
// reorders messages aggressively.
//
// Run with: go run ./examples/bulletinboard
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
)

// Board layout: variable u holds the latest message id posted by user
// u. Message payloads are ids; a real system would map ids to content.
const (
	users    = 4
	rounds   = 5
	maxDelay = 3 * time.Millisecond
)

func main() {
	cluster, err := core.NewCluster(core.Config{
		Processes: users,
		Variables: users,
		MaxDelay:  maxDelay,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Each user alternates: post to the own slot, then reply to the
	// *observed* latest post of the next user (read first → causal
	// edge).
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := cluster.Node(u)
			for r := 1; r <= rounds; r++ {
				post := int64(u*1000 + r*10) // "post #r by u"
				if err := node.Write(u, post); err != nil {
					log.Fatal(err)
				}
				// Read the neighbour's board slot; reply references it.
				neighbour := (u + 1) % users
				seen, err := node.Read(neighbour)
				if err != nil {
					log.Fatal(err)
				}
				if seen != 0 {
					reply := post + seen%10 + 1 // "reply to what we saw"
					if err := node.Write(u, reply); err != nil {
						log.Fatal(err)
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cluster.Quiesce(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("final board as seen by each user:")
	for u := 0; u < users; u++ {
		fmt.Printf("  user %d:", u+1)
		for s := 0; s < users; s++ {
			v, _ := cluster.Node(u).Read(s)
			fmt.Printf(" slot%d=%d", s+1, v)
		}
		fmt.Println()
	}

	report, err := checker.Audit(cluster.Log())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", cluster.Stats())
	fmt.Printf("audit: safe=%v consistent=%v — every reply was ordered after its post at every replica\n",
		report.Safe(), report.CausallyConsistent())
	if !report.Safe() || !report.CausallyConsistent() {
		log.Fatal("causal consistency violated — this must never happen")
	}
}
