package protocol

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/vclock"
)

// partialrep is the Xiang–Vaidya partial-replication protocol
// (arXiv:1703.05424, Algorithm 1/2 adapted to this package's
// state-machine interface): each process stores only the variables in
// its share-set, writes are multicast to exactly the replicating
// processes, and causality is tracked with an edge-indexed matrix
// instead of a process-indexed vector.
//
// Per-process state:
//
//	M[1..n][1..n] — M[j][k] = number of multicast updates issued by p_j
//	                and addressed to p_k in the causal past of the next
//	                operation here. Flattened into one n²-component
//	                vector clock (index j·n+k) so the existing clock
//	                codecs, WAL and metadata compression apply
//	                unchanged. Sparse by construction: a write to x
//	                ticks only the |shareSet(x)| entries in row i.
//	Applied[1..n] — Applied[j] = number of updates issued by p_j and
//	                addressed to *this* process that have been applied
//	                here. Only the column of M that concerns this
//	                process ever needs comparing against it.
//	LastOn[x]     — for each locally replicated x, the M-matrix carried
//	                by the last applied write to x (OptP's LastWriteOn,
//	                matrix-valued).
//
// The OptP asymmetry is preserved: M grows only through the process's
// own multicasts and through reads (local reads merge LastOn[x];
// remote reads merge the reply's matrix). Applying an update never
// touches M, so updates carry exactly the →co past of their write.
//
// Delivery of a write by p_i addressed to p_k (this process) waits for
//
//	∀j ≠ i: M_u[j][k] ≤ Applied[j]   ∧   Applied[i] = M_u[i][k] − 1
//
// — every update addressed *here* in the write's causal past is
// applied, and this is the next update on the (i,k) edge. Updates
// addressed elsewhere never delay delivery, which is the whole point:
// causal ordering is enforced per destination, not globally.
//
// Reads of non-replicated variables are forwarded (RemoteReader): the
// requester sends its M matrix to a deterministic server in the
// variable's share-set; the server answers once every update addressed
// to it in the requester's causal past is applied — in particular the
// last write to x the requester causally saw, since that write was
// addressed to the entire share-set. The reply carries LastOn[x],
// which the requester merges into M, making the forwarded read a →co
// edge exactly like a local one.
type partialrep struct {
	id     int
	n      int
	m      int
	shares ShareSets

	mat     vclock.VC // n² edge matrix, index j*n+k
	applied vclock.VC // n, my column of the applied counts
	issued  int       // local write counter (WriteID.Seq)
	readTok int       // remote-read token counter (negative ID.Seq)

	localIdx []int // var → local slot, -1 when not replicated here
	lastOn   []vclock.VC
	vals     []int64
	writers  []history.WriteID
}

// NewPartialRep returns a PartialRep replica for process p of n over m
// variables under the given assignment. A zero ShareSets means full
// replication, under which the protocol degenerates to broadcast with
// matrix metadata and never forwards a read.
func NewPartialRep(p, n, m int, shares ShareSets) Replica {
	if shares.IsZero() {
		shares = Full(m, n)
	}
	if shares.NumProcs() != n || shares.NumVars() != m {
		panic(fmt.Sprintf("partialrep: share-sets shaped %d/%d, cluster %d/%d",
			shares.NumProcs(), shares.NumVars(), n, m))
	}
	r := &partialrep{
		id:       p,
		n:        n,
		m:        m,
		shares:   shares,
		mat:      vclock.New(n * n),
		applied:  vclock.New(n),
		localIdx: make([]int, m),
	}
	for x := 0; x < m; x++ {
		r.localIdx[x] = -1
	}
	for slot, x := range shares.LocalVars(p) {
		r.localIdx[x] = slot
	}
	nl := len(shares.LocalVars(p))
	r.lastOn = make([]vclock.VC, nl)
	for i := range r.lastOn {
		r.lastOn[i] = vclock.New(n * n)
	}
	r.vals = make([]int64, nl)
	r.writers = make([]history.WriteID, nl)
	return r
}

func (r *partialrep) ProcID() int { return r.id }

func (r *partialrep) Kind() Kind { return PartialRep }

// Shares exposes the assignment for engines (multicast destinations,
// server selection).
func (r *partialrep) Shares() ShareSets { return r.shares }

// LocalVar reports whether x is replicated at this process — engines
// forward reads (and skip the local install of writes) when it is not.
func (r *partialrep) LocalVar(x int) bool { return r.localIdx[x] >= 0 }

// LocalWrite multicasts w_i(x)v to shareSet(x): tick row i of M at
// every addressed column, ship the matrix, and install locally only if
// this process replicates x. A writer outside the share-set still gets
// read-your-writes through forwarding: its ReadReq carries the ticked
// M[i][server] entry, which blocks the server until this write is
// applied there.
func (r *partialrep) LocalWrite(x int, v int64) (Update, bool) {
	r.issued++
	for _, k := range r.shares.Replicas(x) {
		r.mat.Tick(r.id*r.n + k)
	}
	u := Update{
		ID:    history.WriteID{Proc: r.id, Seq: r.issued},
		Var:   x,
		Val:   v,
		Clock: r.mat.Clone(),
	}
	if lx := r.localIdx[x]; lx >= 0 {
		u.Prev = r.writers[lx]
		r.vals[lx] = v
		r.writers[lx] = u.ID
		r.lastOn[lx].CopyFrom(r.mat)
		r.applied.Tick(r.id)
	}
	return u, true
}

// Read merges LastOn[x] into M (the OptP read rule) and returns the
// local copy. Reads of non-replicated variables must go through the
// RemoteReader path; a direct Read is an engine bug.
func (r *partialrep) Read(x int) (int64, history.WriteID) {
	lx := r.localIdx[x]
	if lx < 0 {
		panic(fmt.Sprintf("partialrep: p%d direct Read of non-replicated x%d", r.id+1, x+1))
	}
	r.mat.Merge(r.lastOn[lx])
	return r.vals[lx], r.writers[lx]
}

// Status classifies writes by the per-destination wait condition, and
// forwarded-read requests by the server-side condition (every update
// addressed here in the requester's causal past is applied). Replies
// wait for the mirror condition at the requester: the reply's matrix
// (the server's LastOn[x]) may cover writes addressed to *this*
// process that are still in flight, and merging it before they apply
// would stamp the requester's next write ahead of them — a remote
// replica would then install that write after applying the stragglers,
// inverting →co. So a reply is deliverable only once every update
// addressed here in its causal past is applied.
func (r *partialrep) Status(u Update) Deliverability {
	switch {
	case u.ReadReply:
		for j := 0; j < r.n; j++ {
			if u.Clock.Get(j*r.n+r.id) > r.applied.Get(j) {
				return Blocked
			}
		}
		return Deliverable
	case u.ReadReq:
		for j := 0; j < r.n; j++ {
			if u.Clock.Get(j*r.n+r.id) > r.applied.Get(j) {
				return Blocked
			}
		}
		return Deliverable
	}
	from := u.From()
	for j := 0; j < r.n; j++ {
		if j == from {
			continue
		}
		if u.Clock.Get(j*r.n+r.id) > r.applied.Get(j) {
			return Blocked
		}
	}
	if r.applied.Get(from) != u.Clock.Get(from*r.n+r.id)-1 {
		return Blocked
	}
	return Deliverable
}

// Apply installs a write addressed to this process. M is NOT merged —
// only reads grow it.
func (r *partialrep) Apply(u Update) {
	if u.ReadReq || u.ReadReply {
		panic(fmt.Sprintf("partialrep: Apply of read-forwarding message %v", u))
	}
	lx := r.localIdx[u.Var]
	if lx < 0 {
		panic(fmt.Sprintf("partialrep: p%d asked to apply %v outside its share-set", r.id+1, u))
	}
	if s := r.Status(u); s != Deliverable {
		panic(fmt.Sprintf("partialrep: Apply of %v while %v (applied=%v)", u, s, r.applied))
	}
	r.vals[lx] = u.Val
	r.writers[lx] = u.ID
	r.applied.Tick(u.From())
	r.lastOn[lx].CopyFrom(u.Clock)
}

// Discard is never legal: every update addressed to a process is
// applied there (PartialRep ∈ 𝒫 restricted to share-sets).
func (r *partialrep) Discard(u Update) {
	panic(fmt.Sprintf("partialrep: Discard(%v) on a protocol in 𝒫", u))
}

// ---------------------------------------------------------------------
// read forwarding

// RemoteReader is implemented by replicas that serve reads of
// non-replicated variables by forwarding. Engines route the request to
// Server(), hold it to the replica's Status/pending discipline like any
// update, serve it with ServeRead on the chosen replica, and complete
// it with CompleteRead back on the requester.
type RemoteReader interface {
	// Shares returns the replication assignment the replica runs under.
	Shares() ShareSets
	// LocalVar reports whether x can be read locally.
	LocalVar(x int) bool
	// NewReadReq builds the forwarded-read request for x and names the
	// serving process.
	NewReadReq(x int) (req Update, server int)
	// ServeRead answers a deliverable request with the current local
	// copy; it does not mutate the server's state.
	ServeRead(req Update) Update
	// CompleteRead merges a reply into the requester's causal state and
	// returns the read's (value, writer).
	CompleteRead(reply Update) (int64, history.WriteID)
}

// NewReadReq implements RemoteReader. The request carries the
// requester's full M matrix and a fresh negative token in ID.Seq —
// negative so buffered requests can never collide with write IDs in
// engine pending-buffer indexes (the WSSend Marker convention).
func (r *partialrep) NewReadReq(x int) (Update, int) {
	if r.localIdx[x] >= 0 {
		panic(fmt.Sprintf("partialrep: p%d forwarding a read of local x%d", r.id+1, x+1))
	}
	r.readTok++
	req := Update{
		ID:      history.WriteID{Proc: r.id, Seq: -r.readTok},
		Var:     x,
		Clock:   r.mat.Clone(),
		ReadReq: true,
	}
	return req, r.shares.Server(r.id, x)
}

// ServeRead implements RemoteReader. The caller must have observed
// Status(req) == Deliverable. The reply echoes the request token and
// names the serving process; Prev carries the writer whose value is
// returned, Clock the LastOn matrix that makes the forwarded read a
// →co edge at the requester.
func (r *partialrep) ServeRead(req Update) Update {
	lx := r.localIdx[req.Var]
	if lx < 0 {
		panic(fmt.Sprintf("partialrep: p%d asked to serve read of non-replicated x%d", r.id+1, req.Var+1))
	}
	return Update{
		ID:        history.WriteID{Proc: r.id, Seq: req.ID.Seq},
		Var:       req.Var,
		Val:       r.vals[lx],
		Clock:     r.lastOn[lx].Clone(),
		Prev:      r.writers[lx],
		ReadReply: true,
	}
}

// CompleteRead implements RemoteReader.
func (r *partialrep) CompleteRead(reply Update) (int64, history.WriteID) {
	r.mat.Merge(reply.Clock)
	return reply.Val, reply.Prev
}

// ---------------------------------------------------------------------
// introspection

// ControlClock implements Introspector: the full n² edge matrix.
func (r *partialrep) ControlClock() vclock.VC { return r.mat.Clone() }

// ApplyClock implements Introspector: Applied[j] counts the updates
// from p_j addressed to this process that are applied here. Under full
// replication this is exactly OptP's Apply vector.
func (r *partialrep) ApplyClock() vclock.VC { return r.applied.Clone() }

// Value implements Introspector; non-replicated variables read as ⊥.
func (r *partialrep) Value(x int) (int64, history.WriteID) {
	if lx := r.localIdx[x]; lx >= 0 {
		return r.vals[lx], r.writers[lx]
	}
	return 0, history.Bottom
}

// FrontierDominates implements FrontierDominator. The frontier only
// converges across replicas under full replication (each process's
// Applied counts a different subset of writes otherwise), which is why
// the serving tier refuses partially replicated clusters.
func (r *partialrep) FrontierDominates(t vclock.VC) bool { return r.applied.Dominates(t) }
