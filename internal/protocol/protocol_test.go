package protocol

import (
	"math/rand"
	"testing"

	"repro/internal/history"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		OptP:            "OptP",
		ANBKH:           "ANBKH",
		WSRecv:          "WS-recv",
		WSSend:          "WS-send",
		OptPNoReadMerge: "OptP-noreadmerge",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), s)
		}
		parsed, err := ParseKind(s)
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v", s, parsed, err)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind should reject unknown names")
	}
}

func TestNewConstructsAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		r := New(k, 1, 3, 2)
		if r.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, r.Kind())
		}
		if r.ProcID() != 1 {
			t.Errorf("New(%v).ProcID() = %d", k, r.ProcID())
		}
		if _, ok := r.(Introspector); !ok {
			t.Errorf("%v does not implement Introspector", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New of unknown kind should panic")
		}
	}()
	New(Kind(99), 0, 1, 1)
}

func TestBroadcastKindsSubset(t *testing.T) {
	all := map[Kind]bool{}
	for _, k := range Kinds() {
		all[k] = true
	}
	for _, k := range BroadcastKinds() {
		if !all[k] {
			t.Errorf("BroadcastKinds contains unknown %v", k)
		}
		if k == WSSend {
			t.Error("WSSend is not a broadcast protocol")
		}
	}
}

func TestDeliverabilityStrings(t *testing.T) {
	for d, s := range map[Deliverability]string{Blocked: "blocked", Deliverable: "deliverable", Discardable: "discardable"} {
		if d.String() != s {
			t.Errorf("String = %q, want %q", d.String(), s)
		}
	}
	_ = Deliverability(9).String()
}

func TestUpdateAccessors(t *testing.T) {
	u := Update{ID: history.WriteID{Proc: 2, Seq: 5}, Var: 1, Val: 9}
	if u.From() != 2 {
		t.Fatalf("From = %d", u.From())
	}
	if u.String() == "" {
		t.Fatal("empty String")
	}
}

// Cross-protocol property: for OptP and ANBKH, randomly interleaved
// deliveries (respecting Status) always converge — every replica ends
// with identical Apply clocks once all updates are applied.
func TestBroadcastProtocolsConverge(t *testing.T) {
	for _, kind := range []Kind{OptP, ANBKH, OptPNoReadMerge} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 20; trial++ {
				n, m := 3, 2
				reps := make([]Replica, n)
				for i := range reps {
					reps[i] = New(kind, i, n, m)
				}
				// Issue random writes/reads; collect updates per receiver.
				type envelope struct {
					to int
					u  Update
				}
				var inflight []envelope
				for op := 0; op < 25; op++ {
					p := rng.Intn(n)
					if rng.Intn(2) == 0 {
						u, bc := reps[p].LocalWrite(rng.Intn(m), int64(op+1))
						if !bc {
							t.Fatal("broadcast protocol deferred")
						}
						for q := 0; q < n; q++ {
							if q != p {
								inflight = append(inflight, envelope{q, u})
							}
						}
					} else {
						reps[p].Read(rng.Intn(m))
					}
					// Randomly deliver some deliverable envelopes.
					for len(inflight) > 0 && rng.Intn(3) != 0 {
						i := rng.Intn(len(inflight))
						e := inflight[i]
						if reps[e.to].Status(e.u) != Deliverable {
							break
						}
						reps[e.to].Apply(e.u)
						inflight = append(inflight[:i], inflight[i+1:]...)
					}
				}
				// Drain: deliver everything remaining.
				for len(inflight) > 0 {
					progress := false
					for i := 0; i < len(inflight); i++ {
						e := inflight[i]
						if reps[e.to].Status(e.u) == Deliverable {
							reps[e.to].Apply(e.u)
							inflight = append(inflight[:i], inflight[i+1:]...)
							progress = true
							i--
						}
					}
					if !progress {
						t.Fatalf("trial %d: no progress with %d in flight", trial, len(inflight))
					}
				}
				base := reps[0].(Introspector).ApplyClock()
				for i := 1; i < n; i++ {
					if !reps[i].(Introspector).ApplyClock().Equal(base) {
						t.Fatalf("trial %d: apply clocks diverge: %v vs %v",
							trial, base, reps[i].(Introspector).ApplyClock())
					}
				}
			}
		})
	}
}
