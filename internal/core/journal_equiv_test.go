package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// serialLog is a trace.Sink that records events exactly as the old
// globally-locked Cluster log did: one at a time, in global order,
// Seq pre-assigned. The cluster invokes sinks under its serializing
// tee, so no internal locking is needed — which is itself part of the
// contract under test (-race would flag a violation).
type serialLog struct {
	log *trace.Log
}

func (s *serialLog) Record(e trace.Event) {
	if want := len(s.log.Events); e.Seq != want {
		panic("sink saw out-of-order event") // surfaces as a test failure
	}
	s.log.Events = append(s.log.Events, e)
}

// TestJournalMergeObservationallyIdentical runs a concurrent workload
// under every protocol kind and checks that the lazily-merged journal
// log is observationally identical to the same run recorded serially
// under a global order (the attached sink): identical event sequences,
// identical checker verdicts, identical stats.
func TestJournalMergeObservationallyIdentical(t *testing.T) {
	for _, kind := range protocol.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			sink := &serialLog{log: trace.NewLog(3, 2)}
			c, err := NewCluster(Config{
				Processes: 3, Variables: 2, Protocol: kind,
				FIFO: true, MaxDelay: 200 * time.Microsecond, Seed: int64(kind) + 1,
				TokenInterval: 200 * time.Microsecond,
				Sink:          sink,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			var wg sync.WaitGroup
			for p := 0; p < 3; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 1; i <= 40; i++ {
						if err := c.WriteAt(p, i%2, int64(p*1000+i)); err != nil {
							t.Error(err)
							return
						}
						if i%3 == 0 {
							if _, err := c.ReadAt(p, (i+1)%2); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(p)
			}
			wg.Wait()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := c.Quiesce(ctx); err != nil {
				t.Fatal(err)
			}
			// Stop the token loop and drain the transport before reading
			// the sink: WS-send keeps announcing empty token rounds after
			// quiescence, and those marker events would race the reads
			// below (Close is idempotent with the deferred one).
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			merged := c.Log()
			serial := sink.log
			if len(merged.Events) != len(serial.Events) {
				t.Fatalf("merged log has %d events, serial recording %d",
					len(merged.Events), len(serial.Events))
			}
			for i := range merged.Events {
				if merged.Events[i] != serial.Events[i] {
					t.Fatalf("event %d differs:\nmerged: %+v\nserial: %+v",
						i, merged.Events[i], serial.Events[i])
				}
			}

			mRep, err := checker.Audit(merged)
			if err != nil {
				t.Fatalf("audit of merged log: %v", err)
			}
			sRep, err := checker.Audit(serial)
			if err != nil {
				t.Fatalf("audit of serial log: %v", err)
			}
			if !mRep.Safe() || !mRep.CausallyConsistent() || !mRep.ExactlyOnce() {
				t.Fatalf("merged log fails audit:\n%v", mRep)
			}
			if mRep.String() != sRep.String() {
				t.Fatalf("verdicts differ:\nmerged:\n%v\nserial:\n%v", mRep, sRep)
			}
			if m, s := merged.Stats(kind.String()), serial.Stats(kind.String()); m != s {
				t.Fatalf("stats differ:\nmerged: %+v\nserial: %+v", m, s)
			}
		})
	}
}

// TestCloseVsWrite regression-tests the lock-free closed flag: Close
// racing a storm of writers and readers must neither deadlock nor
// panic, operations after Close must report ErrClosed, and Close must
// stay idempotent.
func TestCloseVsWrite(t *testing.T) {
	c, err := NewCluster(Config{Processes: 4, Variables: 2, FIFO: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			<-start
			for i := 1; ; i++ {
				if err := c.WriteAt(p, i%2, int64(i)); err != nil {
					return // ErrClosed ends the storm
				}
				if _, err := c.ReadAt(p, i%2); err != nil {
					return
				}
			}
		}(p)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if err := c.WriteAt(0, 0, 1); err != ErrClosed {
		t.Fatalf("write after close: got %v, want ErrClosed", err)
	}
	if _, err := c.ReadAt(0, 0); err != ErrClosed {
		t.Fatalf("read after close: got %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
