package paperrepro

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden artifact files")

// TestGoldenArtifacts pins every rendered artifact byte-for-byte
// against testdata/*.golden. The artifacts are fully deterministic
// (scripted scenarios, fixed latencies), so any diff is a renderer or
// protocol regression. Regenerate with:
//
//	go test ./internal/paperrepro -run Golden -update
func TestGoldenArtifacts(t *testing.T) {
	for _, a := range Artifacts() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			got, err := a.Render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", a.Name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("artifact %s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
					a.Name, got, want)
			}
		})
	}
}
