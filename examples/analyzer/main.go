// Analyzer: working with histories as data — the theory side of the
// library, no cluster required.
//
// It analyzes three hand-written histories in the paper's notation:
// the paper's Example 1, a stale-read violation, and the
// oscillating-reads history that separates the paper's Definition 2
// from the Ahamad et al. serialization definition.
//
// Run with: go run ./examples/analyzer
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
)

var cases = []struct {
	title string
	src   string
}{
	{
		"The paper's Example 1 (Ĥ1)",
		`p1: w(x1)a ; w(x1)c
p2: r(x1)a ; w(x2)b
p3: r(x2)b ; w(x2)d`,
	},
	{
		"A stale read: p2 observes the overwrite, then reads the old value",
		`p1: w(x)old ; w(x)new
p2: r(x)new ; r(x)old`,
	},
	{
		"Oscillating reads of concurrent writes: legal per Definition 2, yet not serializable",
		`p1: w(x)u
p2: w(x)v
p3: r(x)u ; r(x)v ; r(x)u`,
	},
}

func main() {
	for i, c := range cases {
		fmt.Printf("=== %d. %s ===\n\n", i+1, c.title)
		a, err := scenario.AnalyzeString(c.src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(a.Report())
	}
	fmt.Println("Histories can also be checked from the command line:")
	fmt.Println("  go run ./cmd/cocheck -example")
	fmt.Println("  go run ./cmd/cocheck my-history.txt")
}
