package history

import "fmt"

// Violation describes one illegal read found while checking Definition 2.
type Violation struct {
	// Read is the global index of the illegal read.
	Read int
	// Op is the read operation itself.
	Op Op
	// Stale, when non-bottom, names a write w' on the same variable with
	// readFrom →co w' →co read: the read returned an overwritten value.
	Stale WriteID
	// Reason is a human-readable explanation.
	Reason string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%v at %v: %s", v.Op, v.Read, v.Reason)
}

// LegalRead checks Definition 1 for the read at global index i:
// r(x)v is legal iff ∃ w(x)v →co r and no w(x)v' with
// w(x)v →co w(x)v' →co r. A read of ⊥ is legal iff no write to x lies
// in its causal past.
//
// The second return is the zero Violation when the read is legal.
func (c *Causality) LegalRead(i int) (bool, Violation) {
	o := c.h.ops[i]
	if !o.IsRead() {
		panic(fmt.Sprintf("history: LegalRead on non-read %v", o))
	}
	if o.From.IsBottom() {
		// Must be no write to o.Var in ↓(r, →co).
		for _, j := range c.pred[i].members(nil) {
			if w := c.h.ops[j]; w.IsWrite() && w.Var == o.Var {
				return false, Violation{
					Read: i, Op: o, Stale: w.ID,
					Reason: fmt.Sprintf("reads ⊥ but %v is in its causal past", w),
				}
			}
		}
		return true, Violation{}
	}
	widx := c.h.WriteIndex(o.From)
	if widx < 0 {
		return false, Violation{Read: i, Op: o, Reason: fmt.Sprintf("reads from unknown write %v", o.From)}
	}
	if !c.Before(widx, i) {
		// Read-from edges are →co generators, so this indicates a
		// malformed history rather than a stale value.
		return false, Violation{Read: i, Op: o, Reason: fmt.Sprintf("source write %v not in causal past", o.From)}
	}
	// No intervening write on the same variable: w →co w' →co r.
	for _, j := range c.pred[i].members(nil) {
		w2 := c.h.ops[j]
		if !w2.IsWrite() || w2.Var != o.Var || j == widx {
			continue
		}
		if c.Before(widx, j) {
			return false, Violation{
				Read: i, Op: o, Stale: w2.ID,
				Reason: fmt.Sprintf("value from %v was overwritten by %v before the read", o.From, w2),
			}
		}
	}
	return true, Violation{}
}

// CheckCausallyConsistent checks Definition 2: every read in the history
// is legal. It returns all violations found (nil means the history is
// causally consistent).
func (c *Causality) CheckCausallyConsistent() []Violation {
	var vs []Violation
	for i, o := range c.h.ops {
		if !o.IsRead() {
			continue
		}
		if ok, v := c.LegalRead(i); !ok {
			vs = append(vs, v)
		}
	}
	return vs
}

// IsCausallyConsistent reports Definition 2 as a single boolean.
func (c *Causality) IsCausallyConsistent() bool {
	return len(c.CheckCausallyConsistent()) == 0
}
