package transport

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

func clockUpd(p, seq int, c vclock.VC) protocol.Update {
	return protocol.Update{ID: history.WriteID{Proc: p, Seq: seq}, Var: 1, Val: int64(seq), Clock: c}
}

func TestCodecDeliversEqualUpdates(t *testing.T) {
	for _, mode := range []protocol.MetaMode{protocol.MetaDelta, protocol.MetaStab, protocol.MetaAuto} {
		inner, err := New(Config{Procs: 3, FIFO: true})
		if err != nil {
			t.Fatal(err)
		}
		c := WithCodec(inner, 3, mode)
		var mu sync.Mutex
		got := make(map[int][]protocol.Update)
		for p := 0; p < 3; p++ {
			p := p
			c.Register(p, func(m Message) {
				mu.Lock()
				got[p] = append(got[p], m.Update)
				mu.Unlock()
			})
		}
		clock := vclock.New(3)
		var sent []protocol.Update
		for i := 0; i < 50; i++ {
			clock[i%3]++
			u := clockUpd(0, i+1, clock.Clone())
			sent = append(sent, u)
			c.SendAll(0, u)
		}
		c.Flush()
		mu.Lock()
		for _, p := range []int{1, 2} {
			if len(got[p]) != len(sent) {
				t.Fatalf("mode %v: p%d got %d of %d", mode, p, len(got[p]), len(sent))
			}
			for i, u := range got[p] {
				w := sent[i]
				if u.ID != w.ID || u.Val != w.Val || !u.Clock.Equal(w.Clock) {
					t.Fatalf("mode %v: p%d msg %d: %+v != %+v", mode, p, i, u, w)
				}
			}
		}
		mu.Unlock()
		st := c.Stats()
		if st.Frames != 100 || st.MetaBytes == 0 || st.PayloadBytes == 0 {
			t.Fatalf("mode %v: stats %+v", mode, st)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCodecBypassesControlFrames(t *testing.T) {
	inner, err := New(Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := WithCodec(inner, 2, protocol.MetaDelta)
	var mu sync.Mutex
	var beats int
	c.Register(0, func(Message) {})
	c.Register(1, func(m Message) {
		if m.Heartbeat {
			mu.Lock()
			beats++
			mu.Unlock()
		}
	})
	for i := 0; i < 5; i++ {
		c.Send(Message{From: 0, To: 1, Heartbeat: true})
	}
	c.Flush()
	mu.Lock()
	if beats != 5 {
		t.Fatalf("delivered %d heartbeats", beats)
	}
	mu.Unlock()
	if st := c.Stats(); st.Frames != 0 {
		t.Fatalf("control frames were recoded: %+v", st)
	}
	c.Close()
}

func TestCodecDeltaShrinksSteadyState(t *testing.T) {
	// The wrapper's accounting must show the headline win: per-link
	// deltas collapse the O(P) clock to a few bytes once the link base
	// is warm.
	const procs = 16
	runBytes := func(mode protocol.MetaMode) uint64 {
		inner, err := New(Config{Procs: procs, FIFO: true})
		if err != nil {
			t.Fatal(err)
		}
		c := WithCodec(inner, procs, mode)
		for p := 0; p < procs; p++ {
			c.Register(p, func(Message) {})
		}
		clock := vclock.New(procs)
		for i := 0; i < 200; i++ {
			clock[0]++
			c.SendAll(0, clockUpd(0, i+1, clock.Clone()))
		}
		c.Flush()
		st := c.Stats()
		c.Close()
		return st.MetaBytes
	}
	off := runBytes(protocol.MetaOff)
	delta := runBytes(protocol.MetaDelta)
	if delta*2 >= off {
		t.Fatalf("delta meta bytes %d not < half of off %d", delta, off)
	}
}

func TestCodecRegisterMetricsScrape(t *testing.T) {
	inner, err := New(Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := WithCodec(inner, 2, protocol.MetaAuto)
	c.Register(0, func(Message) {})
	c.Register(1, func(Message) {})
	c.Send(Message{From: 0, To: 1, Update: clockUpd(0, 1, vclock.VC{1, 0})})
	c.Flush()

	reg := obs.NewRegistry()
	c.RegisterMetrics(reg, obs.L("protocol", "optp"))
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dsm_net_meta_bytes_total counter",
		"# TYPE dsm_net_payload_bytes_total counter",
		"dsm_net_frames_total",
		`codec="auto"`,
		`protocol="optp"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape output missing %q:\n%s", want, out)
		}
	}
	c.Close()
}

func TestTCPMetaRoundTrip(t *testing.T) {
	// The codec on real sockets: per-connection encoder/decoder pairs
	// must reproduce the update stream over loopback TCP.
	for _, mode := range []protocol.MetaMode{protocol.MetaOff, protocol.MetaDelta, protocol.MetaAuto} {
		tn, err := NewTCPMeta(3, mode)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got []protocol.Update
		done := make(chan struct{})
		tn.Register(0, func(Message) {})
		tn.Register(2, func(Message) {})
		tn.Register(1, func(m Message) {
			mu.Lock()
			got = append(got, m.Update)
			if len(got) == 30 {
				close(done)
			}
			mu.Unlock()
		})
		clock := vclock.New(3)
		var sent []protocol.Update
		for i := 0; i < 30; i++ {
			clock[0]++
			u := clockUpd(0, i+1, clock.Clone())
			sent = append(sent, u)
			tn.Send(Message{From: 0, To: 1, Update: u})
		}
		<-done
		mu.Lock()
		for i, u := range got {
			w := sent[i]
			if u.ID != w.ID || u.Val != w.Val || !u.Clock.Equal(w.Clock) {
				t.Fatalf("mode %v: msg %d: %+v != %+v", mode, i, u, w)
			}
		}
		mu.Unlock()
		if st := tn.Stats(); st.Frames != 30 || st.MetaBytes == 0 {
			t.Fatalf("mode %v: stats %+v", mode, st)
		}
		if err := tn.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
