// Collabdoc: collaborative editing of a sectioned document — the
// "decoupled in time, space and flow" scenario of the paper's
// data-centric motivation.
//
// Each editor owns one section it revises repeatedly; before revising,
// it reads the section it depends on (editor 2 cites section 1, editor
// 3 cites section 2, ...). Causal memory guarantees every replica sees
// a citation only together with (or after) the cited revision, while
// still letting unrelated revisions propagate concurrently — the
// low-latency advantage over sequential consistency the paper stresses.
//
// The example also contrasts the delay behaviour of OptP and ANBKH on
// exactly the same edit pattern.
//
// Run with: go run ./examples/collabdoc
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/protocol"
)

const (
	editors   = 3
	revisions = 6
)

// runEdit drives the editing session on a cluster of the given
// protocol and returns the audited report plus the delay count.
func runEdit(kind protocol.Kind) (delays int, unnecessary int, err error) {
	cluster, err := core.NewCluster(core.Config{
		Processes: editors,
		Variables: editors, // one variable per document section
		Protocol:  kind,
		MaxDelay:  2 * time.Millisecond,
		Seed:      99,
	})
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	for e := 0; e < editors; e++ {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := cluster.Node(e)
			upstream := (e + editors - 1) % editors
			for r := 1; r <= revisions; r++ {
				// Read the upstream section we cite (may be an older
				// revision — causal, not atomic, consistency).
				if _, err := node.Read(upstream); err != nil {
					log.Fatal(err)
				}
				// Publish our revision r of section e.
				if err := node.Write(e, int64(e*100+r)); err != nil {
					log.Fatal(err)
				}
				time.Sleep(300 * time.Microsecond)
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cluster.Quiesce(ctx); err != nil {
		return 0, 0, err
	}
	report, err := checker.Audit(cluster.Log())
	if err != nil {
		return 0, 0, err
	}
	if !report.Safe() || !report.CausallyConsistent() {
		return 0, 0, fmt.Errorf("%v: consistency audit failed", kind)
	}

	fmt.Printf("%s final document at editor 1:", kind)
	for s := 0; s < editors; s++ {
		v, _ := cluster.Node(0).Read(s)
		fmt.Printf(" section%d=rev%d", s+1, v%100)
	}
	fmt.Println()
	return len(report.Delays), report.UnnecessaryDelays, nil
}

func main() {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
		delays, unnecessary, err := runEdit(kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s buffered %d updates (%d unnecessarily)\n\n", kind, delays, unnecessary)
	}
	fmt.Println("OptP never buffers an update unnecessarily (Theorem 4);")
	fmt.Println("ANBKH may, whenever an applied-but-unread revision creates false causality.")
}
