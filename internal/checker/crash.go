package checker

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/trace"
)

// CrashViolation reports a protocol-level event recorded at a process
// while it was crash-stopped — evidence that the crash model leaked: a
// down process must neither issue, propagate, receive, apply, discard
// nor read anything until its Recover event.
type CrashViolation struct {
	Proc  int
	Kind  trace.EventKind
	Write history.WriteID
}

// String implements fmt.Stringer.
func (v CrashViolation) String() string {
	return fmt.Sprintf("p%d recorded %v of %v while down", v.Proc+1, v.Kind, v.Write)
}

// CrashConsistent reports that the crash model held: no protocol
// activity at down processes, and no process recovered without having
// crashed.
func (r *Report) CrashConsistent() bool { return len(r.CrashViolations) == 0 }

// auditCrashes walks the trace maintaining the down-set and flags every
// protocol-level event attributed to a down process. Transport-level
// events (NetDrop, Retransmit, DupDiscard, Suspect, Alive) are exempt:
// the network keeps running while a process is down, and a duplicate
// frame can still die at a down receiver's dedup layer.
func (r *Report) auditCrashes(log *trace.Log) {
	down := make([]bool, log.NumProcs)
	for _, e := range log.Events {
		switch e.Kind {
		case trace.Crash:
			if down[e.Proc] {
				r.CrashViolations = append(r.CrashViolations, CrashViolation{Proc: e.Proc, Kind: e.Kind})
			}
			down[e.Proc] = true
			r.Crashes++
		case trace.Recover:
			if !down[e.Proc] {
				r.CrashViolations = append(r.CrashViolations, CrashViolation{Proc: e.Proc, Kind: e.Kind})
			}
			down[e.Proc] = false
			r.Recoveries++
		case trace.Issue, trace.Send, trace.Receipt, trace.Apply,
			trace.Discard, trace.Drop, trace.Return, trace.Token:
			if down[e.Proc] {
				r.CrashViolations = append(r.CrashViolations, CrashViolation{
					Proc: e.Proc, Kind: e.Kind, Write: e.Write,
				})
			}
		}
	}
}
