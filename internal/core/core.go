// Package core is the public entry point of the library: a live,
// goroutine-hosted causally consistent distributed shared memory.
//
// A Cluster hosts n processes, each owning a full replica of the m
// shared variables and running one of the implemented protocols
// (OptP — the paper's write-delay-optimal protocol — by default).
// Writes are wait-free: they apply locally and broadcast asynchronously
// over the transport; reads are local and wait-free. The cluster
// records a full event trace that the checker package can audit for
// safety, causal consistency, liveness and write-delay optimality.
//
// Basic use:
//
//	c, err := core.NewCluster(core.Config{Processes: 3, Variables: 4})
//	...
//	c.Node(0).Write(1, 42)
//	v, _ := c.Node(2).Read(1)
//	c.Quiesce(ctx) // wait for every write to reach every replica
//	c.Close()
package core

import (
	"fmt"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// Config parameterizes a Cluster.
type Config struct {
	// Processes is the number of replicated processes (n ≥ 1).
	Processes int
	// Variables is the number of shared memory locations (m ≥ 1).
	Variables int
	// Protocol selects the consistency protocol; the zero value is
	// OptP, the paper's optimal protocol.
	Protocol protocol.Kind

	// MinDelay and MaxDelay bound the artificial per-message network
	// delay of the built-in transport. Zero means immediate delivery.
	MinDelay, MaxDelay time.Duration
	// FIFO makes the built-in transport preserve per-link send order.
	FIFO bool
	// Seed drives the built-in transport's delay sampling.
	Seed int64

	// Chaos configures fault injection (message loss, duplication,
	// reorder bursts, timed link partitions) on the built-in transport.
	// When any fault is enabled the cluster assembles the full chaos
	// stack — jittered links under fault injection under the
	// reliability sublayer — so protocol replicas still observe
	// exactly-once delivery, and the trace gains NetDrop / Retransmit /
	// DupDiscard events. Ignored when Transport is set.
	Chaos transport.ChaosConfig
	// RetransmitTimeout is the reliability sublayer's initial ack
	// deadline; 0 defaults to 2×MaxDelay + 1ms — comfortably above the
	// data+ack round trip, so a fault-free frame is rarely re-sent.
	// Only meaningful with Chaos enabled.
	RetransmitTimeout time.Duration
	// BackoffMax caps the sublayer's exponential retransmission backoff
	// (0 defaults to 20× RetransmitTimeout).
	BackoffMax time.Duration

	// Transport optionally replaces the built-in transport. The Cluster
	// takes ownership and closes it.
	Transport transport.Transport

	// TokenInterval is the wall-clock period of token circulation for
	// token-based protocols (WS-send); 0 defaults to 1ms.
	TokenInterval time.Duration
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Processes < 1 {
		return fmt.Errorf("core: Processes = %d", c.Processes)
	}
	if c.Variables < 1 {
		return fmt.Errorf("core: Variables = %d", c.Variables)
	}
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("core: delay range [%v, %v]", c.MinDelay, c.MaxDelay)
	}
	if c.TokenInterval < 0 {
		return fmt.Errorf("core: TokenInterval = %v", c.TokenInterval)
	}
	if err := c.Chaos.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.RetransmitTimeout < 0 || c.BackoffMax < 0 {
		return fmt.Errorf("core: retransmit timing (%v, %v)", c.RetransmitTimeout, c.BackoffMax)
	}
	return nil
}
