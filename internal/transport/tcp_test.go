package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

func TestTCPBasicDelivery(t *testing.T) {
	n, err := NewTCP(3)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[int][]Message{}
	done := make(chan struct{}, 16)
	for p := 0; p < 3; p++ {
		p := p
		n.Register(p, func(m Message) {
			mu.Lock()
			got[p] = append(got[p], m)
			mu.Unlock()
			done <- struct{}{}
		})
	}
	u := protocol.Update{
		ID:  history.WriteID{Proc: 0, Seq: 1},
		Var: 2, Val: 77,
		Clock: vclock.VC{1, 0, 0},
		Prev:  history.WriteID{Proc: 2, Seq: 9},
	}
	Broadcast(n, 3, 0, u)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("timeout waiting for delivery")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got[0]) != 0 || len(got[1]) != 1 || len(got[2]) != 1 {
		t.Fatalf("deliveries: %v", got)
	}
	m := got[1][0]
	if m.From != 0 || m.To != 1 {
		t.Fatalf("route = %d->%d", m.From, m.To)
	}
	if m.Update.ID != u.ID || m.Update.Val != 77 || !m.Update.Clock.Equal(u.Clock) || m.Update.Prev != u.Prev {
		t.Fatalf("update mangled: %+v", m.Update)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPPerLinkFIFO(t *testing.T) {
	n, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 300
	var mu sync.Mutex
	var seqs []int
	all := make(chan struct{})
	n.Register(0, func(Message) {})
	n.Register(1, func(m Message) {
		mu.Lock()
		seqs = append(seqs, m.Update.ID.Seq)
		if len(seqs) == msgs {
			close(all)
		}
		mu.Unlock()
	})
	for i := 1; i <= msgs; i++ {
		n.Send(Message{From: 0, To: 1, Update: protocol.Update{ID: history.WriteID{Proc: 0, Seq: i}}})
	}
	select {
	case <-all:
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout: got %d of %d", len(seqs), msgs)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("TCP reordered at %d: %v", i, seqs[max(0, i-3):i+1])
		}
	}
	n.Close()
}

func TestTCPConcurrentSenders(t *testing.T) {
	n, err := NewTCP(4)
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	want := int64(4 * 50 * 3)
	all := make(chan struct{})
	for p := 0; p < 4; p++ {
		n.Register(p, func(Message) {
			if atomic.AddInt64(&count, 1) == want {
				close(all)
			}
		})
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				Broadcast(n, 4, p, protocol.Update{ID: history.WriteID{Proc: p, Seq: i}})
			}
		}()
	}
	wg.Wait()
	select {
	case <-all:
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout: %d of %d", atomic.LoadInt64(&count), want)
	}
	n.Close()
}

func TestTCPValidation(t *testing.T) {
	if _, err := NewTCP(0); err == nil {
		t.Error("accepted 0 procs")
	}
	if _, err := NewTCP(300); err == nil {
		t.Error("accepted 300 procs")
	}
	n, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Addr(0) == "" || n.Addr(1) == "" {
		t.Error("empty addr")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self-send accepted")
			}
		}()
		n.Send(Message{From: 0, To: 0})
	}()
	n.Close()
	if err := n.Close(); err != ErrClosed {
		t.Errorf("double close = %v", err)
	}
	// Send after close is a no-op.
	n.Send(Message{From: 0, To: 1})
}

// The whole point: a live cluster running over real TCP sockets stays
// causally consistent and write-delay optimal. Uses the core package
// via an interface value, wired in the test for core (see
// core/tcp_test.go); here we only exercise raw transport mechanics.
func TestTCPFlush(t *testing.T) {
	n, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	n.Register(0, func(Message) {})
	n.Register(1, func(Message) { atomic.AddInt64(&count, 1) })
	for i := 1; i <= 20; i++ {
		n.Send(Message{From: 0, To: 1, Update: protocol.Update{ID: history.WriteID{Proc: 0, Seq: i}}})
	}
	n.Flush() // sender-side flush
	// Receiver-side delivery is async over the socket; poll briefly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for atomic.LoadInt64(&count) < 20 {
		if ctx.Err() != nil {
			t.Fatalf("only %d delivered", count)
		}
		time.Sleep(time.Millisecond)
	}
	n.Close()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
