package protocol

import "repro/internal/vclock"

// FrontierDominator is implemented by replicas that can answer
// applied-frontier dominance queries in place, without the copy
// Introspector.ApplyClock makes. The serving tier polls this on every
// token-carrying read, so the query must stay allocation-free.
//
// The frontier converges across replicas for every kind except
// WSSend, whose sender-suppressed writes tick only the local apply
// counter — a remote frontier can never dominate a token that counts
// them, which is why the serving tier refuses WSSend clusters.
type FrontierDominator interface {
	// FrontierDominates reports whether the replica's applied frontier
	// dominates t component-wise. t must have the replica's dimension.
	FrontierDominates(t vclock.VC) bool
}

// FrontierDominates implements FrontierDominator. optpws inherits it
// by embedding: the skip path still ticks apply for the skipped write.
func (r *optp) FrontierDominates(t vclock.VC) bool { return r.apply.Dominates(t) }

// FrontierDominates implements FrontierDominator; ANBKH's FM apply
// clock is its frontier.
func (r *anbkh) FrontierDominates(t vclock.VC) bool { return r.vt.Dominates(t) }

// FrontierDominates implements FrontierDominator; discarded
// (logically applied) writes count, matching ApplyClock.
func (r *wsrecv) FrontierDominates(t vclock.VC) bool { return r.vt.Dominates(t) }

// FrontierDominates implements FrontierDominator. Note the WSSend
// caveat on the interface: suppressed writes make this frontier
// non-convergent across replicas.
func (r *wssend) FrontierDominates(t vclock.VC) bool { return r.applied.Dominates(t) }
