package checker

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/trace"
)

// AuditReference is the original small-trace audit: dense-bitset →co
// closure, O(W²) pairwise safety loop per process, and per-delay
// WritesBefore scans, all serial. It is kept verbatim as the oracle the
// equivalence property tests pin Audit against, and costs O(ops²)
// memory and worse time — use Audit for anything beyond a few tens of
// thousands of operations.
//
// On violation-free runs (every run a correct protocol can produce) the
// two audits return identical Reports. On runs with safety violations
// both report Safe() == false for the same processes, but the reference
// enumerates every inverted →co pair while Audit reports one witness
// per covering edge or frontier gap.
func AuditReference(log *trace.Log) (*Report, error) {
	h, err := log.History()
	if err != nil {
		return nil, fmt.Errorf("checker: reconstructing history: %w", err)
	}
	c, err := h.DenseCausality()
	if err != nil {
		return nil, fmt.Errorf("checker: computing →co: %w", err)
	}
	r := &Report{History: h, Causality: c, Discards: log.DiscardCount()}

	r.LegalityViolations = c.CheckCausallyConsistent()
	r.auditAppliesReference(log)
	r.classifyDelaysReference(log)
	r.auditShareSets(log)
	r.auditCrashes(log)
	return r, nil
}

// auditAppliesReference is the original pairwise safety and liveness
// check.
func (r *Report) auditAppliesReference(log *trace.Log) {
	ids, wvars := historyWriteVars(r.History)

	discarded := make(map[int]map[history.WriteID]bool)
	for p := 0; p < log.NumProcs; p++ {
		discarded[p] = make(map[history.WriteID]bool)
	}
	for _, e := range log.Events {
		if e.Kind == trace.Discard {
			discarded[e.Proc][e.Write] = true
		}
	}

	for p := 0; p < log.NumProcs; p++ {
		order := log.LogicallyAppliedAt(p)
		pos := make(map[history.WriteID]int, len(order))
		times := make(map[history.WriteID]int, len(order))
		for i, id := range order {
			if pos[id] == 0 {
				pos[id] = i + 1 // 1-based; 0 means absent
			}
			times[id]++
		}
		for i, id := range ids {
			if pos[id] == 0 {
				if log.Replicated(p, wvars[i]) {
					r.NotApplied = append(r.NotApplied, MissingApply{Proc: p, Write: id})
				}
			} else if discarded[p][id] {
				r.NotApplied = append(r.NotApplied, MissingApply{Proc: p, Write: id, Logical: true})
			}
			if times[id] > 1 {
				r.DuplicateApplies = append(r.DuplicateApplies, DuplicateApply{Proc: p, Write: id, Times: times[id]})
			}
		}
		// Safety is about relative order: two →co-ordered writes both
		// applied at p must be applied in →co order. A missing apply is
		// a liveness hole, reported above via NotApplied, not a safety
		// violation (WS-send legitimately never propagates suppressed
		// writes, yet applies every propagated pair in order).
		for i, a := range ids {
			for j, b := range ids {
				if i == j || !r.Causality.WriteBefore(a, b) {
					continue
				}
				pa, pb := pos[a], pos[b]
				if pa != 0 && pb != 0 && pa > pb {
					r.SafetyViolations = append(r.SafetyViolations, SafetyViolation{Proc: p, First: a, Second: b})
				}
			}
		}
	}
}

// classifyDelaysReference is the original single-pass classifier: one
// applied-set map per process, and a WritesBefore scan per buffered
// receipt.
func (r *Report) classifyDelaysReference(log *trace.Log) {
	resolved := make(map[delayKey]trace.Delay)
	for _, d := range log.Delays() {
		resolved[delayKey{d.Proc, d.Write}] = d
	}

	applied := make([]map[history.WriteID]bool, log.NumProcs)
	for p := range applied {
		applied[p] = make(map[history.WriteID]bool)
	}
	if log.ShareSets != nil {
		// Writes not addressed to p never apply there, so their absence
		// can never make a delay necessary: seed them as applied.
		ids, wvars := historyWriteVars(r.History)
		for p := range applied {
			for i, id := range ids {
				if !log.Replicated(p, wvars[i]) {
					applied[p][id] = true
				}
			}
		}
	}
	for _, e := range log.Events {
		switch e.Kind {
		case trace.Issue, trace.Apply, trace.Discard:
			applied[e.Proc][e.Write] = true
		case trace.Receipt:
			if !e.Buffered {
				continue
			}
			cd := ClassifiedDelay{}
			if d, ok := resolved[delayKey{e.Proc, e.Write}]; ok {
				cd.Delay = d
			} else {
				cd.Delay = trace.Delay{Proc: e.Proc, Write: e.Write, ReceiptAt: e.Time, AppliedAt: e.Time}
			}
			widx := r.History.WriteIndex(e.Write)
			if widx >= 0 {
				for _, prior := range r.Causality.WritesBefore(widx) {
					if !applied[e.Proc][prior] {
						cd.Necessary = true
						cd.MissingWrite = prior
						break
					}
				}
			}
			if cd.Necessary {
				r.NecessaryDelays++
			} else {
				r.UnnecessaryDelays++
			}
			r.Delays = append(r.Delays, cd)
		}
	}
}
