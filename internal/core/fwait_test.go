package core

import (
	"testing"
	"time"

	"repro/internal/vclock"
)

// A frontier wait is: check, register, re-check, park; the apply path
// must wake a waiter whose token it satisfied.
func TestFrontierWaitWakesOnRemoteApply(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	if err := c.Node(0).Write(0, 7); err != nil {
		t.Fatalf("Write: %v", err)
	}
	tok := c.Node(0).Frontier()
	n1 := c.Node(1)
	deadline := time.After(10 * time.Second)
	for !n1.FrontierDominates(tok) {
		ch, cancel := n1.FrontierWait(tok)
		if n1.FrontierDominates(tok) { // register/check race guard
			cancel()
			break
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("frontier never reached %v (at %v)", tok, n1.Frontier())
		}
		cancel()
	}
}

// A local write must wake waiters on the writing node itself: its own
// frontier advanced.
func TestFrontierWaitWakesOnLocalWrite(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	n0 := c.Node(0)
	ch, cancel := n0.FrontierWait(vclock.VC{1, 0})
	defer cancel()
	if err := n0.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("local write did not wake the frontier waiter")
	}
}

// A waiter whose token the frontier does NOT yet dominate must stay
// parked — wake-ups are predicate-filtered, not broadcast.
func TestFrontierWaitUnsatisfiedStaysParked(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	n0 := c.Node(0)
	// Component 1 counts p1's writes; p0 writing can never satisfy it.
	ch, cancel := n0.FrontierWait(vclock.VC{0, 1 << 40})
	defer cancel()
	for i := 0; i < 10; i++ {
		if err := n0.Write(0, int64(i)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	select {
	case <-ch:
		t.Fatal("unsatisfiable waiter was woken by local writes")
	default:
	}
}

// Crash must wake waiters so they can observe Down instead of sleeping
// out their deadline.
func TestFrontierWaitWakesOnCrash(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCluster(Config{Processes: 2, Variables: 1, WALDir: dir})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ch, cancel := c.Node(1).FrontierWait(vclock.VC{1 << 40, 0})
	defer cancel()
	if err := c.Crash(1); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("crash did not wake the frontier waiter")
	}
}

// cancel unparks bookkeeping: after the last waiter cancels, the apply
// path is back to its armed-flag fast path and a stale wake never
// fires.
func TestFrontierWaitCancel(t *testing.T) {
	c, err := NewCluster(Config{Processes: 2, Variables: 1})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	n0 := c.Node(0)
	ch, cancel := n0.FrontierWait(vclock.VC{1, 0})
	cancel()
	if n0.fw.armed.Load() {
		t.Fatal("waiter set still armed after the last cancel")
	}
	if err := n0.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	select {
	case <-ch:
		t.Fatal("cancelled waiter was woken")
	default:
	}
}
