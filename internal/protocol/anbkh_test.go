package protocol

import (
	"testing"

	"repro/internal/vclock"
)

// TestANBKHFigure3Run replays the ANBKH run of Figure 3:
//
//	p1: w1(x1)a then w1(x1)c.
//	p2: applies a, applies c, then writes w2(x2)b — the message clock
//	    absorbs BOTH applies, so b's timestamp is [2,1,0].
//	p3: receives b first (blocked), then a (applied; b STILL blocked —
//	    the false-causality delay), then c (applied), then b applies.
//
// Contrast with OptP's Figure 6 run in optp_test.go where b applies
// right after a.
func TestANBKHFigure3Run(t *testing.T) {
	p1 := NewANBKH(0, 3, 2).(*anbkh)
	p2 := NewANBKH(1, 3, 2).(*anbkh)
	p3 := NewANBKH(2, 3, 2).(*anbkh)

	ua, bc := p1.LocalWrite(0, 1)
	if !bc {
		t.Fatal("ANBKH must broadcast")
	}
	uc, _ := p1.LocalWrite(0, 3)
	if !ua.Clock.Equal(vclock.VC{1, 0, 0}) || !uc.Clock.Equal(vclock.VC{2, 0, 0}) {
		t.Fatalf("p1 clocks = %v, %v", ua.Clock, uc.Clock)
	}

	p2.Apply(ua)
	if v, id := p2.Read(0); v != 1 || id != ua.ID {
		t.Fatalf("p2 read = %d from %v", v, id)
	}
	p2.Apply(uc)
	ub, _ := p2.LocalWrite(1, 2)
	if !ub.Clock.Equal(vclock.VC{2, 1, 0}) {
		t.Fatalf("w2(x2)b clock = %v, want [2 1 0] (absorbs both applies)", ub.Clock)
	}

	// p3, arrival order b, a, c.
	if p3.Status(ub) != Blocked {
		t.Fatal("b deliverable with empty state")
	}
	p3.Apply(ua)
	if p3.Status(ub) != Blocked {
		t.Fatal("b deliverable after a only — ANBKH should exhibit the false-causality block on c")
	}
	p3.Apply(uc)
	if p3.Status(ub) != Deliverable {
		t.Fatalf("b not deliverable after a and c: %v", p3.Status(ub))
	}
	p3.Apply(ub)
	if !p3.ApplyClock().Equal(vclock.VC{2, 1, 0}) {
		t.Fatalf("p3 clock = %v", p3.ApplyClock())
	}
	if v, id := p3.Value(1); v != 2 || id != ub.ID {
		t.Fatalf("p3 x2 = %d from %v", v, id)
	}
}

// Even when the unread write was applied before the dependent write was
// issued at its sender (as in Fig. 3), OptP does not require it — the
// same scenario run against OptP is the content of TestOptPFigure6Run.
// Here we check ANBKH requires it even when p2 never read c.
func TestANBKHFalseCausalityWithoutRead(t *testing.T) {
	p1 := NewANBKH(0, 3, 2).(*anbkh)
	p2 := NewANBKH(1, 3, 2).(*anbkh)
	p3 := NewANBKH(2, 3, 2).(*anbkh)
	ua, _ := p1.LocalWrite(0, 1)
	uc, _ := p1.LocalWrite(0, 3)
	p2.Apply(ua)
	p2.Apply(uc) // never read
	ub, _ := p2.LocalWrite(1, 2)
	p3.Apply(ua)
	if p3.Status(ub) != Blocked {
		t.Fatal("ANBKH must block on the applied-but-unread write (false causality)")
	}
	_ = ub
}

func TestANBKHSenderFIFO(t *testing.T) {
	p1 := NewANBKH(0, 2, 1).(*anbkh)
	p2 := NewANBKH(1, 2, 1).(*anbkh)
	u1, _ := p1.LocalWrite(0, 1)
	u2, _ := p1.LocalWrite(0, 2)
	if p2.Status(u2) != Blocked {
		t.Fatal("gap not detected")
	}
	p2.Apply(u1)
	p2.Apply(u2)
	if v, _ := p2.Read(0); v != 2 {
		t.Fatalf("read = %d", v)
	}
}

func TestANBKHApplyPanicsWhenBlocked(t *testing.T) {
	p1 := NewANBKH(0, 2, 1).(*anbkh)
	p2 := NewANBKH(1, 2, 1).(*anbkh)
	p1.LocalWrite(0, 1)
	u2, _ := p1.LocalWrite(0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p2.Apply(u2)
}

func TestANBKHDiscardPanics(t *testing.T) {
	p := NewANBKH(0, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Discard(Update{})
}

func TestANBKHReadIsPassive(t *testing.T) {
	p1 := NewANBKH(0, 2, 1).(*anbkh)
	p2 := NewANBKH(1, 2, 1).(*anbkh)
	u, _ := p1.LocalWrite(0, 5)
	p2.Apply(u)
	before := p2.ControlClock()
	p2.Read(0)
	if !p2.ControlClock().Equal(before) {
		t.Fatal("ANBKH read mutated the clock")
	}
}
