package protocol

import (
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/vclock"
)

// wssend implements sender-side writing semantics in the style of
// Jiménez–Fernández–Cholvi [7] (Section 3.6): a token circulates
// p_0 → p_1 → … → p_{n-1} → p_0 → …; a process buffers its writes
// locally and, when it holds the token, broadcasts only the *last*
// write per variable it performed since its previous turn. Earlier
// writes to the same variable are overwritten at the sender and never
// propagated — which is exactly why the paper places this protocol
// outside the class 𝒫 (some writes are never applied at other
// processes; audited in experiment E7).
//
// Delivery order is the token total order: the k-th token *visit*
// (visit v is round v/n at holder v mod n) produces one batch —
// possibly an empty marker — and every replica applies batches in visit
// order, updates within a batch in slot order. Token order makes every
// batch causally self-contained, so the only write delays are
// batch-vs-batch network reorderings.
type wssend struct {
	id int
	n  int

	vals    []int64
	writers []history.WriteID

	// pending maps variable → last unsent local write.
	pending map[int]Update
	// issued counts own writes (WriteID sequencing).
	issued int
	// suppressed counts own writes overwritten before ever being sent.
	suppressed int

	// expectedVisit and nextSlot drive in-order batch application.
	expectedVisit int
	nextSlot      int
	// selfVisits marks visit numbers consumed locally (own token turns,
	// whose batches are not echoed to self).
	selfVisits map[int]bool

	// applied counts, per process, writes applied here (incl. own).
	applied vclock.VC
}

// NewWSSend returns a sender-side writing-semantics replica.
func NewWSSend(p, n, m int) Replica {
	return &wssend{
		id:         p,
		n:          n,
		vals:       make([]int64, m),
		writers:    make([]history.WriteID, m),
		pending:    make(map[int]Update),
		selfVisits: make(map[int]bool),
		applied:    vclock.New(n),
	}
}

func (r *wssend) ProcID() int { return r.id }
func (r *wssend) Kind() Kind  { return WSSend }

// LocalWrite applies locally and queues the update for the next token
// turn; broadcast is deferred (false).
func (r *wssend) LocalWrite(x int, v int64) (Update, bool) {
	r.issued++
	u := Update{
		ID:   history.WriteID{Proc: r.id, Seq: r.issued},
		Var:  x,
		Val:  v,
		Prev: r.writers[x],
	}
	r.vals[x] = v
	r.writers[x] = u.ID
	r.applied.Tick(r.id)
	if _, overwriting := r.pending[x]; overwriting {
		r.suppressed++
	}
	r.pending[x] = u
	return u, false
}

// Read is wait-free.
func (r *wssend) Read(x int) (int64, history.WriteID) {
	return r.vals[x], r.writers[x]
}

// OnToken implements TokenBatcher: it drains the pending set into a
// batch for the given visit, ordered by issue sequence — surviving
// writes must apply in the issuer's process order (→po ⊂ →co) — and
// consumes the visit locally. An empty slice instructs the engine to
// broadcast a marker.
func (r *wssend) OnToken(visit int) []Update {
	batch := make([]Update, 0, len(r.pending))
	for _, u := range r.pending {
		batch = append(batch, u)
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].ID.Seq < batch[j].ID.Seq })
	for slot := range batch {
		batch[slot].Round = visit
		batch[slot].Slot = slot
		batch[slot].BatchSize = len(batch)
	}
	r.pending = make(map[int]Update)
	r.selfVisits[visit] = true
	r.advance()
	return batch
}

// Marker builds the empty-batch announcement for a visit; engines
// broadcast it when OnToken returns no updates. The negative Seq keeps
// marker IDs unique per visit and disjoint from real WriteIDs.
func Marker(holder, visit int) Update {
	return Update{
		ID:     history.WriteID{Proc: holder, Seq: -(visit + 1)},
		Marker: true,
		Var:    -1,
		Round:  visit,
		Slot:   -1,
	}
}

// advance consumes locally-produced visits so expectedVisit always
// points at the next batch this replica actually awaits.
func (r *wssend) advance() {
	for r.nextSlot == 0 && r.selfVisits[r.expectedVisit] {
		delete(r.selfVisits, r.expectedVisit)
		r.expectedVisit++
	}
}

// Status admits exactly the next (visit, slot) in token order.
func (r *wssend) Status(u Update) Deliverability {
	if u.Round != r.expectedVisit {
		return Blocked
	}
	if u.Marker {
		if r.nextSlot == 0 {
			return Deliverable
		}
		return Blocked
	}
	if u.Slot == r.nextSlot {
		return Deliverable
	}
	return Blocked
}

// Apply installs the update (markers only advance the cursor).
func (r *wssend) Apply(u Update) {
	if r.Status(u) != Deliverable {
		panic(fmt.Sprintf("wssend: Apply of %v while blocked (visit=%d slot=%d)", u, r.expectedVisit, r.nextSlot))
	}
	if u.Marker {
		r.expectedVisit++
		r.advance()
		return
	}
	r.vals[u.Var] = u.Val
	r.writers[u.Var] = u.ID
	r.applied.Tick(u.From())
	r.nextSlot++
	if r.nextSlot >= u.BatchSize {
		r.nextSlot = 0
		r.expectedVisit++
		r.advance()
	}
}

// Discard is never produced by Status for WSSend.
func (r *wssend) Discard(u Update) {
	panic(fmt.Sprintf("wssend: Discard(%v) unsupported", u))
}

// PendingWrites returns the number of local writes awaiting the token.
func (r *wssend) PendingWrites() int { return len(r.pending) }

// Suppressed returns how many own writes were overwritten locally and
// will never be propagated.
func (r *wssend) Suppressed() int { return r.suppressed }

// ControlClock implements Introspector: component 0 is the next awaited
// visit (a scalar cursor, not a vector clock).
func (r *wssend) ControlClock() vclock.VC {
	vc := vclock.New(r.n)
	vc.Set(0, uint64(r.expectedVisit))
	return vc
}

// ApplyClock implements Introspector.
func (r *wssend) ApplyClock() vclock.VC { return r.applied.Clone() }

// Value implements Introspector.
func (r *wssend) Value(x int) (int64, history.WriteID) { return r.vals[x], r.writers[x] }
