package obs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/trace"
)

// kindFamilies names the counter family for every trace event kind.
// The obs tests assert the table is exhaustive against trace.NumKinds.
var kindFamilies = [trace.NumKinds]struct{ name, help string }{
	trace.Issue:      {"dsm_writes_total", "writes issued (w_p(x)v operations)"},
	trace.Send:       {"dsm_sends_total", "update broadcasts entering the transport"},
	trace.Receipt:    {"dsm_receipts_total", "protocol updates received (delayed or not)"},
	trace.Apply:      {"dsm_applies_total", "remote updates applied to the replica"},
	trace.Discard:    {"dsm_discards_total", "writing-semantics logical applies of skipped writes"},
	trace.Drop:       {"dsm_drops_total", "late messages of skipped writes dropped"},
	trace.Return:     {"dsm_reads_total", "reads returned (r_p(x) operations)"},
	trace.Token:      {"dsm_tokens_total", "token events at WS-send style protocols"},
	trace.NetDrop:    {"dsm_net_drops_total", "frames lost to chaos fault injection"},
	trace.Retransmit: {"dsm_retransmits_total", "reliability-sublayer re-sends"},
	trace.DupDiscard: {"dsm_dup_discards_total", "duplicate frames suppressed by receiver dedup"},
	trace.Crash:      {"dsm_crashes_total", "crash-stops"},
	trace.Recover:    {"dsm_recoveries_total", "restarts recovered from the write-ahead log"},
	trace.Suspect:    {"dsm_suspects_total", "failure-detector suspicions raised"},
	trace.Alive:      {"dsm_alives_total", "failure-detector suspicions cleared"},
	trace.ReadFwd:    {"dsm_read_fwds_total", "reads of non-replicated variables forwarded to a serving replica"},
	trace.ReadServe:  {"dsm_read_serves_total", "forwarded reads answered by a serving replica"},
}

// Span is one causal-propagation record: the write identified by
// (proc, seq) — the same ID Write_co stamps on the update — traveling
// from its issue to its (logical) apply at one remote replica, with
// the buffered-wait sub-span when the receipt was a write delay per
// Definition 3.
type Span struct {
	// WriteProc and WriteSeq are the write's (proc, seq) trace ID.
	WriteProc int `json:"write_proc"`
	WriteSeq  int `json:"write_seq"`
	// Proc is the remote replica the span describes.
	Proc int `json:"proc"`
	// IssueNs, ReceiptNs and ApplyNs are run-relative nanosecond
	// timestamps of the three legs.
	IssueNs   int64 `json:"issue_ns"`
	ReceiptNs int64 `json:"receipt_ns"`
	ApplyNs   int64 `json:"apply_ns"`
	// BufferedWaitNs is the receipt→apply sub-span when the update was
	// buffered (0 when it applied immediately).
	BufferedWaitNs int64 `json:"buffered_wait_ns"`
	// Discarded marks spans resolved by a writing-semantics logical
	// apply rather than a physical one.
	Discarded bool `json:"discarded,omitempty"`
}

// PropagationNs returns the issue→apply propagation latency — the
// quantity trace.Log.VisibilityLatencies reconstructs post-hoc.
func (s Span) PropagationNs() int64 { return s.ApplyNs - s.IssueNs }

// issueWindow is the per-process span-tracking window: the observer
// remembers the last issueWindow writes of each origin (power of two,
// indexed by seq). A write still unresolved when its origin has issued
// issueWindow newer writes loses its span — consistent with the
// layer's drop-over-block policy, and impossible to hit without a
// pathological backlog since quiesce bounds in-flight writes.
const issueWindow = 512

// issueSlot tracks one issued write until every other replica resolved
// it. seq disambiguates window wraparound; -1 marks an empty slot.
type issueSlot struct {
	seq       int
	t         int64
	remaining int
}

// receiptSlot is the open receipt leg of one span at one replica.
type receiptSlot struct {
	seq      int // -1 when empty
	at       int64
	buffered bool
}

// Observer turns the live trace.Event stream into metrics and spans.
//
// Observe must not be called concurrently with itself: the cluster
// invokes it under its observability tee lock, which serializes the
// event stream in global (ticket) order even though the journal
// itself is sharded and lock-free when no observer is attached.
// Under that contract the hot path takes no locks at all — counters
// and histograms are atomics, and the span-tracking windows are plain
// arrays only Observe touches. The mutex guards only the completed-span
// ring, which scrape and export goroutines read concurrently.
type Observer struct {
	reg      *Registry
	protocol string
	procs    int

	// perKind[p][k] is the pre-registered counter for event kind k at
	// process p — the whole hot path is one array index + atomic add.
	perKind [][]*Counter
	delays  []*Counter
	pending []*Gauge

	delayWait   *Histogram
	propagation *Histogram
	walFsync    []*Histogram

	// issued[origin*issueWindow + seq&mask] tracks open writes;
	// inflight[(replica*procs+origin)*issueWindow + seq&mask] tracks
	// open receipts. Observe-only: no synchronization needed.
	issued   []issueSlot
	inflight []receiptSlot

	mu       sync.Mutex
	spans    []Span // ring buffer of completed spans
	spanCap  int
	spanNext int  // next write position once the ring is full
	wrapped  bool // ring has overwritten at least one span
	total    uint64
	spanSink func(Span)
}

// Options parameterizes an Observer.
type Options struct {
	// Procs is the process count (must match the cluster's).
	Procs int
	// Protocol labels every metric series.
	Protocol string
	// Registry receives the metric families; nil builds a fresh one.
	Registry *Registry
	// SpanCapacity bounds the completed-span ring buffer; 0 defaults
	// to 4096. Older spans are overwritten, never blocking the run.
	SpanCapacity int
	// SpanSink, when set, is invoked with every completed span (under
	// the observer lock — keep it non-blocking; the JSONL streamer in
	// this package qualifies).
	SpanSink func(Span)
}

// NewObserver wires an observer for a cluster of procs processes.
func NewObserver(opts Options) *Observer {
	if opts.Procs < 1 {
		panic(fmt.Sprintf("obs: Procs = %d", opts.Procs))
	}
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	cap := opts.SpanCapacity
	if cap == 0 {
		cap = 4096
	}
	o := &Observer{
		reg:      reg,
		protocol: opts.Protocol,
		procs:    opts.Procs,
		perKind:  make([][]*Counter, opts.Procs),
		delays:   make([]*Counter, opts.Procs),
		pending:  make([]*Gauge, opts.Procs),
		walFsync: make([]*Histogram, opts.Procs),
		issued:   make([]issueSlot, opts.Procs*issueWindow),
		inflight: make([]receiptSlot, opts.Procs*opts.Procs*issueWindow),
		spanCap:  cap,
		spanSink: opts.SpanSink,
	}
	for i := range o.issued {
		o.issued[i].seq = -1
	}
	for i := range o.inflight {
		o.inflight[i].seq = -1
	}
	proto := L("protocol", opts.Protocol)
	for p := 0; p < opts.Procs; p++ {
		pl := L("proc", fmt.Sprint(p))
		o.perKind[p] = make([]*Counter, trace.NumKinds)
		for k := 0; k < trace.NumKinds; k++ {
			f := kindFamilies[k]
			o.perKind[p][k] = reg.Counter(f.name, f.help, proto, pl)
		}
		o.delays[p] = reg.Counter("dsm_delays_total",
			"write delays: receipts buffered awaiting causal predecessors (Definition 3)", proto, pl)
		o.pending[p] = reg.Gauge("dsm_pending_updates",
			"updates currently buffered in the pending queue", proto, pl)
		o.walFsync[p] = reg.Histogram("dsm_wal_fsync_ns",
			"write-ahead-log fsync latency", nil, proto, pl)
	}
	o.delayWait = reg.Histogram("dsm_delay_wait_ns",
		"how long buffered updates waited before (logical) apply", nil, proto)
	o.propagation = reg.Histogram("dsm_propagation_ns",
		"write propagation latency: issue to (logical) apply at a remote replica", nil, proto)
	return o
}

// Registry returns the observer's metric registry.
func (o *Observer) Registry() *Registry { return o.reg }

// Procs returns the process count the observer was wired for.
func (o *Observer) Procs() int { return o.procs }

// Protocol returns the protocol label.
func (o *Observer) Protocol() string { return o.protocol }

// issueIdx returns the issued-window slot of w, or -1 when w's origin
// is out of range.
func (o *Observer) issueIdx(w history.WriteID) int {
	if w.Proc < 0 || w.Proc >= o.procs || w.Seq < 0 {
		return -1
	}
	return w.Proc*issueWindow + w.Seq&(issueWindow-1)
}

// inflightIdx returns the receipt-window slot of w at replica p.
func (o *Observer) inflightIdx(p int, w history.WriteID) int {
	if w.Proc < 0 || w.Proc >= o.procs || w.Seq < 0 {
		return -1
	}
	return (p*o.procs+w.Proc)*issueWindow + w.Seq&(issueWindow-1)
}

// Observe consumes one trace event. It is the single hot-path entry:
// the cluster calls it for every appended event, already serialized
// under the cluster's tee lock (Observe must not be invoked
// concurrently with itself).
func (o *Observer) Observe(e trace.Event) {
	if e.Proc < 0 || e.Proc >= o.procs || e.Kind < 0 || int(e.Kind) >= trace.NumKinds {
		return
	}
	o.perKind[e.Proc][e.Kind].Inc()
	switch e.Kind {
	case trace.Issue:
		if i := o.issueIdx(e.Write); i >= 0 {
			o.issued[i] = issueSlot{seq: e.Write.Seq, t: e.Time, remaining: o.procs - 1}
		}
	case trace.Receipt:
		if e.Buffered {
			o.delays[e.Proc].Inc()
			o.pending[e.Proc].Add(1)
		}
		if i := o.inflightIdx(e.Proc, e.Write); i >= 0 {
			if old := &o.inflight[i]; old.seq >= 0 && old.seq != e.Write.Seq && old.buffered {
				// Window wraparound over an unresolved buffered receipt:
				// its span is lost, but the pending gauge must not leak.
				o.pending[e.Proc].Add(-1)
			}
			o.inflight[i] = receiptSlot{seq: e.Write.Seq, at: e.Time, buffered: e.Buffered}
		}
	case trace.Apply, trace.Discard:
		o.resolve(e, e.Kind == trace.Discard)
	case trace.Drop:
		// The late message of a skipped write: resolves any buffered
		// wait, but the logical apply (Discard) already closed the span.
		if i := o.inflightIdx(e.Proc, e.Write); i >= 0 {
			if rec := &o.inflight[i]; rec.seq == e.Write.Seq {
				if rec.buffered {
					o.pending[e.Proc].Add(-1)
					o.delayWait.Observe(e.Time - rec.at)
				}
				rec.seq = -1
			}
		}
	}
}

// resolve closes the span of one (logical) apply. Only the completed-
// span ring needs the lock; the tracking windows are Observe-private.
func (o *Observer) resolve(e trace.Event, discarded bool) {
	var rec receiptSlot
	hadReceipt := false
	if i := o.inflightIdx(e.Proc, e.Write); i >= 0 && o.inflight[i].seq == e.Write.Seq {
		rec = o.inflight[i]
		o.inflight[i].seq = -1
		hadReceipt = true
	}
	var issueT int64
	hadIssue := false
	if i := o.issueIdx(e.Write); i >= 0 {
		if slot := &o.issued[i]; slot.seq == e.Write.Seq {
			issueT = slot.t
			hadIssue = true
			slot.remaining--
			if slot.remaining <= 0 {
				slot.seq = -1
			}
		}
	}

	if hadReceipt && rec.buffered {
		o.pending[e.Proc].Add(-1)
		o.delayWait.Observe(e.Time - rec.at)
	}
	if !hadIssue {
		return // foreign, pre-observer, or aged-out write: no span
	}
	o.propagation.Observe(e.Time - issueT)
	sp := Span{
		WriteProc: e.Write.Proc, WriteSeq: e.Write.Seq, Proc: e.Proc,
		IssueNs: issueT, ReceiptNs: rec.at, ApplyNs: e.Time,
		Discarded: discarded,
	}
	if hadReceipt && rec.buffered {
		sp.BufferedWaitNs = e.Time - rec.at
	}
	o.mu.Lock()
	if len(o.spans) < o.spanCap {
		o.spans = append(o.spans, sp)
	} else {
		o.spans[o.spanNext] = sp
		o.spanNext = (o.spanNext + 1) % o.spanCap
		o.wrapped = true
	}
	o.total++
	if o.spanSink != nil {
		o.spanSink(sp)
	}
	o.mu.Unlock()
}

// ObserveWALSync records one journal fsync duration for process p.
// Safe to call from any goroutine.
func (o *Observer) ObserveWALSync(p int, d time.Duration) {
	if p >= 0 && p < o.procs {
		o.walFsync[p].Observe(d.Nanoseconds())
	}
}

// Propagation returns the live propagation-latency histogram.
func (o *Observer) Propagation() *Histogram { return o.propagation }

// DelayWait returns the live buffered-wait histogram.
func (o *Observer) DelayWait() *Histogram { return o.delayWait }

// Spans returns a copy of the retained completed spans, oldest first.
// When more than SpanCapacity spans completed, only the newest are
// retained; SpanTotal reports how many ever completed.
func (o *Observer) Spans() []Span {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.wrapped {
		return append([]Span(nil), o.spans...)
	}
	out := make([]Span, 0, o.spanCap)
	out = append(out, o.spans[o.spanNext:]...)
	out = append(out, o.spans[:o.spanNext]...)
	return out
}

// SpanTotal returns the number of spans completed over the run
// (including any that aged out of the ring).
func (o *Observer) SpanTotal() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.total
}

// Snapshot is a one-line-report summary of the run so far.
type Snapshot struct {
	Writes, Reads, Receipts, Delays    uint64
	Applies, Discards                  uint64
	NetDrops, Retransmits, DupDiscards uint64
	Crashes, Recoveries, Suspects      uint64
	Pending                            int64
	PropP50, PropP99                   time.Duration
	PropCount                          uint64
}

// Stats sums the per-process counters into a Snapshot.
func (o *Observer) Stats() Snapshot {
	var s Snapshot
	sum := func(k trace.EventKind) uint64 {
		var n uint64
		for p := 0; p < o.procs; p++ {
			n += o.perKind[p][k].Value()
		}
		return n
	}
	s.Writes = sum(trace.Issue)
	s.Reads = sum(trace.Return)
	s.Receipts = sum(trace.Receipt)
	s.Applies = sum(trace.Apply)
	s.Discards = sum(trace.Discard)
	s.NetDrops = sum(trace.NetDrop)
	s.Retransmits = sum(trace.Retransmit)
	s.DupDiscards = sum(trace.DupDiscard)
	s.Crashes = sum(trace.Crash)
	s.Recoveries = sum(trace.Recover)
	s.Suspects = sum(trace.Suspect)
	for p := 0; p < o.procs; p++ {
		s.Delays += o.delays[p].Value()
		s.Pending += o.pending[p].Value()
	}
	s.PropP50 = time.Duration(o.propagation.Quantile(0.50))
	s.PropP99 = time.Duration(o.propagation.Quantile(0.99))
	s.PropCount = o.propagation.Count()
	return s
}

// String renders the snapshot as the reporter's one-liner.
func (s Snapshot) String() string {
	out := fmt.Sprintf("writes=%d reads=%d receipts=%d delays=%d pending=%d prop_n=%d prop_p50=%v prop_p99=%v",
		s.Writes, s.Reads, s.Receipts, s.Delays, s.Pending,
		s.PropCount, s.PropP50.Round(time.Microsecond), s.PropP99.Round(time.Microsecond))
	if s.NetDrops > 0 || s.Retransmits > 0 || s.DupDiscards > 0 {
		out += fmt.Sprintf(" netdrops=%d retrans=%d dupdisc=%d", s.NetDrops, s.Retransmits, s.DupDiscards)
	}
	if s.Crashes > 0 || s.Recoveries > 0 || s.Suspects > 0 {
		out += fmt.Sprintf(" crashes=%d recoveries=%d suspects=%d", s.Crashes, s.Recoveries, s.Suspects)
	}
	return out
}
