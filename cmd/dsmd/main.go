// Command dsmd is the long-running serving tier: a TCP daemon fronting
// a live causal-memory cluster with the tagged, pipelined wire
// protocol of internal/service. Clients (internal/client, dsmbench
// -exp service) connect, multiplex sessions over one socket, and carry
// their causal past in per-session tokens, so read-your-writes and
// monotonic-reads hold across replica switches, reconnects and — with
// -wal-dir — server restarts.
//
// Usage:
//
//	dsmd -addr :7450 -procs 3 -vars 16
//	dsmd -protocol ANBKH -batch-window 200us -max-batch 128
//	dsmd -wal-dir /var/lib/dsmd                 # survive crash/restart
//	dsmd -meta-codec auto                       # compress clock metadata
//	dsmd -debug-addr :6060                      # /metrics + pprof
//	dsmd -trace-stream traces.jsonl             # tail-sampled request
//	                                            # forensics (cmd/dsmtrace)
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests run to completion and flush, then connections close and the
// cluster shuts down. A second signal aborts the drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	"repro/internal/protocol"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintf(os.Stderr, "dsmd: %v\n", err)
		os.Exit(1)
	}
}

// run is main behind a testable seam: args are the CLI arguments and
// ready, when non-nil, is called with the bound listen address once
// the server accepts connections.
func run(args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("dsmd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7450", "TCP listen address")
	proto := fs.String("protocol", "OptP", "protocol: OptP, ANBKH, WS-recv, OptP-noreadmerge, OptP-WS (WS-send is not servable)")
	procs := fs.Int("procs", 3, "number of replicated processes")
	vars := fs.Int("vars", 16, "number of shared variables")
	jitter := fs.Duration("jitter", 0, "max artificial inter-replica message delay")
	fifo := fs.Bool("fifo", true, "preserve per-link FIFO order in the replica transport")
	seed := fs.Int64("seed", 1, "transport delay seed")
	replFactor := fs.Int("replication-factor", 0, "replicas per variable; the serving tier requires full replication, so only 0 or -procs is accepted (partial replication runs offline via dsmrun)")
	metaCodec := fs.String("meta-codec", "off", "causality-metadata codec on inter-replica links: off, delta, stab, auto")
	walDir := fs.String("wal-dir", "", "crash recovery: write-ahead log directory (one subdir per process)")
	walSync := fs.Bool("wal-sync", false, "crash recovery: fsync the journal after every record")
	waitTimeout := fs.Duration("wait-timeout", 5*time.Second, "bound on a request's frontier wait before Unavailable")
	batchWindow := fs.Duration("batch-window", 0, "write pump linger: collect a batch for up to this long (0: no linger)")
	maxBatch := fs.Int("max-batch", 64, "max writes per pump batch (1 disables batching)")
	maxPipeline := fs.Int("max-pipeline", 256, "max concurrently-served requests per connection")
	maxInflight := fs.Int("max-inflight", 0, "load shedding: fast-reject requests past this many in flight server-wide (0: default 4096)")
	maxQueue := fs.Int("max-queue", 0, "load shedding: bound each replica's write admission queue (0: default 4096)")
	dedupWindow := fs.Int("dedup-window", 0, "exactly-once retries: per-session dedup window in ops (0: default 512)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain at shutdown")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	traceThreshold := fs.Duration("trace-threshold", 0, "request tracing: tail-sample requests at least this slow (0: default 20ms, negative: disable latency sampling)")
	traceRing := fs.Int("trace-ring", 0, "request tracing: retained-trace ring capacity (0: default 1024)")
	traceStream := fs.String("trace-stream", "", "request tracing: stream tail-sampled request records as JSONL to this file (\"-\" for stderr), dsmtrace's input")
	chaosKill := fs.Float64("chaos-kill", 0, "fault injection: per-I/O probability of a connection reset")
	chaosStall := fs.Float64("chaos-stall", 0, "fault injection: per-I/O probability of a stall")
	chaosStallMax := fs.Duration("chaos-stall-max", 0, "fault injection: max stall duration (0: 20ms)")
	chaosTrunc := fs.Float64("chaos-trunc", 0, "fault injection: per-write probability of truncating the frame then resetting")
	chaosAccept := fs.Float64("chaos-accept", 0, "fault injection: probability of killing a connection at accept")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault injection: RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	kind, err := protocol.ParseKind(*proto)
	if err != nil {
		return err
	}
	if *procs < 2 {
		return fmt.Errorf("-procs must be at least 2, got %d", *procs)
	}
	if *vars < 1 {
		return fmt.Errorf("-vars must be at least 1, got %d", *vars)
	}
	if *replFactor != 0 && *replFactor != *procs {
		return fmt.Errorf("-replication-factor %d: a session may read any variable at any replica, so the serving tier requires full replication — use 0 or %d, or run partial replication offline via dsmrun", *replFactor, *procs)
	}
	if *jitter < 0 || *waitTimeout < 0 || *batchWindow < 0 || *drainTimeout < 0 {
		return fmt.Errorf("durations must not be negative")
	}
	meta, err := protocol.ParseMetaMode(*metaCodec)
	if err != nil {
		return fmt.Errorf("-meta-codec: %w", err)
	}
	chaos := netchaos.Config{
		Seed:       *chaosSeed,
		KillProb:   *chaosKill,
		StallProb:  *chaosStall,
		StallMax:   *chaosStallMax,
		TruncProb:  *chaosTrunc,
		AcceptProb: *chaosAccept,
	}
	if err := chaos.Validate(); err != nil {
		return err
	}

	if *traceRing < 0 {
		return fmt.Errorf("-trace-ring must not be negative, got %d", *traceRing)
	}
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterBuildInfo(reg, "dsmd")
	}
	cluster, err := core.NewCluster(core.Config{
		Processes: *procs, Variables: *vars, Protocol: kind,
		MaxDelay: *jitter, FIFO: *fifo, Seed: *seed,
		WALDir: *walDir, WALSync: *walSync,
		Meta: meta,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	// The cluster registers codec counters only when it owns an observer;
	// dsmd's registry exists independently, so wire them up here.
	if codec := cluster.MetaCodec(); codec != nil && reg != nil {
		codec.RegisterMetrics(reg, obs.L("protocol", kind.String()))
	}

	scfg := service.Config{
		Cluster:        cluster,
		Addr:           *addr,
		WaitTimeout:    *waitTimeout,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
		MaxPipeline:    *maxPipeline,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		DedupWindow:    *dedupWindow,
		Metrics:        reg,
		TraceThreshold: *traceThreshold,
		TraceRing:      *traceRing,
	}
	if *traceStream != "" {
		w := os.Stderr
		if *traceStream != "-" {
			f, err := os.Create(*traceStream)
			if err != nil {
				return fmt.Errorf("-trace-stream: %w", err)
			}
			defer f.Close()
			w = f
		}
		sink := reqtrace.NewSinkWriter(w, 0)
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dsmd: trace stream: %v\n", err)
			}
			if n := sink.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "dsmd: trace stream dropped %d records\n", n)
			}
		}()
		scfg.TraceSink = sink.Record
	}
	if chaos.Enabled() {
		// Wrap manually instead of through netchaos.Wrapper so the chaos
		// listener's fault counters land on the metrics registry.
		scfg.WrapListener = func(ln net.Listener) net.Listener {
			wrapped := netchaos.Wrap(ln, chaos)
			if cl, ok := wrapped.(*netchaos.Listener); ok && reg != nil {
				cl.RegisterMetrics(reg)
			}
			return wrapped
		}
		fmt.Fprintf(os.Stderr, "dsmd: CHAOS listener active (kill=%.3g stall=%.3g trunc=%.3g accept=%.3g seed=%d)\n",
			chaos.KillProb, chaos.StallProb, chaos.TruncProb, chaos.AcceptProb, chaos.Seed)
	}
	srv, err := service.New(scfg)
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		dbg, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			srv.Close()
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "dsmd: debug endpoints on http://%s\n", dbg.Addr())
	}

	fmt.Fprintf(os.Stderr, "dsmd: serving %v (%d procs, %d vars) on %s\n",
		kind, *procs, *vars, srv.Addr())
	if ready != nil {
		ready(srv.Addr())
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "dsmd: %v, draining (second signal aborts)\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		select {
		case <-sigs:
			cancel()
		case <-ctx.Done():
		}
	}()
	if err := srv.Shutdown(ctx); err != nil {
		// The drain was cut short; connections are closed regardless.
		fmt.Fprintf(os.Stderr, "dsmd: %v\n", err)
	}
	return cluster.Close()
}
