package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestPartialFactors(t *testing.T) {
	for _, c := range []struct {
		procs int
		want  []int
	}{
		{16, []int{16, 8, 4, 2}},
		{8, []int{8, 4, 2}},
		{4, []int{4, 2, 1}},
	} {
		got := partialFactors(c.procs)
		if len(got) != len(c.want) {
			t.Fatalf("partialFactors(%d) = %v, want %v", c.procs, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("partialFactors(%d) = %v, want %v", c.procs, got, c.want)
			}
		}
	}
}

func TestPartialSweepShape(t *testing.T) {
	r, err := partialSweep([]int{4}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != PartialName {
		t.Fatalf("name = %q", r.Name)
	}
	if len(r.Rows) != len(partialFactors(4)) {
		t.Fatalf("got %d rows, want %d", len(r.Rows), len(partialFactors(4)))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(r.Header))
		}
		factor, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("row %v: r %q", row, row[1])
		}
		msgs, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("row %v: msgs/write %q", row, row[2])
		}
		// The multicast ships r-1 copies when the writer replicates its
		// own variable and r when it doesn't, so the mean lies in
		// [r-1, r] — never the full-broadcast procs-1.
		if msgs < float64(factor-1) || msgs > float64(factor) {
			t.Fatalf("row %v: msgs/write = %.1f, want within [%d, %d]", row, msgs, factor-1, factor)
		}
		// Under Modulo with vars = procs, each process stores exactly r
		// variables.
		if stored, _ := strconv.ParseFloat(row[3], 64); stored != float64(factor) {
			t.Fatalf("row %v: stored-vars/proc = %.1f, want %d", row, stored, factor)
		}
		if clockB, _ := strconv.ParseFloat(row[4], 64); clockB <= 0 {
			t.Fatalf("row %v: clock-B/op %q", row, row[4])
		}
		// Full replication forwards nothing; partial factors must.
		if fwds, _ := strconv.ParseFloat(row[5], 64); (factor == 4) != (fwds == 0) {
			t.Fatalf("row %v: read-fwds = %.1f at r=%d", row, fwds, factor)
		}
	}
}

// partialResults builds a synthetic E-partial table from
// "procs/r" → {msgs/write, stored-vars/proc, clock-B/op} cells.
func partialResults(cells map[string][3]string) []Result {
	r := Result{
		Name:   PartialName,
		Header: []string{"procs", "r", "msgs/write", "stored-vars/proc", "clock-B/op", "read-fwds", "read-delays"},
	}
	for key, v := range cells {
		procs, factor, _ := strings.Cut(key, "/")
		r.Rows = append(r.Rows, []string{procs, factor, v[0], v[1], v[2], "0.0", "0.0"})
	}
	return []Result{r}
}

func TestCheckPartialRegression(t *testing.T) {
	mk := func(msgs, stored, clockB string) []Result {
		return partialResults(map[string][3]string{
			"16/16": {"15.0", "16.0", "40.0"},
			"16/4":  {msgs, stored, clockB},
		})
	}
	baseline := NewScorecard(mk("3.0", "4.0", "20.0"))

	if err := CheckPartialRegression(mk("3.0", "4.0", "20.0"), baseline, 0.2); err != nil {
		t.Fatalf("identical results failed the gate: %v", err)
	}
	// Improvements never fail.
	if err := CheckPartialRegression(mk("2.0", "4.0", "15.0"), baseline, 0.2); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
	// msgs/write above baseline + tolerance fails.
	if err := CheckPartialRegression(mk("3.9", "4.0", "20.0"), baseline, 0.2); err == nil {
		t.Fatal("fan-out regression passed the gate")
	}
	// clock bytes above baseline + tolerance fail.
	if err := CheckPartialRegression(mk("3.0", "4.0", "30.0"), baseline, 0.2); err == nil {
		t.Fatal("metadata regression passed the gate")
	}
	// The headline fan-out ceiling binds regardless of the baseline.
	loose := NewScorecard(mk("5.0", "4.0", "20.0"))
	if err := CheckPartialRegression(mk("5.0", "4.0", "20.0"), loose, 0.2); err == nil {
		t.Fatal("16/4 above 4 msgs/write passed the gate")
	}
	// The storage-reduction claim binds against the current 16/16 row.
	if err := CheckPartialRegression(mk("3.0", "8.0", "20.0"), baseline, 0.2); err == nil {
		t.Fatal("storage reduction below 3.5x passed the gate")
	}
	// A baseline without E-partial rows is a configuration error.
	if err := CheckPartialRegression(mk("3.0", "4.0", "20.0"), NewScorecard(nil), 0.2); err == nil {
		t.Fatal("empty baseline passed the gate")
	}
}
