// Command cocheck analyzes a history written in the paper's notation:
// it computes the →co relation, the write causality graph, the
// X_co-safe enabling sets (Definition 4), and checks causal consistency
// (Definition 2).
//
// Usage:
//
//	cocheck history.txt          # analyze a file
//	cocheck -                     # read from stdin
//	cocheck -example              # analyze the paper's Example 1
//	cocheck -dot history.txt      # also emit the causality graph as DOT
//
// History format (see internal/scenario):
//
//	p1: w(x1)a ; w(x1)c
//	p2: r(x1)a ; w(x2)b
//	p3: r(x2)b ; w(x2)d
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

const exampleSrc = `# Example 1 of the paper (history H1)
p1: w(x1)a ; w(x1)c
p2: r(x1)a ; w(x2)b
p3: r(x2)b ; w(x2)d
`

func main() {
	example := flag.Bool("example", false, "analyze the paper's Example 1")
	dot := flag.Bool("dot", false, "also emit the write causality graph in Graphviz DOT")
	flag.Parse()

	var a *scenario.Analysis
	var err error
	switch {
	case *example:
		a, err = scenario.AnalyzeString(exampleSrc)
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		var s *scenario.Scenario
		s, err = scenario.Parse(os.Stdin)
		if err == nil {
			a, err = scenario.Analyze(s)
		}
	case flag.NArg() == 1:
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			var s *scenario.Scenario
			s, err = scenario.Parse(f)
			f.Close()
			if err == nil {
				a, err = scenario.Analyze(s)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: cocheck [-dot] <history-file|-> | cocheck -example")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cocheck:", err)
		os.Exit(1)
	}

	fmt.Print(a.Report())
	if *dot {
		fmt.Println()
		fmt.Print(a.Graph.DOT(a.Scenario.History))
	}
	if !a.Consistent {
		os.Exit(3)
	}
}
