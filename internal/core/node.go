package core

import (
	"fmt"
	"sync"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Node is one process of a live cluster: a full replica of the shared
// variables plus the protocol state machine driving it. All methods are
// safe for concurrent use.
type Node struct {
	c  *Cluster
	id int

	// mu serializes replica access; lock order is Node.mu before
	// Cluster.mu, never the reverse.
	mu      sync.Mutex
	replica protocol.Replica
	pending []protocol.Update
}

// ID returns the node's 0-based process index.
func (n *Node) ID() int { return n.id }

// Write performs w_p(x)v: it applies locally (wait-free) and broadcasts
// the update asynchronously.
func (n *Node) Write(x int, v int64) error {
	if err := n.check(x); err != nil {
		return err
	}
	n.mu.Lock()
	u, broadcast := n.replica.LocalWrite(x, v)
	n.c.appendEvent(trace.Event{
		Kind: trace.Issue, Proc: n.id, Time: n.c.now(),
		Write: u.ID, Var: x, Val: v,
	})
	if broadcast {
		n.c.appendEvent(trace.Event{
			Kind: trace.Send, Proc: n.id, Time: n.c.now(),
			Write: u.ID, Var: x, Val: v,
		})
	} else {
		n.c.noteDeferred(n.id)
	}
	n.mu.Unlock()
	// Broadcast outside the node lock: a full FIFO link must never
	// block a holder of n.mu that a delivery goroutine is waiting for.
	if broadcast {
		transport.Broadcast(n.c.tr, n.c.cfg.Processes, n.id, u)
	}
	return nil
}

// Read performs r_p(x) against the local replica (wait-free).
func (n *Node) Read(x int) (int64, error) {
	v, _, err := n.ReadMeta(x)
	return v, err
}

// ReadMeta is Read plus the identity of the write that produced the
// value (history.Bottom for the initial ⊥).
func (n *Node) ReadMeta(x int) (int64, history.WriteID, error) {
	if err := n.check(x); err != nil {
		return 0, history.Bottom, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	v, from := n.replica.Read(x)
	n.c.appendEvent(trace.Event{
		Kind: trace.Return, Proc: n.id, Time: n.c.now(),
		Var: x, Val: v, From: from,
	})
	return v, from, nil
}

// Clock returns a copy of the replica's primary control vector
// (Write_co for OptP).
func (n *Node) Clock() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replica.(protocol.Introspector).ControlClock()
}

// PendingUpdates returns the current number of buffered (delayed)
// updates at this node.
func (n *Node) PendingUpdates() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

func (n *Node) check(x int) error {
	n.c.mu.Lock()
	closed := n.c.closed
	n.c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if x < 0 || x >= n.c.cfg.Variables {
		return fmt.Errorf("%w: x%d of %d", ErrBadVariable, x+1, n.c.cfg.Variables)
	}
	return nil
}

// handle is the transport delivery callback.
func (n *Node) handle(m transport.Message) {
	u := m.Update
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.replica.Status(u)
	kind := trace.Receipt
	if u.Marker {
		kind = trace.Token
	}
	n.c.appendEvent(trace.Event{
		Kind: kind, Proc: n.id, Time: n.c.now(),
		Write: u.ID, Var: u.Var, Val: u.Val,
		Buffered: st == protocol.Blocked,
	})
	switch st {
	case protocol.Blocked:
		n.pending = append(n.pending, u)
	case protocol.Deliverable:
		n.applyLocked(u)
	case protocol.Discardable:
		n.dropLocked(u)
	}
	n.drainLocked()
}

// applyLocked installs u, recording any writing-semantics logical apply
// first. Caller holds n.mu.
func (n *Node) applyLocked(u protocol.Update) {
	if sk, ok := n.replica.(protocol.Skipper); ok {
		if tgt := sk.SkipTarget(u); !tgt.IsBottom() {
			n.c.appendEvent(trace.Event{
				Kind: trace.Discard, Proc: n.id, Time: n.c.now(), Write: tgt,
			})
		}
	}
	n.replica.Apply(u)
	kind := trace.Apply
	if u.Marker {
		kind = trace.Token
	}
	n.c.appendEvent(trace.Event{
		Kind: kind, Proc: n.id, Time: n.c.now(),
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
}

// dropLocked discards the late message of an already logically-applied
// write. Caller holds n.mu.
func (n *Node) dropLocked(u protocol.Update) {
	n.replica.Discard(u)
	n.c.appendEvent(trace.Event{
		Kind: trace.Drop, Proc: n.id, Time: n.c.now(),
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
}

// drainLocked applies buffered updates until a fixpoint. Caller holds
// n.mu.
func (n *Node) drainLocked() {
	for {
		progressed := false
		for i := 0; i < len(n.pending); i++ {
			u := n.pending[i]
			switch n.replica.Status(u) {
			case protocol.Deliverable:
				n.pending = append(n.pending[:i], n.pending[i+1:]...)
				n.applyLocked(u)
				progressed = true
			case protocol.Discardable:
				n.pending = append(n.pending[:i], n.pending[i+1:]...)
				n.dropLocked(u)
				progressed = true
			}
			if progressed {
				break
			}
		}
		if !progressed {
			return
		}
	}
}
