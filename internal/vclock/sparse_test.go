package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomClock builds a dense clock of dimension n whose population
// density is controlled by fill (probability a component is nonzero).
func randomClock(rng *rand.Rand, n int, fill float64) VC {
	v := New(n)
	for i := range v {
		if rng.Float64() < fill {
			v[i] = uint64(1 + rng.Intn(1<<20))
		}
	}
	return v
}

func TestSparseMatchesDense(t *testing.T) {
	// Every Sparse operation must agree with the dense VC reference,
	// whatever the density.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		fill := rng.Float64()
		ref := randomClock(rng, n, fill)
		s := SparseFrom(ref)

		if s.Dim() != n || !s.Equal(ref) || s.Sum() != ref.Sum() {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Get(i) != ref[i] {
				return false
			}
		}
		// A handful of random Sets, including zeroing.
		for k := 0; k < 8; k++ {
			i := rng.Intn(n)
			x := uint64(rng.Intn(4)) // 0 exercises removal
			s.Set(i, x)
			ref.Set(i, x)
			if !s.Equal(ref) {
				return false
			}
		}
		// Merge and Dominates against an independent operand.
		o := randomClock(rng, n, fill)
		if s.Dominates(o) != ref.Dominates(o) {
			return false
		}
		s.Merge(o)
		ref.Merge(o)
		if !s.Equal(ref) {
			return false
		}
		// Materializations agree.
		if !s.Dense().Equal(ref) || !s.DenseInto(New(n)).Equal(ref) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseNNZ(t *testing.T) {
	s := NewSparse(5)
	if s.NNZ() != 0 {
		t.Fatalf("empty NNZ = %d", s.NNZ())
	}
	s.Set(3, 7)
	s.Set(1, 2)
	if s.NNZ() != 2 || s.Get(1) != 2 || s.Get(3) != 7 {
		t.Fatalf("after sets: %v", s)
	}
	s.Set(3, 0)
	if s.NNZ() != 1 || s.Get(3) != 0 {
		t.Fatalf("after removal: %v", s)
	}
	if got := s.String(); got != "{5 1:2}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSparseSetOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparse(3).Set(3, 1)
}

func TestAdaptiveMatchesDense(t *testing.T) {
	// Same property for Adaptive, which additionally flips representation
	// mid-sequence; drive it through long random op sequences at mixed
	// densities so both flips happen.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		a := NewAdaptive(n)
		ref := New(n)
		for k := 0; k < 40; k++ {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(n)
				x := uint64(rng.Intn(1 << 16))
				a.Set(i, x)
				ref.Set(i, x)
			case 1:
				o := randomClock(rng, n, rng.Float64())
				a.Merge(o)
				ref.Merge(o)
			case 2:
				o := randomClock(rng, n, rng.Float64())
				if a.Dominates(o) != ref.Dominates(o) {
					return false
				}
			}
			if !a.Equal(ref) || a.Sum() != ref.Sum() || a.Dim() != n {
				return false
			}
			for i := 0; i < n; i++ {
				if a.Get(i) != ref[i] {
					return false
				}
			}
		}
		return a.Dense().Equal(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveHysteresis(t *testing.T) {
	n := 16
	a := NewAdaptive(n)
	if !a.IsSparse() {
		t.Fatal("zero clock should start sparse")
	}
	// Fill past the dense threshold (> 50%): 9 of 16.
	for i := 0; i < 9; i++ {
		a.Set(i, 1)
	}
	if a.IsSparse() {
		t.Fatal("9/16 nonzero should be dense")
	}
	// Dropping just below 50% must NOT flip back (hysteresis band).
	a.Set(8, 0)
	if a.IsSparse() {
		t.Fatal("8/16 should stay dense inside the hysteresis band")
	}
	// Dropping below 25% flips back to sparse: 3 of 16.
	for i := 3; i < 8; i++ {
		a.Set(i, 0)
	}
	if !a.IsSparse() {
		t.Fatal("3/16 nonzero should be sparse")
	}
	want := VC{1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if !a.Equal(want) {
		t.Fatalf("after flips: %v, want %v", a.Dense(), want)
	}
}

func TestAdaptiveCopyFromPicksRepresentation(t *testing.T) {
	a := NewAdaptive(0)
	dense := VC{1, 2, 3, 4, 5, 6, 7, 0}
	a.CopyFrom(dense)
	if a.IsSparse() || a.Dim() != 8 || !a.Equal(dense) {
		t.Fatalf("dense copy: sparse=%v dim=%d", a.IsSparse(), a.Dim())
	}
	sparse := VC{0, 0, 0, 0, 0, 9, 0, 0, 0, 0}
	a.CopyFrom(sparse)
	if !a.IsSparse() || a.Dim() != 10 || !a.Equal(sparse) {
		t.Fatalf("sparse copy: sparse=%v dim=%d", a.IsSparse(), a.Dim())
	}
	a.Reset()
	if a.Dim() != 0 || !a.IsSparse() {
		t.Fatalf("after Reset: dim=%d sparse=%v", a.Dim(), a.IsSparse())
	}
}

func TestAdaptiveDeltaSignedRoundTrip(t *testing.T) {
	// Signed deltas must round-trip against both representations of the
	// base, including regressions (v < base component-wise) — the case
	// the unsigned AppendDelta rejects by panic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		base := randomClock(rng, n, rng.Float64())
		a := NewAdaptive(n)
		a.CopyFrom(base)
		v := New(n)
		for i := range v {
			// Around the base: below, equal, or above.
			switch rng.Intn(3) {
			case 0:
				v[i] = base[i] / 2
			case 1:
				v[i] = base[i]
			case 2:
				v[i] = base[i] + uint64(rng.Intn(1000))
			}
		}
		buf := a.AppendDeltaSigned(nil, v)
		if len(buf) != a.DeltaSignedSize(v) {
			return false
		}
		got, k, err := a.DecodeDeltaSigned(buf)
		if err != nil || k != len(buf) || !got.Equal(v) {
			return false
		}
		// The base must not have advanced (commit is the caller's job).
		if !a.Equal(base) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveDeltaSignedErrors(t *testing.T) {
	a := NewAdaptive(2)
	a.CopyFrom(VC{1, 0})
	// count=1, index=7 against dimension 2.
	if _, _, err := a.DecodeDeltaSigned([]byte{1, 7, 2}); err == nil {
		t.Fatal("expected dimension error on out-of-range index")
	}
	// Delta that drives component 0 negative: zigzag(-5) = 9.
	if _, _, err := a.DecodeDeltaSigned([]byte{1, 0, 9}); err == nil {
		t.Fatal("expected underflow error")
	}
	// Truncations.
	full := a.AppendDeltaSigned(nil, VC{4, 3})
	for i := 0; i < len(full); i++ {
		if _, _, err := a.DecodeDeltaSigned(full[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
	// Absurd count with a short buffer.
	if _, _, err := a.DecodeDeltaSigned([]byte{0xFF, 0xFF, 0x40}); err == nil {
		t.Fatal("expected count-exceeds-buffer error")
	}
}

func TestAdaptiveDeltaDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdaptive(3).AppendDeltaSigned(nil, VC{1, 2})
}

func BenchmarkSparseMerge(b *testing.B) {
	o := randomClock(rand.New(rand.NewSource(1)), 64, 0.1)
	s := SparseFrom(randomClock(rand.New(rand.NewSource(2)), 64, 0.1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Merge(o)
	}
}

func BenchmarkAdaptiveDeltaSigned(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	base := randomClock(rng, 64, 0.3)
	v := base.Clone()
	v[17] += 3
	v[41] += 1
	a := NewAdaptive(64)
	a.CopyFrom(base)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = a.AppendDeltaSigned(buf[:0], v)
	}
}
