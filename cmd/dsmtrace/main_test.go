package main

import (
	"strings"
	"testing"

	"repro/internal/obs/reqtrace"
)

// synthetic builds a deterministic record set: one slow server write
// dominated by its frontier wait, the client record of the same call
// (joined by trace ID, carrying the echoed server stages), and a fast
// unrelated read.
func synthetic() []reqtrace.Record {
	return []reqtrace.Record{
		{
			TraceID: 0xabcdef01, Origin: "server", Kind: "write", Status: "ok",
			Proc: 1, Var: 3, TotalNs: 25_000_000,
			Stages: []reqtrace.StageNs{
				{Stage: "admission", Ns: 10_000},
				{Stage: "frontier_wait", Ns: 20_000_000},
				{Stage: "batch_queue", Ns: 2_000_000},
				{Stage: "apply", Ns: 2_500_000},
				{Stage: "respond", Ns: 490_000},
			},
			WriteProc: 1, WriteSeq: 42,
		},
		{
			TraceID: 0xabcdef01, Origin: "client", Kind: "write", Status: "ok",
			Proc: 1, Var: 3, TotalNs: 26_000_000, Attempts: 2,
			Stages: []reqtrace.StageNs{
				{Stage: "backoff", Ns: 1_000_000},
				{Stage: "send", Ns: 50_000},
				{Stage: "await", Ns: 24_900_000},
			},
			ServerStages: []reqtrace.StageNs{
				{Stage: "admission", Ns: 10_000},
				{Stage: "frontier_wait", Ns: 20_000_000},
			},
			WriteProc: 1, WriteSeq: 42,
		},
		{
			Origin: "server", Kind: "read", Status: "unavailable",
			Proc: 0, Var: 1, TotalNs: 400_000,
			Stages: []reqtrace.StageNs{
				{Stage: "admission", Ns: 5_000},
				{Stage: "frontier_wait", Ns: 390_000},
			},
			Err: "frontier wait timed out",
		},
	}
}

func TestReportSections(t *testing.T) {
	var sb strings.Builder
	if err := report(&sb, synthetic(), 3); err != nil {
		t.Fatalf("report: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"records: 3",
		"server=2 client=1",
		"status:  ok=2 unavailable=1",
		"per-stage breakdown",
		"frontier_wait",
		"critical path",
		"slowest 3 requests",
		"trace=00000000abcdef01",
		"attempts=2",
		"write=(1,42)",
		"server: admission",
		"err: frontier wait timed out",
		"joined client+server traces: 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
}

// The frontier wait dominates both the slow write and the failed read,
// so the critical-path table must attribute both records to it.
func TestCriticalPathAttribution(t *testing.T) {
	var sb strings.Builder
	criticalPath(&sb, synthetic())
	out := sb.String()
	if !strings.Contains(out, "frontier_wait") {
		t.Fatalf("critical path missing frontier_wait:\n%s", out)
	}
	// 2 of 3 records are dominated by the frontier wait (the client
	// record is dominated by await).
	if !strings.Contains(out, "66.7%") {
		t.Errorf("frontier_wait share not 66.7%%:\n%s", out)
	}
	if !strings.Contains(out, "await") {
		t.Errorf("await missing from critical path:\n%s", out)
	}
}

func TestReportEmpty(t *testing.T) {
	var sb strings.Builder
	if err := report(&sb, nil, 5); err != nil {
		t.Fatalf("report: %v", err)
	}
	if !strings.Contains(sb.String(), "no records") {
		t.Errorf("empty report = %q", sb.String())
	}
}

// Percentile is nearest-rank: p50 of 4 samples is the 2nd, p99 the 4th.
func TestPct(t *testing.T) {
	ns := []int64{10, 20, 30, 40}
	if got := pct(ns, 50); got != 20 {
		t.Errorf("p50 = %d, want 20", got)
	}
	if got := pct(ns, 99); got != 40 {
		t.Errorf("p99 = %d, want 40", got)
	}
	if got := pct(nil, 50); got != 0 {
		t.Errorf("p50(nil) = %d, want 0", got)
	}
}
