package vclock

import (
	"encoding/binary"
	"fmt"
)

// Density thresholds of the Adaptive representation switch. The gap
// between them is deliberate hysteresis: a clock oscillating around one
// threshold must cross the other before flipping back, so a borderline
// population cannot thrash between representations on every update.
const (
	// adaptiveDenseAt flips sparse → dense when more than this fraction
	// of components is nonzero.
	adaptiveDenseAt = 0.5
	// adaptiveSparseAt flips dense → sparse when fewer than this
	// fraction of components is nonzero.
	adaptiveSparseAt = 0.25
)

// Adaptive holds one clock in whichever representation its density
// warrants: sparse (sorted index/value pairs) while mostly zero, dense
// (plain VC) once populated — CausalMesh's plain→compressed flip, both
// directions. It is the memory form of per-link codec state: a link
// from an idle or newly started sender costs O(nnz), and only links
// that have genuinely seen wide causal pasts pay O(dim).
//
// The zero Adaptive is an empty clock of dimension 0; CopyFrom adopts
// whatever dimension the first real clock carries.
type Adaptive struct {
	sparse Sparse // authoritative when dense == nil
	dense  VC     // authoritative when non-nil
}

// NewAdaptive returns an all-zero adaptive clock of dimension n
// (starting sparse — a zero clock is as sparse as they come).
func NewAdaptive(n int) *Adaptive {
	a := &Adaptive{}
	a.sparse.dim = n
	return a
}

// Dim returns the clock's dimension.
func (a *Adaptive) Dim() int {
	if a.dense != nil {
		return len(a.dense)
	}
	return a.sparse.dim
}

// IsSparse reports which representation currently backs the clock.
func (a *Adaptive) IsSparse() bool { return a.dense == nil }

// Get returns component i (absent components are zero).
func (a *Adaptive) Get(i int) uint64 {
	if a.dense != nil {
		return a.dense.Get(i)
	}
	return a.sparse.Get(i)
}

// Set assigns component i, then re-checks density.
func (a *Adaptive) Set(i int, x uint64) {
	if a.dense != nil {
		a.dense.Set(i, x)
		a.rebalance(a.nnz())
		return
	}
	a.sparse.Set(i, x)
	a.rebalance(a.sparse.NNZ())
}

// Merge folds the dense o into the clock (component-wise max), then
// re-checks density.
func (a *Adaptive) Merge(o VC) {
	if a.dense != nil {
		a.dense.Merge(o)
		a.rebalance(a.nnz())
		return
	}
	a.sparse.Merge(o)
	a.rebalance(a.sparse.NNZ())
}

// Dominates reports o ≤ a component-wise.
func (a *Adaptive) Dominates(o VC) bool {
	if a.dense != nil {
		return a.dense.Dominates(o)
	}
	return a.sparse.Dominates(o)
}

// Equal reports whether a and the dense o agree on every component.
func (a *Adaptive) Equal(o VC) bool {
	if a.dense != nil {
		return a.dense.Equal(o)
	}
	return a.sparse.Equal(o)
}

// CopyFrom overwrites the clock with v, adopting v's dimension and
// picking the representation v's density warrants. It reuses existing
// backing storage where it can.
func (a *Adaptive) CopyFrom(v VC) {
	nnz := 0
	for _, x := range v {
		if x != 0 {
			nnz++
		}
	}
	if float64(nnz) > adaptiveDenseAt*float64(len(v)) {
		if len(a.dense) != len(v) {
			a.dense = New(len(v))
		}
		a.dense.CopyFrom(v)
		a.sparse.dim = len(v)
		return
	}
	a.dense = nil
	a.sparse.CopyFrom(v)
}

// Reset zeroes the clock and drops it to dimension 0 — the state of a
// codec link before its first message, and after a resync.
func (a *Adaptive) Reset() {
	a.dense = nil
	a.sparse.CopyFrom(nil)
}

// DenseInto materializes the clock into dst (which must have dimension
// Dim) and returns dst.
func (a *Adaptive) DenseInto(dst VC) VC {
	if a.dense != nil {
		dst.CopyFrom(a.dense)
		return dst
	}
	return a.sparse.DenseInto(dst)
}

// Dense returns a fresh dense copy of the clock.
func (a *Adaptive) Dense() VC { return a.DenseInto(New(a.Dim())) }

// Sum returns the sum of all components.
func (a *Adaptive) Sum() uint64 {
	if a.dense != nil {
		return a.dense.Sum()
	}
	return a.sparse.Sum()
}

// Checksum is a one-byte digest of the clock (component sum mod 256),
// cheap enough to ship per message; the delta codec uses it to detect
// an encoder/decoder base desync instead of silently reconstructing a
// wrong clock.
func (a *Adaptive) Checksum() byte { return byte(a.Sum()) }

// nnz counts nonzero components of the dense representation.
func (a *Adaptive) nnz() int {
	n := 0
	for _, x := range a.dense {
		if x != 0 {
			n++
		}
	}
	return n
}

// rebalance flips the representation when the population crosses a
// threshold (with hysteresis: the flip-to-dense and flip-to-sparse
// bounds differ).
func (a *Adaptive) rebalance(nnz int) {
	dim := a.Dim()
	if a.dense == nil {
		if float64(nnz) > adaptiveDenseAt*float64(dim) {
			a.dense = a.sparse.Dense()
		}
		return
	}
	if float64(nnz) < adaptiveSparseAt*float64(dim) {
		a.sparse.CopyFrom(a.dense)
		a.dense = nil
	}
}

// DeltaSignedSize returns the exact byte size AppendDeltaSigned would
// emit for v against the current base, without encoding. Dimensions
// must agree.
func (a *Adaptive) DeltaSignedSize(v VC) int {
	if len(v) != a.Dim() {
		panic(fmt.Sprintf("vclock: delta dimension mismatch %d != %d", len(v), a.Dim()))
	}
	nz, size := 0, 0
	a.diff(v, func(i int, d int64) {
		nz++
		size += uvarintLen(uint64(i)) + uvarintLen(zigzag(d))
	})
	return uvarintLen(uint64(nz)) + size
}

// AppendDeltaSigned appends the signed delta encoding of v against the
// current base: uvarint count, then (uvarint index, zigzag-varint
// delta) pairs for every component where v differs from the base.
// Signed deltas make the codec total — unlike AppendDelta it never
// requires the base to be dominated, which matters for clocks that are
// not monotone per link (WS-send's (round, slot) pairs). The base is
// NOT advanced; callers commit with CopyFrom once the encoding is
// chosen. Dimensions must agree.
func (a *Adaptive) AppendDeltaSigned(dst []byte, v VC) []byte {
	if len(v) != a.Dim() {
		panic(fmt.Sprintf("vclock: delta dimension mismatch %d != %d", len(v), a.Dim()))
	}
	nz := 0
	a.diff(v, func(int, int64) { nz++ })
	dst = binary.AppendUvarint(dst, uint64(nz))
	a.diff(v, func(i int, d int64) {
		dst = binary.AppendUvarint(dst, uint64(i))
		dst = binary.AppendVarint(dst, d)
	})
	return dst
}

// DecodeDeltaSigned decodes a signed delta produced against the current
// base, returning the reconstructed clock (a fresh dense VC) and bytes
// consumed. The base is NOT advanced; callers commit with CopyFrom.
func (a *Adaptive) DecodeDeltaSigned(buf []byte) (VC, int, error) {
	nz, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, ErrTruncated
	}
	off := k
	if nz > uint64(len(buf)) { // ≥1 byte per (index, delta) pair
		return nil, 0, fmt.Errorf("%w: delta count %d exceeds buffer", ErrTruncated, nz)
	}
	v := a.Dense()
	for j := uint64(0); j < nz; j++ {
		idx, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, ErrTruncated
		}
		off += k
		d, k := binary.Varint(buf[off:])
		if k <= 0 {
			return nil, 0, ErrTruncated
		}
		off += k
		if idx >= uint64(len(v)) {
			return nil, 0, fmt.Errorf("%w: delta index %d ≥ dimension %d", ErrDimension, idx, len(v))
		}
		nv := int64(v[idx]) + d
		if nv < 0 {
			return nil, 0, fmt.Errorf("%w: delta underflows component %d", ErrDimension, idx)
		}
		v[idx] = uint64(nv)
	}
	return v, off, nil
}

// diff calls fn(i, v[i]-base[i]) for every component where v and the
// base differ, in index order, walking the sparse pairs with a cursor
// so the sparse case never materializes the base.
func (a *Adaptive) diff(v VC, fn func(i int, d int64)) {
	if a.dense != nil {
		for i, x := range v {
			if b := a.dense[i]; x != b {
				fn(i, int64(x)-int64(b))
			}
		}
		return
	}
	j := 0
	for i, x := range v {
		b := uint64(0)
		if j < len(a.sparse.ix) && int(a.sparse.ix[j]) == i {
			b = a.sparse.vx[j]
			j++
		}
		if x != b {
			fn(i, int64(x)-int64(b))
		}
	}
}

// zigzag maps a signed delta onto the unsigned varint space the same
// way encoding/binary does, for size accounting.
func zigzag(d int64) uint64 {
	return uint64(d<<1) ^ uint64(d>>63)
}
