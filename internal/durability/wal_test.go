package durability

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

func sampleEntries() []Entry {
	u := protocol.Update{
		ID: history.WriteID{Proc: 1, Seq: 3}, Var: 2, Val: 77,
		Clock: vclock.New(3), Round: 4, Slot: 1, BatchSize: 2,
	}
	u.Clock.Set(1, 3)
	marker := protocol.Marker(2, 9)
	return []Entry{
		{Kind: EntryLocalWrite, Var: 1, Val: -42},
		{Kind: EntryRead, Var: 0},
		{Kind: EntryApply, Update: u},
		{Kind: EntryDiscard, Update: u},
		{Kind: EntryApply, Update: marker},
		{Kind: EntryToken, Visit: 17},
	}
}

// TestEntryRoundTrip: every entry kind encodes and decodes exactly.
func TestEntryRoundTrip(t *testing.T) {
	for i, e := range sampleEntries() {
		got, err := decodeEntry(appendEntry(nil, e))
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got.Kind != e.Kind || got.Var != e.Var || got.Val != e.Val ||
			got.Visit != e.Visit || got.Update.ID != e.Update.ID ||
			got.Update.Val != e.Update.Val || got.Update.Marker != e.Update.Marker ||
			got.Update.Round != e.Update.Round || !got.Update.Clock.Equal(e.Update.Clock) {
			t.Fatalf("entry %d: got %+v, want %+v", i, got, e)
		}
	}
}

// TestEntryDecodeErrors: empty, unknown-kind, truncated and
// trailing-byte payloads are all rejected.
func TestEntryDecodeErrors(t *testing.T) {
	if _, err := decodeEntry(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := decodeEntry([]byte{0xEE}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	full := appendEntry(nil, Entry{Kind: EntryLocalWrite, Var: 3, Val: 1 << 40})
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodeEntry(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeEntry(append(full, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestEntryKindString covers every kind plus the unknown fallback.
func TestEntryKindString(t *testing.T) {
	want := map[EntryKind]string{
		EntryLocalWrite: "local-write",
		EntryRead:       "read",
		EntryApply:      "apply",
		EntryDiscard:    "discard",
		EntryToken:      "token",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := EntryKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind = %q", got)
	}
}

// TestCreateAppendRecover: the basic lifecycle — journal entries, crash
// (drop the handle), recover snapshot + entries.
func TestCreateAppendRecover(t *testing.T) {
	dir := t.TempDir()
	snap := []byte("snapshot-state")
	w, err := Create(dir, false, snap)
	if err != nil {
		t.Fatal(err)
	}
	entries := sampleEntries()
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Entries() != len(entries) {
		t.Fatalf("Entries = %d", w.Entries())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	gotSnap, gotEntries, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSnap, snap) {
		t.Fatalf("snapshot = %q", gotSnap)
	}
	if len(gotEntries) != len(entries) {
		t.Fatalf("recovered %d entries, want %d", len(gotEntries), len(entries))
	}
	for i := range entries {
		if gotEntries[i].Kind != entries[i].Kind {
			t.Fatalf("entry %d kind = %v", i, gotEntries[i].Kind)
		}
	}
	// Append after Close fails cleanly.
	if err := w.Append(entries[0]); err == nil {
		t.Fatal("append after close succeeded")
	}
	// Double Close is a no-op.
	if err := w.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

// TestSnapshotRotation: Snapshot starts a new generation, resets the
// entry count, deletes superseded segments, and recovery reads only the
// newest.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, false, []byte("gen0"))
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Entry{Kind: EntryRead, Var: 0})
	if err := w.Snapshot([]byte("gen1")); err != nil {
		t.Fatal(err)
	}
	if w.Entries() != 0 {
		t.Fatalf("Entries after snapshot = %d", w.Entries())
	}
	w.Append(Entry{Kind: EntryRead, Var: 1})
	w.Close()

	gens, err := listGens(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("gens = %v, want the superseded one deleted", gens)
	}
	snap, entries, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "gen1" || len(entries) != 1 || entries[0].Var != 1 {
		t.Fatalf("recovered %q with %d entries", snap, len(entries))
	}
	// Create on a recovered dir starts a newer generation.
	w2, err := Create(dir, true, []byte("gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Entry{Kind: EntryRead, Var: 2}); err != nil {
		t.Fatal(err) // exercises the fsync path
	}
	w2.Close()
	snap, _, err = Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "gen2" {
		t.Fatalf("snapshot = %q", snap)
	}
}

// TestRecoverTornTail: a partially written last record (the crash
// victim) is dropped; everything before it survives.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, false, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Entry{Kind: EntryRead, Var: 0})
	w.Append(Entry{Kind: EntryRead, Var: 1})
	w.Close()
	path := filepath.Join(dir, "seg-00000000.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: drop the last 3 bytes.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, entries, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Var != 0 {
		t.Fatalf("recovered %d entries", len(entries))
	}
}

// TestRecoverCRCCorruption: a bit flip inside a record payload ends the
// entry stream there (CRC catches it); earlier entries survive.
func TestRecoverCRCCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, false, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Entry{Kind: EntryRead, Var: 0})
	w.Append(Entry{Kind: EntryRead, Var: 1})
	w.Close()
	path := filepath.Join(dir, "seg-00000000.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, entries, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("recovered %d entries", len(entries))
	}
}

// TestRecoverSnapshotFallback: when the newest segment's snapshot
// record itself is torn, recovery falls back to the previous
// generation, which rotation keeps until its successor is durable. Here
// we simulate the crash-during-rotation window by writing the torn
// successor by hand.
func TestRecoverSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, false, []byte("good"))
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Entry{Kind: EntryRead, Var: 5})
	w.Close()
	// A successor whose snapshot record is torn mid-payload.
	bad := append([]byte(magic), appendRecord(nil, []byte("half-written"))...)
	bad = bad[:len(bad)-4]
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, entries, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "good" || len(entries) != 1 {
		t.Fatalf("recovered %q with %d entries", snap, len(entries))
	}
}

// TestRecoverErrors: empty dir, bad magic everywhere.
func TestRecoverErrors(t *testing.T) {
	if _, _, err := Recover(t.TempDir()); err == nil {
		t.Fatal("empty dir recovered")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000000.wal"), []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir); err == nil {
		t.Fatal("bad magic recovered")
	}
}
