// Command dsmbench runs the quantitative experiment sweeps E1–E8 of
// DESIGN.md and prints their tables.
//
// Usage:
//
//	dsmbench                    # run every experiment
//	dsmbench -exp jitter        # one of: jitter, nprocs, mix,
//	                            # falsecausality, buffer, throughput,
//	                            # ws, ablation, metadata, twosite,
//	                            # visibility, chaos
//	dsmbench -procs 4 -ops 500  # sizing for -exp throughput
//	dsmbench -exp chaos         # live OptP over lossy/duplicating links
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	procs := flag.Int("procs", 4, "processes for the throughput experiment")
	ops := flag.Int("ops", 1000, "ops per process for the throughput experiment")
	flag.Parse()

	sims := map[string]func() (experiments.Result, error){
		"jitter":         experiments.Jitter,
		"nprocs":         experiments.ProcCount,
		"mix":            experiments.Mix,
		"falsecausality": experiments.FalseCausalityRate,
		"buffer":         experiments.BufferOccupancy,
		"ws":             experiments.WritingSemantics,
		"ablation":       experiments.Ablation,
		"metadata":       experiments.MetadataOverhead,
		"twosite":        experiments.TwoSiteTopology,
		"visibility":     experiments.VisibilityLatency,
		"chaos":          experiments.Chaos,
	}

	switch *exp {
	case "":
		rs, err := experiments.All()
		if err != nil {
			fatal(err)
		}
		for _, r := range rs {
			fmt.Println(r)
		}
		tr, err := experiments.Throughput(*procs, *ops)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr)
	case "throughput":
		r, err := experiments.Throughput(*procs, *ops)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	default:
		fn, ok := sims[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		r, err := fn()
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmbench:", err)
	os.Exit(1)
}
