package workload

import (
	"reflect"
	"testing"

	"repro/internal/checker"
	"repro/internal/trace"
)

func TestAuditTraceIsCleanByConstruction(t *testing.T) {
	log, err := AuditTrace(AuditTraceConfig{
		Procs: 4, Vars: 8, Ops: 2_000, WriteRatio: 0.5, DelayEvery: 7, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := checker.Audit(log)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() || !rep.ExactlyOnce() {
		t.Fatalf("synthetic trace audits dirty: %v", rep)
	}
	if len(rep.Delays) == 0 {
		t.Fatal("DelayEvery > 0 produced no delays")
	}
	if rep.NecessaryDelays == 0 || rep.UnnecessaryDelays == 0 {
		t.Fatalf("want a mix of delay classes, got necessary=%d unnecessary=%d",
			rep.NecessaryDelays, rep.UnnecessaryDelays)
	}
}

func TestAuditTraceNoBuffering(t *testing.T) {
	log, err := AuditTrace(AuditTraceConfig{
		Procs: 3, Vars: 4, Ops: 600, WriteRatio: 0.5, DelayEvery: 0, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := log.DelayCount(); n != 0 {
		t.Fatalf("DelayEvery=0 produced %d buffered receipts", n)
	}
	rep, err := checker.Audit(log)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() {
		t.Fatalf("unbuffered trace audits dirty: %v", rep)
	}
}

func TestAuditTraceDeterministic(t *testing.T) {
	cfg := AuditTraceConfig{Procs: 3, Vars: 4, Ops: 500, WriteRatio: 0.6, DelayEvery: 5, Seed: 42}
	a, err := AuditTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AuditTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed produced different logs")
	}
}

func TestAuditTraceEventBudget(t *testing.T) {
	cfg := AuditTraceConfig{Procs: 4, Vars: 8, Ops: 1_000, WriteRatio: 0.5, DelayEvery: 7, Seed: 3}
	log, err := AuditTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, e := range log.Events {
		if e.Kind == trace.Issue {
			writes++
		}
	}
	// Ops issue events/returns + per remote process one receipt and one
	// apply per write.
	want := cfg.Ops + 2*writes*(cfg.Procs-1)
	if len(log.Events) != want {
		t.Fatalf("got %d events, want %d (%d writes)", len(log.Events), want, writes)
	}
}

func TestAuditTraceValidate(t *testing.T) {
	bad := []AuditTraceConfig{
		{Procs: 0, Vars: 1, Ops: 10},
		{Procs: 2, Vars: 0, Ops: 10},
		{Procs: 2, Vars: 1, Ops: -1},
		{Procs: 2, Vars: 1, Ops: 10, WriteRatio: 1.5},
		{Procs: 2, Vars: 1, Ops: 10, DelayEvery: -1},
		{Procs: 1, Vars: 1, Ops: 2_000_000, WriteRatio: 1},
	}
	for i, cfg := range bad {
		if _, err := AuditTrace(cfg); err == nil {
			t.Errorf("config %d: want error, got nil", i)
		}
	}
}
