package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Diagram renders the run as an ASCII space-time table — one column
// per process, one row per (virtual) timestamp at which anything
// happened — the textual cousin of the paper's Figures 3 and 6.
//
// Event notation:
//
//	w x2=5        write issued locally (and applied)
//	->w1#2        update broadcast
//	?w1#2         receipt, immediately deliverable
//	?w1#2 BUF     receipt, buffered (a write delay, Definition 3)
//	+w1#2         apply of a remote update
//	r x2=5        read returning 5
//	~w1#2         logical apply of a skipped write (writing semantics)
//	xw1#2         late message of a skipped write dropped
//	tok           token event
type Diagram struct {
	// MaxRows truncates the table (0 = no limit).
	MaxRows int
}

// Render produces the diagram for log.
func (d Diagram) Render(log *Log) string {
	type cellKey struct {
		t int64
		p int
	}
	cells := make(map[cellKey][]string)
	timesSeen := make(map[int64]bool)
	for _, e := range log.Events {
		k := cellKey{e.Time, e.Proc}
		cells[k] = append(cells[k], eventLabel(e))
		timesSeen[e.Time] = true
	}
	times := make([]int64, 0, len(timesSeen))
	for t := range timesSeen {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if d.MaxRows > 0 && len(times) > d.MaxRows {
		times = times[:d.MaxRows]
	}

	// Column widths.
	widths := make([]int, log.NumProcs)
	for p := range widths {
		widths[p] = len(fmt.Sprintf("p%d", p+1))
	}
	rows := make([][]string, len(times))
	for i, t := range times {
		row := make([]string, log.NumProcs)
		for p := 0; p < log.NumProcs; p++ {
			row[p] = strings.Join(cells[cellKey{t, p}], "  ")
			if len(row[p]) > widths[p] {
				widths[p] = len(row[p])
			}
		}
		rows[i] = row
	}
	timeW := len("time")
	for _, t := range times {
		if w := len(fmt.Sprintf("%d", t)); w > timeW {
			timeW = w
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%*s", timeW, "time")
	for p := 0; p < log.NumProcs; p++ {
		fmt.Fprintf(&b, " | %-*s", widths[p], fmt.Sprintf("p%d", p+1))
	}
	b.WriteByte('\n')
	total := timeW
	for _, w := range widths {
		total += 3 + w
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for i, t := range times {
		fmt.Fprintf(&b, "%*d", timeW, t)
		for p := 0; p < log.NumProcs; p++ {
			fmt.Fprintf(&b, " | %-*s", widths[p], rows[i][p])
		}
		b.WriteByte('\n')
	}
	if d.MaxRows > 0 && len(timesSeen) > d.MaxRows {
		fmt.Fprintf(&b, "... (%d more timestamps)\n", len(timesSeen)-d.MaxRows)
	}
	return b.String()
}

func eventLabel(e Event) string {
	switch e.Kind {
	case Issue:
		return fmt.Sprintf("w x%d=%d", e.Var+1, e.Val)
	case Send:
		return fmt.Sprintf("->%v", e.Write)
	case Receipt:
		if e.Buffered {
			return fmt.Sprintf("?%v BUF", e.Write)
		}
		return fmt.Sprintf("?%v", e.Write)
	case Apply:
		return fmt.Sprintf("+%v", e.Write)
	case Return:
		return fmt.Sprintf("r x%d=%d", e.Var+1, e.Val)
	case Discard:
		return fmt.Sprintf("~%v", e.Write)
	case Drop:
		return fmt.Sprintf("x%v", e.Write)
	case Token:
		return "tok"
	default:
		return e.Kind.String()
	}
}
