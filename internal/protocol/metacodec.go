package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/vclock"
)

// Causality-metadata codec: a per-link, mode-tagged encoding of the
// clock field of protocol updates. Every other Update field keeps the
// plain layout of codec.go; only the clock — the O(P) part — changes
// shape. Each encoded clock leads with a one-byte-uvarint tag:
//
//	0 dense — the plain vclock wire encoding (self-describing)
//	1 delta — signed per-link delta against the last clock shipped on
//	          this link, prefixed by a one-byte checksum of the base
//	          (desync on a link then fails loudly as ErrClockResync
//	          instead of silently reconstructing a wrong clock)
//	2 stab  — the stabilization scalar-plus-residuals encoding
//
// Tags are self-describing, so a decoder needs no mode configuration:
// any receiver decodes any sender's choice, and MetaAuto senders pick
// per message. Link state on both sides is one vclock.Adaptive — the
// last clock carried by the link — which follows the CausalMesh
// plain↔compressed density flip, so quiet links cost O(nnz) memory.
//
// Resync is structural: encoder and decoder state are created together
// with the link (one TCP connection, one in-process channel pair, one
// simulator link) and advance in lockstep because links are FIFO. A
// reconnect tears both down and recreates both at zero — the first
// message after a resync simply rides a self-describing tag (dense or
// stab) until the new base is established. WAL replay and anti-entropy
// never see this codec: durable state uses the plain encoding.

// MetaMode selects the causality-metadata codec of a transport link.
type MetaMode uint8

// The codec modes. MetaOff is the zero value: the legacy untagged wire
// format, byte-identical to Update.AppendBinary.
const (
	MetaOff MetaMode = iota
	// MetaDelta always ships per-link signed deltas (falling back to
	// dense on the first message of a link or a dimension change).
	MetaDelta
	// MetaStab always ships the stabilization scalar encoding.
	MetaStab
	// MetaAuto picks the smallest of dense, delta and stab per message.
	MetaAuto
)

// String implements fmt.Stringer.
func (m MetaMode) String() string {
	switch m {
	case MetaOff:
		return "off"
	case MetaDelta:
		return "delta"
	case MetaStab:
		return "stab"
	case MetaAuto:
		return "auto"
	default:
		return fmt.Sprintf("MetaMode(%d)", uint8(m))
	}
}

// Enabled reports whether the mode engages the codec at all.
func (m MetaMode) Enabled() bool { return m != MetaOff }

// Valid reports whether m is one of the defined modes.
func (m MetaMode) Valid() bool { return m <= MetaAuto }

// ParseMetaMode parses a -meta-codec flag value.
func ParseMetaMode(s string) (MetaMode, error) {
	for _, m := range []MetaMode{MetaOff, MetaDelta, MetaStab, MetaAuto} {
		if s == m.String() {
			return m, nil
		}
	}
	return MetaOff, fmt.Errorf("protocol: unknown meta codec %q (want off, delta, stab or auto)", s)
}

// Clock encoding tags (uvarint, first byte of an encoded clock).
const (
	clockTagDense = 0
	clockTagDelta = 1
	clockTagStab  = 2
)

// ErrClockResync reports a delta-tagged clock whose link base does not
// match the encoder's — the receiver must tear the link down and resync
// (fresh encoder and decoder) rather than trust the reconstruction.
var ErrClockResync = errors.New("protocol: clock delta against out-of-sync link base")

// UpdateEncoder encodes the updates of one (sender, receiver) link.
// Not safe for concurrent use; transports hold one per link under the
// link's send serialization.
type UpdateEncoder struct {
	mode MetaMode
	base vclock.Adaptive
	// clockLen reports the clock-field size of the last Append, for the
	// transports' meta-vs-payload byte accounting.
	clockLen int
}

// NewUpdateEncoder returns a fresh encoder (zero link base) for mode.
func NewUpdateEncoder(mode MetaMode) *UpdateEncoder {
	return &UpdateEncoder{mode: mode}
}

// Mode returns the encoder's configured mode.
func (e *UpdateEncoder) Mode() MetaMode { return e.mode }

// Reset forgets the link base — the sender half of a link resync. The
// matching decoder must be Reset (or recreated) too.
func (e *UpdateEncoder) Reset() { e.base.Reset() }

// Append appends the encoding of u to dst and returns the extended
// slice plus the byte size of the clock field (tag included) — the
// message's metadata share. With MetaOff the output is byte-identical
// to u.AppendBinary and the clock size is the plain encoding's.
func (e *UpdateEncoder) Append(dst []byte, u Update) ([]byte, int) {
	if e.mode == MetaOff {
		out := u.AppendBinary(dst)
		return out, u.Clock.EncodedSize()
	}
	out := u.appendWith(dst, func(c vclock.VC, b []byte) []byte {
		start := len(b)
		b = e.appendClock(b, c)
		e.clockLen = len(b) - start
		return b
	})
	return out, e.clockLen
}

// appendClock emits one tagged clock and advances the link base.
func (e *UpdateEncoder) appendClock(dst []byte, c vclock.VC) []byte {
	if len(c) == 0 {
		// Empty clock (markers): a two-byte dense encoding, and the
		// link base is left alone so the delta chain survives markers.
		dst = binary.AppendUvarint(dst, clockTagDense)
		return c.AppendBinary(dst)
	}
	deltaOK := e.base.Dim() == len(c)
	tag := clockTagDense
	switch e.mode {
	case MetaDelta:
		if deltaOK {
			tag = clockTagDelta
		}
	case MetaStab:
		tag = clockTagStab
	case MetaAuto:
		best := c.EncodedSize()
		if s := vclock.StabSize(c); s < best {
			best, tag = s, clockTagStab
		}
		if deltaOK {
			// +1 for the base checksum byte.
			if s := e.base.DeltaSignedSize(c) + 1; s < best {
				tag = clockTagDelta
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(tag))
	switch tag {
	case clockTagDense:
		dst = c.AppendBinary(dst)
	case clockTagDelta:
		dst = append(dst, e.base.Checksum())
		dst = e.base.AppendDeltaSigned(dst, c)
	case clockTagStab:
		dst = vclock.AppendStab(dst, c)
	}
	e.base.CopyFrom(c)
	return dst
}

// UpdateDecoder decodes the updates of one (sender, receiver) link.
// Not safe for concurrent use; transports hold one per inbound link
// (one per connection on a real network).
type UpdateDecoder struct {
	mode     MetaMode
	base     vclock.Adaptive
	clockLen int
}

// NewUpdateDecoder returns a fresh decoder (zero link base) for mode.
// Only MetaOff vs enabled matters on the decode side — tags are
// self-describing — but carrying the mode keeps construction symmetric
// with the encoder and lets one call site serve both wire formats.
func NewUpdateDecoder(mode MetaMode) *UpdateDecoder {
	return &UpdateDecoder{mode: mode}
}

// Reset forgets the link base — the receiver half of a link resync.
func (d *UpdateDecoder) Reset() { d.base.Reset() }

// Decode decodes one update from the front of buf, returning it, the
// bytes consumed, and the byte size of the clock field (tag included).
func (d *UpdateDecoder) Decode(buf []byte) (Update, int, int, error) {
	if d.mode == MetaOff {
		u, n, err := DecodeUpdate(buf)
		if err != nil {
			return u, 0, 0, err
		}
		return u, n, u.Clock.EncodedSize(), nil
	}
	d.clockLen = 0
	u, n, err := decodeUpdateWith(buf, func(b []byte) (vclock.VC, int, error) {
		c, k, err := d.decodeClock(b)
		d.clockLen = k
		return c, k, err
	})
	if err != nil {
		return u, 0, 0, err
	}
	return u, n, d.clockLen, nil
}

// decodeClock reads one tagged clock and advances the link base.
func (d *UpdateDecoder) decodeClock(buf []byte) (vclock.VC, int, error) {
	tag, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, vclock.ErrTruncated
	}
	off := k
	var c vclock.VC
	var n int
	var err error
	switch tag {
	case clockTagDense:
		c, n, err = vclock.DecodeVC(buf[off:])
	case clockTagDelta:
		if off >= len(buf) {
			return nil, 0, vclock.ErrTruncated
		}
		sum := buf[off]
		off++
		if d.base.Dim() == 0 {
			return nil, 0, fmt.Errorf("%w: no base on this link", ErrClockResync)
		}
		if d.base.Checksum() != sum {
			return nil, 0, fmt.Errorf("%w: base checksum %#x, frame expects %#x",
				ErrClockResync, d.base.Checksum(), sum)
		}
		c, n, err = d.base.DecodeDeltaSigned(buf[off:])
	case clockTagStab:
		c, n, err = vclock.DecodeStab(buf[off:])
	default:
		return nil, 0, fmt.Errorf("vclock: unknown clock tag %d", tag)
	}
	if err != nil {
		return nil, 0, err
	}
	if len(c) > 0 {
		d.base.CopyFrom(c)
	}
	return c, off + n, nil
}
