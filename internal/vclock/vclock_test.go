package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(5)
	if v.Len() != 5 {
		t.Fatalf("Len = %d, want 5", v.Len())
	}
	if !v.IsZero() {
		t.Fatalf("New(5) not zero: %v", v)
	}
	if v.Sum() != 0 {
		t.Fatalf("Sum = %d, want 0", v.Sum())
	}
}

func TestCloneIndependence(t *testing.T) {
	v := VC{1, 2, 3}
	c := v.Clone()
	c.Tick(0)
	if v[0] != 1 {
		t.Fatalf("Clone aliases original: %v", v)
	}
	if c[0] != 2 {
		t.Fatalf("Tick on clone = %d, want 2", c[0])
	}
	var nilVC VC
	if nilVC.Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestCopyFrom(t *testing.T) {
	v := VC{9, 9, 9}
	src := VC{1, 2, 3}
	v.CopyFrom(src)
	if !v.Equal(src) {
		t.Fatalf("CopyFrom: got %v, want %v", v, src)
	}
	// In-place semantics: the destination's backing array is reused and
	// stays independent of the source afterwards.
	src.Tick(0)
	if v[0] != 1 {
		t.Fatalf("CopyFrom aliases source: %v", v)
	}
	v.Tick(1)
	if src[1] != 2 {
		t.Fatalf("CopyFrom aliases destination: %v", src)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom dimension mismatch should panic")
		}
	}()
	v.CopyFrom(VC{1})
}

func TestGetOutOfRange(t *testing.T) {
	v := VC{7}
	if v.Get(0) != 7 {
		t.Fatalf("Get(0) = %d", v.Get(0))
	}
	if v.Get(1) != 0 || v.Get(-1) != 0 {
		t.Fatal("out-of-range Get should be 0")
	}
}

func TestTick(t *testing.T) {
	v := New(3)
	if got := v.Tick(1); got != 1 {
		t.Fatalf("Tick = %d, want 1", got)
	}
	if got := v.Tick(1); got != 2 {
		t.Fatalf("Tick = %d, want 2", got)
	}
	if !v.Equal(VC{0, 2, 0}) {
		t.Fatalf("after ticks: %v", v)
	}
}

func TestMerge(t *testing.T) {
	a := VC{1, 5, 0}
	b := VC{3, 2, 0}
	a.Merge(b)
	if !a.Equal(VC{3, 5, 0}) {
		t.Fatalf("Merge = %v", a)
	}
	if !b.Equal(VC{3, 2, 0}) {
		t.Fatalf("Merge mutated argument: %v", b)
	}
}

func TestMergeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	a := VC{1}
	a.Merge(VC{1, 2})
}

func TestMaxFresh(t *testing.T) {
	a := VC{1, 2}
	b := VC{2, 1}
	c := Max(a, b)
	if !c.Equal(VC{2, 2}) {
		t.Fatalf("Max = %v", c)
	}
	c.Tick(0)
	if a[0] != 1 || b[0] != 2 {
		t.Fatal("Max aliases an input")
	}
}

func TestCompareTable(t *testing.T) {
	cases := []struct {
		a, b VC
		want Ordering
	}{
		{VC{0, 0}, VC{0, 0}, Equal},
		{VC{1, 0}, VC{1, 0}, Equal},
		{VC{1, 0}, VC{1, 1}, Before},
		{VC{1, 1}, VC{1, 0}, After},
		{VC{1, 0}, VC{0, 1}, Concurrent},
		{VC{2, 1, 0}, VC{1, 2, 0}, Concurrent},
		{VC{1, 1, 1}, VC{2, 2, 2}, Before},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(6)
		a, b := New(n), New(n)
		for j := 0; j < n; j++ {
			a[j] = uint64(rng.Intn(4))
			b[j] = uint64(rng.Intn(4))
		}
		ord := a.Compare(b)
		switch {
		case a.Equal(b):
			if ord != Equal {
				t.Fatalf("%v vs %v: ord %v, want Equal", a, b, ord)
			}
		case a.Less(b):
			if ord != Before {
				t.Fatalf("%v vs %v: ord %v, want Before", a, b, ord)
			}
		case b.Less(a):
			if ord != After {
				t.Fatalf("%v vs %v: ord %v, want After", a, b, ord)
			}
		default:
			if ord != Concurrent || !a.Concurrent(b) {
				t.Fatalf("%v vs %v: ord %v, want Concurrent", a, b, ord)
			}
		}
	}
}

func TestOrderingString(t *testing.T) {
	for ord, want := range map[Ordering]string{Equal: "=", Before: "<", After: ">", Concurrent: "||"} {
		if ord.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(ord), ord.String(), want)
		}
	}
	if got := Ordering(99).String(); got != "Ordering(99)" {
		t.Errorf("unknown ordering String = %q", got)
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 0, 12}).String(); got != "[1 0 12]" {
		t.Fatalf("String = %q", got)
	}
	if got := (VC{}).String(); got != "[]" {
		t.Fatalf("empty String = %q", got)
	}
}

// quickVC adapts random byte seeds to small clocks for testing/quick.
func quickVC(n int, seed int64) VC {
	rng := rand.New(rand.NewSource(seed))
	v := New(n)
	for i := range v {
		v[i] = uint64(rng.Intn(8))
	}
	return v
}

// Property: Merge is the least upper bound — it dominates both inputs
// and is dominated by every common upper bound candidate we can build.
func TestQuickMergeIsLUB(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := quickVC(4, sa), quickVC(4, sb)
		m := Max(a, b)
		if !a.LessEq(m) || !b.LessEq(m) {
			return false
		}
		// Any upper bound u of {a,b} must dominate m.
		u := Max(a, b)
		u.Tick(0)
		return m.LessEq(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric — swapping arguments maps
// Before↔After and fixes Equal/Concurrent.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := quickVC(5, sa), quickVC(5, sb)
		x, y := a.Compare(b), b.Compare(a)
		switch x {
		case Equal:
			return y == Equal
		case Before:
			return y == After
		case After:
			return y == Before
		default:
			return y == Concurrent
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: < is transitive.
func TestQuickLessTransitive(t *testing.T) {
	f := func(sa, sb, sc int64) bool {
		a, b, c := quickVC(4, sa), quickVC(4, sb), quickVC(4, sc)
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is commutative, associative, idempotent.
func TestQuickMergeAlgebra(t *testing.T) {
	f := func(sa, sb, sc int64) bool {
		a, b, c := quickVC(4, sa), quickVC(4, sb), quickVC(4, sc)
		if !Max(a, b).Equal(Max(b, a)) {
			return false
		}
		if !Max(Max(a, b), c).Equal(Max(a, Max(b, c))) {
			return false
		}
		return Max(a, a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDominatesTable(t *testing.T) {
	cases := []struct {
		a, b VC
		want bool
	}{
		{VC{}, VC{}, true},
		{VC{0, 0}, VC{0, 0}, true},
		{VC{2, 3}, VC{2, 3}, true},
		{VC{2, 3}, VC{1, 3}, true},
		{VC{2, 3}, VC{2, 4}, false},
		{VC{2, 0}, VC{0, 1}, false},
		{VC{5, 5, 5}, VC{0, 5, 6}, false},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%v.Dominates(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	VC{1, 2}.Dominates(VC{1})
}

func TestConcurrentWithDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	VC{1, 2}.ConcurrentWith(VC{1})
}

// The fast paths must agree with the Compare-derived definitions on
// random clocks.
func TestQuickFastPathsMatchCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		n := 1 + rng.Intn(6)
		a, b := New(n), New(n)
		for k := 0; k < n; k++ {
			a[k] = uint64(rng.Intn(4))
			b[k] = uint64(rng.Intn(4))
		}
		if got, want := a.Dominates(b), b.LessEq(a); got != want {
			t.Fatalf("%v.Dominates(%v) = %v, want %v", a, b, got, want)
		}
		if got, want := a.ConcurrentWith(b), a.Compare(b) == Concurrent; got != want {
			t.Fatalf("%v.ConcurrentWith(%v) = %v, want %v", a, b, got, want)
		}
	}
}

// benchClockPair builds two comparable 8-component clocks that differ
// only in a late component, forcing full scans.
func benchClockPair() (VC, VC) {
	a, b := New(8), New(8)
	for i := range a {
		a[i] = uint64(i + 2)
		b[i] = uint64(i + 1)
	}
	return a, b
}

func BenchmarkDominates(b *testing.B) {
	b.ReportAllocs()
	x, y := benchClockPair()
	for i := 0; i < b.N; i++ {
		if !x.Dominates(y) {
			b.Fatal("x must dominate y")
		}
	}
}

func BenchmarkConcurrentWith(b *testing.B) {
	b.ReportAllocs()
	x, y := benchClockPair()
	y[7] = 100 // one component each way: concurrent
	for i := 0; i < b.N; i++ {
		if !x.ConcurrentWith(y) {
			b.Fatal("x must be concurrent with y")
		}
	}
}
