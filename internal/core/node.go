package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/durability"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Node is one process of a live cluster: a full replica of the shared
// variables plus the protocol state machine driving it. All methods are
// safe for concurrent use.
type Node struct {
	c  *Cluster
	id int

	// down is the crash-stop flag: set under mu by Crash, read by the
	// delivery path (atomically, so handle can drop frames for a down
	// process without contending on mu during catch-up).
	down atomic.Bool

	// mu serializes replica access; lock order is Node.mu before
	// Cluster.mu, never the reverse.
	mu      sync.Mutex
	replica protocol.Replica
	// pending holds buffered (delayed) updates indexed by origin and
	// write ID, so duplicate checks are O(1) and drain re-examines only
	// the updates a state advance could have unblocked. Nil while the
	// node is crash-stopped.
	pending *pendingSet

	// wal is the node's journal when crash recovery is enabled; walErr
	// latches the first journaling failure and poisons later writes.
	wal    *durability.WAL
	walErr error

	// archive holds, per origin process, every update installed or
	// produced here, in delivery order — the store anti-entropy serves
	// to a recovering peer. Only populated when recovery is enabled.
	archive [][]protocol.Update

	// fw notifies frontier-admission waiters (the serving tier) of
	// frontier-affecting changes; see frontierWaiters.
	fw frontierWaiters

	// readWaiters routes forwarded-read replies back to their blocked
	// readers, keyed by request token (the negated ReadReq seq).
	// Guarded by mu; nil until the first forwarded read.
	readWaiters map[int]chan readReply

	// outbox collects read replies produced while holding mu; handle
	// sends them after unlocking, so a full FIFO link can never block a
	// lock holder a delivery goroutine is waiting on. Guarded by mu.
	outbox []outMsg
}

// outMsg is a deferred transport send (see Node.outbox).
type outMsg struct {
	to int
	u  protocol.Update
}

// ID returns the node's 0-based process index.
func (n *Node) ID() int { return n.id }

// Write performs w_p(x)v: it applies locally (wait-free) and broadcasts
// the update asynchronously. On a crash-stopped node it returns ErrDown.
func (n *Node) Write(x int, v int64) error {
	if err := n.check(x); err != nil {
		return err
	}
	n.mu.Lock()
	if n.down.Load() {
		n.mu.Unlock()
		return fmt.Errorf("write at p%d: %w", n.id+1, ErrDown)
	}
	if err := n.walErr; err != nil {
		n.mu.Unlock()
		return fmt.Errorf("core: p%d journal failed, refusing writes: %w", n.id+1, err)
	}
	u, broadcast := n.replica.LocalWrite(x, v)
	n.journalLocked(durability.Entry{Kind: durability.EntryLocalWrite, Var: x, Val: v})
	if broadcast {
		n.archiveLocked(u)
	} else {
		// Count the deferred write before its Issue becomes visible:
		// a Quiesce poll must never see the write without the unsent
		// obligation that keeps the cluster non-quiescent.
		n.c.noteDeferred(n.id)
	}
	now := n.c.now()
	n.c.appendEvent(trace.Event{
		Kind: trace.Issue, Proc: n.id, Time: now,
		Write: u.ID, Var: x, Val: v,
	})
	if broadcast {
		n.c.appendEvent(trace.Event{
			Kind: trace.Send, Proc: n.id, Time: now,
			Write: u.ID, Var: x, Val: v,
		})
	}
	// The local apply advanced this replica's frontier; wake admission
	// waiters it satisfied.
	n.wakeFrontierLocked()
	n.mu.Unlock()
	// Broadcast outside the node lock: a full FIFO link must never
	// block a holder of n.mu that a delivery goroutine is waiting for.
	// Under partial replication only the share-set gets the update.
	if broadcast {
		if n.c.shares.IsZero() {
			transport.Broadcast(n.c.tr, n.c.cfg.Processes, n.id, u)
		} else {
			transport.Multicast(n.c.tr, n.id, n.c.shares.Replicas(x), u)
		}
	}
	return nil
}

// Read performs r_p(x) against the local replica (wait-free).
func (n *Node) Read(x int) (int64, error) {
	v, _, err := n.ReadMeta(x)
	return v, err
}

// ReadMeta is Read plus the identity of the write that produced the
// value (history.Bottom for the initial ⊥). Under partial replication a
// read of a variable this process does not replicate forwards to a
// replicating server and blocks until the reply (or cluster close).
func (n *Node) ReadMeta(x int) (int64, history.WriteID, error) {
	if err := n.check(x); err != nil {
		return 0, history.Bottom, err
	}
	n.mu.Lock()
	if n.down.Load() {
		n.mu.Unlock()
		return 0, history.Bottom, fmt.Errorf("read at p%d: %w", n.id+1, ErrDown)
	}
	if rr, ok := n.replica.(protocol.RemoteReader); ok && !rr.LocalVar(x) {
		return n.readRemote(rr, x) // takes over (and releases) n.mu
	}
	v, from := n.replica.Read(x)
	// OptP-family reads mutate Write_co (read-merge); journal them or a
	// recovered replica under-approximates its →co knowledge.
	if n.c.cfg.Protocol.ReadMutatesState() {
		n.journalLocked(durability.Entry{Kind: durability.EntryRead, Var: x})
	}
	n.c.appendEvent(trace.Event{
		Kind: trace.Return, Proc: n.id, Time: n.c.now(),
		Var: x, Val: v, From: from,
	})
	n.mu.Unlock()
	return v, from, nil
}

// readReply pairs a forwarded-read reply with whether it had to wait
// in the pending buffer for in-flight writes addressed to the
// requester — the requester-side read delay of E-partial.
type readReply struct {
	u        protocol.Update
	buffered bool
}

// readRemote forwards a read of non-replicated x to its deterministic
// serving replica and parks until the reply routes back through handle.
// Entered holding n.mu; returns with it released. The reply channel is
// buffered so a reply landing after a close-abort is simply dropped.
func (n *Node) readRemote(rr protocol.RemoteReader, x int) (int64, history.WriteID, error) {
	req, server := rr.NewReadReq(x)
	tok := -req.ID.Seq
	ch := make(chan readReply, 1)
	if n.readWaiters == nil {
		n.readWaiters = make(map[int]chan readReply)
	}
	n.readWaiters[tok] = ch
	n.c.appendEvent(trace.Event{
		Kind: trace.ReadFwd, Proc: n.id, Time: n.c.now(),
		Write: req.ID, Var: x,
	})
	n.mu.Unlock()
	n.c.tr.Send(transport.Message{From: n.id, To: server, Update: req})
	select {
	case reply := <-ch:
		n.mu.Lock()
		v, from := rr.CompleteRead(reply.u)
		n.c.appendEvent(trace.Event{
			Kind: trace.Return, Proc: n.id, Time: n.c.now(),
			Var: x, Val: v, From: from, Buffered: reply.buffered,
		})
		n.mu.Unlock()
		return v, from, nil
	case <-n.c.readAbort:
		n.mu.Lock()
		delete(n.readWaiters, tok)
		n.mu.Unlock()
		return 0, history.Bottom, fmt.Errorf("read at p%d: %w", n.id+1, ErrClosed)
	}
}

// Clock returns a copy of the replica's primary control vector
// (Write_co for OptP).
func (n *Node) Clock() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replica.(protocol.Introspector).ControlClock()
}

// Frontier returns a copy of the replica's applied-writes vector:
// component j counts writes issued by p_j applied (or logically
// applied) here. The serving tier derives session tokens from it. On
// a crash-stopped node it returns nil.
func (n *Node) Frontier() vclock.VC {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down.Load() {
		return nil
	}
	return n.replica.(protocol.Introspector).ApplyClock()
}

// FrontierDominates reports whether the applied frontier covers t
// component-wise — the session-token admission test of the serving
// tier: a read may be served once the replica has applied everything
// the session observed. The query is allocation-free for the built-in
// protocols. t must have dimension Processes; a crash-stopped node
// dominates nothing.
func (n *Node) FrontierDominates(t vclock.VC) bool {
	if len(t) == 0 {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.frontierDominatesLocked(t)
}

// PendingUpdates returns the current number of buffered (delayed)
// updates at this node.
func (n *Node) PendingUpdates() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pending.size()
}

func (n *Node) check(x int) error {
	if n.c.closed.Load() {
		return ErrClosed
	}
	if x < 0 || x >= n.c.cfg.Variables {
		return fmt.Errorf("%w: x%d of %d", ErrBadVariable, x+1, n.c.cfg.Variables)
	}
	return nil
}

// handle is the transport delivery callback.
func (n *Node) handle(m transport.Message) {
	if m.Heartbeat {
		if !n.down.Load() && n.c.det != nil {
			n.c.det.Heard(n.id, m.From)
		}
		return
	}
	if n.down.Load() {
		return // crash-stop: in-flight messages are dropped
	}
	n.mu.Lock()
	if n.down.Load() {
		n.mu.Unlock()
		return
	}
	u := m.Update
	if u.ReadReply {
		// A reply whose matrix covers writes addressed *here* that are
		// still in flight must wait for them — the mirror of the
		// server-side request wait. Merging it early would stamp the
		// reader's next write ahead of those stragglers at remote
		// replicas, inverting →co. Park it with the write buffer; the
		// apply that satisfies it routes it onward via the drain.
		if n.replica.Status(u) != protocol.Deliverable {
			n.pending.add(u)
			n.mu.Unlock()
			return
		}
		// Route the reply to its parked reader; deliver outside the
		// lock (the channel is buffered, so this never blocks).
		tok := -u.ID.Seq
		ch, ok := n.readWaiters[tok]
		if ok {
			delete(n.readWaiters, tok)
		}
		n.mu.Unlock()
		if ok {
			ch <- readReply{u: u}
		}
		return
	}
	if u.ReadReq {
		// Forwarded-read requests bypass the receipt state machine: a
		// deliverable request is served now, a blocked one parks in
		// pending until the requester's causal past applies here.
		if n.replica.Status(u) == protocol.Deliverable {
			n.serveReadLocked(u, false)
		} else {
			n.pending.add(u)
		}
	} else {
		n.receiveLocked(u)
		n.drainLocked()
	}
	out := n.outbox
	n.outbox = nil
	n.mu.Unlock()
	for _, om := range out {
		n.c.tr.Send(transport.Message{From: n.id, To: om.to, Update: om.u})
	}
}

// serveReadLocked answers a deliverable forwarded-read request,
// queueing the reply on the outbox (sent by handle after unlock).
// buffered marks requests that had to wait for the requester's causal
// past — the read-delay count of E-partial. Caller holds n.mu.
func (n *Node) serveReadLocked(req protocol.Update, buffered bool) {
	reply := n.replica.(protocol.RemoteReader).ServeRead(req)
	n.c.appendEvent(trace.Event{
		Kind: trace.ReadServe, Proc: n.id, Time: n.c.now(),
		Write: req.ID, Var: req.Var, Val: reply.Val, From: reply.Prev,
		Buffered: buffered,
	})
	n.outbox = append(n.outbox, outMsg{to: req.ID.Proc, u: reply})
}

// completeReadLocked hands a now-deliverable parked reply to its
// blocked reader, marking the requester-side read delay. The waiter
// channel is buffered, so the send never blocks a lock holder; a
// reader that already aborted just leaves no waiter. Caller holds n.mu.
func (n *Node) completeReadLocked(u protocol.Update) {
	tok := -u.ID.Seq
	if ch, ok := n.readWaiters[tok]; ok {
		delete(n.readWaiters, tok)
		ch <- readReply{u: u, buffered: true}
	}
}

// receiveLocked runs the receipt state machine for one update: record
// the receipt, then buffer, apply, or discard. Both the transport path
// (handle) and anti-entropy catch-up (feedLocked) funnel through it.
// Caller holds n.mu.
func (n *Node) receiveLocked(u protocol.Update) {
	st := n.replica.Status(u)
	if st == protocol.Blocked && n.c.recoveryEnabled() {
		// With crash recovery in play, a blocked update can be a stale
		// duplicate: a retransmission landing after the restart already
		// recovered the write, or a transport delivery overlapping a
		// catch-up feed. Drop it silently — it was already counted.
		if res, ok := n.replica.(protocol.Resumer); ok && !res.NeedsUpdate(u) {
			return
		}
		if n.pending.has(u.ID) {
			return
		}
	}
	// One timestamp covers the whole receipt state machine: the trace's
	// order authority is the journal ticket, and sampling the clock once
	// per message keeps nanotime off the per-event cost.
	now := n.c.now()
	kind := trace.Receipt
	if u.Marker {
		kind = trace.Token
	}
	n.c.appendEvent(trace.Event{
		Kind: kind, Proc: n.id, Time: now,
		Write: u.ID, Var: u.Var, Val: u.Val,
		Buffered: st == protocol.Blocked,
	})
	switch st {
	case protocol.Blocked:
		n.pending.add(u)
	case protocol.Deliverable:
		n.applyLocked(u, now)
	case protocol.Discardable:
		n.dropLocked(u, now)
	}
}

// applyLocked installs u, recording any writing-semantics logical apply
// first, stamping its events with now. Caller holds n.mu.
func (n *Node) applyLocked(u protocol.Update, now int64) {
	if sk, ok := n.replica.(protocol.Skipper); ok {
		if tgt := sk.SkipTarget(u); !tgt.IsBottom() {
			n.c.appendEvent(trace.Event{
				Kind: trace.Discard, Proc: n.id, Time: now, Write: tgt,
			})
		}
	}
	n.replica.Apply(u)
	n.journalLocked(durability.Entry{Kind: durability.EntryApply, Update: u})
	n.archiveLocked(u)
	kind := trace.Apply
	if u.Marker {
		kind = trace.Token
	}
	n.c.appendEvent(trace.Event{
		Kind: kind, Proc: n.id, Time: now,
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
	n.wakeFrontierLocked()
}

// dropLocked discards the late message of an already logically-applied
// write. Caller holds n.mu.
func (n *Node) dropLocked(u protocol.Update, now int64) {
	n.replica.Discard(u)
	n.journalLocked(durability.Entry{Kind: durability.EntryDiscard, Update: u})
	// Archive the dropped message too: its value was skipped here, but
	// a recovering peer that did NOT skip it still needs the payload.
	n.archiveLocked(u)
	n.c.appendEvent(trace.Event{
		Kind: trace.Drop, Proc: n.id, Time: now,
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
	n.wakeFrontierLocked()
}

// drainLocked applies buffered updates until a fixpoint. Caller holds
// n.mu.
//
// The pending set keeps each origin's updates sorted by delivery key,
// and every protocol delivers (or discards / purges) an origin's
// updates in that order: OptP/ANBKH require Apply[from] = seq−1, WSSend
// consumes (round, slot) contiguously, and the writing-semantics skip
// case — an update deliverable over its still-buffered predecessor —
// only ever jumps the immediately preceding update from the same
// origin. So examining the head and head+1 of each origin queue finds
// every actionable update, re-checking an update only when some state
// advance could have unblocked it, instead of the old rescan of the
// whole buffer after every apply. A final full scan at the fixpoint
// guards the invariant: it is expected to find nothing and exists so a
// future protocol with a wilder delivery order degrades to the old
// behaviour instead of wedging.
func (n *Node) drainLocked() {
	purge := n.c.recoveryEnabled()
	res, canResume := n.replica.(protocol.Resumer)
	canPurge := purge && canResume
	ps := n.pending
	for ps.size() > 0 {
		progressed := false
		for origin := range ps.byOrigin {
			for n.drainStepLocked(origin, canPurge, res) {
				progressed = true
			}
		}
		if progressed {
			continue
		}
		if !n.drainScanLocked(canPurge, res) {
			return
		}
	}
}

// drainStepLocked probes the head (and, for the same-origin skip case,
// head+1) of one origin queue, acting on the first actionable update.
// It reports whether it made progress. Caller holds n.mu.
func (n *Node) drainStepLocked(origin int, canPurge bool, res protocol.Resumer) bool {
	q := n.pending.byOrigin[origin]
	for probe := 0; probe < 2 && probe < len(q); probe++ {
		u := q[probe]
		switch n.replica.Status(u) {
		case protocol.Deliverable:
			n.pending.removeAt(origin, probe)
			switch {
			case u.ReadReq:
				n.serveReadLocked(u, true)
			case u.ReadReply:
				n.completeReadLocked(u)
			default:
				n.applyLocked(u, n.c.now())
			}
			return true
		case protocol.Discardable:
			n.pending.removeAt(origin, probe)
			n.dropLocked(u, n.c.now())
			return true
		case protocol.Blocked:
			// A buffered copy can go stale when catch-up installs
			// the same write first; evict it or it rots here.
			if canPurge && !res.NeedsUpdate(u) {
				n.pending.removeAt(origin, probe)
				return true
			}
		}
	}
	return false
}

// drainScanLocked is the fixpoint safety net: one pass over every
// buffered update regardless of queue position. Reports whether it
// acted. Caller holds n.mu.
func (n *Node) drainScanLocked(canPurge bool, res protocol.Resumer) bool {
	for origin := range n.pending.byOrigin {
		for i, u := range n.pending.byOrigin[origin] {
			switch n.replica.Status(u) {
			case protocol.Deliverable:
				n.pending.removeAt(origin, i)
				switch {
				case u.ReadReq:
					n.serveReadLocked(u, true)
				case u.ReadReply:
					n.completeReadLocked(u)
				default:
					n.applyLocked(u, n.c.now())
				}
				return true
			case protocol.Discardable:
				n.pending.removeAt(origin, i)
				n.dropLocked(u, n.c.now())
				return true
			case protocol.Blocked:
				if canPurge && !res.NeedsUpdate(u) {
					n.pending.removeAt(origin, i)
					return true
				}
			}
		}
	}
	return false
}

// feedLocked offers a peer-archived update to this replica during
// anti-entropy catch-up, returning whether it was accepted. Caller
// holds n.mu and follows up with drainLocked.
func (n *Node) feedLocked(u protocol.Update) bool {
	res, ok := n.replica.(protocol.Resumer)
	if !ok || !res.NeedsUpdate(u) {
		return false
	}
	if n.pending.has(u.ID) {
		return false
	}
	n.receiveLocked(u)
	return true
}

// journalLocked appends e to the node's WAL, taking an automatic
// snapshot when the segment outgrows the configured interval. The
// first failure is latched; subsequent Writes surface it. Caller holds
// n.mu.
func (n *Node) journalLocked(e durability.Entry) {
	if n.wal == nil || n.walErr != nil {
		return
	}
	if err := n.wal.Append(e); err != nil {
		n.walErr = err
		return
	}
	if n.wal.Entries() >= n.c.cfg.snapshotInterval() {
		if err := n.wal.Snapshot(n.snapshotLocked()); err != nil {
			n.walErr = err
		}
	}
}

// archiveLocked records u in the per-origin anti-entropy store. Caller
// holds n.mu.
func (n *Node) archiveLocked(u protocol.Update) {
	if n.archive == nil {
		return
	}
	n.archive[u.From()] = append(n.archive[u.From()], u)
}
