// Command dsmbench runs the quantitative experiment sweeps E1–E8 of
// DESIGN.md and prints their tables.
//
// Usage:
//
//	dsmbench                    # run every experiment
//	dsmbench -exp jitter        # one of: jitter, nprocs, mix,
//	                            # falsecausality, buffer, throughput,
//	                            # ws, ablation, metadata, partial,
//	                            # twosite, visibility, chaos, crash,
//	                            # obsoverhead
//	dsmbench -exp smoke         # fast CI subset (visibility, ws,
//	                            # obsoverhead)
//	dsmbench -procs 4 -ops 500  # sizing for -exp throughput
//	dsmbench -exp throughput-smoke -baseline BENCH_throughput.json
//	                            # hot-path scorecard; exits nonzero if
//	                            # ops/s regresses >20% vs the baseline
//	dsmbench -exp audit-scale -baseline BENCH_checker.json
//	                            # offline-audit scorecard (1k/10k/100k
//	                            # synthetic traces; -ops > 100000 appends
//	                            # a rung); exits nonzero if audit time
//	                            # regresses >20% vs the baseline
//	dsmbench -exp metadata -baseline BENCH_metadata.json
//	                            # causality-metadata codec scorecard:
//	                            # clock/wire bytes and codec ns per
//	                            # update at P ∈ {8, 64, 256}; exits
//	                            # nonzero if bytes or time regress >20%
//	                            # or delta/auto stop halving the clock
//	                            # bytes at P=64
//	dsmbench -exp partial -baseline BENCH_replication.json
//	                            # partial-replication scorecard: fan-out
//	                            # (msgs/write), per-process storage and
//	                            # metadata bytes across replication
//	                            # factors r at P ∈ {8, 16}; exits
//	                            # nonzero if fan-out or metadata regress
//	                            # >20% or the 16/4 headline (≤4
//	                            # msgs/write, ≥3.5x storage cut) fails
//	dsmbench -exp service -baseline BENCH_service.json
//	                            # serving-tier scorecard: closed-loop
//	                            # multi-connection load against a live
//	                            # dsmd server over TCP loopback; exits
//	                            # nonzero if ops/s regresses >20%
//	dsmbench -exp service-chaos -baseline BENCH_chaos.json
//	                            # the same closed loop under seeded
//	                            # connection chaos (1% kill, stalls,
//	                            # truncation): ops/s and p99 with the
//	                            # fault-tolerant client absorbing every
//	                            # fault; gates ops/s at 20%, p99 at 2×
//	dsmbench -exp trace -baseline BENCH_service.json -trace-out t.jsonl
//	                            # the service workload with request
//	                            # tracing on: ops/s plus the server's
//	                            # stage-decomposed p99; gated at 5% vs
//	                            # the E-service baseline — the tracing
//	                            # overhead budget. -trace-out dumps the
//	                            # tail-sampled records for cmd/dsmtrace
//	dsmbench -exp chaos         # live OptP over lossy/duplicating links
//	dsmbench -exp crash         # crash-stop + WAL restart, all protocols
//	dsmbench -json out.json     # also write the machine-readable
//	                            # scorecard (schema dsmbench/v1)
//	dsmbench -debug-addr :6060  # serve /metrics, expvar and pprof while
//	                            # the sweeps run
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	procs := flag.Int("procs", 4, "processes for the throughput experiment")
	ops := flag.Int("ops", 1000, "ops per process for the throughput experiment (also ops per session for -exp service); extra ladder rung for audit-scale when > 100000")
	sessions := flag.Int("sessions", 4, "sessions per connection for the service experiment")
	jsonPath := flag.String("json", "", "write the dsmbench/v1 JSON scorecard to this path")
	traceOut := flag.String("trace-out", "", "for -exp trace: dump the tail-sampled request records as JSONL to this path (cmd/dsmtrace input)")
	baselinePath := flag.String("baseline", "", "dsmbench/v1 scorecard to gate against (>20% regression of any experiment present in it fails)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	flag.Parse()

	sims := map[string]func() (experiments.Result, error){
		"jitter":         experiments.Jitter,
		"nprocs":         experiments.ProcCount,
		"mix":            experiments.Mix,
		"falsecausality": experiments.FalseCausalityRate,
		"buffer":         experiments.BufferOccupancy,
		"ws":             experiments.WritingSemantics,
		"ablation":       experiments.Ablation,
		"metadata":       experiments.MetadataCompression,
		"partial":        experiments.PartialReplication,
		"twosite":        experiments.TwoSiteTopology,
		"visibility":     experiments.VisibilityLatency,
		"chaos":          experiments.Chaos,
		"crash":          experiments.CrashRecovery,
		"obsoverhead":    experiments.ObsOverhead,
	}
	// smoke is the CI subset: one simulator sweep, one writing-semantics
	// table, and the obs-overhead benchmark — fast enough for every push,
	// wide enough that the scorecard catches schema and perf drift.
	smoke := []func() (experiments.Result, error){
		experiments.VisibilityLatency, experiments.WritingSemantics, experiments.ObsOverhead,
	}

	if flag.NArg() > 0 {
		usage("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	if *procs < 1 {
		usage("-procs must be at least 1, got %d", *procs)
	}
	if *ops < 1 {
		usage("-ops must be at least 1, got %d", *ops)
	}
	// Validate the output path up front: a sweep can run for minutes,
	// and discovering an unwritable path afterwards wastes all of it.
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			usage("-json: %v", err)
		}
		f.Close()
	}
	// Same reasoning for the baseline: parse it before running anything.
	var baseline experiments.Scorecard
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			usage("-baseline: %v", err)
		}
		baseline, err = experiments.ReadScorecard(f)
		f.Close()
		if err != nil {
			usage("-baseline: %v", err)
		}
	}
	if *debugAddr != "" {
		// The registry only carries what the experiments expose, but the
		// debug server's pprof endpoints profile the whole sweep.
		srv, err := obs.StartDebugServer(*debugAddr, obs.NewRegistry())
		if err != nil {
			usage("-debug-addr: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dsmbench: debug endpoints on http://%s\n", srv.Addr())
	}

	var results []experiments.Result
	run := func(fn func() (experiments.Result, error)) {
		r, err := fn()
		if err != nil {
			fatal(err)
		}
		results = append(results, r)
		fmt.Println(r)
	}

	switch *exp {
	case "":
		rs, err := experiments.All()
		if err != nil {
			fatal(err)
		}
		for _, r := range rs {
			results = append(results, r)
			fmt.Println(r)
		}
		run(func() (experiments.Result, error) { return experiments.Throughput(*procs, *ops) })
	case "throughput":
		run(func() (experiments.Result, error) { return experiments.Throughput(*procs, *ops) })
	case "throughput-smoke":
		run(func() (experiments.Result, error) { return experiments.ThroughputSmoke(*ops) })
	case "audit-scale":
		run(func() (experiments.Result, error) { return experiments.AuditScale(*ops) })
	case "service":
		run(func() (experiments.Result, error) { return experiments.Service(*sessions, *ops) })
	case "service-chaos":
		run(func() (experiments.Result, error) { return experiments.ServiceChaos(*sessions, *ops) })
	case "trace":
		run(func() (experiments.Result, error) {
			if *traceOut == "" {
				return experiments.TraceOverhead(*sessions, *ops)
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				return experiments.Result{}, fmt.Errorf("-trace-out: %w", err)
			}
			r, err := experiments.TraceOverheadRecords(*sessions, *ops, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return r, err
		})
	case "smoke":
		for _, fn := range smoke {
			run(fn)
		}
	default:
		fn, ok := sims[*exp]
		if !ok {
			names := make([]string, 0, len(sims)+2)
			for name := range sims {
				names = append(names, name)
			}
			names = append(names, "throughput", "throughput-smoke", "audit-scale", "service", "service-chaos", "trace", "smoke")
			sort.Strings(names)
			usage("unknown experiment %q (have: %s)", *exp, strings.Join(names, ", "))
		}
		run(fn)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteScorecard(f, results); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	// Gate last so the scorecard artifact is written even when the run
	// regressed — CI wants both the failure and the numbers behind it.
	// Which gates run is decided by what the baseline file records, so
	// one flag serves both the throughput and the audit scorecards.
	if *baselinePath != "" {
		gated := false
		for _, gate := range []struct {
			name  string
			check func([]experiments.Result, experiments.Scorecard, float64) error
		}{
			{experiments.ThroughputSmokeName, experiments.CheckThroughputRegression},
			{experiments.AuditScaleName, experiments.CheckAuditRegression},
			{experiments.ServiceName, experiments.CheckServiceRegression},
			{experiments.ServiceChaosName, experiments.CheckServiceChaosRegression},
			{experiments.MetadataName, experiments.CheckMetadataRegression},
			{experiments.PartialName, experiments.CheckPartialRegression},
		} {
			if !hasExperiment(baseline, gate.name) || !hasResult(results, gate.name) {
				continue
			}
			gated = true
			if err := gate.check(results, baseline, 0.2); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dsmbench: %s within 20%% of %s\n", gate.name, *baselinePath)
		}
		// The tracing-overhead gate compares E-trace against the
		// E-service baseline with a tighter 5% budget: always-on tracing
		// must stay near-free.
		if hasResult(results, experiments.TraceOverheadName) && hasExperiment(baseline, experiments.ServiceName) {
			gated = true
			if err := experiments.CheckTraceOverhead(results, baseline, 0.05); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dsmbench: %s within 5%% of the %s baseline in %s\n",
				experiments.TraceOverheadName, experiments.ServiceName, *baselinePath)
		}
		if !gated {
			fatal(fmt.Errorf("baseline %s gates nothing the current run produced", *baselinePath))
		}
	}
}

// hasExperiment reports whether the scorecard records rows for the
// named experiment.
func hasExperiment(sc experiments.Scorecard, name string) bool {
	for _, r := range sc.Experiments {
		if r.Name == name && len(r.Rows) > 0 {
			return true
		}
	}
	return false
}

// hasResult reports whether the current run produced rows for the
// named experiment.
func hasResult(results []experiments.Result, name string) bool {
	for _, r := range results {
		if r.Name == name && len(r.Rows) > 0 {
			return true
		}
	}
	return false
}

// usage reports a flag error and exits with the conventional usage
// status, instead of surfacing it later as a panic deep in a sweep.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsmbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmbench:", err)
	os.Exit(1)
}
