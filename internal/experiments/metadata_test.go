package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestMetadataSweepShape(t *testing.T) {
	r, err := metadataSweep([]int{4, 8}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != MetadataName {
		t.Fatalf("name = %q", r.Name)
	}
	if len(r.Rows) != 2*len(metaModes) {
		t.Fatalf("got %d rows, want %d", len(r.Rows), 2*len(metaModes))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(r.Header))
		}
		clockB, err := strconv.ParseFloat(row[2], 64)
		if err != nil || clockB <= 0 {
			t.Fatalf("row %v: clock-B/op %q", row, row[2])
		}
		wireB, err := strconv.ParseFloat(row[3], 64)
		if err != nil || wireB < clockB {
			t.Fatalf("row %v: wire-B/op %q below clock bytes", row, row[3])
		}
		if row[1] == "off" {
			if row[4] != "-" {
				t.Fatalf("off row carries a reduction: %v", row)
			}
		} else if !strings.HasSuffix(row[4], "%") {
			t.Fatalf("row %v: reduction %q", row, row[4])
		}
	}
}

func metadataResults(cells map[string][2]string) []Result {
	r := Result{
		Name:   MetadataName,
		Header: []string{"procs", "mode", "clock-B/op", "wire-B/op", "reduction", "codec-ns/op"},
	}
	for key, v := range cells {
		procs, mode, _ := strings.Cut(key, "/")
		r.Rows = append(r.Rows, []string{procs, mode, v[0], "99.0", "-", v[1]})
	}
	return []Result{r}
}

func TestCheckMetadataRegression(t *testing.T) {
	mk := func(deltaClock, deltaNS string) []Result {
		return metadataResults(map[string][2]string{
			"64/off":   {"65.0", "500"},
			"64/delta": {deltaClock, deltaNS},
			"64/auto":  {"13.0", "1500"},
		})
	}
	baseline := Scorecard{Schema: ScorecardSchema, Experiments: mk("16.0", "1000")}

	if err := CheckMetadataRegression(mk("17.0", "1100"), baseline, 0.2); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	if err := CheckMetadataRegression(mk("10.0", "700"), baseline, 0.2); err != nil {
		t.Fatalf("improvement must pass: %v", err)
	}
	if err := CheckMetadataRegression(mk("25.0", "1000"), baseline, 0.2); err == nil {
		t.Fatal("clock-byte regression must fail")
	}
	if err := CheckMetadataRegression(mk("16.0", "2000"), baseline, 0.2); err == nil {
		t.Fatal("ns/op regression must fail")
	}
	// The headline invariant: delta must stay at ≤ half of off's clock
	// bytes at 64 procs even when the baseline also recorded the bloat.
	bloated := Scorecard{Schema: ScorecardSchema, Experiments: mk("60.0", "1000")}
	if err := CheckMetadataRegression(mk("60.0", "1000"), bloated, 0.2); err == nil {
		t.Fatal("compression-claim failure must fail the gate")
	}
	// Disjoint rows are ignored; empty documents are errors.
	other := metadataResults(map[string][2]string{"8/off": {"9.9", "200"}})
	if err := CheckMetadataRegression(other, baseline, 0.2); err != nil {
		t.Fatalf("disjoint rows must pass: %v", err)
	}
	if err := CheckMetadataRegression(nil, baseline, 0.2); err == nil {
		t.Fatal("empty current must fail")
	}
	if err := CheckMetadataRegression(mk("16.0", "1000"), Scorecard{Schema: ScorecardSchema}, 0.2); err == nil {
		t.Fatal("empty baseline must fail")
	}
}
