package service

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// metrics is the serving tier's slice of the shared obs registry:
// per-connection and per-session counters layered on the same
// lock-free primitives the cluster hot path uses. With no registry
// configured every metric still exists (unregistered), so the serving
// path never branches on observability.
type metrics struct {
	connsOpen       *obs.Gauge
	connsTotal      *obs.Counter
	inflight        *obs.Gauge
	requests        [3]*obs.Counter // indexed by request kind
	errsTotal       *obs.Counter
	protoErrs       *obs.Counter
	sendErrs        *obs.Counter
	waitTimeouts    *obs.Counter
	frontierWait    *obs.Histogram
	batches         *obs.Counter
	batchedWrites   *obs.Counter
	coalescedWrites *obs.Counter
	batchSize       *obs.Histogram
	retries         *obs.Counter
	shed            *obs.Counter
	failovers       *obs.Counter
}

// batchSizeBuckets spans the useful MaxBatch range.
var batchSizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// newMetrics builds the metric set, registering on reg when non-nil.
func newMetrics(reg *obs.Registry, proto string) *metrics {
	if reg == nil {
		m := &metrics{
			connsOpen:       &obs.Gauge{},
			connsTotal:      &obs.Counter{},
			inflight:        &obs.Gauge{},
			errsTotal:       &obs.Counter{},
			protoErrs:       &obs.Counter{},
			sendErrs:        &obs.Counter{},
			waitTimeouts:    &obs.Counter{},
			frontierWait:    obs.NewHistogram(nil),
			batches:         &obs.Counter{},
			batchedWrites:   &obs.Counter{},
			coalescedWrites: &obs.Counter{},
			batchSize:       obs.NewHistogram(batchSizeBuckets),
			retries:         &obs.Counter{},
			shed:            &obs.Counter{},
			failovers:       &obs.Counter{},
		}
		for i := range m.requests {
			m.requests[i] = &obs.Counter{}
		}
		return m
	}
	pl := obs.L("protocol", proto)
	m := &metrics{
		connsOpen:       reg.Gauge("dsm_svc_connections_open", "client connections currently open", pl),
		connsTotal:      reg.Counter("dsm_svc_connections_total", "client connections accepted", pl),
		inflight:        reg.Gauge("dsm_svc_requests_inflight", "requests currently being served", pl),
		errsTotal:       reg.Counter("dsm_svc_request_errors_total", "requests answered with a non-OK status", pl),
		protoErrs:       reg.Counter("dsm_svc_protocol_errors_total", "connections dropped for malformed frames", pl),
		sendErrs:        reg.Counter("dsm_svc_send_errors_total", "response writes that failed (dead peer)", pl),
		waitTimeouts:    reg.Counter("dsm_svc_frontier_timeouts_total", "frontier waits that exceeded WaitTimeout", pl),
		frontierWait:    reg.Histogram("dsm_svc_frontier_wait_ns", "time spent waiting for the applied frontier to dominate a session token", nil, pl),
		batches:         reg.Counter("dsm_svc_write_batches_total", "write batches issued by the pumps", pl),
		batchedWrites:   reg.Counter("dsm_svc_batched_writes_total", "writes that went through a pump batch", pl),
		coalescedWrites: reg.Counter("dsm_svc_coalesced_writes_total", "writes collapsed into a same-session overwrite before issue", pl),
		batchSize:       reg.Histogram("dsm_svc_batch_size", "writes per pump batch", batchSizeBuckets, pl),
		retries:         reg.Counter("dsm_svc_retry_total", "retried writes absorbed by the exactly-once window", pl),
		shed:            reg.Counter("dsm_svc_shed_total", "requests fast-rejected by load shedding", pl),
		failovers:       reg.Counter("dsm_svc_failover_total", "reads failed over to a frontier-dominating replica", pl),
	}
	kinds := [3]string{"ping", "read", "write"}
	for i, k := range kinds {
		m.requests[i] = reg.Counter("dsm_svc_requests_total", "requests received", pl, obs.L("kind", k))
	}
	return m
}

// reqKind returns the counter for one request kind.
func (m *metrics) reqKind(k uint8) *obs.Counter {
	if int(k) >= len(m.requests) {
		panic(fmt.Sprintf("service: request kind %d out of range (reqKinds=%d)", k, protocol.ReqWrite+1))
	}
	return m.requests[k]
}
