// Package workload generates the seeded synthetic workloads of the
// experiment sweeps (DESIGN.md E1–E8): per-process operation scripts
// with controllable write ratio, think time, and read locality, plus
// the adversarial patterns that maximize false causality.
//
// Every write carries a globally unique value encoding its WriteID, so
// reconstructed histories always have a well-defined read-from
// relation.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Config parameterizes a random workload.
type Config struct {
	// Procs and Vars size the system.
	Procs, Vars int
	// OpsPerProc is the number of read/write operations per process.
	OpsPerProc int
	// WriteRatio is the probability an operation is a write (0..1).
	WriteRatio float64
	// ThinkMin/ThinkMax bound the uniform think time between
	// operations, in virtual nanoseconds.
	ThinkMin, ThinkMax int64
	// Hot is the probability an operation targets variable 0 (a
	// hotspot); the rest spread uniformly. 0 means uniform access.
	Hot float64
	// Seed drives all randomness.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Procs < 1:
		return fmt.Errorf("workload: Procs = %d", c.Procs)
	case c.Vars < 1:
		return fmt.Errorf("workload: Vars = %d", c.Vars)
	case c.OpsPerProc < 0:
		return fmt.Errorf("workload: OpsPerProc = %d", c.OpsPerProc)
	case c.WriteRatio < 0 || c.WriteRatio > 1:
		return fmt.Errorf("workload: WriteRatio = %f", c.WriteRatio)
	case c.Hot < 0 || c.Hot > 1:
		return fmt.Errorf("workload: Hot = %f", c.Hot)
	case c.ThinkMin < 0 || c.ThinkMax < c.ThinkMin:
		return fmt.Errorf("workload: think time [%d, %d]", c.ThinkMin, c.ThinkMax)
	}
	return nil
}

// Value encodes the globally unique payload of process p's k-th write
// (k starting at 1).
func Value(p, k int) int64 {
	return int64(p)*1_000_000 + int64(k)
}

// Scripts generates one script per process.
func Scripts(cfg Config) ([]sim.Script, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	scripts := make([]sim.Script, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		prng := rng.Fork()
		s := sim.NewScript()
		writes := 0
		for op := 0; op < cfg.OpsPerProc; op++ {
			if cfg.ThinkMax > 0 {
				d := cfg.ThinkMin
				if cfg.ThinkMax > cfg.ThinkMin {
					d += prng.Int63n(cfg.ThinkMax - cfg.ThinkMin + 1)
				}
				if d > 0 {
					s = s.Sleep(d)
				}
			}
			x := cfg.pickVar(prng)
			if prng.Float64() < cfg.WriteRatio {
				writes++
				s = s.Write(x, Value(p, writes))
			} else {
				s = s.Read(x)
			}
		}
		scripts[p] = s
	}
	return scripts, nil
}

func (c Config) pickVar(rng *sim.RNG) int {
	if c.Vars == 1 {
		return 0
	}
	if c.Hot > 0 && rng.Float64() < c.Hot {
		return 0
	}
	return rng.Intn(c.Vars)
}

// FalseCausality generates the adversarial pattern of Figure 3 at
// scale: each process owns a private variable it writes in bursts, and
// occasionally reads a neighbour's variable before writing — so →co
// stays sparse while the message pattern is dense. ANBKH's
// happened-before enabling sets then vastly exceed X_co-safe.
//
// Layout: variable p is owned by process p (requires Vars ≥ Procs; use
// NewFalseCausality to build a valid config).
type FalseCausality struct {
	Procs     int
	Bursts    int   // write bursts per process
	BurstLen  int   // writes per burst
	ReadEvery int   // read a neighbour's variable every k-th burst
	Think     int64 // pause between bursts
	Seed      uint64
}

// NewFalseCausality returns a validated default-shaped config.
func NewFalseCausality(procs int, seed uint64) FalseCausality {
	return FalseCausality{
		Procs: procs, Bursts: 6, BurstLen: 3, ReadEvery: 2, Think: 40, Seed: seed,
	}
}

// Scripts generates the adversarial scripts; the system needs
// Vars = Procs.
func (f FalseCausality) Scripts() ([]sim.Script, error) {
	if f.Procs < 2 {
		return nil, fmt.Errorf("workload: FalseCausality needs ≥ 2 processes, got %d", f.Procs)
	}
	if f.Bursts < 1 || f.BurstLen < 1 || f.ReadEvery < 1 {
		return nil, fmt.Errorf("workload: FalseCausality shape %+v invalid", f)
	}
	rng := sim.NewRNG(f.Seed)
	scripts := make([]sim.Script, f.Procs)
	for p := 0; p < f.Procs; p++ {
		prng := rng.Fork()
		s := sim.NewScript()
		writes := 0
		for b := 0; b < f.Bursts; b++ {
			if f.Think > 0 {
				s = s.Sleep(f.Think/2 + prng.Int63n(f.Think))
			}
			if b%f.ReadEvery == 1 {
				// Read a random neighbour's variable: the only source
				// of cross-process →co edges.
				s = s.Read((p + 1 + prng.Intn(f.Procs-1)) % f.Procs)
			}
			for i := 0; i < f.BurstLen; i++ {
				writes++
				s = s.Write(p, Value(p, writes))
			}
		}
		scripts[p] = s
	}
	return scripts, nil
}

// Vars returns the variable count the FalseCausality workload needs.
func (f FalseCausality) Vars() int { return f.Procs }
