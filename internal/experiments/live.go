package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
)

// Throughput is E6: operation throughput on the live goroutine runtime.
// Each process issues ops writes (hot mix) as fast as it can; reported
// are aggregate write throughput, read throughput, and the time to
// quiesce afterwards.
func Throughput(procs, opsPerProc int) (Result, error) {
	r := Result{
		Name:   "E6-throughput",
		Desc:   fmt.Sprintf("live-cluster throughput (%d procs × %d ops, immediate transport)", procs, opsPerProc),
		Header: []string{"protocol", "writes/s", "reads/s", "quiesce"},
	}
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv} {
		c, err := core.NewCluster(core.Config{
			Processes: procs, Variables: 8, Protocol: kind, FIFO: true,
		})
		if err != nil {
			return r, err
		}

		start := time.Now()
		errs := make(chan error, procs)
		for p := 0; p < procs; p++ {
			p := p
			go func() {
				for i := 1; i <= opsPerProc; i++ {
					if err := c.Node(p).Write(i%8, int64(p*1_000_000+i)); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()
		}
		for p := 0; p < procs; p++ {
			if err := <-errs; err != nil {
				c.Close()
				return r, err
			}
		}
		writeDur := time.Since(start)

		start = time.Now()
		for p := 0; p < procs; p++ {
			for i := 0; i < opsPerProc; i++ {
				if _, err := c.Node(p).Read(i % 8); err != nil {
					c.Close()
					return r, err
				}
			}
		}
		readDur := time.Since(start)

		start = time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = c.Quiesce(ctx)
		cancel()
		quiesceDur := time.Since(start)
		if err != nil {
			c.Close()
			return r, fmt.Errorf("experiments: E6 %v quiesce: %w", kind, err)
		}
		if err := c.Close(); err != nil {
			return r, err
		}

		total := float64(procs * opsPerProc)
		r.Rows = append(r.Rows, []string{
			kind.String(),
			fmt.Sprintf("%.0f", total/writeDur.Seconds()),
			fmt.Sprintf("%.0f", total/readDur.Seconds()),
			quiesceDur.Round(time.Microsecond).String(),
		})
	}
	return r, nil
}
