package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/checker"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// A live cluster over real TCP loopback sockets: the full stack —
// replica, wire codec, framing, kernel sockets — must still produce
// causally consistent, write-delay-optimal runs.
func TestClusterOverTCP(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			tn, err := transport.NewTCP(3)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCluster(Config{
				Processes: 3, Variables: 3, Protocol: kind,
				Transport: tn,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for p := 0; p < 3; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(p + 1)))
					for i := 1; i <= 30; i++ {
						if rng.Intn(2) == 0 {
							if err := c.Node(p).Write(rng.Intn(3), int64(p*1000+i)); err != nil {
								t.Error(err)
								return
							}
						} else if _, err := c.Node(p).Read(rng.Intn(3)); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			quiesce(t, c)
			rep, err := c.Audit()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() {
				t.Fatalf("TCP run failed audit: %v %v %v",
					rep.SafetyViolations, rep.LegalityViolations, rep.NotApplied)
			}
			if kind == protocol.OptP && !rep.WriteDelayOptimal() {
				t.Fatalf("unnecessary delays over TCP: %+v", rep.Delays)
			}
			if err := checker.SerializationAudit(c.Log(), rep); err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
