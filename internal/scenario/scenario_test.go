package scenario

import (
	"strings"
	"testing"

	"repro/internal/history"
)

// The paper's Example 1 in scenario notation.
const h1Src = `
# Example 1 of the paper (history Ĥ1)
p1: w(x1)a ; w(x1)c
p2: r(x1)a ; w(x2)b
p3: r(x2)b ; w(x2)d
`

func TestParseH1(t *testing.T) {
	s, err := ParseString(h1Src)
	if err != nil {
		t.Fatal(err)
	}
	h := s.History
	if h.NumProcs() != 3 || h.NumOps() != 6 || h.NumVars != 2 {
		t.Fatalf("shape: procs=%d ops=%d vars=%d", h.NumProcs(), h.NumOps(), h.NumVars)
	}
	// Parsed structure must equal the built-in fixture up to value
	// encoding: same kinds, procs, vars, read-from shape.
	want, _ := history.H1()
	for i, o := range h.Ops() {
		wo := want.Ops()[i]
		if o.Kind != wo.Kind || o.Proc != wo.Proc || o.Var != wo.Var {
			t.Fatalf("op %d = %+v, want shape of %+v", i, o, wo)
		}
		if o.IsRead() && (o.From.Proc != wo.From.Proc || o.From.Seq != wo.From.Seq) {
			t.Fatalf("op %d read-from %v, want %v", i, o.From, wo.From)
		}
	}
	if s.VarNames[0] != "x1" || s.VarNames[1] != "x2" {
		t.Fatalf("var names = %v", s.VarNames)
	}
}

func TestAnalyzeH1(t *testing.T) {
	a, err := AnalyzeString(h1Src)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Consistent {
		t.Fatalf("H1 flagged inconsistent: %v", a.Violations)
	}
	facts := strings.Join(a.CoFacts(), "\n")
	for _, want := range []string{
		"w1(x1)a →co w1(x1)c",
		"w1(x1)a →co w2(x2)b",
		"w1(x1)a →co w3(x2)d",
		"w1(x1)c ‖co w2(x2)b",
		"w1(x1)c ‖co w3(x2)d",
		"w2(x2)b →co w3(x2)d",
	} {
		if !strings.Contains(facts, want) {
			t.Errorf("facts missing %q:\n%s", want, facts)
		}
	}
	edges := strings.Join(a.GraphEdges(), "\n")
	for _, want := range []string{
		"w1(x1)a -> w1(x1)c",
		"w1(x1)a -> w2(x2)b",
		"w2(x2)b -> w3(x2)d",
	} {
		if !strings.Contains(edges, want) {
			t.Errorf("edges missing %q:\n%s", want, edges)
		}
	}
	xs := strings.Join(a.XcoSafeTable(), "\n")
	for _, want := range []string{
		"X_co-safe(w1(x1)a) = ∅",
		"X_co-safe(w1(x1)c) = {w1(x1)a}",
		"X_co-safe(w2(x2)b) = {w1(x1)a}",
		"X_co-safe(w3(x2)d) = {w1(x1)a, w2(x2)b}",
	} {
		if !strings.Contains(xs, want) {
			t.Errorf("X table missing %q:\n%s", want, xs)
		}
	}
	rep := a.Report()
	if !strings.Contains(rep, "causally consistent") {
		t.Errorf("report verdict:\n%s", rep)
	}
}

func TestParseSubscripts(t *testing.T) {
	s, err := ParseString("p1: w1(x)5\np2: r2(x)5")
	if err != nil {
		t.Fatal(err)
	}
	if s.History.NumOps() != 2 {
		t.Fatal("ops wrong")
	}
	if _, err := ParseString("p1: w2(x)5"); err == nil {
		t.Fatal("mismatched subscript accepted")
	}
}

func TestParseBottomRead(t *testing.T) {
	for _, bot := range []string{"_", "⊥"} {
		s, err := ParseString("p1: r(x)" + bot)
		if err != nil {
			t.Fatalf("%q: %v", bot, err)
		}
		op := s.History.Ops()[0]
		if !op.From.IsBottom() {
			t.Fatalf("%q: From = %v", bot, op.From)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no colon":           "p1 w(x)1",
		"bad proc":           "q1: w(x)1",
		"zero proc":          "p0: w(x)1",
		"dup proc":           "p1: w(x)1\np1: w(x)2",
		"gap proc":           "p2: w(x)1",
		"bad op letter":      "p1: z(x)1",
		"missing paren":      "p1: wx1",
		"missing close":      "p1: w(x1",
		"empty var":          "p1: w()1",
		"no value":           "p1: w(x)",
		"dup value":          "p1: w(x)5 ; w(x)5",
		"unknown read value": "p1: r(x)9",
		"bad subscript":      "p1: wq(x)1",
		"empty":              "   \n# only comments\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := ParseString("p1: w(x)1\np2: r(y)7")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if pe.Line != 2 || !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("error = %v", pe)
	}
}

// A stale-read history must be detected by the analyzer.
func TestAnalyzeInconsistent(t *testing.T) {
	src := `
p1: w(x)old ; w(x)new
p2: r(x)new ; r(x)old
`
	a, err := AnalyzeString(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Consistent {
		t.Fatal("stale read not detected")
	}
	rep := a.Report()
	if !strings.Contains(rep, "NOT causally consistent") {
		t.Fatalf("report:\n%s", rep)
	}
}

// A cyclic history must be rejected by Analyze.
func TestAnalyzeCyclic(t *testing.T) {
	src := `
p1: r(y)bv ; w(x)av
p2: r(x)av ; w(y)bv
`
	if _, err := AnalyzeString(src); err == nil {
		t.Fatal("cyclic history accepted")
	}
}

// Named variables and integer values work.
func TestParseNamedVarsIntValues(t *testing.T) {
	src := `
p1: w(flag)1 ; w(data)42
p2: r(data)42 ; r(flag)1
`
	a, err := AnalyzeString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Consistent {
		t.Fatalf("violations: %v", a.Violations)
	}
	if a.Scenario.VarNames[0] != "flag" || a.Scenario.VarNames[1] != "data" {
		t.Fatalf("vars = %v", a.Scenario.VarNames)
	}
	// Rendering uses source tokens.
	if name := a.Scenario.WriteName(history.WriteID{Proc: 0, Seq: 2}); name != "w1(data)42" {
		t.Fatalf("name = %q", name)
	}
}

// Concurrent-writes-read-in-both-orders parses and verifies as
// consistent (the paper's hallmark of causal vs sequential).
func TestAnalyzeConcurrentOrders(t *testing.T) {
	src := `
p1: w(x)u
p2: w(x)v
p3: r(x)u ; r(x)v
p4: r(x)v ; r(x)u
`
	a, err := AnalyzeString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Consistent {
		t.Fatalf("violations: %v", a.Violations)
	}
	facts := strings.Join(a.CoFacts(), "\n")
	if !strings.Contains(facts, "w1(x)u ‖co w2(x)v") {
		t.Fatalf("facts:\n%s", facts)
	}
}

func TestWriteNameUnknown(t *testing.T) {
	s, err := ParseString("p1: w(x)1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.WriteName(history.WriteID{Proc: 5, Seq: 9}); got != "w6#9" {
		t.Fatalf("fallback = %q", got)
	}
}

func TestAnalysisSerializationAndConcurrency(t *testing.T) {
	a, err := AnalyzeString(h1Src)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SerializableKnown || !a.Serializable {
		t.Fatalf("H1 should be known-serializable: known=%v ok=%v", a.SerializableKnown, a.Serializable)
	}
	// c‖b and c‖d: exactly 2 concurrent write pairs.
	if a.ConcurrentWritePairs != 2 {
		t.Fatalf("concurrent pairs = %d", a.ConcurrentWritePairs)
	}
	if !strings.Contains(a.Report(), "serializable per Ahamad") {
		t.Fatalf("report missing serialization verdict:\n%s", a.Report())
	}
	// The oscillating-reads history: legal but NOT serializable.
	osc, err := AnalyzeString(`
p1: w(x)u
p2: w(x)v
p3: r(x)u ; r(x)v ; r(x)u
`)
	if err != nil {
		t.Fatal(err)
	}
	if !osc.Consistent {
		t.Fatal("oscillating reads are legal per Definition 1")
	}
	if !osc.SerializableKnown || osc.Serializable {
		t.Fatalf("oscillating reads must be known-unserializable: known=%v ok=%v",
			osc.SerializableKnown, osc.Serializable)
	}
	if !strings.Contains(osc.Report(), "NOT serializable") {
		t.Fatalf("report:\n%s", osc.Report())
	}
}
