package client_test

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/vclock"
)

func startServer(t *testing.T, ccfg core.Config, scfg service.Config) *service.Server {
	t.Helper()
	cl, err := core.NewCluster(ccfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	scfg.Cluster = cl
	srv, err := service.New(scfg)
	if err != nil {
		cl.Close()
		t.Fatalf("service.New: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Close()
	})
	return srv
}

func TestDoAfterCloseFails(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 2, Variables: 1}, service.Config{})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	c.Close()
	if err := c.Ping(context.Background()); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Ping after Close = %v, want ErrClosed", err)
	}
}

// Cancelling a blocked request frees the caller immediately; the
// connection survives and the abandoned response is discarded when it
// eventually arrives.
func TestContextCancellationAbandonsCall(t *testing.T) {
	srv := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 400 * time.Millisecond})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = c.Do(ctx, protocol.Request{
		Kind: protocol.ReqRead, Proc: 0, Var: 0, Token: vclock.VC{1 << 20, 0},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled Do = %v, want DeadlineExceeded", err)
	}
	// The server answers the abandoned tag ~350ms later; the client must
	// shrug it off and keep serving this connection.
	time.Sleep(600 * time.Millisecond)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping after abandoned call: %v", err)
	}
}

// A server-side connection drop (here: provoked by a malformed frame
// from a second, raw connection — the client itself never sends one)
// must fail in-flight and future calls with ErrClosed, not hang them.
func TestServerDropFailsPending(t *testing.T) {
	srv := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 10 * time.Second})
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer raw.Close()
	// A frame whose payload is garbage: the server drops the connection.
	frame := binary.AppendUvarint(nil, 4)
	frame = append(frame, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := raw.Write(frame); err != nil {
		t.Fatalf("Write: %v", err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after malformed frame = %v, want EOF (connection dropped)", err)
	}
}

func TestSessionTokenGrowsMonotonically(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 3, Variables: 2}, service.Config{})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	s := c.Session()
	if tok := s.Token(); tok != nil {
		t.Fatalf("fresh session token = %v, want nil", tok)
	}
	var prev vclock.VC
	for i := int64(1); i <= 5; i++ {
		if err := s.Write(ctx, 0, i); err != nil {
			t.Fatalf("Write: %v", err)
		}
		tok := s.Token()
		if len(tok) != 3 {
			t.Fatalf("token %v, want dimension 3", tok)
		}
		if prev != nil && !tok.Dominates(prev) {
			t.Fatalf("token went backwards: %v after %v", tok, prev)
		}
		prev = tok
	}
	// Resume folds a foreign past in; the token only grows.
	other := vclock.VC{0, 99, 0}
	s.Resume(other)
	tok := s.Token()
	if !tok.Dominates(other) || !tok.Dominates(prev) {
		t.Fatalf("resumed token %v must dominate both %v and %v", tok, other, prev)
	}
}

// The no-token session really sends no token — its whole point is to
// be detectably broken.
func TestNoTokenSessionStaysTokenless(t *testing.T) {
	srv := startServer(t, core.Config{Processes: 2, Variables: 1}, service.Config{})
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	s := c.NoTokenSession()
	for i := int64(1); i <= 3; i++ {
		if err := s.Write(ctx, 0, i); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if _, err := s.Read(ctx, 0); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if tok := s.Token(); len(tok) != 0 {
		t.Fatalf("no-token session accumulated %v", tok)
	}
}
