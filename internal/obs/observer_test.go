package obs

import (
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/trace"
)

// TestKindFamiliesExhaustive pins the event-kind → counter-family table
// to trace.NumKinds: adding an event kind without naming its metric
// family fails here instead of silently dropping events on the floor.
func TestKindFamiliesExhaustive(t *testing.T) {
	seen := make(map[string]trace.EventKind)
	for k := 0; k < trace.NumKinds; k++ {
		f := kindFamilies[k]
		if f.name == "" || f.help == "" {
			t.Errorf("event kind %v has no metric family", trace.EventKind(k))
			continue
		}
		if !strings.HasPrefix(f.name, "dsm_") || !strings.HasSuffix(f.name, "_total") {
			t.Errorf("family %q for %v breaks the dsm_*_total convention", f.name, trace.EventKind(k))
		}
		if prev, dup := seen[f.name]; dup {
			t.Errorf("family %q claimed by both %v and %v", f.name, prev, trace.EventKind(k))
		}
		seen[f.name] = trace.EventKind(k)
	}
}

func newTestObserver(t *testing.T, procs int, opts ...func(*Options)) *Observer {
	t.Helper()
	o := Options{Procs: procs, Protocol: "optp"}
	for _, f := range opts {
		f(&o)
	}
	return NewObserver(o)
}

func TestObserverSpanLifecycle(t *testing.T) {
	o := newTestObserver(t, 3)
	w := history.WriteID{Proc: 0, Seq: 0}
	o.Observe(trace.Event{Kind: trace.Issue, Proc: 0, Time: 100, Write: w})
	// p1 receives deliverable, applies immediately.
	o.Observe(trace.Event{Kind: trace.Receipt, Proc: 1, Time: 150, Write: w})
	o.Observe(trace.Event{Kind: trace.Apply, Proc: 1, Time: 160, Write: w})
	// p2 receives out of causal order: buffered (a write delay), applies
	// later.
	o.Observe(trace.Event{Kind: trace.Receipt, Proc: 2, Time: 150, Write: w, Buffered: true})
	if got := o.Stats().Pending; got != 1 {
		t.Errorf("pending during buffer = %d, want 1", got)
	}
	o.Observe(trace.Event{Kind: trace.Apply, Proc: 2, Time: 300, Write: w})

	if got := o.Propagation().Count(); got != 2 {
		t.Errorf("propagation count = %d, want 2", got)
	}
	if got := o.Propagation().Sum(); got != (160-100)+(300-100) {
		t.Errorf("propagation sum = %d, want 260", got)
	}
	if got := o.DelayWait().Count(); got != 1 {
		t.Errorf("delay-wait count = %d, want 1", got)
	}
	if got := o.DelayWait().Sum(); got != 300-150 {
		t.Errorf("delay-wait sum = %d, want 150", got)
	}

	st := o.Stats()
	if st.Writes != 1 || st.Receipts != 2 || st.Applies != 2 {
		t.Errorf("stats = %+v, want writes=1 receipts=2 applies=2", st)
	}
	if st.Delays != 1 {
		t.Errorf("delays = %d, want 1", st.Delays)
	}
	if st.Pending != 0 {
		t.Errorf("pending after apply = %d, want 0", st.Pending)
	}

	spans := o.Spans()
	if len(spans) != 2 || o.SpanTotal() != 2 {
		t.Fatalf("spans = %d (total %d), want 2", len(spans), o.SpanTotal())
	}
	s1, s2 := spans[0], spans[1]
	if s1.Proc != 1 || s1.PropagationNs() != 60 || s1.BufferedWaitNs != 0 {
		t.Errorf("p1 span = %+v", s1)
	}
	if s2.Proc != 2 || s2.PropagationNs() != 200 || s2.BufferedWaitNs != 150 {
		t.Errorf("p2 span = %+v", s2)
	}
	if s1.WriteProc != 0 || s1.WriteSeq != 0 {
		t.Errorf("span trace ID = (%d,%d), want (0,0)", s1.WriteProc, s1.WriteSeq)
	}
}

func TestObserverDiscardAndDrop(t *testing.T) {
	o := newTestObserver(t, 2)
	w := history.WriteID{Proc: 0, Seq: 3}
	o.Observe(trace.Event{Kind: trace.Issue, Proc: 0, Time: 10, Write: w})
	// Writing-semantics skip: logical apply without a physical receipt.
	o.Observe(trace.Event{Kind: trace.Discard, Proc: 1, Time: 40, Write: w})
	spans := o.Spans()
	if len(spans) != 1 || !spans[0].Discarded {
		t.Fatalf("spans = %+v, want one discarded span", spans)
	}
	if got := spans[0].PropagationNs(); got != 30 {
		t.Errorf("discard propagation = %d, want 30", got)
	}

	// The late message of the skipped write: Drop resolves the buffered
	// wait without opening another span.
	o.Observe(trace.Event{Kind: trace.Receipt, Proc: 1, Time: 50, Write: w, Buffered: true})
	o.Observe(trace.Event{Kind: trace.Drop, Proc: 1, Time: 80, Write: w})
	if got := o.Stats().Pending; got != 0 {
		t.Errorf("pending after drop = %d, want 0", got)
	}
	if got := o.DelayWait().Sum(); got != 30 {
		t.Errorf("delay-wait sum = %d, want 30", got)
	}
	if got := o.SpanTotal(); got != 1 {
		t.Errorf("span total = %d, want 1 (drop must not open a span)", got)
	}
}

func TestObserverIgnoresForeignAndBogus(t *testing.T) {
	o := newTestObserver(t, 2)
	// Apply of a write the observer never saw issued: counted, no span.
	w := history.WriteID{Proc: 0, Seq: 9}
	o.Observe(trace.Event{Kind: trace.Apply, Proc: 1, Time: 5, Write: w})
	if got := o.SpanTotal(); got != 0 {
		t.Errorf("span total = %d, want 0 for pre-observer write", got)
	}
	if got := o.Stats().Applies; got != 1 {
		t.Errorf("applies = %d, want 1", got)
	}
	// Out-of-range events must not panic or count.
	o.Observe(trace.Event{Kind: trace.Issue, Proc: -1})
	o.Observe(trace.Event{Kind: trace.Issue, Proc: 7})
	o.Observe(trace.Event{Kind: trace.EventKind(250), Proc: 0})
	if got := o.Stats().Writes; got != 0 {
		t.Errorf("writes = %d, want 0 after bogus events", got)
	}
}

func TestObserverSpanRingWrap(t *testing.T) {
	o := newTestObserver(t, 2, func(op *Options) { op.SpanCapacity = 4 })
	for i := 0; i < 6; i++ {
		w := history.WriteID{Proc: 0, Seq: i}
		o.Observe(trace.Event{Kind: trace.Issue, Proc: 0, Time: int64(i * 10), Write: w})
		o.Observe(trace.Event{Kind: trace.Receipt, Proc: 1, Time: int64(i*10 + 1), Write: w})
		o.Observe(trace.Event{Kind: trace.Apply, Proc: 1, Time: int64(i*10 + 2), Write: w})
	}
	if got := o.SpanTotal(); got != 6 {
		t.Errorf("span total = %d, want 6", got)
	}
	spans := o.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained spans = %d, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := i + 2; sp.WriteSeq != want {
			t.Errorf("spans[%d].WriteSeq = %d, want %d (oldest-first, newest retained)", i, sp.WriteSeq, want)
		}
	}
}

func TestObserverSpanSink(t *testing.T) {
	var got []Span
	o := NewObserver(Options{Procs: 2, Protocol: "optp", SpanSink: func(sp Span) { got = append(got, sp) }})
	w := history.WriteID{Proc: 1, Seq: 0}
	o.Observe(trace.Event{Kind: trace.Issue, Proc: 1, Time: 0, Write: w})
	o.Observe(trace.Event{Kind: trace.Receipt, Proc: 0, Time: 1, Write: w})
	o.Observe(trace.Event{Kind: trace.Apply, Proc: 0, Time: 2, Write: w})
	if len(got) != 1 || got[0].Proc != 0 || got[0].PropagationNs() != 2 {
		t.Errorf("sink saw %+v, want one span with propagation 2", got)
	}
}

func TestObserverWALSync(t *testing.T) {
	o := newTestObserver(t, 2)
	o.ObserveWALSync(0, 1500)
	o.ObserveWALSync(1, 2500)
	o.ObserveWALSync(99, 9999) // out of range: ignored
	reg := o.Registry()
	h0 := reg.Histogram("dsm_wal_fsync_ns", "", nil, L("protocol", "optp"), L("proc", "0"))
	h1 := reg.Histogram("dsm_wal_fsync_ns", "", nil, L("protocol", "optp"), L("proc", "1"))
	if h0.Count() != 1 || h0.Sum() != 1500 {
		t.Errorf("p0 fsync hist: count=%d sum=%d", h0.Count(), h0.Sum())
	}
	if h1.Count() != 1 || h1.Sum() != 2500 {
		t.Errorf("p1 fsync hist: count=%d sum=%d", h1.Count(), h1.Sum())
	}
}

func TestSnapshotString(t *testing.T) {
	o := newTestObserver(t, 2)
	w := history.WriteID{Proc: 0, Seq: 0}
	o.Observe(trace.Event{Kind: trace.Issue, Proc: 0, Time: 0, Write: w})
	o.Observe(trace.Event{Kind: trace.Receipt, Proc: 1, Time: 1, Write: w})
	o.Observe(trace.Event{Kind: trace.Apply, Proc: 1, Time: 2, Write: w})
	s := o.Stats().String()
	for _, want := range []string{"writes=1", "receipts=1", "prop_n=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot string %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "netdrops") || strings.Contains(s, "crashes") {
		t.Errorf("snapshot string %q should omit zero fault sections", s)
	}
}
