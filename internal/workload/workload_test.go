package workload

import (
	"reflect"
	"testing"

	"repro/internal/checker"
	"repro/internal/protocol"
	"repro/internal/sim"
)

func TestValidate(t *testing.T) {
	good := Config{Procs: 2, Vars: 1, OpsPerProc: 5, WriteRatio: 0.5, ThinkMin: 1, ThinkMax: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Procs: 0, Vars: 1},
		{Procs: 1, Vars: 0},
		{Procs: 1, Vars: 1, OpsPerProc: -1},
		{Procs: 1, Vars: 1, WriteRatio: 1.5},
		{Procs: 1, Vars: 1, Hot: -0.1},
		{Procs: 1, Vars: 1, ThinkMin: 5, ThinkMax: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if _, err := Scripts(bad[0]); err == nil {
		t.Error("Scripts accepted invalid config")
	}
}

func TestValueUniqueness(t *testing.T) {
	seen := map[int64]bool{}
	for p := 0; p < 5; p++ {
		for k := 1; k <= 100; k++ {
			v := Value(p, k)
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}

func TestScriptsShape(t *testing.T) {
	cfg := Config{Procs: 3, Vars: 2, OpsPerProc: 20, WriteRatio: 0.5, ThinkMin: 1, ThinkMax: 10, Seed: 1}
	scripts, err := Scripts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 3 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	for p, s := range scripts {
		ops := 0
		for _, step := range s {
			switch step.(type) {
			case sim.WriteStep, sim.ReadStep:
				ops++
			case sim.AwaitStep:
				t.Fatalf("p%d: random workload must not contain awaits", p+1)
			}
		}
		if ops != cfg.OpsPerProc {
			t.Fatalf("p%d has %d ops", p+1, ops)
		}
	}
}

func TestScriptsDeterministic(t *testing.T) {
	cfg := Config{Procs: 2, Vars: 2, OpsPerProc: 10, WriteRatio: 0.7, ThinkMin: 1, ThinkMax: 5, Seed: 9}
	a, _ := Scripts(cfg)
	b, _ := Scripts(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different scripts")
	}
	cfg.Seed = 10
	c, _ := Scripts(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}
}

func TestWriteRatioExtremes(t *testing.T) {
	all, _ := Scripts(Config{Procs: 1, Vars: 1, OpsPerProc: 30, WriteRatio: 1, Seed: 3})
	for _, step := range all[0] {
		if _, ok := step.(sim.ReadStep); ok {
			t.Fatal("WriteRatio=1 produced a read")
		}
	}
	none, _ := Scripts(Config{Procs: 1, Vars: 1, OpsPerProc: 30, WriteRatio: 0, Seed: 3})
	for _, step := range none[0] {
		if _, ok := step.(sim.WriteStep); ok {
			t.Fatal("WriteRatio=0 produced a write")
		}
	}
}

func TestHotSpotSkew(t *testing.T) {
	cfg := Config{Procs: 1, Vars: 10, OpsPerProc: 400, WriteRatio: 1, Hot: 0.9, Seed: 5}
	scripts, _ := Scripts(cfg)
	hot := 0
	for _, step := range scripts[0] {
		if w, ok := step.(sim.WriteStep); ok && w.Var == 0 {
			hot++
		}
	}
	if hot < 300 {
		t.Fatalf("hot accesses = %d of 400, want skew toward var 0", hot)
	}
}

// Workload runs must produce valid, causally consistent histories under
// OptP.
func TestWorkloadRunsClean(t *testing.T) {
	cfg := Config{Procs: 3, Vars: 3, OpsPerProc: 25, WriteRatio: 0.5, ThinkMin: 1, ThinkMax: 30, Hot: 0.3, Seed: 17}
	scripts, err := Scripts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Procs: cfg.Procs, Vars: cfg.Vars, Protocol: protocol.OptP,
		Latency: sim.NewUniformLatency(1, 100, 3),
	}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := checker.Audit(res.Log)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() || !rep.WriteDelayOptimal() {
		t.Fatalf("audit failed: %+v", rep)
	}
}

func TestFalseCausalityShape(t *testing.T) {
	f := NewFalseCausality(4, 1)
	if f.Vars() != 4 {
		t.Fatalf("Vars = %d", f.Vars())
	}
	scripts, err := f.Scripts()
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 4 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	// Each process writes only its own variable.
	for p, s := range scripts {
		for _, step := range s {
			if w, ok := step.(sim.WriteStep); ok && w.Var != p {
				t.Fatalf("p%d writes x%d", p+1, w.Var+1)
			}
		}
	}
}

func TestFalseCausalityValidation(t *testing.T) {
	if _, err := (FalseCausality{Procs: 1}).Scripts(); err == nil {
		t.Fatal("accepted 1 process")
	}
	if _, err := (FalseCausality{Procs: 3, Bursts: 0, BurstLen: 1, ReadEvery: 1}).Scripts(); err == nil {
		t.Fatal("accepted 0 bursts")
	}
}

// The adversarial workload actually separates the protocols: ANBKH
// suffers strictly more delays than OptP, and OptP stays optimal.
func TestFalseCausalitySeparates(t *testing.T) {
	f := NewFalseCausality(4, 7)
	scripts, err := f.Scripts()
	if err != nil {
		t.Fatal(err)
	}
	delays := map[protocol.Kind]int{}
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
		// FIFO links remove sender-order gaps, isolating false
		// causality: OptP should then delay (almost) nothing while
		// ANBKH still blocks on cross-sender happened-before edges.
		res, err := sim.Run(sim.Config{
			Procs: f.Procs, Vars: f.Vars(), Protocol: kind,
			Latency: sim.NewUniformLatency(1, 300, 11), FIFO: true,
		}, scripts)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		rep, err := checker.Audit(res.Log)
		if err != nil {
			t.Fatal(err)
		}
		if kind == protocol.OptP && !rep.WriteDelayOptimal() {
			t.Fatalf("OptP not optimal: %+v", rep.Delays)
		}
		delays[kind] = res.Log.DelayCount()
	}
	if delays[protocol.ANBKH] <= delays[protocol.OptP] {
		t.Fatalf("ANBKH delays (%d) not greater than OptP (%d)",
			delays[protocol.ANBKH], delays[protocol.OptP])
	}
}
