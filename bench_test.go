// Package repro_test is the benchmark harness of the reproduction: one
// benchmark per paper table and figure (regenerating the artifact from
// a live protocol run each iteration) plus the quantitative sweeps
// E1–E8 of DESIGN.md and live-runtime throughput.
//
// Delay counts are attached to the benchmark output as custom metrics
// (delays/run, unnecessary/run) so `go test -bench` output doubles as
// the experiment record.
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/paperrepro"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

// --- Paper artifacts: Tables 1–2, Figures 1–3, 6–7 ---------------------

func benchArtifact(b *testing.B, render func() (string, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := render()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

func BenchmarkTable1XcoSafe(b *testing.B)      { benchArtifact(b, paperrepro.Table1) }
func BenchmarkTable2XAnbkh(b *testing.B)       { benchArtifact(b, paperrepro.Table2) }
func BenchmarkFig1Sequences(b *testing.B)      { benchArtifact(b, paperrepro.Fig1) }
func BenchmarkFig2NonOptimal(b *testing.B)     { benchArtifact(b, paperrepro.Fig2) }
func BenchmarkFig3ANBKHRun(b *testing.B)       { benchArtifact(b, paperrepro.Fig3) }
func BenchmarkFig6OptPRun(b *testing.B)        { benchArtifact(b, paperrepro.Fig6) }
func BenchmarkFig7CausalityGraph(b *testing.B) { benchArtifact(b, paperrepro.Fig7) }

// --- E1/E2/E3: delay sweeps ---------------------------------------------

// benchSim runs one simulated workload per iteration and reports mean
// delay metrics.
func benchSim(b *testing.B, kind protocol.Kind, procs, vars int, mk func(seed uint64) ([]sim.Script, error), jitter int64, fifo bool) {
	b.Helper()
	b.ReportAllocs()
	var delays, unnecessary, receipts float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i%16 + 1)
		scripts, err := mk(seed)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Procs: procs, Vars: vars, Protocol: kind,
			Latency: sim.NewUniformLatency(1, jitter, seed*13+7), FIFO: fifo,
		}, scripts)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := checker.Audit(res.Log)
		if err != nil {
			b.Fatal(err)
		}
		delays += float64(len(rep.Delays))
		unnecessary += float64(rep.UnnecessaryDelays)
		receipts += float64(res.Log.ReceiptCount())
		if kind == protocol.OptP && rep.UnnecessaryDelays != 0 {
			b.Fatalf("OptP unnecessary delays: %d", rep.UnnecessaryDelays)
		}
	}
	b.ReportMetric(delays/float64(b.N), "delays/run")
	b.ReportMetric(unnecessary/float64(b.N), "unnecessary/run")
	b.ReportMetric(receipts/float64(b.N), "receipts/run")
}

func mixedWorkload(procs, vars, ops int, ratio float64) func(seed uint64) ([]sim.Script, error) {
	return func(seed uint64) ([]sim.Script, error) {
		return workload.Scripts(workload.Config{
			Procs: procs, Vars: vars, OpsPerProc: ops, WriteRatio: ratio,
			ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: seed,
		})
	}
}

func BenchmarkDelaysVsJitter(b *testing.B) {
	for _, jitter := range []int64{50, 200, 400} {
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSRecv} {
			b.Run(fmt.Sprintf("jitter=%d/%s", jitter, kind), func(b *testing.B) {
				benchSim(b, kind, 4, 4, mixedWorkload(4, 4, 40, 0.6), jitter, true)
			})
		}
	}
}

func BenchmarkDelaysVsProcs(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
			b.Run(fmt.Sprintf("procs=%d/%s", n, kind), func(b *testing.B) {
				benchSim(b, kind, n, n, mixedWorkload(n, n, 20, 0.6), 150, true)
			})
		}
	}
}

func BenchmarkDelaysVsMix(b *testing.B) {
	for _, ratio := range []float64{0.2, 0.5, 0.8} {
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
			b.Run(fmt.Sprintf("write=%.1f/%s", ratio, kind), func(b *testing.B) {
				benchSim(b, kind, 4, 4, mixedWorkload(4, 4, 40, ratio), 150, true)
			})
		}
	}
}

// --- E4: false causality ------------------------------------------------

func BenchmarkFalseCausality(b *testing.B) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
		b.Run(kind.String(), func(b *testing.B) {
			mk := func(seed uint64) ([]sim.Script, error) {
				return workload.NewFalseCausality(5, seed).Scripts()
			}
			benchSim(b, kind, 5, 5, mk, 300, true)
		})
	}
}

// --- E5: buffer occupancy ----------------------------------------------

func BenchmarkBufferOccupancy(b *testing.B) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			var bufMax float64
			mk := mixedWorkload(4, 4, 40, 0.6)
			for i := 0; i < b.N; i++ {
				scripts, err := mk(uint64(i%16 + 1))
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Procs: 4, Vars: 4, Protocol: kind,
					Latency: sim.NewUniformLatency(1, 400, uint64(i)*13+7),
				}, scripts)
				if err != nil {
					b.Fatal(err)
				}
				bufMax += float64(res.Log.BufferOccupancy().Max)
			}
			b.ReportMetric(bufMax/float64(b.N), "bufmax/run")
		})
	}
}

// --- E7: writing semantics ---------------------------------------------

func BenchmarkWritingSemantics(b *testing.B) {
	for _, kind := range []protocol.Kind{protocol.ANBKH, protocol.WSRecv, protocol.WSSend} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			var discards, delays float64
			for i := 0; i < b.N; i++ {
				seed := uint64(i%16 + 1)
				scripts, err := workload.Scripts(workload.Config{
					Procs: 4, Vars: 2, OpsPerProc: 30, WriteRatio: 0.9,
					ThinkMin: 1, ThinkMax: 20, Hot: 0.8, Seed: seed,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Procs: 4, Vars: 2, Protocol: kind,
					Latency: sim.NewUniformLatency(1, 200, seed*13+7),
				}, scripts)
				if err != nil {
					b.Fatal(err)
				}
				discards += float64(res.Log.DiscardCount())
				delays += float64(res.Log.DelayCount())
			}
			b.ReportMetric(discards/float64(b.N), "discards/run")
			b.ReportMetric(delays/float64(b.N), "delays/run")
		})
	}
}

// --- E8: ablation --------------------------------------------------------

func BenchmarkAblationReadMerge(b *testing.B) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.OptPNoReadMerge} {
		b.Run(kind.String(), func(b *testing.B) {
			mk := func(seed uint64) ([]sim.Script, error) {
				return workload.NewFalseCausality(5, seed).Scripts()
			}
			benchSim(b, kind, 5, 5, mk, 300, true)
		})
	}
}

// --- E6: live-runtime throughput ----------------------------------------

func benchLiveWrite(b *testing.B, kind protocol.Kind) {
	c, err := core.NewCluster(core.Config{
		Processes: 4, Variables: 8, Protocol: kind, FIFO: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Node(i%4).Write(i%8, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLiveWriteOptP(b *testing.B)  { benchLiveWrite(b, protocol.OptP) }
func BenchmarkLiveWriteANBKH(b *testing.B) { benchLiveWrite(b, protocol.ANBKH) }

func BenchmarkLiveRead(b *testing.B) {
	c, err := core.NewCluster(core.Config{Processes: 4, Variables: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for x := 0; x < 8; x++ {
		if err := c.Node(0).Write(x, int64(x+1)); err != nil {
			b.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Node(i % 4).Read(i % 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterThroughput is the multicore hot-path scorecard: one
// writer/reader goroutine per process hammering a live OptP cluster
// over the immediate FIFO transport (3 writes : 1 read), with the final
// Quiesce inside the timed region so every propagated update's receipt
// and apply is paid for. BENCH_throughput.json commits its before/after
// numbers; CI reruns it via `dsmbench -exp throughput-smoke` and fails
// on >20% ops/sec regression.
func benchClusterThroughput(b *testing.B, procs int) {
	c, err := core.NewCluster(core.Config{
		Processes: procs, Variables: 16, Protocol: protocol.OptP, FIFO: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for p := 0; p < procs; p++ {
		ops := b.N / procs
		if p < b.N%procs {
			ops++
		}
		wg.Add(1)
		go func(p, ops int) {
			defer wg.Done()
			n := c.Node(p)
			for i := 1; i <= ops; i++ {
				var err error
				if i%4 == 0 {
					_, err = n.Read(i % 16)
				} else {
					err = n.Write(i%16, int64(p*1_000_000+i))
				}
				if err != nil {
					firstErr.Store(err)
					return
				}
			}
		}(p, ops)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if err, ok := firstErr.Load().(error); ok {
		b.Fatal(err)
	}
}

func BenchmarkClusterThroughput(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchClusterThroughput(b, procs)
		})
	}
}

// BenchmarkOptPApply pins the OptP apply path — Status check plus
// Apply — at zero allocations per event. The local writes that
// manufacture each deliverable update run with the timer stopped, so
// the measurement is the receiver side only.
func BenchmarkOptPApply(b *testing.B) {
	sender := protocol.New(protocol.OptP, 0, 8, 16)
	receiver := protocol.New(protocol.OptP, 1, 8, 16)
	const block = 1024
	us := make([]protocol.Update, block)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		b.StopTimer()
		n := block
		if rest := b.N - done; rest < n {
			n = rest
		}
		for j := 0; j < n; j++ {
			us[j], _ = sender.LocalWrite(j%16, int64(j))
		}
		b.StartTimer()
		for j := 0; j < n; j++ {
			if receiver.Status(us[j]) != protocol.Deliverable {
				b.Fatal("unexpected status")
			}
			receiver.Apply(us[j])
		}
		done += n
	}
}

// --- Engine micro-benchmarks ---------------------------------------------

func BenchmarkSimEngineEvents(b *testing.B) {
	scripts, err := mixedWorkload(4, 4, 40, 0.6)(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Procs: 4, Vars: 4, Protocol: protocol.OptP,
			Latency: sim.NewUniformLatency(1, 100, 3),
		}, scripts)
		if err != nil {
			b.Fatal(err)
		}
		events += float64(len(res.Log.Events))
	}
	b.ReportMetric(events/float64(b.N), "events/run")
}

func BenchmarkOptPLocalWrite(b *testing.B) {
	r := protocol.New(protocol.OptP, 0, 8, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.LocalWrite(i%16, int64(i))
	}
}

func BenchmarkOptPStatus(b *testing.B) {
	sender := protocol.New(protocol.OptP, 0, 8, 16)
	receiver := protocol.New(protocol.OptP, 1, 8, 16)
	u, _ := sender.LocalWrite(0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if receiver.Status(u) != protocol.Deliverable {
			b.Fatal("unexpected status")
		}
	}
}

func BenchmarkCausalityClosure(b *testing.B) {
	// A larger random history for the →co engine.
	bld := history.NewBuilder(8)
	val := int64(0)
	last := make(map[int]history.WriteID)
	vals := make(map[history.WriteID]int64)
	for i := 0; i < 400; i++ {
		p := i % 8
		if i%3 == 0 && last[(p+1)%8] != (history.WriteID{}) {
			id := last[(p+1)%8]
			bld.ReadFrom(p, 0, vals[id], id)
		} else {
			val++
			id := bld.Write(p, 0, val)
			last[p] = id
			vals[id] = val
		}
	}
	h := bld.MustFinish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Causality(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9/E11: metadata + visibility ----------------------------------------

func BenchmarkVisibilityLatency(b *testing.B) {
	for _, kind := range []protocol.Kind{protocol.OptP, protocol.ANBKH, protocol.WSSend} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			var mean float64
			for i := 0; i < b.N; i++ {
				scripts, err := workload.Scripts(workload.Config{
					Procs: 4, Vars: 4, OpsPerProc: 30, WriteRatio: 0.6,
					ThinkMin: 5, ThinkMax: 60, Hot: 0.2, Seed: uint64(i%16 + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Procs: 4, Vars: 4, Protocol: kind,
					Latency: sim.NewUniformLatency(1, 200, uint64(i)*13+7),
					FIFO:    true, TokenInterval: 100,
				}, scripts)
				if err != nil {
					b.Fatal(err)
				}
				lats := res.Log.VisibilityLatencies()
				var sum float64
				for _, d := range lats {
					sum += float64(d)
				}
				if len(lats) > 0 {
					mean += sum / float64(len(lats))
				}
			}
			b.ReportMetric(mean/float64(b.N), "visibility-ticks")
		})
	}
}

func BenchmarkUpdateCodec(b *testing.B) {
	sender := protocol.New(protocol.OptP, 0, 16, 8)
	u, _ := sender.LocalWrite(3, 12345)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = u.AppendBinary(buf[:0])
		if _, _, err := protocol.DecodeUpdate(buf); err != nil {
			b.Fatal(err)
		}
	}
}
