package scenario

import (
	"strconv"
	"strings"
	"testing"
)

// FuzzParse drives the scenario parser with arbitrary input: it must
// never panic, and any input it accepts must survive analysis or fail
// with a proper error (cyclic histories are the one legal Analyze
// failure).
func FuzzParse(f *testing.F) {
	seeds := []string{
		h1Src,
		"p1: w(x)1",
		"p1: r(x)_",
		"p1: w1(x1)a ; r1(x1)a\np2: r2(x1)a",
		"p1: w(flag)up\np2: r(flag)up ; w(data)7",
		"# comment only\np1: w(x)v",
		"p1:",
		"p1: w(x)1 ; w(y)2 ; r(x)1",
		"p3: w(x)1", // gap: invalid
		"p1: w(x)⊥",
		strings.Repeat("p1: w(x)1\n", 3),
		// Chaos-annotated scenarios: the `# chaos:` comment records the
		// fault schedule a live run would inject (the parser strips
		// comments, so these exercise comment handling plus histories
		// shaped like fault traces). Committed copies live under
		// testdata/fuzz/FuzzParse so plain `go test` replays them.
		"# chaos: loss=0.2 dup=0.1 seed=7\np1: w(x)1 ; r(x)1\np2: r(x)1",
		"# chaos: reorder=0.3 reorder-delay=2ms (stale read after burst)\np1: w(x)1 ; w(x)2\np2: r(x)2 ; r(x)1",
		"# chaos: partition 5ms-25ms 0,1/2,3 — read ⊥ during cut, value after heal\np1: w(x)1\np2: r(x)_ ; r(x)1",
		"# chaos: dup storm — re-reading one value is legal, re-applying it is not\np1: w(x)1\np2: r(x)1 ; r(x)1 ; w(y)2\np3: r(y)2 ; r(x)1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseString(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		a, err := Analyze(s)
		if err != nil {
			return // cyclic histories are legitimately rejected here
		}
		// Whatever parsed must render and self-report without panicking.
		_ = a.Report()
		_ = a.CoFacts()
		_ = a.XcoSafeTable()
		_ = a.GraphEdges()
	})
}

// FuzzRoundTrip: any history the parser accepts renders back to a
// string that parses to the same shape.
func FuzzRoundTrip(f *testing.F) {
	f.Add(h1Src)
	f.Add("p1: w(x)1 ; r(x)1\np2: r(x)1")
	f.Add("# chaos: loss=0.3 — retransmission must not change the parse\np1: w(x)1 ; w(y)2\np2: r(y)2 ; r(x)1")
	f.Fuzz(func(t *testing.T, src string) {
		s1, err := ParseString(src)
		if err != nil {
			return
		}
		// Re-render via OpName and re-parse.
		var b strings.Builder
		for p, local := range s1.History.Locals {
			b.WriteString("p")
			b.WriteString(strconv.Itoa(p + 1))
			b.WriteString(":")
			for _, o := range local {
				b.WriteString(" ")
				b.WriteString(s1.OpName(o))
				b.WriteString(" ;")
			}
			b.WriteString("\n")
		}
		s2, err := ParseString(b.String())
		if err != nil {
			t.Fatalf("re-parse of rendered scenario failed: %v\nsource:\n%s\nrendered:\n%s", err, src, b.String())
		}
		if s1.History.NumOps() != s2.History.NumOps() || s1.History.NumProcs() != s2.History.NumProcs() {
			t.Fatalf("round trip changed shape: %d/%d ops, %d/%d procs",
				s1.History.NumOps(), s2.History.NumOps(),
				s1.History.NumProcs(), s2.History.NumProcs())
		}
	})
}
