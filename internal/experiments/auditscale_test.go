package experiments

import (
	"strings"
	"testing"
)

func TestAuditScaleShape(t *testing.T) {
	r, err := auditScale([]int{300, 900}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != AuditScaleName {
		t.Fatalf("name = %q", r.Name)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(r.Header))
		}
	}
	// Reference ran only at the 300-op rung.
	if r.Rows[0][5] == "-" || !strings.HasSuffix(r.Rows[0][6], "x") {
		t.Fatalf("300-op row lacks reference timing: %v", r.Rows[0])
	}
	if r.Rows[1][5] != "-" || r.Rows[1][6] != "-" {
		t.Fatalf("900-op row should skip the reference: %v", r.Rows[1])
	}
}

func TestCheckAuditRegression(t *testing.T) {
	mk := func(ms string) []Result {
		return []Result{{
			Name:   AuditScaleName,
			Header: []string{"ops", "events", "writes", "delays", "audit-ms", "ref-ms", "speedup"},
			Rows:   [][]string{{"1000", "4000", "500", "70", ms, "-", "-"}},
		}}
	}
	baseline := Scorecard{Schema: ScorecardSchema, Experiments: mk("10.000")}

	if err := CheckAuditRegression(mk("11.000"), baseline, 0.2); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	if err := CheckAuditRegression(mk("5.000"), baseline, 0.2); err != nil {
		t.Fatalf("improvement must pass: %v", err)
	}
	if err := CheckAuditRegression(mk("13.000"), baseline, 0.2); err == nil {
		t.Fatal("25% regression must fail")
	}
	// Rows only in one document are ignored; empty docs are errors.
	other := mk("9.000")
	other[0].Rows[0][0] = "2000"
	if err := CheckAuditRegression(other, baseline, 0.2); err != nil {
		t.Fatalf("disjoint rows must pass: %v", err)
	}
	if err := CheckAuditRegression(nil, baseline, 0.2); err == nil {
		t.Fatal("empty current must fail")
	}
	if err := CheckAuditRegression(mk("9.000"), Scorecard{Schema: ScorecardSchema}, 0.2); err == nil {
		t.Fatal("empty baseline must fail")
	}
}
