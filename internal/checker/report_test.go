package checker

import (
	"strings"
	"testing"

	"repro/internal/protocol"
)

func TestReportString(t *testing.T) {
	_, rep := runH1(t, protocol.OptP, fig36Latency())
	s := rep.String()
	for _, frag := range []string{"safe=true", "consistent=true", "in-P=true", "necessary=1", "unnecessary=0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Report.String missing %q: %s", frag, s)
		}
	}
}

func TestClassifiedDelayFields(t *testing.T) {
	_, rep := runH1(t, protocol.ANBKH, fig36Latency())
	if len(rep.Delays) != 1 {
		t.Fatalf("delays = %+v", rep.Delays)
	}
	d := rep.Delays[0]
	if !d.Necessary || d.MissingWrite != wa {
		t.Fatalf("classification = %+v", d)
	}
	if d.Duration() != 30 { // buffered t=30..60 under ANBKH
		t.Fatalf("duration = %d", d.Duration())
	}
}
