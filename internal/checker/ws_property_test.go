package checker

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Property sweep for the writing-semantics protocols: across seeded
// random workloads they must stay safe (logical-apply order respects
// →co) and causally consistent, even though they may leave 𝒫; and the
// footnote-8 combination OptP-WS must additionally never delay a write
// unnecessarily (its enabling sets are OptP's or smaller).
func TestPropertyWritingSemanticsSafe(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.WSRecv, protocol.OptPWS, protocol.WSSend} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sawDiscardOrSuppression := false
			for seed := uint64(1); seed <= 10; seed++ {
				cfg := workload.Config{
					Procs: 4, Vars: 2, OpsPerProc: 20, WriteRatio: 0.8,
					ThinkMin: 1, ThinkMax: 25, Hot: 0.7, Seed: seed,
				}
				scripts, err := workload.Scripts(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Procs: cfg.Procs, Vars: cfg.Vars, Protocol: kind,
					Latency: sim.NewUniformLatency(1, 200, seed*5+3),
				}, scripts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				rep, err := Audit(res.Log)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Safe() {
					t.Fatalf("seed %d: safety violations: %v", seed, rep.SafetyViolations)
				}
				if !rep.CausallyConsistent() {
					t.Fatalf("seed %d: legality violations: %v", seed, rep.LegalityViolations)
				}
				if kind == protocol.OptPWS && !rep.WriteDelayOptimal() {
					t.Fatalf("seed %d: OptP-WS unnecessary delays: %+v", seed, rep.Delays)
				}
				if !rep.InP() || res.Log.DiscardCount() > 0 {
					sawDiscardOrSuppression = true
				}
			}
			if !sawDiscardOrSuppression {
				t.Fatalf("%v never left 𝒫 on any seed — workload too tame to exercise writing semantics", kind)
			}
		})
	}
}

// OptP-WS must never delay MORE than plain OptP on the same run — its
// enabling sets are a subset (skips only remove waits).
func TestOptPWSDelaysSubsetOfOptP(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		cfg := workload.Config{
			Procs: 4, Vars: 2, OpsPerProc: 25, WriteRatio: 0.8,
			ThinkMin: 1, ThinkMax: 25, Hot: 0.7, Seed: seed,
		}
		scripts, err := workload.Scripts(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[protocol.Kind]int{}
		for _, kind := range []protocol.Kind{protocol.OptP, protocol.OptPWS} {
			res, err := sim.Run(sim.Config{
				Procs: cfg.Procs, Vars: cfg.Vars, Protocol: kind,
				Latency: sim.NewUniformLatency(1, 200, seed*5+3),
			}, scripts)
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			counts[kind] = res.Log.DelayCount()
		}
		if counts[protocol.OptPWS] > counts[protocol.OptP] {
			t.Fatalf("seed %d: OptP-WS delayed %d > OptP %d",
				seed, counts[protocol.OptPWS], counts[protocol.OptP])
		}
	}
}
