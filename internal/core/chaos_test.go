package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// chaosSeeds returns the per-protocol seed count for the chaos property
// test: ≥ 20 in normal mode, trimmed in -short so the race job stays
// fast.
func chaosSeeds() int {
	if testing.Short() {
		return 3
	}
	return 20
}

// runChaosWorkload drives a seeded random workload over cluster c and
// waits for quiescence.
func runChaosWorkload(t *testing.T, c *Cluster, seed int64, procs, vars, ops int) {
	t.Helper()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(p)))
			for i := 1; i <= ops; i++ {
				if rng.Intn(2) == 0 {
					if err := c.Node(p).Write(rng.Intn(vars), int64(p)*1_000_000+int64(i)); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := c.Node(p).Read(rng.Intn(vars)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce under chaos: %v", err)
	}
}

// TestChaosPropertyAllProtocols is the seeded property test of the
// fault model: for every protocol kind, a random workload over a
// lossy + duplicating transport must still quiesce and pass the full
// audit — safety, causal consistency, exactly-once application, and
// (for OptP) zero unnecessary delays. Theorem 4 must survive chaos:
// the reliability sublayer hides loss and duplication so completely
// that the protocol-level guarantees are indistinguishable from a
// fault-free run.
func TestChaosPropertyAllProtocols(t *testing.T) {
	const (
		procs = 3
		vars  = 3
		ops   = 30
	)
	totalDrops, totalRetransmits, totalDupDiscards := 0, 0, 0
	for _, kind := range protocol.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= int64(chaosSeeds()); seed++ {
				c, err := NewCluster(Config{
					Processes: procs, Variables: vars, Protocol: kind,
					MaxDelay: 200 * time.Microsecond, Seed: seed,
					Chaos: transport.ChaosConfig{
						LossRate: 0.2, DupRate: 0.1, Seed: seed * 31,
					},
					RetransmitTimeout: 300 * time.Microsecond,
					TokenInterval:     200 * time.Microsecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				runChaosWorkload(t, c, seed, procs, vars, ops)

				rep, err := c.Audit()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Safe() {
					t.Fatalf("seed %d: safety violations: %v", seed, rep.SafetyViolations)
				}
				if !rep.CausallyConsistent() {
					t.Fatalf("seed %d: illegal reads: %v", seed, rep.LegalityViolations)
				}
				if !rep.ExactlyOnce() {
					t.Fatalf("seed %d: duplicate applies leaked past dedup: %v", seed, rep.DuplicateApplies)
				}
				// WS variants are legitimately outside 𝒫 (values skipped by
				// writing semantics); every other kind must apply everything
				// everywhere despite the faults.
				switch kind {
				case protocol.WSRecv, protocol.WSSend, protocol.OptPWS:
				default:
					if !rep.InP() {
						t.Fatalf("seed %d: liveness holes under chaos: %v", seed, rep.NotApplied)
					}
				}
				if kind == protocol.OptP && !rep.WriteDelayOptimal() {
					t.Fatalf("seed %d: Theorem 4 broken under chaos: %d unnecessary delays",
						seed, rep.UnnecessaryDelays)
				}
				st := c.Stats()
				totalDrops += st.NetDrops
				totalRetransmits += st.Retransmits
				totalDupDiscards += st.DupDiscards
				if err := c.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	// The injection must actually have happened — a chaos test over a
	// silently fault-free transport proves nothing.
	if totalDrops == 0 || totalRetransmits == 0 || totalDupDiscards == 0 {
		t.Fatalf("chaos injected nothing across all runs: drops=%d retransmits=%d dupdiscards=%d",
			totalDrops, totalRetransmits, totalDupDiscards)
	}
}

// TestChaosPartitionHeals cuts the cluster in two for a fixed window,
// writes on both sides during the cut, and checks that retransmission
// carries every write across once the partition heals.
func TestChaosPartitionHeals(t *testing.T) {
	const window = 20 * time.Millisecond
	c, err := NewCluster(Config{
		Processes: 4, Variables: 2, Protocol: protocol.OptP,
		Seed: 17,
		Chaos: transport.ChaosConfig{
			Partitions: []transport.Partition{
				{Start: 0, End: window, A: []int{0, 1}, B: []int{2, 3}},
			},
			Seed: 17,
		},
		RetransmitTimeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Both sides write while the network is split.
	for i := 1; i <= 10; i++ {
		if err := c.Node(0).Write(0, int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Node(2).Write(1, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce across healed partition: %v", err)
	}
	rep, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() || !rep.ExactlyOnce() {
		t.Fatalf("audit after heal: %v", rep)
	}
	if st := c.Stats(); st.NetDrops == 0 {
		t.Fatal("partition dropped nothing — writes never crossed an active cut")
	}
}

// TestChaosReorderBurst runs OptP with reorder bursts on FIFO links —
// bursts are what force buffering (necessary delays) even on otherwise
// ordered links — and checks optimality still holds.
func TestChaosReorderBurst(t *testing.T) {
	c, err := NewCluster(Config{
		Processes: 3, Variables: 3, Protocol: protocol.OptP,
		FIFO: true, Seed: 23,
		Chaos: transport.ChaosConfig{
			ReorderRate: 0.3, ReorderDelay: time.Millisecond, Seed: 23,
		},
		RetransmitTimeout: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runChaosWorkload(t, c, 23, 3, 3, 40)
	rep, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe() || !rep.CausallyConsistent() || !rep.InP() || !rep.ExactlyOnce() {
		t.Fatalf("audit under reorder bursts: %v", rep)
	}
	if !rep.WriteDelayOptimal() {
		t.Fatalf("unnecessary delays under reorder bursts: %d", rep.UnnecessaryDelays)
	}
}
