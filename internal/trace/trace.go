// Package trace records the event structure of a protocol run — the E_i
// sequences of Section 3.1 — and derives from it everything the
// checkers and experiment harnesses need: the global history Ĥ, write
// delays (Definition 3), pending-buffer occupancy, and per-run summary
// statistics.
//
// Both execution backends produce the same log format: the
// deterministic simulator stamps virtual nanoseconds, the live runtime
// wall-clock nanoseconds.
package trace

import (
	"fmt"

	"repro/internal/history"
)

// EventKind enumerates the event types of the model.
type EventKind int

// Event kinds. Issue marks a write operation at its issuing process
// (the send event of Section 3.2 plus the local apply); Send marks
// actual network propagation (distinct from Issue only for deferred
// protocols like WS-send); Receipt, Apply and Return follow the
// paper's nomenclature. Discard is the *logical apply* of a write
// skipped by writing semantics, recorded immediately before the apply
// of its overwriter; Drop is the subsequent arrival of the skipped
// write's message, dropped without effect.
//
// ReadFwd and ReadServe belong to partial replication: ReadFwd is the
// forwarding of a read of a non-replicated variable, recorded at the
// requester (Var names the variable, Write the negative-sequence
// request token); ReadServe is the serving replica answering it (Val
// and From carry the returned value and its writer; Buffered marks a
// request that had to wait for the requester's causal past). A
// forwarded read's Return event carries Buffered when the *reply* had
// to wait at the requester for in-flight writes addressed to it. Both
// are *read* delays, deliberately kept out of the write-delay
// accounting, which matches buffered Receipts only.
//
// NetDrop, Retransmit and DupDiscard are transport-level, recorded only
// when the chaos stack is active: NetDrop is a frame lost to fault
// injection (recorded at the sender), Retransmit a reliability-sublayer
// re-send (at the sender; Val carries the attempt count), and
// DupDiscard a duplicate frame suppressed by receiver-side dedup (at
// the receiver). They never enter the history reconstruction or delay
// accounting — the reliability sublayer exists precisely so the
// protocol-level event structure is identical to a fault-free run.
//
// The crash-recovery kinds describe process lifetime and the failure
// detector: Crash marks a crash-stop of Proc (state zeroed, in-flight
// deliveries dropped), Recover its restart from the write-ahead log
// (Val carries the number of journal entries replayed). Suspect and
// Alive are detector verdicts recorded at the observing process, with
// Val naming the suspected/recovered peer.
const (
	Issue EventKind = iota
	Send
	Receipt
	Apply
	Discard
	Drop
	Return
	Token
	NetDrop
	Retransmit
	DupDiscard
	Crash
	Recover
	Suspect
	Alive
	ReadFwd
	ReadServe

	// numEventKinds is the exhaustiveness sentinel: every kind above
	// must have a name in eventKindNames (enforced by tests).
	numEventKinds
)

// NumKinds is the number of defined event kinds, for packages that
// build exhaustive per-kind tables (the obs layer's counter families).
const NumKinds = int(numEventKinds)

// eventKindNames names every EventKind; the package tests assert the
// table is exhaustive so new kinds cannot silently print as integers.
var eventKindNames = [numEventKinds]string{
	Issue:      "issue",
	Send:       "send",
	Receipt:    "receipt",
	Apply:      "apply",
	Discard:    "discard",
	Drop:       "drop",
	Return:     "return",
	Token:      "token",
	NetDrop:    "net-drop",
	Retransmit: "retransmit",
	DupDiscard: "dup-discard",
	Crash:      "crash",
	Recover:    "recover",
	Suspect:    "suspect",
	Alive:      "alive",
	ReadFwd:    "read-fwd",
	ReadServe:  "read-serve",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k >= 0 && k < numEventKinds && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one entry of a run log.
type Event struct {
	// Seq is the global recording order (a total order consistent with
	// each process's local order).
	Seq int
	// Kind is the event type.
	Kind EventKind
	// Proc is the process at which the event occurred.
	Proc int
	// Time is the event timestamp in (virtual or wall) nanoseconds.
	Time int64

	// Write names the subject write for Issue/Send/Receipt/Apply/Discard.
	Write history.WriteID
	// Var and Val carry the location and value for write-bearing events
	// and for Return.
	Var int
	Val int64
	// From names, for Return, the write whose value the read returned.
	From history.WriteID

	// Buffered marks a Receipt whose update was not immediately
	// deliverable — a write delay per Definition 3.
	Buffered bool
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case Crash:
		return fmt.Sprintf("[%d] p%d %s @%d", e.Seq, e.Proc+1, e.Kind, e.Time)
	case Recover:
		return fmt.Sprintf("[%d] p%d %s (replayed %d) @%d", e.Seq, e.Proc+1, e.Kind, e.Val, e.Time)
	case Suspect, Alive:
		return fmt.Sprintf("[%d] p%d %s p%d @%d", e.Seq, e.Proc+1, e.Kind, e.Val+1, e.Time)
	case Return:
		return fmt.Sprintf("[%d] p%d %s x%d=%d from %v @%d", e.Seq, e.Proc+1, e.Kind, e.Var+1, e.Val, e.From, e.Time)
	case Receipt:
		buf := ""
		if e.Buffered {
			buf = " BUFFERED"
		}
		return fmt.Sprintf("[%d] p%d %s %v%s @%d", e.Seq, e.Proc+1, e.Kind, e.Write, buf, e.Time)
	default:
		return fmt.Sprintf("[%d] p%d %s %v @%d", e.Seq, e.Proc+1, e.Kind, e.Write, e.Time)
	}
}

// Sink consumes events live, as they are recorded — the streaming
// counterpart of the post-hoc Log. Implementations must never block
// the caller on I/O (the cluster invokes Record under its
// observability tee lock, inside every operation's critical path);
// the obs package's JSONL sink buffers in a bounded ring and counts
// drops instead of stalling the protocol.
type Sink interface {
	Record(Event)
}

// Log is a complete run record.
type Log struct {
	NumProcs int
	NumVars  int
	Events   []Event

	// ShareSets, when non-nil, records the partial-replication
	// assignment the run executed under: ShareSets[x] lists the
	// processes replicating variable x. The audit uses it to decide
	// which processes each write must apply at. Nil means full
	// replication.
	ShareSets [][]int
}

// Replicated reports whether process p replicates variable x under the
// log's assignment (always true for fully replicated runs).
func (l *Log) Replicated(p, x int) bool {
	if l.ShareSets == nil || x < 0 || x >= len(l.ShareSets) {
		return true
	}
	for _, q := range l.ShareSets[x] {
		if q == p {
			return true
		}
	}
	return false
}

// ReadFwdCount returns the number of forwarded reads in the run.
func (l *Log) ReadFwdCount() int { return l.countKind(ReadFwd) }

// ReadDelayCount returns the number of forwarded-read delay events: a
// request held at its serving replica for the requester's causal past
// counts one, and a reply held at the requester for in-flight writes
// addressed to it counts another (so a read delayed at both ends
// contributes two).
func (l *Log) ReadDelayCount() int {
	n := 0
	for _, e := range l.Events {
		if e.Buffered && (e.Kind == ReadServe || e.Kind == Return) {
			n++
		}
	}
	return n
}

// NewLog returns an empty log for n processes over m variables.
func NewLog(n, m int) *Log {
	return &Log{NumProcs: n, NumVars: m}
}

// Append records an event, assigning its global sequence number, and
// returns the stored event.
func (l *Log) Append(e Event) Event {
	e.Seq = len(l.Events)
	l.Events = append(l.Events, e)
	return e
}

// PerProc splits the log into the per-process sequences E_i, preserving
// global order within each.
func (l *Log) PerProc() [][]Event {
	out := make([][]Event, l.NumProcs)
	for _, e := range l.Events {
		out[e.Proc] = append(out[e.Proc], e)
	}
	return out
}

// History reconstructs the global history Ĥ from the log: each
// process's Issue events become its writes (in order) and Return events
// its reads, with the read-from relation taken from the recorded From
// fields.
func (l *Log) History() (*history.History, error) {
	locals := make([][]history.Op, l.NumProcs)
	for _, e := range l.Events {
		switch e.Kind {
		case Issue:
			locals[e.Proc] = append(locals[e.Proc], history.Op{
				Kind: history.Write, Proc: e.Proc, Var: e.Var, Val: e.Val, ID: e.Write,
			})
		case Return:
			locals[e.Proc] = append(locals[e.Proc], history.Op{
				Kind: history.Read, Proc: e.Proc, Var: e.Var, Val: e.Val, From: e.From,
			})
		}
	}
	return history.FromOps(locals)
}

// Delay describes one write delay (Definition 3): the receipt at Proc
// of Write was buffered, and the update applied only DelayTime
// nanoseconds later.
type Delay struct {
	Proc      int
	Write     history.WriteID
	ReceiptAt int64
	AppliedAt int64
	// Discarded marks delays resolved by a Discard rather than an Apply.
	Discarded bool
}

// Duration returns the buffering time in nanoseconds.
func (d Delay) Duration() int64 { return d.AppliedAt - d.ReceiptAt }

// Delays extracts every write delay from the log by matching buffered
// Receipt events with their later Apply/Discard at the same process.
func (l *Log) Delays() []Delay {
	type key struct {
		p int
		w history.WriteID
	}
	pendingAt := make(map[key]int64)
	var out []Delay
	for _, e := range l.Events {
		k := key{e.Proc, e.Write}
		switch e.Kind {
		case Receipt:
			if e.Buffered {
				pendingAt[k] = e.Time
			}
		case Apply, Discard, Drop:
			if t0, ok := pendingAt[k]; ok {
				out = append(out, Delay{
					Proc: e.Proc, Write: e.Write,
					ReceiptAt: t0, AppliedAt: e.Time,
					Discarded: e.Kind != Apply,
				})
				delete(pendingAt, k)
			}
		}
	}
	return out
}

// DelayCount returns the total number of write delays in the run.
func (l *Log) DelayCount() int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == Receipt && e.Buffered {
			n++
		}
	}
	return n
}

// DelayCountPerProc returns write delays broken down by process.
func (l *Log) DelayCountPerProc() []int {
	out := make([]int, l.NumProcs)
	for _, e := range l.Events {
		if e.Kind == Receipt && e.Buffered {
			out[e.Proc]++
		}
	}
	return out
}

// ReceiptCount returns the total number of receipts (delayed or not),
// the denominator of the delay-rate metric.
func (l *Log) ReceiptCount() int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == Receipt {
			n++
		}
	}
	return n
}

// DiscardCount returns the number of updates discarded (writing
// semantics only; always 0 for protocols in 𝒫).
func (l *Log) DiscardCount() int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == Discard {
			n++
		}
	}
	return n
}

// Occupancy tracks the pending-buffer population over the run.
type Occupancy struct {
	// MaxPerProc[p] is the largest pending-buffer size seen at p.
	MaxPerProc []int
	// Max is the largest pending-buffer size seen anywhere.
	Max int
	// MeanTimeWeighted is the time-weighted mean of the total buffered
	// population across all processes (0 when the run has no duration).
	MeanTimeWeighted float64
}

// BufferOccupancy reconstructs pending-buffer population from buffered
// receipts and their resolving applies/discards.
func (l *Log) BufferOccupancy() Occupancy {
	occ := Occupancy{MaxPerProc: make([]int, l.NumProcs)}
	cur := make([]int, l.NumProcs)
	type key struct {
		p int
		w history.WriteID
	}
	buffered := make(map[key]bool)
	total := 0
	var lastT, start int64
	var area float64
	first := true
	for _, e := range l.Events {
		if first {
			start, lastT = e.Time, e.Time
			first = false
		}
		area += float64(total) * float64(e.Time-lastT)
		lastT = e.Time
		k := key{e.Proc, e.Write}
		switch e.Kind {
		case Receipt:
			if e.Buffered {
				buffered[k] = true
				cur[e.Proc]++
				total++
				if cur[e.Proc] > occ.MaxPerProc[e.Proc] {
					occ.MaxPerProc[e.Proc] = cur[e.Proc]
				}
				if total > occ.Max {
					occ.Max = total
				}
			}
		case Apply, Discard, Drop:
			if buffered[k] {
				delete(buffered, k)
				cur[e.Proc]--
				total--
			}
		}
	}
	if lastT > start {
		occ.MeanTimeWeighted = area / float64(lastT-start)
	}
	return occ
}

// RetransmitCount returns the number of reliability-sublayer re-sends.
func (l *Log) RetransmitCount() int { return l.countKind(Retransmit) }

// NetDropCount returns the number of frames lost to fault injection.
func (l *Log) NetDropCount() int { return l.countKind(NetDrop) }

// DupDiscardCount returns the number of duplicate frames suppressed by
// receiver-side dedup.
func (l *Log) DupDiscardCount() int { return l.countKind(DupDiscard) }

// CrashCount returns the number of crash-stops in the run.
func (l *Log) CrashCount() int { return l.countKind(Crash) }

// RecoverCount returns the number of restarts from the WAL.
func (l *Log) RecoverCount() int { return l.countKind(Recover) }

// SuspectCount returns the number of failure-detector suspicions.
func (l *Log) SuspectCount() int { return l.countKind(Suspect) }

// AliveCount returns the number of cleared suspicions (peer heard again).
func (l *Log) AliveCount() int { return l.countKind(Alive) }

func (l *Log) countKind(k EventKind) int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// WritesIssued returns the number of Issue events.
func (l *Log) WritesIssued() int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == Issue {
			n++
		}
	}
	return n
}

// ReadsReturned returns the number of Return events.
func (l *Log) ReadsReturned() int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == Return {
			n++
		}
	}
	return n
}

// AppliesAt returns, for process p, the ordered list of writes applied
// (Apply events) there, including local applies recorded as Issue.
//
// Under partial replication an Issue of a variable the writer does not
// replicate is not a local apply — the writer multicasts the update to
// the share-set without installing it — so such Issues are excluded.
// (A forwarded read can place an addressed-but-not-yet-applied write in
// the writer's causal past, so counting the Issue as an apply would
// fabricate ordering constraints the protocol never promises.)
func (l *Log) AppliesAt(p int) []history.WriteID {
	var out []history.WriteID
	for _, e := range l.Events {
		if e.Proc != p {
			continue
		}
		if e.Kind == Apply || (e.Kind == Issue && l.Replicated(p, e.Var)) {
			out = append(out, e.Write)
		}
	}
	return out
}

// VisibilityLatencies returns, for every (write, remote process) pair,
// the time from the write's Issue to its Apply (or logical apply via
// Discard) at that process — the propagation latency end users
// experience. Writes never applied at a process contribute nothing.
func (l *Log) VisibilityLatencies() []int64 {
	issued := make(map[history.WriteID]int64)
	for _, e := range l.Events {
		if e.Kind == Issue {
			issued[e.Write] = e.Time
		}
	}
	var out []int64
	for _, e := range l.Events {
		if e.Kind != Apply && e.Kind != Discard {
			continue
		}
		if t0, ok := issued[e.Write]; ok {
			out = append(out, e.Time-t0)
		}
	}
	return out
}

// LogicallyAppliedAt is AppliesAt but also counting Discards as logical
// applies (the writing-semantics reading of "applied"). Issues of
// non-replicated variables are excluded, as in AppliesAt.
func (l *Log) LogicallyAppliedAt(p int) []history.WriteID {
	var out []history.WriteID
	for _, e := range l.Events {
		if e.Proc != p {
			continue
		}
		switch e.Kind {
		case Apply, Discard:
			out = append(out, e.Write)
		case Issue:
			if l.Replicated(p, e.Var) {
				out = append(out, e.Write)
			}
		}
	}
	return out
}

// LogicallyAppliedPerProc returns LogicallyAppliedAt for every process
// in one pass over the log. The checker's per-process audit previously
// called LogicallyAppliedAt once per process — O(procs·events) on logs
// where events already dominate — so the audit hot path uses this
// instead.
func (l *Log) LogicallyAppliedPerProc() [][]history.WriteID {
	out := make([][]history.WriteID, l.NumProcs)
	for _, e := range l.Events {
		switch e.Kind {
		case Apply, Discard:
			out[e.Proc] = append(out[e.Proc], e.Write)
		case Issue:
			if l.Replicated(e.Proc, e.Var) {
				out[e.Proc] = append(out[e.Proc], e.Write)
			}
		}
	}
	return out
}
