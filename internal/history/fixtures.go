package history

// This file provides the paper's worked example as a reusable fixture.
//
// Example 1 (history Ĥ1):
//
//	h1: w1(x1)a; w1(x1)c
//	h2: r2(x1)a; w2(x2)b
//	h3: r3(x2)b; w3(x2)d
//
// with →co facts: w1(x1)a →co w2(x2)b, w1(x1)a →co w1(x1)c,
// w2(x2)b →co w3(x2)d, and w1(x1)c ‖co w2(x2)b, w1(x1)c ‖co w3(x2)d.

// Values used by Ĥ1. Values are int64 in the model; these constants map
// to the paper's letters for rendering.
const (
	ValA int64 = 1
	ValB int64 = 2
	ValC int64 = 3
	ValD int64 = 4
)

// ValueName renders Ĥ1's values as the paper's letters; other values
// render as numbers by the callers that use this.
func ValueName(v int64) (string, bool) {
	switch v {
	case ValA:
		return "a", true
	case ValB:
		return "b", true
	case ValC:
		return "c", true
	case ValD:
		return "d", true
	default:
		return "", false
	}
}

// H1 constructs the paper's Example 1 history. The returned WriteIDs are
// (in order) w1(x1)a, w1(x1)c, w2(x2)b, w3(x2)d.
func H1() (*History, [4]WriteID) {
	b := NewBuilder(3)
	wa := b.Write(0, 0, ValA) // w1(x1)a
	wc := b.Write(0, 0, ValC) // w1(x1)c
	b.Read(1, 0, ValA)        // r2(x1)a
	wb := b.Write(1, 1, ValB) // w2(x2)b
	b.Read(2, 1, ValB)        // r3(x2)b
	wd := b.Write(2, 1, ValD) // w3(x2)d
	return b.MustFinish(), [4]WriteID{wa, wc, wb, wd}
}
