package service_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/vclock"
)

// startServer builds a cluster and a server over it, wiring teardown.
func startServer(t *testing.T, ccfg core.Config, scfg service.Config) (*service.Server, *core.Cluster) {
	t.Helper()
	cl, err := core.NewCluster(ccfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	scfg.Cluster = cl
	srv, err := service.New(scfg)
	if err != nil {
		cl.Close()
		t.Fatalf("service.New: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Close()
	})
	return srv, cl
}

// dial connects a client to srv, wiring teardown.
func dial(t *testing.T, srv *service.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPingReadWrite(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 3, Variables: 4},
		service.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	s := c.Session()
	if err := s.Write(ctx, 2, 41); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := s.Write(ctx, 2, 42); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// The session token makes this read-your-writes on any replica.
	for p := 0; p < 3; p++ {
		v, err := s.Use(p).Read(ctx, 2)
		if err != nil {
			t.Fatalf("Read at %d: %v", p, err)
		}
		if v != 42 {
			t.Fatalf("Read at %d = %d, want 42", p, v)
		}
	}
	if tok := s.Token(); len(tok) != 3 {
		t.Fatalf("session token %v, want dimension 3", tok)
	}
}

func TestWSSendClustersRejected(t *testing.T) {
	cl, err := core.NewCluster(core.Config{Processes: 2, Variables: 1, Protocol: protocol.WSSend})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	if _, err := service.New(service.Config{Cluster: cl}); err == nil {
		t.Fatal("service.New accepted a WSSend cluster; its apply frontiers never converge")
	}
}

func TestPartiallyReplicatedClustersRejected(t *testing.T) {
	cl, err := core.NewCluster(core.Config{
		Processes: 2, Variables: 2, Protocol: protocol.PartialRep,
		ShareSets: [][]int{{0}, {1}},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	if _, err := service.New(service.Config{Cluster: cl}); err == nil {
		t.Fatal("service.New accepted a partially replicated cluster; session frontier waits assume full replication")
	}
}

func TestBadRequests(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 2, Variables: 2},
		service.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	cases := []protocol.Request{
		{Kind: protocol.ReqRead, Proc: -1, Var: 99},                           // variable out of range
		{Kind: protocol.ReqRead, Proc: 7, Var: 0},                             // replica out of range
		{Kind: protocol.ReqRead, Proc: -1, Var: 0, Token: vclock.VC{1, 2, 3}}, // token dimension mismatch
	}
	for _, req := range cases {
		if _, err := c.Do(ctx, req); !errors.Is(err, client.ErrBadRequest) {
			t.Fatalf("Do(%+v) = %v, want ErrBadRequest", req, err)
		}
	}
	// The connection survives bad requests.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("Ping after bad requests: %v", err)
	}
}

func TestNoWaitFailsFast(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 30 * time.Second})
	c := dial(t, srv)
	// A forged token ahead of anything written: NoWait must fail
	// immediately rather than sitting out the 30s WaitTimeout.
	start := time.Now()
	_, err := c.Do(context.Background(), protocol.Request{
		Kind: protocol.ReqRead, Proc: 0, Var: 0,
		Token: vclock.VC{100, 100}, NoWait: true,
	})
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("NoWait read = %v, want ErrUnavailable", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("NoWait read took %v", d)
	}
}

// Graceful shutdown must let an in-flight frontier wait finish and
// flush its response: a write lands at p0, a token-carrying read is
// pinned to lagging p1, and Shutdown races the 60ms propagation.
func TestShutdownDrainsInFlight(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 2, Variables: 1,
			MinDelay: 60 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Seed: 1},
		service.Config{WaitTimeout: 10 * time.Second})
	c := dial(t, srv)
	ctx := context.Background()
	s := c.Session().Use(0)
	if err := s.Write(ctx, 0, 7); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make(chan error, 1)
	var val int64
	go func() {
		v, err := s.Use(1).Read(ctx, 0)
		val = v
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the read hit its frontier wait
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-got; err != nil {
		t.Fatalf("in-flight read failed across shutdown: %v", err)
	}
	if val != 7 {
		t.Fatalf("in-flight read = %d, want 7", val)
	}
	if err := srv.Shutdown(context.Background()); !errors.Is(err, service.ErrServerClosed) {
		t.Fatalf("second Shutdown = %v, want ErrServerClosed", err)
	}
}

// Close is the abort path: a frontier wait that can never be satisfied
// must return StatusShutdown promptly instead of running out its (long)
// WaitTimeout.
func TestCloseAbortsWaits(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 2, Variables: 1},
		service.Config{WaitTimeout: 30 * time.Second})
	c := dial(t, srv)
	got := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), protocol.Request{
			Kind: protocol.ReqRead, Proc: 0, Var: 0, Token: vclock.VC{100, 100},
		})
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	err := <-got
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v to abort the wait", d)
	}
	// The wait aborts as StatusShutdown, or the teardown severs the
	// connection first — both are orderly ends.
	if !errors.Is(err, client.ErrShutdown) && !errors.Is(err, client.ErrClosed) {
		t.Fatalf("aborted read = %v, want ErrShutdown or ErrClosed", err)
	}
}

// Pinned requests to a crash-stopped replica fail Unavailable; after a
// WAL restart the same session token is honored again — recovery
// restores the applied frontier, so read-your-writes spans the crash.
func TestCrashRestartTokenResumption(t *testing.T) {
	srv, cl := startServer(t,
		core.Config{Processes: 2, Variables: 2, WALDir: t.TempDir()},
		service.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	s := c.Session().Use(0)
	for i := int64(1); i <= 3; i++ {
		if err := s.Write(ctx, 1, i); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	tok := s.Token()
	if err := cl.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := s.Read(ctx, 1); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("read at crashed replica = %v, want ErrUnavailable", err)
	}
	if _, err := cl.Restart(0); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	// A fresh connection and session resume the old token: the restarted
	// replica's recovered frontier must dominate it.
	c2 := dial(t, srv)
	s2 := c2.Session().Use(0)
	s2.Resume(tok)
	v, err := s2.Read(ctx, 1)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if v != 3 {
		t.Fatalf("read after restart = %d, want 3", v)
	}
}

// A token from a cluster that lost its data (no WAL, fresh state) must
// never be served as if the writes existed: the frontier cannot
// dominate it, so the read fails instead of returning stale zeroes.
func TestAmnesiacRestartBlocksToken(t *testing.T) {
	srv, _ := startServer(t,
		core.Config{Processes: 2, Variables: 2},
		service.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	s := c.Session().Use(0)
	for i := int64(1); i <= 3; i++ {
		if err := s.Write(ctx, 1, i); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	tok := s.Token()

	// "Restart" without durability: a brand-new cluster and server.
	srv2, _ := startServer(t,
		core.Config{Processes: 2, Variables: 2},
		service.Config{})
	c2 := dial(t, srv2)
	s2 := c2.Session()
	s2.Resume(tok)
	_, err := c2.Do(ctx, protocol.Request{
		Kind: protocol.ReqRead, Proc: -1, Var: 1, Token: tok, NoWait: true,
	})
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("read with pre-wipe token = %v, want ErrUnavailable", err)
	}
}

// The round-robin picker must route around crash-stopped replicas.
func TestPickSkipsDownReplicas(t *testing.T) {
	srv, cl := startServer(t,
		core.Config{Processes: 3, Variables: 1, WALDir: t.TempDir()},
		service.Config{})
	c := dial(t, srv)
	ctx := context.Background()
	if err := cl.Crash(1); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	s := c.Session()
	for i := 0; i < 12; i++ {
		resp, err := c.Do(ctx, protocol.Request{Kind: protocol.ReqRead, Proc: -1, Var: 0})
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if resp.Proc == 1 {
			t.Fatalf("read %d served by crashed replica 1", i)
		}
	}
	if err := s.Write(ctx, 0, 9); err != nil {
		t.Fatalf("Write with a replica down: %v", err)
	}
}
