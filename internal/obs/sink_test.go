package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/trace"
)

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf, 16)
	events := []trace.Event{
		{Seq: 0, Kind: trace.Issue, Proc: 0, Time: 10, Write: history.WriteID{Proc: 0, Seq: 0}, Var: 1, Val: 42},
		{Seq: 1, Kind: trace.Receipt, Proc: 1, Time: 20, Write: history.WriteID{Proc: 0, Seq: 0}, Var: 1, Val: 42, Buffered: true},
		{Seq: 2, Kind: trace.Apply, Proc: 1, Time: 30, Write: history.WriteID{Proc: 0, Seq: 0}, Var: 1, Val: 42},
	}
	for _, e := range events {
		s.Record(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Dropped(); got != 0 {
		t.Errorf("dropped = %d, want 0", got)
	}

	// Each line is one trace.JSONEvent — the same wire schema
	// Log.WriteJSON uses, minus the envelope.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	var got []trace.Event
	for sc.Scan() {
		var je trace.JSONEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			t.Fatalf("line %d: %v", len(got), err)
		}
		e, err := je.Event()
		if err != nil {
			t.Fatalf("line %d: %v", len(got), err)
		}
		got = append(got, e)
	}
	if len(got) != len(events) {
		t.Fatalf("round-tripped %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d round-trip = %+v, want %+v", i, got[i], events[i])
		}
	}
}

// blockedWriter blocks every Write until released, to wedge the drain
// goroutine deterministically.
type blockedWriter struct{ release chan struct{} }

func (w *blockedWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestJSONLSinkDropsInsteadOfBlocking(t *testing.T) {
	w := &blockedWriter{release: make(chan struct{})}
	// bufio only hits the writer once its 4 KiB buffer fills, so feed
	// enough events through a tiny ring to wedge the drainer.
	s := NewJSONLSink(w, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			s.Record(trace.Event{Kind: trace.Issue, Proc: 0, Time: int64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked the producer")
	}
	if s.Dropped() == 0 {
		t.Error("expected overflow drops with a wedged writer")
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Record after Close must stay safe and count as a drop.
	before := s.Dropped()
	s.Record(trace.Event{Kind: trace.Issue})
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := s.Dropped(); got < before {
		t.Errorf("dropped went backwards: %d -> %d", before, got)
	}
}

func TestJSONLSinkRegisterMetrics(t *testing.T) {
	s := NewJSONLSink(io.Discard, 4)
	defer s.Close()
	reg := NewRegistry()
	s.RegisterMetrics(reg, L("protocol", "optp"))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `dsm_sink_dropped_total{protocol="optp"} 0`) {
		t.Errorf("exposition missing sink drop gauge:\n%s", sb.String())
	}
}

func TestSpanStreamer(t *testing.T) {
	var buf bytes.Buffer
	st := NewSpanStreamer(&buf, 16)
	spans := []Span{
		{WriteProc: 0, WriteSeq: 0, Proc: 1, IssueNs: 10, ReceiptNs: 20, ApplyNs: 30},
		{WriteProc: 0, WriteSeq: 1, Proc: 1, IssueNs: 40, ReceiptNs: 50, ApplyNs: 90, BufferedWaitNs: 40, Discarded: true},
	}
	for _, sp := range spans {
		st.Record(sp)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	var got []Span
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatal(err)
		}
		got = append(got, sp)
	}
	if len(got) != 2 || got[0] != spans[0] || got[1] != spans[1] {
		t.Errorf("round-trip = %+v, want %+v", got, spans)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	st.Record(Span{}) // safe after Close
}

func TestWriteSpans(t *testing.T) {
	o := NewObserver(Options{Procs: 2, Protocol: "optp"})
	w := history.WriteID{Proc: 0, Seq: 0}
	o.Observe(trace.Event{Kind: trace.Issue, Proc: 0, Time: 1, Write: w})
	o.Observe(trace.Event{Kind: trace.Receipt, Proc: 1, Time: 2, Write: w})
	o.Observe(trace.Event{Kind: trace.Apply, Proc: 1, Time: 3, Write: w})
	var buf bytes.Buffer
	if err := o.WriteSpans(&buf); err != nil {
		t.Fatal(err)
	}
	var sp Span
	if err := json.Unmarshal(buf.Bytes(), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.ApplyNs != 3 || sp.Proc != 1 {
		t.Errorf("dumped span = %+v", sp)
	}
}

func TestReporter(t *testing.T) {
	o := NewObserver(Options{Procs: 1, Protocol: "optp"})
	var buf bytes.Buffer
	r := NewReporter(o, &buf, time.Hour) // ticker never fires in-test
	r.Start()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "[obs ") || !strings.Contains(out, "writes=0") {
		t.Errorf("reporter final line = %q", out)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Errorf("reporter printed %d lines, want exactly the final one", n)
	}
}
