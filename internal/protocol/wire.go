package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/history"
	"repro/internal/vclock"
)

// This file is the client/server wire protocol of the serving tier
// (internal/service, cmd/dsmd): tagged request/response messages plus
// the compact session token that carries a vclock frontier between
// client and server.
//
// Frames on the socket are uvarint-length-prefixed, exactly like the
// TCP transport's update frames; this file encodes only the payloads.
//
// Wire format of a Request (all integers varint/uvarint):
//
//	tag            — pipelining tag, echoed verbatim on the response
//	kind           — ReqPing / ReqRead / ReqWrite
//	proc           — serving replica (-1: server picks)
//	var, val       — location and (for writes) payload
//	token          — session token, delta-encoded against the zero clock
//	flags          — bit 0: NoWait (fail instead of blocking on a
//	                 lagging frontier)
//	sid, opSeq     — exactly-once identity of a mutating request: sid
//	                 names the issuing client session, opSeq counts its
//	                 mutating ops. A retried write re-sends the same
//	                 (sid, opSeq) — possibly on a new connection — and
//	                 the server's dedup window applies it once. 0/0
//	                 means "no retry identity" (reads, pings, legacy).
//	[traceID, traceFlags] — OPTIONAL trace context, present iff bytes
//	                 remain after opSeq: a nonzero trace ID joining the
//	                 client's and server's records of this call, and
//	                 flags (bit 0: force tail-sampling). A frame that
//	                 ends at opSeq carries no trace context — old
//	                 clients interoperate unchanged. A present-but-zero
//	                 trace ID or an unknown flag bit is corrupt: the
//	                 encoder never emits either, and accepting them
//	                 would break decode→encode→decode equality.
//
// Wire format of a Response:
//
//	tag            — echoed request tag
//	status         — StatusOK / StatusBadRequest / ...
//	proc           — replica that served the request
//	val            — read result (or echoed write payload)
//	fromProc,fromSeq — WriteID of the write that produced val
//	token          — new session token, delta-encoded against the
//	                 request's token (absent when unchanged/unknown)
//	errlen, err    — human-readable detail for non-OK statuses
//	[traceID, nstages, (stage, ns)...] — OPTIONAL trace echo, present
//	                 iff bytes remain after err: the request's trace ID
//	                 plus the server's per-stage latency decomposition
//	                 of this request (stage indexes strictly increasing,
//	                 each < MaxTraceStage), echoed only for sampled
//	                 requests so the client can fold server time into
//	                 its own record of the call.
//
// The session token is a vclock frontier: component j is the number of
// writes issued by process j that the session has (transitively)
// observed. Responses encode it as a delta against the token the
// request carried — on a settled session only the components that
// advanced travel, typically a handful of bytes — and requests encode
// it against the zero clock (a sparse encoding: absent components are
// zero).

// Request kinds.
const (
	// ReqPing is a health/liveness probe; it round-trips the tag.
	ReqPing uint8 = iota
	// ReqRead reads one variable at the serving replica, blocking (or
	// failing, with FlagNoWait) until the replica's applied frontier
	// dominates the request token.
	ReqRead
	// ReqWrite writes one variable at the serving replica.
	ReqWrite
	reqKinds // sentinel: number of request kinds
)

// Request flag bits.
const (
	// FlagNoWait makes a lagging frontier an immediate StatusUnavailable
	// instead of a blocking wait.
	FlagNoWait uint64 = 1 << iota
)

// Trace-context flag bits (the second field of the optional trailing
// trace context; a separate namespace from the request flags).
const (
	// TraceSampled forces tail-sampling of this request at the server
	// regardless of its latency or outcome.
	TraceSampled uint64 = 1 << iota

	// traceFlagsKnown masks the defined trace flag bits; anything else
	// on the wire is corrupt.
	traceFlagsKnown = TraceSampled
)

// MaxTraceStage bounds the stage indexes a response's trace echo may
// carry (the server-side stage enum of internal/obs/reqtrace is far
// below this; the slack leaves room to add stages without a wire
// break).
const MaxTraceStage = 16

// Response statuses.
const (
	// StatusOK reports success.
	StatusOK uint8 = iota
	// StatusBadRequest reports a malformed or out-of-range request.
	StatusBadRequest
	// StatusUnavailable reports a frontier wait that timed out (or, with
	// FlagNoWait, would have blocked), or a crash-stopped replica.
	StatusUnavailable
	// StatusShutdown reports a request received while the server drains.
	StatusShutdown
	// StatusRetry reports a transient condition — a frontier wait that
	// ran out its server-side deadline with no replica able to take the
	// failover, or a wait interrupted by a replica crash. The request
	// was NOT applied (or, for a deduplicated write, its cached verdict
	// travels instead); retrying it, with backoff, is safe and expected.
	StatusRetry
	// StatusOverloaded reports load shedding: the server's in-flight
	// watermark or a write pump's admission queue is full, and the
	// request was fast-rejected without being served. Retry with
	// backoff.
	StatusOverloaded
	statusCount // sentinel: number of response statuses
)

// StatusString names a response status for errors and logs.
func StatusString(s uint8) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusUnavailable:
		return "unavailable"
	case StatusShutdown:
		return "shutdown"
	case StatusRetry:
		return "retry"
	case StatusOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("status(%d)", s)
	}
}

// Wire-protocol decode errors.
var (
	// ErrWireTruncated reports a buffer ending inside an encoded message.
	ErrWireTruncated = errors.New("protocol: truncated wire message")
	// ErrWireCorrupt reports a structurally invalid message (absurd
	// dimension, oversized string, unknown trailing bytes).
	ErrWireCorrupt = errors.New("protocol: corrupt wire message")
)

// MaxTokenDim bounds the session-token dimension a decoder accepts.
// The TCP transport caps clusters at 255 processes; anything beyond
// this bound is a corrupt or hostile frame, rejected before the
// decoder allocates for it.
const MaxTokenDim = 4096

// maxWireErr bounds the error-detail string a response may carry.
const maxWireErr = 1024

// Request is one client→server message.
type Request struct {
	// Tag is the pipelining tag: the client chooses it, the server
	// echoes it, and responses may return in any order.
	Tag uint64
	// Kind is ReqPing, ReqRead or ReqWrite.
	Kind uint8
	// Proc selects the serving replica; -1 lets the server pick.
	Proc int
	// Var and Val are the location and (for writes) the payload.
	Var int
	Val int64
	// Token is the session token (nil for a fresh session).
	Token vclock.VC
	// NoWait maps to FlagNoWait.
	NoWait bool
	// SID and OpSeq are the request's exactly-once identity: SID names
	// the issuing client session, OpSeq its mutating-op counter. The
	// pair keys the server's dedup window so a retried write applies
	// once. Both zero means no retry identity.
	SID   uint64
	OpSeq uint64
	// TraceID is the optional trace context: nonzero joins this call's
	// client- and server-side trace records; zero means untraced (and
	// encodes as an absent trailing field, so old peers interoperate).
	TraceID uint64
	// TraceSampled forces server-side tail-sampling of this request.
	// Meaningless (and never encoded) without a TraceID.
	TraceSampled bool
}

// Response is one server→client message.
type Response struct {
	// Tag echoes the request tag.
	Tag uint64
	// Status classifies the outcome.
	Status uint8
	// Proc is the replica that served the request.
	Proc int
	// Val is the read result (reads) or the echoed payload (writes).
	Val int64
	// From identifies the write that produced Val (reads).
	From history.WriteID
	// Token is the advanced session token; nil means "unchanged".
	Token vclock.VC
	// Err carries human-readable detail for non-OK statuses.
	Err string
	// TraceID echoes the request's trace context; zero encodes as an
	// absent trailing field.
	TraceID uint64
	// TraceStages is the server's per-stage latency decomposition of
	// this request as (stage, ns) pairs — stage indexes strictly
	// increasing, each < MaxTraceStage — echoed only for sampled
	// requests (it travels only with a nonzero TraceID).
	TraceStages [][2]uint64
}

// AppendToken appends the delta encoding of tok against base: a
// uvarint dimension followed by vclock delta pairs. A nil tok encodes
// as dimension 0 ("no token"). When base's dimension differs from
// tok's, the zero clock substitutes — that is the full (sparse)
// encoding. tok must dominate base component-wise when the dimensions
// match; AppendToken panics otherwise, like vclock.AppendDelta,
// because emitting a wrong delta would silently corrupt the session.
func AppendToken(dst []byte, tok, base vclock.VC) []byte {
	if len(tok) == 0 {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(tok)))
	if len(base) != len(tok) {
		base = vclock.New(len(tok))
	}
	return tok.AppendDelta(dst, base)
}

// DecodeToken decodes an AppendToken encoding from the front of buf,
// reconstructing the token on top of base (ignored when its dimension
// disagrees with the encoded one). It returns the token (nil when the
// encoding says "no token") and the bytes consumed.
func DecodeToken(buf []byte, base vclock.VC) (vclock.VC, int, error) {
	dim, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: token dimension", ErrWireTruncated)
	}
	if dim == 0 {
		return nil, k, nil
	}
	if dim > MaxTokenDim {
		return nil, 0, fmt.Errorf("%w: token dimension %d exceeds %d", ErrWireCorrupt, dim, MaxTokenDim)
	}
	if len(base) != int(dim) {
		base = vclock.New(int(dim))
	}
	tok, n, err := vclock.DecodeDelta(buf[k:], base)
	if err != nil {
		return nil, 0, fmt.Errorf("protocol: token delta: %w", err)
	}
	return tok, k + n, nil
}

// AppendBinary appends the wire encoding of r to dst. The token is
// encoded against the zero clock (see AppendToken).
func (r Request) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, r.Tag)
	dst = binary.AppendUvarint(dst, uint64(r.Kind))
	dst = binary.AppendVarint(dst, int64(r.Proc))
	dst = binary.AppendVarint(dst, int64(r.Var))
	dst = binary.AppendVarint(dst, r.Val)
	dst = AppendToken(dst, r.Token, nil)
	var flags uint64
	if r.NoWait {
		flags |= FlagNoWait
	}
	dst = binary.AppendUvarint(dst, flags)
	dst = binary.AppendUvarint(dst, r.SID)
	dst = binary.AppendUvarint(dst, r.OpSeq)
	if r.TraceID != 0 {
		dst = binary.AppendUvarint(dst, r.TraceID)
		var tf uint64
		if r.TraceSampled {
			tf |= TraceSampled
		}
		dst = binary.AppendUvarint(dst, tf)
	}
	return dst
}

// DecodeRequest decodes one request from the front of buf, returning
// it and the bytes consumed.
func DecodeRequest(buf []byte) (Request, int, error) {
	var r Request
	d := wireDecoder{buf: buf}
	r.Tag = d.uvarint()
	kind := d.uvarint()
	r.Proc = int(d.varint())
	r.Var = int(d.varint())
	r.Val = d.varint()
	r.Token = d.token(nil)
	flags := d.uvarint()
	r.SID = d.uvarint()
	r.OpSeq = d.uvarint()
	if d.err == nil && d.off < len(d.buf) {
		// Bytes remain past the mandatory fields: trace context.
		r.TraceID = d.uvarint()
		tf := d.uvarint()
		if d.err == nil {
			if r.TraceID == 0 {
				return Request{}, 0, fmt.Errorf("%w: trace context with zero trace ID", ErrWireCorrupt)
			}
			if tf&^traceFlagsKnown != 0 {
				return Request{}, 0, fmt.Errorf("%w: unknown trace flags %#x", ErrWireCorrupt, tf)
			}
			r.TraceSampled = tf&TraceSampled != 0
		}
	}
	if d.err != nil {
		return Request{}, 0, d.err
	}
	if kind >= uint64(reqKinds) {
		return Request{}, 0, fmt.Errorf("%w: request kind %d", ErrWireCorrupt, kind)
	}
	r.Kind = uint8(kind)
	r.NoWait = flags&FlagNoWait != 0
	return r, d.off, nil
}

// AppendBinary appends the wire encoding of r to dst, delta-encoding
// the token against base — the token of the request being answered.
func (r Response) AppendBinary(dst []byte, base vclock.VC) []byte {
	dst = binary.AppendUvarint(dst, r.Tag)
	dst = binary.AppendUvarint(dst, uint64(r.Status))
	dst = binary.AppendVarint(dst, int64(r.Proc))
	dst = binary.AppendVarint(dst, r.Val)
	dst = binary.AppendVarint(dst, int64(r.From.Proc))
	dst = binary.AppendVarint(dst, int64(r.From.Seq))
	dst = AppendToken(dst, r.Token, base)
	err := r.Err
	if len(err) > maxWireErr {
		err = err[:maxWireErr]
	}
	dst = binary.AppendUvarint(dst, uint64(len(err)))
	dst = append(dst, err...)
	if r.TraceID != 0 {
		dst = binary.AppendUvarint(dst, r.TraceID)
		dst = binary.AppendUvarint(dst, uint64(len(r.TraceStages)))
		for _, sn := range r.TraceStages {
			dst = binary.AppendUvarint(dst, sn[0])
			dst = binary.AppendUvarint(dst, sn[1])
		}
	}
	return dst
}

// DecodeResponse decodes one response from the front of buf,
// reconstructing the token on top of base — the token the matching
// request carried, which the client looks up by peeking the tag (see
// PeekTag). It returns the response and the bytes consumed.
func DecodeResponse(buf []byte, base vclock.VC) (Response, int, error) {
	var r Response
	d := wireDecoder{buf: buf}
	r.Tag = d.uvarint()
	status := d.uvarint()
	r.Proc = int(d.varint())
	r.Val = d.varint()
	r.From.Proc = int(d.varint())
	r.From.Seq = int(d.varint())
	r.Token = d.token(base)
	errLen := d.uvarint()
	if d.err != nil {
		return Response{}, 0, d.err
	}
	if status >= uint64(statusCount) {
		return Response{}, 0, fmt.Errorf("%w: response status %d", ErrWireCorrupt, status)
	}
	if errLen > maxWireErr {
		return Response{}, 0, fmt.Errorf("%w: error detail %d bytes exceeds %d", ErrWireCorrupt, errLen, maxWireErr)
	}
	if uint64(len(d.buf)-d.off) < errLen {
		return Response{}, 0, fmt.Errorf("%w: error detail", ErrWireTruncated)
	}
	r.Status = uint8(status)
	r.Err = string(d.buf[d.off : d.off+int(errLen)])
	d.off += int(errLen)
	if d.off < len(d.buf) {
		// Bytes remain past the mandatory fields: trace echo.
		r.TraceID = d.uvarint()
		nstages := d.uvarint()
		if d.err == nil {
			if r.TraceID == 0 {
				return Response{}, 0, fmt.Errorf("%w: trace echo with zero trace ID", ErrWireCorrupt)
			}
			if nstages > MaxTraceStage {
				return Response{}, 0, fmt.Errorf("%w: %d trace stages exceeds %d", ErrWireCorrupt, nstages, MaxTraceStage)
			}
		}
		var prev uint64
		for i := uint64(0); i < nstages && d.err == nil; i++ {
			stage := d.uvarint()
			ns := d.uvarint()
			if d.err != nil {
				break
			}
			if stage >= MaxTraceStage {
				return Response{}, 0, fmt.Errorf("%w: trace stage %d exceeds %d", ErrWireCorrupt, stage, MaxTraceStage)
			}
			if i > 0 && stage <= prev {
				return Response{}, 0, fmt.Errorf("%w: trace stages not strictly increasing", ErrWireCorrupt)
			}
			prev = stage
			r.TraceStages = append(r.TraceStages, [2]uint64{stage, ns})
		}
		if d.err != nil {
			return Response{}, 0, d.err
		}
	}
	return r, d.off, nil
}

// PeekTag reads the leading tag of an encoded request or response
// without decoding the rest — the client's pipelining demultiplexer
// uses it to find the pending call (and its token base) before the
// full DecodeResponse.
func PeekTag(buf []byte) (uint64, error) {
	tag, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, fmt.Errorf("%w: tag", ErrWireTruncated)
	}
	return tag, nil
}

// wireDecoder threads an offset and first-error through the field
// reads, so the per-message decoders read as straight-line code.
type wireDecoder struct {
	buf []byte
	off int
	err error
}

func (d *wireDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.buf[d.off:])
	if k <= 0 {
		d.err = ErrWireTruncated
		return 0
	}
	d.off += k
	return v
}

func (d *wireDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Varint(d.buf[d.off:])
	if k <= 0 {
		d.err = ErrWireTruncated
		return 0
	}
	d.off += k
	return v
}

func (d *wireDecoder) token(base vclock.VC) vclock.VC {
	if d.err != nil {
		return nil
	}
	tok, n, err := DecodeToken(d.buf[d.off:], base)
	if err != nil {
		d.err = err
		return nil
	}
	d.off += n
	return tok
}
