package checker

import (
	"fmt"
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runPartial simulates a PartialRep run under a Modulo share-set
// assignment and returns its log.
func runPartial(t *testing.T, procs, vars, factor int, seed uint64) *trace.Log {
	t.Helper()
	scripts, err := workload.Scripts(workload.Config{
		Procs: procs, Vars: vars, OpsPerProc: 30, WriteRatio: 0.5,
		ThinkMin: 1, ThinkMax: 40, Hot: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Procs: procs, Vars: vars, Protocol: protocol.PartialRep,
		ShareSets: protocol.Modulo(vars, procs, factor).Raw(),
		Latency:   sim.NewUniformLatency(1, 150, seed*7+3),
	}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Log
}

// TestPropertyPartialAuditClean is the correctness property of the
// partial-replication protocol: across seeds and replication factors,
// runs audit clean — safe, causally consistent, every write installed
// at every replicating process exactly once, no stray applies, and no
// unnecessary write delay.
func TestPropertyPartialAuditClean(t *testing.T) {
	for _, shape := range []struct{ procs, vars, factor int }{
		{4, 4, 2}, {6, 6, 2}, {6, 6, 3}, {5, 7, 2},
	} {
		for _, seed := range []uint64{11, 23, 37} {
			label := fmt.Sprintf("P=%d V=%d r=%d seed=%d", shape.procs, shape.vars, shape.factor, seed)
			log := runPartial(t, shape.procs, shape.vars, shape.factor, seed)
			r, err := Audit(log)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !r.PartialReplication {
				t.Fatalf("%s: audit did not notice the share-set assignment", label)
			}
			if !r.Safe() || !r.CausallyConsistent() || !r.InP() || !r.ExactlyOnce() || !r.ShareRespected() {
				t.Fatalf("%s: violations: %s\nsafety=%v legality=%v notApplied=%v stray=%v",
					label, r, r.SafetyViolations, r.LegalityViolations, r.NotApplied, r.StrayApplies)
			}
			if !r.WriteDelayOptimal() {
				t.Fatalf("%s: %d unnecessary delays: %+v", label, r.UnnecessaryDelays, r.Delays)
			}
		}
	}
}

// TestPropertyPartialAuditEquivalence extends the fast-vs-reference
// equivalence contract to partially replicated runs: the share-aware
// liveness scoping, delay pre-marking, and stray-apply scan must agree
// between the vector-frontier engine and the dense oracle.
func TestPropertyPartialAuditEquivalence(t *testing.T) {
	for _, seed := range []uint64{11, 23, 37} {
		log := runPartial(t, 5, 5, 2, seed)
		fast, err := Audit(log)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := AuditReference(log)
		if err != nil {
			t.Fatal(err)
		}
		requireReportsEqual(t, fmt.Sprintf("partial seed %d", seed), fast, ref)
	}
}

// strayApplyLog hand-crafts the negative control: under share-sets
// x0→{p1,p2}, x1→{p2,p3}, process p3 — which replicates only x1 —
// applies the x0 write it should never have received.
func strayApplyLog() *trace.Log {
	w := history.WriteID{Proc: 0, Seq: 1}
	l := trace.NewLog(3, 2)
	l.ShareSets = [][]int{{0, 1}, {1, 2}}
	l.Append(trace.Event{Kind: trace.Issue, Proc: 0, Time: 0, Write: w, Var: 0, Val: 7})
	l.Append(trace.Event{Kind: trace.Receipt, Proc: 1, Time: 1, Write: w, Var: 0})
	l.Append(trace.Event{Kind: trace.Apply, Proc: 1, Time: 1, Write: w, Var: 0, Val: 7})
	// The stray: p3 is outside x0's share-set {p1, p2}.
	l.Append(trace.Event{Kind: trace.Receipt, Proc: 2, Time: 2, Write: w, Var: 0})
	l.Append(trace.Event{Kind: trace.Apply, Proc: 2, Time: 2, Write: w, Var: 0, Val: 7})
	return l
}

// TestStrayApplyNegativeControl pins the new violation class: an apply
// outside the share-set must be flagged — by both engines — while the
// same trace with full replication stays clean.
func TestStrayApplyNegativeControl(t *testing.T) {
	for name, audit := range map[string]func(*trace.Log) (*Report, error){
		"fast": Audit, "reference": AuditReference,
	} {
		r, err := audit(strayApplyLog())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.ShareRespected() {
			t.Fatalf("%s: stray apply at p3 not flagged", name)
		}
		want := StrayApply{Proc: 2, Write: history.WriteID{Proc: 0, Seq: 1}, Var: 0}
		if len(r.StrayApplies) != 1 || r.StrayApplies[0] != want {
			t.Fatalf("%s: StrayApplies = %+v, want [%+v]", name, r.StrayApplies, want)
		}
		// Liveness is scoped to the share-set: p3 missing the write is
		// fine, and the two replicating processes (the issuer p1 and
		// p2) both hold it.
		if !r.InP() {
			t.Fatalf("%s: NotApplied should be empty under the share-set scope, got %+v", name, r.NotApplied)
		}

		// Control: same events, full replication — no strays, but p3's
		// missing apply becomes a genuine liveness hole.
		full := strayApplyLog()
		full.ShareSets = nil
		fr, err := audit(full)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		if !fr.ShareRespected() || fr.PartialReplication {
			t.Fatalf("%s full: share-set machinery leaked into a fully replicated audit: %s", name, fr)
		}
	}
}
