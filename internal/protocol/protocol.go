// Package protocol implements the causal-memory protocols the paper
// studies, behind a single state-machine interface:
//
//   - OptP     — the paper's write-delay-optimal protocol (Figures 4–5),
//     built on the Write_co vector-clock system of Section 4.
//   - ANBKH    — the Ahamad–Neiger–Burns–Kohli–Hutto baseline [1]:
//     causal broadcast ordered by Fidge–Mattern clocks over apply
//     events, the protocol Section 3.6 proves non-optimal.
//   - WSRecv   — receiver-side writing semantics ([2,14]): overwritten
//     values may be skipped and their late messages discarded.
//   - WSSend   — sender-side writing semantics ([7]): a token ring where
//     a holder releases only its last write per variable.
//   - OptPNoReadMerge — ablation: OptP whose Write_co absorbs every
//     applied update (not just read ones), reproducing ANBKH's false
//     causality inside OptP's data structures.
//   - OptPWS   — OptP extended with receiver-side writing semantics,
//     the combination the paper's footnote 8 suggests.
//
// A Replica is a pure, single-threaded protocol state machine: it never
// performs I/O and is driven by an engine (internal/sim for the
// deterministic simulator, internal/core for the live goroutine
// runtime) that owns message transmission, buffering of non-deliverable
// updates, and write-delay accounting.
package protocol

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/vclock"
)

// Kind identifies a protocol.
type Kind int

// The implemented protocols.
const (
	OptP Kind = iota
	ANBKH
	WSRecv
	WSSend
	OptPNoReadMerge
	OptPWS
	PartialRep
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case OptP:
		return "OptP"
	case ANBKH:
		return "ANBKH"
	case WSRecv:
		return "WS-recv"
	case WSSend:
		return "WS-send"
	case OptPNoReadMerge:
		return "OptP-noreadmerge"
	case OptPWS:
		return "OptP-WS"
	case PartialRep:
		return "PartialRep"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a protocol name (as produced by String, case-exact) to
// its Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("protocol: unknown kind %q", s)
}

// Update is the message a write operation broadcasts. Its Clock field
// is protocol-specific: OptP ships the write's Write_co vector, ANBKH
// ships the sender's Fidge–Mattern apply clock, WSSend ships a
// (round, slot) pair encoded in a 2-component vector.
type Update struct {
	// ID names the write: (issuing process, per-process sequence).
	ID history.WriteID
	// Var and Val are the written location and value.
	Var int
	Val int64
	// Clock is the protocol timestamp piggybacked on the message.
	Clock vclock.VC
	// Prev, used by WSRecv, names the write to the same variable that
	// this write overwrites in the sender's view (Bottom if none).
	Prev history.WriteID
	// Round and Slot, used by WSSend, order token batches totally:
	// Round is the global token visit number, Slot the position within
	// the visit's batch of BatchSize updates.
	Round     int
	Slot      int
	BatchSize int
	// Marker flags an empty-batch announcement (WSSend): it carries no
	// write, only the (Round, holder) needed to advance receivers.
	Marker bool
	// ReadReq and ReadReply flag PartialRep read-forwarding messages:
	// a request to read Var on behalf of ID.Proc (Seq is a negative
	// per-requester token), and its answer carrying (Val, Prev, Clock).
	ReadReq   bool
	ReadReply bool
}

// From returns the sending process.
func (u Update) From() int { return u.ID.Proc }

// String renders the update compactly for logs and test failures.
func (u Update) String() string {
	return fmt.Sprintf("%v x%d=%d %v", u.ID, u.Var+1, u.Val, u.Clock)
}

// Deliverability classifies a received update against a replica's
// current state.
type Deliverability int

// Deliverability outcomes.
const (
	// Blocked: some enabling event has not occurred; the engine buffers
	// the update. Per Definition 3 this receipt is a write delay.
	Blocked Deliverability = iota
	// Deliverable: the update can be applied now.
	Deliverable
	// Discardable: writing semantics has already logically applied this
	// write (its value was overwritten); the engine calls Discard, which
	// advances control state without installing the value.
	Discardable
)

// String implements fmt.Stringer.
func (d Deliverability) String() string {
	switch d {
	case Blocked:
		return "blocked"
	case Deliverable:
		return "deliverable"
	case Discardable:
		return "discardable"
	default:
		return fmt.Sprintf("Deliverability(%d)", int(d))
	}
}

// Replica is a per-process causal-memory state machine. Implementations
// are not safe for concurrent use; engines serialize all calls.
type Replica interface {
	// ProcID returns the replica's 0-based process index.
	ProcID() int
	// Kind returns the protocol this replica runs.
	Kind() Kind

	// LocalWrite performs w_i(x)v: updates control state, applies the
	// value locally, and returns the update to propagate. broadcast is
	// false when the protocol defers propagation (WSSend batches until
	// the token arrives), in which case the returned Update is only
	// meaningful for its ID.
	LocalWrite(x int, v int64) (u Update, broadcast bool)

	// Read performs r_i(x): it returns the current value and the ID of
	// the write that produced it (Bottom for ⊥), updating any
	// read-tracking control state (OptP's Write_co merge).
	Read(x int) (int64, history.WriteID)

	// Status classifies a received update against current state.
	Status(u Update) Deliverability

	// Apply installs a remote update. The caller must have observed
	// Status(u) == Deliverable.
	Apply(u Update)

	// Discard logically applies a remote update without installing its
	// value. The caller must have observed Status(u) == Discardable.
	Discard(u Update)
}

// TokenBatcher is implemented by token-circulating protocols (WSSend).
// Engines that see this interface schedule token arrivals and broadcast
// the returned batch each time the replica receives the token.
type TokenBatcher interface {
	// OnToken is invoked when the token reaches this replica for the
	// given round; it returns the updates to broadcast (possibly empty —
	// an empty batch must still be announced so receivers can advance
	// past this round, which engines do by broadcasting the Marker
	// update).
	OnToken(round int) []Update
	// PendingWrites reports how many local writes await the token;
	// engines keep the token circulating while any replica has some.
	PendingWrites() int
}

// Skipper is implemented by writing-semantics replicas that can
// logically apply an overwritten write as part of applying its
// overwriter. Engines consult it before Apply so the trace records the
// logical apply of the skipped write immediately before the apply of
// the skipping one — the paper's "it is like apply(w') is logically
// executed immediately before apply(w)".
type Skipper interface {
	// SkipTarget returns the write that Apply(u) would logically apply
	// first, or Bottom when Apply(u) is an ordinary delivery.
	SkipTarget(u Update) history.WriteID
}

// Introspector exposes protocol control state for renderers (the
// Figure 6 Write_co evolution) and white-box tests. All replicas in
// this package implement it.
type Introspector interface {
	// ControlClock returns a copy of the replica's primary vector
	// (Write_co for OptP, the FM apply clock for ANBKH and WSRecv,
	// a round counter pair for WSSend).
	ControlClock() vclock.VC
	// ApplyClock returns a copy of the Apply vector: component j counts
	// writes of p_j applied (or logically applied) here.
	ApplyClock() vclock.VC
	// Value returns the current (value, writer) of variable x without
	// updating control state.
	Value(x int) (int64, history.WriteID)
}

// New constructs a replica of the given kind for process p of n
// processes over m variables.
func New(kind Kind, p, n, m int) Replica {
	switch kind {
	case OptP:
		return NewOptP(p, n, m)
	case ANBKH:
		return NewANBKH(p, n, m)
	case WSRecv:
		return NewWSRecv(p, n, m)
	case WSSend:
		return NewWSSend(p, n, m)
	case OptPNoReadMerge:
		return NewOptPAblated(p, n, m)
	case OptPWS:
		return NewOptPWS(p, n, m)
	case PartialRep:
		// Full replication by default; engines with a real assignment
		// construct via NewPartialRep directly.
		return NewPartialRep(p, n, m, Full(m, n))
	default:
		panic(fmt.Sprintf("protocol: unknown kind %d", int(kind)))
	}
}

// Kinds lists all implemented protocol kinds, in display order.
func Kinds() []Kind {
	return []Kind{OptP, ANBKH, WSRecv, WSSend, OptPNoReadMerge, OptPWS, PartialRep}
}

// BroadcastKinds lists the protocols that propagate each write
// immediately via broadcast to all peers (every member of class 𝒫 we
// implement plus WSRecv, which broadcasts but may discard). PartialRep
// also propagates immediately but multicasts to the share-set only.
func BroadcastKinds() []Kind {
	return []Kind{OptP, ANBKH, WSRecv, OptPNoReadMerge, OptPWS, PartialRep}
}
