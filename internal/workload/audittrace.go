package workload

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AuditTraceConfig parameterizes AuditTrace, the synthetic run-log
// generator behind BenchmarkAudit and the audit-scale experiment.
type AuditTraceConfig struct {
	// Procs and Vars size the system.
	Procs, Vars int
	// Ops is the total number of issued operations (writes + reads)
	// across all processes.
	Ops int
	// WriteRatio is the probability an operation is a write (0..1).
	WriteRatio float64
	// DelayEvery buffers every k-th remote receipt, opening a
	// head-of-line-blocking episode at the receiver: subsequent
	// receipts queue behind it (necessary delays when causally related)
	// until the episode flushes. 0 disables buffering entirely.
	DelayEvery int
	// FlushAfter is the number of issue steps an episode survives
	// before its queue flushes in order; defaults to 3·Procs so an
	// episode outlives a few round-robin rounds and later writes (the
	// same writer's next write, or a write built on a read of the
	// pending value) queue behind it as necessary delays.
	FlushAfter int
	// Seed drives all randomness.
	Seed uint64
}

// Validate reports configuration errors.
func (c AuditTraceConfig) Validate() error {
	switch {
	case c.Procs < 1:
		return fmt.Errorf("workload: AuditTrace Procs = %d", c.Procs)
	case c.Vars < 1:
		return fmt.Errorf("workload: AuditTrace Vars = %d", c.Vars)
	case c.Ops < 0:
		return fmt.Errorf("workload: AuditTrace Ops = %d", c.Ops)
	case c.WriteRatio < 0 || c.WriteRatio > 1:
		return fmt.Errorf("workload: AuditTrace WriteRatio = %f", c.WriteRatio)
	case c.DelayEvery < 0:
		return fmt.Errorf("workload: AuditTrace DelayEvery = %d", c.DelayEvery)
	case c.FlushAfter < 0:
		return fmt.Errorf("workload: AuditTrace FlushAfter = %d", c.FlushAfter)
	case c.Ops/c.Procs >= 1_000_000:
		// Value encodes (proc, seq) in decimal; past a million writes
		// per process the encoding would collide.
		return fmt.Errorf("workload: AuditTrace Ops = %d exceeds %d per process", c.Ops, 1_000_000*c.Procs)
	}
	return nil
}

// AuditTrace deterministically generates a correct run log of the given
// size: Events grows as Ops + 2·writes·(Procs−1), so million-op traces
// are cheap to produce and every report field of its audit is clean by
// construction (safe, causally consistent, in 𝒫, exactly-once). The
// construction keeps those properties obvious:
//
//   - Writes broadcast at issue time and every process applies remote
//     writes in global issue order — a linear extension of →co — while
//     the writer applies its own write immediately (safe: a write's
//     strict causal past is always a subset of the writes issued
//     before it).
//   - Reads return the latest write applied to the variable at the
//     reading process (legal by construction).
//   - Buffered episodes (DelayEvery) delay applies but never reorder
//     them, and a final flush applies everything outstanding, so the
//     log contains a mix of necessary and unnecessary delays yet still
//     satisfies liveness.
func AuditTrace(cfg AuditTraceConfig) (*trace.Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FlushAfter == 0 {
		cfg.FlushAfter = 3 * cfg.Procs
	}
	rng := sim.NewRNG(cfg.Seed)
	log := trace.NewLog(cfg.Procs, cfg.Vars)
	now := int64(0)

	type cell struct {
		id  history.WriteID
		val int64
	}
	// view[p][x] is the latest write applied to x at p (zero: ⊥).
	view := make([][]cell, cfg.Procs)
	for p := range view {
		view[p] = make([]cell, cfg.Vars)
	}
	type update struct {
		id  history.WriteID
		x   int
		val int64
	}
	// pending[q] is q's buffered-receipt queue, FIFO in receipt order.
	pending := make([][]update, cfg.Procs)
	epochAge := make([]int, cfg.Procs)
	writeSeq := make([]int, cfg.Procs)
	receipts := 0

	apply := func(q int, u update) {
		log.Append(trace.Event{Kind: trace.Apply, Proc: q, Time: now, Write: u.id, Var: u.x, Val: u.val})
		view[q][u.x] = cell{u.id, u.val}
	}
	flush := func(q int) {
		for _, u := range pending[q] {
			apply(q, u)
		}
		pending[q] = pending[q][:0]
		epochAge[q] = 0
	}

	for op := 0; op < cfg.Ops; op++ {
		p := op % cfg.Procs // round-robin issuer keeps processes balanced
		now++
		if rng.Float64() < cfg.WriteRatio {
			writeSeq[p]++
			id := history.WriteID{Proc: p, Seq: writeSeq[p]}
			x := rng.Intn(cfg.Vars)
			val := Value(p, writeSeq[p])
			log.Append(trace.Event{Kind: trace.Issue, Proc: p, Time: now, Write: id, Var: x, Val: val})
			view[p][x] = cell{id, val}
			u := update{id, x, val}
			for q := 0; q < cfg.Procs; q++ {
				if q == p {
					continue
				}
				receipts++
				// Receipts arrive in issue order, so queuing behind a
				// buffered head (or starting an episode on the DelayEvery
				// beat) never reorders applies.
				buffered := len(pending[q]) > 0 ||
					(cfg.DelayEvery > 0 && receipts%cfg.DelayEvery == 0)
				log.Append(trace.Event{Kind: trace.Receipt, Proc: q, Time: now, Write: id, Var: x, Val: val, Buffered: buffered})
				if buffered {
					pending[q] = append(pending[q], u)
				} else {
					apply(q, u)
				}
			}
		} else {
			x := rng.Intn(cfg.Vars)
			cur := view[p][x]
			log.Append(trace.Event{Kind: trace.Return, Proc: p, Time: now, Var: x, Val: cur.val, From: cur.id})
		}
		for q := 0; q < cfg.Procs; q++ {
			if len(pending[q]) > 0 {
				if epochAge[q]++; epochAge[q] >= cfg.FlushAfter {
					now++
					flush(q)
				}
			}
		}
	}
	now++
	for q := 0; q < cfg.Procs; q++ {
		if len(pending[q]) > 0 {
			flush(q)
		}
	}
	return log, nil
}
