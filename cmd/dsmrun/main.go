// Command dsmrun drives a live causal-memory cluster from the command
// line: it runs a seeded random workload over real goroutines and a
// jittered transport, waits for quiescence, audits the trace against
// the paper's correctness and optimality properties, and prints the
// scorecard. With -trace it dumps the full event log (CSV or JSON).
//
// Usage:
//
//	dsmrun -protocol OptP -procs 4 -vars 4 -ops 100 -jitter 2ms
//	dsmrun -protocol ANBKH -trace csv > run.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	proto := flag.String("protocol", "OptP", "protocol: OptP, ANBKH, WS-recv, WS-send, OptP-noreadmerge")
	procs := flag.Int("procs", 4, "number of processes")
	vars := flag.Int("vars", 4, "number of shared variables")
	ops := flag.Int("ops", 100, "operations per process")
	writeRatio := flag.Float64("write-ratio", 0.6, "probability an op is a write")
	jitter := flag.Duration("jitter", time.Millisecond, "max artificial message delay")
	fifo := flag.Bool("fifo", false, "preserve per-link FIFO order")
	seed := flag.Int64("seed", 1, "workload and transport seed")
	traceOut := flag.String("trace", "", "dump the event trace: csv, json, or diagram")
	useTCP := flag.Bool("tcp", false, "run over real loopback TCP sockets instead of channels")
	flag.Parse()

	kind, err := protocol.ParseKind(*proto)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Processes: *procs, Variables: *vars, Protocol: kind,
		MaxDelay: *jitter, FIFO: *fifo, Seed: *seed,
	}
	if *useTCP {
		tn, err := transport.NewTCP(*procs)
		if err != nil {
			fatal(err)
		}
		cfg.Transport = tn
		cfg.MaxDelay = 0 // real sockets provide their own timing
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for p := 0; p < *procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(p)))
			for i := 1; i <= *ops; i++ {
				if rng.Float64() < *writeRatio {
					if err := c.Node(p).Write(rng.Intn(*vars), int64(p)*1_000_000+int64(i)); err != nil {
						fatal(err)
					}
				} else {
					if _, err := c.Node(p).Read(rng.Intn(*vars)); err != nil {
						fatal(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	if err := c.Quiesce(ctx); err != nil {
		fatal(err)
	}
	quiesceDur := time.Since(start)

	log := c.Log()
	switch *traceOut {
	case "":
	case "csv":
		if err := log.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case "json":
		if err := log.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case "diagram":
		fmt.Print(trace.Diagram{MaxRows: 200}.Render(log))
		return
	default:
		fatal(fmt.Errorf("unknown trace format %q", *traceOut))
	}

	fmt.Println(log.Stats(kind.String()))
	fmt.Printf("quiesced in %v\n", quiesceDur.Round(time.Microsecond))

	rep, err := checker.Audit(log)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("audit: safe=%v causally-consistent=%v in-P=%v\n",
		rep.Safe(), rep.CausallyConsistent(), rep.InP())
	fmt.Printf("delays: %d necessary, %d unnecessary (write-delay optimal: %v)\n",
		rep.NecessaryDelays, rep.UnnecessaryDelays, rep.WriteDelayOptimal())
	if n := len(rep.SafetyViolations); n > 0 {
		fmt.Printf("SAFETY VIOLATIONS (%d):\n", n)
		for _, v := range rep.SafetyViolations {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
	if n := len(rep.LegalityViolations); n > 0 {
		fmt.Printf("ILLEGAL READS (%d):\n", n)
		for _, v := range rep.LegalityViolations {
			fmt.Println("  ", v)
		}
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmrun:", err)
	os.Exit(1)
}
