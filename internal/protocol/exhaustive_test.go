package protocol

import (
	"fmt"
	"testing"

	"repro/internal/history"
)

// This file model-checks the delivery logic: for a set of small causal
// patterns it enumerates EVERY permutation of update arrivals at a
// fresh receiver and verifies, at each step, that
//
//   - applies respect →co (safety at the replica level),
//   - OptP and OptP-WS block an update iff a →co predecessor is
//     missing (write-delay optimality, Definition 3/5),
//   - ANBKH blocks an update iff a happened-before predecessor is
//     missing (its documented, larger enabling set),
//   - every permutation drains completely (liveness).
//
// Patterns are built by actually driving sender replicas, so update
// clocks are the protocol's own, and the ground-truth →co and
// happened-before relations are recorded during construction.

// pattern is a fabricated set of updates with ground-truth relations.
// Process n-1 is reserved as the silent receiver: it never writes, so a
// fresh replica with that id can consume the updates in any order.
type pattern struct {
	name string
	n, m int
	// updates to deliver to the receiver, in issue order.
	updates map[Kind][]Update
	// co[i][j] = updates[i] →co updates[j] (ground truth, by
	// construction). Indexed by position in the updates slice (same
	// structure across protocols).
	co [][]bool
	// hb[i][j] = send(updates[i]) happened-before send(updates[j]).
	hb [][]bool
}

// buildPatterns fabricates the test patterns for each protocol kind.
// Each step function receives the per-process replicas and returns the
// update list in issue order, plus ground truth.
func buildPatterns(t *testing.T, kinds []Kind) []pattern {
	t.Helper()

	type step struct {
		proc  int
		vr    int
		read  []int // variables to read (in order) before writing
		apply []int // update indices (of previously returned ones) to apply first
	}
	mk := func(name string, n, m int, steps []step, co, hb [][]bool) pattern {
		p := pattern{name: name, n: n, m: m, updates: map[Kind][]Update{}, co: co, hb: hb}
		for _, kind := range kinds {
			reps := make([]Replica, n)
			for i := range reps {
				reps[i] = New(kind, i, n, m)
			}
			var ups []Update
			for _, s := range steps {
				for _, ai := range s.apply {
					reps[s.proc].Apply(ups[ai])
				}
				for _, x := range s.read {
					reps[s.proc].Read(x)
				}
				if s.vr < 0 {
					continue
				}
				u, bc := reps[s.proc].LocalWrite(s.vr, int64(len(ups)+1))
				if !bc {
					t.Fatalf("%s: %v deferred broadcast", name, kind)
				}
				ups = append(ups, u)
			}
			p.updates[kind] = ups
		}
		return p
	}

	f := false
	tr := true
	_ = f
	return []pattern{
		// Chain: three writes by one process (process order ⊂ →co).
		mk("chain-own", 2, 1, []step{
			{proc: 0, vr: 0},
			{proc: 0, vr: 0},
			{proc: 0, vr: 0},
		}, [][]bool{
			{f, tr, tr},
			{f, f, tr},
			{f, f, f},
		}, [][]bool{
			{f, tr, tr},
			{f, f, tr},
			{f, f, f},
		}),
		// Read-linked cross-process chain: p0 writes, p1 applies+reads
		// then writes, p0 applies+reads then writes.
		mk("chain-cross", 3, 2, []step{
			{proc: 0, vr: 0},
			{proc: 1, vr: 1, apply: []int{0}, read: []int{0}},
			{proc: 0, vr: 0, apply: []int{1}, read: []int{1}},
		}, [][]bool{
			{f, tr, tr},
			{f, f, tr},
			{f, f, f},
		}, [][]bool{
			{f, tr, tr},
			{f, f, tr},
			{f, f, f},
		}),
		// The H1 kernel: p0 writes a then c; p1 applies BOTH but reads
		// only a, then writes b. →co: a→c, a→b, c‖b. HB: a→c, a→b, c→b.
		mk("h1-kernel", 3, 2, []step{
			{proc: 0, vr: 0},
			{proc: 0, vr: 0},
			{proc: 1, vr: -1, apply: []int{0}, read: []int{0}}, // apply a, read a
			{proc: 1, vr: 1, apply: []int{1}},                  // apply c (unread), write b
		}, [][]bool{
			{f, tr, tr},
			{f, f, f},
			{f, f, f},
		}, [][]bool{
			{f, tr, tr},
			{f, f, tr},
			{f, f, f},
		}),
		// Fork: p0 writes a; p1 and p2 both read it and write
		// concurrently. →co: a→b, a→c, b‖c.
		mk("fork", 4, 3, []step{
			{proc: 0, vr: 0},
			{proc: 1, vr: 1, apply: []int{0}, read: []int{0}},
			{proc: 2, vr: 2, apply: []int{0}, read: []int{0}},
		}, [][]bool{
			{f, tr, tr},
			{f, f, f},
			{f, f, f},
		}, [][]bool{
			{f, tr, tr},
			{f, f, f},
			{f, f, f},
		}),
		// Independent: two writers never communicating.
		mk("independent", 3, 2, []step{
			{proc: 0, vr: 0},
			{proc: 1, vr: 1},
			{proc: 0, vr: 0},
			{proc: 1, vr: 1},
		}, [][]bool{
			{f, f, tr, f},
			{f, f, f, tr},
			{f, f, f, f},
			{f, f, f, f},
		}, [][]bool{
			{f, f, tr, f},
			{f, f, f, tr},
			{f, f, f, f},
			{f, f, f, f},
		}),
	}
}

// permutations invokes fn with every permutation of 0..k-1.
func permutations(k int, fn func(order []int)) {
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			fn(order)
			return
		}
		for j := i; j < k; j++ {
			order[i], order[j] = order[j], order[i]
			rec(i + 1)
			order[i], order[j] = order[j], order[i]
		}
	}
	rec(0)
}

// expectedDeps returns the ground-truth enabling relation for a kind.
func (p pattern) expectedDeps(kind Kind) [][]bool {
	switch kind {
	case OptP, OptPWS:
		return p.co
	default: // ANBKH, OptPNoReadMerge
		return p.hb
	}
}

func TestExhaustiveDeliveryPermutations(t *testing.T) {
	kinds := []Kind{OptP, ANBKH, OptPNoReadMerge, OptPWS}
	for _, p := range buildPatterns(t, kinds) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, kind := range kinds {
				ups := p.updates[kind]
				deps := p.expectedDeps(kind)
				k := len(ups)
				idxOf := map[history.WriteID]int{}
				for i, u := range ups {
					idxOf[u.ID] = i
				}
				permutations(k, func(order []int) {
					if issuedBy(ups, p.n-1) {
						t.Fatalf("%s: receiver id %d issued a write", p.name, p.n-1)
					}
					recv := New(kind, p.n-1, p.n, p.m)

					// visible[i]: update i applied or logically applied.
					visible := make([]bool, k)
					pending := map[int]bool{}
					var deliver func(i int)
					deliver = func(i int) {
						u := ups[i]
						switch recv.Status(u) {
						case Deliverable:
							// A skip delivery logically applies u.Prev
							// first; record it before the dependency
							// check.
							if sk, ok := recv.(Skipper); ok {
								if tgt := sk.SkipTarget(u); !tgt.IsBottom() {
									visible[idxOf[tgt]] = true
								}
							}
							for j := 0; j < k; j++ {
								if deps[j][i] && !visible[j] {
									t.Fatalf("%s/%v: %v deliverable with %v missing (order %v)",
										p.name, kind, u.ID, ups[j].ID, order)
									return
								}
							}
							recv.Apply(u)
							visible[i] = true
						case Blocked:
							missing := false
							for j := 0; j < k; j++ {
								if deps[j][i] && !visible[j] {
									missing = true
								}
							}
							if !missing {
								t.Fatalf("%s/%v: %v blocked with all deps applied (order %v)",
									p.name, kind, u.ID, order)
							}
							pending[i] = true
						case Discardable:
							// Arrived after being skipped over.
							if !visible[i] {
								t.Fatalf("%s/%v: %v discardable but never logically applied (order %v)",
									p.name, kind, u.ID, order)
							}
							recv.Discard(u)
						}
					}
					for _, i := range order {
						deliver(i)
						for progressed := true; progressed; {
							progressed = false
							for j := range pending {
								if recv.Status(ups[j]) != Blocked {
									delete(pending, j)
									deliver(j)
									progressed = true
									break
								}
							}
						}
					}
					if len(pending) != 0 {
						t.Fatalf("%s/%v: %d updates stuck (order %v)", p.name, kind, len(pending), order)
					}
					for i := 0; i < k; i++ {
						if !visible[i] {
							t.Fatalf("%s/%v: %v never applied (order %v)", p.name, kind, ups[i].ID, order)
						}
					}
				})
			}
		})
	}
}

func issuedBy(ups []Update, proc int) bool {
	for _, u := range ups {
		if u.From() == proc {
			return true
		}
	}
	return false
}

// Sanity: the permutation generator emits k! distinct orders.
func TestPermutationsGenerator(t *testing.T) {
	seen := map[string]bool{}
	permutations(4, func(order []int) {
		seen[fmt.Sprint(order)] = true
	})
	if len(seen) != 24 {
		t.Fatalf("got %d permutations", len(seen))
	}
}
