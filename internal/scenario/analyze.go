package scenario

import (
	"fmt"
	"strings"

	"repro/internal/history"
)

// Analysis is the full report on a parsed scenario.
type Analysis struct {
	Scenario  *Scenario
	Causality *history.Causality
	Graph     *history.WriteGraph

	// Consistent is Definition 2 for the history.
	Consistent bool
	Violations []history.Violation

	// Serializable is the stronger Ahamad et al. criterion (per-process
	// causal serializations); SerializableKnown is false when the
	// history is too large for the exponential search.
	Serializable      bool
	SerializableKnown bool

	// ConcurrentWritePairs counts unordered write pairs — the degree of
	// concurrency causal (vs sequential) consistency exploits.
	ConcurrentWritePairs int
}

// Analyze computes →co and all derived artifacts. It fails on cyclic
// histories (which no protocol in 𝒫 can produce).
func Analyze(s *Scenario) (*Analysis, error) {
	c, err := s.History.Causality()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Scenario:  s,
		Causality: c,
		Graph:     c.WriteGraph(),
	}
	a.Violations = c.CheckCausallyConsistent()
	a.Consistent = len(a.Violations) == 0

	if ok, err := c.Serializable(20); err == nil {
		a.Serializable = ok
		a.SerializableKnown = true
	}

	ids := s.SortedWriteIDs()
	for i, w := range ids {
		for _, w2 := range ids[i+1:] {
			if c.WriteConcurrent(w, w2) {
				a.ConcurrentWritePairs++
			}
		}
	}
	return a, nil
}

// AnalyzeString parses and analyzes in one step.
func AnalyzeString(src string) (*Analysis, error) {
	s, err := ParseString(src)
	if err != nil {
		return nil, err
	}
	return Analyze(s)
}

// CoFacts renders every ordered or concurrent pair of writes, in the
// paper's "w →co w'" / "w ‖co w'" notation, sorted deterministically.
func (a *Analysis) CoFacts() []string {
	ids := a.Scenario.SortedWriteIDs()
	var facts []string
	for i, w := range ids {
		for j, w2 := range ids {
			if i >= j {
				continue
			}
			switch {
			case a.Causality.WriteBefore(w, w2):
				facts = append(facts, fmt.Sprintf("%s →co %s", a.Scenario.WriteName(w), a.Scenario.WriteName(w2)))
			case a.Causality.WriteBefore(w2, w):
				facts = append(facts, fmt.Sprintf("%s →co %s", a.Scenario.WriteName(w2), a.Scenario.WriteName(w)))
			default:
				facts = append(facts, fmt.Sprintf("%s ‖co %s", a.Scenario.WriteName(w), a.Scenario.WriteName(w2)))
			}
		}
	}
	return facts
}

// XcoSafeTable renders X_co-safe(w) for every write (Definition 4) —
// the generalization of the paper's Table 1 to any history.
func (a *Analysis) XcoSafeTable() []string {
	var rows []string
	for _, w := range a.Scenario.SortedWriteIDs() {
		idx := a.Scenario.History.WriteIndex(w)
		deps := a.Causality.WritesBefore(idx)
		var names []string
		for _, d := range deps {
			names = append(names, a.Scenario.WriteName(d))
		}
		set := "∅"
		if len(names) > 0 {
			set = "{" + strings.Join(names, ", ") + "}"
		}
		rows = append(rows, fmt.Sprintf("X_co-safe(%s) = %s", a.Scenario.WriteName(w), set))
	}
	return rows
}

// GraphEdges renders the write causality graph (Figure 7 generalized).
func (a *Analysis) GraphEdges() []string {
	var edges []string
	for v, succs := range a.Graph.Edges {
		for _, to := range succs {
			edges = append(edges, fmt.Sprintf("%s -> %s",
				a.Scenario.WriteName(a.Graph.Vertices[v]),
				a.Scenario.WriteName(a.Graph.Vertices[to])))
		}
	}
	return edges
}

// Report renders the complete analysis as text.
func (a *Analysis) Report() string {
	var b strings.Builder
	b.WriteString("History:\n")
	for p, local := range a.Scenario.History.Locals {
		fmt.Fprintf(&b, "  h%d:", p+1)
		for _, o := range local {
			fmt.Fprintf(&b, " %s;", a.Scenario.OpName(o))
		}
		b.WriteByte('\n')
	}

	b.WriteString("\n→co facts:\n")
	for _, f := range a.CoFacts() {
		fmt.Fprintf(&b, "  %s\n", f)
	}

	b.WriteString("\nX_co-safe sets (Definition 4):\n")
	for _, r := range a.XcoSafeTable() {
		fmt.Fprintf(&b, "  %s\n", r)
	}

	b.WriteString("\nWrite causality graph (transitive reduction of →co over writes):\n")
	for _, e := range a.GraphEdges() {
		fmt.Fprintf(&b, "  %s\n", e)
	}

	fmt.Fprintf(&b, "\nconcurrent write pairs: %d\n", a.ConcurrentWritePairs)

	if a.Consistent {
		b.WriteString("\nVERDICT: causally consistent (every read is legal, Definition 2)\n")
	} else {
		fmt.Fprintf(&b, "\nVERDICT: NOT causally consistent — %d illegal read(s):\n", len(a.Violations))
		for _, v := range a.Violations {
			fmt.Fprintf(&b, "  %s: %s\n", a.Scenario.OpName(v.Op), v.Reason)
		}
	}
	if a.SerializableKnown {
		if a.Serializable {
			b.WriteString("serializable per Ahamad et al. (each process view admits a causal serialization)\n")
		} else {
			b.WriteString("NOT serializable per Ahamad et al. (no per-process causal serialization exists)\n")
		}
	}
	return b.String()
}
