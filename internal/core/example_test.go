package core_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
)

// The canonical three-step tour: write, propagate, audit.
func Example() {
	cluster, err := core.NewCluster(core.Config{
		Processes: 3,
		Variables: 2,
		Protocol:  protocol.OptP,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Node(0).Write(0, 42); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cluster.Quiesce(ctx); err != nil {
		log.Fatal(err)
	}

	v, _ := cluster.Node(2).Read(0)
	fmt.Println("p3 reads", v)

	report, err := cluster.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("write-delay optimal:", report.WriteDelayOptimal())
	// Output:
	// p3 reads 42
	// write-delay optimal: true
}

// ReadMeta exposes the identity of the write a read returned — the
// read-from relation, live.
func ExampleNode_ReadMeta() {
	cluster, err := core.NewCluster(core.Config{Processes: 2, Variables: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cluster.Node(0).Write(0, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cluster.Quiesce(ctx)

	v, from, _ := cluster.Node(1).ReadMeta(0)
	fmt.Printf("value %d written by p%d (write #%d)\n", v, from.Proc+1, from.Seq)
	// Output:
	// value 7 written by p1 (write #1)
}

// Clock exposes the node's Write_co vector — the paper's Section 4.1
// data structure.
func ExampleNode_Clock() {
	cluster, err := core.NewCluster(core.Config{Processes: 2, Variables: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cluster.Node(0).Write(0, 1)
	cluster.Node(0).Write(0, 2)
	fmt.Println(cluster.Node(0).Clock())
	// Output:
	// [2 0]
}
