package service

import (
	"testing"

	"repro/internal/vclock"
)

func wr(src *srvConn, x int, v int64) writeReq {
	return writeReq{src: src, x: x, v: v, token: vclock.VC{}}
}

func TestCoalesceAdjacentSameConn(t *testing.T) {
	a := &srvConn{}
	got := coalesce([]writeReq{wr(a, 1, 10), wr(a, 1, 11), wr(a, 1, 12)})
	if len(got) != 1 {
		t.Fatalf("coalesce = %d entries, want 1", len(got))
	}
	if got[0].x != 1 || got[0].v != 12 {
		t.Fatalf("coalesce kept (%d,%d), want newest (1,12)", got[0].x, got[0].v)
	}
	if len(got[0].acks) != 3 {
		t.Fatalf("coalesced entry answers %d requests, want 3", len(got[0].acks))
	}
}

func TestCoalesceDifferentConnsNever(t *testing.T) {
	a, b := &srvConn{}, &srvConn{}
	got := coalesce([]writeReq{wr(a, 1, 10), wr(b, 1, 11), wr(a, 1, 12)})
	if len(got) != 3 {
		t.Fatalf("coalesce = %d entries, want 3: cross-connection writes must not merge", len(got))
	}
	for i, want := range []int64{10, 11, 12} {
		if got[i].v != want {
			t.Fatalf("entry %d = %d, want %d: cross-client order must be preserved", i, got[i].v, want)
		}
	}
}

func TestCoalesceDifferentVarsNever(t *testing.T) {
	a := &srvConn{}
	got := coalesce([]writeReq{wr(a, 1, 10), wr(a, 2, 20), wr(a, 1, 30)})
	if len(got) != 3 {
		t.Fatalf("coalesce = %d entries, want 3: an interleaved variable breaks adjacency", len(got))
	}
}

func TestCoalesceNilSrcNever(t *testing.T) {
	got := coalesce([]writeReq{wr(nil, 1, 10), wr(nil, 1, 11)})
	if len(got) != 2 {
		t.Fatalf("coalesce = %d entries, want 2: nil identity never merges", len(got))
	}
}

func TestCoalesceMixed(t *testing.T) {
	a, b := &srvConn{}, &srvConn{}
	batch := []writeReq{
		wr(a, 0, 1), wr(a, 0, 2), // merge → (0,2)
		wr(b, 0, 3),                           // barrier
		wr(b, 1, 4), wr(b, 1, 5), wr(b, 1, 6), // merge → (1,6)
		wr(a, 1, 7), // barrier (other conn)
	}
	got := coalesce(batch)
	want := []struct {
		x int
		v int64
	}{{0, 2}, {0, 3}, {1, 6}, {1, 7}}
	if len(got) != len(want) {
		t.Fatalf("coalesce = %d entries, want %d", len(got), len(want))
	}
	acks := 0
	for i, w := range want {
		if got[i].x != w.x || got[i].v != w.v {
			t.Fatalf("entry %d = (%d,%d), want (%d,%d)", i, got[i].x, got[i].v, w.x, w.v)
		}
		acks += len(got[i].acks)
	}
	if acks != len(batch) {
		t.Fatalf("entries answer %d requests, want %d: every submitted write gets a reply", acks, len(batch))
	}
}
