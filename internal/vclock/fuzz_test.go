package vclock

import (
	"testing"
)

// The clock decoders face the network (frames arrive off TCP sockets
// and out of WAL segments): every byte string must either decode
// cleanly or fail with a typed error — never panic, never over-read,
// and never let a declared dimension drive an allocation past
// MaxDecodeDim. The seed corpus below replays on every plain `go test`
// run, so the cap and the past crash shapes are permanent regressions.
func FuzzDecodeClock(f *testing.F) {
	f.Add((VC{}).AppendBinary(nil))
	f.Add((VC{1, 2, 3}).AppendBinary(nil))
	f.Add((VC{1 << 40, 0, 127, 128}).AppendBinary(nil))
	f.Add(AppendStab(nil, VC{9, 9, 12, 9}))
	// Hostile dimension declarations around the cap.
	f.Add([]byte{0x80, 0x80, 0x04})                                           // 2^16 exactly (legal)
	f.Add([]byte{0x81, 0x80, 0x04})                                           // 2^16 + 1 (over the cap)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})                                     // ~2^28
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}) // unterminated varint
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, n, err := DecodeVC(data); err == nil {
			if n > len(data) {
				t.Fatalf("DecodeVC consumed %d of %d bytes", n, len(data))
			}
			if len(v) > MaxDecodeDim {
				t.Fatalf("DecodeVC produced dimension %d past the cap", len(v))
			}
			buf := v.AppendBinary(nil)
			v2, n2, err := DecodeVC(buf)
			if err != nil || n2 != len(buf) || !v2.Equal(v) {
				t.Fatalf("re-decode of %v: %v (consumed %d of %d)", v, err, n2, len(buf))
			}
		}
		if v, n, err := DecodeStab(data); err == nil {
			if n > len(data) {
				t.Fatalf("DecodeStab consumed %d of %d bytes", n, len(data))
			}
			if len(v) > MaxDecodeDim {
				t.Fatalf("DecodeStab produced dimension %d past the cap", len(v))
			}
			buf := AppendStab(nil, v)
			v2, n2, err := DecodeStab(buf)
			if err != nil || n2 != len(buf) || !v2.Equal(v) {
				t.Fatalf("stab re-decode of %v: %v (consumed %d of %d)", v, err, n2, len(buf))
			}
		}
		// Signed deltas against a small fixed base: decode must reject
		// out-of-range indices and underflows, never panic.
		a := NewAdaptive(4)
		a.CopyFrom(VC{3, 0, 9, 1})
		if v, n, err := a.DecodeDeltaSigned(data); err == nil {
			if n > len(data) {
				t.Fatalf("DecodeDeltaSigned consumed %d of %d bytes", n, len(data))
			}
			buf := a.AppendDeltaSigned(nil, v)
			v2, n2, err := a.DecodeDeltaSigned(buf)
			if err != nil || n2 != len(buf) || !v2.Equal(v) {
				t.Fatalf("delta re-decode of %v: %v (consumed %d of %d)", v, err, n2, len(buf))
			}
		}
	})
}
