// Package client is the session-side counterpart of internal/service:
// a connection-multiplexing, pipelining client for dsmd with causal
// session tokens.
//
// One Client owns one TCP connection and any number of concurrent
// requests on it: each request carries a tag, the read loop matches
// responses back by tag, and completions arrive in whatever order the
// server finishes them. Sessions layer the causal contract on top — a
// Session threads its token (a vclock frontier of everything the
// session has observed) through every request and merges each
// response's advanced token back, which is all it takes for the server
// to enforce read-your-writes and monotonic-reads across arbitrary
// replica switches. Tokens are portable: Token/Resume hand a session's
// causal past to another client, carrying the guarantee with it.
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// Errors mapped from response statuses and connection state.
var (
	// ErrClosed reports a request on (or interrupted by) a closed client.
	ErrClosed = errors.New("client: connection closed")
	// ErrShutdown reports a server that is draining or closing.
	ErrShutdown = errors.New("client: server shutting down")
	// ErrUnavailable reports a replica that cannot serve the session now
	// (crash-stopped, or its frontier cannot reach the session token).
	ErrUnavailable = errors.New("client: replica unavailable")
	// ErrBadRequest reports a request the server rejected as malformed.
	ErrBadRequest = errors.New("client: bad request")
)

// maxFrame mirrors the server's inbound bound; a response frame larger
// than this marks a corrupt stream.
const maxFrame = 1 << 16

// call is one in-flight request: the response lands on ch, and base is
// the request token the server delta-encoded the response token
// against.
type call struct {
	base vclock.VC
	ch   chan protocol.Response
}

// Client multiplexes tagged requests over one dsmd connection.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	next    uint64
	pending map[uint64]*call
	err     error // terminal connection error, set once
	done    chan struct{}
}

// Dial connects to a dsmd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:    conn,
		pending: map[uint64]*call{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight requests fail with
// ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

// Do sends one request and waits for its response. The request's Tag
// is assigned by the client; a non-OK status is returned as both the
// response and a mapped error.
func (c *Client) Do(ctx context.Context, req protocol.Request) (protocol.Response, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return protocol.Response{}, err
	}
	c.next++
	req.Tag = c.next
	cl := &call{base: req.Token, ch: make(chan protocol.Response, 1)}
	c.pending[req.Tag] = cl
	c.mu.Unlock()

	payload := req.AppendBinary(make([]byte, 0, 64))
	frame := binary.AppendUvarint(make([]byte, 0, len(payload)+4), uint64(len(payload)))
	frame = append(frame, payload...)
	c.wmu.Lock()
	_, err := c.conn.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		c.forget(req.Tag)
		return protocol.Response{}, fmt.Errorf("%w: %v", ErrClosed, err)
	}

	select {
	case resp := <-cl.ch:
		return resp, statusErr(resp)
	case <-c.done:
		// Drain the race: the response may have landed between the
		// connection dying and this select firing.
		select {
		case resp := <-cl.ch:
			return resp, statusErr(resp)
		default:
		}
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return protocol.Response{}, err
	case <-ctx.Done():
		c.forget(req.Tag)
		return protocol.Response{}, ctx.Err()
	}
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.Do(ctx, protocol.Request{Kind: protocol.ReqPing})
	return err
}

// forget abandons an in-flight call (context cancellation, write
// failure). A late response for the tag is discarded by the read loop.
func (c *Client) forget(tag uint64) {
	c.mu.Lock()
	delete(c.pending, tag)
	c.mu.Unlock()
}

// readLoop delivers response frames to their calls until the
// connection dies, then fails everything pending.
func (c *Client) readLoop() {
	fr := newFrameReader(c.conn)
	var err error
	for {
		var frame []byte
		if frame, err = fr.next(); err != nil {
			break
		}
		tag, perr := protocol.PeekTag(frame)
		if perr != nil {
			err = fmt.Errorf("client: corrupt response frame: %w", perr)
			break
		}
		c.mu.Lock()
		cl, ok := c.pending[tag]
		delete(c.pending, tag)
		c.mu.Unlock()
		if !ok {
			// Response for an abandoned call; nothing to deliver.
			continue
		}
		resp, n, derr := protocol.DecodeResponse(frame, cl.base)
		if derr != nil || n != len(frame) {
			err = fmt.Errorf("client: corrupt response frame: %w", derr)
			break
		}
		cl.ch <- resp
	}
	c.conn.Close()
	c.mu.Lock()
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
		err = ErrClosed
	}
	c.err = err
	pending := c.pending
	c.pending = map[uint64]*call{}
	c.mu.Unlock()
	_ = pending // calls learn of the failure via done
	close(c.done)
}

// statusErr maps a response status to a typed error, nil for OK.
func statusErr(r protocol.Response) error {
	var base error
	switch r.Status {
	case protocol.StatusOK:
		return nil
	case protocol.StatusBadRequest:
		base = ErrBadRequest
	case protocol.StatusShutdown:
		base = ErrShutdown
	default:
		base = ErrUnavailable
	}
	if r.Err == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, r.Err)
}

// Session is one causal session over a Client. It is safe for
// concurrent use; concurrent operations pipeline on the connection and
// their tokens merge, so the session's past only grows.
type Session struct {
	c *Client

	mu      sync.Mutex
	token   vclock.VC
	proc    int
	noToken bool
}

// Session starts a fresh causal session (no past, any replica).
func (c *Client) Session() *Session {
	return &Session{c: c, proc: -1}
}

// NoTokenSession starts a deliberately broken session that never
// sends or records tokens — no session guarantees. It exists so the
// conformance suite can prove it detects the violations tokens
// prevent.
func (c *Client) NoTokenSession() *Session {
	return &Session{c: c, proc: -1, noToken: true}
}

// Use pins the session to replica p (server-side round-robin when -1).
func (s *Session) Use(p int) *Session {
	s.mu.Lock()
	s.proc = p
	s.mu.Unlock()
	return s
}

// Token snapshots the session's causal past, portable to Resume on any
// session of the same cluster.
func (s *Session) Token() vclock.VC {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.token.Clone()
}

// Resume merges tok into the session's past: the session now also
// depends on everything tok counts.
func (s *Session) Resume(tok vclock.VC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.absorbLocked(tok)
}

// absorbLocked merges a token into the session under s.mu.
func (s *Session) absorbLocked(tok vclock.VC) {
	if s.noToken || len(tok) == 0 {
		return
	}
	if len(s.token) != len(tok) {
		s.token = tok.Clone()
		return
	}
	s.token.Merge(tok)
}

// begin snapshots the request token and pinned replica.
func (s *Session) begin() (vclock.VC, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.noToken {
		return nil, s.proc
	}
	return s.token.Clone(), s.proc
}

// finish folds a response back into the session.
func (s *Session) finish(r protocol.Response) {
	s.mu.Lock()
	s.absorbLocked(r.Token)
	s.mu.Unlock()
}

// Read returns the value of variable x, waiting until the serving
// replica holds the session's past.
func (s *Session) Read(ctx context.Context, x int) (int64, error) {
	v, _, err := s.ReadMeta(ctx, x)
	return v, err
}

// ReadMeta is Read plus the identity of the write that produced the
// value (for audit trails).
func (s *Session) ReadMeta(ctx context.Context, x int) (int64, history.WriteID, error) {
	tok, proc := s.begin()
	resp, err := s.c.Do(ctx, protocol.Request{
		Kind: protocol.ReqRead, Proc: proc, Var: x, Token: tok,
	})
	if err != nil {
		return 0, history.WriteID{}, err
	}
	s.finish(resp)
	return resp.Val, resp.From, nil
}

// Write stores v into variable x. The write is issued on a replica
// already holding the session's past, and the advanced token makes it
// part of that past for every later operation.
func (s *Session) Write(ctx context.Context, x int, v int64) error {
	tok, proc := s.begin()
	resp, err := s.c.Do(ctx, protocol.Request{
		Kind: protocol.ReqWrite, Proc: proc, Var: x, Val: v, Token: tok,
	})
	if err != nil {
		return err
	}
	s.finish(resp)
	return nil
}

// frameReader decodes uvarint-length-prefixed frames, mirroring the
// server side.
type frameReader struct {
	r   io.Reader
	buf [1]byte
}

func newFrameReader(r io.Reader) *frameReader { return &frameReader{r: r} }

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (f *frameReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(f.r, f.buf[:]); err != nil {
		return 0, err
	}
	return f.buf[0], nil
}

// next reads one frame.
func (f *frameReader) next() ([]byte, error) {
	n, err := binary.ReadUvarint(f)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("client: frame of %d bytes exceeds %d", n, maxFrame)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(f.r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
