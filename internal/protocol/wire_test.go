package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/vclock"
)

func wireRequests() []Request {
	return []Request{
		{},
		{Tag: 1, Kind: ReqPing, Proc: -1},
		{Tag: 7, Kind: ReqRead, Proc: 2, Var: 5, Token: vclock.VC{3, 0, 9}},
		{Tag: 1 << 40, Kind: ReqWrite, Proc: -1, Var: 0, Val: -12345,
			Token: vclock.VC{0, 0, 0, 0}, NoWait: true},
		{Tag: 42, Kind: ReqWrite, Proc: 0, Var: 9, Val: 1 << 50},
		{Tag: 3, Kind: ReqRead, Proc: 1, Var: 2, Token: vclock.VC{1 << 33, 7}, NoWait: true},
		{Tag: 8, Kind: ReqWrite, Proc: -1, Var: 3, Val: 11, SID: 0xdeadbeef, OpSeq: 1},
		{Tag: 9, Kind: ReqWrite, Proc: 2, Var: 0, Val: -7,
			Token: vclock.VC{2, 0, 5}, SID: 1 << 60, OpSeq: 1 << 20},
		{Tag: 10, Kind: ReqRead, Proc: 1, Var: 4, TraceID: 0xfeedface},
		{Tag: 11, Kind: ReqWrite, Proc: -1, Var: 2, Val: 9, SID: 5, OpSeq: 3,
			Token: vclock.VC{1, 2}, TraceID: 1 << 62, TraceSampled: true},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range wireRequests() {
		buf := want.AppendBinary(nil)
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", want, err)
		}
		if n != len(buf) {
			t.Fatalf("DecodeRequest(%+v) consumed %d of %d bytes", want, n, len(buf))
		}
		if got.Tag != want.Tag || got.Kind != want.Kind || got.Proc != want.Proc ||
			got.Var != want.Var || got.Val != want.Val || got.NoWait != want.NoWait ||
			got.SID != want.SID || got.OpSeq != want.OpSeq ||
			got.TraceID != want.TraceID || got.TraceSampled != want.TraceSampled {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if want.Token == nil && got.Token != nil || want.Token != nil && !got.Token.Equal(want.Token) {
			t.Fatalf("round trip token: got %v want %v", got.Token, want.Token)
		}
		tag, err := PeekTag(buf)
		if err != nil || tag != want.Tag {
			t.Fatalf("PeekTag = %d, %v; want %d", tag, err, want.Tag)
		}
	}
}

func wireResponses() []struct {
	r    Response
	base vclock.VC
} {
	return []struct {
		r    Response
		base vclock.VC
	}{
		{Response{}, nil},
		{Response{Tag: 9, Status: StatusOK, Proc: 1, Val: 77,
			From:  history.WriteID{Proc: 2, Seq: 31},
			Token: vclock.VC{4, 8, 15}}, vclock.VC{4, 2, 15}},
		{Response{Tag: 2, Status: StatusUnavailable, Proc: 0,
			Err: "frontier behind session token"}, vclock.VC{1, 1}},
		{Response{Tag: 1 << 55, Status: StatusShutdown, Proc: -1,
			Err: "server draining"}, nil},
		{Response{Tag: 5, Status: StatusOK, Proc: 3, Val: -9,
			From:  history.WriteID{Proc: 0, Seq: 1},
			Token: vclock.VC{10, 20}}, nil}, // dim mismatch with base → sparse
		{Response{Tag: 6, Status: StatusBadRequest, Proc: -1,
			Err: "variable 99 of 8"}, vclock.VC{0, 0, 0}},
		{Response{Tag: 11, Status: StatusRetry, Proc: 2,
			Err: "no replica can serve the session token yet"}, vclock.VC{3, 3}},
		{Response{Tag: 12, Status: StatusOverloaded, Proc: -1,
			Err: "in-flight watermark reached"}, nil},
		{Response{Tag: 13, Status: StatusOK, Proc: 0, Val: 4,
			TraceID: 0xfeedface}, nil},
		{Response{Tag: 14, Status: StatusOK, Proc: 2, Val: 8,
			From: history.WriteID{Proc: 2, Seq: 5}, Token: vclock.VC{1, 2, 6},
			TraceID:     1 << 62,
			TraceStages: [][2]uint64{{0, 1200}, {2, 1 << 40}, {5, 350}}}, vclock.VC{1, 2, 5}},
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, tc := range wireResponses() {
		buf := tc.r.AppendBinary(nil, tc.base)
		got, n, err := DecodeResponse(buf, tc.base)
		if err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", tc.r, err)
		}
		if n != len(buf) {
			t.Fatalf("DecodeResponse(%+v) consumed %d of %d bytes", tc.r, n, len(buf))
		}
		if got.Tag != tc.r.Tag || got.Status != tc.r.Status || got.Proc != tc.r.Proc ||
			got.Val != tc.r.Val || got.From != tc.r.From || got.Err != tc.r.Err ||
			got.TraceID != tc.r.TraceID {
			t.Fatalf("round trip: got %+v want %+v", got, tc.r)
		}
		if tc.r.Token == nil && got.Token != nil || tc.r.Token != nil && !got.Token.Equal(tc.r.Token) {
			t.Fatalf("round trip token: got %v want %v", got.Token, tc.r.Token)
		}
		if !traceStagesEqual(got.TraceStages, tc.r.TraceStages) {
			t.Fatalf("round trip trace stages: got %v want %v", got.TraceStages, tc.r.TraceStages)
		}
	}
}

func traceStagesEqual(a, b [][2]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A settled session's token delta should be tiny: one advanced
// component costs a few bytes, not the full frontier.
func TestResponseTokenDeltaCompact(t *testing.T) {
	base := make(vclock.VC, 64)
	for i := range base {
		base[i] = 1 << 30
	}
	tok := base.Clone()
	tok[7]++
	full := Response{Tag: 1, Token: tok}.AppendBinary(nil, nil)
	delta := Response{Tag: 1, Token: tok}.AppendBinary(nil, base)
	if len(delta) >= len(full)/4 {
		t.Fatalf("delta encoding %d bytes, sparse %d bytes: delta should be far smaller", len(delta), len(full))
	}
}

// Every strict prefix of a valid encoding must fail to decode: the
// framing layer delivers whole frames, so a short decode marks
// corruption, never a "partial message". The one sanctioned exception
// is the trace-context boundary — a traced message cut exactly at the
// end of its mandatory fields IS a valid untraced message (that is what
// backward compatibility means) — so a successful prefix decode must be
// exactly that: the untraced reading, consuming every prefix byte.
func TestRequestDecodeTruncated(t *testing.T) {
	for _, r := range wireRequests() {
		buf := r.AppendBinary(nil)
		for cut := 0; cut < len(buf); cut++ {
			got, n, err := DecodeRequest(buf[:cut])
			if err == nil {
				if r.TraceID == 0 || n != cut || got.TraceID != 0 {
					t.Fatalf("DecodeRequest(%+v prefix %d/%d) succeeded: %+v", r, cut, len(buf), got)
				}
			}
		}
	}
}

func TestResponseDecodeTruncated(t *testing.T) {
	for _, tc := range wireResponses() {
		buf := tc.r.AppendBinary(nil, tc.base)
		for cut := 0; cut < len(buf); cut++ {
			got, n, err := DecodeResponse(buf[:cut], tc.base)
			if err == nil {
				if tc.r.TraceID == 0 || n != cut || got.TraceID != 0 {
					t.Fatalf("DecodeResponse(%+v prefix %d/%d) succeeded: %+v", tc.r, cut, len(buf), got)
				}
			}
		}
	}
}

func TestDecodeTokenAbsurdDimension(t *testing.T) {
	buf := binary.AppendUvarint(nil, MaxTokenDim+1)
	buf = append(buf, bytes.Repeat([]byte{0}, 64)...)
	if _, _, err := DecodeToken(buf, nil); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeToken(dim=%d) = %v, want ErrWireCorrupt", MaxTokenDim+1, err)
	}
	// The same bound must hold inside a full message.
	req := Request{Tag: 1, Kind: ReqRead}.AppendBinary(nil)
	req = req[:len(req)-4] // strip token(dim 0) + flags + sid + opSeq
	req = binary.AppendUvarint(req, MaxTokenDim+1)
	req = append(req, bytes.Repeat([]byte{1}, 32)...)
	if _, _, err := DecodeRequest(req); err == nil {
		t.Fatal("DecodeRequest with absurd token dimension succeeded")
	}
}

func TestDecodeRequestBadKind(t *testing.T) {
	r := Request{Tag: 3, Kind: ReqWrite, Var: 1}
	buf := r.AppendBinary(nil)
	// Kind is the second field; re-encode with an out-of-range kind.
	bad := binary.AppendUvarint(nil, r.Tag)
	bad = binary.AppendUvarint(bad, uint64(reqKinds))
	bad = append(bad, buf[2:]...)
	if _, _, err := DecodeRequest(bad); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeRequest(kind=%d) = %v, want ErrWireCorrupt", reqKinds, err)
	}
}

func TestDecodeResponseBadStatus(t *testing.T) {
	buf := binary.AppendUvarint(nil, 1)                  // tag
	buf = binary.AppendUvarint(buf, uint64(statusCount)) // status
	buf = binary.AppendVarint(buf, 0)                    // proc
	buf = binary.AppendVarint(buf, 0)                    // val
	buf = binary.AppendVarint(buf, 0)                    // fromProc
	buf = binary.AppendVarint(buf, 0)                    // fromSeq
	buf = binary.AppendUvarint(buf, 0)                   // token dim
	buf = binary.AppendUvarint(buf, 0)                   // errlen
	if _, _, err := DecodeResponse(buf, nil); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeResponse(bad status) = %v, want ErrWireCorrupt", err)
	}
}

func TestResponseErrTruncatedOnEncode(t *testing.T) {
	long := string(bytes.Repeat([]byte{'x'}, maxWireErr+500))
	buf := Response{Tag: 1, Status: StatusUnavailable, Err: long}.AppendBinary(nil, nil)
	got, _, err := DecodeResponse(buf, nil)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if len(got.Err) != maxWireErr {
		t.Fatalf("error detail %d bytes on the wire, want cap %d", len(got.Err), maxWireErr)
	}
}

func TestDecodeResponseErrTooLong(t *testing.T) {
	buf := binary.AppendUvarint(nil, 1) // tag
	buf = binary.AppendUvarint(buf, 0)  // status
	buf = binary.AppendVarint(buf, 0)   // proc
	buf = binary.AppendVarint(buf, 0)   // val
	buf = binary.AppendVarint(buf, 0)   // fromProc
	buf = binary.AppendVarint(buf, 0)   // fromSeq
	buf = binary.AppendUvarint(buf, 0)  // token dim
	buf = binary.AppendUvarint(buf, maxWireErr+1)
	buf = append(buf, bytes.Repeat([]byte{'x'}, maxWireErr+1)...)
	if _, _, err := DecodeResponse(buf, nil); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeResponse(errlen=%d) = %v, want ErrWireCorrupt", maxWireErr+1, err)
	}
}

func TestAppendTokenBaseMismatchFallsBackToSparse(t *testing.T) {
	tok := vclock.VC{5, 6, 7}
	// Base of the wrong dimension must not panic — it encodes sparsely.
	buf := AppendToken(nil, tok, vclock.VC{1, 2})
	got, n, err := DecodeToken(buf, nil)
	if err != nil || n != len(buf) {
		t.Fatalf("DecodeToken: %v (consumed %d of %d)", err, n, len(buf))
	}
	if !got.Equal(tok) {
		t.Fatalf("token = %v, want %v", got, tok)
	}
	// Decoding against a mismatched base likewise ignores the base.
	got, _, err = DecodeToken(buf, vclock.VC{9})
	if err != nil || !got.Equal(tok) {
		t.Fatalf("DecodeToken(mismatched base) = %v, %v; want %v", got, err, tok)
	}
}

// Trailing bytes after the mandatory fields are parsed as trace
// context; garbage there is now a decode error, not silently-ignored
// slack. Bytes after a complete trace context remain unconsumed, and
// callers reject the frame by the n != len(frame) check.
func TestDecodeRequestTrailingGarbageRejected(t *testing.T) {
	buf := Request{Tag: 2, Kind: ReqPing}.AppendBinary(nil)
	buf = append(buf, 0xAB, 0xCD) // unterminated uvarint
	if _, _, err := DecodeRequest(buf); err == nil {
		t.Fatal("DecodeRequest with garbage trailing bytes succeeded")
	}
	traced := Request{Tag: 2, Kind: ReqPing, TraceID: 9}.AppendBinary(nil)
	full := len(traced)
	traced = append(traced, 0x01) // a byte after a complete trace context
	got, n, err := DecodeRequest(traced)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if n != full || got.TraceID != 9 {
		t.Fatalf("consumed %d bytes (TraceID=%d), want %d; callers reject frames with trailing garbage", n, got.TraceID, full)
	}
}

func TestDecodeRequestTraceContextRejects(t *testing.T) {
	base := Request{Tag: 3, Kind: ReqRead, Var: 1}.AppendBinary(nil)
	zeroID := binary.AppendUvarint(append([]byte(nil), base...), 0)
	zeroID = binary.AppendUvarint(zeroID, 0)
	if _, _, err := DecodeRequest(zeroID); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeRequest(trace ID 0) = %v, want ErrWireCorrupt", err)
	}
	badFlags := binary.AppendUvarint(append([]byte(nil), base...), 7)
	badFlags = binary.AppendUvarint(badFlags, 1<<5) // undefined flag bit
	if _, _, err := DecodeRequest(badFlags); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("DecodeRequest(unknown trace flags) = %v, want ErrWireCorrupt", err)
	}
}

func TestDecodeResponseTraceEchoRejects(t *testing.T) {
	base := Response{Tag: 4, Status: StatusOK}.AppendBinary(nil, nil)
	add := func(vals ...uint64) []byte {
		buf := append([]byte(nil), base...)
		for _, v := range vals {
			buf = binary.AppendUvarint(buf, v)
		}
		return buf
	}
	for name, buf := range map[string][]byte{
		"zero trace ID":    add(0, 0),
		"stage count":      add(9, MaxTraceStage+1),
		"stage index":      add(9, 1, MaxTraceStage, 50),
		"stage order":      add(9, 2, 3, 50, 2, 60),
		"duplicate stage":  add(9, 2, 3, 50, 3, 60),
		"missing stage ns": add(9, 1, 3),
	} {
		if _, _, err := DecodeResponse(buf, nil); err == nil {
			t.Errorf("DecodeResponse(%s) succeeded", name)
		}
	}
}

// TestStatusStringExhaustive fails when a status is added without a
// name: every defined status must render something better than the
// numeric fallback, and no two statuses may share a name.
func TestStatusStringExhaustive(t *testing.T) {
	seen := make(map[string]uint8)
	for s := uint8(0); s < uint8(statusCount); s++ {
		name := StatusString(s)
		if name == "" || strings.HasPrefix(name, "status(") {
			t.Errorf("status %d has no name (StatusString = %q)", s, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("statuses %d and %d share the name %q", prev, s, name)
		}
		seen[name] = s
	}
	if got := StatusString(200); got != "status(200)" {
		t.Errorf("StatusString(200) = %q, want fallback", got)
	}
}

func TestPeekTagTruncated(t *testing.T) {
	for name, buf := range map[string][]byte{
		"empty":              {},
		"unterminated":       {0x80},
		"unterminated long":  bytes.Repeat([]byte{0xFF}, 5),
		"overflowing varint": bytes.Repeat([]byte{0xFF}, 11),
	} {
		if _, err := PeekTag(buf); !errors.Is(err, ErrWireTruncated) {
			t.Errorf("PeekTag(%s) = %v, want ErrWireTruncated", name, err)
		}
	}
	tag, err := PeekTag(Request{Tag: 1 << 40, Kind: ReqPing}.AppendBinary(nil))
	if err != nil || tag != 1<<40 {
		t.Fatalf("PeekTag(valid) = %d, %v", tag, err)
	}
}
