// Package core is the public entry point of the library: a live,
// goroutine-hosted causally consistent distributed shared memory.
//
// A Cluster hosts n processes, each owning a full replica of the m
// shared variables and running one of the implemented protocols
// (OptP — the paper's write-delay-optimal protocol — by default).
// Writes are wait-free: they apply locally and broadcast asynchronously
// over the transport; reads are local and wait-free. The cluster
// records a full event trace that the checker package can audit for
// safety, causal consistency, liveness and write-delay optimality.
//
// Basic use:
//
//	c, err := core.NewCluster(core.Config{Processes: 3, Variables: 4})
//	...
//	c.Node(0).Write(1, 42)
//	v, _ := c.Node(2).Read(1)
//	c.Quiesce(ctx) // wait for every write to reach every replica
//	c.Close()
package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config parameterizes a Cluster.
type Config struct {
	// Processes is the number of replicated processes (n ≥ 1).
	Processes int
	// Variables is the number of shared memory locations (m ≥ 1).
	Variables int
	// Protocol selects the consistency protocol; the zero value is
	// OptP, the paper's optimal protocol.
	Protocol protocol.Kind

	// ShareSets, when non-nil, engages partial replication: ShareSets[x]
	// lists the processes replicating variable x (len must equal
	// Variables, each set non-empty). Writes then multicast to the
	// share-set only, and reads of a variable the reading process does
	// not replicate are forwarded to a replicating server. Requires
	// Protocol == PartialRep. Incompatible with WALDir and Crashes:
	// restart catch-up assumes peers archive every write, which partial
	// stores deliberately don't.
	ShareSets [][]int

	// MinDelay and MaxDelay bound the artificial per-message network
	// delay of the built-in transport. Zero means immediate delivery.
	MinDelay, MaxDelay time.Duration
	// FIFO makes the built-in transport preserve per-link send order.
	FIFO bool
	// Seed drives the built-in transport's delay sampling.
	Seed int64

	// Chaos configures fault injection (message loss, duplication,
	// reorder bursts, timed link partitions) on the built-in transport.
	// When any fault is enabled the cluster assembles the full chaos
	// stack — jittered links under fault injection under the
	// reliability sublayer — so protocol replicas still observe
	// exactly-once delivery, and the trace gains NetDrop / Retransmit /
	// DupDiscard events. Ignored when Transport is set.
	Chaos transport.ChaosConfig
	// RetransmitTimeout is the reliability sublayer's initial ack
	// deadline; 0 defaults to 2×MaxDelay + 1ms — comfortably above the
	// data+ack round trip, so a fault-free frame is rarely re-sent.
	// Only meaningful with Chaos enabled.
	RetransmitTimeout time.Duration
	// BackoffMax caps the sublayer's exponential retransmission backoff
	// (0 defaults to 20× RetransmitTimeout).
	BackoffMax time.Duration

	// Transport optionally replaces the built-in transport. The Cluster
	// takes ownership and closes it.
	Transport transport.Transport

	// Meta engages the causality-metadata codec on the inter-replica
	// links: every protocol message's clock is round-tripped through the
	// per-link encoder/decoder pair (sparse deltas, stabilization
	// scalars — see protocol.MetaMode) before delivery, exactly as real
	// wire bytes would be, and the meta-vs-payload byte split becomes
	// observable (Cluster.MetaCodec, dsm_net_*_bytes_total). The zero
	// value (MetaOff) ships updates untouched — the hot path pays
	// nothing. Composes with Chaos, WAL recovery and heartbeats; for
	// runs over transport.TCPNet, prefer transport.NewTCPMeta so the
	// codec runs on the real sockets instead.
	Meta protocol.MetaMode

	// TokenInterval is the wall-clock period of token circulation for
	// token-based protocols (WS-send); 0 defaults to 1ms.
	TokenInterval time.Duration

	// WALDir enables crash recovery: each process journals its local
	// operations and applied updates to a write-ahead log under
	// WALDir/node<i>, with periodic full-state snapshots, so it can be
	// crash-stopped and restarted from disk (see Cluster.Crash and
	// Cluster.Restart). Existing segments in the directory are
	// superseded at cluster start. Requires the built-in transport.
	WALDir string
	// WALSync fsyncs the journal after every record — maximally durable
	// and correspondingly slow. The default (false) lets records settle
	// in the OS page cache, which the in-process crash model (crash =
	// goroutine stop, not machine loss) never loses.
	WALSync bool
	// SnapshotEvery is the number of journal records between automatic
	// snapshots; 0 defaults to 256. Snapshots rotate the WAL segment,
	// so the interval also bounds recovery replay length.
	SnapshotEvery int

	// HeartbeatInterval > 0 starts the heartbeat failure detector:
	// every interval each live process probes every peer, and silence
	// beyond SuspectAfter raises a Suspect trace event. Token
	// circulation skips suspected holders. Requires the built-in
	// transport.
	HeartbeatInterval time.Duration
	// SuspectAfter is the detector's silence threshold; 0 defaults to
	// 4×HeartbeatInterval.
	SuspectAfter time.Duration

	// Crashes is the seeded crash/restart schedule, executed by a
	// background orchestrator exactly like Chaos's partition windows:
	// process Proc crash-stops at Start and, when End > Start, restarts
	// from its WAL at End. Restarting windows require WALDir.
	Crashes []CrashWindow

	// Obs attaches the live observability layer: every trace event also
	// feeds the observer's metrics registry and causal-propagation span
	// tracker, the WAL reports fsync latencies, and the reliability
	// sublayer / failure detector register scrape-time gauges. The
	// observer must be built for the same process count (obs.NewObserver
	// with Procs == Processes). Nil disables live observability — the
	// hot path then pays nothing.
	Obs *obs.Observer

	// Sink, when set, receives every trace event as it is recorded —
	// a live tee of the log. Implementations must not block (see
	// trace.Sink); obs.NewJSONLSink qualifies. The cluster does not
	// close the sink.
	Sink trace.Sink
}

// CrashWindow schedules one crash-stop of Proc at Start (measured from
// cluster start) and, when End > 0, a restart at End. End == 0 leaves
// the process down for the rest of the run.
type CrashWindow struct {
	Proc       int
	Start, End time.Duration
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Processes < 1 {
		return fmt.Errorf("core: Processes = %d", c.Processes)
	}
	if c.Variables < 1 {
		return fmt.Errorf("core: Variables = %d", c.Variables)
	}
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("core: delay range [%v, %v]", c.MinDelay, c.MaxDelay)
	}
	if c.ShareSets != nil {
		if c.Protocol != protocol.PartialRep {
			return fmt.Errorf("core: ShareSets requires Protocol = PartialRep, got %v", c.Protocol)
		}
		if len(c.ShareSets) != c.Variables {
			return fmt.Errorf("core: ShareSets covers %d variables, cluster has %d", len(c.ShareSets), c.Variables)
		}
		if _, err := protocol.NewShareSets(c.ShareSets, c.Processes); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if c.WALDir != "" || len(c.Crashes) > 0 {
			return fmt.Errorf("core: partial replication (ShareSets) does not compose with crash recovery")
		}
	}
	if c.TokenInterval < 0 {
		return fmt.Errorf("core: TokenInterval = %v", c.TokenInterval)
	}
	if err := c.Chaos.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if !c.Meta.Valid() {
		return fmt.Errorf("core: Meta = %v", c.Meta)
	}
	if c.RetransmitTimeout < 0 || c.BackoffMax < 0 {
		return fmt.Errorf("core: retransmit timing (%v, %v)", c.RetransmitTimeout, c.BackoffMax)
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("core: SnapshotEvery = %d", c.SnapshotEvery)
	}
	if c.HeartbeatInterval < 0 || c.SuspectAfter < 0 {
		return fmt.Errorf("core: heartbeat timing (%v, %v)", c.HeartbeatInterval, c.SuspectAfter)
	}
	for i, w := range c.Crashes {
		if w.Proc < 0 || w.Proc >= c.Processes {
			return fmt.Errorf("core: crash window %d: process %d of %d", i, w.Proc, c.Processes)
		}
		if w.Start < 0 || (w.End != 0 && w.End <= w.Start) {
			return fmt.Errorf("core: crash window %d: [%v, %v)", i, w.Start, w.End)
		}
		if w.End != 0 && c.WALDir == "" {
			return fmt.Errorf("core: crash window %d schedules a restart but WALDir is unset", i)
		}
	}
	if c.Transport != nil && (c.WALDir != "" || c.HeartbeatInterval > 0 || len(c.Crashes) > 0) {
		return fmt.Errorf("core: crash-recovery features require the built-in transport")
	}
	if c.Obs != nil && c.Obs.Procs() != c.Processes {
		return fmt.Errorf("core: observer built for %d processes, cluster has %d", c.Obs.Procs(), c.Processes)
	}
	return nil
}

// snapshotInterval returns SnapshotEvery with its default applied.
func (c Config) snapshotInterval() int {
	if c.SnapshotEvery == 0 {
		return 256
	}
	return c.SnapshotEvery
}
