package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/checker"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The codec's correctness contract: because every encoding is lossless
// and recode happens deterministically at send time, a codec-on run
// must be EVENT-IDENTICAL to the codec-off run — same trace, same
// buffering decisions, same audit verdicts — for every protocol, mode
// and seed. The simulator's bit-reproducible scheduler turns that into
// an exact equality check rather than a statistical one.
func TestMetaCodecEventIdentical(t *testing.T) {
	seeds := []uint64{11, 23, 37}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, kind := range protocol.Kinds() {
		for _, seed := range seeds {
			scripts, err := workload.Scripts(workload.Config{
				Procs: 5, Vars: 4, OpsPerProc: 40, WriteRatio: 0.5,
				ThinkMin: 0, ThinkMax: 30, Hot: 0.2, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			run := func(mode protocol.MetaMode) *sim.Result {
				t.Helper()
				res, err := sim.Run(sim.Config{
					Procs: 5, Vars: 4, Protocol: kind, Meta: mode,
					Latency: sim.NewUniformLatency(5, 150, seed),
				}, scripts)
				if err != nil {
					t.Fatalf("%v/%v seed %d: %v", kind, mode, seed, err)
				}
				return res
			}
			base := run(protocol.MetaOff)
			baseRep, err := checker.Audit(base.Log)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []protocol.MetaMode{protocol.MetaDelta, protocol.MetaStab, protocol.MetaAuto} {
				res := run(mode)
				if !reflect.DeepEqual(res.Log.PerProc(), base.Log.PerProc()) {
					t.Fatalf("%v/%v seed %d: trace differs from codec-off run", kind, mode, seed)
				}
				rep, err := checker.Audit(res.Log)
				if err != nil {
					t.Fatal(err)
				}
				if rep.String() != baseRep.String() {
					t.Fatalf("%v/%v seed %d: audit differs:\n  on:  %v\n  off: %v",
						kind, mode, seed, rep, baseRep)
				}
				if !rep.Safe() || !rep.CausallyConsistent() {
					t.Fatalf("%v/%v seed %d: audit not clean: %v", kind, mode, seed, rep)
				}
				if res.WireBytes == 0 || res.MetaBytes == 0 || res.MetaBytes > res.WireBytes {
					t.Fatalf("%v/%v seed %d: byte accounting %d/%d", kind, mode, seed, res.MetaBytes, res.WireBytes)
				}
			}
			if base.MetaBytes != 0 || base.WireBytes != 0 {
				t.Fatalf("codec-off run accounted bytes: %d/%d", base.MetaBytes, base.WireBytes)
			}
		}
	}
}

func TestMetaCodecInvalidMode(t *testing.T) {
	_, err := sim.Run(sim.Config{Procs: 2, Vars: 1, Meta: protocol.MetaMode(9)}, []sim.Script{{}, {}})
	if err == nil {
		t.Fatal("accepted invalid meta mode")
	}
}
