package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/durability"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Node is one process of a live cluster: a full replica of the shared
// variables plus the protocol state machine driving it. All methods are
// safe for concurrent use.
type Node struct {
	c  *Cluster
	id int

	// down is the crash-stop flag: set under mu by Crash, read by the
	// delivery path (atomically, so handle can drop frames for a down
	// process without contending on mu during catch-up).
	down atomic.Bool

	// mu serializes replica access; lock order is Node.mu before
	// Cluster.mu, never the reverse.
	mu      sync.Mutex
	replica protocol.Replica
	// pending holds buffered (delayed) updates indexed by origin and
	// write ID, so duplicate checks are O(1) and drain re-examines only
	// the updates a state advance could have unblocked. Nil while the
	// node is crash-stopped.
	pending *pendingSet

	// wal is the node's journal when crash recovery is enabled; walErr
	// latches the first journaling failure and poisons later writes.
	wal    *durability.WAL
	walErr error

	// archive holds, per origin process, every update installed or
	// produced here, in delivery order — the store anti-entropy serves
	// to a recovering peer. Only populated when recovery is enabled.
	archive [][]protocol.Update

	// fw notifies frontier-admission waiters (the serving tier) of
	// frontier-affecting changes; see frontierWaiters.
	fw frontierWaiters
}

// ID returns the node's 0-based process index.
func (n *Node) ID() int { return n.id }

// Write performs w_p(x)v: it applies locally (wait-free) and broadcasts
// the update asynchronously. On a crash-stopped node it returns ErrDown.
func (n *Node) Write(x int, v int64) error {
	if err := n.check(x); err != nil {
		return err
	}
	n.mu.Lock()
	if n.down.Load() {
		n.mu.Unlock()
		return fmt.Errorf("write at p%d: %w", n.id+1, ErrDown)
	}
	if err := n.walErr; err != nil {
		n.mu.Unlock()
		return fmt.Errorf("core: p%d journal failed, refusing writes: %w", n.id+1, err)
	}
	u, broadcast := n.replica.LocalWrite(x, v)
	n.journalLocked(durability.Entry{Kind: durability.EntryLocalWrite, Var: x, Val: v})
	if broadcast {
		n.archiveLocked(u)
	} else {
		// Count the deferred write before its Issue becomes visible:
		// a Quiesce poll must never see the write without the unsent
		// obligation that keeps the cluster non-quiescent.
		n.c.noteDeferred(n.id)
	}
	now := n.c.now()
	n.c.appendEvent(trace.Event{
		Kind: trace.Issue, Proc: n.id, Time: now,
		Write: u.ID, Var: x, Val: v,
	})
	if broadcast {
		n.c.appendEvent(trace.Event{
			Kind: trace.Send, Proc: n.id, Time: now,
			Write: u.ID, Var: x, Val: v,
		})
	}
	// The local apply advanced this replica's frontier; wake admission
	// waiters it satisfied.
	n.wakeFrontierLocked()
	n.mu.Unlock()
	// Broadcast outside the node lock: a full FIFO link must never
	// block a holder of n.mu that a delivery goroutine is waiting for.
	if broadcast {
		transport.Broadcast(n.c.tr, n.c.cfg.Processes, n.id, u)
	}
	return nil
}

// Read performs r_p(x) against the local replica (wait-free).
func (n *Node) Read(x int) (int64, error) {
	v, _, err := n.ReadMeta(x)
	return v, err
}

// ReadMeta is Read plus the identity of the write that produced the
// value (history.Bottom for the initial ⊥).
func (n *Node) ReadMeta(x int) (int64, history.WriteID, error) {
	if err := n.check(x); err != nil {
		return 0, history.Bottom, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down.Load() {
		return 0, history.Bottom, fmt.Errorf("read at p%d: %w", n.id+1, ErrDown)
	}
	v, from := n.replica.Read(x)
	// OptP-family reads mutate Write_co (read-merge); journal them or a
	// recovered replica under-approximates its →co knowledge.
	if n.c.cfg.Protocol.ReadMutatesState() {
		n.journalLocked(durability.Entry{Kind: durability.EntryRead, Var: x})
	}
	n.c.appendEvent(trace.Event{
		Kind: trace.Return, Proc: n.id, Time: n.c.now(),
		Var: x, Val: v, From: from,
	})
	return v, from, nil
}

// Clock returns a copy of the replica's primary control vector
// (Write_co for OptP).
func (n *Node) Clock() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replica.(protocol.Introspector).ControlClock()
}

// Frontier returns a copy of the replica's applied-writes vector:
// component j counts writes issued by p_j applied (or logically
// applied) here. The serving tier derives session tokens from it. On
// a crash-stopped node it returns nil.
func (n *Node) Frontier() vclock.VC {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down.Load() {
		return nil
	}
	return n.replica.(protocol.Introspector).ApplyClock()
}

// FrontierDominates reports whether the applied frontier covers t
// component-wise — the session-token admission test of the serving
// tier: a read may be served once the replica has applied everything
// the session observed. The query is allocation-free for the built-in
// protocols. t must have dimension Processes; a crash-stopped node
// dominates nothing.
func (n *Node) FrontierDominates(t vclock.VC) bool {
	if len(t) == 0 {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.frontierDominatesLocked(t)
}

// PendingUpdates returns the current number of buffered (delayed)
// updates at this node.
func (n *Node) PendingUpdates() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pending.size()
}

func (n *Node) check(x int) error {
	if n.c.closed.Load() {
		return ErrClosed
	}
	if x < 0 || x >= n.c.cfg.Variables {
		return fmt.Errorf("%w: x%d of %d", ErrBadVariable, x+1, n.c.cfg.Variables)
	}
	return nil
}

// handle is the transport delivery callback.
func (n *Node) handle(m transport.Message) {
	if m.Heartbeat {
		if !n.down.Load() && n.c.det != nil {
			n.c.det.Heard(n.id, m.From)
		}
		return
	}
	if n.down.Load() {
		return // crash-stop: in-flight messages are dropped
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down.Load() {
		return
	}
	n.receiveLocked(m.Update)
	n.drainLocked()
}

// receiveLocked runs the receipt state machine for one update: record
// the receipt, then buffer, apply, or discard. Both the transport path
// (handle) and anti-entropy catch-up (feedLocked) funnel through it.
// Caller holds n.mu.
func (n *Node) receiveLocked(u protocol.Update) {
	st := n.replica.Status(u)
	if st == protocol.Blocked && n.c.recoveryEnabled() {
		// With crash recovery in play, a blocked update can be a stale
		// duplicate: a retransmission landing after the restart already
		// recovered the write, or a transport delivery overlapping a
		// catch-up feed. Drop it silently — it was already counted.
		if res, ok := n.replica.(protocol.Resumer); ok && !res.NeedsUpdate(u) {
			return
		}
		if n.pending.has(u.ID) {
			return
		}
	}
	// One timestamp covers the whole receipt state machine: the trace's
	// order authority is the journal ticket, and sampling the clock once
	// per message keeps nanotime off the per-event cost.
	now := n.c.now()
	kind := trace.Receipt
	if u.Marker {
		kind = trace.Token
	}
	n.c.appendEvent(trace.Event{
		Kind: kind, Proc: n.id, Time: now,
		Write: u.ID, Var: u.Var, Val: u.Val,
		Buffered: st == protocol.Blocked,
	})
	switch st {
	case protocol.Blocked:
		n.pending.add(u)
	case protocol.Deliverable:
		n.applyLocked(u, now)
	case protocol.Discardable:
		n.dropLocked(u, now)
	}
}

// applyLocked installs u, recording any writing-semantics logical apply
// first, stamping its events with now. Caller holds n.mu.
func (n *Node) applyLocked(u protocol.Update, now int64) {
	if sk, ok := n.replica.(protocol.Skipper); ok {
		if tgt := sk.SkipTarget(u); !tgt.IsBottom() {
			n.c.appendEvent(trace.Event{
				Kind: trace.Discard, Proc: n.id, Time: now, Write: tgt,
			})
		}
	}
	n.replica.Apply(u)
	n.journalLocked(durability.Entry{Kind: durability.EntryApply, Update: u})
	n.archiveLocked(u)
	kind := trace.Apply
	if u.Marker {
		kind = trace.Token
	}
	n.c.appendEvent(trace.Event{
		Kind: kind, Proc: n.id, Time: now,
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
	n.wakeFrontierLocked()
}

// dropLocked discards the late message of an already logically-applied
// write. Caller holds n.mu.
func (n *Node) dropLocked(u protocol.Update, now int64) {
	n.replica.Discard(u)
	n.journalLocked(durability.Entry{Kind: durability.EntryDiscard, Update: u})
	// Archive the dropped message too: its value was skipped here, but
	// a recovering peer that did NOT skip it still needs the payload.
	n.archiveLocked(u)
	n.c.appendEvent(trace.Event{
		Kind: trace.Drop, Proc: n.id, Time: now,
		Write: u.ID, Var: u.Var, Val: u.Val,
	})
	n.wakeFrontierLocked()
}

// drainLocked applies buffered updates until a fixpoint. Caller holds
// n.mu.
//
// The pending set keeps each origin's updates sorted by delivery key,
// and every protocol delivers (or discards / purges) an origin's
// updates in that order: OptP/ANBKH require Apply[from] = seq−1, WSSend
// consumes (round, slot) contiguously, and the writing-semantics skip
// case — an update deliverable over its still-buffered predecessor —
// only ever jumps the immediately preceding update from the same
// origin. So examining the head and head+1 of each origin queue finds
// every actionable update, re-checking an update only when some state
// advance could have unblocked it, instead of the old rescan of the
// whole buffer after every apply. A final full scan at the fixpoint
// guards the invariant: it is expected to find nothing and exists so a
// future protocol with a wilder delivery order degrades to the old
// behaviour instead of wedging.
func (n *Node) drainLocked() {
	purge := n.c.recoveryEnabled()
	res, canResume := n.replica.(protocol.Resumer)
	canPurge := purge && canResume
	ps := n.pending
	for ps.size() > 0 {
		progressed := false
		for origin := range ps.byOrigin {
			for n.drainStepLocked(origin, canPurge, res) {
				progressed = true
			}
		}
		if progressed {
			continue
		}
		if !n.drainScanLocked(canPurge, res) {
			return
		}
	}
}

// drainStepLocked probes the head (and, for the same-origin skip case,
// head+1) of one origin queue, acting on the first actionable update.
// It reports whether it made progress. Caller holds n.mu.
func (n *Node) drainStepLocked(origin int, canPurge bool, res protocol.Resumer) bool {
	q := n.pending.byOrigin[origin]
	for probe := 0; probe < 2 && probe < len(q); probe++ {
		u := q[probe]
		switch n.replica.Status(u) {
		case protocol.Deliverable:
			n.pending.removeAt(origin, probe)
			n.applyLocked(u, n.c.now())
			return true
		case protocol.Discardable:
			n.pending.removeAt(origin, probe)
			n.dropLocked(u, n.c.now())
			return true
		case protocol.Blocked:
			// A buffered copy can go stale when catch-up installs
			// the same write first; evict it or it rots here.
			if canPurge && !res.NeedsUpdate(u) {
				n.pending.removeAt(origin, probe)
				return true
			}
		}
	}
	return false
}

// drainScanLocked is the fixpoint safety net: one pass over every
// buffered update regardless of queue position. Reports whether it
// acted. Caller holds n.mu.
func (n *Node) drainScanLocked(canPurge bool, res protocol.Resumer) bool {
	for origin := range n.pending.byOrigin {
		for i, u := range n.pending.byOrigin[origin] {
			switch n.replica.Status(u) {
			case protocol.Deliverable:
				n.pending.removeAt(origin, i)
				n.applyLocked(u, n.c.now())
				return true
			case protocol.Discardable:
				n.pending.removeAt(origin, i)
				n.dropLocked(u, n.c.now())
				return true
			case protocol.Blocked:
				if canPurge && !res.NeedsUpdate(u) {
					n.pending.removeAt(origin, i)
					return true
				}
			}
		}
	}
	return false
}

// feedLocked offers a peer-archived update to this replica during
// anti-entropy catch-up, returning whether it was accepted. Caller
// holds n.mu and follows up with drainLocked.
func (n *Node) feedLocked(u protocol.Update) bool {
	res, ok := n.replica.(protocol.Resumer)
	if !ok || !res.NeedsUpdate(u) {
		return false
	}
	if n.pending.has(u.ID) {
		return false
	}
	n.receiveLocked(u)
	return true
}

// journalLocked appends e to the node's WAL, taking an automatic
// snapshot when the segment outgrows the configured interval. The
// first failure is latched; subsequent Writes surface it. Caller holds
// n.mu.
func (n *Node) journalLocked(e durability.Entry) {
	if n.wal == nil || n.walErr != nil {
		return
	}
	if err := n.wal.Append(e); err != nil {
		n.walErr = err
		return
	}
	if n.wal.Entries() >= n.c.cfg.snapshotInterval() {
		if err := n.wal.Snapshot(n.snapshotLocked()); err != nil {
			n.walErr = err
		}
	}
}

// archiveLocked records u in the per-origin anti-entropy store. Caller
// holds n.mu.
func (n *Node) archiveLocked(u protocol.Update) {
	if n.archive == nil {
		return
	}
	n.archive[u.From()] = append(n.archive[u.From()], u)
}
