package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/durability"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Errors returned by cluster operations.
var (
	// ErrClosed reports an operation on a closed cluster.
	ErrClosed = errors.New("core: cluster closed")
	// ErrBadVariable reports an out-of-range variable index.
	ErrBadVariable = errors.New("core: variable index out of range")
	// ErrDown reports an operation on a crash-stopped process.
	ErrDown = errors.New("core: process is down")
)

// Cluster hosts the processes of a live DSM system.
//
// The event hot path is lock-free: appendEvent writes into a sharded
// trace.Journal (one append lane per process) and maintains the
// Quiesce accounting in padded atomics, so concurrent writers and
// delivery goroutines never serialize on a cluster-wide mutex. The
// only cluster-level lock left is mu, guarding the crash-stop mirror
// on the (slow) Crash/Restart control paths, plus obsMu, which
// serializes the observer/sink tee when live observability is
// configured. Lock order is always Node.mu before Cluster.mu.
type Cluster struct {
	cfg    Config
	tr     transport.Transport
	codec  *transport.Codec // non-nil when cfg.Meta is enabled
	nodes  []*Node
	det    *transport.Detector
	start  time.Time
	hasTok bool

	// shares is the partial-replication assignment; the zero value means
	// full replication everywhere. readAbort unblocks forwarded reads
	// parked in Node.readRemote when the cluster closes.
	shares    protocol.ShareSets
	readAbort chan struct{}

	journal *trace.Journal
	closed  atomic.Bool

	// tee is set when cfg.Obs or cfg.Sink is non-nil; obsMu then
	// serializes ticket draw + journal append + Observe/Record so the
	// observer sees events exactly in global order, preserving the
	// Observer.Observe no-concurrent-calls contract. With observability
	// off the hot path never touches it.
	tee   bool
	obsMu sync.Mutex

	acct quiesceAcct

	// mu guards down, the crash-stop mirror (control paths only).
	mu   sync.Mutex
	down []bool // crash-stopped processes (mirrors Node.down)

	tokenStop chan struct{}
	tokenDone chan struct{}
	crashStop chan struct{}
	crashDone chan struct{}
}

// paddedInt64 is an atomic counter alone on its cache line, so
// per-process counters touched by different goroutines don't false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// quiesceAcct is the lock-free replacement for the old
// issuedBy/propagatedBy/counted tallies. Instead of absolute counts it
// tracks, per process, only the outstanding work:
//
//	lag[p]    = broadcast (non-marker) updates sent toward p and not yet
//	            (logically) applied there — a Send from s adds 1 to every
//	            lag[q], q ≠ s; an Apply/Discard at p subtracts 1. A
//	            process's own issues cancel out of the old formula
//	            (counted[p] and issuedBy[p] moved in lockstep), so Issue
//	            events need no accounting at all.
//	unsent[p] = deferred writes buffered at p awaiting the token.
//
// The cluster is quiescent iff every live process has lag = unsent = 0.
// gen increments on every accounting change; Quiesce reads gen, checks
// the counters, and re-reads gen — an unchanged gen proves the zeros
// were all true at one instant, so the poll can never report a false
// quiescence from a torn multi-counter read.
type quiesceAcct struct {
	gen    paddedInt64
	lag    []paddedInt64
	unsent []paddedInt64
}

func newQuiesceAcct(procs int) quiesceAcct {
	return quiesceAcct{
		lag:    make([]paddedInt64, procs),
		unsent: make([]paddedInt64, procs),
	}
}

// bump marks an accounting change, invalidating in-flight quiescence
// checks and waking pollers.
func (a *quiesceAcct) bump() { a.gen.v.Add(1) }

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		start:     time.Now(),
		journal:   trace.NewJournal(cfg.Processes, cfg.Variables),
		tee:       cfg.Obs != nil || cfg.Sink != nil,
		acct:      newQuiesceAcct(cfg.Processes),
		down:      make([]bool, cfg.Processes),
		readAbort: make(chan struct{}),
	}
	if cfg.ShareSets != nil {
		shares, err := protocol.NewShareSets(cfg.ShareSets, cfg.Processes)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err) // unreachable after Validate
		}
		c.shares = shares
		c.journal.SetShareSets(shares.Raw())
	}
	tr := cfg.Transport
	if tr == nil {
		netCfg := transport.Config{
			Procs:    cfg.Processes,
			MinDelay: cfg.MinDelay,
			MaxDelay: cfg.MaxDelay,
			FIFO:     cfg.FIFO,
			Seed:     cfg.Seed,
		}
		// An RTO below the data+ack round trip floods the links with
		// spurious retransmissions (dedup absorbs them, but they waste
		// bandwidth and pollute the stats), so default above the worst
		// jittered round trip.
		rto := cfg.RetransmitTimeout
		if rto == 0 {
			rto = 2*cfg.MaxDelay + time.Millisecond
		}
		var err error
		if cfg.Chaos.Enabled() {
			tr, err = transport.NewFaulty(netCfg, cfg.Chaos, transport.ReliableConfig{
				RetransmitTimeout: rto,
				BackoffMax:        cfg.BackoffMax,
				Seed:              cfg.Seed,
			}, c.noteNetEvent)
		} else {
			tr, err = transport.New(netCfg)
		}
		if err != nil {
			return nil, err
		}
	}
	if cfg.Meta.Enabled() {
		// The codec wraps the outermost transport layer (above the
		// reliability sublayer), so each protocol message is recoded
		// once per link; retransmissions below re-send the already
		// decoded message and heartbeats/acks pass through untouched.
		c.codec = transport.WithCodec(tr, cfg.Processes, cfg.Meta)
		tr = c.codec
	}
	c.tr = tr
	for p := 0; p < cfg.Processes; p++ {
		var r protocol.Replica
		if !c.shares.IsZero() {
			r = protocol.NewPartialRep(p, cfg.Processes, cfg.Variables, c.shares)
		} else {
			r = protocol.New(cfg.Protocol, p, cfg.Processes, cfg.Variables)
		}
		n := &Node{c: c, id: p, replica: r, pending: newPendingSet(cfg.Processes)}
		if _, ok := r.(protocol.TokenBatcher); ok {
			c.hasTok = true
		}
		c.nodes = append(c.nodes, n)
		tr.Register(p, n.handle)
	}
	if cfg.WALDir != "" {
		for _, n := range c.nodes {
			n.archive = make([][]protocol.Update, cfg.Processes)
			wal, err := durability.Create(c.walPath(n.id), cfg.WALSync, n.snapshotLocked())
			if err != nil {
				for _, m := range c.nodes {
					if m.wal != nil {
						m.wal.Close()
					}
				}
				tr.Close()
				return nil, fmt.Errorf("core: p%d journal: %w", n.id+1, err)
			}
			n.wal = wal
			c.observeWAL(n)
		}
	}
	if cfg.HeartbeatInterval > 0 {
		det, err := transport.NewDetector(tr, transport.HeartbeatConfig{
			Procs:        cfg.Processes,
			Interval:     cfg.HeartbeatInterval,
			SuspectAfter: cfg.SuspectAfter,
		}, c.noteNetEvent)
		if err != nil {
			c.closeWALs()
			tr.Close()
			return nil, err
		}
		c.det = det
		det.Start()
	}
	if c.hasTok {
		interval := cfg.TokenInterval
		if interval == 0 {
			interval = time.Millisecond
		}
		c.tokenStop = make(chan struct{})
		c.tokenDone = make(chan struct{})
		go c.tokenLoop(interval)
	}
	if len(cfg.Crashes) > 0 {
		c.crashStop = make(chan struct{})
		c.crashDone = make(chan struct{})
		go c.crashLoop()
	}
	c.registerObsGauges()
	return c, nil
}

// observeWAL points n's journal fsync timings at the observer's WAL
// latency histogram. Safe to call with obs disabled or no journal.
func (c *Cluster) observeWAL(n *Node) {
	if c.cfg.Obs == nil || n.wal == nil {
		return
	}
	o, p := c.cfg.Obs, n.id
	n.wal.SetSyncObserver(func(d time.Duration) { o.ObserveWALSync(p, d) })
}

// registerObsGauges exposes scrape-time gauges for state other
// subsystems already track: per-node pending-buffer depth is derived
// from events inside the observer, but the reliability sublayer's
// resend buffer and the failure detector's suspicion matrix live in
// the transport layer and are polled here instead of mirrored.
func (c *Cluster) registerObsGauges() {
	if c.cfg.Obs == nil {
		return
	}
	reg := c.cfg.Obs.Registry()
	proto := obs.L("protocol", c.cfg.Protocol.String())
	if c.codec != nil {
		c.codec.RegisterMetrics(reg, proto)
	}
	if rel, ok := c.tr.(*transport.Reliable); ok {
		reg.GaugeFunc("dsm_unacked_frames",
			"reliability-sublayer frames awaiting acknowledgment",
			func() int64 { return int64(rel.Unacked()) }, proto)
		reg.GaugeFunc("dsm_dedup_window",
			"reliability-sublayer out-of-order dedup population",
			func() int64 { return int64(rel.DedupWindow()) }, proto)
	}
	if det := c.det; det != nil {
		reg.GaugeFunc("dsm_suspected_pairs",
			"failure-detector (observer, peer) pairs currently under suspicion",
			func() int64 { return int64(det.SuspectedPairs()) }, proto)
	}
}

// walPath returns process p's journal directory.
func (c *Cluster) walPath(p int) string {
	return filepath.Join(c.cfg.WALDir, fmt.Sprintf("node%d", p))
}

// recoveryEnabled reports whether crash recovery (journaling, archives,
// stale-duplicate filtering) is active.
func (c *Cluster) recoveryEnabled() bool { return c.cfg.WALDir != "" }

// closeWALs closes every node's journal (idempotent).
func (c *Cluster) closeWALs() {
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.wal != nil {
			n.wal.Close()
			n.wal = nil
		}
		n.mu.Unlock()
	}
}

// Node returns the i-th process handle.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Processes returns the number of processes.
func (c *Cluster) Processes() int { return c.cfg.Processes }

// Variables returns the number of shared variables.
func (c *Cluster) Variables() int { return c.cfg.Variables }

// Protocol returns the running protocol kind.
func (c *Cluster) Protocol() protocol.Kind { return c.cfg.Protocol }

// ShareSets returns a copy of the partial-replication assignment, or
// nil when every variable is replicated everywhere.
func (c *Cluster) ShareSets() [][]int {
	if c.shares.IsZero() {
		return nil
	}
	return c.shares.Raw()
}

// PartiallyReplicated reports whether some variable is replicated at a
// strict subset of the processes. A PartialRep cluster whose explicit
// share-sets cover every process still counts as fully replicated.
func (c *Cluster) PartiallyReplicated() bool {
	return !c.shares.IsFull()
}

// Detector returns the heartbeat failure detector, or nil when
// HeartbeatInterval is unset.
func (c *Cluster) Detector() *transport.Detector { return c.det }

// MetaCodec returns the causality-metadata codec wrapper (for byte
// accounting and metric registration), or nil when Config.Meta is off.
func (c *Cluster) MetaCodec() *transport.Codec { return c.codec }

// StartTime returns when the cluster came up; crash-schedule offsets
// (Config.Crashes) are measured from this instant.
func (c *Cluster) StartTime() time.Time { return c.start }

// now returns the trace timestamp (nanoseconds since cluster start).
func (c *Cluster) now() int64 { return time.Since(c.start).Nanoseconds() }

// appendEvent records e in the sharded journal (lock-free unless live
// observability needs the serializing tee) and folds it into the
// Quiesce accounting. The accounting update happens before appendEvent
// returns, i.e. before the caller broadcasts the message the event
// describes — so a Send's lag increments are always visible before any
// resulting Apply decrements them.
func (c *Cluster) appendEvent(e trace.Event) {
	if c.tee {
		c.obsMu.Lock()
		c.journal.Record(&e)
		if c.cfg.Obs != nil {
			c.cfg.Obs.Observe(e)
		}
		if c.cfg.Sink != nil {
			c.cfg.Sink.Record(e)
		}
		c.obsMu.Unlock()
	} else {
		c.journal.Record(&e)
	}
	switch e.Kind {
	case trace.Send:
		if e.Write.Seq > 0 {
			if c.shares.IsZero() {
				for q := range c.acct.lag {
					if q != e.Proc {
						c.acct.lag[q].v.Add(1)
					}
				}
			} else {
				// Partial replication: the update reaches (and is
				// applied at) the share-set only.
				for _, q := range c.shares.Replicas(e.Var) {
					if q != e.Proc {
						c.acct.lag[q].v.Add(1)
					}
				}
			}
			c.acct.bump()
		}
	case trace.Apply, trace.Discard:
		if e.Write.Seq > 0 {
			c.acct.lag[e.Proc].v.Add(-1)
			c.acct.bump()
		}
	}
}

// noteNetEvent records chaos-stack and failure-detector occurrences in
// the trace. Frame fates never feed Quiesce accounting — the
// reliability sublayer guarantees the protocol-level events come out
// exactly as on a fault-free transport.
func (c *Cluster) noteNetEvent(e transport.NetEvent) {
	switch e.Kind {
	case transport.EvSuspect, transport.EvAlive:
		kind := trace.Suspect
		if e.Kind == transport.EvAlive {
			kind = trace.Alive
		}
		// Detector events carry From=peer, To=observer.
		c.appendEvent(trace.Event{
			Kind: kind, Proc: e.To, Time: c.now(), Val: int64(e.From),
		})
		return
	}
	if e.Msg.Heartbeat {
		return // lost or duplicated probes are the detector's business
	}
	var kind trace.EventKind
	proc := e.From
	val := e.Msg.Update.Val
	switch e.Kind {
	case transport.EvDrop:
		kind = trace.NetDrop
	case transport.EvRetransmit:
		kind = trace.Retransmit
		val = int64(e.Attempts)
	case transport.EvDupDiscard:
		kind, proc = trace.DupDiscard, e.To
	default:
		return // sender-side duplicates surface as receiver DupDiscards
	}
	c.appendEvent(trace.Event{
		Kind: kind, Proc: proc, Time: c.now(),
		Write: e.Msg.Update.ID, Var: e.Msg.Update.Var, Val: val,
	})
}

// quiesced reports whether every propagated write has been (logically)
// applied everywhere live and nothing more is coming. Crash-stopped
// processes are exempt until they restart: their missed updates arrive
// through catch-up, which re-enters them into the accounting. For each
// process unsent is read before lag, matching the token loop's
// store order (lag increments, then the unsent reset), so a zero unsent
// proves the batch's lag increments are already visible.
func (c *Cluster) quiesced() bool {
	for p := range c.nodes {
		if c.nodes[p].down.Load() {
			continue
		}
		if c.acct.unsent[p].v.Load() != 0 {
			return false
		}
		if c.acct.lag[p].v.Load() != 0 {
			return false
		}
	}
	return true
}

// Quiesce blocks until every write issued so far has reached every live
// replica (discards under writing semantics count as logical applies,
// and writes suppressed at the sender under WS-send count as released
// once their token turn passes), or ctx is done. Crash-stopped
// processes are excluded; Restart them first for full convergence.
// Quiesce on a closed cluster returns ErrClosed.
//
// The wait is a generation-counter poll rather than a condvar: the hot
// path only bumps an atomic, and the (rare) waiter yields, then sleeps
// briefly, between checks. The gen double-read makes the multi-counter
// zero test sound without any lock.
func (c *Cluster) Quiesce(ctx context.Context) error {
	for spin := 0; ; spin++ {
		if c.closed.Load() {
			return fmt.Errorf("core: quiesce: %w", ErrClosed)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: quiesce: %w", err)
		}
		g := c.acct.gen.v.Load()
		if c.quiesced() && c.acct.gen.v.Load() == g {
			if c.closed.Load() {
				return fmt.Errorf("core: quiesce: %w", ErrClosed)
			}
			return nil
		}
		if spin < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// Log returns a snapshot of the event trace: the per-process journal
// shards merged into global ticket order. Mid-run snapshots are a
// causally-closed prefix of the run; after Quiesce or Close the
// snapshot is the complete log.
func (c *Cluster) Log() *trace.Log {
	return c.journal.Snapshot()
}

// Stats returns the run scorecard so far.
func (c *Cluster) Stats() trace.RunStats {
	return c.Log().Stats(c.cfg.Protocol.String())
}

// Audit runs the full correctness audit (safety, causal consistency,
// liveness, delay classification) on the trace recorded so far. Call
// after Quiesce for a complete picture; mid-run audits see a prefix.
func (c *Cluster) Audit() (*checker.Report, error) {
	return checker.Audit(c.Log())
}

// Close stops the crash orchestrator, failure detector and token loop,
// closes the journals, drains the transport, and marks the cluster
// closed. Close is idempotent: the first call does the teardown, later
// calls return nil. Other operations after Close return ErrClosed.
func (c *Cluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Invalidate in-flight quiescence checks; pollers re-read closed
	// on their next iteration and observe the close. Forwarded reads
	// parked on their reply channel wake and return ErrClosed.
	c.acct.bump()
	close(c.readAbort)

	if c.crashStop != nil {
		close(c.crashStop)
		<-c.crashDone
	}
	if c.det != nil {
		c.det.Close()
	}
	if c.hasTok {
		close(c.tokenStop)
		<-c.tokenDone
	}
	c.closeWALs()
	// Frontier waiters must not sleep through the close.
	for _, n := range c.nodes {
		n.fw.wakeAll()
	}
	return c.tr.Close()
}

// tokenLoop circulates the token for WS-send-style protocols until
// Close. The rotation skips crash-stopped and suspected holders so one
// down process cannot stall everyone's deferred writes; visits are
// numbered by actual token grants, keeping rounds contiguous for the
// receivers' expected-visit tracking.
func (c *Cluster) tokenLoop(interval time.Duration) {
	defer close(c.tokenDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	visit := 0 // next round number (increments per grant)
	pos := 0   // rotation cursor (increments per considered holder)
	for {
		select {
		case <-c.tokenStop:
			return
		case <-ticker.C:
		}
		// Pick the next live, unsuspected holder in rotation order; if
		// none qualifies this tick, try again next tick.
		holder := -1
		for i := 0; i < c.cfg.Processes; i++ {
			cand := (pos + i) % c.cfg.Processes
			if c.nodeUp(cand) {
				holder = cand
				pos = cand + 1
				break
			}
		}
		if holder == -1 {
			continue
		}
		n := c.nodes[holder]
		n.mu.Lock()
		if n.down.Load() {
			// Crashed between the liveness check and the lock.
			n.mu.Unlock()
			continue
		}
		tb := n.replica.(protocol.TokenBatcher)
		batch := tb.OnToken(visit)
		n.journalLocked(durability.Entry{Kind: durability.EntryToken, Visit: visit})
		c.appendEvent(trace.Event{Kind: trace.Token, Proc: holder, Time: c.now()})
		if len(batch) == 0 {
			batch = []protocol.Update{protocol.Marker(holder, visit)}
		}
		for _, u := range batch {
			n.archiveLocked(u)
			c.appendEvent(trace.Event{
				Kind: trace.Send, Proc: holder, Time: c.now(),
				Write: u.ID, Var: u.Var, Val: u.Val,
			})
		}
		// Release the deferred-write count only after the batch's Send
		// events entered the lag accounting: a Quiesce poll that sees
		// unsent = 0 is then guaranteed to also see the batch's lag, so
		// it cannot declare quiescence in the hand-off window.
		c.acct.unsent[holder].v.Store(0)
		c.acct.bump()
		n.drainLocked()
		n.mu.Unlock()
		// Send outside the node lock (see Node.Write).
		for _, u := range batch {
			transport.Broadcast(c.tr, c.cfg.Processes, holder, u)
		}
		visit++
	}
}

// nodeUp reports whether p is neither crash-stopped nor suspected.
func (c *Cluster) nodeUp(p int) bool {
	c.mu.Lock()
	down := c.down[p]
	c.mu.Unlock()
	if down {
		return false
	}
	if c.det != nil {
		return c.det.Up(p)
	}
	return true
}

// noteDeferred records a write buffered at its sender awaiting the
// token. The caller (Node.Write) invokes it before recording the Issue
// event, so no Quiesce poll can observe the issued write without its
// unsent obligation.
func (c *Cluster) noteDeferred(p int) {
	c.acct.unsent[p].v.Add(1)
	c.acct.bump()
}

// WriteAt is shorthand for c.Node(p).Write(x, v).
func (c *Cluster) WriteAt(p, x int, v int64) error { return c.nodes[p].Write(x, v) }

// ReadAt is shorthand for c.Node(p).Read(x).
func (c *Cluster) ReadAt(p, x int) (int64, error) { return c.nodes[p].Read(x) }

// ReadMetaAt is shorthand for c.Node(p).ReadMeta(x).
func (c *Cluster) ReadMetaAt(p, x int) (int64, history.WriteID, error) {
	return c.nodes[p].ReadMeta(x)
}
