// Package vclock implements dense vector clocks and the comparison
// lattice used throughout the causal-memory protocols.
//
// A vector clock VC over n processes maps process index i (0-based) to a
// non-negative counter. The paper's Write_co vectors, the Fidge–Mattern
// clocks of the ANBKH baseline, and the per-variable LastWriteOn vectors
// of OptP are all values of this type.
//
// The ordering relations follow Section 4.3 of the paper:
//
//	V ≤ V' ⇔ ∀k: V[k] ≤ V'[k]
//	V < V' ⇔ V ≤ V' ∧ ∃k: V[k] < V'[k]
//	V ‖ V' ⇔ ¬(V < V') ∧ ¬(V' < V)
package vclock

import (
	"fmt"
	"strings"
)

// VC is a dense vector clock. The zero-length VC is valid and compares
// as the bottom element against any clock of any dimension (all absent
// components are treated as zero).
type VC []uint64

// New returns a zero clock for n processes.
func New(n int) VC {
	return make(VC, n)
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	if v == nil {
		return nil
	}
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// CopyFrom overwrites v with o's components without allocating, the
// in-place counterpart of Clone for hot paths that reuse a clock's
// backing array (OptP's per-variable LastWriteOn vectors). The two
// clocks must have the same dimension; CopyFrom panics otherwise.
func (v VC) CopyFrom(o VC) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: copy dimension mismatch %d != %d", len(v), len(o)))
	}
	copy(v, o)
}

// Len returns the number of components.
func (v VC) Len() int { return len(v) }

// Get returns component i, treating out-of-range components as zero.
func (v VC) Get(i int) uint64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

// Set assigns component i. It panics if i is out of range: clocks are
// fixed-dimension in this system, and silently growing them would mask
// configuration bugs.
func (v VC) Set(i int, x uint64) {
	v[i] = x
}

// Tick increments component i and returns the new value.
func (v VC) Tick(i int) uint64 {
	v[i]++
	return v[i]
}

// Merge sets v to the component-wise maximum of v and o, the read-side
// merge of OptP's read procedure (line 1 of Figure 5). The two clocks
// must have the same dimension; Merge panics otherwise.
func (v VC) Merge(o VC) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: merge dimension mismatch %d != %d", len(v), len(o)))
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Max returns a fresh clock holding the component-wise maximum of a and b.
func Max(a, b VC) VC {
	c := a.Clone()
	c.Merge(b)
	return c
}

// Equal reports whether the two clocks agree on every component.
func (v VC) Equal(o VC) bool {
	if len(v) != len(o) {
		return false
	}
	for i, x := range v {
		if x != o[i] {
			return false
		}
	}
	return true
}

// LessEq reports V ≤ V' (component-wise).
func (v VC) LessEq(o VC) bool {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: compare dimension mismatch %d != %d", len(v), len(o)))
	}
	for i, x := range v {
		if x > o[i] {
			return false
		}
	}
	return true
}

// Less reports V < V': V ≤ V' and V ≠ V'.
func (v VC) Less(o VC) bool {
	return v.LessEq(o) && !v.Equal(o)
}

// Ordering is the outcome of comparing two vector clocks.
type Ordering int

// The four possible outcomes of Compare.
const (
	Equal Ordering = iota
	Before
	After
	Concurrent
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "="
	case Before:
		return "<"
	case After:
		return ">"
	case Concurrent:
		return "||"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Compare classifies the pair (v, o) in the vector-clock lattice with a
// single pass over the components.
func (v VC) Compare(o VC) Ordering {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: compare dimension mismatch %d != %d", len(v), len(o)))
	}
	var less, greater bool
	for i, x := range v {
		switch {
		case x < o[i]:
			less = true
		case x > o[i]:
			greater = true
		}
		if less && greater {
			return Concurrent
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Concurrent reports V ‖ V'.
func (v VC) Concurrent(o VC) bool {
	return v.ConcurrentWith(o)
}

// Dominates reports V' ≤ V component-wise (v[k] ≥ o[k] for every k) —
// the "everything o has seen, v has seen" test of the checker's
// applied-frontier math. Unlike LessEq flipped through Compare, it
// exits on the first losing component and never materializes an
// Ordering, so it is allocation-free and cheap enough for per-event
// hot paths. The two clocks must have the same dimension.
func (v VC) Dominates(o VC) bool {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: compare dimension mismatch %d != %d", len(v), len(o)))
	}
	for i, x := range o {
		if v[i] < x {
			return false
		}
	}
	return true
}

// ConcurrentWith reports V ‖ V' without classifying the pair fully: it
// returns true as soon as one component orders each way, and false
// otherwise. Equivalent to Compare(o) == Concurrent but with no
// intermediate result and an earlier exit on comparable clocks. The
// two clocks must have the same dimension.
func (v VC) ConcurrentWith(o VC) bool {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: compare dimension mismatch %d != %d", len(v), len(o)))
	}
	var less, greater bool
	for i, x := range v {
		switch {
		case x < o[i]:
			if greater {
				return true
			}
			less = true
		case x > o[i]:
			if less {
				return true
			}
			greater = true
		}
	}
	return false
}

// String renders the clock as "[a b c]".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(']')
	return b.String()
}

// Sum returns the sum of all components. The sum of a Write_co vector is
// the number of writes in the operation's causal past plus itself on the
// issuing component, a useful cheap progress metric.
func (v VC) Sum() uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

// IsZero reports whether every component is zero.
func (v VC) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
