// Quickstart: the smallest end-to-end tour of the library.
//
// It builds a three-process causally consistent shared memory running
// the paper's OptP protocol, performs a causal chain of writes and
// reads across processes, waits for quiescence, and audits the recorded
// run against the paper's properties (safety, causal consistency,
// liveness, write-delay optimality).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
)

func main() {
	// A cluster of 3 processes sharing 2 variables, with up to 2ms of
	// artificial network delay so buffering actually happens.
	cluster, err := core.NewCluster(core.Config{
		Processes: 3,
		Variables: 2,
		MaxDelay:  2 * time.Millisecond,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const x, y = 0, 1

	// p1 writes x.
	if err := cluster.Node(0).Write(x, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Println("p1 wrote x = 100")

	// p2 waits to observe it (reads are wait-free; we poll), then
	// writes y — creating the causal chain w(x)100 →co w(y)200.
	for {
		v, err := cluster.Node(1).Read(x)
		if err != nil {
			log.Fatal(err)
		}
		if v == 100 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := cluster.Node(1).Write(y, 200); err != nil {
		log.Fatal(err)
	}
	fmt.Println("p2 read x = 100, wrote y = 200")

	// Causal consistency promises p3 can never see y = 200 while x is
	// still ⊥: the OptP replica buffers y's update until x's arrives.
	for {
		vy, _ := cluster.Node(2).Read(y)
		if vy == 200 {
			vx, _ := cluster.Node(2).Read(x)
			fmt.Printf("p3 sees y = %d and x = %d (never 0 — causality!)\n", vy, vx)
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Wait until every write reached every replica.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cluster.Quiesce(ctx); err != nil {
		log.Fatal(err)
	}

	// Every node exposes its Write_co vector (the paper's Section 4.1
	// data structure).
	for p := 0; p < 3; p++ {
		fmt.Printf("p%d Write_co = %v\n", p+1, cluster.Node(p).Clock())
	}

	// Audit the recorded trace against the paper's properties.
	report, err := checker.Audit(cluster.Log())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: safe=%v consistent=%v in-P=%v write-delay-optimal=%v\n",
		report.Safe(), report.CausallyConsistent(), report.InP(), report.WriteDelayOptimal())
	fmt.Println(cluster.Stats())
}
