// Package transport implements the in-process message substrate of the
// live runtime: reliable point-to-point links between goroutine-hosted
// processes, with configurable delay and optional per-link FIFO
// ordering.
//
// The paper's system model needs exactly two properties, both provided
// here: every message sent is eventually delivered exactly once, and no
// spurious message is ever delivered. Ordering is deliberately NOT
// guaranteed in reorder mode — out-of-order arrival is what exercises
// the protocols' buffering logic.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
)

// Message is the wire unit: one protocol update in transit.
type Message struct {
	From, To int
	Update   protocol.Update

	// Seq is the reliability sublayer's per-link sequence number; 0 for
	// messages that bypass the sublayer.
	Seq int
	// Ack marks a reliability acknowledgment for Seq on the reverse
	// link. Ack frames carry no update and are consumed by the
	// sublayer, never delivered to handlers.
	Ack bool
	// Heartbeat marks a failure-detector liveness probe. Heartbeats
	// carry no update and bypass the reliability sublayer entirely —
	// losing one is the signal, so retransmitting or deduplicating them
	// would defeat the detector. They are delivered to handlers, which
	// route them to the detector instead of the protocol replica.
	Heartbeat bool
}

// Handler consumes delivered messages at a destination process. It is
// invoked from transport goroutines; implementations synchronize
// internally.
type Handler func(Message)

// Transport moves messages between processes.
type Transport interface {
	// Register installs the delivery handler for process id. All
	// processes must be registered before the first Send.
	Register(id int, h Handler)
	// Send enqueues m for asynchronous delivery. It never blocks the
	// caller on network progress. Sends after Close are dropped.
	Send(m Message)
	// Flush blocks until every message accepted so far has been
	// delivered.
	Flush()
	// Close tears the transport down, waiting for in-flight deliveries.
	Close() error
}

// Config parameterizes a Net.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// MinDelay and MaxDelay bound the uniform artificial delay applied
	// to each message. Zero values mean immediate delivery.
	MinDelay, MaxDelay time.Duration
	// FIFO preserves per-link send order (TCP-like). When false each
	// message delays independently and links may reorder.
	FIFO bool
	// Seed drives delay sampling.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("transport: Procs = %d", c.Procs)
	}
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("transport: delay range [%v, %v]", c.MinDelay, c.MaxDelay)
	}
	return nil
}

// Net is the standard Transport implementation.
type Net struct {
	cfg      Config
	handlers []atomic.Pointer[Handler]

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	links [][]chan Message // FIFO mode: links[from][to]
	wg    sync.WaitGroup   // link goroutines (FIFO) or per-message (reorder)

	// closeMu makes Send-vs-Close atomic: Send holds the read side from
	// the closed check through enqueue, so no message can be accepted
	// (inflight.Add, channel send) after Close flips closed — the window
	// that used to allow a send on a closed link channel and a Flush
	// hang on a leaked inflight count.
	closeMu sync.RWMutex
	closed  bool

	inflight counter // every accepted, not-yet-delivered message
}

// ErrClosed is returned by Close when called twice.
var ErrClosed = errors.New("transport: already closed")

// counter is a Flush-safe in-flight counter. Unlike sync.WaitGroup it
// allows add to race wait through zero — exactly what happens when a
// Send is accepted while a concurrent Flush is already waiting, a
// pattern the WaitGroup contract forbids (and the race detector
// reports). It is a bare atomic so the per-message hot path (one add at
// the sender, one at delivery) never takes a lock; the rare waiter
// polls with a yield-then-sleep backoff.
type counter struct {
	n atomic.Int64
}

func (c *counter) add(d int) { c.n.Add(int64(d)) }

// wait blocks until the count reaches zero.
func (c *counter) wait() {
	for spin := 0; c.n.Load() != 0; spin++ {
		if spin < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// New constructs a started Net.
func New(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Net{
		cfg:      cfg,
		handlers: make([]atomic.Pointer[Handler], cfg.Procs),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.FIFO {
		n.links = make([][]chan Message, cfg.Procs)
		for i := range n.links {
			n.links[i] = make([]chan Message, cfg.Procs)
			for j := range n.links[i] {
				if i == j {
					continue
				}
				ch := make(chan Message, 1024)
				n.links[i][j] = ch
				n.wg.Add(1)
				go n.runLink(ch)
			}
		}
	}
	return n, nil
}

// Register implements Transport.
func (n *Net) Register(id int, h Handler) {
	if id < 0 || id >= n.cfg.Procs {
		panic(fmt.Sprintf("transport: Register(%d) out of range", id))
	}
	n.handlers[id].Store(&h)
}

// Send implements Transport.
func (n *Net) Send(m Message) {
	if m.To < 0 || m.To >= n.cfg.Procs || m.From < 0 || m.From >= n.cfg.Procs || m.To == m.From {
		panic(fmt.Sprintf("transport: bad route %d -> %d", m.From, m.To))
	}
	n.closeMu.RLock()
	defer n.closeMu.RUnlock()
	if n.closed {
		return
	}
	n.inflight.add(1)
	if n.cfg.FIFO {
		n.links[m.From][m.To] <- m
		return
	}
	d := n.sampleDelay()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer n.inflight.add(-1)
		if d > 0 {
			time.Sleep(d)
		}
		n.deliver(m)
	}()
}

// Flush implements Transport.
func (n *Net) Flush() {
	n.inflight.wait()
}

// Close implements Transport.
func (n *Net) Close() error {
	n.closeMu.Lock()
	if n.closed {
		n.closeMu.Unlock()
		return ErrClosed
	}
	n.closed = true
	n.closeMu.Unlock()
	if n.cfg.FIFO {
		for _, row := range n.links {
			for _, ch := range row {
				if ch != nil {
					close(ch)
				}
			}
		}
	}
	n.wg.Wait()
	return nil
}

func (n *Net) runLink(ch chan Message) {
	defer n.wg.Done()
	for m := range ch {
		if d := n.sampleDelay(); d > 0 {
			time.Sleep(d)
		}
		n.deliver(m)
		n.inflight.add(-1)
	}
}

func (n *Net) deliver(m Message) {
	hp := n.handlers[m.To].Load()
	if hp == nil {
		panic(fmt.Sprintf("transport: no handler registered for process %d", m.To))
	}
	(*hp)(m)
}

func (n *Net) sampleDelay() time.Duration {
	if n.cfg.MaxDelay == 0 {
		return 0
	}
	if n.cfg.MaxDelay == n.cfg.MinDelay {
		return n.cfg.MinDelay
	}
	n.mu.Lock()
	d := n.cfg.MinDelay + time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay-n.cfg.MinDelay+1)))
	n.mu.Unlock()
	return d
}

// Broadcaster is an optional Transport fast path: SendAll enqueues one
// update to every other process under a single accept (closed-check +
// in-flight accounting) instead of one per destination.
type Broadcaster interface {
	SendAll(from int, u protocol.Update)
}

// SendAll implements Broadcaster for the standard Net.
func (n *Net) SendAll(from int, u protocol.Update) {
	n.closeMu.RLock()
	defer n.closeMu.RUnlock()
	if n.closed {
		return
	}
	n.inflight.add(n.cfg.Procs - 1)
	if n.cfg.FIFO {
		for q := 0; q < n.cfg.Procs; q++ {
			if q != from {
				n.links[from][q] <- Message{From: from, To: q, Update: u}
			}
		}
		return
	}
	for q := 0; q < n.cfg.Procs; q++ {
		if q == from {
			continue
		}
		m := Message{From: from, To: q, Update: u}
		d := n.sampleDelay()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer n.inflight.add(-1)
			if d > 0 {
				time.Sleep(d)
			}
			n.deliver(m)
		}()
	}
}

// Broadcast sends u from process `from` to every other process, using
// the transport's batched path when it has one.
func Broadcast(t Transport, procs, from int, u protocol.Update) {
	if b, ok := t.(Broadcaster); ok {
		b.SendAll(from, u)
		return
	}
	for q := 0; q < procs; q++ {
		if q != from {
			t.Send(Message{From: from, To: q, Update: u})
		}
	}
}

// Multicaster is the share-set-aware sibling of Broadcaster: SendTo
// enqueues one update to an explicit destination set under a single
// accept. PartialRep writes use it so an update costs |shareSet| − 1
// messages instead of P − 1.
type Multicaster interface {
	SendTo(from int, dests []int, u protocol.Update)
}

// SendTo implements Multicaster for the standard Net. dests may include
// from (it is skipped) and must be duplicate-free.
func (n *Net) SendTo(from int, dests []int, u protocol.Update) {
	n.closeMu.RLock()
	defer n.closeMu.RUnlock()
	if n.closed {
		return
	}
	count := 0
	for _, q := range dests {
		if q != from {
			count++
		}
	}
	if count == 0 {
		return
	}
	n.inflight.add(count)
	if n.cfg.FIFO {
		for _, q := range dests {
			if q != from {
				n.links[from][q] <- Message{From: from, To: q, Update: u}
			}
		}
		return
	}
	for _, q := range dests {
		if q == from {
			continue
		}
		m := Message{From: from, To: q, Update: u}
		d := n.sampleDelay()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer n.inflight.add(-1)
			if d > 0 {
				time.Sleep(d)
			}
			n.deliver(m)
		}()
	}
}

// Multicast sends u from process `from` to every process in dests
// except the sender, using the transport's batched path when it has
// one. The per-destination fallback keeps the reliability, chaos and
// metadata-codec wrappers — none of which need a batched accept —
// working unchanged.
func Multicast(t Transport, from int, dests []int, u protocol.Update) {
	if mc, ok := t.(Multicaster); ok {
		mc.SendTo(from, dests, u)
		return
	}
	for _, q := range dests {
		if q != from {
			t.Send(Message{From: from, To: q, Update: u})
		}
	}
}
