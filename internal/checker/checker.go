// Package checker audits recorded protocol runs against the paper's
// correctness and optimality notions:
//
//   - Safety (Theorem 3): writes are applied at every process in an
//     order consistent with →co.
//   - Liveness / 𝒫 membership (Theorem 5): every write is applied at
//     every process; writing-semantics protocols violate the strict
//     form (values never installed), which the audit surfaces.
//   - Causal consistency (Definition 2): every read in the
//     reconstructed history is legal.
//   - Write delays (Definition 3) and their classification: a buffered
//     receipt is *necessary* iff some write in the causal past of the
//     delayed write had not been applied at the receiving process by
//     receipt time; otherwise it is an *unnecessary* delay — evidence
//     of non-optimality (Definition 5).
//
// The audit is protocol-independent: it recomputes →co from the
// observed history (Issue/Return events) and never trusts protocol
// clocks — those are cross-checked separately by optimality.go.
//
// Audit is the scale path: vector-frontier causality, covering-edge
// safety checks, and per-process work fanned out across GOMAXPROCS
// goroutines with a deterministic merge. AuditReference (reference.go)
// is the original dense-bitset quadratic audit, kept for small traces
// and as the oracle of the equivalence property tests.
package checker

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/history"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// SafetyViolation reports two →co-ordered writes applied out of order
// at a process.
type SafetyViolation struct {
	Proc   int
	First  history.WriteID // First →co Second ...
	Second history.WriteID // ... but Second was applied at Proc first
}

// String implements fmt.Stringer.
func (v SafetyViolation) String() string {
	return fmt.Sprintf("p%d applied %v before %v despite %v →co %v",
		v.Proc+1, v.Second, v.First, v.First, v.Second)
}

// MissingApply reports a write never applied at a process.
type MissingApply struct {
	Proc  int
	Write history.WriteID
	// Logical is true when the write was logically applied (discarded
	// under writing semantics) but its value never installed.
	Logical bool
}

// String implements fmt.Stringer.
func (m MissingApply) String() string {
	if m.Logical {
		return fmt.Sprintf("%v only logically applied (value never installed) at p%d", m.Write, m.Proc+1)
	}
	return fmt.Sprintf("%v never applied at p%d", m.Write, m.Proc+1)
}

// DuplicateApply reports a write applied (or logically applied) more
// than once at a process — a transport-level duplicate that leaked past
// the reliability sublayer's dedup into the protocol. A correct chaos
// stack never produces one: duplicated frames must die at the receiver
// as DupDiscard events, not reach Apply.
type DuplicateApply struct {
	Proc  int
	Write history.WriteID
	// Times is the number of applies observed (≥ 2).
	Times int
}

// String implements fmt.Stringer.
func (d DuplicateApply) String() string {
	return fmt.Sprintf("%v applied %d times at p%d", d.Write, d.Times, d.Proc+1)
}

// ClassifiedDelay is a write delay with its necessity verdict.
type ClassifiedDelay struct {
	trace.Delay
	// Necessary is true iff some write in the causal past of the
	// delayed write was missing at the receiving process at receipt.
	Necessary bool
	// MissingWrite names one such missing causal predecessor (the
	// witness) when Necessary.
	MissingWrite history.WriteID
}

// Report is a full audit of one run.
type Report struct {
	History   *history.History
	Causality history.CausalOrder

	SafetyViolations   []SafetyViolation
	LegalityViolations []history.Violation
	NotApplied         []MissingApply
	DuplicateApplies   []DuplicateApply

	// PartialReplication records that the log carried a share-set
	// assignment, scoping NotApplied to replicating processes;
	// StrayApplies lists applies observed outside a variable's
	// share-set (see partial.go).
	PartialReplication bool
	StrayApplies       []StrayApply

	Delays            []ClassifiedDelay
	NecessaryDelays   int
	UnnecessaryDelays int
	Discards          int

	// Crashes and Recoveries count crash-stops and WAL restarts;
	// CrashViolations lists protocol activity observed at down processes
	// (see crash.go).
	Crashes         int
	Recoveries      int
	CrashViolations []CrashViolation
}

// Safe reports whether the run respected →co apply ordering
// (counting logical applies, so writing-semantics runs can pass).
func (r *Report) Safe() bool { return len(r.SafetyViolations) == 0 }

// CausallyConsistent reports Definition 2 for the run's history.
func (r *Report) CausallyConsistent() bool { return len(r.LegalityViolations) == 0 }

// InP reports strict 𝒫 membership: every write's value installed at
// every process — every *replicating* process when the run was
// partially replicated.
func (r *Report) InP() bool { return len(r.NotApplied) == 0 }

// WriteDelayOptimal reports Definition 5's observable consequence: the
// run exhibits no unnecessary delay.
func (r *Report) WriteDelayOptimal() bool { return r.UnnecessaryDelays == 0 }

// ExactlyOnce reports the reliable-channel contract the protocols
// assume: every write's update was applied at most once at every
// process (no duplicate leaked past transport dedup). Combined with
// InP (applied at least once everywhere) this is exactly-once
// application — the property a chaos run must preserve.
func (r *Report) ExactlyOnce() bool { return len(r.DuplicateApplies) == 0 }

// String renders a one-paragraph audit summary.
func (r *Report) String() string {
	out := fmt.Sprintf(
		"audit: safe=%v consistent=%v in-P=%v exactly-once=%v delays=%d (necessary=%d unnecessary=%d) discards=%d",
		r.Safe(), r.CausallyConsistent(), r.InP(), r.ExactlyOnce(),
		len(r.Delays), r.NecessaryDelays, r.UnnecessaryDelays, r.Discards)
	if r.PartialReplication {
		out += fmt.Sprintf(" share-respected=%v stray-applies=%d",
			r.ShareRespected(), len(r.StrayApplies))
	}
	if r.Crashes > 0 || r.Recoveries > 0 {
		out += fmt.Sprintf(" crashes=%d recoveries=%d crash-consistent=%v",
			r.Crashes, r.Recoveries, r.CrashConsistent())
	}
	return out
}

// Audit reconstructs the history from the log, computes →co, and runs
// every check. This is the scale path: causality queries run against
// the vector-frontier engine, the per-process safety check walks only
// the WriteGraph's covering edges, and per-process audits run on
// GOMAXPROCS goroutines. Reports are byte-identical to AuditReference
// on violation-free runs and deterministic always (see reference.go for
// how witnesses differ on violating runs).
func Audit(log *trace.Log) (*Report, error) {
	h, err := log.History()
	if err != nil {
		return nil, fmt.Errorf("checker: reconstructing history: %w", err)
	}
	c, err := h.Causality()
	if err != nil {
		return nil, fmt.Errorf("checker: computing →co: %w", err)
	}
	r := &Report{History: h, Causality: c, Discards: log.DiscardCount()}

	r.LegalityViolations = c.CheckCausallyConsistent()
	r.auditApplies(log, c)
	r.classifyDelays(log, c)
	r.auditShareSets(log)
	r.auditCrashes(log)
	return r, nil
}

// writesPerProc counts the history's writes per issuing process; since
// Seqs are consecutive, write (q, s) exists iff 1 ≤ s ≤ counts[q],
// which lets the per-process audits use flat arrays instead of maps.
func writesPerProc(h *history.History, nprocs int) []int {
	counts := make([]int, nprocs)
	for _, gi := range h.Writes() {
		counts[h.Ops()[gi].ID.Proc]++
	}
	return counts
}

// forEachProc fans fn out over min(GOMAXPROCS, nprocs) worker
// goroutines — but always at least two when there are two processes, so
// the race detector exercises the concurrent path even on single-core
// runners. fn must only write to its own process's result slot; the
// caller merges slots in process order afterwards, which is what keeps
// reports byte-stable regardless of scheduling.
func forEachProc(nprocs int, fn func(p int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	if workers > nprocs {
		workers = nprocs
	}
	if workers <= 1 {
		for p := 0; p < nprocs; p++ {
			fn(p)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= nprocs {
					return
				}
				fn(p)
			}
		}()
	}
	wg.Wait()
}

// procApplyAudit is one process's share of auditApplies.
type procApplyAudit struct {
	notApplied []MissingApply
	dups       []DuplicateApply
	safety     []SafetyViolation
}

// auditApplies checks safety (apply order vs →co, with discards
// counting as logical applies) and liveness (everything applied
// everywhere). The shared inputs — write IDs, discard sets, per-process
// apply logs, covering edges — are built once; each process is then
// audited independently and in parallel, and the per-process results
// concatenated in process order.
func (r *Report) auditApplies(log *trace.Log, c *history.Causality) {
	h := r.History
	nprocs := log.NumProcs
	writes := h.Writes()
	ids, wvars := historyWriteVars(h)
	perProc := writesPerProc(h, nprocs)

	discarded := make([]map[history.WriteID]bool, nprocs)
	for p := range discarded {
		discarded[p] = make(map[history.WriteID]bool)
	}
	for _, e := range log.Events {
		if e.Kind == trace.Discard {
			discarded[e.Proc][e.Write] = true
		}
	}
	appliedLog := log.LogicallyAppliedPerProc()

	// Covering edges, inverted once: preds[b] lists the immediate →co
	// predecessors of write vertex b. Vertex order equals ids order
	// (both are the flattened history order).
	g := c.WriteGraph()
	preds := make([][]int32, len(writes))
	for a, succs := range g.Edges {
		for _, b := range succs {
			preds[b] = append(preds[b], int32(a))
		}
	}

	results := make([]procApplyAudit, nprocs)
	forEachProc(nprocs, func(p int) {
		results[p] = auditProcApplies(p, log, ids, wvars, perProc, writes, preds, appliedLog[p], discarded[p], c)
	})
	for p := range results {
		r.NotApplied = append(r.NotApplied, results[p].notApplied...)
		r.DuplicateApplies = append(r.DuplicateApplies, results[p].dups...)
		r.SafetyViolations = append(r.SafetyViolations, results[p].safety...)
	}
}

// auditProcApplies audits one process's apply log. Safety is about
// relative order: two →co-ordered writes both applied at p must be
// applied in →co order. A missing apply is a liveness hole, reported
// via NotApplied, not a safety violation (WS-send legitimately never
// propagates suppressed writes, yet applies every propagated pair in
// order). Under partial replication a write is only ever expected at
// its variable's share-set, so missing applies elsewhere are not
// reported at all.
//
// When p applied every write, the apply order is a linear extension of
// →co iff every *covering* edge of the WriteGraph respects apply
// positions (any violating pair a →co b implies a violating covering
// edge on some a-to-b path), so the check is O(E) instead of the
// reference's O(W²) pairwise loop. When writes are missing at p the
// covering argument breaks — an inverted pair's connecting path may run
// through an unapplied write — so a complete per-writer frontier check
// runs instead: b's apply is consistent iff no write of any writer q
// with seq ≤ Write_co(b)[q] was applied after b, an O(W·P) prefix-
// maximum scan.
func auditProcApplies(p int, log *trace.Log, ids []history.WriteID, wvars []int, perProc []int, writes []int, preds [][]int32, order []history.WriteID, discarded map[history.WriteID]bool, c *history.Causality) procApplyAudit {
	var res procApplyAudit
	if len(order) == 0 {
		// Nothing applied: every write addressed to p is missing and
		// there is no order to check — skip building the position
		// tables entirely.
		for i, id := range ids {
			if log.Replicated(p, wvars[i]) {
				res.notApplied = append(res.notApplied, MissingApply{Proc: p, Write: id})
			}
		}
		return res
	}
	nprocs := len(perProc)
	posBy := make([][]int32, nprocs)
	timesBy := make([][]int32, nprocs)
	for q := 0; q < nprocs; q++ {
		posBy[q] = make([]int32, perProc[q])
		timesBy[q] = make([]int32, perProc[q])
	}
	for i, id := range order {
		if id.Seq < 1 || id.Proc < 0 || id.Proc >= nprocs || id.Seq > perProc[id.Proc] {
			continue // not a write of the history; nothing to report against
		}
		if posBy[id.Proc][id.Seq-1] == 0 {
			posBy[id.Proc][id.Seq-1] = int32(i + 1) // 1-based; 0 means absent
		}
		timesBy[id.Proc][id.Seq-1]++
	}
	pos := func(id history.WriteID) int32 { return posBy[id.Proc][id.Seq-1] }

	// Liveness and duplicates first, so a duplicate's extra position
	// can't silently mask an order violation reported below.
	appliedCount := 0
	for i, id := range ids {
		if pos(id) == 0 {
			if log.Replicated(p, wvars[i]) {
				res.notApplied = append(res.notApplied, MissingApply{Proc: p, Write: id})
			}
		} else {
			appliedCount++
			if discarded[id] {
				res.notApplied = append(res.notApplied, MissingApply{Proc: p, Write: id, Logical: true})
			}
		}
		if t := timesBy[id.Proc][id.Seq-1]; t > 1 {
			res.dups = append(res.dups, DuplicateApply{Proc: p, Write: id, Times: int(t)})
		}
	}

	if appliedCount == len(ids) {
		// Complete apply log: covering edges suffice.
		for b, id := range ids {
			pb := pos(id)
			for _, a := range preds[b] {
				if aid := ids[a]; pos(aid) > pb {
					res.safety = append(res.safety, SafetyViolation{Proc: p, First: aid, Second: id})
				}
			}
		}
		return res
	}
	// Gapped apply log: per-writer prefix maxima of apply positions.
	// prefMax[q][s-1] is the latest position at which any of q's writes
	// (q,1)..(q,s) was applied, prefArg the seq achieving it.
	prefMax := make([][]int32, nprocs)
	prefArg := make([][]int32, nprocs)
	for q := 0; q < nprocs; q++ {
		prefMax[q] = make([]int32, perProc[q])
		prefArg[q] = make([]int32, perProc[q])
		var m, arg int32
		for s := 0; s < perProc[q]; s++ {
			if v := posBy[q][s]; v > m {
				m, arg = v, int32(s+1)
			}
			prefMax[q][s] = m
			prefArg[q][s] = arg
		}
	}
	for b, id := range ids {
		pb := pos(id)
		if pb == 0 {
			continue
		}
		wv := c.WriteVector(writes[b])
		for q := 0; q < nprocs; q++ {
			upper := int(wv[q])
			if q == id.Proc {
				upper-- // Write_co counts b itself on its own component
			}
			if upper == 0 {
				continue
			}
			if prefMax[q][upper-1] > pb {
				res.safety = append(res.safety, SafetyViolation{
					Proc:   p,
					First:  history.WriteID{Proc: q, Seq: int(prefArg[q][upper-1])},
					Second: id,
				})
			}
		}
	}
	return res
}

// procDelayAudit is one process's share of classifyDelays.
type procDelayAudit struct {
	delays    []ClassifiedDelay
	at        []int32 // global event index of each delay's receipt
	necessary int
}

// classifyDelays walks each process's event sequence and classifies
// every buffered receipt per Definition 3. Instead of scanning the
// delayed write's full WritesBefore list against an applied-set map,
// each process maintains an applied frontier vector — component q is
// the length of the contiguous prefix of q's writes applied so far —
// and a receipt is necessary iff the frontier fails to dominate the
// write's (strict) Write_co vector. The witness is the first frontier
// gap in process order, which is exactly the first missing write in
// global-index order, so verdicts and witnesses match the reference
// scan. Processes are classified in parallel and merged by global
// event position, keeping Delays in log order.
func (r *Report) classifyDelays(log *trace.Log, c *history.Causality) {
	resolved := make(map[delayKey]trace.Delay)
	for _, d := range log.Delays() {
		resolved[delayKey{d.Proc, d.Write}] = d
	}
	nprocs := log.NumProcs
	perProc := writesPerProc(r.History, nprocs)
	var wids []history.WriteID
	var wvars []int
	if log.ShareSets != nil {
		wids, wvars = historyWriteVars(r.History)
	}

	// Per-process event indices; the events themselves stay in the
	// shared log (read-only below) rather than being copied per worker.
	idxs := make([][]int32, nprocs)
	for i, e := range log.Events {
		idxs[e.Proc] = append(idxs[e.Proc], int32(i))
	}

	results := make([]procDelayAudit, nprocs)
	forEachProc(nprocs, func(p int) {
		res := &results[p]
		seen := make([][]bool, nprocs)
		for q := range seen {
			seen[q] = make([]bool, perProc[q])
		}
		frontier := vclock.New(nprocs)
		scratch := vclock.New(nprocs)
		if log.ShareSets != nil {
			// Writes not addressed to p never apply there, so their
			// absence can never make a delay necessary: pre-mark them
			// as seen and advance the frontier over them.
			for i, id := range wids {
				if !log.Replicated(p, wvars[i]) {
					seen[id.Proc][id.Seq-1] = true
				}
			}
			for q := 0; q < nprocs; q++ {
				for int(frontier[q]) < perProc[q] && seen[q][frontier[q]] {
					frontier[q]++
				}
			}
		}
		mark := func(id history.WriteID) {
			if id.Seq < 1 || id.Proc < 0 || id.Proc >= nprocs || id.Seq > perProc[id.Proc] {
				return // not a write of the history; never in any causal past
			}
			seen[id.Proc][id.Seq-1] = true
			for int(frontier[id.Proc]) < perProc[id.Proc] && seen[id.Proc][frontier[id.Proc]] {
				frontier[id.Proc]++
			}
		}
		for _, ei := range idxs[p] {
			e := &log.Events[ei]
			switch e.Kind {
			case trace.Issue, trace.Apply, trace.Discard:
				mark(e.Write)
			case trace.Receipt:
				if !e.Buffered {
					continue
				}
				cd := ClassifiedDelay{}
				if d, ok := resolved[delayKey{p, e.Write}]; ok {
					cd.Delay = d
				} else {
					cd.Delay = trace.Delay{Proc: p, Write: e.Write, ReceiptAt: e.Time, AppliedAt: e.Time}
				}
				if widx := r.History.WriteIndex(e.Write); widx >= 0 {
					scratch.CopyFrom(c.WriteVector(widx))
					scratch[e.Write.Proc]-- // strict past: the write itself is the one delayed
					if !frontier.Dominates(scratch) {
						cd.Necessary = true
						for q := 0; q < nprocs; q++ {
							if scratch[q] > frontier[q] {
								cd.MissingWrite = history.WriteID{Proc: q, Seq: int(frontier[q]) + 1}
								break
							}
						}
					}
				}
				if cd.Necessary {
					res.necessary++
				}
				res.delays = append(res.delays, cd)
				res.at = append(res.at, ei)
			}
		}
	})

	total := 0
	for p := range results {
		total += len(results[p].delays)
		r.NecessaryDelays += results[p].necessary
	}
	if total > 0 {
		// k-way merge by global event index reproduces the reference's
		// single-pass log order exactly.
		r.Delays = make([]ClassifiedDelay, 0, total)
		cur := make([]int, nprocs)
		for len(r.Delays) < total {
			best := -1
			for p := 0; p < nprocs; p++ {
				if cur[p] < len(results[p].delays) && (best < 0 || results[p].at[cur[p]] < results[best].at[cur[best]]) {
					best = p
				}
			}
			r.Delays = append(r.Delays, results[best].delays[cur[best]])
			cur[best]++
		}
	}
	r.UnnecessaryDelays = total - r.NecessaryDelays
}

type delayKey struct {
	p int
	w history.WriteID
}
